package replica

import (
	"bytes"
	"compress/gzip"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"sync"
	"time"

	"repro/internal/store"
)

// Publisher is the trainer-side half of the replication protocol: it
// owns (a reference to) the authoritative store and pushes its releases
// to a set of replica endpoints. Pushes are idempotent (safe to repeat
// after any failure), retried with exponential backoff on transport
// errors, and gap-healing: a replica that is behind — freshly joined,
// restarted, or recovered from a partition — reports its watermark in a
// 409 and the publisher backfills the missing versions in order.
//
// The publisher tracks a per-replica, per-model applied-version
// watermark from push acknowledgements, so Sync can tell at a glance
// which replicas are current. Watermarks are an optimization and a
// diagnostic, never a correctness input: the replica's own store is the
// source of truth, and re-pushing something already applied is a no-op
// by protocol.
type Publisher struct {
	src     *store.Store
	client  *http.Client
	retries int
	backoff time.Duration
	// authToken, when non-empty, is sent as "Authorization: Bearer …"
	// on every push (replicas started with WithAuthToken require it).
	authToken string
	// gzipMin is the body size from which pushes are gzip-compressed
	// (Content-Encoding: gzip); negative disables compression.
	gzipMin int
	// selfHeal marks endpoints "unreconciled" at construction and on
	// AddEndpoints; the first push to such an endpoint (or Heal) first
	// backfills everything its reported watermarks say is missing.
	selfHeal bool

	mu          sync.Mutex
	endpoints   []string
	watermarks  map[string]map[string]int // endpoint → name → applied versions
	healPending map[string]bool           // endpoints not yet reconciled since construction
}

// Option configures a Publisher.
type Option func(*Publisher)

// WithClient sets the HTTP client used for pushes (default
// http.DefaultClient; tests inject httptest clients).
func WithClient(c *http.Client) Option { return func(p *Publisher) { p.client = c } }

// WithRetry sets how many times a failed push is retried per endpoint
// and the initial backoff, which doubles per attempt. The defaults are
// 3 retries starting at 100ms.
func WithRetry(retries int, backoff time.Duration) Option {
	return func(p *Publisher) { p.retries, p.backoff = retries, backoff }
}

// WithAuth sends the shared-secret bearer token with every push,
// matching a replica started with the server-side WithAuthToken.
func WithAuth(tok string) Option {
	return func(p *Publisher) { p.authToken = tok }
}

// WithoutCompression disables gzip push bodies (the default compresses
// bodies of 1 KiB and up — wide released feature tables are highly
// redundant, so compression cuts fan-out bandwidth by integer factors).
func WithoutCompression() Option {
	return func(p *Publisher) { p.gzipMin = -1 }
}

// WithSelfHealing makes the publisher reconcile each endpoint against
// the replica's *reported* applied-version watermarks before the first
// push after construction (and after AddEndpoints), backfilling
// whatever the replica is missing. This is the publisher-restart path:
// a restarted publisher has an empty watermark cache and possibly
// replicas that missed releases while it was down; with self-healing,
// recovery needs no manual Sync — the daemon simply constructs its
// publisher and the tier converges. Heal() runs the same reconciliation
// eagerly (e.g. at daemon startup, so replicas converge even before
// the next natural push).
func WithSelfHealing() Option {
	return func(p *Publisher) { p.selfHeal = true }
}

// NewPublisher returns a publisher over the authoritative store,
// pushing to the given replica base URLs (e.g. "http://10.0.0.7:8081").
func NewPublisher(src *store.Store, endpoints []string, opts ...Option) *Publisher {
	p := &Publisher{
		src:         src,
		client:      http.DefaultClient,
		retries:     3,
		backoff:     100 * time.Millisecond,
		gzipMin:     1 << 10,
		endpoints:   append([]string(nil), endpoints...),
		watermarks:  make(map[string]map[string]int),
		healPending: make(map[string]bool),
	}
	for _, o := range opts {
		o(p)
	}
	if p.selfHeal {
		for _, ep := range p.endpoints {
			p.healPending[ep] = true
		}
	}
	return p
}

// AddEndpoints registers additional replicas (a late join). They serve
// nothing until the next Push, Sync, or Heal reaches them.
func (p *Publisher) AddEndpoints(endpoints ...string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.endpoints = append(p.endpoints, endpoints...)
	if p.selfHeal {
		for _, ep := range endpoints {
			p.healPending[ep] = true
		}
	}
}

// Endpoints returns the registered replica URLs.
func (p *Publisher) Endpoints() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]string(nil), p.endpoints...)
}

// Watermark returns the last applied version the endpoint acknowledged
// for name (0 if never pushed).
func (p *Publisher) Watermark(endpoint, name string) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.watermarks[endpoint][name]
}

func (p *Publisher) noteWatermark(endpoint, name string, version int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	wm := p.watermarks[endpoint]
	if wm == nil {
		wm = make(map[string]int)
		p.watermarks[endpoint] = wm
	}
	if version > wm[name] {
		wm[name] = version
	}
}

// setWatermark overwrites the cached watermark in both directions —
// used when the replica itself reported it (the replica is the source
// of truth; a lower report means it lost state).
func (p *Publisher) setWatermark(endpoint, name string, version int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	wm := p.watermarks[endpoint]
	if wm == nil {
		wm = make(map[string]int)
		p.watermarks[endpoint] = wm
	}
	wm[name] = version
}

// Publish publishes the bundle into the authoritative store (assigning
// the next version, exactly like store.Publish) and pushes it to every
// replica. The release is durable in the source store even if every
// push fails — serving replicas converge on the next Push or Sync.
func (p *Publisher) Publish(b store.Bundle) (int, error) {
	version := p.src.Publish(b)
	return version, p.Push(b.Name, version)
}

// sleepBackoff waits out one retry delay with full jitter — a uniform
// draw from (0, d] rather than d itself, so a fleet of publishers (or
// one publisher's per-endpoint goroutines) that failed together does
// not retry in lockstep against a recovering replica. It returns early
// with the context's error on cancellation: a shutting-down caller is
// never pinned inside a backoff sleep.
func sleepBackoff(ctx context.Context, d time.Duration) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if d > 0 {
		d = time.Duration(1 + rand.Int64N(int64(d)))
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// pushBody is one encoded bundle ready for the wire: the gob bytes and,
// when compression is on and pays for itself, their gzip form.
type pushBody struct{ raw, gz []byte }

// encodePush encodes a bundle and (by default, for bodies of gzipMin
// bytes and up) compresses it. The compressed form is only kept when it
// is actually smaller, so incompressible bundles ship identity-encoded.
func (p *Publisher) encodePush(b *store.Bundle) (pushBody, error) {
	raw, err := b.Encode()
	if err != nil {
		return pushBody{}, err
	}
	body := pushBody{raw: raw}
	if p.gzipMin >= 0 && len(raw) >= p.gzipMin {
		var buf bytes.Buffer
		zw := gzip.NewWriter(&buf)
		if _, err := zw.Write(raw); err == nil && zw.Close() == nil && buf.Len() < len(raw) {
			body.gz = buf.Bytes()
		}
	}
	return body, nil
}

// Push ships name@version from the source store to every replica,
// concurrently. Each replica failure is independent; the joined error
// reports every endpoint that did not converge. With self-healing on,
// an endpoint that has not been reconciled since this publisher started
// is first backfilled from its reported watermarks.
func (p *Publisher) Push(name string, version int) error {
	return p.PushContext(context.Background(), name, version)
}

// PushContext is Push with cancellation: the context aborts in-flight
// push requests and interrupts retry backoff sleeps promptly.
func (p *Publisher) PushContext(ctx context.Context, name string, version int) error {
	bundle, ok := p.src.Get(name, version)
	if !ok {
		return fmt.Errorf("replica: push %s@v%d: not in source store", name, version)
	}
	body, err := p.encodePush(bundle)
	if err != nil {
		return err
	}
	endpoints := p.Endpoints()
	errs := make([]error, len(endpoints))
	var wg sync.WaitGroup
	for i, ep := range endpoints {
		wg.Add(1)
		go func(i int, ep string) {
			defer wg.Done()
			p.ensureHealed(ctx, ep)
			errs[i] = p.pushTo(ctx, ep, name, version, body)
		}(i, ep)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// ensureHealed reconciles an endpoint flagged by WithSelfHealing. On
// failure the flag stays set (the gap protocol still converges the
// pushed name; other names retry at the next push or Heal).
func (p *Publisher) ensureHealed(ctx context.Context, ep string) {
	p.mu.Lock()
	pending := p.healPending[ep]
	p.mu.Unlock()
	if !pending {
		return
	}
	if err := p.healEndpoint(ctx, ep); err == nil {
		p.mu.Lock()
		delete(p.healPending, ep)
		p.mu.Unlock()
	}
}

// healEndpoint fetches the replica's own applied-version watermarks and
// backfills every missing release. Unlike the cached-watermark path,
// this trusts only what the replica reports — the correct stance right
// after a restart on either side.
func (p *Publisher) healEndpoint(ctx context.Context, ep string) error {
	applied, err := p.fetchStatus(ctx, ep)
	if err != nil {
		return err
	}
	return p.syncEndpoint(ctx, ep, p.src.List(), applied)
}

// Heal eagerly reconciles every endpoint against its reported
// watermarks — the publisher-restart recovery path (the daemon calls it
// at startup so replicas that missed releases while the publisher was
// down converge before the next natural push). Endpoints that cannot
// be reached stay flagged for lazy healing on their next push.
func (p *Publisher) Heal() error {
	return p.HealContext(context.Background())
}

// HealContext is Heal with cancellation.
func (p *Publisher) HealContext(ctx context.Context) error {
	var errs []error
	for _, ep := range p.Endpoints() {
		if err := p.healEndpoint(ctx, ep); err != nil {
			errs = append(errs, err)
			continue
		}
		p.mu.Lock()
		delete(p.healPending, ep)
		p.mu.Unlock()
	}
	return errors.Join(errs...)
}

// Sync brings every replica up to the source store's current versions —
// the late-join catch-up path, also usable as a periodic anti-entropy
// sweep. Each replica's *reported* watermarks (GET /replica/status) are
// what Sync reconciles against, not the publisher's cached ones: a
// replica that restarted empty reports 0 and is re-backfilled even
// though the publisher remembers acking it. When the status fetch
// fails, Sync falls back to the cached watermarks (the gap protocol
// corrects any staleness on the first push).
func (p *Publisher) Sync() error {
	return p.SyncContext(context.Background())
}

// SyncContext is Sync with cancellation: a daemon draining on shutdown
// can bound its final anti-entropy sweep instead of hanging on an
// unreachable replica's full retry schedule.
func (p *Publisher) SyncContext(ctx context.Context) error {
	names := p.src.List() // already sorted
	var errs []error
	for _, ep := range p.Endpoints() {
		if err := ctx.Err(); err != nil {
			errs = append(errs, err)
			break
		}
		applied, err := p.fetchStatus(ctx, ep)
		if err != nil {
			applied = nil // unknown; fall back to cached watermarks
		}
		if err := p.syncEndpoint(ctx, ep, names, applied); err != nil {
			// This replica is unreachable or divergent; move on to the
			// next endpoint rather than burning retries per name.
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

// syncEndpoint pushes one replica everything it is missing, stopping at
// the first push failure (the endpoint is likely down; its remaining
// names would each eat a full retry cycle).
func (p *Publisher) syncEndpoint(ctx context.Context, ep string, names []string, applied map[string]int) error {
	for _, name := range names {
		from := p.Watermark(ep, name)
		if applied != nil {
			// The replica's own report overrides the cache in both
			// directions: higher (another publisher fed it) skips work,
			// lower (it lost state) forces the re-backfill.
			from = applied[name]
			p.setWatermark(ep, name, from)
		}
		have := p.src.VersionCount(name)
		for v := from + 1; v <= have; v++ {
			bundle, ok := p.src.Get(name, v)
			if !ok {
				continue
			}
			body, err := p.encodePush(bundle)
			if err != nil {
				return err
			}
			if err := p.pushTo(ctx, ep, name, v, body); err != nil {
				return err
			}
		}
	}
	return nil
}

// fetchStatus reads a replica's applied-version watermarks.
func (p *Publisher) fetchStatus(ctx context.Context, endpoint string) (map[string]int, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, endpoint+"/replica/status", nil)
	if err != nil {
		return nil, err
	}
	resp, err := p.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("replica: status %s: %d: %s", endpoint, resp.StatusCode, readError(resp.Body))
	}
	var st Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, fmt.Errorf("replica: undecodable status from %s: %w", endpoint, err)
	}
	if st.Watermarks == nil {
		st.Watermarks = map[string]int{}
	}
	return st.Watermarks, nil
}

// pushTo delivers one encoded bundle to one replica, retrying transport
// errors with exponential backoff (full jitter, see sleepBackoff) and
// healing version gaps by backfilling from the replica's reported
// watermark. Cancelling the context aborts the in-flight request and
// interrupts any backoff sleep.
func (p *Publisher) pushTo(ctx context.Context, endpoint, name string, version int, body pushBody) error {
	backoff := p.backoff
	var lastErr error
	for attempt := 0; attempt <= p.retries; attempt++ {
		if attempt > 0 {
			if err := sleepBackoff(ctx, backoff); err != nil {
				// Cancelled mid-retry: surface both the cancellation and
				// what we were retrying.
				return errors.Join(err, lastErr)
			}
			backoff *= 2
		}
		st, gap, err := p.pushOnce(ctx, endpoint, body)
		switch {
		case gap != nil:
			// The replica is missing versions ≤ ours: backfill in order
			// from its watermark, then re-deliver this one. Not a retry —
			// the gap reply is authoritative, so the attempt counter
			// resets inside the recursive deliveries.
			if err := p.backfill(ctx, endpoint, name, gap.Watermark, version-1); err != nil {
				return err
			}
			st, gap, err = p.pushOnce(ctx, endpoint, body)
			switch {
			case err == nil && gap == nil:
				p.noteWatermark(endpoint, name, st.Watermark)
				return nil
			case gap != nil:
				// Still behind after a completed backfill: the replica
				// lost state mid-protocol (or another publisher raced a
				// divergent history). Let the retry loop start over from
				// its reported watermark.
				lastErr = fmt.Errorf("replica: push %s@v%d to %s after backfill: replica still reports watermark %d", name, version, endpoint, gap.Watermark)
			default:
				lastErr = fmt.Errorf("replica: push %s@v%d to %s after backfill: %w", name, version, endpoint, err)
			}
		case err == nil:
			p.noteWatermark(endpoint, name, st.Watermark)
			return nil
		case isPermanent(err):
			return fmt.Errorf("replica: push %s@v%d to %s: %w", name, version, endpoint, err)
		default:
			lastErr = fmt.Errorf("replica: push %s@v%d to %s: %w", name, version, endpoint, err)
		}
	}
	return lastErr
}

// backfill pushes versions from..to of name (inclusive) to one
// endpoint, in order.
func (p *Publisher) backfill(ctx context.Context, endpoint, name string, watermark, to int) error {
	for v := watermark + 1; v <= to; v++ {
		bundle, ok := p.src.Get(name, v)
		if !ok {
			return fmt.Errorf("replica: backfill %s@v%d: not in source store", name, v)
		}
		body, err := p.encodePush(bundle)
		if err != nil {
			return err
		}
		st, gap, err := p.pushOnce(ctx, endpoint, body)
		if err != nil {
			return fmt.Errorf("replica: backfill %s@v%d to %s: %w", name, v, endpoint, err)
		}
		if gap != nil {
			return fmt.Errorf("replica: backfill %s@v%d to %s: replica still reports gap at watermark %d", name, v, endpoint, gap.Watermark)
		}
		p.noteWatermark(endpoint, name, st.Watermark)
	}
	return nil
}

// permanentError marks replies that retrying cannot fix (divergent
// digest, malformed bundle).
type permanentError struct{ msg string }

func (e *permanentError) Error() string { return e.msg }

func isPermanent(err error) bool {
	var pe *permanentError
	return errors.As(err, &pe)
}

// pushOnce performs a single POST /push. It returns the decoded status
// on success, the gap report on a version-gap 409, or an error.
func (p *Publisher) pushOnce(ctx context.Context, endpoint string, body pushBody) (PushStatus, *gapResponse, error) {
	payload := body.raw
	encoding := ""
	if body.gz != nil {
		payload, encoding = body.gz, "gzip"
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, endpoint+"/push", bytes.NewReader(payload))
	if err != nil {
		return PushStatus{}, nil, err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	if encoding != "" {
		req.Header.Set("Content-Encoding", encoding)
	}
	if p.authToken != "" {
		req.Header.Set("Authorization", "Bearer "+p.authToken)
	}
	resp, err := p.client.Do(req)
	if err != nil {
		return PushStatus{}, nil, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusUnauthorized:
		// Wrong or missing shared secret: retrying with the same token
		// cannot help.
		return PushStatus{}, nil, &permanentError{msg: "replica rejected push: " + readError(resp.Body)}
	case http.StatusOK:
		st, err := decodeStatus(resp.Body)
		return st, nil, err
	case http.StatusConflict:
		// Either a version gap (carries a watermark to resume from) or a
		// divergent release (permanent).
		var gap gapResponse
		if err := json.NewDecoder(resp.Body).Decode(&gap); err != nil {
			return PushStatus{}, nil, fmt.Errorf("undecodable 409 reply: %w", err)
		}
		if gap.Name != "" {
			return PushStatus{}, &gap, nil
		}
		return PushStatus{}, nil, &permanentError{msg: gap.Error}
	case http.StatusBadRequest:
		return PushStatus{}, nil, &permanentError{msg: readError(resp.Body)}
	default:
		return PushStatus{}, nil, fmt.Errorf("replica returned status %d: %s", resp.StatusCode, readError(resp.Body))
	}
}

// readError extracts the "error" field of a JSON error reply, falling
// back to the raw body.
func readError(r io.Reader) string {
	raw, _ := io.ReadAll(io.LimitReader(r, 4096))
	var body struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(raw, &body) == nil && body.Error != "" {
		return body.Error
	}
	return string(bytes.TrimSpace(raw))
}
