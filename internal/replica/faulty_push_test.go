package replica

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/faulty"
	"repro/internal/ml"
	"repro/internal/store"
)

// pushAudit sits directly in front of a replica's handler and records
// the replica's TRUE push replies — before any injected network fault
// mangles them on the way back to the publisher. It is the oracle for
// the replication protocol's safety claims under faults: every version
// is applied exactly once, and the acked watermark never regresses.
type pushAudit struct {
	mu      sync.Mutex
	applied map[string]int // "name@vN" → deliveries with Applied=true
	lastWM  map[string]int // name → last acked watermark
	regress []string
	acks    int
}

func (a *pushAudit) middleware(inner http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/push" {
			inner.ServeHTTP(w, r)
			return
		}
		rec := httptest.NewRecorder()
		inner.ServeHTTP(rec, r)
		if rec.Code == http.StatusOK {
			var st PushStatus
			if err := json.Unmarshal(rec.Body.Bytes(), &st); err == nil {
				a.mu.Lock()
				a.acks++
				if st.Applied {
					a.applied[fmt.Sprintf("%s@v%d", st.Name, st.Version)]++
				}
				if st.Watermark < a.lastWM[st.Name] {
					a.regress = append(a.regress, fmt.Sprintf("%s: %d after %d", st.Name, st.Watermark, a.lastWM[st.Name]))
				} else {
					a.lastWM[st.Name] = st.Watermark
				}
				a.mu.Unlock()
			}
		}
		for k, vs := range rec.Header() {
			w.Header()[k] = vs
		}
		w.WriteHeader(rec.Code)
		_, _ = w.Write(rec.Body.Bytes())
	})
}

func newPushAudit() *pushAudit {
	return &pushAudit{applied: map[string]int{}, lastWM: map[string]int{}}
}

// TestPublisherConvergesThroughFaults drives the publisher's push path
// through an injected-fault "network" and pins the protocol's safety
// and liveness claims:
//
//   - errors before the replica (500s) are retried until delivery;
//   - an applied push whose ACK is lost in flight (truncated reply —
//     the classic ambiguous outcome) is re-delivered, and the replica
//     acks it idempotently: no version is ever applied twice;
//   - the acked watermark never regresses;
//   - the replica ends at the source store's frontier.
func TestPublisherConvergesThroughFaults(t *testing.T) {
	rep := NewServer()
	audit := newPushAudit()
	inj := faulty.New(7)
	// Stack order matters: the injector wraps the audited replica, so
	// Error faults drop deliveries before the replica sees them, while
	// Partial faults let the replica apply the push and then corrupt the
	// ack on the wire — exactly the two ambiguous-failure shapes.
	srv := httptest.NewServer(inj.Handler(audit.middleware(rep.Handler())))
	defer srv.Close()
	inj.Set(
		faulty.Rule{Path: "/push", Mode: faulty.Error, First: 2},
		faulty.Rule{Path: "/push", Mode: faulty.Partial, Every: 4},
	)

	src := store.New()
	spec, err := store.Serialize(&ml.LinearModel{Weights: []float64{1}, Bias: 0})
	if err != nil {
		t.Fatal(err)
	}
	pub := NewPublisher(src, []string{srv.URL}, WithRetry(6, time.Millisecond), WithoutCompression())
	const versions = 6
	for v := 1; v <= versions; v++ {
		b := store.Bundle{Name: "m", Model: spec, Provenance: store.Provenance{Pipeline: "m", Quality: float64(v)}}
		if _, err := pub.Publish(b); err != nil {
			t.Fatalf("publish v%d through faults: %v", v, err)
		}
	}

	if got := rep.Store().VersionCount("m"); got != versions {
		t.Fatalf("replica converged to watermark %d, want %d", got, versions)
	}
	if inj.Fired() == 0 {
		t.Fatal("no fault ever fired — the test exercised nothing")
	}
	audit.mu.Lock()
	defer audit.mu.Unlock()
	for v := 1; v <= versions; v++ {
		key := fmt.Sprintf("m@v%d", v)
		if audit.applied[key] != 1 {
			t.Errorf("%s applied %d times, want exactly 1", key, audit.applied[key])
		}
	}
	if len(audit.regress) > 0 {
		t.Errorf("acked watermark regressed: %v", audit.regress)
	}
	if audit.acks <= versions {
		t.Errorf("%d acks for %d versions — expected idempotent re-deliveries after lost acks", audit.acks, versions)
	}
}

// TestPublisherConvergesThroughHangs: a replica that stalls (accepts
// the push and never answers) costs the publisher one client timeout,
// then the retry loop converges — and the duplicate-delivery safety
// holds when the hung delivery WAS applied server-side.
func TestPublisherConvergesThroughHangs(t *testing.T) {
	rep := NewServer()
	audit := newPushAudit()
	inj := faulty.New(11)
	srv := httptest.NewServer(inj.Handler(audit.middleware(rep.Handler())))
	defer srv.Close()
	inj.Set(faulty.Rule{Path: "/push", Mode: faulty.Hang, Every: 3})

	src := store.New()
	spec, err := store.Serialize(&ml.LinearModel{Weights: []float64{2}, Bias: 1})
	if err != nil {
		t.Fatal(err)
	}
	client := &http.Client{Timeout: 150 * time.Millisecond}
	pub := NewPublisher(src, []string{srv.URL},
		WithClient(client), WithRetry(4, time.Millisecond), WithoutCompression())
	const versions = 4
	for v := 1; v <= versions; v++ {
		b := store.Bundle{Name: "m", Model: spec, Provenance: store.Provenance{Pipeline: "m", Quality: float64(v)}}
		if _, err := pub.Publish(b); err != nil {
			t.Fatalf("publish v%d through hangs: %v", v, err)
		}
	}
	// Release any handler still parked on the injector so the server can
	// shut down cleanly.
	inj.Clear()

	if got := rep.Store().VersionCount("m"); got != versions {
		t.Fatalf("replica converged to watermark %d, want %d", got, versions)
	}
	audit.mu.Lock()
	defer audit.mu.Unlock()
	for v := 1; v <= versions; v++ {
		key := fmt.Sprintf("m@v%d", v)
		if audit.applied[key] != 1 {
			t.Errorf("%s applied %d times, want exactly 1", key, audit.applied[key])
		}
	}
	if len(audit.regress) > 0 {
		t.Errorf("acked watermark regressed: %v", audit.regress)
	}
}

// TestPushContextCancellationInterruptsBackoff pins the satellite fix:
// a publisher parked in a retry backoff (formerly a bare time.Sleep)
// must notice context cancellation promptly instead of sleeping out the
// full schedule.
func TestPushContextCancellationInterruptsBackoff(t *testing.T) {
	// Always-503: retryable forever, so without cancellation the retry
	// schedule below would sleep for minutes.
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer srv.Close()

	src := store.New()
	spec, err := store.Serialize(&ml.LinearModel{Weights: []float64{1}, Bias: 0})
	if err != nil {
		t.Fatal(err)
	}
	src.Publish(store.Bundle{Name: "m", Model: spec, Provenance: store.Provenance{Pipeline: "m"}})

	pub := NewPublisher(src, []string{srv.URL}, WithRetry(8, 30*time.Second), WithoutCompression())
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	err = pub.PushContext(ctx, "m", 1)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("push to an always-failing replica returned nil")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error does not carry the cancellation: %v", err)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("cancellation took %v to interrupt the backoff sleep", elapsed)
	}

	// SyncContext honors a pre-cancelled context the same way.
	cctx, ccancel := context.WithCancel(context.Background())
	ccancel()
	if err := pub.SyncContext(cctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("SyncContext with cancelled context = %v, want context.Canceled", err)
	}
}
