// Package replica implements Sage's replicated serving tier: the last
// hop of Fig. 1, where accepted models — "bundled with [their] feature
// transformation operators" — are *pushed into serving*. One
// trainer-side Publisher owns the authoritative store and pushes
// encoded bundles to N replica Servers; each replica atomically applies
// them into a local read-only store and answers the same HTTP API as
// the single-node server (shared handler code, so the two can never
// drift).
//
// # Push protocol
//
// Versions are assigned once, by the publisher's store, and carried
// inside the bundle. A push is POST /push with the gob-encoded bundle
// as the body; the replica's reply reports its *applied-version
// watermark* for that model name — watermark = n always means versions
// 1..n are applied, because the replica refuses gaps. The protocol is
// idempotent and self-healing:
//
//   - version == watermark+1 → applied, watermark advances.
//   - version <= watermark → duplicate. The replica verifies the
//     canonical digest (internal/core's audit serialization) against
//     the applied release and acks without reapplying; a digest
//     mismatch is a 409 — a release can never be silently replaced.
//   - version > watermark+1 → 409 with the watermark, and the
//     publisher backfills the missing versions in order. This is also
//     how a replica that joins late catches up: its watermark is 0, so
//     the first push triggers a backfill from version 1.
//
// Replica stores are read-only from the network's point of view: only
// /push mutates them, and application happens under the store's write
// lock, so a concurrent /predict sees either the old set of releases or
// the new one, never a half-applied bundle.
//
// Two wire-level options harden and cheapen the push path. /push can be
// gated behind a shared-secret bearer token (WithAuthToken on the
// server, the matching option on the Publisher): the mutating endpoint
// then rejects unauthenticated bodies with 401 before reading them,
// while the read API stays open. And push bodies may be gzip-compressed
// (Content-Encoding: gzip, the publisher's default for bodies past a
// small threshold) — wide released feature tables are highly
// redundant, so compression cuts fan-out bandwidth by integer factors;
// the replica decompresses transparently and enforces the same
// decoded-size cap as for identity bodies.
package replica

import (
	"compress/gzip"
	"crypto/subtle"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"repro/internal/metrics"
	"repro/internal/store"
	"repro/internal/trace"
)

// maxPushBodyBytes bounds one pushed bundle. Models at the paper's
// scale (taxi/criteo dims, small MLPs) are a few KB; 64 MiB leaves room
// for wide released aggregates without letting one connection pin
// unbounded memory.
const maxPushBodyBytes = 64 << 20

// PushStatus is a replica's reply to one push (and one entry of the
// status listing): the applied-version watermark after the push, and
// whether this delivery changed it.
type PushStatus struct {
	Name    string `json:"name"`
	Version int    `json:"version"`
	// Applied is true when this delivery advanced the store; false for
	// an idempotent re-delivery.
	Applied bool `json:"applied"`
	// Watermark is the replica's applied version count for Name: all of
	// versions 1..Watermark are present.
	Watermark int `json:"watermark"`
}

// Status is the reply to GET /replica/status — the health and lag
// signal the gateway tier routes on: a replica whose watermarks trail
// the fleet is drained (not killed) until it catches up, and Inflight
// exposes the replica's current serving load for observability.
type Status struct {
	// Watermarks maps model name → applied version count.
	Watermarks map[string]int `json:"watermarks"`
	Generation uint64         `json:"generation"`
	// Models is the number of distinct model names applied.
	Models int `json:"models"`
	// Inflight is the number of serving-API requests currently being
	// handled (push and status traffic excluded).
	Inflight int64 `json:"inflight"`
}

// gapResponse is the 409 body for out-of-order pushes: it carries the
// watermark so the publisher knows where to resume.
type gapResponse struct {
	Error     string `json:"error"`
	Name      string `json:"name"`
	Watermark int    `json:"watermark"`
}

// Server is one serving replica: a local store that only /push can
// mutate, behind the exact same serving handlers as the single-node
// tier (store.Server — shared code, not a copy), plus the push and
// status endpoints of the replication protocol.
type Server struct {
	store *store.Store
	srv   *store.Server
	// authToken, when non-empty, gates POST /push behind
	// "Authorization: Bearer <token>".
	authToken string
	// reg is the replica's metric registry, served at GET /metrics.
	// GET /replica/status reads the same handles — the registry is the
	// single source of truth, there is no parallel bookkeeping.
	reg *metrics.Registry
	// inflight counts serving-API requests currently in progress
	// (push, status, and metrics traffic excluded).
	inflight *metrics.Gauge
	// Push outcome counters, pre-resolved per outcome so the push path
	// does no registry lookups.
	pushApplied      *metrics.Counter
	pushDuplicate    *metrics.Counter
	pushGap          *metrics.Counter
	pushRejected     *metrics.Counter
	pushUnauthorized *metrics.Counter
	pushBadBody      *metrics.Counter
	pushSec          *metrics.Histogram
	// tracer, when non-nil, wraps the whole handler in a server span
	// (continuing any incoming traceparent — the gateway's attempt span)
	// and serves GET /debug/trace.
	tracer *trace.Tracer
}

// ServerOption configures a replica server.
type ServerOption func(*Server)

// WithAuthToken requires pushes to carry "Authorization: Bearer tok".
// An empty token leaves /push open (the default, for in-process tests
// and trusted networks). Only the mutating endpoint is gated; the read
// API a replica exists to serve stays public.
func WithAuthToken(tok string) ServerOption {
	return func(s *Server) { s.authToken = tok }
}

// WithTracer enables request tracing: every request runs under a
// server span continuing any incoming traceparent, and the handler
// serves GET /debug/trace. A nil tracer (the default) leaves the
// serving path untraced and unchanged.
func WithTracer(t *trace.Tracer) ServerOption {
	return func(s *Server) { s.tracer = t }
}

// NewServer returns an empty replica. It serves nothing until a
// publisher pushes bundles into it.
func NewServer(opts ...ServerOption) *Server {
	st := store.New()
	reg := metrics.New()
	s := &Server{store: st, srv: store.NewServer(st), reg: reg}
	s.srv.Instrument(reg)
	s.inflight = reg.Gauge("sage_replica_inflight_requests",
		"Serving-API requests currently in progress.")
	outcome := func(o string) *metrics.Counter {
		return reg.Counter("sage_replica_pushes_total",
			"Push deliveries by outcome.", metrics.Label{Name: "outcome", Value: o})
	}
	s.pushApplied = outcome("applied")
	s.pushDuplicate = outcome("duplicate")
	s.pushGap = outcome("gap")
	s.pushRejected = outcome("rejected")
	s.pushUnauthorized = outcome("unauthorized")
	s.pushBadBody = outcome("bad_body")
	s.pushSec = reg.Histogram("sage_replica_push_seconds",
		"Latency of one POST /push delivery.", metrics.LatencyBuckets())
	reg.GaugeFunc("sage_replica_applied_versions_total",
		"Sum of applied-version watermarks across all model names.",
		func() float64 {
			total := 0
			for _, wm := range st.Watermarks() {
				total += wm
			}
			return float64(total)
		})
	reg.GaugeFunc("sage_replica_models",
		"Distinct model names applied.",
		func() float64 { return float64(len(st.Watermarks())) })
	for _, o := range opts {
		o(s)
	}
	return s
}

// Metrics exposes the replica's registry (tests scrape it without
// going through HTTP).
func (s *Server) Metrics() *metrics.Registry { return s.reg }

// Store exposes the replica's local store (tests and diagnostics; the
// serving path never hands it out).
func (s *Server) Store() *store.Store { return s.store }

// Handler returns the replica's HTTP handler: the full single-node
// serving API plus POST /push, GET /replica/status, and GET /metrics.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /push", s.handlePush)
	mux.HandleFunc("GET /replica/status", s.handleStatus)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	if s.tracer != nil {
		mux.Handle("GET /debug/trace", s.tracer.DebugHandler(func() any { return s.reg.Exemplars() }))
	}
	serving := s.srv.Handler()
	mux.Handle("/", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.inflight.Add(1)
		defer s.inflight.Add(-1)
		serving.ServeHTTP(w, r)
	}))
	// Middleware on a nil tracer returns mux unchanged, so the untraced
	// replica serves the exact handler it always has.
	return s.tracer.Middleware(mux)
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.reg.TextExpose(w)
}

// authorized checks the shared-secret bearer token in constant time.
func (s *Server) authorized(r *http.Request) bool {
	if s.authToken == "" {
		return true
	}
	got := r.Header.Get("Authorization")
	want := "Bearer " + s.authToken
	return subtle.ConstantTimeCompare([]byte(got), []byte(want)) == 1
}

func (s *Server) handlePush(w http.ResponseWriter, r *http.Request) {
	defer s.pushSec.ObserveSinceExemplar(time.Now(), trace.CtxTraceID(r.Context()))
	if !s.authorized(r) {
		s.pushUnauthorized.Inc()
		w.Header().Set("WWW-Authenticate", `Bearer realm="sage-replica"`)
		writeJSON(w, http.StatusUnauthorized, map[string]string{"error": "push requires a valid bearer token"})
		return
	}
	// The byte cap applies to the *decoded* bundle: MaxBytesReader
	// bounds what is read off the wire, and for gzip bodies an extra
	// LimitReader bounds what decompression may expand to, so a
	// compression bomb cannot pin unbounded memory.
	body := io.Reader(http.MaxBytesReader(w, r.Body, maxPushBodyBytes))
	if r.Header.Get("Content-Encoding") == "gzip" {
		gz, err := gzip.NewReader(body)
		if err != nil {
			s.pushBadBody.Inc()
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": "bad gzip body: " + err.Error()})
			return
		}
		defer gz.Close()
		body = io.LimitReader(gz, maxPushBodyBytes+1)
	}
	raw, err := io.ReadAll(body)
	if err != nil {
		s.pushBadBody.Inc()
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "reading bundle: " + err.Error()})
		return
	}
	if int64(len(raw)) > maxPushBodyBytes {
		s.pushBadBody.Inc()
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "bundle exceeds size limit after decompression"})
		return
	}
	b, err := store.DecodeBundle(raw)
	if err != nil {
		s.pushBadBody.Inc()
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	applied, err := s.store.Apply(*b)
	if err != nil {
		if gap, ok := err.(*store.VersionGapError); ok {
			s.pushGap.Inc()
			writeJSON(w, http.StatusConflict, gapResponse{
				Error: gap.Error(), Name: gap.Name, Watermark: gap.Watermark,
			})
			return
		}
		// Digest mismatch (divergent release) or unversioned bundle.
		s.pushRejected.Inc()
		writeJSON(w, http.StatusConflict, map[string]string{"error": err.Error()})
		return
	}
	if applied {
		s.pushApplied.Inc()
	} else {
		s.pushDuplicate.Inc()
	}
	writeJSON(w, http.StatusOK, PushStatus{
		Name: b.Name, Version: b.Version,
		Applied:   applied,
		Watermark: s.store.VersionCount(b.Name),
	})
}

func (s *Server) handleStatus(w http.ResponseWriter, _ *http.Request) {
	wms := s.store.Watermarks()
	writeJSON(w, http.StatusOK, Status{
		Watermarks: wms,
		Generation: s.store.Generation(),
		Models:     len(wms),
		Inflight:   s.inflight.Value(),
	})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

// decodeStatus parses a push reply.
func decodeStatus(r io.Reader) (PushStatus, error) {
	var st PushStatus
	if err := json.NewDecoder(r).Decode(&st); err != nil {
		return st, fmt.Errorf("replica: undecodable push reply: %w", err)
	}
	return st, nil
}
