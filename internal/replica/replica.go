// Package replica implements Sage's replicated serving tier: the last
// hop of Fig. 1, where accepted models — "bundled with [their] feature
// transformation operators" — are *pushed into serving*. One
// trainer-side Publisher owns the authoritative store and pushes
// encoded bundles to N replica Servers; each replica atomically applies
// them into a local read-only store and answers the same HTTP API as
// the single-node server (shared handler code, so the two can never
// drift).
//
// # Push protocol
//
// Versions are assigned once, by the publisher's store, and carried
// inside the bundle. A push is POST /push with the gob-encoded bundle
// as the body; the replica's reply reports its *applied-version
// watermark* for that model name — watermark = n always means versions
// 1..n are applied, because the replica refuses gaps. The protocol is
// idempotent and self-healing:
//
//   - version == watermark+1 → applied, watermark advances.
//   - version <= watermark → duplicate. The replica verifies the
//     canonical digest (internal/core's audit serialization) against
//     the applied release and acks without reapplying; a digest
//     mismatch is a 409 — a release can never be silently replaced.
//   - version > watermark+1 → 409 with the watermark, and the
//     publisher backfills the missing versions in order. This is also
//     how a replica that joins late catches up: its watermark is 0, so
//     the first push triggers a backfill from version 1.
//
// Replica stores are read-only from the network's point of view: only
// /push mutates them, and application happens under the store's write
// lock, so a concurrent /predict sees either the old set of releases or
// the new one, never a half-applied bundle.
package replica

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"repro/internal/store"
)

// maxPushBodyBytes bounds one pushed bundle. Models at the paper's
// scale (taxi/criteo dims, small MLPs) are a few KB; 64 MiB leaves room
// for wide released aggregates without letting one connection pin
// unbounded memory.
const maxPushBodyBytes = 64 << 20

// PushStatus is a replica's reply to one push (and one entry of the
// status listing): the applied-version watermark after the push, and
// whether this delivery changed it.
type PushStatus struct {
	Name    string `json:"name"`
	Version int    `json:"version"`
	// Applied is true when this delivery advanced the store; false for
	// an idempotent re-delivery.
	Applied bool `json:"applied"`
	// Watermark is the replica's applied version count for Name: all of
	// versions 1..Watermark are present.
	Watermark int `json:"watermark"`
}

// statusResponse is the reply to GET /replica/status.
type statusResponse struct {
	// Watermarks maps model name → applied version count.
	Watermarks map[string]int `json:"watermarks"`
	Generation uint64         `json:"generation"`
}

// gapResponse is the 409 body for out-of-order pushes: it carries the
// watermark so the publisher knows where to resume.
type gapResponse struct {
	Error     string `json:"error"`
	Name      string `json:"name"`
	Watermark int    `json:"watermark"`
}

// Server is one serving replica: a local store that only /push can
// mutate, behind the exact same serving handlers as the single-node
// tier (store.Server — shared code, not a copy), plus the push and
// status endpoints of the replication protocol.
type Server struct {
	store *store.Store
	srv   *store.Server
}

// NewServer returns an empty replica. It serves nothing until a
// publisher pushes bundles into it.
func NewServer() *Server {
	st := store.New()
	return &Server{store: st, srv: store.NewServer(st)}
}

// Store exposes the replica's local store (tests and diagnostics; the
// serving path never hands it out).
func (s *Server) Store() *store.Store { return s.store }

// Handler returns the replica's HTTP handler: the full single-node
// serving API plus POST /push and GET /replica/status.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /push", s.handlePush)
	mux.HandleFunc("GET /replica/status", s.handleStatus)
	mux.Handle("/", s.srv.Handler())
	return mux
}

func (s *Server) handlePush(w http.ResponseWriter, r *http.Request) {
	raw, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxPushBodyBytes))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "reading bundle: " + err.Error()})
		return
	}
	b, err := store.DecodeBundle(raw)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	applied, err := s.store.Apply(*b)
	if err != nil {
		if gap, ok := err.(*store.VersionGapError); ok {
			writeJSON(w, http.StatusConflict, gapResponse{
				Error: gap.Error(), Name: gap.Name, Watermark: gap.Watermark,
			})
			return
		}
		// Digest mismatch (divergent release) or unversioned bundle.
		writeJSON(w, http.StatusConflict, map[string]string{"error": err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, PushStatus{
		Name: b.Name, Version: b.Version,
		Applied:   applied,
		Watermark: s.store.VersionCount(b.Name),
	})
}

func (s *Server) handleStatus(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, statusResponse{
		Watermarks: s.store.Watermarks(),
		Generation: s.store.Generation(),
	})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

// decodeStatus parses a push reply.
func decodeStatus(r io.Reader) (PushStatus, error) {
	var st PushStatus
	if err := json.NewDecoder(r).Decode(&st); err != nil {
		return st, fmt.Errorf("replica: undecodable push reply: %w", err)
	}
	return st, nil
}
