package replica

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/adaptive"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/ml"
	"repro/internal/pipeline"
	"repro/internal/privacy"
	"repro/internal/rng"
	"repro/internal/store"
	"repro/internal/taxi"
	"repro/internal/validation"
)

// trainTaxiBundle runs the real Fig. 1 front half at test scale —
// stream → growing database → access control → privacy-adaptive
// training → SLAed validation — and returns the accepted release as a
// publishable bundle. The replicas under test serve an actually-trained
// model, not a synthetic stub.
func trainTaxiBundle(tb testing.TB) store.Bundle {
	tb.Helper()
	gen := taxi.NewGenerator(taxi.Config{}, 17)
	rides := gen.Generate(160000, 0, 480)
	clean, _ := taxi.Clean(rides)
	speeds := taxi.SpeedByHour(clean, 0, nil)

	db := data.NewGrowingDatabase(data.TimePartitioner{Window: 24})
	ac := core.NewAccessControl(core.Policy{Global: privacy.MustBudget(1, 1e-6)})
	for _, ex := range taxi.Featurize(clean, speeds).Examples {
		for _, id := range db.Insert(ex) {
			ac.RegisterBlock(id)
		}
	}
	pipe := &pipeline.Pipeline{
		Name:    "taxi-lr",
		Trainer: pipeline.AdaSSPTrainer{Rho: 0.1, FeatureBound: 2.5, LabelBound: 1},
		Validator: pipeline.MSEValidator{
			Target: 0.016, B: 1,
			ERMTrainer: pipeline.RidgeTrainer{Lambda: 1e-4},
		},
		Mode: validation.ModeSage,
	}
	st := &adaptive.StreamTrainer{
		AC: ac, DB: db, Pipe: pipe,
		Epsilon0: 0.125, EpsilonCap: 1, Delta: 1e-8,
		MinWindow: min(10, db.NumBlocks()),
	}
	res, err := st.Run(rng.New(3))
	if err != nil {
		tb.Fatalf("training: %v", err)
	}
	if res.Decision != validation.Accept {
		tb.Fatalf("training decision %v (quality %v)", res.Decision, res.Quality)
	}
	spec, err := store.Serialize(res.Model)
	if err != nil {
		tb.Fatal(err)
	}
	return store.Bundle{
		Name:     "taxi-lr",
		Model:    spec,
		Features: map[string][]float64{"hour_speed": speeds},
		Provenance: store.Provenance{
			Pipeline: pipe.Name,
			Spent:    res.TotalSpent,
			Blocks:   res.Blocks,
			Decision: res.Decision.String(),
			Quality:  res.Quality,
		},
	}
}

// newReplica spins up one in-process replica.
func newReplica(tb testing.TB) (*Server, *httptest.Server) {
	tb.Helper()
	rep := NewServer()
	srv := httptest.NewServer(rep.Handler())
	tb.Cleanup(srv.Close)
	return rep, srv
}

// fetch returns status code and raw body.
func fetch(tb testing.TB, method, url, body string) (int, []byte) {
	tb.Helper()
	var resp *http.Response
	var err error
	switch method {
	case http.MethodGet:
		resp, err = http.Get(url)
	default:
		resp, err = http.Post(url, "application/json", bytes.NewBufferString(body))
	}
	if err != nil {
		tb.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		tb.Fatal(err)
	}
	return resp.StatusCode, raw
}

// TestReplicatedServingEndToEnd is the tier's acceptance test: train a
// real model, publish it through a Publisher wired to 3 in-process
// replicas, and require every replica to answer the full serving API
// byte-for-byte identically to the primary — predictions, batches,
// provenance, and feature tables. Then a 4th replica joins late and
// must catch up to all current versions via Sync.
func TestReplicatedServingEndToEnd(t *testing.T) {
	bundle := trainTaxiBundle(t)

	src := store.New()
	primary := httptest.NewServer(store.NewServer(src).Handler())
	defer primary.Close()

	var urls []string
	for i := 0; i < 3; i++ {
		_, srv := newReplica(t)
		urls = append(urls, srv.URL)
	}
	pub := NewPublisher(src, urls, WithRetry(2, 5*time.Millisecond))

	// Publish v1 (the trained release) and a v2 of the same line — the
	// push protocol must keep per-name version sequences, not just one.
	if _, err := pub.Publish(bundle); err != nil {
		t.Fatalf("publish v1: %v", err)
	}
	v2 := bundle
	v2.Provenance.Quality *= 1.1
	version, err := pub.Publish(v2)
	if err != nil {
		t.Fatalf("publish v2: %v", err)
	}
	if version != 2 {
		t.Fatalf("v2 assigned version %d", version)
	}
	for _, ep := range urls {
		if wm := pub.Watermark(ep, "taxi-lr"); wm != 2 {
			t.Errorf("watermark(%s) = %d, want 2", ep, wm)
		}
	}

	// Byte-identical responses across primary and every replica, for
	// every read endpoint the single-node API has.
	row := make([]float64, taxi.FeatureDim)
	for i := range row {
		row[i] = 0.01 * float64(i)
	}
	rowJSON, _ := json.Marshal(row)
	requests := []struct {
		name, method, path, body string
	}{
		{"models", "GET", "/models", ""},
		{"provenance", "GET", "/models/taxi-lr/provenance", ""},
		{"provenance v1", "GET", "/models/taxi-lr/provenance?version=1", ""},
		{"features keys", "GET", "/features?model=taxi-lr", ""},
		{"features table", "GET", "/features?model=taxi-lr&key=hour_speed", ""},
		{"features index", "GET", "/features?model=taxi-lr&key=hour_speed&index=8", ""},
		{"predict", "POST", "/predict?model=taxi-lr", fmt.Sprintf(`{"features":%s}`, rowJSON)},
		{"predict batch", "POST", "/predict/batch?model=taxi-lr", fmt.Sprintf(`{"rows":[%s,%s]}`, rowJSON, rowJSON)},
		{"predict v1", "POST", "/predict?model=taxi-lr&version=1", fmt.Sprintf(`{"features":%s}`, rowJSON)},
	}
	for _, req := range requests {
		wantCode, want := fetch(t, req.method, primary.URL+req.path, req.body)
		if wantCode != http.StatusOK {
			t.Fatalf("%s: primary returned %d: %s", req.name, wantCode, want)
		}
		for i, ep := range urls {
			code, got := fetch(t, req.method, ep+req.path, req.body)
			if code != http.StatusOK {
				t.Errorf("%s: replica %d returned %d: %s", req.name, i, code, got)
				continue
			}
			if !bytes.Equal(want, got) {
				t.Errorf("%s: replica %d response differs from primary:\n  primary: %s\n  replica: %s", req.name, i, want, got)
			}
		}
	}

	// Late join: a fresh replica added after both publishes must catch
	// up to the current versions through Sync.
	late, lateSrv := newReplica(t)
	pub.AddEndpoints(lateSrv.URL)
	if err := pub.Sync(); err != nil {
		t.Fatalf("late-join sync: %v", err)
	}
	if got := late.Store().VersionCount("taxi-lr"); got != 2 {
		t.Fatalf("late replica at %d version(s), want 2", got)
	}
	for _, req := range requests {
		_, want := fetch(t, req.method, primary.URL+req.path, req.body)
		code, got := fetch(t, req.method, lateSrv.URL+req.path, req.body)
		if code != http.StatusOK || !bytes.Equal(want, got) {
			t.Errorf("%s: late replica differs (code %d):\n  primary: %s\n  replica: %s", req.name, code, want, got)
		}
	}

	// Sync is idempotent: a second run pushes nothing new and changes
	// nothing.
	gen := late.Store().Generation()
	if err := pub.Sync(); err != nil {
		t.Fatalf("second sync: %v", err)
	}
	if late.Store().Generation() != gen {
		t.Error("idempotent sync mutated the replica store")
	}
}

// TestPushGapTriggersBackfill covers the protocol's self-healing: a
// publisher that pushes only the newest version to a behind replica
// gets a 409 with the replica's watermark and must backfill the missing
// versions in order, transparently.
func TestPushGapTriggersBackfill(t *testing.T) {
	src := store.New()
	spec, _ := store.Serialize(&ml.LinearModel{Weights: []float64{1}, Bias: 0})
	for i := 0; i < 3; i++ {
		b := store.Bundle{Name: "m", Model: spec}
		b.Provenance.Quality = float64(i)
		src.Publish(b)
	}

	rep, srv := newReplica(t)
	pub := NewPublisher(src, []string{srv.URL}, WithRetry(1, time.Millisecond))
	// Push only v3: the replica (watermark 0) must end up with 1..3.
	if err := pub.Push("m", 3); err != nil {
		t.Fatalf("push with gap: %v", err)
	}
	if got := rep.Store().VersionCount("m"); got != 3 {
		t.Fatalf("replica has %d version(s), want 3 (backfilled)", got)
	}
	for v := 1; v <= 3; v++ {
		b, ok := rep.Store().Get("m", v)
		if !ok || b.Provenance.Quality != float64(v-1) {
			t.Errorf("version %d missing or wrong after backfill: %+v", v, b)
		}
	}
	if wm := pub.Watermark(srv.URL, "m"); wm != 3 {
		t.Errorf("publisher watermark = %d, want 3", wm)
	}
}

// TestPushRetriesTransientErrors pins the retry/backoff path: a replica
// that fails with 503 twice before recovering must still converge, and
// a divergent release (409 digest mismatch) must fail immediately with
// no retries.
func TestPushRetriesTransientErrors(t *testing.T) {
	rep := NewServer()
	inner := rep.Handler()
	var calls atomic.Int32
	flaky := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			http.Error(w, "replica warming up", http.StatusServiceUnavailable)
			return
		}
		inner.ServeHTTP(w, r)
	}))
	defer flaky.Close()

	src := store.New()
	spec, _ := store.Serialize(&ml.LinearModel{Weights: []float64{2}, Bias: 1})
	src.Publish(store.Bundle{Name: "m", Model: spec})

	pub := NewPublisher(src, []string{flaky.URL}, WithRetry(3, time.Millisecond))
	if err := pub.Push("m", 1); err != nil {
		t.Fatalf("push through flaky replica: %v", err)
	}
	if got := rep.Store().VersionCount("m"); got != 1 {
		t.Fatalf("replica store has %d versions, want 1", got)
	}
	if calls.Load() != 3 {
		t.Errorf("push took %d attempts, want 3 (two 503s then success)", calls.Load())
	}

	// Exhausted retries surface as an error.
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		http.Error(w, "down", http.StatusServiceUnavailable)
	}))
	defer dead.Close()
	pubDead := NewPublisher(src, []string{dead.URL}, WithRetry(1, time.Millisecond))
	if err := pubDead.Push("m", 1); err == nil {
		t.Error("push to permanently-down replica reported success")
	}

	// Divergence is permanent: same (name, version), different content
	// must be rejected without retrying.
	var divergeCalls atomic.Int32
	countingRep := NewServer()
	counting := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		divergeCalls.Add(1)
		countingRep.Handler().ServeHTTP(w, r)
	}))
	defer counting.Close()
	if _, err := countingRep.Store().Apply(func() store.Bundle {
		other, _ := store.Serialize(&ml.LinearModel{Weights: []float64{9}, Bias: 9})
		return store.Bundle{Name: "m", Version: 1, Model: other}
	}()); err != nil {
		t.Fatal(err)
	}
	divergeCalls.Store(0)
	pubDiv := NewPublisher(src, []string{counting.URL}, WithRetry(5, time.Millisecond))
	if err := pubDiv.Push("m", 1); err == nil {
		t.Fatal("divergent push reported success")
	}
	if divergeCalls.Load() != 1 {
		t.Errorf("divergent push attempted %d times, want 1 (permanent errors must not retry)", divergeCalls.Load())
	}
}

// TestPushRacesPredict hammers a replica's /predict/batch while the
// publisher pushes new versions into it. Every response must be
// well-formed and consistent with exactly one published version —
// atomic swap means no request ever observes a half-applied bundle.
// Run under -race, this also checks the store/cache synchronization.
func TestPushRacesPredict(t *testing.T) {
	src := store.New()
	// Version v predicts exactly float64(v) for the zero row: bias = v,
	// so a response's prediction identifies the version that served it.
	mkSpec := func(v int) store.ModelSpec {
		spec, _ := store.Serialize(&ml.LinearModel{Weights: []float64{1, 1}, Bias: float64(v)})
		return spec
	}
	src.Publish(store.Bundle{Name: "m", Model: mkSpec(1)})

	rep, srv := newReplica(t)
	pub := NewPublisher(src, []string{srv.URL}, WithRetry(2, time.Millisecond))
	if err := pub.Push("m", 1); err != nil {
		t.Fatal(err)
	}

	const versions = 8
	var wg sync.WaitGroup
	stop := make(chan struct{})
	errCh := make(chan error, 4)
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			client := srv.Client()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := client.Post(srv.URL+"/predict/batch?model=m", "application/json",
					bytes.NewBufferString(`{"rows":[[0,0],[0,0]]}`))
				if err != nil {
					errCh <- err
					return
				}
				raw, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errCh <- fmt.Errorf("status %d: %s", resp.StatusCode, raw)
					return
				}
				var body struct {
					Version     int        `json:"version"`
					Predictions []*float64 `json:"predictions"`
				}
				if err := json.Unmarshal(raw, &body); err != nil {
					errCh <- fmt.Errorf("undecodable predict response %q: %w", raw, err)
					return
				}
				if body.Version < 1 || body.Version > versions {
					errCh <- fmt.Errorf("response names version %d, outside published range", body.Version)
					return
				}
				for _, p := range body.Predictions {
					if p == nil || *p != float64(body.Version) {
						errCh <- fmt.Errorf("version %d answered prediction %v: torn read", body.Version, p)
						return
					}
				}
			}
		}()
	}
	for v := 2; v <= versions; v++ {
		src.Publish(store.Bundle{Name: "m", Model: mkSpec(v)})
		if err := pub.Push("m", v); err != nil {
			t.Fatalf("push v%d during predicts: %v", v, err)
		}
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}
	if got := rep.Store().VersionCount("m"); got != versions {
		t.Fatalf("replica converged at %d versions, want %d", got, versions)
	}
}

// TestSyncHealsRestartedReplica pins Sync's anti-entropy contract: it
// reconciles against the replica's *reported* watermarks, not the
// publisher's cache, so a replica that restarted empty (same endpoint,
// lost state) is re-backfilled even though the publisher remembers
// acking every version.
func TestSyncHealsRestartedReplica(t *testing.T) {
	src := store.New()
	spec, _ := store.Serialize(&ml.LinearModel{Weights: []float64{1}, Bias: 0})
	src.Publish(store.Bundle{Name: "m", Model: spec})
	src.Publish(store.Bundle{Name: "m", Model: spec})

	// The endpoint survives the "restart"; the replica behind it does
	// not.
	var current atomic.Value
	first := NewServer()
	current.Store(first.Handler())
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		current.Load().(http.Handler).ServeHTTP(w, r)
	}))
	defer srv.Close()

	pub := NewPublisher(src, []string{srv.URL}, WithRetry(1, time.Millisecond))
	if err := pub.Sync(); err != nil {
		t.Fatal(err)
	}
	if got := first.Store().VersionCount("m"); got != 2 {
		t.Fatalf("first replica at %d versions, want 2", got)
	}

	// Restart: fresh empty store behind the same URL. The cached
	// watermark still says 2.
	reborn := NewServer()
	current.Store(reborn.Handler())
	if wm := pub.Watermark(srv.URL, "m"); wm != 2 {
		t.Fatalf("precondition: cached watermark %d, want 2", wm)
	}
	if err := pub.Sync(); err != nil {
		t.Fatalf("sync after restart: %v", err)
	}
	if got := reborn.Store().VersionCount("m"); got != 2 {
		t.Errorf("restarted replica at %d versions after Sync, want 2 (must heal from reported watermark, not cache)", got)
	}
}

// TestReplicaStatusEndpoint covers the operator view: watermarks per
// model and the store generation.
func TestReplicaStatusEndpoint(t *testing.T) {
	src := store.New()
	spec, _ := store.Serialize(&ml.LinearModel{Weights: []float64{1}, Bias: 0})
	src.Publish(store.Bundle{Name: "a", Model: spec})
	src.Publish(store.Bundle{Name: "a", Model: spec})
	src.Publish(store.Bundle{Name: "b", Model: spec})

	_, srv := newReplica(t)
	pub := NewPublisher(src, []string{srv.URL}, WithRetry(1, time.Millisecond))
	if err := pub.Sync(); err != nil {
		t.Fatal(err)
	}
	code, raw := fetch(t, "GET", srv.URL+"/replica/status", "")
	if code != http.StatusOK {
		t.Fatalf("status code %d", code)
	}
	var st struct {
		Watermarks map[string]int `json:"watermarks"`
		Generation uint64         `json:"generation"`
	}
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatal(err)
	}
	if st.Watermarks["a"] != 2 || st.Watermarks["b"] != 1 {
		t.Errorf("watermarks = %v, want a:2 b:1", st.Watermarks)
	}
	if st.Generation != 3 {
		t.Errorf("generation = %d, want 3 (one per applied bundle)", st.Generation)
	}
}
