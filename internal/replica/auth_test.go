package replica

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/data"
	"repro/internal/privacy"
	"repro/internal/store"
)

// wideBundle builds a bundle whose released feature tables are wide and
// structured (the realistic case: DP aggregates over many groups, most
// of them similar or zero) — the workload gzip push compression exists
// for.
func wideBundle(version int) store.Bundle {
	features := make(map[string][]float64, 4)
	for _, name := range []string{"hour_speed", "zone_speed", "zone_count", "od_matrix"} {
		table := make([]float64, 20000)
		for i := range table {
			// Repetitive structure with sparse deviations, like a real
			// per-group aggregate.
			table[i] = float64(i % 24)
			if i%97 == 0 {
				table[i] += 0.5
			}
		}
		features[name] = table
	}
	return store.Bundle{
		Name:     "wide",
		Version:  version,
		Model:    store.ModelSpec{Kind: "linear", Weights: []float64{1, 2, 3}, Bias: 0.5},
		Features: features,
		Provenance: store.Provenance{
			Pipeline: "wide", Spent: privacy.MustBudget(0.25, 1e-9),
			Blocks: []data.BlockID{1, 2}, Decision: "ACCEPT", Quality: 0.01,
		},
	}
}

func TestPushAuthRequired(t *testing.T) {
	rep := NewServer(WithAuthToken("sekrit"))
	srv := httptest.NewServer(rep.Handler())
	defer srv.Close()

	src := store.New()
	b := wideBundle(0)
	src.Publish(b)

	// No token: 401, permanent (no retry storm), nothing applied.
	noAuth := NewPublisher(src, []string{srv.URL})
	if err := noAuth.Push("wide", 1); err == nil || !strings.Contains(err.Error(), "bearer token") {
		t.Fatalf("unauthenticated push: %v", err)
	}
	if !isPermanent(unwrapJoined(t, noAuth.Push("wide", 1))) {
		t.Fatal("401 should be a permanent error")
	}
	if rep.Store().VersionCount("wide") != 0 {
		t.Fatal("unauthenticated push was applied")
	}

	// Wrong token: still 401.
	badAuth := NewPublisher(src, []string{srv.URL}, WithAuth("wrong"))
	if err := badAuth.Push("wide", 1); err == nil {
		t.Fatal("wrong-token push accepted")
	}

	// Right token: applied.
	auth := NewPublisher(src, []string{srv.URL}, WithAuth("sekrit"))
	if err := auth.Push("wide", 1); err != nil {
		t.Fatal(err)
	}
	if rep.Store().VersionCount("wide") != 1 {
		t.Fatal("authenticated push not applied")
	}

	// The read API stays open without credentials.
	resp, err := http.Get(srv.URL + "/replica/status")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("status without auth: %v %v", err, resp.StatusCode)
	}
	resp.Body.Close()
}

// unwrapJoined digs the single underlying error out of Push's joined
// per-endpoint errors.
func unwrapJoined(t *testing.T, err error) error {
	t.Helper()
	if err == nil {
		t.Fatal("expected error")
	}
	return err
}

// TestGzipPushReducesWireBytes pins the compression satellite: for a
// wide-feature-table bundle, the bytes on the wire must be a small
// fraction of the encoded bundle, the replica must apply it with a
// digest identical to the source, and disabling compression must send
// identity bodies.
func TestGzipPushReducesWireBytes(t *testing.T) {
	var wireBytes atomic.Int64
	var sawGzip atomic.Bool
	rep := NewServer()
	counting := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/push" {
			if r.Header.Get("Content-Encoding") == "gzip" {
				sawGzip.Store(true)
			}
			wireBytes.Store(r.ContentLength)
		}
		rep.Handler().ServeHTTP(w, r)
	}))
	defer counting.Close()

	src := store.New()
	b := wideBundle(0)
	src.Publish(b)
	stored, _ := src.Get("wide", 1)
	raw, err := stored.Encode()
	if err != nil {
		t.Fatal(err)
	}

	pub := NewPublisher(src, []string{counting.URL})
	if err := pub.Push("wide", 1); err != nil {
		t.Fatal(err)
	}
	if !sawGzip.Load() {
		t.Fatal("wide bundle pushed without Content-Encoding: gzip")
	}
	// "Integer factors" is the claim; require at least 2x to leave
	// headroom for encoder changes.
	if got := wireBytes.Load(); got <= 0 || got > int64(len(raw))/2 {
		t.Fatalf("gzip push sent %d of %d encoded bytes — expected <= half", got, len(raw))
	}
	got, ok := rep.Store().Get("wide", 1)
	if !ok || got.Digest() != stored.Digest() {
		t.Fatal("decompressed apply diverges from source release")
	}

	// WithoutCompression sends identity bodies.
	rep2 := NewServer()
	var identityBytes atomic.Int64
	plain := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/push" {
			if r.Header.Get("Content-Encoding") != "" {
				t.Error("WithoutCompression still set Content-Encoding")
			}
			identityBytes.Store(r.ContentLength)
		}
		rep2.Handler().ServeHTTP(w, r)
	}))
	defer plain.Close()
	pub2 := NewPublisher(src, []string{plain.URL}, WithoutCompression())
	if err := pub2.Push("wide", 1); err != nil {
		t.Fatal(err)
	}
	if got := identityBytes.Load(); got != int64(len(raw)) {
		t.Fatalf("identity push sent %d bytes, want %d", got, len(raw))
	}
}

func TestPushRejectsCorruptGzip(t *testing.T) {
	_, srv := newReplica(t)
	req, _ := http.NewRequest(http.MethodPost, srv.URL+"/push", strings.NewReader("not gzip at all"))
	req.Header.Set("Content-Encoding", "gzip")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("corrupt gzip got %d, want 400", resp.StatusCode)
	}
}

// TestSelfHealingPublisherRestart simulates the daemon-restart story:
// releases exist, replicas have only a prefix, and a *fresh* publisher
// (empty watermark cache, WithSelfHealing) must converge every replica
// on Heal — and lazily on first push for endpoints Heal couldn't reach.
func TestSelfHealingPublisherRestart(t *testing.T) {
	src := store.New()
	for i := 0; i < 3; i++ {
		b := wideBundle(0)
		b.Provenance.Quality = float64(i)
		src.Publish(b)
	}

	// Replica A has v1 only; replica B is empty.
	repA, srvA := newReplica(t)
	repB, srvB := newReplica(t)
	seed := NewPublisher(src, []string{srvA.URL})
	if err := seed.pushTo(context.Background(), srvA.URL, "wide", 1, mustEncode(t, seed, src, "wide", 1)); err != nil {
		t.Fatal(err)
	}

	// A restarted publisher knows nothing about either replica.
	pub := NewPublisher(src, []string{srvA.URL, srvB.URL}, WithSelfHealing())
	if err := pub.Heal(); err != nil {
		t.Fatal(err)
	}
	for name, rep := range map[string]*Server{"A": repA, "B": repB} {
		if got := rep.Store().VersionCount("wide"); got != 3 {
			t.Fatalf("replica %s at %d versions after Heal, want 3", name, got)
		}
	}

	// Lazy path: a third replica joins while unreachable-at-heal; the
	// first push reconciles it fully (all three old versions plus the
	// new one) without any Sync call.
	repC, srvC := newReplica(t)
	pub.AddEndpoints(srvC.URL)
	b := wideBundle(0)
	b.Provenance.Quality = 99
	if _, err := pub.Publish(b); err != nil {
		t.Fatal(err)
	}
	if got := repC.Store().VersionCount("wide"); got != 4 {
		t.Fatalf("late replica at %d versions after first push, want 4", got)
	}
}

// mustEncode builds the pushBody for name@version from the source.
func mustEncode(t *testing.T, p *Publisher, src *store.Store, name string, version int) pushBody {
	t.Helper()
	b, ok := src.Get(name, version)
	if !ok {
		t.Fatalf("%s@v%d not in store", name, version)
	}
	body, err := p.encodePush(b)
	if err != nil {
		t.Fatal(err)
	}
	return body
}

// TestSelfHealingConcurrentPushes: racing pushes to a pending endpoint
// must not corrupt the healing bookkeeping (run with -race).
func TestSelfHealingConcurrentPushes(t *testing.T) {
	src := store.New()
	src.Publish(wideBundle(0))
	_, srv := newReplica(t)
	pub := NewPublisher(src, []string{srv.URL}, WithSelfHealing())
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = pub.Push("wide", 1)
		}()
	}
	wg.Wait()
	if got := pub.Watermark(srv.URL, "wide"); got != 1 {
		t.Fatalf("watermark %d after concurrent pushes", got)
	}
}
