package replica

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/ml"
	"repro/internal/rng"
	"repro/internal/store"
	"repro/internal/taxi"
)

// benchBundle builds a taxi-dimensional release with the Listing 1
// feature table — the payload shape the push path carries in the demo.
func benchBundle(version int) store.Bundle {
	weights := make([]float64, taxi.FeatureDim)
	for i := range weights {
		weights[i] = float64(i%7) * 0.1
	}
	spec, _ := store.Serialize(&ml.LinearModel{Weights: weights, Bias: 0.5})
	speeds := make([]float64, 24)
	for i := range speeds {
		speeds[i] = 30 - float64(i)*0.3
	}
	b := store.Bundle{
		Name: "bench", Model: spec,
		Features: map[string][]float64{"hour_speed": speeds},
	}
	b.Provenance.Quality = float64(version)
	return b
}

// BenchmarkBundlePush measures push latency end to end: gob encode,
// HTTP POST, replica-side decode, digest-checked apply (every odd
// iteration re-pushes the same version, so both the apply and the
// idempotent-duplicate paths are on the clock, as they are in a real
// anti-entropy sweep).
func BenchmarkBundlePush(b *testing.B) {
	src := store.New()
	rep := NewServer()
	srv := httptest.NewServer(rep.Handler())
	defer srv.Close()
	pub := NewPublisher(src, []string{srv.URL}, WithClient(srv.Client()),
		WithRetry(1, time.Millisecond))

	version := src.Publish(benchBundle(1))
	if err := pub.Push("bench", version); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%2 == 0 {
			version = src.Publish(benchBundle(i))
		}
		if err := pub.Push("bench", version); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "pushes/s")
}

// BenchmarkBundlePushFanout3 is the deployment shape of the e2e test:
// one publish fanned out to 3 replicas concurrently. ns/op is the
// latency until the slowest replica acks.
func BenchmarkBundlePushFanout3(b *testing.B) {
	src := store.New()
	var urls []string
	for i := 0; i < 3; i++ {
		srv := httptest.NewServer(NewServer().Handler())
		b.Cleanup(srv.Close)
		urls = append(urls, srv.URL)
	}
	pub := NewPublisher(src, urls, WithRetry(1, time.Millisecond))
	version := src.Publish(benchBundle(1))
	if err := pub.Push("bench", version); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%2 == 0 {
			version = src.Publish(benchBundle(i))
		}
		if err := pub.Push("bench", version); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "pushes/s")
}

// BenchmarkReplicaPredictBatch measures per-replica serving throughput
// through the replica's handler stack (mux fallthrough + shared
// serving handlers + connection fast path) — the number that multiplies
// by replica count under load balancing.
func BenchmarkReplicaPredictBatch(b *testing.B) {
	src := store.New()
	rep := NewServer()
	srv := httptest.NewServer(rep.Handler())
	defer srv.Close()
	pub := NewPublisher(src, []string{srv.URL}, WithClient(srv.Client()),
		WithRetry(1, time.Millisecond))
	if _, err := pub.Publish(benchBundle(1)); err != nil {
		b.Fatal(err)
	}

	r := rng.New(11)
	for _, batch := range []int{256} {
		b.Run(fmt.Sprintf("rows=%d", batch), func(b *testing.B) {
			rows := make([][]float64, batch)
			for i := range rows {
				rows[i] = make([]float64, taxi.FeatureDim)
				for j := range rows[i] {
					rows[i][j] = r.Float64()
				}
			}
			payload, _ := json.Marshal(map[string]any{"rows": rows})
			url := srv.URL + "/predict/batch?model=bench"
			client := srv.Client()
			post := func() {
				resp, err := client.Post(url, "application/json", bytes.NewReader(payload))
				if err != nil {
					b.Fatal(err)
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					b.Fatalf("status %d", resp.StatusCode)
				}
			}
			post() // warm model + encoded caches
			b.SetBytes(int64(len(payload)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				post()
			}
			b.StopTimer()
			b.ReportMetric(float64(batch)*float64(b.N)/b.Elapsed().Seconds(), "rows/s")
		})
	}
}

// BenchmarkReplicaProvenance measures the pre-encoded read path: after
// the first request, every /models/{name}/provenance is a cache lookup
// plus one Write.
func BenchmarkReplicaProvenance(b *testing.B) {
	src := store.New()
	rep := NewServer()
	srv := httptest.NewServer(rep.Handler())
	defer srv.Close()
	pub := NewPublisher(src, []string{srv.URL}, WithClient(srv.Client()),
		WithRetry(1, time.Millisecond))
	if _, err := pub.Publish(benchBundle(1)); err != nil {
		b.Fatal(err)
	}
	client := srv.Client()
	url := srv.URL + "/models/bench/provenance"
	get := func() {
		resp, err := client.Get(url)
		if err != nil {
			b.Fatal(err)
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("status %d", resp.StatusCode)
		}
	}
	get()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		get()
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "req/s")
}

// BenchmarkBundlePushWide pushes a wide-feature-table bundle (80K table
// entries) and reports the wire bytes per push with gzip compression on
// (the default) versus off. The benchmark doubles as the compression
// satellite's size-reduction gate: it fails outright if the compressed
// body is not at least 2x smaller than the identity body.
func BenchmarkBundlePushWide(b *testing.B) {
	makeSrc := func() *store.Store {
		src := store.New()
		src.Publish(wideBundle(0))
		return src
	}
	for _, mode := range []struct {
		name string
		opts []Option
	}{
		{name: "gzip"},
		{name: "identity", opts: []Option{WithoutCompression()}},
	} {
		b.Run(mode.name, func(b *testing.B) {
			var wireBytes int64
			rep := NewServer()
			srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				if r.URL.Path == "/push" {
					wireBytes = r.ContentLength
				}
				rep.Handler().ServeHTTP(w, r)
			}))
			defer srv.Close()
			src := makeSrc()
			opts := append([]Option{WithClient(srv.Client()), WithRetry(1, time.Millisecond)}, mode.opts...)
			pub := NewPublisher(src, []string{srv.URL}, opts...)
			if err := pub.Push("wide", 1); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := pub.Push("wide", 1); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(wireBytes), "wire_bytes/op")
			bundle, _ := src.Get("wide", 1)
			raw, err := bundle.Encode()
			if err != nil {
				b.Fatal(err)
			}
			if mode.name == "gzip" && wireBytes > int64(len(raw))/2 {
				b.Fatalf("gzip wire bytes %d not < half of encoded %d — compression regressed", wireBytes, len(raw))
			}
		})
	}
}
