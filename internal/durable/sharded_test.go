package durable

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/privacy"
)

// TestShardedLayoutDetection pins the directory-layout rules: the
// segment count is fixed at creation, on-disk layout beats the
// configured flag, and ambiguous/mixed layouts fail closed.
func TestShardedLayoutDetection(t *testing.T) {
	t.Run("fresh dir creates N segments", func(t *testing.T) {
		dir := t.TempDir()
		p, stats, err := Open(dir, testPolicy, Options{LedgerShards: 4})
		if err != nil {
			t.Fatal(err)
		}
		if stats.LedgerShards != 4 || p.LedgerShards() != 4 {
			t.Fatalf("got %d shards, want 4", stats.LedgerShards)
		}
		p.AC.RegisterBlock(1)
		p.Close()
		for k := 0; k < 4; k++ {
			if !fileExists(filepath.Join(dir, LedgerSegmentName(k, 4))) {
				t.Fatalf("segment %d missing", k)
			}
		}
		if fi, err := os.Stat(filepath.Join(dir, LedgerLogName)); err == nil && fi.Size() > 0 {
			t.Fatal("sharded dir also grew a legacy ledger.wal")
		}
	})
	t.Run("on-disk layout wins over flag", func(t *testing.T) {
		dir := t.TempDir()
		p, _, err := Open(dir, testPolicy, Options{LedgerShards: 4})
		if err != nil {
			t.Fatal(err)
		}
		p.AC.RegisterBlock(7)
		p.Close()
		// Reopen asking for 8: the 4-way layout on disk is authoritative.
		p2, stats, err := Open(dir, testPolicy, Options{LedgerShards: 8})
		if err != nil {
			t.Fatal(err)
		}
		defer p2.Close()
		if stats.LedgerShards != 4 {
			t.Fatalf("re-striped existing dir: got %d shards, want 4", stats.LedgerShards)
		}
		if p2.AC.NumBlocks() != 1 {
			t.Fatal("lost state across shard-flag change")
		}
	})
	t.Run("legacy dir stays single-segment", func(t *testing.T) {
		dir := t.TempDir()
		p := mustOpen(t, dir, Options{})
		p.AC.RegisterBlock(3)
		p.Close()
		p2, stats, err := Open(dir, testPolicy, Options{LedgerShards: 4})
		if err != nil {
			t.Fatal(err)
		}
		defer p2.Close()
		if stats.LedgerShards != 1 {
			t.Fatalf("legacy dir re-striped to %d shards", stats.LedgerShards)
		}
	})
	t.Run("ambiguous layout fails closed", func(t *testing.T) {
		dir := t.TempDir()
		p, _, err := Open(dir, testPolicy, Options{LedgerShards: 2})
		if err != nil {
			t.Fatal(err)
		}
		p.AC.RegisterBlock(1)
		p.Close()
		// A non-empty legacy log alongside segments is ambiguous.
		if err := os.WriteFile(filepath.Join(dir, LedgerLogName), []byte("junk"), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, _, err := Open(dir, testPolicy, Options{}); err == nil {
			t.Fatal("ambiguous layout opened")
		}
	})
	t.Run("mixed segment counts fail closed", func(t *testing.T) {
		dir := t.TempDir()
		for _, name := range []string{"ledger-0-of-2.wal", "ledger-0-of-3.wal"} {
			if err := os.WriteFile(filepath.Join(dir, name), nil, 0o644); err != nil {
				t.Fatal(err)
			}
		}
		if _, _, err := Open(dir, testPolicy, Options{}); err == nil {
			t.Fatal("mixed-stripe layout opened")
		}
	})
}

// TestShardedReopenReconstructsExactState is the sharded twin of
// TestReopenReconstructsExactState: every acknowledged mutation —
// including cross-shard requests and refunds — survives close/reopen
// byte-exactly, with and without compaction in between.
func TestShardedReopenReconstructsExactState(t *testing.T) {
	dir := t.TempDir()
	p := mustOpen(t, dir, Options{LedgerShards: 4})
	for id := data.BlockID(0); id < 12; id++ {
		p.AC.RegisterBlock(id)
	}
	// Cross-shard request/refund/retire traffic.
	if err := p.AC.Request([]data.BlockID{0, 1, 2, 3, 4, 5}, privacy.MustBudget(0.5, 1e-8)); err != nil {
		t.Fatal(err)
	}
	if err := p.AC.Refund([]data.BlockID{1, 2, 3}, privacy.MustBudget(0.25, 0)); err != nil {
		t.Fatal(err)
	}
	if err := p.AC.Retire(11); err != nil {
		t.Fatal(err)
	}
	p.Store.Publish(testBundle("m", 0.01))
	want := viewOf(p.AC)
	p.Close()

	p2 := mustOpen(t, dir, Options{})
	if got := viewOf(p2.AC); !reflect.DeepEqual(got, want) {
		t.Fatalf("sharded ledger differs after reopen:\n got %+v\nwant %+v", got, want)
	}
	// Compact (per segment), mutate, reopen again.
	if err := p2.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := p2.AC.Request([]data.BlockID{6, 7}, privacy.MustBudget(0.1, 0)); err != nil {
		t.Fatal(err)
	}
	want2 := viewOf(p2.AC)
	p2.Close()
	p3 := mustOpen(t, dir, Options{})
	defer p3.Close()
	if got := viewOf(p3.AC); !reflect.DeepEqual(got, want2) {
		t.Fatalf("state after per-segment compact+reopen differs:\n got %+v\nwant %+v", got, want2)
	}
}

// TestShardedFaultInjectionAcrossSegments extends the every-boundary
// fault matrix to the multi-segment layout. For each segment s and each
// of its record boundaries, the segment is cut there (torn mid-record
// variants included) while the other segments stay whole — the crash
// shape sharding introduces: one shard's fsync lagging the others. The
// recovered ledger must (a) keep every block of the untouched shards
// byte-exact, and (b) never under-count the consumed-budget floor of
// the operations that were actually acknowledged in that crash
// timeline on the cut shard's blocks.
func TestShardedFaultInjectionAcrossSegments(t *testing.T) {
	const nshards = 3
	srcDir := t.TempDir()
	p := mustOpen(t, srcDir, Options{LedgerShards: nshards})
	shardOf := p.AC.ShardOf

	// Scripted workload mixing single- and cross-shard ops. Each
	// reservation declares the refunds eventually issued against it.
	type reservation struct {
		op     int // op index
		blocks []data.BlockID
		eps    float64
		refund float64 // total eventually refunded
	}
	var (
		reservations []reservation
		opIndex      = -1
		// segLen[i][s] = byte length of segment s right after op i acked.
		segLen [][]int64
	)
	mark := func() {
		opIndex++
		sizes := make([]int64, nshards)
		for s := 0; s < nshards; s++ {
			sizes[s] = p.ledgerSegs[s].Size()
		}
		segLen = append(segLen, sizes)
	}
	register := func(id data.BlockID) {
		p.AC.RegisterBlock(id)
		mark()
	}
	request := func(blocks []data.BlockID, eps, eventualRefund float64) {
		if err := p.AC.Request(blocks, privacy.Budget{Epsilon: eps}); err != nil {
			t.Fatalf("request %v: %v", blocks, err)
		}
		mark()
		reservations = append(reservations, reservation{op: opIndex, blocks: blocks, eps: eps, refund: eventualRefund})
	}
	refund := func(blocks []data.BlockID, eps float64) {
		if err := p.AC.Refund(blocks, privacy.Budget{Epsilon: eps}); err != nil {
			t.Fatalf("refund %v: %v", blocks, err)
		}
		mark()
	}

	for id := data.BlockID(0); id < 9; id++ {
		register(id)
	}
	request([]data.BlockID{0, 1, 2}, 0.4, 0.2) // spans shards
	request([]data.BlockID{3, 4}, 0.3, 0)
	refund([]data.BlockID{0, 1, 2}, 0.2)
	request([]data.BlockID{5, 6, 7, 8}, 0.5, 0.25)
	request([]data.BlockID{0, 3, 6}, 0.2, 0)
	refund([]data.BlockID{5, 6, 7, 8}, 0.25)
	if err := p.AC.Retire(2); err != nil {
		t.Fatal(err)
	}
	mark()
	finalReport := map[data.BlockID]core.BlockReport{}
	for _, r := range p.AC.Report(p.AC.Blocks()) {
		finalReport[r.ID] = r
	}
	p.Close()

	raws := make([][]byte, nshards)
	for s := 0; s < nshards; s++ {
		raw, err := os.ReadFile(filepath.Join(srcDir, LedgerSegmentName(s, nshards)))
		if err != nil {
			t.Fatal(err)
		}
		raws[s] = raw
	}

	// floor(i, id): consumed budget the recovery of a timeline "ops ≤ i
	// acked on this block's shard" must never under-count: every
	// reservation acked by op i, minus everything EVER refunded against
	// it (a lost refund only makes recovery more conservative).
	floor := func(i int, id data.BlockID) float64 {
		f := 0.0
		for _, r := range reservations {
			if r.op > i {
				continue
			}
			for _, b := range r.blocks {
				if b == id {
					f += r.eps - r.refund
				}
			}
		}
		return f
	}

	checkTimeline := func(t *testing.T, s, i int, cutBytes int64) {
		dir := t.TempDir()
		for k := 0; k < nshards; k++ {
			raw := raws[k]
			if k == s {
				raw = raw[:cutBytes]
			}
			if err := os.WriteFile(filepath.Join(dir, LedgerSegmentName(k, nshards)), raw, 0o644); err != nil {
				t.Fatal(err)
			}
		}
		p2 := mustOpen(t, dir, Options{})
		defer p2.Close()
		const tol = 1e-12
		for id, want := range finalReport {
			if shardOf(id) != s {
				// Untouched shards recover byte-exact: every one of their
				// records survives, including sub-records of operations
				// that were never acknowledged (journaled-but-unacked is
				// the allowed, conservative direction).
				got := p2.AC.Report([]data.BlockID{id})
				if len(got) != 1 || got[0] != want {
					t.Fatalf("segment %d cut at op %d: untouched block %d diverged:\n got %+v\nwant %+v",
						s, i, id, got, want)
				}
				continue
			}
			// Cut shard: conservativeness floor.
			if loss := p2.AC.BlockLoss(id); loss.Epsilon+tol < floor(i, id) {
				t.Fatalf("segment %d cut at op %d: block %d loss %v under-counts consumed %v",
					s, i, id, loss.Epsilon, floor(i, id))
			}
		}
	}

	for s := 0; s < nshards; s++ {
		// Every per-op boundary of this segment, plus torn mid-record
		// cuts between consecutive boundaries.
		checkTimeline(t, s, -1, 0)
		for i := 0; i < len(segLen); i++ {
			checkTimeline(t, s, i, segLen[i][s])
			if next := segLen[i][s] + (segmentLenAfter(segLen, i, s)-segLen[i][s])/2; next > segLen[i][s] {
				checkTimeline(t, s, i, next)
			}
		}
	}
}

// segmentLenAfter returns segment s's length after the first op past i
// that grew it (or the final length).
func segmentLenAfter(segLen [][]int64, i, s int) int64 {
	for j := i + 1; j < len(segLen); j++ {
		if segLen[j][s] > segLen[i][s] {
			return segLen[j][s]
		}
	}
	return segLen[i][s]
}

// TestCompactIfLargerIsPerSegment pins size-triggered compaction
// granularity: only segments over the threshold are rewritten, cold
// segments keep their raw journals.
func TestCompactIfLargerIsPerSegment(t *testing.T) {
	dir := t.TempDir()
	p := mustOpen(t, dir, Options{LedgerShards: 2})
	defer p.Close()
	// Find block ids for each shard.
	var hot, cold data.BlockID
	found := 0
	for id := data.BlockID(0); found < 2; id++ {
		switch p.AC.ShardOf(id) {
		case 0:
			if found&1 == 0 {
				hot = id
				found |= 1
			}
		case 1:
			if found&2 == 0 {
				cold = id
				found |= 2
			}
		}
	}
	p.AC.RegisterBlock(hot)
	p.AC.RegisterBlock(cold)
	// Hammer the hot shard only.
	for i := 0; i < 50; i++ {
		if err := p.AC.Request([]data.BlockID{hot}, privacy.Budget{Epsilon: 0.001}); err != nil {
			t.Fatal(err)
		}
	}
	hotSeg := p.ledgerSegs[p.AC.ShardOf(hot)]
	coldSeg := p.ledgerSegs[p.AC.ShardOf(cold)]
	coldRecords := coldSeg.Records()
	threshold := coldSeg.Size() + 1 // cold under, hot far over
	if hotSeg.Size() <= threshold {
		t.Fatalf("test setup: hot segment %d not over threshold %d", hotSeg.Size(), threshold)
	}
	n, err := p.CompactIfLarger(threshold)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("compacted %d logs, want 1 (hot segment only)", n)
	}
	if hotSeg.Records() != 1 {
		t.Fatalf("hot segment has %d records after compaction, want 1 snapshot", hotSeg.Records())
	}
	if coldSeg.Records() != coldRecords {
		t.Fatalf("cold segment rewritten: %d -> %d records", coldRecords, coldSeg.Records())
	}
	// Nothing over threshold → no-op.
	big := p.MaxLogSize() + 1
	if n, err := p.CompactIfLarger(big); err != nil || n != 0 {
		t.Fatalf("no-op compaction: n=%d err=%v", n, err)
	}
}

// TestLogFilesListsLayout checks the inspection helper against both
// layouts.
func TestLogFilesListsLayout(t *testing.T) {
	legacy := t.TempDir()
	p := mustOpen(t, legacy, Options{})
	p.AC.RegisterBlock(1)
	p.Close()
	files, err := LogFiles(legacy)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 2 || filepath.Base(files[0]) != LedgerLogName || filepath.Base(files[1]) != StoreLogName {
		t.Fatalf("legacy layout listed wrong: %v", files)
	}

	sharded := t.TempDir()
	p2 := mustOpen(t, sharded, Options{LedgerShards: 3})
	p2.AC.RegisterBlock(1)
	p2.Close()
	files, err = LogFiles(sharded)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 4 {
		t.Fatalf("sharded layout listed %d files, want 4", len(files))
	}
	for k := 0; k < 3; k++ {
		if filepath.Base(files[k]) != fmt.Sprintf("ledger-%d-of-3.wal", k) {
			t.Fatalf("file %d = %s", k, files[k])
		}
	}
}
