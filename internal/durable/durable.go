// Package durable binds Sage's two stateful layers — the privacy ledger
// (core.AccessControl) and the model & feature store (store.Store) — to
// write-ahead logs (internal/wal), turning the in-memory platform into
// one that survives crashes. This is the durability prerequisite for
// continuous operation (§3.2's indefinitely-growing stream): a platform
// that can lose privacy spend in a crash cannot honestly claim the
// (εg, δg) block-composition guarantee, because a restarted process
// would re-grant budget that was already consumed.
//
// # Layout
//
// Open(dir) manages two logs in one directory:
//
//	ledger.wal — one record per ledger mutation (register / request /
//	             refund / retire, core.LedgerRecord canonical encoding),
//	             plus snapshot records written by Compact.
//	store.wal  — one record per release, the bundle's canonical bytes
//	             (store.Bundle.CanonicalBytes). The record is the push
//	             digest's preimage, so what the WAL certifies is exactly
//	             what replicas verified.
//
// # Recovery
//
// Open replays each log through the same public mutation methods that
// produced it (journals are installed only after replay, so replay does
// not re-journal). Torn or corrupt tails are truncated by the WAL layer;
// a record that fails to decode or re-apply is a hard error — that is
// middle-of-log corruption, which the appendable-journal crash model
// says cannot happen, so refusing to guess is safer than serving a
// ledger with a hole in it.
//
// # Crash-consistency rule
//
// Both layers journal before acknowledging (see core/journal.go and
// store.SetJournal), so for any crash point the recovered state is the
// acknowledged state plus possibly a suffix of journaled-but-
// unacknowledged operations. For the ledger that means recovered
// per-block loss ≥ budget actually consumed by acknowledged releases —
// recovery can waste budget (a spend whose grant never reached the
// caller), never under-count it. The fault-injection tests in this
// package cut the logs at every record boundary and pin that invariant.
//
// The two logs are independent. The daemon orders its operations so
// that the cross-log interleavings a crash can produce are all safe:
// budget is journaled (ledger) before a release is journaled (store),
// and the release is journaled before it is pushed to replicas — so a
// crash can leave spend without its release (conservative) but never a
// released or replicated bundle without its spend.
package durable

import (
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/store"
	"repro/internal/wal"
)

// Record types in ledger.wal.
const (
	recLedgerSnapshot byte = 1
	recLedgerOp       byte = 2
)

// Record type in store.wal: every record is one release's canonical
// bytes (snapshots are just the same records rewritten by compaction).
const recBundle byte = 1

// LedgerLogName and StoreLogName are the file names inside the WAL
// directory.
const (
	LedgerLogName = "ledger.wal"
	StoreLogName  = "store.wal"
)

// Options configures Open.
type Options struct {
	// NoSync disables per-append fsync on both logs (tests/benchmarks
	// only; see wal.Options.NoSync).
	NoSync bool
	// OnRetire is the DP-retention hook, registered on the ledger
	// *before* replay so that recovery reproduces retirement stickiness
	// (a hook that deleted raw data makes the retirement irreversible)
	// exactly as it happened. During replay the hook re-fires for
	// blocks retired in the journal; retention deletion is idempotent
	// (the post-crash database is empty), but the hook must tolerate
	// being called for blocks it has already processed.
	OnRetire func(data.BlockID)
}

// Platform is the durable platform core: a ledger and a store whose
// every acknowledged mutation is in the write-ahead logs.
type Platform struct {
	AC    *core.AccessControl
	Store *store.Store

	ledgerLog *wal.Log
	storeLog  *wal.Log
}

// Open opens (creating if needed) the WAL directory, replays both logs,
// and returns a platform positioned exactly where the last acknowledged
// operation left it. The returned stats describe what recovery found.
func Open(dir string, policy core.Policy, opts Options) (*Platform, Stats, error) {
	var stats Stats
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, stats, fmt.Errorf("durable: create %s: %w", dir, err)
	}
	walOpts := wal.Options{NoSync: opts.NoSync}

	ledgerLog, ledgerRecs, err := wal.Open(filepath.Join(dir, LedgerLogName), walOpts)
	if err != nil {
		return nil, stats, err
	}
	ac := core.NewAccessControl(policy)
	if opts.OnRetire != nil {
		ac.SetRetireCallback(opts.OnRetire)
	}
	if err := replayLedger(ac, ledgerRecs); err != nil {
		ledgerLog.Close()
		return nil, stats, err
	}
	ac.SetJournal(func(rec core.LedgerRecord) error {
		return ledgerLog.Append(recLedgerOp, rec.Encode())
	})

	storeLog, storeRecs, err := wal.Open(filepath.Join(dir, StoreLogName), walOpts)
	if err != nil {
		ledgerLog.Close()
		return nil, stats, err
	}
	st := store.New()
	if err := replayStore(st, storeRecs); err != nil {
		ledgerLog.Close()
		storeLog.Close()
		return nil, stats, err
	}
	st.SetJournal(func(canonical []byte) error {
		return storeLog.Append(recBundle, canonical)
	})

	stats = Stats{Ledger: ledgerLog.Stats(), Store: storeLog.Stats()}
	return &Platform{AC: ac, Store: st, ledgerLog: ledgerLog, storeLog: storeLog}, stats, nil
}

// Stats reports what recovery found in each log.
type Stats struct {
	Ledger wal.Stats
	Store  wal.Stats
}

// replayLedger applies recovered ledger records in order through the
// public mutation methods (no journal installed yet).
func replayLedger(ac *core.AccessControl, records []wal.Record) error {
	for i, r := range records {
		switch r.Type {
		case recLedgerSnapshot:
			if err := ac.RestoreSnapshot(r.Payload); err != nil {
				return fmt.Errorf("durable: ledger record %d: %w", i, err)
			}
		case recLedgerOp:
			rec, err := core.DecodeLedgerRecord(r.Payload)
			if err != nil {
				return fmt.Errorf("durable: ledger record %d: %w", i, err)
			}
			if err := applyLedgerRecord(ac, rec); err != nil {
				return fmt.Errorf("durable: ledger record %d (%v): %w", i, rec.Op, err)
			}
		default:
			return fmt.Errorf("durable: ledger record %d: unknown type %d", i, r.Type)
		}
	}
	return nil
}

// applyLedgerRecord re-executes one journaled mutation. The journal
// only holds operations that succeeded, and the ledger is
// deterministic, so replay failing means the log does not match the
// policy it is being opened under (or is corrupt mid-log).
func applyLedgerRecord(ac *core.AccessControl, rec core.LedgerRecord) error {
	switch rec.Op {
	case core.LedgerRegister:
		for _, id := range rec.Blocks {
			ac.RegisterBlock(id)
		}
		return nil
	case core.LedgerRequest:
		return ac.Request(rec.Blocks, rec.Budget)
	case core.LedgerRefund:
		return ac.Refund(rec.Blocks, rec.Budget)
	case core.LedgerRetire:
		for _, id := range rec.Blocks {
			if err := ac.Retire(id); err != nil {
				return err
			}
		}
		return nil
	default:
		return fmt.Errorf("unknown op %d", byte(rec.Op))
	}
}

// replayStore re-applies recovered releases in journal order.
func replayStore(st *store.Store, records []wal.Record) error {
	for i, r := range records {
		if r.Type != recBundle {
			return fmt.Errorf("durable: store record %d: unknown type %d", i, r.Type)
		}
		b, err := store.DecodeCanonicalBundle(r.Payload)
		if err != nil {
			return fmt.Errorf("durable: store record %d: %w", i, err)
		}
		if _, err := st.Apply(*b); err != nil {
			return fmt.Errorf("durable: store record %d (%s@v%d): %w", i, b.Name, b.Version, err)
		}
	}
	return nil
}

// Compact rewrites both logs as snapshots of current state, bounding
// recovery time for a long-running daemon. It must not race mutations:
// the caller (the daemon's single-threaded loop) must ensure no
// Request/Publish/… is in flight, or the racing operation's journal
// record could be rewritten away.
func (p *Platform) Compact() error {
	if err := p.ledgerLog.Compact([]wal.Record{
		{Type: recLedgerSnapshot, Payload: p.AC.Snapshot()},
	}); err != nil {
		return err
	}
	bundles := p.Store.SnapshotBundles()
	records := make([]wal.Record, len(bundles))
	for i, b := range bundles {
		records[i] = wal.Record{Type: recBundle, Payload: b}
	}
	return p.storeLog.Compact(records)
}

// LogSizes returns the current byte sizes of (ledger, store) logs —
// the daemon's compaction trigger input.
func (p *Platform) LogSizes() (int64, int64) {
	return p.ledgerLog.Size(), p.storeLog.Size()
}

// Close syncs and closes both logs. The ledger and store remain usable
// in memory but further mutations will fail their journal writes.
func (p *Platform) Close() error {
	err := p.ledgerLog.Close()
	if serr := p.storeLog.Close(); err == nil {
		err = serr
	}
	return err
}
