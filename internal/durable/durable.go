// Package durable binds Sage's two stateful layers — the privacy ledger
// (core.AccessControl) and the model & feature store (store.Store) — to
// write-ahead logs (internal/wal), turning the in-memory platform into
// one that survives crashes. This is the durability prerequisite for
// continuous operation (§3.2's indefinitely-growing stream): a platform
// that can lose privacy spend in a crash cannot honestly claim the
// (εg, δg) block-composition guarantee, because a restarted process
// would re-grant budget that was already consumed.
//
// # Layout
//
// Open(dir) manages one store log and N ledger segments in one
// directory. With one ledger shard (the default) the layout is the
// legacy pair:
//
//	ledger.wal — one record per ledger mutation (register / request /
//	             refund / retire, core.LedgerRecord canonical encoding),
//	             plus snapshot records written by Compact.
//	store.wal  — one record per release, the bundle's canonical bytes
//	             (store.Bundle.CanonicalBytes). The record is the push
//	             digest's preimage, so what the WAL certifies is exactly
//	             what replicas verified.
//
// With Options.LedgerShards = N > 1 the ledger is striped: shard k of
// the sharded core.AccessControl journals into its own segment
// `ledger-k-of-N.wal`. A mutation spanning several shards is split by
// the ledger into one sub-record per shard, each naming only that
// shard's blocks, so every block's entire history — register, every
// charge, every refund, retirement, snapshots — lives in exactly one
// segment, in mutation order. That single fact is what makes
// multi-segment recovery trivially correct: segments never need to be
// interleaved by time, because no two segments ever mention the same
// block.
//
// The segment count is a property of the directory, fixed at creation:
// the filenames are self-describing, and Open follows what is on disk
// even if Options.LedgerShards disagrees (Stats.LedgerShards reports
// the effective count). Re-striping an existing directory would move
// blocks between segments and reorder their replay; refusing to is the
// safe behavior.
//
// # Recovery
//
// Open replays each log through the same public mutation methods that
// produced it (journals are installed only after every segment is
// replayed, so replay does not re-journal). Segments are replayed
// sequentially (k = 0..N-1); because segments partition the block
// space, replay order across segments is immaterial. Each segment
// starts with at most one snapshot record (written by per-segment
// compaction) which RestoreSnapshot *merges* — replacing that shard's
// blocks, leaving other shards' already-replayed blocks alone. Torn or
// corrupt tails are truncated independently per segment by the WAL
// layer; a record that fails to decode or re-apply is a hard error —
// that is middle-of-log corruption, which the appendable-journal crash
// model says cannot happen, so refusing to guess is safer than serving
// a ledger with a hole in it.
//
// # Crash-consistency rule
//
// Both layers journal before acknowledging (see core/journal.go and
// store.SetJournal), so for any crash point the recovered state is the
// acknowledged state plus possibly a suffix of journaled-but-
// unacknowledged operations. For the ledger that means recovered
// per-block loss ≥ budget actually consumed by acknowledged releases —
// recovery can waste budget (a spend whose grant never reached the
// caller), never under-count it. The fault-injection tests in this
// package cut the logs at every record boundary — including a single
// segment of a multi-segment layout — and pin that invariant.
//
// Sharding adds one new crash shape: a multi-shard Request journals
// sub-records into several segments and is acknowledged only after all
// of them are durable. A crash between segment writes leaves some
// shards' sub-records on disk and others not — so some blocks of the
// (unacknowledged) request recover charged and others do not. That is
// the same conservative direction as before, now per block instead of
// per operation: no acknowledged spend is ever lost, and refund
// sub-records still follow their request sub-records within each
// segment (per-shard journal order is per-shard lock order), so a
// surviving refund always has its matching request.
//
// The ledger segments use WAL group commit (wal.Options.GroupCommit):
// the ledger stages each sub-record under the shard lock but waits for
// durability after releasing it, so concurrent charges on one shard
// amortize a single fdatasync instead of paying one each — see
// BENCH_ledger.json for the measured effect.
//
// The store log and ledger segments are independent. The daemon orders
// its operations so that the cross-log interleavings a crash can
// produce are all safe: budget is journaled (ledger) before a release
// is journaled (store), and the release is journaled before it is
// pushed to replicas — so a crash can leave spend without its release
// (conservative) but never a released or replicated bundle without its
// spend.
package durable

import (
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/metrics"
	"repro/internal/store"
	"repro/internal/trace"
	"repro/internal/wal"
)

// Record types in ledger.wal.
const (
	recLedgerSnapshot byte = 1
	recLedgerOp       byte = 2
)

// Record type in store.wal: every record is one release's canonical
// bytes (snapshots are just the same records rewritten by compaction).
const recBundle byte = 1

// LedgerLogName and StoreLogName are the file names inside the WAL
// directory (single-shard ledger layout).
const (
	LedgerLogName = "ledger.wal"
	StoreLogName  = "store.wal"
)

// LedgerSegmentName returns the file name of ledger segment k in an
// n-way sharded layout. With n == 1 it is the legacy LedgerLogName, so
// single-shard directories are always the legacy layout.
func LedgerSegmentName(k, n int) string {
	if n == 1 {
		return LedgerLogName
	}
	return fmt.Sprintf("ledger-%d-of-%d.wal", k, n)
}

// Options configures Open.
type Options struct {
	// NoSync disables per-append fsync on all logs (tests/benchmarks
	// only; see wal.Options.NoSync).
	NoSync bool
	// LedgerShards stripes the ledger (and its WAL) N ways. Only
	// consulted when the directory is empty: an existing directory's
	// segment layout wins (see the package docs). 0 means 1.
	LedgerShards int
	// DisableGroupCommit turns off WAL group commit on the ledger
	// segments (benchmark baseline; production keeps it on).
	DisableGroupCommit bool
	// Metrics, when non-nil, instruments every write-ahead log (and the
	// shared sync group, if one is used) in the given registry; series
	// are labeled per log file. See wal.Options.Metrics.
	Metrics *metrics.Registry
	// Logf, when non-nil, receives one-line structured state-transition
	// logs from the logs (e.g. WAL poisoning). See wal.Options.Logf.
	Logf func(format string, args ...any)
	// OnRetire is the DP-retention hook, registered on the ledger
	// *before* replay so that recovery reproduces retirement stickiness
	// (a hook that deleted raw data makes the retirement irreversible)
	// exactly as it happened. During replay the hook re-fires for
	// blocks retired in the journal; retention deletion is idempotent
	// (the post-crash database is empty), but the hook must tolerate
	// being called for blocks it has already processed.
	OnRetire func(data.BlockID)
	// Tracer, when non-nil, records WAL commit cohorts as span trees
	// (append → seal → flush). See wal.Options.Tracer.
	Tracer *trace.Tracer
}

// Platform is the durable platform core: a ledger and a store whose
// every acknowledged mutation is in the write-ahead logs.
type Platform struct {
	AC    *core.AccessControl
	Store *store.Store

	ledgerSegs []*wal.Log // one per ledger shard, index == shard
	storeLog   *wal.Log
	syncGroup  *wal.SyncGroup // shared flush for multi-segment layouts, nil otherwise
}

// detectLedgerShards decides the directory's ledger segment count: the
// on-disk layout if one exists, otherwise the configured count.
func detectLedgerShards(dir string, configured int) (int, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "ledger-*-of-*.wal"))
	if err != nil {
		return 0, fmt.Errorf("durable: scan %s: %w", dir, err)
	}
	n := 0
	for _, m := range matches {
		var k, nn int
		if _, err := fmt.Sscanf(filepath.Base(m), "ledger-%d-of-%d.wal", &k, &nn); err != nil {
			continue // not a segment file (e.g. a user's stray file)
		}
		if nn < 2 || k < 0 || k >= nn {
			return 0, fmt.Errorf("durable: segment file %s is inconsistent", filepath.Base(m))
		}
		if n != 0 && n != nn {
			return 0, fmt.Errorf("durable: %s mixes %d-way and %d-way ledger segments", dir, n, nn)
		}
		n = nn
	}
	legacy := false
	if fi, err := os.Stat(filepath.Join(dir, LedgerLogName)); err == nil && fi.Size() > 0 {
		legacy = true
	}
	if n != 0 {
		if legacy {
			return 0, fmt.Errorf("durable: %s has both %s and %d-way segments — ambiguous layout", dir, LedgerLogName, n)
		}
		return n, nil
	}
	if legacy {
		return 1, nil
	}
	if configured < 1 {
		return 1, nil
	}
	return configured, nil
}

// Open opens (creating if needed) the WAL directory, replays every log,
// and returns a platform positioned exactly where the last acknowledged
// operation left it. The returned stats describe what recovery found.
func Open(dir string, policy core.Policy, opts Options) (*Platform, Stats, error) {
	var stats Stats
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, stats, fmt.Errorf("durable: create %s: %w", dir, err)
	}
	nshards, err := detectLedgerShards(dir, opts.LedgerShards)
	if err != nil {
		return nil, stats, err
	}
	walOpts := wal.Options{
		NoSync:      opts.NoSync,
		GroupCommit: !opts.NoSync && !opts.DisableGroupCommit,
		Metrics:     opts.Metrics,
		Logf:        opts.Logf,
		Tracer:      opts.Tracer,
	}
	// With several segments on one filesystem, per-segment fsyncs
	// serialize on the filesystem journal; a shared sync group turns a
	// cohort of concurrent cross-segment commits into one flush. Falls
	// back to per-file fsync where syncfs is unavailable.
	var group *wal.SyncGroup
	if nshards > 1 && walOpts.GroupCommit && wal.SyncGroupSupported() {
		if g, err := wal.NewSyncGroup(dir); err == nil {
			if opts.Metrics != nil {
				g.Instrument(opts.Metrics)
			}
			group = g
			walOpts.SyncGroup = g
		}
	}

	segs := make([]*wal.Log, nshards)
	closeSegs := func() {
		for _, l := range segs {
			if l != nil {
				l.Close()
			}
		}
		if group != nil {
			group.Close()
		}
	}
	ac := core.NewShardedAccessControl(policy, nshards)
	if opts.OnRetire != nil {
		ac.SetRetireCallback(opts.OnRetire)
	}
	stats.LedgerShards = nshards
	stats.LedgerSegments = make([]wal.Stats, nshards)
	// Replay segment by segment. Segments partition the block space, so
	// sequential replay is order-correct; the journal is installed only
	// after every segment is in.
	for k := 0; k < nshards; k++ {
		seg, recs, err := wal.Open(filepath.Join(dir, LedgerSegmentName(k, nshards)), walOpts)
		if err != nil {
			closeSegs()
			return nil, stats, err
		}
		segs[k] = seg
		if err := replayLedger(ac, recs); err != nil {
			closeSegs()
			return nil, stats, fmt.Errorf("durable: segment %s: %w", LedgerSegmentName(k, nshards), err)
		}
		st := seg.Stats()
		stats.LedgerSegments[k] = st
		stats.Ledger.Records += st.Records
		stats.Ledger.TornBytes += st.TornBytes
		stats.Ledger.Truncated = stats.Ledger.Truncated || st.Truncated
	}
	ac.SetShardJournal(func(shard int, rec core.LedgerRecord) (func() error, error) {
		c, err := segs[shard].AppendAsync(recLedgerOp, rec.Encode())
		if err != nil {
			return nil, err
		}
		return c.Wait, nil
	})

	storeLog, storeRecs, err := wal.Open(filepath.Join(dir, StoreLogName), walOpts)
	if err != nil {
		closeSegs()
		return nil, stats, err
	}
	st := store.New()
	if err := replayStore(st, storeRecs); err != nil {
		closeSegs()
		storeLog.Close()
		return nil, stats, err
	}
	st.SetJournal(func(canonical []byte) error {
		return storeLog.Append(recBundle, canonical)
	})

	stats.Store = storeLog.Stats()
	return &Platform{AC: ac, Store: st, ledgerSegs: segs, storeLog: storeLog, syncGroup: group}, stats, nil
}

// Stats reports what recovery found in each log.
type Stats struct {
	// Ledger aggregates all ledger segments: total records, total torn
	// bytes, truncated if any segment was.
	Ledger wal.Stats
	Store  wal.Stats
	// LedgerShards is the effective segment count (on-disk layout wins
	// over Options.LedgerShards for an existing directory).
	LedgerShards int
	// LedgerSegments holds each segment's own recovery stats.
	LedgerSegments []wal.Stats
}

// replayLedger applies recovered ledger records in order through the
// public mutation methods (no journal installed yet).
func replayLedger(ac *core.AccessControl, records []wal.Record) error {
	for i, r := range records {
		switch r.Type {
		case recLedgerSnapshot:
			if err := ac.RestoreSnapshot(r.Payload); err != nil {
				return fmt.Errorf("durable: ledger record %d: %w", i, err)
			}
		case recLedgerOp:
			rec, err := core.DecodeLedgerRecord(r.Payload)
			if err != nil {
				return fmt.Errorf("durable: ledger record %d: %w", i, err)
			}
			if err := applyLedgerRecord(ac, rec); err != nil {
				return fmt.Errorf("durable: ledger record %d (%v): %w", i, rec.Op, err)
			}
		default:
			return fmt.Errorf("durable: ledger record %d: unknown type %d", i, r.Type)
		}
	}
	return nil
}

// applyLedgerRecord re-executes one journaled mutation. The journal
// only holds operations that succeeded, and the ledger is
// deterministic, so replay failing means the log does not match the
// policy it is being opened under (or is corrupt mid-log).
func applyLedgerRecord(ac *core.AccessControl, rec core.LedgerRecord) error {
	switch rec.Op {
	case core.LedgerRegister:
		for _, id := range rec.Blocks {
			ac.RegisterBlock(id)
		}
		return nil
	case core.LedgerRequest:
		return ac.Request(rec.Blocks, rec.Budget)
	case core.LedgerRefund:
		return ac.Refund(rec.Blocks, rec.Budget)
	case core.LedgerRetire:
		for _, id := range rec.Blocks {
			if err := ac.Retire(id); err != nil {
				return err
			}
		}
		return nil
	default:
		return fmt.Errorf("unknown op %d", byte(rec.Op))
	}
}

// replayStore re-applies recovered releases in journal order.
func replayStore(st *store.Store, records []wal.Record) error {
	for i, r := range records {
		if r.Type != recBundle {
			return fmt.Errorf("durable: store record %d: unknown type %d", i, r.Type)
		}
		b, err := store.DecodeCanonicalBundle(r.Payload)
		if err != nil {
			return fmt.Errorf("durable: store record %d: %w", i, err)
		}
		if _, err := st.Apply(*b); err != nil {
			return fmt.Errorf("durable: store record %d (%s@v%d): %w", i, b.Name, b.Version, err)
		}
	}
	return nil
}

// Compact rewrites every log as a snapshot of current state, bounding
// recovery time for a long-running daemon. Each ledger segment is
// rewritten independently as its own shard's snapshot record (each
// rewrite is atomic per segment; a crash mid-way leaves some segments
// compacted and others not, which recovery handles since segments are
// independent). It must not race mutations: the caller (the daemon's
// single-threaded loop) must ensure no Request/Publish/… is in flight,
// or the racing operation's journal record could be rewritten away.
func (p *Platform) Compact() error {
	for k, seg := range p.ledgerSegs {
		if err := seg.Compact([]wal.Record{
			{Type: recLedgerSnapshot, Payload: p.AC.SnapshotShard(k)},
		}); err != nil {
			return err
		}
	}
	return p.compactStore()
}

// CompactIfLarger compacts only the logs whose current size exceeds
// threshold bytes — the daemon's size-triggered compaction. Each ledger
// segment is judged and rewritten independently, so one hot shard does
// not force rewriting the cold ones. Returns how many logs were
// compacted. The same no-racing-mutations rule as Compact applies.
func (p *Platform) CompactIfLarger(threshold int64) (int, error) {
	n := 0
	for k, seg := range p.ledgerSegs {
		if seg.Size() <= threshold {
			continue
		}
		if err := seg.Compact([]wal.Record{
			{Type: recLedgerSnapshot, Payload: p.AC.SnapshotShard(k)},
		}); err != nil {
			return n, err
		}
		n++
	}
	if p.storeLog.Size() > threshold {
		if err := p.compactStore(); err != nil {
			return n, err
		}
		n++
	}
	return n, nil
}

// compactStore rewrites the store log as one record per live bundle.
func (p *Platform) compactStore() error {
	bundles := p.Store.SnapshotBundles()
	records := make([]wal.Record, len(bundles))
	for i, b := range bundles {
		records[i] = wal.Record{Type: recBundle, Payload: b}
	}
	return p.storeLog.Compact(records)
}

// LedgerShards returns the number of ledger WAL segments (== the
// ledger's shard count).
func (p *Platform) LedgerShards() int { return len(p.ledgerSegs) }

// LogSizes returns the current byte sizes of (ledger, store) logs; the
// ledger size is the sum over segments — the daemon's compaction
// trigger input.
func (p *Platform) LogSizes() (int64, int64) {
	var ledger int64
	for _, seg := range p.ledgerSegs {
		ledger += seg.Size()
	}
	return ledger, p.storeLog.Size()
}

// MaxLogSize returns the largest single log file's size — the quantity
// size-threshold compaction triggers on ("any WAL segment exceeds the
// threshold").
func (p *Platform) MaxLogSize() int64 {
	max := p.storeLog.Size()
	for _, seg := range p.ledgerSegs {
		if s := seg.Size(); s > max {
			max = s
		}
	}
	return max
}

// LogFiles returns the WAL file paths present in dir, ledger segments
// first in shard order, then the store log — the inspection tooling's
// (`sagectl wal`) view of a durable directory. It never creates files.
func LogFiles(dir string) ([]string, error) {
	nshards, err := detectLedgerShards(dir, 1)
	if err != nil {
		return nil, err
	}
	var out []string
	for k := 0; k < nshards; k++ {
		p := filepath.Join(dir, LedgerSegmentName(k, nshards))
		if _, err := os.Stat(p); err == nil {
			out = append(out, p)
		}
	}
	if p := filepath.Join(dir, StoreLogName); fileExists(p) {
		out = append(out, p)
	}
	return out, nil
}

func fileExists(p string) bool {
	_, err := os.Stat(p)
	return err == nil
}

// Close syncs and closes every log. The ledger and store remain usable
// in memory but further mutations will fail their journal writes.
func (p *Platform) Close() error {
	var err error
	for _, seg := range p.ledgerSegs {
		if cerr := seg.Close(); err == nil {
			err = cerr
		}
	}
	if serr := p.storeLog.Close(); err == nil {
		err = serr
	}
	if p.syncGroup != nil {
		if gerr := p.syncGroup.Close(); err == nil {
			err = gerr
		}
	}
	return err
}
