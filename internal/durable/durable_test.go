package durable

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/privacy"
	"repro/internal/rng"
	"repro/internal/store"
	"repro/internal/wal"
)

var testPolicy = core.Policy{Global: privacy.MustBudget(1.0, 1e-6)}

func mustOpen(t *testing.T, dir string, opts Options) *Platform {
	t.Helper()
	p, _, err := Open(dir, testPolicy, opts)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// ledgerView captures everything the restart e2e promises to preserve.
type ledgerView struct {
	Blocks []core.BlockReport
	Loss   privacy.Budget
}

func viewOf(ac *core.AccessControl) ledgerView {
	return ledgerView{Blocks: ac.Report(ac.Blocks()), Loss: ac.StreamLoss()}
}

func testBundle(name string, quality float64) store.Bundle {
	return store.Bundle{
		Name:  name,
		Model: store.ModelSpec{Kind: "linear", Weights: []float64{1, 2, 3}, Bias: 0.5},
		Features: map[string][]float64{
			"hour_speed": {30, 25, 12},
		},
		Provenance: store.Provenance{
			Pipeline: name, Spent: privacy.MustBudget(0.25, 1e-8),
			Blocks: []data.BlockID{0, 1}, Decision: "ACCEPT", Quality: quality,
		},
	}
}

func TestReopenReconstructsExactState(t *testing.T) {
	dir := t.TempDir()
	p := mustOpen(t, dir, Options{})
	for id := data.BlockID(0); id < 4; id++ {
		p.AC.RegisterBlock(id)
	}
	if err := p.AC.Request([]data.BlockID{0, 1, 2}, privacy.MustBudget(0.5, 1e-8)); err != nil {
		t.Fatal(err)
	}
	if err := p.AC.Refund([]data.BlockID{1}, privacy.MustBudget(0.25, 0)); err != nil {
		t.Fatal(err)
	}
	if err := p.AC.Retire(3); err != nil {
		t.Fatal(err)
	}
	p.Store.Publish(testBundle("m", 0.01))
	p.Store.Publish(testBundle("m", 0.02))
	want := viewOf(p.AC)
	wantWM := p.Store.Watermarks()
	wantDigest, _ := p.Store.Get("m", 2)
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	p2 := mustOpen(t, dir, Options{})
	defer p2.Close()
	if got := viewOf(p2.AC); !reflect.DeepEqual(got, want) {
		t.Fatalf("ledger differs after reopen:\n got %+v\nwant %+v", got, want)
	}
	if got := p2.Store.Watermarks(); !reflect.DeepEqual(got, wantWM) {
		t.Fatalf("store watermarks differ: %v vs %v", got, wantWM)
	}
	got, ok := p2.Store.Get("m", 2)
	if !ok || got.Digest() != wantDigest.Digest() {
		t.Fatal("recovered release digest diverges")
	}
	// The recovered platform keeps journaling: mutate, reopen again.
	if err := p2.AC.Request([]data.BlockID{0}, privacy.MustBudget(0.1, 0)); err != nil {
		t.Fatal(err)
	}
	want2 := viewOf(p2.AC)
	p2.Close()
	p3 := mustOpen(t, dir, Options{})
	defer p3.Close()
	if got := viewOf(p3.AC); !reflect.DeepEqual(got, want2) {
		t.Fatal("second-generation mutations lost")
	}
}

func TestCompactPreservesStateAndShrinksLog(t *testing.T) {
	dir := t.TempDir()
	p := mustOpen(t, dir, Options{})
	for id := data.BlockID(0); id < 8; id++ {
		p.AC.RegisterBlock(id)
		_ = p.AC.Request([]data.BlockID{id}, privacy.MustBudget(0.25, 1e-9))
	}
	for i := 0; i < 5; i++ {
		p.Store.Publish(testBundle("m", float64(i)))
	}
	before, _ := p.LogSizes()
	want := viewOf(p.AC)
	wantWM := p.Store.Watermarks()
	if err := p.Compact(); err != nil {
		t.Fatal(err)
	}
	after, _ := p.LogSizes()
	if after >= before {
		t.Fatalf("ledger log did not shrink: %d -> %d", before, after)
	}
	// Post-compaction mutations append after the snapshot.
	if err := p.AC.Request([]data.BlockID{0}, privacy.MustBudget(0.1, 0)); err != nil {
		t.Fatal(err)
	}
	want.Blocks = p.AC.Report(p.AC.Blocks())
	want.Loss = p.AC.StreamLoss()
	p.Close()

	p2 := mustOpen(t, dir, Options{})
	defer p2.Close()
	if got := viewOf(p2.AC); !reflect.DeepEqual(got, want) {
		t.Fatalf("state after compact+reopen differs:\n got %+v\nwant %+v", got, want)
	}
	if got := p2.Store.Watermarks(); !reflect.DeepEqual(got, wantWM) {
		t.Fatalf("store watermarks differ: %v vs %v", got, wantWM)
	}
}

// scriptOp is one acknowledged ledger mutation plus the state snapshot
// taken right after it was acknowledged.
type scriptOp struct {
	view ledgerView
	// consumedFloor[id] is the budget genuinely consumed (reserved
	// minus every refund that will EVER be issued for requests
	// journaled so far) — the quantity recovery must never under-count.
	consumedFloor map[data.BlockID]float64
}

// runLedgerScript drives a request/refund/retire workload against a
// durable platform and returns the per-op snapshots. Refunds are
// scripted against specific earlier requests so the test can compute
// the true consumed-budget floor for every journal prefix.
func runLedgerScript(t *testing.T, dir string) []scriptOp {
	t.Helper()
	p := mustOpen(t, dir, Options{})
	defer p.Close()

	totalReserved := map[data.BlockID]float64{} // all reservations journaled so far (never decremented)
	futureRefund := map[int]float64{}           // op index of request → total refund eventually issued
	requestBlocks := map[int][]data.BlockID{}
	var ops []scriptOp
	opIndex := -1

	snap := func() {
		opIndex++
		// consumed floor at THIS prefix: every journaled request's
		// reservation minus everything EVER refunded against it (even
		// refunds journaled after the prefix: a lost refund only makes
		// recovery more conservative).
		refunds := map[data.BlockID]float64{}
		for reqIdx, blocks := range requestBlocks {
			if reqIdx > opIndex {
				continue
			}
			for _, id := range blocks {
				refunds[id] += futureRefund[reqIdx]
			}
		}
		out := map[data.BlockID]float64{}
		for id, res := range totalReserved {
			out[id] = res - refunds[id]
		}
		ops = append(ops, scriptOp{view: viewOf(p.AC), consumedFloor: out})
	}

	register := func(id data.BlockID) {
		p.AC.RegisterBlock(id)
		snap()
	}
	request := func(blocks []data.BlockID, eps, eventualRefund float64) {
		if err := p.AC.Request(blocks, privacy.Budget{Epsilon: eps}); err != nil {
			t.Fatalf("request %v: %v", blocks, err)
		}
		for _, id := range blocks {
			totalReserved[id] += eps
		}
		snap()
		requestBlocks[opIndex] = blocks
		futureRefund[opIndex] = eventualRefund
	}
	refund := func(blocks []data.BlockID, eps float64) {
		if err := p.AC.Refund(blocks, privacy.Budget{Epsilon: eps}); err != nil {
			t.Fatalf("refund %v: %v", blocks, err)
		}
		snap()
	}
	retire := func(id data.BlockID) {
		if err := p.AC.Retire(id); err != nil {
			t.Fatal(err)
		}
		snap()
	}

	for id := data.BlockID(0); id < 6; id++ {
		register(id)
	}
	request([]data.BlockID{0, 1, 2}, 0.5, 0.3) // later refunded 0.3
	request([]data.BlockID{1, 2, 3}, 0.25, 0.1)
	refund([]data.BlockID{0, 1, 2}, 0.3)
	request([]data.BlockID{0, 3}, 0.25, 0)
	refund([]data.BlockID{1, 2, 3}, 0.1)
	request([]data.BlockID{5}, 0.5, 0.5) // fully refunded
	retire(4)
	refund([]data.BlockID{5}, 0.5)
	return ops
}

// TestLedgerFaultInjectionMatrix cuts the ledger log at every record
// boundary (and mid-record, and with a corrupted tail checksum) and
// asserts two things about the recovered ledger: it equals the exact
// acknowledged state at that boundary, and — the privacy-critical
// direction — its per-block loss never under-counts the budget
// genuinely consumed by the journaled prefix.
func TestLedgerFaultInjectionMatrix(t *testing.T) {
	srcDir := t.TempDir()
	ops := runLedgerScript(t, srcDir)
	ledgerPath := filepath.Join(srcDir, LedgerLogName)
	raw, err := os.ReadFile(ledgerPath)
	if err != nil {
		t.Fatal(err)
	}
	offsets, err := wal.RecordOffsets(ledgerPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(offsets) != len(ops)+1 {
		t.Fatalf("%d record boundaries for %d ops", len(offsets)-1, len(ops))
	}

	checkRecovered := func(t *testing.T, cut []byte, wantOps int) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, LedgerLogName), cut, 0o644); err != nil {
			t.Fatal(err)
		}
		p := mustOpen(t, dir, Options{})
		defer p.Close()
		got := viewOf(p.AC)
		if wantOps == 0 {
			if len(got.Blocks) != 0 {
				t.Fatalf("empty prefix recovered %d blocks", len(got.Blocks))
			}
			return
		}
		want := ops[wantOps-1]
		if !reflect.DeepEqual(got, want.view) {
			t.Fatalf("prefix of %d ops: recovered state differs:\n got %+v\nwant %+v", wantOps, got, want.view)
		}
		// Conservativeness: recovered loss ≥ consumed floor, per block.
		const tol = 1e-12
		for id, consumed := range want.consumedFloor {
			if loss := p.AC.BlockLoss(id); loss.Epsilon+tol < consumed {
				t.Fatalf("prefix of %d ops: block %d recovered loss %v under-counts consumed %v",
					wantOps, id, loss.Epsilon, consumed)
			}
		}
	}

	for k := 0; k < len(offsets); k++ {
		// Exact record boundary: recover exactly k ops.
		checkRecovered(t, raw[:offsets[k]], k)
		// Torn tail: a few bytes past the boundary recover the same k
		// ops (the partial record is truncated away).
		if k < len(offsets)-1 {
			cut := offsets[k] + (offsets[k+1]-offsets[k])/2
			checkRecovered(t, raw[:cut], k)
		}
	}
	// Corrupt-checksum tail: damage each record in turn; recovery stops
	// just before it.
	for k := 0; k < len(offsets)-1; k++ {
		bad := append([]byte(nil), raw...)
		bad[offsets[k]+9] ^= 0xA5 // first payload byte of record k
		checkRecovered(t, bad[:offsets[k+1]], k)
	}
}

// TestStoreFaultInjection cuts the store log at every record boundary:
// the recovered store must hold exactly the prefix of releases, each
// digest-identical to the original — so a healed replica tier converges
// back to the same releases.
func TestStoreFaultInjection(t *testing.T) {
	srcDir := t.TempDir()
	p := mustOpen(t, srcDir, Options{})
	var digests [][32]byte
	for i := 0; i < 4; i++ {
		v := p.Store.Publish(testBundle("m", float64(i)/100))
		b, _ := p.Store.Get("m", v)
		digests = append(digests, b.Digest())
	}
	p.Close()
	storePath := filepath.Join(srcDir, StoreLogName)
	raw, err := os.ReadFile(storePath)
	if err != nil {
		t.Fatal(err)
	}
	offsets, err := wal.RecordOffsets(storePath)
	if err != nil {
		t.Fatal(err)
	}
	if len(offsets) != 5 {
		t.Fatalf("expected 4 records, got boundaries %v", offsets)
	}
	for k := 0; k < len(offsets); k++ {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, StoreLogName), raw[:offsets[k]], 0o644); err != nil {
			t.Fatal(err)
		}
		p2 := mustOpen(t, dir, Options{})
		if got := p2.Store.VersionCount("m"); got != k {
			t.Fatalf("prefix %d: recovered %d versions", k, got)
		}
		for v := 1; v <= k; v++ {
			b, ok := p2.Store.Get("m", v)
			if !ok || b.Digest() != digests[v-1] {
				t.Fatalf("prefix %d: version %d digest diverges", k, v)
			}
		}
		p2.Close()
	}
}

// TestRandomizedRecoveryConservative drives a random (seeded) workload
// and checks the under-count invariant at every journal boundary —
// the property-test half of the fault-injection satellite.
func TestRandomizedRecoveryConservative(t *testing.T) {
	r := rng.New(1234)
	srcDir := t.TempDir()
	p := mustOpen(t, srcDir, Options{})

	type pending struct {
		blocks []data.BlockID
		remain float64
	}
	var (
		nextBlock data.BlockID
		live      []data.BlockID
		open      []pending
	)

	// Record every acknowledged op as a delta and link refunds to their
	// reservation's op index, so the consumed floor of any journal
	// prefix can be computed retroactively.
	type opDelta struct {
		blocks   []data.BlockID
		eps      float64 // positive = reservation, negative = refund
		resIndex int     // for refunds: index (in resOps) of the reservation
	}
	var deltas []opDelta
	var resOps []int // delta indices that are reservations

	register := func() {
		p.AC.RegisterBlock(nextBlock)
		live = append(live, nextBlock)
		nextBlock++
		deltas = append(deltas, opDelta{})
	}
	register()
	register()

	for i := 0; i < 60; i++ {
		switch {
		case r.Float64() < 0.2:
			register()
		case len(open) > 0 && r.Float64() < 0.45:
			// Refund part of a pending reservation.
			j := r.IntN(len(open))
			amt := open[j].remain * (0.25 + 0.5*r.Float64())
			if err := p.AC.Refund(open[j].blocks, privacy.Budget{Epsilon: amt}); err != nil {
				t.Fatalf("refund: %v", err)
			}
			open[j].remain -= amt
			deltas = append(deltas, opDelta{blocks: open[j].blocks, eps: -amt, resIndex: resOps[j]})
			if open[j].remain < 1e-9 {
				open = append(open[:j], open[j+1:]...)
				resOps = append(resOps[:j], resOps[j+1:]...)
			}
		default:
			// Request a small budget on a random affordable window.
			eps := 0.02 + 0.1*r.Float64()
			cand := p.AC.AvailableBlocks(live, privacy.Budget{Epsilon: eps})
			if len(cand) == 0 {
				register()
				continue
			}
			n := 1 + r.IntN(len(cand))
			blocks := cand[len(cand)-n:]
			if err := p.AC.Request(blocks, privacy.Budget{Epsilon: eps}); err != nil {
				t.Fatalf("request: %v", err)
			}
			open = append(open, pending{blocks: blocks, remain: eps})
			resOps = append(resOps, len(deltas))
			deltas = append(deltas, opDelta{blocks: blocks, eps: eps})
		}
	}
	p.Close()

	// consumedFloor(k): for reservations journaled in the first k ops,
	// reservation minus ALL refunds ever issued against them.
	consumedFloor := func(k int) map[data.BlockID]float64 {
		out := map[data.BlockID]float64{}
		for i := 0; i < k; i++ {
			d := deltas[i]
			if d.eps > 0 {
				for _, id := range d.blocks {
					out[id] += d.eps
				}
			}
		}
		for _, d := range deltas { // refunds at ANY index count against early reservations
			if d.eps < 0 && d.resIndex < k {
				for _, id := range d.blocks {
					out[id] += d.eps
				}
			}
		}
		return out
	}

	ledgerPath := filepath.Join(srcDir, LedgerLogName)
	raw, err := os.ReadFile(ledgerPath)
	if err != nil {
		t.Fatal(err)
	}
	offsets, err := wal.RecordOffsets(ledgerPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(offsets) != len(deltas)+1 {
		t.Fatalf("%d boundaries for %d ops", len(offsets)-1, len(deltas))
	}
	const tol = 1e-9
	for k := 0; k <= len(deltas); k++ {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, LedgerLogName), raw[:offsets[k]], 0o644); err != nil {
			t.Fatal(err)
		}
		p2 := mustOpen(t, dir, Options{})
		for id, consumed := range consumedFloor(k) {
			if loss := p2.AC.BlockLoss(id); loss.Epsilon+tol < consumed {
				t.Fatalf("prefix %d: block %d loss %v under-counts consumed %v", k, id, loss.Epsilon, consumed)
			}
		}
		p2.Close()
	}
}

// TestRetentionStickinessSurvivesRecovery: a block retired through the
// retention hook (raw data deleted) must stay retired after recovery
// even if a refund would otherwise resurrect it.
func TestRetentionStickinessSurvivesRecovery(t *testing.T) {
	dir := t.TempDir()
	deleted := map[data.BlockID]bool{}
	p, _, err := Open(dir, testPolicy, Options{OnRetire: func(id data.BlockID) { deleted[id] = true }})
	if err != nil {
		t.Fatal(err)
	}
	p.AC.RegisterBlock(1)
	// Exhaust the block: retention hook fires, data gone.
	if err := p.AC.Request([]data.BlockID{1}, privacy.MustBudget(1.0, 1e-7)); err != nil {
		t.Fatal(err)
	}
	if !deleted[1] || !p.AC.Retired(1) {
		t.Fatal("block not retired/deleted")
	}
	p.Close()

	recovered := map[data.BlockID]bool{}
	p2, _, err := Open(dir, testPolicy, Options{OnRetire: func(id data.BlockID) { recovered[id] = true }})
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	if !p2.AC.Retired(1) || !recovered[1] {
		t.Fatal("retirement not replayed")
	}
	if err := p2.AC.Refund([]data.BlockID{1}, privacy.MustBudget(0.9, 0)); err != nil {
		t.Fatal(err)
	}
	if !p2.AC.Retired(1) {
		t.Fatal("retention-deleted block resurrected after recovery")
	}
}

// TestMismatchedPolicyFailsClosed: recovering under a smaller global
// ceiling than the log was written with must fail — through BOTH
// recovery paths. Raw op replay fails because a request that was
// admissible then is not now; a compacted snapshot fails because
// RestoreSnapshot validates restored losses against the ceiling. The
// outcome must not depend on whether a compaction happened to run
// before the crash.
func TestMismatchedPolicyFailsClosed(t *testing.T) {
	for _, compacted := range []bool{false, true} {
		dir := t.TempDir()
		p := mustOpen(t, dir, Options{})
		p.AC.RegisterBlock(1)
		if err := p.AC.Request([]data.BlockID{1}, privacy.MustBudget(0.8, 0)); err != nil {
			t.Fatal(err)
		}
		if compacted {
			if err := p.Compact(); err != nil {
				t.Fatal(err)
			}
		}
		p.Close()
		_, _, err := Open(dir, core.Policy{Global: privacy.MustBudget(0.5, 1e-6)}, Options{})
		if err == nil {
			t.Fatalf("journal (compacted=%v) recovered under a tighter policy", compacted)
		}
	}
}
