package durable

import (
	"fmt"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/privacy"
)

// BenchmarkLedgerParallelCharge measures the durable write path under
// contention: 8 goroutines charging budget against distinct blocks,
// every charge journaled and fsynced before acknowledgement. The
// "baseline" variant is the pre-shard shape — one mutex, one log fd,
// one fdatasync per append. The "sharded" variant stripes the ledger
// across 8 WAL segments and lets group commit coalesce concurrent
// appends into a single write+fdatasync per batch. This is the
// headline number for the sharded-ledger arc and is gated in CI via
// BENCH_ledger.json.
func BenchmarkLedgerParallelCharge(b *testing.B) {
	variants := []struct {
		name string
		opts Options
	}{
		{"baseline", Options{LedgerShards: 1, DisableGroupCommit: true}},
		{"sharded", Options{LedgerShards: 8}},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			dir := b.TempDir()
			policy := core.Policy{Global: privacy.MustBudget(1e9, 1e-3)}
			p, _, err := Open(dir, policy, v.opts)
			if err != nil {
				b.Fatal(err)
			}
			defer p.Close()
			// A pool of pre-registered blocks large enough that the 8
			// workers rarely collide on a block (block-level contention
			// is not what we are measuring; lock/fsync contention is).
			const nblocks = 1024
			for id := data.BlockID(0); id < nblocks; id++ {
				p.AC.RegisterBlock(id)
			}
			charge := privacy.Budget{Epsilon: 1e-7}
			var next atomic.Uint64
			b.SetParallelism(8)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					id := data.BlockID(next.Add(1) % nblocks)
					if err := p.AC.Request([]data.BlockID{id}, charge); err != nil {
						b.Error(fmt.Errorf("charge block %d: %w", id, err))
						return
					}
				}
			})
		})
	}
}
