// Package faulty is Sage's fault-injection layer: a reusable way to put
// a *misbehaving network* between any HTTP client and server in-process,
// so the platform's fault tolerance is tested against an explicit fault
// model instead of assumed. The model covers the failure classes a
// serving fleet actually sees:
//
//   - latency: a slow link or an overloaded replica (added delay);
//   - error: a 5xx from a broken replica (handler side) or a transport
//     error such as connection refused (client side);
//   - hang: a stalled replica that accepts the connection and then
//     never answers — the failure mode that distinguishes
//     deadline-propagating clients from ones that block forever;
//   - reset: the connection is torn down mid-request (process killed,
//     NAT entry expired), surfacing as an abrupt EOF/ECONNRESET;
//   - partial: the response advertises its full length but delivers
//     only a prefix before the reset — the case that separates
//     "got a response" from "got the *whole* response".
//
// Faults fire by rule. A Rule matches requests (method/path prefix) and
// fires deterministically: an optional per-rule cap on how many times it
// fires (First), a modulus (Every k-th match), and a probability drawn
// from the injector's seeded RNG (internal/rng — the same seed always
// yields the same decision sequence for the same request order). Rules
// are evaluated in order; the first one that fires wins.
//
// Two integration points cover both halves of the platform:
//
//   - Handler wraps an http.Handler (a replica, a gateway backend) so
//     faults happen "at the server" — this is what the gateway chaos
//     tests use to kill and stall replicas mid-traffic;
//   - Transport wraps an http.RoundTripper so faults happen "at the
//     client" — this is what the publisher-path tests use to make
//     pushes flaky without touching the replica.
//
// The rule set can be swapped atomically at any time (Set/Clear), which
// is how a chaos test "recovers" a replica: in-flight hangs are released
// and subsequent requests pass through untouched.
package faulty

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/rng"
)

// Mode is the action a fired rule takes.
type Mode int

const (
	// Pass lets the request through (useful for latency-only rules).
	Pass Mode = iota
	// Error fails fast: a 500 from the Handler wrapper, a transport
	// error from the Transport wrapper.
	Error
	// Hang blocks the request until the caller's context is done (the
	// Handler wrapper then aborts the connection) or the rule set is
	// replaced, in which case the request proceeds normally.
	Hang
	// Reset tears the connection down abruptly: the peer sees an
	// unexpected EOF / connection reset, not an HTTP error.
	Reset
	// Partial serves the inner response's headers and Content-Length
	// but delivers only half the body before resetting — the response
	// looks fine until the byte count doesn't add up.
	Partial
)

// String names the mode for diagnostics.
func (m Mode) String() string {
	switch m {
	case Pass:
		return "pass"
	case Error:
		return "error"
	case Hang:
		return "hang"
	case Reset:
		return "reset"
	case Partial:
		return "partial"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// Rule is one fault-injection rule. The zero predicates match every
// request and fire every time; set Method/Path to narrow the match and
// First/Every/P to thin out the firings.
type Rule struct {
	// Method matches the request method exactly ("" = any).
	Method string
	// Path matches a request-path prefix ("" = any).
	Path string
	// Mode is the injected fault (default Pass).
	Mode Mode
	// Latency is added before Mode is applied (also with Mode Pass, for
	// pure slow-link injection). The sleep respects the request context.
	Latency time.Duration
	// First, when > 0, fires the rule only for the first N matching
	// requests — "the replica was broken, then recovered".
	First int
	// Every, when > 0, fires on the 1st, (1+Every)th, ... matching
	// request — a periodically flaky dependency.
	Every int
	// P, when in (0, 1), gates each firing on a coin flip from the
	// injector's seeded RNG; 0 (or ≥ 1) means always.
	P float64
}

func (r Rule) matches(req *http.Request) bool {
	if r.Method != "" && req.Method != r.Method {
		return false
	}
	if r.Path != "" && !strings.HasPrefix(req.URL.Path, r.Path) {
		return false
	}
	return true
}

// ruleState pairs a rule with its per-rule match counter.
type ruleState struct {
	Rule
	matched int
	fired   int
}

// Injector decides, per request, whether and how to misbehave. One
// injector may back any number of Handler/Transport wrappers; decisions
// are serialized, so given a fixed request order the decision sequence
// is a pure function of the seed.
type Injector struct {
	mu      sync.Mutex
	rnd     *rng.RNG
	rules   []*ruleState
	fired   int64
	release chan struct{} // closed on Set/Clear to free hanging requests
}

// New returns an injector with no rules (everything passes) whose
// probabilistic decisions derive from seed.
func New(seed uint64) *Injector {
	return &Injector{rnd: rng.New(seed), release: make(chan struct{})}
}

// Set atomically replaces the rule set. Requests currently blocked in a
// Hang are released and proceed normally — replacing the rules is how a
// test "heals" the fault.
func (i *Injector) Set(rules ...Rule) {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.rules = make([]*ruleState, len(rules))
	for k, r := range rules {
		i.rules[k] = &ruleState{Rule: r}
	}
	close(i.release)
	i.release = make(chan struct{})
}

// Clear removes all rules and releases hanging requests.
func (i *Injector) Clear() { i.Set() }

// Fired reports how many faults (including latency-only Pass rules)
// have fired so far — tests use it to prove injection actually engaged.
func (i *Injector) Fired() int64 {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.fired
}

// decide picks the fault for one request: the first rule that matches
// and fires. It returns the winning rule's mode and latency, and the
// release channel current at decision time (for Hang).
func (i *Injector) decide(req *http.Request) (Mode, time.Duration, <-chan struct{}) {
	i.mu.Lock()
	defer i.mu.Unlock()
	for _, rs := range i.rules {
		if !rs.matches(req) {
			continue
		}
		rs.matched++
		if rs.First > 0 && rs.matched > rs.First {
			continue
		}
		if rs.Every > 0 && (rs.matched-1)%rs.Every != 0 {
			continue
		}
		if rs.P > 0 && rs.P < 1 && !i.rnd.Bool(rs.P) {
			continue
		}
		rs.fired++
		i.fired++
		return rs.Mode, rs.Latency, i.release
	}
	return Pass, 0, i.release
}

// sleep waits d or until the request context is done, reporting whether
// the full latency elapsed.
func sleep(req *http.Request, d time.Duration) bool {
	if d <= 0 {
		return true
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-req.Context().Done():
		return false
	case <-t.C:
		return true
	}
}

// Handler wraps inner so the injector misbehaves "at the server". Reset
// and timed-out hangs abort the connection via http.ErrAbortHandler —
// the peer sees a transport-level failure, exactly like a killed
// process, not a well-formed HTTP error.
func (i *Injector) Handler(inner http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mode, latency, release := i.decide(r)
		if !sleep(r, latency) {
			panic(http.ErrAbortHandler)
		}
		switch mode {
		case Error:
			http.Error(w, "faulty: injected server error", http.StatusInternalServerError)
		case Hang:
			select {
			case <-r.Context().Done():
				// The client gave up first; cut the connection.
				panic(http.ErrAbortHandler)
			case <-release:
				// The fault was healed mid-request; answer normally.
				inner.ServeHTTP(w, r)
			}
		case Reset:
			panic(http.ErrAbortHandler)
		case Partial:
			rec := newRecorder()
			inner.ServeHTTP(rec, r)
			for k, vs := range rec.header {
				w.Header()[k] = vs
			}
			w.Header().Set("Content-Length", fmt.Sprint(rec.body.Len()))
			w.WriteHeader(rec.code)
			_, _ = w.Write(rec.body.Bytes()[:rec.body.Len()/2])
			if f, ok := w.(http.Flusher); ok {
				f.Flush()
			}
			// The advertised length can now never be satisfied; tear the
			// connection down so the client sees an unexpected EOF.
			panic(http.ErrAbortHandler)
		default:
			inner.ServeHTTP(w, r)
		}
	})
}

// recorder buffers an inner handler's response so Partial can truncate
// it. (httptest.ResponseRecorder lives in a test-only package; this is
// the three-field subset production code may depend on.)
type recorder struct {
	header http.Header
	body   *bytes.Buffer
	code   int
}

func newRecorder() *recorder {
	return &recorder{header: make(http.Header), body: &bytes.Buffer{}, code: http.StatusOK}
}

func (r *recorder) Header() http.Header         { return r.header }
func (r *recorder) WriteHeader(code int)        { r.code = code }
func (r *recorder) Write(p []byte) (int, error) { return r.body.Write(p) }

// transportError is the injected client-side failure.
type transportError struct{ mode Mode }

func (e *transportError) Error() string { return "faulty: injected " + e.mode.String() }

// IsInjected reports whether err originated from a faulty Transport
// (directly or wrapped, e.g. inside a *url.Error) — lets assertions
// distinguish injected failures from real ones.
func IsInjected(err error) bool {
	var te *transportError
	return errors.As(err, &te)
}

// Transport wraps inner so the injector misbehaves "at the client":
// Error/Reset surface as transport errors (like connection refused /
// ECONNRESET), Hang blocks until the request context is done or the
// rules change, Partial truncates the response body mid-stream.
func (i *Injector) Transport(inner http.RoundTripper) http.RoundTripper {
	if inner == nil {
		inner = http.DefaultTransport
	}
	return roundTripFunc(func(req *http.Request) (*http.Response, error) {
		mode, latency, release := i.decide(req)
		if !sleep(req, latency) {
			return nil, req.Context().Err()
		}
		switch mode {
		case Error, Reset:
			// Drain nothing; the "connection" failed.
			return nil, &transportError{mode: mode}
		case Hang:
			select {
			case <-req.Context().Done():
				return nil, req.Context().Err()
			case <-release:
				return inner.RoundTrip(req)
			}
		case Partial:
			resp, err := inner.RoundTrip(req)
			if err != nil {
				return nil, err
			}
			resp.Body = &truncatingBody{inner: resp.Body, remain: maxInt64(resp.ContentLength/2, 1)}
			return resp, nil
		default:
			return inner.RoundTrip(req)
		}
	})
}

type roundTripFunc func(*http.Request) (*http.Response, error)

func (f roundTripFunc) RoundTrip(req *http.Request) (*http.Response, error) { return f(req) }

// truncatingBody yields a prefix of the real body and then fails like a
// cut connection instead of a clean EOF.
type truncatingBody struct {
	inner  io.ReadCloser
	remain int64
}

func (t *truncatingBody) Read(p []byte) (int, error) {
	if t.remain <= 0 {
		return 0, io.ErrUnexpectedEOF
	}
	if int64(len(p)) > t.remain {
		p = p[:t.remain]
	}
	n, err := t.inner.Read(p)
	t.remain -= int64(n)
	if err == io.EOF {
		// The inner body ended before the cut point; keep the clean EOF.
		return n, err
	}
	return n, err
}

func (t *truncatingBody) Close() error { return t.inner.Close() }

func maxInt64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
