package faulty

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// okHandler answers 200 with a fixed body.
func okHandler(body string) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain")
		_, _ = io.WriteString(w, body)
	})
}

func get(t *testing.T, client *http.Client, url string) (*http.Response, []byte, error) {
	t.Helper()
	resp, err := client.Get(url)
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	return resp, raw, err
}

func TestHandlerPassAndError(t *testing.T) {
	inj := New(1)
	srv := httptest.NewServer(inj.Handler(okHandler("hello")))
	defer srv.Close()

	resp, body, err := get(t, srv.Client(), srv.URL)
	if err != nil || resp.StatusCode != http.StatusOK || string(body) != "hello" {
		t.Fatalf("clean pass: %v %v %q", err, resp, body)
	}

	inj.Set(Rule{Mode: Error})
	resp, _, err = get(t, srv.Client(), srv.URL)
	if err != nil || resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("error mode: err=%v status=%v", err, resp.StatusCode)
	}

	inj.Clear()
	resp, body, err = get(t, srv.Client(), srv.URL)
	if err != nil || resp.StatusCode != http.StatusOK || string(body) != "hello" {
		t.Fatalf("after clear: %v %v %q", err, resp, body)
	}
}

func TestHandlerReset(t *testing.T) {
	inj := New(1)
	inj.Set(Rule{Mode: Reset})
	srv := httptest.NewServer(inj.Handler(okHandler("hello")))
	defer srv.Close()

	if _, _, err := get(t, srv.Client(), srv.URL); err == nil {
		t.Fatal("reset mode: want a transport-level error, got a response")
	}
}

func TestHandlerPartialBody(t *testing.T) {
	inj := New(1)
	inj.Set(Rule{Mode: Partial})
	srv := httptest.NewServer(inj.Handler(okHandler(strings.Repeat("x", 4096))))
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatalf("partial mode should deliver headers: %v", err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err == nil {
		t.Fatalf("partial mode: want a truncated-body read error, got %d clean bytes", len(raw))
	}
	if len(raw) >= 4096 {
		t.Fatalf("partial mode delivered the whole body (%d bytes)", len(raw))
	}
}

func TestHandlerHangReleasedBySetAndByContext(t *testing.T) {
	inj := New(1)
	inj.Set(Rule{Mode: Hang})
	srv := httptest.NewServer(inj.Handler(okHandler("hello")))
	defer srv.Close()

	// Healing the fault releases the in-flight hang and the request
	// completes normally.
	done := make(chan error, 1)
	go func() {
		resp, body, err := get(t, srv.Client(), srv.URL)
		if err == nil && (resp.StatusCode != http.StatusOK || string(body) != "hello") {
			err = errors.New("released hang answered wrong")
		}
		done <- err
	}()
	time.Sleep(50 * time.Millisecond)
	inj.Clear()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("hang released by Clear: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("hang was not released by Clear")
	}

	// A client deadline cuts a hang short with a transport error.
	inj.Set(Rule{Mode: Hang})
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, srv.URL, nil)
	start := time.Now()
	if _, err := srv.Client().Do(req); err == nil {
		t.Fatal("hang with client deadline: want an error")
	}
	if d := time.Since(start); d > 3*time.Second {
		t.Fatalf("hang held the request %v past its deadline", d)
	}
}

func TestLatencyInjection(t *testing.T) {
	inj := New(1)
	inj.Set(Rule{Mode: Pass, Latency: 80 * time.Millisecond})
	srv := httptest.NewServer(inj.Handler(okHandler("hello")))
	defer srv.Close()

	start := time.Now()
	if _, _, err := get(t, srv.Client(), srv.URL); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 80*time.Millisecond {
		t.Fatalf("latency rule added only %v", d)
	}
}

func TestRulePredicatesFirstEveryAndMatch(t *testing.T) {
	inj := New(1)
	inj.Set(
		Rule{Method: http.MethodPost, Path: "/push", Mode: Error, First: 2},
		Rule{Path: "/flaky", Mode: Error, Every: 3},
	)
	srv := httptest.NewServer(inj.Handler(okHandler("ok")))
	defer srv.Close()

	// First 2 POST /push fail, the 3rd passes; GETs never match.
	for i, want := range []int{500, 500, 200} {
		resp, err := srv.Client().Post(srv.URL+"/push", "text/plain", strings.NewReader("b"))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Fatalf("push %d: status %d, want %d", i, resp.StatusCode, want)
		}
	}
	resp, _, err := get(t, srv.Client(), srv.URL+"/push-status")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("GET must not match the POST rule: %v %v", err, resp)
	}

	// Every=3 fires on matches 1, 4, 7, ...
	var got []int
	for i := 0; i < 6; i++ {
		resp, _, err := get(t, srv.Client(), srv.URL+"/flaky")
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, resp.StatusCode)
	}
	want := []int{500, 200, 200, 500, 200, 200}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("every-3 rule: got %v, want %v", got, want)
		}
	}
}

// TestSeededDeterminism pins the seeded-deterministic contract: two
// injectors with the same seed make identical probabilistic decisions
// for the same request order, and a different seed diverges.
func TestSeededDeterminism(t *testing.T) {
	decisions := func(seed uint64) []int {
		inj := New(seed)
		inj.Set(Rule{Mode: Error, P: 0.5})
		srv := httptest.NewServer(inj.Handler(okHandler("ok")))
		defer srv.Close()
		var out []int
		for i := 0; i < 64; i++ {
			resp, err := srv.Client().Get(srv.URL)
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			out = append(out, resp.StatusCode)
		}
		return out
	}
	a, b, c := decisions(42), decisions(42), decisions(43)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at request %d: %v vs %v", i, a, b)
		}
	}
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical 64-request decision sequences")
	}
}

func TestTransportModes(t *testing.T) {
	srv := httptest.NewServer(okHandler(strings.Repeat("y", 4096)))
	defer srv.Close()

	inj := New(7)
	client := &http.Client{Transport: inj.Transport(nil)}

	// Error surfaces as a transport error tagged injected (url.Error
	// wraps it; unwrap to check).
	inj.Set(Rule{Mode: Error})
	_, err := client.Get(srv.URL)
	if err == nil {
		t.Fatal("transport error mode: want an error")
	}
	var te *transportError
	if !errors.As(err, &te) {
		t.Fatalf("injected error not recognizable: %v", err)
	}

	// Hang respects the request context.
	inj.Set(Rule{Mode: Hang})
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, srv.URL, nil)
	start := time.Now()
	if _, err := client.Do(req); err == nil {
		t.Fatal("transport hang: want an error")
	}
	if d := time.Since(start); d > 3*time.Second {
		t.Fatalf("transport hang outlived its context by %v", d)
	}

	// Partial truncates the body mid-read.
	inj.Set(Rule{Mode: Partial})
	resp, err := client.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err == nil || len(raw) >= 4096 {
		t.Fatalf("transport partial: err=%v bytes=%d", err, len(raw))
	}

	// Clear restores clean passage.
	inj.Clear()
	resp, err = client.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	raw, err = io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || len(raw) != 4096 {
		t.Fatalf("after clear: err=%v bytes=%d", err, len(raw))
	}
	if inj.Fired() == 0 {
		t.Fatal("Fired() did not count the injected faults")
	}
}
