// Package adaptive implements Sage's privacy-adaptive training (§3.3):
// a retry loop around an (ε, δ)-DP training pipeline that doubles either
// the privacy budget or the amount of training data on each RETRY from
// the SLAed validator, until the model is ACCEPTed or REJECTed (or the
// search exhausts its caps).
//
// The doubling schedule gives the paper's resource bound: when a model is
// accepted, the budget burned by all failed iterations is at most the
// final iteration's budget, and the final budget overshoots the smallest
// sufficient one by at most 2×, so the search costs at most 4× the
// optimum.
package adaptive

import (
	"fmt"

	"repro/internal/data"
	"repro/internal/pipeline"
	"repro/internal/privacy"
	"repro/internal/rng"
	"repro/internal/validation"
)

// DataSource provides growing amounts of training data from a stream:
// Take(n) returns the first n available samples (fewer if the stream has
// less). Implementations wrap synthetic generators or a GrowingDatabase.
type DataSource interface {
	Take(n int) *data.Dataset
	// Available returns how many samples the source currently holds.
	Available() int
}

// SliceSource is a DataSource over an in-memory dataset.
type SliceSource struct{ Data *data.Dataset }

// Take implements DataSource.
func (s SliceSource) Take(n int) *data.Dataset { return s.Data.Head(n) }

// Available implements DataSource.
func (s SliceSource) Available() int { return s.Data.Len() }

// Search configures a privacy-adaptive training search.
type Search struct {
	// Pipe is the DP training pipeline to drive.
	Pipe *pipeline.Pipeline
	// Epsilon0 is the initial (conservative) budget (paper's ε0).
	Epsilon0 float64
	// EpsilonCap bounds the pipeline budget (the paper caps at ε = 1).
	EpsilonCap float64
	// Delta is the training δ.
	Delta float64
	// MinSamples is the initial window size.
	MinSamples int
	// MaxSamples caps the data the search may consume (0 = all
	// available).
	MaxSamples int
	// Aggressive selects the Block/Aggressive strategy of §5.4: start
	// directly at EpsilonCap and all available data, instead of the
	// budget-conserving doubling schedule.
	Aggressive bool
}

// Result reports the outcome of a search.
type Result struct {
	Decision validation.Decision
	// Samples is the window size of the final iteration.
	Samples int
	// FinalBudget is the budget of the final iteration.
	FinalBudget privacy.Budget
	// TotalSpent accumulates the budget of every iteration (the 4×
	// bound is on this quantity).
	TotalSpent privacy.Budget
	// Iterations counts pipeline invocations.
	Iterations int
	// Quality is the DP quality estimate of the final iteration.
	Quality float64
	// Model is the final model (nil unless ACCEPTed).
	Model interface{ Predict([]float64) float64 }
}

// Run executes the search until ACCEPT, REJECT, or resource exhaustion
// (which yields RETRY, meaning "wait for more stream data").
func (s Search) Run(src DataSource, r *rng.RNG) (Result, error) {
	if s.Pipe == nil {
		return Result{}, fmt.Errorf("adaptive: nil pipeline")
	}
	if s.Epsilon0 <= 0 || s.EpsilonCap < s.Epsilon0 {
		return Result{}, fmt.Errorf("adaptive: need 0 < Epsilon0 ≤ EpsilonCap, got %v, %v",
			s.Epsilon0, s.EpsilonCap)
	}
	if s.MinSamples <= 0 {
		return Result{}, fmt.Errorf("adaptive: MinSamples must be > 0")
	}
	maxSamples := s.MaxSamples
	if maxSamples == 0 || maxSamples > src.Available() {
		maxSamples = src.Available()
	}

	eps := s.Epsilon0
	n := s.MinSamples
	if s.Aggressive {
		eps = s.EpsilonCap
		n = maxSamples
	}
	if n > maxSamples {
		n = maxSamples
	}

	var res Result
	for {
		res.Iterations++
		ds := src.Take(n)
		budget := privacy.Budget{Epsilon: eps, Delta: s.Delta}
		out, err := s.Pipe.Run(ds, budget, r)
		if err != nil {
			return res, err
		}
		res.Samples = ds.Len()
		res.FinalBudget = out.Spent
		res.TotalSpent = res.TotalSpent.Add(out.Spent)
		res.Quality = out.Quality
		res.Decision = out.Decision

		switch out.Decision {
		case validation.Accept:
			res.Model = out.Model
			return res, nil
		case validation.Reject:
			return res, nil
		}
		// RETRY: double the budget while allocation remains, else
		// double the data window (§3.3's conserving schedule).
		switch {
		case eps*2 <= s.EpsilonCap:
			eps *= 2
		case n < maxSamples:
			n *= 2
			if n > maxSamples {
				n = maxSamples
			}
		default:
			// Out of both resources: report RETRY to the caller,
			// who waits for new stream data.
			return res, nil
		}
	}
}
