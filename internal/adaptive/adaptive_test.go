package adaptive

import (
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/pipeline"
	"repro/internal/privacy"
	"repro/internal/rng"
	"repro/internal/taxi"
	"repro/internal/validation"
)

// taxiStream is a shared 300K-sample featurized stream.
var taxiStream = taxi.Pipeline(300000, 0, 24*60, 0, 0, 7)

func lrPipeline(target float64) *pipeline.Pipeline {
	return &pipeline.Pipeline{
		Name:    "taxi-lr",
		Trainer: pipeline.AdaSSPTrainer{Rho: 0.1, FeatureBound: 2.5, LabelBound: 1},
		Validator: pipeline.MSEValidator{
			Target: target, B: 1,
			ERMTrainer: pipeline.RidgeTrainer{Lambda: 1e-4},
		},
		Mode: validation.ModeSage,
	}
}

func TestSearchAcceptsReachableTarget(t *testing.T) {
	s := Search{
		Pipe:       lrPipeline(0.006),
		Epsilon0:   0.1,
		EpsilonCap: 1.0,
		Delta:      1e-6,
		MinSamples: 5000,
	}
	res, err := s.Run(SliceSource{Data: taxiStream}, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Decision != validation.Accept {
		t.Fatalf("decision = %v after %d iters (quality %v, n %d)",
			res.Decision, res.Iterations, res.Quality, res.Samples)
	}
	if res.Model == nil {
		t.Error("accepted search should return the model")
	}
	if res.Iterations < 2 {
		t.Errorf("expected multiple doubling iterations, got %d", res.Iterations)
	}
}

func TestSearchBudgetDoublingFourXBound(t *testing.T) {
	// The paper's 4× bound applies to the DP *budget* search: when the
	// search accepts while still doubling ε (data window fixed), the
	// failed iterations cost at most the final budget, and the final
	// budget overshoots the optimum by at most 2×. Run with the full
	// window from the start so only ε doubles.
	s := Search{
		Pipe:       lrPipeline(0.006),
		Epsilon0:   0.05,
		EpsilonCap: 1.0,
		Delta:      1e-6,
		MinSamples: taxiStream.Len(),
	}
	res, err := s.Run(SliceSource{Data: taxiStream}, rng.New(20))
	if err != nil {
		t.Fatal(err)
	}
	if res.Decision != validation.Accept {
		t.Fatalf("decision = %v (quality %v)", res.Decision, res.Quality)
	}
	if res.TotalSpent.Epsilon > 4*res.FinalBudget.Epsilon {
		t.Errorf("total ε %v exceeds 4× final %v", res.TotalSpent.Epsilon, res.FinalBudget.Epsilon)
	}
}

func TestSearchRejectsImpossibleTarget(t *testing.T) {
	// Pure noise labels; target far below the achievable 0.25.
	noisy := &data.Dataset{}
	gen := rng.New(2)
	for i := 0; i < 120000; i++ {
		y := 0.0
		if gen.Bool(0.5) {
			y = 1
		}
		noisy.Append(data.Example{Features: []float64{gen.Float64()}, Label: y})
	}
	s := Search{
		Pipe:       lrPipeline(0.05),
		Epsilon0:   0.25,
		EpsilonCap: 1.0,
		Delta:      1e-6,
		MinSamples: 10000,
	}
	res, err := s.Run(SliceSource{Data: noisy}, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	if res.Decision != validation.Reject {
		t.Fatalf("decision = %v, want REJECT", res.Decision)
	}
}

func TestSearchRetriesWhenDataRunsOut(t *testing.T) {
	small := taxiStream.Head(3000) // far too little for a tight target
	s := Search{
		Pipe:       lrPipeline(0.0028),
		Epsilon0:   0.5,
		EpsilonCap: 1.0,
		Delta:      1e-6,
		MinSamples: 1000,
	}
	res, err := s.Run(SliceSource{Data: small}, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	if res.Decision != validation.Retry {
		t.Fatalf("decision = %v, want RETRY (stream exhausted)", res.Decision)
	}
	if res.Samples > 3000 {
		t.Errorf("used %d samples from a 3000-sample stream", res.Samples)
	}
}

func TestSearchAggressiveUsesEverythingAtOnce(t *testing.T) {
	s := Search{
		Pipe:       lrPipeline(0.006),
		Epsilon0:   0.1,
		EpsilonCap: 1.0,
		Delta:      1e-6,
		MinSamples: 5000,
		Aggressive: true,
	}
	res, err := s.Run(SliceSource{Data: taxiStream}, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	if res.Decision != validation.Accept {
		t.Fatalf("decision = %v", res.Decision)
	}
	if res.Iterations != 1 {
		t.Errorf("aggressive should accept in 1 iteration, took %d", res.Iterations)
	}
	if res.Samples != taxiStream.Len() {
		t.Errorf("aggressive should use the full stream, used %d", res.Samples)
	}
	if res.FinalBudget.Epsilon < 0.99 {
		t.Errorf("aggressive should spend the cap, spent %v", res.FinalBudget.Epsilon)
	}
}

func TestSearchConserveSpendsLessThanAggressive(t *testing.T) {
	conserve := Search{
		Pipe: lrPipeline(0.006), Epsilon0: 0.1, EpsilonCap: 1.0,
		Delta: 1e-6, MinSamples: 20000,
	}
	aggressive := conserve
	aggressive.Aggressive = true
	rc, err := conserve.Run(SliceSource{Data: taxiStream}, rng.New(6))
	if err != nil {
		t.Fatal(err)
	}
	ra, err := aggressive.Run(SliceSource{Data: taxiStream}, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	if rc.Decision != validation.Accept || ra.Decision != validation.Accept {
		t.Fatalf("decisions %v / %v", rc.Decision, ra.Decision)
	}
	if rc.FinalBudget.Epsilon >= ra.FinalBudget.Epsilon {
		t.Errorf("conserve final ε %v not below aggressive %v",
			rc.FinalBudget.Epsilon, ra.FinalBudget.Epsilon)
	}
}

func TestSearchValidation(t *testing.T) {
	src := SliceSource{Data: taxiStream.Head(100)}
	cases := []Search{
		{Pipe: nil, Epsilon0: 0.1, EpsilonCap: 1, MinSamples: 10},
		{Pipe: lrPipeline(0.01), Epsilon0: 0, EpsilonCap: 1, MinSamples: 10},
		{Pipe: lrPipeline(0.01), Epsilon0: 2, EpsilonCap: 1, MinSamples: 10},
		{Pipe: lrPipeline(0.01), Epsilon0: 0.1, EpsilonCap: 1, MinSamples: 0},
	}
	for i, s := range cases {
		if _, err := s.Run(src, rng.New(8)); err == nil {
			t.Errorf("case %d should error", i)
		}
	}
}

func TestStreamTrainerEndToEnd(t *testing.T) {
	// Build a growing database of daily blocks and an access control,
	// then train a pipeline through the Sage Iterator.
	db := data.NewGrowingDatabase(data.TimePartitioner{Window: 24})
	ac := core.NewAccessControl(core.Policy{Global: privacy.MustBudget(1, 1e-6)})
	for _, ex := range taxiStream.Examples {
		for _, id := range db.Insert(ex) {
			ac.RegisterBlock(id)
		}
	}
	st := &StreamTrainer{
		AC: ac, DB: db, Pipe: lrPipeline(0.01),
		Epsilon0: 0.1, EpsilonCap: 1.0, Delta: 1e-6,
		MinWindow: 6,
	}
	res, err := st.Run(rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	if res.Decision != validation.Accept {
		t.Fatalf("decision = %v (quality %v, samples %d)", res.Decision, res.Quality, res.Samples)
	}
	if len(res.Blocks) == 0 {
		t.Fatal("no blocks recorded")
	}
	// Every used block must have been charged exactly the final spend
	// plus the failed iterations that touched it; all within the global
	// ceiling (Theorem 4.3 invariant).
	for _, id := range db.Blocks() {
		loss := ac.BlockLoss(id)
		if loss.Epsilon > 1+1e-9 {
			t.Errorf("block %d loss %v exceeds ceiling", id, loss)
		}
	}
	if sl := ac.StreamLoss(); sl.Epsilon > 1+1e-9 {
		t.Errorf("stream loss %v exceeds ceiling", sl)
	}
	if sl := ac.StreamLoss(); sl.Epsilon == 0 {
		t.Error("stream loss should be positive after training")
	}
}

func TestStreamTrainerInsufficientBudget(t *testing.T) {
	db := data.NewGrowingDatabase(data.TimePartitioner{Window: 24})
	ac := core.NewAccessControl(core.Policy{Global: privacy.MustBudget(1, 1e-6)})
	for _, ex := range taxiStream.Head(50000).Examples {
		for _, id := range db.Insert(ex) {
			ac.RegisterBlock(id)
		}
	}
	// Drain all blocks.
	for _, id := range db.Blocks() {
		if err := ac.Request([]data.BlockID{id}, privacy.MustBudget(1, 1e-6)); err != nil {
			t.Fatal(err)
		}
	}
	st := &StreamTrainer{
		AC: ac, DB: db, Pipe: lrPipeline(0.006),
		Epsilon0: 0.1, EpsilonCap: 1.0, Delta: 1e-6, MinWindow: 2,
	}
	_, err := st.Run(rng.New(10))
	if !errors.Is(err, ErrInsufficientBudget) {
		t.Fatalf("err = %v, want ErrInsufficientBudget", err)
	}
}

func TestStreamTrainerMissingFields(t *testing.T) {
	st := &StreamTrainer{}
	if _, err := st.Run(rng.New(11)); err == nil {
		t.Error("empty trainer should error")
	}
}
