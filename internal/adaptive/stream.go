package adaptive

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/pipeline"
	"repro/internal/privacy"
	"repro/internal/rng"
	"repro/internal/validation"
)

// StreamTrainer is the Sage Iterator of §3.2/§3.3: it drives a pipeline
// against a GrowingDatabase under an AccessControl, requesting block
// budgets before each attempt and widening its window / doubling its
// budget on RETRY. This is the component that makes privacy-adaptive
// training work end-to-end with block composition.
type StreamTrainer struct {
	AC   *core.AccessControl
	DB   *data.GrowingDatabase
	Pipe *pipeline.Pipeline

	// Epsilon0 is the first attempt's budget; EpsilonCap bounds it.
	Epsilon0   float64
	EpsilonCap float64
	// Delta is the per-attempt training δ.
	Delta float64
	// MinWindow is the initial number of most-recent blocks to train on.
	MinWindow int
	// MaxIterations bounds the retry loop (safety valve; default 20).
	MaxIterations int
}

// ErrInsufficientBudget is returned when the requested window cannot
// afford the next attempt; the caller should wait for new blocks.
var ErrInsufficientBudget = errors.New("adaptive: insufficient block budget; wait for new data")

// StreamResult reports a stream training run.
type StreamResult struct {
	Result
	// Blocks used by the final iteration.
	Blocks []data.BlockID
}

// Run executes privacy-adaptive training against the stream.
func (st *StreamTrainer) Run(r *rng.RNG) (StreamResult, error) {
	if st.AC == nil || st.DB == nil || st.Pipe == nil {
		return StreamResult{}, fmt.Errorf("adaptive: StreamTrainer missing AC, DB, or Pipe")
	}
	if st.Epsilon0 <= 0 || st.EpsilonCap < st.Epsilon0 {
		return StreamResult{}, fmt.Errorf("adaptive: need 0 < Epsilon0 ≤ EpsilonCap")
	}
	minWindow := st.MinWindow
	if minWindow <= 0 {
		minWindow = 1
	}
	maxIter := st.MaxIterations
	if maxIter <= 0 {
		maxIter = 20
	}

	eps := st.Epsilon0
	window := minWindow
	var out StreamResult

	for iter := 0; iter < maxIter; iter++ {
		budget := privacy.Budget{Epsilon: eps, Delta: st.Delta}
		blocks := st.AC.AvailableBlocks(st.DB.Blocks(), budget)
		if len(blocks) > window {
			blocks = blocks[len(blocks)-window:]
		}
		if len(blocks) < window {
			// Not enough affordable blocks for this window size.
			out.Decision = validation.Retry
			return out, ErrInsufficientBudget
		}
		if err := st.AC.Request(blocks, budget); err != nil {
			out.Decision = validation.Retry
			return out, ErrInsufficientBudget
		}

		ds := st.DB.Read(blocks)
		res, err := st.Pipe.Run(ds, budget, r)
		if err != nil {
			// The budget was deducted but unused by the failed run;
			// refund it so the blocks are not charged for nothing.
			_ = st.AC.Refund(blocks, budget)
			return out, err
		}
		// Refund the slice of the reservation the pipeline left unspent
		// (e.g. non-DP trainer stages).
		if unspent := budget.Sub(res.Spent); !unspent.IsZero() {
			_ = st.AC.Refund(blocks, unspent)
		}

		out.Iterations++
		out.Samples = ds.Len()
		out.FinalBudget = res.Spent
		out.TotalSpent = out.TotalSpent.Add(res.Spent)
		out.Quality = res.Quality
		out.Decision = res.Decision
		out.Blocks = blocks

		switch res.Decision {
		case validation.Accept:
			out.Model = res.Model
			return out, nil
		case validation.Reject:
			return out, nil
		}
		// RETRY: budget first, then window (§3.3).
		switch {
		case eps*2 <= st.EpsilonCap:
			eps *= 2
		case window < st.DB.NumBlocks():
			window *= 2
			if window > st.DB.NumBlocks() {
				window = st.DB.NumBlocks()
			}
		default:
			return out, ErrInsufficientBudget
		}
	}
	return out, fmt.Errorf("adaptive: exceeded %d iterations", maxIter)
}
