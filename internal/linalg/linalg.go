// Package linalg provides the small dense linear-algebra kernel the ML
// substrate needs: vectors, symmetric matrices, Cholesky solves for ridge
// regression (AdaSSP), and power iteration for extreme eigenvalues.
// Everything is stdlib-only and deterministic.
package linalg

import (
	"fmt"
	"math"
)

// Dot returns the inner product of a and b. It panics on length mismatch.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("linalg: Dot length mismatch %d vs %d", len(a), len(b)))
	}
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of v.
func Norm2(v []float64) float64 { return math.Sqrt(Dot(v, v)) }

// AXPY computes y += alpha·x in place.
func AXPY(alpha float64, x, y []float64) {
	if len(x) != len(y) {
		panic("linalg: AXPY length mismatch")
	}
	for i := range x {
		y[i] += alpha * x[i]
	}
}

// Scale multiplies v by alpha in place.
func Scale(alpha float64, v []float64) {
	for i := range v {
		v[i] *= alpha
	}
}

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len Rows*Cols
}

// NewMatrix returns a zero matrix of the given shape.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic("linalg: negative matrix dimensions")
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Add increments element (i, j).
func (m *Matrix) Add(i, j int, v float64) { m.Data[i*m.Cols+j] += v }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// MulVec returns m·x.
func (m *Matrix) MulVec(x []float64) []float64 {
	if len(x) != m.Cols {
		panic("linalg: MulVec dimension mismatch")
	}
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		out[i] = Dot(row, x)
	}
	return out
}

// AddDiagonal adds lambda to every diagonal element in place.
func (m *Matrix) AddDiagonal(lambda float64) {
	n := m.Rows
	if m.Cols < n {
		n = m.Cols
	}
	for i := 0; i < n; i++ {
		m.Data[i*m.Cols+i] += lambda
	}
}

// Symmetrize replaces m with (m + mᵀ)/2. Used after adding independent
// noise to the entries of a Gram matrix so the perturbed matrix remains
// symmetric (AdaSSP releases a symmetric noise matrix).
func (m *Matrix) Symmetrize() {
	if m.Rows != m.Cols {
		panic("linalg: Symmetrize requires a square matrix")
	}
	for i := 0; i < m.Rows; i++ {
		for j := i + 1; j < m.Cols; j++ {
			v := (m.At(i, j) + m.At(j, i)) / 2
			m.Set(i, j, v)
			m.Set(j, i, v)
		}
	}
}

// Gram accumulates xᵀx into m (outer product of the row vector x),
// i.e. m += x·xᵀ. m must be square with dimension len(x).
func (m *Matrix) Gram(x []float64) {
	if m.Rows != len(x) || m.Cols != len(x) {
		panic("linalg: Gram dimension mismatch")
	}
	for i := range x {
		base := i * m.Cols
		for j := range x {
			m.Data[base+j] += x[i] * x[j]
		}
	}
}

// Cholesky computes the lower-triangular L with m = L·Lᵀ for a symmetric
// positive-definite matrix. It returns false if the matrix is not
// positive definite (within a small tolerance).
func Cholesky(m *Matrix) (*Matrix, bool) {
	if m.Rows != m.Cols {
		panic("linalg: Cholesky requires a square matrix")
	}
	n := m.Rows
	l := NewMatrix(n, n)
	for j := 0; j < n; j++ {
		sum := m.At(j, j)
		for k := 0; k < j; k++ {
			sum -= l.At(j, k) * l.At(j, k)
		}
		if sum <= 1e-14 {
			return nil, false
		}
		diag := math.Sqrt(sum)
		l.Set(j, j, diag)
		for i := j + 1; i < n; i++ {
			s := m.At(i, j)
			for k := 0; k < j; k++ {
				s -= l.At(i, k) * l.At(j, k)
			}
			l.Set(i, j, s/diag)
		}
	}
	return l, true
}

// SolveCholesky solves m·x = b via the Cholesky factor L (forward then
// backward substitution).
func SolveCholesky(l *Matrix, b []float64) []float64 {
	n := l.Rows
	if len(b) != n {
		panic("linalg: SolveCholesky dimension mismatch")
	}
	// Forward: L·y = b.
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		s := b[i]
		for k := 0; k < i; k++ {
			s -= l.At(i, k) * y[k]
		}
		y[i] = s / l.At(i, i)
	}
	// Backward: Lᵀ·x = y.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for k := i + 1; k < n; k++ {
			s -= l.At(k, i) * x[k]
		}
		x[i] = s / l.At(i, i)
	}
	return x
}

// SolveSPD solves m·x = b for symmetric positive-definite m, adding
// progressively larger ridge terms if m is singular. It panics only if
// the system remains unsolvable after heavy regularization.
func SolveSPD(m *Matrix, b []float64) []float64 {
	ridge := 0.0
	for attempt := 0; attempt < 12; attempt++ {
		work := m.Clone()
		if ridge > 0 {
			work.AddDiagonal(ridge)
		}
		if l, ok := Cholesky(work); ok {
			return SolveCholesky(l, b)
		}
		if ridge == 0 {
			ridge = 1e-10
		} else {
			ridge *= 100
		}
	}
	panic("linalg: SolveSPD failed even with heavy regularization")
}

// MaxEigen estimates the largest eigenvalue of a symmetric matrix via
// power iteration. iters=100 is ample for the well-separated Gram
// matrices AdaSSP sees.
func MaxEigen(m *Matrix, iters int) float64 {
	if m.Rows != m.Cols {
		panic("linalg: MaxEigen requires a square matrix")
	}
	n := m.Rows
	if n == 0 {
		return 0
	}
	v := make([]float64, n)
	for i := range v {
		// Deterministic non-degenerate start vector.
		v[i] = 1 / math.Sqrt(float64(n)) * (1 + 0.01*float64(i%7))
	}
	lambda := 0.0
	for it := 0; it < iters; it++ {
		w := m.MulVec(v)
		norm := Norm2(w)
		if norm == 0 {
			return 0
		}
		Scale(1/norm, w)
		lambda = Dot(w, m.MulVec(w))
		v = w
	}
	return lambda
}

// MinEigen estimates the smallest eigenvalue of a symmetric
// positive-semidefinite matrix via power iteration on (c·I − m) where c
// upper-bounds the spectrum. AdaSSP needs λ_min(XᵀX) for its adaptive
// regularization.
func MinEigen(m *Matrix, iters int) float64 {
	c := MaxEigen(m, iters) * 1.01
	if c == 0 {
		return 0
	}
	shifted := m.Clone()
	Scale(-1, shifted.Data)
	shifted.AddDiagonal(c)
	mu := MaxEigen(shifted, iters)
	min := c - mu
	if min < 0 {
		return 0
	}
	return min
}
