// Package linalg provides the small dense linear-algebra kernel the ML
// substrate needs: vectors, symmetric matrices, Cholesky solves for ridge
// regression (AdaSSP), and power iteration for extreme eigenvalues.
// Everything is stdlib-only and deterministic.
package linalg

import (
	"fmt"
	"math"
)

// Dot returns the inner product of a and b. It panics on length mismatch.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("linalg: Dot length mismatch %d vs %d", len(a), len(b)))
	}
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of v.
func Norm2(v []float64) float64 { return math.Sqrt(Dot(v, v)) }

// AXPY computes y += alpha·x in place.
func AXPY(alpha float64, x, y []float64) {
	if len(x) != len(y) {
		panic("linalg: AXPY length mismatch")
	}
	for i := range x {
		y[i] += alpha * x[i]
	}
}

// Scale multiplies v by alpha in place.
func Scale(alpha float64, v []float64) {
	for i := range v {
		v[i] *= alpha
	}
}

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len Rows*Cols
}

// NewMatrix returns a zero matrix of the given shape.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic("linalg: negative matrix dimensions")
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Add increments element (i, j).
func (m *Matrix) Add(i, j int, v float64) { m.Data[i*m.Cols+j] += v }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// MulVec returns m·x.
func (m *Matrix) MulVec(x []float64) []float64 {
	out := make([]float64, m.Rows)
	m.MulVecInto(out, x)
	return out
}

// MulVecInto computes dst = m·x without allocating. dst must have length
// m.Rows; iterative callers (power iteration) reuse it across calls.
func (m *Matrix) MulVecInto(dst, x []float64) {
	if len(x) != m.Cols {
		panic("linalg: MulVec dimension mismatch")
	}
	if len(dst) != m.Rows {
		panic("linalg: MulVecInto destination length mismatch")
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		dst[i] = Dot(row, x)
	}
}

// AddDiagonal adds lambda to every diagonal element in place.
func (m *Matrix) AddDiagonal(lambda float64) {
	n := m.Rows
	if m.Cols < n {
		n = m.Cols
	}
	for i := 0; i < n; i++ {
		m.Data[i*m.Cols+i] += lambda
	}
}

// Symmetrize replaces m with (m + mᵀ)/2. Used after adding independent
// noise to the entries of a Gram matrix so the perturbed matrix remains
// symmetric (AdaSSP releases a symmetric noise matrix).
func (m *Matrix) Symmetrize() {
	if m.Rows != m.Cols {
		panic("linalg: Symmetrize requires a square matrix")
	}
	for i := 0; i < m.Rows; i++ {
		for j := i + 1; j < m.Cols; j++ {
			v := (m.At(i, j) + m.At(j, i)) / 2
			m.Set(i, j, v)
			m.Set(j, i, v)
		}
	}
}

// Gram accumulates xᵀx into m (outer product of the row vector x),
// i.e. m += x·xᵀ. m must be square with dimension len(x). Callers that
// accumulate many outer products should prefer GramUpper in the loop
// followed by one MirrorUpper — the outer product is symmetric, so the
// full update does twice the necessary work.
func (m *Matrix) Gram(x []float64) {
	if m.Rows != len(x) || m.Cols != len(x) {
		panic("linalg: Gram dimension mismatch")
	}
	for i, xi := range x {
		if xi == 0 {
			continue
		}
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		axpyUnrolled(xi, x, row)
	}
}

// GramUpper accumulates only the upper triangle (j >= i) of x·xᵀ into m:
// half the FLOPs of Gram. Zero components of x are skipped, which makes
// accumulation over one-hot-heavy feature vectors (the Taxi/Criteo
// bucketized features) nearly linear in the number of active features.
// Call MirrorUpper once after the accumulation loop to restore the full
// symmetric matrix.
func (m *Matrix) GramUpper(x []float64) {
	if m.Rows != len(x) || m.Cols != len(x) {
		panic("linalg: Gram dimension mismatch")
	}
	for i, xi := range x {
		if xi == 0 {
			continue
		}
		// Row slice from the diagonal: m[i][i:] += xi * x[i:].
		axpyUnrolled(xi, x[i:], m.Data[i*m.Cols+i:(i+1)*m.Cols])
	}
}

// MirrorUpper copies the strict upper triangle onto the lower one,
// completing a matrix accumulated with GramUpper.
func (m *Matrix) MirrorUpper() {
	if m.Rows != m.Cols {
		panic("linalg: MirrorUpper requires a square matrix")
	}
	n := m.Rows
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			m.Data[j*n+i] = m.Data[i*n+j]
		}
	}
}

// axpyUnrolled computes y += alpha·x for equal-length slices with a
// 4-wide unrolled loop. Unlike AXPY it assumes the caller already
// matched the lengths; the unrolling keeps the Gram inner loop fed
// without per-element bounds checks.
func axpyUnrolled(alpha float64, x, y []float64) {
	y = y[:len(x)]
	j := 0
	for ; j+4 <= len(x); j += 4 {
		y[j] += alpha * x[j]
		y[j+1] += alpha * x[j+1]
		y[j+2] += alpha * x[j+2]
		y[j+3] += alpha * x[j+3]
	}
	for ; j < len(x); j++ {
		y[j] += alpha * x[j]
	}
}

// Cholesky computes the lower-triangular L with m = L·Lᵀ for a symmetric
// positive-definite matrix. It returns false if the matrix is not
// positive definite (within a small tolerance).
func Cholesky(m *Matrix) (*Matrix, bool) {
	if m.Rows != m.Cols {
		panic("linalg: Cholesky requires a square matrix")
	}
	n := m.Rows
	l := NewMatrix(n, n)
	for j := 0; j < n; j++ {
		// Row slices keep the inner dot products on contiguous memory
		// instead of paying an index multiply per At() access.
		lj := l.Data[j*n : j*n+j]
		sum := m.Data[j*n+j]
		for _, v := range lj {
			sum -= v * v
		}
		if sum <= 1e-14 {
			return nil, false
		}
		diag := math.Sqrt(sum)
		l.Data[j*n+j] = diag
		for i := j + 1; i < n; i++ {
			li := l.Data[i*n : i*n+j]
			s := m.Data[i*n+j]
			for k := range lj {
				s -= li[k] * lj[k]
			}
			l.Data[i*n+j] = s / diag
		}
	}
	return l, true
}

// SolveCholesky solves m·x = b via the Cholesky factor L (forward then
// backward substitution).
func SolveCholesky(l *Matrix, b []float64) []float64 {
	n := l.Rows
	if len(b) != n {
		panic("linalg: SolveCholesky dimension mismatch")
	}
	// Forward: L·y = b, with each row of L as one contiguous slice.
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		row := l.Data[i*n : i*n+i]
		s := b[i]
		for k, v := range row {
			s -= v * y[k]
		}
		y[i] = s / l.Data[i*n+i]
	}
	// Backward: Lᵀ·x = y. Lᵀ's rows are L's columns, so walk column i
	// with a strided index rather than At() per element.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for k := i + 1; k < n; k++ {
			s -= l.Data[k*n+i] * x[k]
		}
		x[i] = s / l.Data[i*n+i]
	}
	return x
}

// SolveSPD solves m·x = b for symmetric positive-definite m, adding
// progressively larger ridge terms if m is singular. It panics only if
// the system remains unsolvable after heavy regularization.
func SolveSPD(m *Matrix, b []float64) []float64 {
	ridge := 0.0
	for attempt := 0; attempt < 12; attempt++ {
		work := m.Clone()
		if ridge > 0 {
			work.AddDiagonal(ridge)
		}
		if l, ok := Cholesky(work); ok {
			return SolveCholesky(l, b)
		}
		if ridge == 0 {
			ridge = 1e-10
		} else {
			ridge *= 100
		}
	}
	panic("linalg: SolveSPD failed even with heavy regularization")
}

// MaxEigen estimates the largest eigenvalue of a symmetric matrix via
// power iteration. iters=100 is ample for the well-separated Gram
// matrices AdaSSP sees.
func MaxEigen(m *Matrix, iters int) float64 {
	if m.Rows != m.Cols {
		panic("linalg: MaxEigen requires a square matrix")
	}
	n := m.Rows
	if n == 0 {
		return 0
	}
	v := make([]float64, n)
	for i := range v {
		// Deterministic non-degenerate start vector.
		v[i] = 1 / math.Sqrt(float64(n)) * (1 + 0.01*float64(i%7))
	}
	// Two ping-pong buffers: the loop allocates nothing, and the
	// Rayleigh quotient is only evaluated once convergence iterations
	// are done (intermediate quotients were discarded anyway).
	w := make([]float64, n)
	for it := 0; it < iters; it++ {
		m.MulVecInto(w, v)
		norm := Norm2(w)
		if norm == 0 {
			return 0
		}
		Scale(1/norm, w)
		v, w = w, v
	}
	m.MulVecInto(w, v)
	return Dot(v, w)
}

// MinEigen estimates the smallest eigenvalue of a symmetric
// positive-semidefinite matrix via power iteration on (c·I − m) where c
// upper-bounds the spectrum. AdaSSP needs λ_min(XᵀX) for its adaptive
// regularization.
func MinEigen(m *Matrix, iters int) float64 {
	c := MaxEigen(m, iters) * 1.01
	if c == 0 {
		return 0
	}
	shifted := m.Clone()
	Scale(-1, shifted.Data)
	shifted.AddDiagonal(c)
	mu := MaxEigen(shifted, iters)
	min := c - mu
	if min < 0 {
		return 0
	}
	return min
}
