package linalg

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDotAndNorm(t *testing.T) {
	if got := Dot([]float64{1, 2, 3}, []float64{4, 5, 6}); got != 32 {
		t.Errorf("Dot = %v, want 32", got)
	}
	if got := Norm2([]float64{3, 4}); got != 5 {
		t.Errorf("Norm2 = %v, want 5", got)
	}
}

func TestAXPYScale(t *testing.T) {
	y := []float64{1, 1}
	AXPY(2, []float64{3, 4}, y)
	if y[0] != 7 || y[1] != 9 {
		t.Errorf("AXPY = %v", y)
	}
	Scale(0.5, y)
	if y[0] != 3.5 || y[1] != 4.5 {
		t.Errorf("Scale = %v", y)
	}
}

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(0, 1, 5)
	m.Add(0, 1, 2)
	if m.At(0, 1) != 7 {
		t.Errorf("At = %v", m.At(0, 1))
	}
	c := m.Clone()
	c.Set(0, 1, 0)
	if m.At(0, 1) != 7 {
		t.Error("Clone aliases original")
	}
	got := m.MulVec([]float64{1, 2, 3})
	if got[0] != 14 || got[1] != 0 {
		t.Errorf("MulVec = %v", got)
	}
}

func TestGram(t *testing.T) {
	m := NewMatrix(2, 2)
	m.Gram([]float64{1, 2})
	m.Gram([]float64{3, 4})
	// XᵀX for X = [[1,2],[3,4]] = [[10,14],[14,20]].
	want := [][]float64{{10, 14}, {14, 20}}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if m.At(i, j) != want[i][j] {
				t.Errorf("Gram[%d][%d] = %v, want %v", i, j, m.At(i, j), want[i][j])
			}
		}
	}
}

func TestSymmetrize(t *testing.T) {
	m := NewMatrix(2, 2)
	m.Set(0, 1, 4)
	m.Set(1, 0, 2)
	m.Symmetrize()
	if m.At(0, 1) != 3 || m.At(1, 0) != 3 {
		t.Errorf("Symmetrize: %v %v", m.At(0, 1), m.At(1, 0))
	}
}

func TestCholeskySolve(t *testing.T) {
	// SPD system: [[4,2],[2,3]]·x = [1, 2] → x = [-1/8, 3/4].
	m := NewMatrix(2, 2)
	m.Set(0, 0, 4)
	m.Set(0, 1, 2)
	m.Set(1, 0, 2)
	m.Set(1, 1, 3)
	l, ok := Cholesky(m)
	if !ok {
		t.Fatal("Cholesky failed on SPD matrix")
	}
	x := SolveCholesky(l, []float64{1, 2})
	if math.Abs(x[0]+0.125) > 1e-12 || math.Abs(x[1]-0.75) > 1e-12 {
		t.Errorf("solution = %v", x)
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	m := NewMatrix(2, 2)
	m.Set(0, 0, 1)
	m.Set(1, 1, -1)
	if _, ok := Cholesky(m); ok {
		t.Error("Cholesky accepted an indefinite matrix")
	}
}

func TestSolveSPDRegularizesSingular(t *testing.T) {
	// Rank-deficient matrix; SolveSPD should still return something
	// finite via ridge escalation.
	m := NewMatrix(2, 2)
	m.Gram([]float64{1, 1})
	x := SolveSPD(m, []float64{2, 2})
	for _, v := range x {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("solution = %v", x)
		}
	}
}

func TestEigenExtremes(t *testing.T) {
	// diag(5, 2, 0.5): λmax = 5, λmin = 0.5.
	m := NewMatrix(3, 3)
	m.Set(0, 0, 5)
	m.Set(1, 1, 2)
	m.Set(2, 2, 0.5)
	if got := MaxEigen(m, 200); math.Abs(got-5) > 1e-6 {
		t.Errorf("MaxEigen = %v, want 5", got)
	}
	if got := MinEigen(m, 200); math.Abs(got-0.5) > 1e-3 {
		t.Errorf("MinEigen = %v, want 0.5", got)
	}
}

func TestEigenNonDiagonal(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 3 and 1.
	m := NewMatrix(2, 2)
	m.Set(0, 0, 2)
	m.Set(0, 1, 1)
	m.Set(1, 0, 1)
	m.Set(1, 1, 2)
	if got := MaxEigen(m, 200); math.Abs(got-3) > 1e-6 {
		t.Errorf("MaxEigen = %v, want 3", got)
	}
	if got := MinEigen(m, 200); math.Abs(got-1) > 1e-3 {
		t.Errorf("MinEigen = %v, want 1", got)
	}
}

// Property: Cholesky solve inverts multiplication for random SPD systems
// built as Gram matrices plus a ridge.
func TestSolveRoundTripProperty(t *testing.T) {
	f := func(raw []int8) bool {
		const d = 3
		if len(raw) < d*d+d {
			return true
		}
		g := NewMatrix(d, d)
		for r := 0; r < d; r++ {
			row := make([]float64, d)
			for c := 0; c < d; c++ {
				row[c] = float64(raw[r*d+c]) / 32
			}
			g.Gram(row)
		}
		g.AddDiagonal(0.5) // ensure SPD
		x := make([]float64, d)
		for i := 0; i < d; i++ {
			x[i] = float64(raw[d*d+i]) / 32
		}
		b := g.MulVec(x)
		got := SolveSPD(g, b)
		for i := range x {
			if math.Abs(got[i]-x[i]) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: MaxEigen dominates the Rayleigh quotient of any probe vector.
func TestMaxEigenDominatesProperty(t *testing.T) {
	f := func(raw []int8) bool {
		const d = 3
		if len(raw) < d*d+d {
			return true
		}
		g := NewMatrix(d, d)
		for r := 0; r < d; r++ {
			row := make([]float64, d)
			for c := 0; c < d; c++ {
				row[c] = float64(raw[r*d+c]) / 32
			}
			g.Gram(row)
		}
		v := make([]float64, d)
		norm := 0.0
		for i := 0; i < d; i++ {
			v[i] = float64(raw[d*d+i])/32 + 0.01
			norm += v[i] * v[i]
		}
		if norm == 0 {
			return true
		}
		rayleigh := Dot(v, g.MulVec(v)) / norm
		return MaxEigen(g, 300) >= rayleigh-1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
