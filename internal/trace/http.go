// http.go is the tracer's HTTP surface: the traceparent header
// contract, context carriage, server middleware, and the /debug/trace
// export handler.
package trace

import (
	"context"
	"encoding/hex"
	"encoding/json"
	"net/http"
)

// Header is the cross-tier propagation header (W3C trace-context).
const Header = "traceparent"

// headerLen is len("00-") + 32 + len("-") + 16 + len("-01").
const headerLen = 55

// FormatTraceparent renders the header value for one trace/span pair:
// version 00, sampled flag 01.
func FormatTraceparent(traceID TraceID, spanID SpanID) string {
	buf := make([]byte, headerLen)
	copy(buf, "00-")
	hex.Encode(buf[3:35], traceID[:])
	buf[35] = '-'
	hex.Encode(buf[36:52], spanID[:])
	copy(buf[52:], "-01")
	return string(buf)
}

// ParseTraceparent parses a traceparent header value. It accepts any
// known-shape version-00 header with nonzero ids and any flags byte;
// everything else reports ok=false and the receiver starts fresh.
func ParseTraceparent(s string) (traceID TraceID, spanID SpanID, ok bool) {
	if len(s) != headerLen || s[0] != '0' || s[1] != '0' ||
		s[2] != '-' || s[35] != '-' || s[52] != '-' {
		return TraceID{}, SpanID{}, false
	}
	if _, err := hex.Decode(traceID[:], []byte(s[3:35])); err != nil {
		return TraceID{}, SpanID{}, false
	}
	if _, err := hex.Decode(spanID[:], []byte(s[36:52])); err != nil {
		return TraceID{}, SpanID{}, false
	}
	if !isHex(s[53]) || !isHex(s[54]) {
		return TraceID{}, SpanID{}, false
	}
	if traceID.IsZero() || spanID.IsZero() {
		return TraceID{}, SpanID{}, false
	}
	return traceID, spanID, true
}

func isHex(c byte) bool {
	return c >= '0' && c <= '9' || c >= 'a' && c <= 'f' || c >= 'A' && c <= 'F'
}

// Traceparent renders the header value naming s as parent ("" on nil).
func (s *Span) Traceparent() string {
	if s == nil {
		return ""
	}
	return FormatTraceparent(s.rec.traceID, s.rec.spanID)
}

// Inject stamps s as the parent of the outgoing request carrying h,
// replacing any traceparent already present (e.g. one copied from the
// inbound request). No-op on a nil span.
func Inject(s *Span, h http.Header) {
	if s == nil {
		return
	}
	h.Set(Header, s.Traceparent())
}

// ctxKey carries a *Span in a context.
type ctxKey struct{}

// ContextWith returns ctx carrying s. A nil span returns ctx unchanged
// (no allocation on the disabled path).
func ContextWith(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, s)
}

// FromContext returns the span carried by ctx, or nil.
func FromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(ctxKey{}).(*Span)
	return s
}

// CtxTraceID returns the hex trace id carried by ctx, or "" — the
// argument form metrics.Histogram.ObserveExemplar takes.
func CtxTraceID(ctx context.Context) string {
	return FromContext(ctx).TraceIDString()
}

// StartSpan begins a child of the span carried by ctx and returns it
// with a derived context. With no span in ctx it returns (nil, ctx):
// tracing stays disabled through the call site with zero cost.
func StartSpan(ctx context.Context, name string) (*Span, context.Context) {
	s := FromContext(ctx).StartChild(name)
	if s == nil {
		return nil, ctx
	}
	return s, ContextWith(ctx, s)
}

// Middleware wraps next so every request runs under a server span:
// an incoming traceparent is continued (same trace, remote parent),
// otherwise a fresh trace starts. The span rides the request context
// and records the response status at End. On a nil tracer the handler
// is returned unchanged — the disabled serving path is byte-for-byte
// the untraced one, which is what keeps the pinned alloc budgets true.
func (t *Tracer) Middleware(next http.Handler) http.Handler {
	if t == nil {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var s *Span
		if traceID, parent, ok := ParseTraceparent(r.Header.Get(Header)); ok {
			s = t.StartRemote(r.Method+" "+r.URL.Path, traceID, parent)
		} else {
			s = t.StartRoot(r.Method + " " + r.URL.Path)
		}
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		next.ServeHTTP(sw, r.WithContext(ContextWith(r.Context(), s)))
		s.SetStatus(sw.code)
		if sw.code >= http.StatusInternalServerError {
			s.SetOutcome("error")
		}
		s.End()
	})
}

// statusWriter records the response status for the server span.
type statusWriter struct {
	http.ResponseWriter
	code  int
	wrote bool
}

func (w *statusWriter) WriteHeader(code int) {
	if !w.wrote {
		w.code = code
		w.wrote = true
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	w.wrote = true
	return w.ResponseWriter.Write(b)
}

// DebugHandler serves the tracer snapshot as JSON (GET /debug/trace).
// exemplars, when non-nil, is evaluated per request and merged into
// the payload (callers pass their metric registry's exemplar table).
// ?trace=<32 hex digits> filters both span lists to one trace.
func (t *Tracer) DebugHandler(exemplars func() any) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		snap := t.Snapshot()
		if want := r.URL.Query().Get("trace"); want != "" {
			snap.Recent = filterSpans(snap.Recent, want)
			snap.Captured = filterSpans(snap.Captured, want)
		}
		if exemplars != nil {
			snap.Exemplars = exemplars()
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(snap)
	})
}

func filterSpans(spans []SpanJSON, traceID string) []SpanJSON {
	out := spans[:0]
	for _, s := range spans {
		if s.TraceID == traceID {
			out = append(out, s)
		}
	}
	return out
}
