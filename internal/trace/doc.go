// Package trace is Sage's fleet-wide request tracer: the "which
// request paid it" half of the observability story whose "how much"
// half is internal/metrics. One trace follows a request across tiers —
// a /predict/batch call from the gateway's root span through a failover
// retry into a replica's store handlers, or one daemon tick through its
// ingest/train/retention/compaction phases into the WAL flush — as a
// tree of spans sharing a 128-bit trace id.
//
// # Header contract
//
// Cross-process propagation uses the W3C trace-context header,
//
//	traceparent: 00-<32 hex trace id>-<16 hex span id>-01
//
// (version 00, sampled flag always 01 — a tier that traces at all
// records every span; retention, not sampling-at-source, bounds cost).
// The gateway opens the root span (or continues a caller-supplied
// traceparent) and stamps each routing *attempt* with its own child
// span id before forwarding, so a failed-over request arrives at the
// second replica under the same trace id but a different parent span —
// two attempt spans under one trace. Replicas, the store server, and
// the daemon continue any incoming traceparent via Middleware. Parse
// rejects malformed headers (wrong shape, non-hex, all-zero ids) and
// the receiver then starts a fresh trace rather than propagating
// garbage ids.
//
// # Recording and tail sampling
//
// Every tier's Tracer owns two fixed-size ring buffers of completed
// span records (Config.RingSize recent spans, Config.CaptureSize
// captured spans — defaults 2048/512). Span records are plain structs
// copied by value into pre-allocated slots, and finished *Span values
// are pooled, so a tracer's memory is fixed at construction: sustained
// load overwrites old spans, it never grows the process. Sizing: one
// record is a few hundred bytes, so the defaults cost under a megabyte
// per process; size RingSize to cover a few seconds of peak span rate
// (the window a debugger has between an incident and a scrape).
//
// Retention is tail-based: when a local root span ends, the whole
// trace (every span sharing its trace id still present in the recent
// ring) is copied into the captured ring iff the root was slow
// (duration ≥ Config.SlowThreshold, default 250ms) or ended badly —
// HTTP status ≥ 500 or a non-empty outcome ("shed", "failover",
// "error", "unroutable"). A request that survives failover is
// therefore always captured even though its status is 200: the
// gateway marks the root's outcome "failover". Fast, healthy traces
// only live in the recent ring until overwritten.
//
// # Logs and metrics correlation
//
// Structured `event=` log lines funnel through Eventf/SpanEventf;
// SpanEventf appends " trace_id=<id> span_id=<id>" when the context
// carries a live span and records the event name on the span, so a log
// line and the trace it belongs to cross-reference both ways. Latency
// histograms accept exemplars (metrics.Histogram.ObserveExemplar): the
// serving tiers attach the current trace id to their sage_*_seconds
// observations, and GET /debug/trace exposes the exemplar table next
// to the spans.
//
// # Debug surface
//
// Every sagectl server run with -debug serves GET /debug/trace
// (DebugHandler: recent + captured spans plus histogram exemplars as
// JSON; ?trace=<hex id> filters to one trace) and the net/http/pprof
// endpoints. One-line profile capture against a live node:
//
//	go tool pprof "http://localhost:8080/debug/pprof/profile?seconds=10"
//
// (heap: /debug/pprof/heap, goroutines: /debug/pprof/goroutine, block:
// /debug/pprof/block). `sagectl trace -from http://host:port` fetches
// /debug/trace and pretty-prints each trace as an indented span tree.
//
// # Cost discipline
//
// The package obeys the same hot-path rules as internal/metrics: a nil
// *Tracer is a valid disabled tracer — every method on it (and on the
// nil *Span it hands out) is a nil-check no-op, and Middleware on a
// nil tracer returns the wrapped handler unchanged, so a server built
// without -debug pays nothing and the pinned serving allocation
// budgets hold with tracing compiled in. On the enabled path Span.End
// is allocation-free (a struct copy into a ring slot plus a pool put);
// internal/trace/alloc_test.go pins it.
package trace
