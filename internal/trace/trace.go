// trace.go implements the tracer core: ids, spans, the fixed-size
// ring-buffer recorder, and tail-sampling capture. The HTTP surface
// (traceparent propagation, middleware, /debug/trace) is in http.go;
// the structured-log funnel is in logf.go.
package trace

import (
	cryptorand "crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"sync"
	"sync/atomic"
	"time"
)

// TraceID identifies one end-to-end request tree (128 bits).
type TraceID [16]byte

// IsZero reports whether the id is the invalid all-zero id.
func (t TraceID) IsZero() bool { return t == TraceID{} }

// String renders the id as 32 lowercase hex digits.
func (t TraceID) String() string { return hex.EncodeToString(t[:]) }

// SpanID identifies one span within a trace (64 bits).
type SpanID [8]byte

// IsZero reports whether the id is the invalid all-zero id.
func (s SpanID) IsZero() bool { return s == SpanID{} }

// String renders the id as 16 lowercase hex digits.
func (s SpanID) String() string { return hex.EncodeToString(s[:]) }

// maxAttrs and maxEvents bound one span's inline attribute and event
// storage. Fixed arrays keep the record a flat struct (copied by value
// into ring slots, never allocated per span); extras past the bound
// are dropped, which is the right failure mode for a debugging aid.
const (
	maxAttrs  = 6
	maxEvents = 6
)

type attr struct{ key, value string }

type spanEvent struct {
	name string
	at   time.Duration // offset from span start
}

// record is one completed (or in-flight) span, stored inline.
type record struct {
	traceID TraceID
	spanID  SpanID
	parent  SpanID
	name    string
	start   time.Time
	dur     time.Duration
	status  int    // HTTP-ish status code, 0 when not applicable
	outcome string // "", or a terminal classification: "error", "shed", "failover", ...
	attrs   [maxAttrs]attr
	nattrs  int
	events  [maxEvents]spanEvent
	nevents int
}

// ring is a fixed-size overwriting buffer of span records. Writes copy
// the record by value into a pre-allocated slot; memory never grows.
type ring struct {
	mu    sync.Mutex
	slots []record
	next  uint64 // total writes; slot index is next % len(slots)
}

func (r *ring) put(rec *record) {
	r.mu.Lock()
	r.slots[r.next%uint64(len(r.slots))] = *rec
	r.next++
	r.mu.Unlock()
}

// appendSnapshot appends the ring's live records, oldest first, to dst.
func (r *ring) appendSnapshot(dst []record) []record {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.next
	span := uint64(len(r.slots))
	start := uint64(0)
	if n > span {
		start = n - span
	}
	for i := start; i < n; i++ {
		dst = append(dst, r.slots[i%span])
	}
	return dst
}

// Config sizes a Tracer. The zero value gets usable defaults.
type Config struct {
	// Service names the tier ("gateway", "replica", "store", "daemon",
	// "wal"); it is stamped on every span this tracer records.
	Service string
	// RingSize is the recent-span ring capacity (default 2048).
	RingSize int
	// CaptureSize is the captured-span ring capacity (default 512).
	CaptureSize int
	// SlowThreshold is the tail-sampling latency bound: a local root
	// span at least this slow captures its whole trace (default 250ms).
	SlowThreshold time.Duration
}

// Tracer records spans for one process tier. A nil *Tracer is a valid
// disabled tracer: every method no-ops (or returns a nil *Span, whose
// methods also no-op), so call sites need exactly one nil check — the
// one the method itself performs.
type Tracer struct {
	service  string
	slow     time.Duration
	recent   ring
	captured ring
	pool     sync.Pool // *Span
	// idState seeds span/trace id generation: a splitmix64 walk from a
	// crypto/rand origin. Lock-free and allocation-free.
	idState atomic.Uint64
	// spans and captures are cumulative telemetry for the debug surface.
	spans    atomic.Uint64
	captures atomic.Uint64
}

// New returns an enabled tracer.
func New(cfg Config) *Tracer {
	if cfg.RingSize <= 0 {
		cfg.RingSize = 2048
	}
	if cfg.CaptureSize <= 0 {
		cfg.CaptureSize = 512
	}
	if cfg.SlowThreshold <= 0 {
		cfg.SlowThreshold = 250 * time.Millisecond
	}
	t := &Tracer{service: cfg.Service, slow: cfg.SlowThreshold}
	t.recent.slots = make([]record, cfg.RingSize)
	t.captured.slots = make([]record, cfg.CaptureSize)
	var seed [8]byte
	_, _ = cryptorand.Read(seed[:])
	t.idState.Store(binary.LittleEndian.Uint64(seed[:]))
	t.pool.New = func() any { return new(Span) }
	return t
}

// Service returns the tier name ("" on a nil tracer).
func (t *Tracer) Service() string {
	if t == nil {
		return ""
	}
	return t.service
}

// nextID draws one nonzero 64-bit id (splitmix64 over the seeded
// counter — no locks, no allocation).
func (t *Tracer) nextID() uint64 {
	x := t.idState.Add(0x9E3779B97F4A7C15)
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	if x == 0 {
		x = 1
	}
	return x
}

func (t *Tracer) newTraceID() TraceID {
	var id TraceID
	binary.BigEndian.PutUint64(id[:8], t.nextID())
	binary.BigEndian.PutUint64(id[8:], t.nextID())
	return id
}

func (t *Tracer) newSpanID() SpanID {
	var id SpanID
	binary.BigEndian.PutUint64(id[:], t.nextID())
	return id
}

// Span is one operation within a trace. The zero value and nil are
// inert: every method on a nil *Span is a no-op, which is what lets a
// disabled tracer hand out nil spans through untouched call sites. A
// span must not be used after End (finished spans are pooled).
type Span struct {
	t   *Tracer
	rec record
	// localRoot marks the process-entry span — the one whose End makes
	// this process's tail-sampling decision for the trace. True for
	// StartRoot and StartRemote spans, false for StartChild spans.
	localRoot bool
}

// start initializes a pooled span.
func (t *Tracer) start(name string, traceID TraceID, parent SpanID, localRoot bool) *Span {
	s := t.pool.Get().(*Span)
	s.t = t
	s.rec = record{
		traceID: traceID,
		spanID:  t.newSpanID(),
		parent:  parent,
		name:    name,
		start:   time.Now(),
	}
	s.localRoot = localRoot
	return s
}

// StartRoot begins a new trace with one root span. Returns nil on a
// nil tracer.
func (t *Tracer) StartRoot(name string) *Span {
	if t == nil {
		return nil
	}
	return t.start(name, t.newTraceID(), SpanID{}, true)
}

// StartRemote continues an incoming trace: a local root span under a
// parent that lives in another process (the traceparent the caller
// sent). Returns nil on a nil tracer.
func (t *Tracer) StartRemote(name string, traceID TraceID, parent SpanID) *Span {
	if t == nil {
		return nil
	}
	return t.start(name, traceID, parent, true)
}

// StartChild begins a child span of s. Returns nil on a nil span, so
// disabled tracing threads through call sites unchanged.
func (s *Span) StartChild(name string) *Span {
	if s == nil {
		return nil
	}
	return s.t.start(name, s.rec.traceID, s.rec.spanID, false)
}

// TraceID returns the span's trace id (zero on nil).
func (s *Span) TraceID() TraceID {
	if s == nil {
		return TraceID{}
	}
	return s.rec.traceID
}

// SpanID returns the span's own id (zero on nil).
func (s *Span) SpanID() SpanID {
	if s == nil {
		return SpanID{}
	}
	return s.rec.spanID
}

// TraceIDString returns the hex trace id, or "" on a nil span — the
// form metrics.Histogram.ObserveExemplar accepts directly.
func (s *Span) TraceIDString() string {
	if s == nil {
		return ""
	}
	return s.rec.traceID.String()
}

// SetAttr attaches one key=value attribute. Attributes beyond the
// fixed inline capacity are dropped.
func (s *Span) SetAttr(key, value string) {
	if s == nil || s.rec.nattrs >= maxAttrs {
		return
	}
	s.rec.attrs[s.rec.nattrs] = attr{key: key, value: value}
	s.rec.nattrs++
}

// SetStatus records the span's terminal HTTP-ish status code.
func (s *Span) SetStatus(code int) {
	if s == nil {
		return
	}
	s.rec.status = code
}

// SetOutcome classifies a non-2xx ending ("error", "shed", "failover",
// "unroutable"). A non-empty outcome on a local root span forces the
// trace into the captured tier regardless of latency or status.
func (s *Span) SetOutcome(outcome string) {
	if s == nil {
		return
	}
	s.rec.outcome = outcome
}

// AddEvent records a point-in-time event on the span (the trace-side
// half of an `event=` log line). Events beyond the fixed inline
// capacity are dropped.
func (s *Span) AddEvent(name string) {
	if s == nil || s.rec.nevents >= maxEvents {
		return
	}
	s.rec.events[s.rec.nevents] = spanEvent{name: name, at: time.Since(s.rec.start)}
	s.rec.nevents++
}

// End completes the span: the record is copied into the recent ring
// and, when this local root's trace qualifies (slow, 5xx, or non-empty
// outcome), the whole trace is copied into the captured ring. End is
// allocation-free; the *Span is recycled and must not be used again.
func (s *Span) End() {
	if s == nil {
		return
	}
	t := s.t
	s.rec.dur = time.Since(s.rec.start)
	t.recent.put(&s.rec)
	t.spans.Add(1)
	if s.localRoot && (s.rec.dur >= t.slow || s.rec.status >= 500 || s.rec.outcome != "") {
		t.capture(s.rec.traceID)
	}
	*s = Span{}
	t.pool.Put(s)
}

// capture copies every recent-ring record of the trace into the
// captured ring, oldest first. Both rings are fixed-size, so capture
// moves structs between pre-allocated slots — no allocation.
func (t *Tracer) capture(id TraceID) {
	t.captures.Add(1)
	t.recent.mu.Lock()
	defer t.recent.mu.Unlock()
	n := t.recent.next
	span := uint64(len(t.recent.slots))
	start := uint64(0)
	if n > span {
		start = n - span
	}
	for i := start; i < n; i++ {
		rec := &t.recent.slots[i%span]
		if rec.traceID == id {
			t.captured.put(rec)
		}
	}
}

// Attr is one span attribute in the JSON export.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// Event is one span event in the JSON export.
type Event struct {
	Name string `json:"name"`
	// OffsetUS is the event time as microseconds after span start.
	OffsetUS int64 `json:"offset_us"`
}

// SpanJSON is one exported span record (GET /debug/trace).
type SpanJSON struct {
	TraceID    string    `json:"trace_id"`
	SpanID     string    `json:"span_id"`
	ParentID   string    `json:"parent_id,omitempty"`
	Name       string    `json:"name"`
	Service    string    `json:"service"`
	Start      time.Time `json:"start"`
	DurationUS int64     `json:"duration_us"`
	Status     int       `json:"status,omitempty"`
	Outcome    string    `json:"outcome,omitempty"`
	Attrs      []Attr    `json:"attrs,omitempty"`
	Events     []Event   `json:"events,omitempty"`
}

// Snapshot is the full debug export: recent and captured spans plus
// cumulative telemetry. Exemplars, when present, is the serving-tier
// histogram→exemplar table the caller merged in (see DebugHandler).
type Snapshot struct {
	Service       string     `json:"service"`
	SpansRecorded uint64     `json:"spans_recorded"`
	Captures      uint64     `json:"captures"`
	Recent        []SpanJSON `json:"recent"`
	Captured      []SpanJSON `json:"captured"`
	Exemplars     any        `json:"exemplars,omitempty"`
}

func (t *Tracer) export(rec *record) SpanJSON {
	out := SpanJSON{
		TraceID:    rec.traceID.String(),
		SpanID:     rec.spanID.String(),
		Name:       rec.name,
		Service:    t.service,
		Start:      rec.start,
		DurationUS: rec.dur.Microseconds(),
		Status:     rec.status,
		Outcome:    rec.outcome,
	}
	if !rec.parent.IsZero() {
		out.ParentID = rec.parent.String()
	}
	for i := 0; i < rec.nattrs; i++ {
		out.Attrs = append(out.Attrs, Attr{Key: rec.attrs[i].key, Value: rec.attrs[i].value})
	}
	for i := 0; i < rec.nevents; i++ {
		out.Events = append(out.Events, Event{Name: rec.events[i].name, OffsetUS: rec.events[i].at.Microseconds()})
	}
	return out
}

// Snapshot exports both rings, oldest spans first. Safe on a nil
// tracer (empty snapshot).
func (t *Tracer) Snapshot() Snapshot {
	if t == nil {
		return Snapshot{}
	}
	snap := Snapshot{
		Service:       t.service,
		SpansRecorded: t.spans.Load(),
		Captures:      t.captures.Load(),
	}
	for _, rec := range t.recent.appendSnapshot(nil) {
		snap.Recent = append(snap.Recent, t.export(&rec))
	}
	for _, rec := range t.captured.appendSnapshot(nil) {
		snap.Captured = append(snap.Captured, t.export(&rec))
	}
	return snap
}
