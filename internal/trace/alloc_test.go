package trace

import (
	"testing"
	"time"

	"repro/internal/safety"
)

// TestSpanEndAllocBudget pins the enabled hot path: ending a span is a
// struct copy into a pre-allocated ring slot plus a pool put — zero
// allocations, even when the root qualifies for tail capture (capture
// moves records between fixed rings).
func TestSpanEndAllocBudget(t *testing.T) {
	tr := New(Config{SlowThreshold: time.Hour})
	safety.MaxAllocs(t, 200, 0, func() {
		s := tr.StartRoot("bench")
		s.SetStatus(200)
		s.End()
	})
	safety.MaxAllocs(t, 200, 0, func() {
		s := tr.StartRoot("bench")
		s.SetStatus(503) // forces capture of the whole trace
		s.End()
	})
}

// TestChildSpanAllocBudget pins the full start/attr/end cycle for a
// child span under a live root.
func TestChildSpanAllocBudget(t *testing.T) {
	tr := New(Config{SlowThreshold: time.Hour})
	root := tr.StartRoot("root")
	defer root.End()
	safety.MaxAllocs(t, 200, 0, func() {
		c := root.StartChild("attempt")
		c.SetAttr("backend", "b1")
		c.End()
	})
}

// TestDisabledTracerAllocBudget pins the nil-tracer path at zero: every
// call site threads through untouched.
func TestDisabledTracerAllocBudget(t *testing.T) {
	var tr *Tracer
	safety.MaxAllocs(t, 200, 0, func() {
		s := tr.StartRoot("off")
		c := s.StartChild("child")
		c.SetAttr("k", "v")
		c.End()
		s.SetStatus(200)
		s.End()
	})
}
