// logf.go is the structured-log funnel: every `event=` state-
// transition line in the fleet goes through Eventf (no request in
// flight) or SpanEventf (request-scoped), so the one-line key=value
// convention — and its trace correlation — lives in one place.
package trace

import (
	"context"
	"fmt"
	"strings"
)

// Eventf emits one structured `event=` log line through logf. It is
// the non-request-scoped form (breaker transitions, replica health
// edges, WAL poisoning): no span, no correlation ids. A nil logf
// discards the line.
func Eventf(logf func(format string, args ...any), format string, args ...any) {
	if logf == nil {
		return
	}
	logf(format, args...)
}

// SpanEventf emits one structured `event=` log line correlated with
// the span carried by ctx: " trace_id=<id> span_id=<id>" is appended
// to the line, and the line's event= token is recorded as a span
// event, so the log references the trace and the trace references the
// log. With no span in ctx it degrades to Eventf.
func SpanEventf(ctx context.Context, logf func(format string, args ...any), format string, args ...any) {
	s := FromContext(ctx)
	if s == nil {
		Eventf(logf, format, args...)
		return
	}
	msg := fmt.Sprintf(format, args...)
	s.AddEvent(eventToken(msg))
	Eventf(logf, "%s trace_id=%s span_id=%s", msg, s.rec.traceID.String(), s.rec.spanID.String())
}

// eventToken extracts the value of the line's event= key ("" when the
// line carries none).
func eventToken(msg string) string {
	i := strings.Index(msg, "event=")
	if i < 0 {
		return ""
	}
	rest := msg[i+len("event="):]
	if j := strings.IndexByte(rest, ' '); j >= 0 {
		rest = rest[:j]
	}
	return rest
}
