package trace

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestIDGeneration(t *testing.T) {
	tr := New(Config{Service: "test"})
	seen := make(map[TraceID]bool)
	for i := 0; i < 1000; i++ {
		id := tr.newTraceID()
		if id.IsZero() {
			t.Fatal("generated the zero trace id")
		}
		if seen[id] {
			t.Fatalf("duplicate trace id %s after %d draws", id, i)
		}
		seen[id] = true
	}
	if len(tr.newTraceID().String()) != 32 || len(tr.newSpanID().String()) != 16 {
		t.Fatal("hex renderings have the wrong width")
	}
}

func TestTraceparentRoundTrip(t *testing.T) {
	tr := New(Config{})
	s := tr.StartRoot("root")
	hdr := s.Traceparent()
	if len(hdr) != headerLen || !strings.HasPrefix(hdr, "00-") || !strings.HasSuffix(hdr, "-01") {
		t.Fatalf("traceparent %q has the wrong shape", hdr)
	}
	traceID, spanID, ok := ParseTraceparent(hdr)
	if !ok {
		t.Fatalf("own header %q did not parse", hdr)
	}
	if traceID != s.TraceID() || spanID != s.SpanID() {
		t.Fatalf("round trip changed ids: %s/%s vs %s/%s", traceID, spanID, s.TraceID(), s.SpanID())
	}
	s.End()
}

func TestTraceparentRejectsMalformed(t *testing.T) {
	bad := []string{
		"",
		"00-short",
		"01-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01",       // unknown version
		"00-00000000000000000000000000000000-b7ad6b7169203331-01",       // zero trace id
		"00-0af7651916cd43dd8448eb211c80319c-0000000000000000-01",       // zero span id
		"00-0af7651916cd43dd8448eb211c80319X-b7ad6b7169203331-01",       // non-hex
		"00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-zz",       // non-hex flags
		"00x0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01",       // bad separator
		"00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01-extra", // too long
		strings.Repeat("0", headerLen),                                  // right length, all-zero ids
	}
	for _, h := range bad {
		if _, _, ok := ParseTraceparent(h); ok {
			t.Errorf("ParseTraceparent(%q) accepted a malformed header", h)
		}
	}
	if _, _, ok := ParseTraceparent("00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-00"); !ok {
		t.Error("unsampled flags byte rejected; any flags should be accepted")
	}
}

func TestNilTracerAndSpanAreNoOps(t *testing.T) {
	var tr *Tracer
	if tr.Service() != "" {
		t.Fatal("nil tracer has a service")
	}
	s := tr.StartRoot("root")
	if s != nil {
		t.Fatal("nil tracer returned a live span")
	}
	// Every span method must be callable on nil.
	s.SetAttr("k", "v")
	s.SetStatus(500)
	s.SetOutcome("error")
	s.AddEvent("e")
	if c := s.StartChild("child"); c != nil {
		t.Fatal("nil span returned a live child")
	}
	if s.TraceIDString() != "" || s.Traceparent() != "" {
		t.Fatal("nil span renders ids")
	}
	s.End()
	ctx := ContextWith(context.Background(), nil)
	if FromContext(ctx) != nil {
		t.Fatal("nil span stored in context")
	}
	if CtxTraceID(ctx) != "" {
		t.Fatal("nil context carries a trace id")
	}
	snap := tr.Snapshot()
	if len(snap.Recent) != 0 || len(snap.Captured) != 0 {
		t.Fatal("nil tracer has spans")
	}
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {})
	if got := tr.Middleware(h); fmt.Sprintf("%p", got) != fmt.Sprintf("%p", h) {
		t.Fatal("nil tracer's Middleware wrapped the handler")
	}
}

func TestSpanTreeAndRecentRing(t *testing.T) {
	tr := New(Config{Service: "unit", SlowThreshold: time.Hour})
	root := tr.StartRoot("root")
	child := root.StartChild("child")
	if child.TraceID() != root.TraceID() {
		t.Fatal("child is in a different trace")
	}
	child.SetAttr("backend", "b1")
	child.AddEvent("retry")
	child.SetStatus(200)
	child.End()
	root.SetStatus(200)
	root.End()

	snap := tr.Snapshot()
	if len(snap.Recent) != 2 {
		t.Fatalf("recent holds %d spans, want 2", len(snap.Recent))
	}
	if len(snap.Captured) != 0 {
		t.Fatal("a fast, healthy trace was captured")
	}
	c, r := snap.Recent[0], snap.Recent[1]
	if c.Name != "child" || r.Name != "root" {
		t.Fatalf("span order %q, %q; want child then root (end order)", c.Name, r.Name)
	}
	if c.ParentID != r.SpanID || r.ParentID != "" {
		t.Fatalf("parent links wrong: child.parent=%q root.span=%q root.parent=%q", c.ParentID, r.SpanID, r.ParentID)
	}
	if c.Service != "unit" || len(c.Attrs) != 1 || c.Attrs[0].Key != "backend" || len(c.Events) != 1 {
		t.Fatalf("child export lost detail: %+v", c)
	}
}

func TestRingOverwritesWithoutGrowth(t *testing.T) {
	tr := New(Config{RingSize: 8, CaptureSize: 4, SlowThreshold: time.Hour})
	for i := 0; i < 100; i++ {
		s := tr.StartRoot("s")
		s.SetStatus(200)
		s.End()
	}
	snap := tr.Snapshot()
	if len(snap.Recent) != 8 {
		t.Fatalf("recent holds %d spans, ring size is 8", len(snap.Recent))
	}
	if snap.SpansRecorded != 100 {
		t.Fatalf("recorded %d spans, want 100", snap.SpansRecorded)
	}
}

func TestTailSamplingCapturesSlowAndErrorTraces(t *testing.T) {
	tr := New(Config{SlowThreshold: time.Hour})

	// 5xx root: captured with its children.
	root := tr.StartRoot("err")
	child := root.StartChild("attempt")
	child.SetOutcome("error")
	child.End()
	root.SetStatus(503)
	root.End()

	// Healthy root: not captured.
	okRoot := tr.StartRoot("ok")
	okRoot.SetStatus(200)
	okRoot.End()

	// Outcome-marked root (failover with a 200): captured.
	fo := tr.StartRoot("failover")
	fo.SetStatus(200)
	fo.SetOutcome("failover")
	fo.End()

	snap := tr.Snapshot()
	byTrace := make(map[string]int)
	for _, s := range snap.Captured {
		byTrace[s.TraceID]++
	}
	if len(byTrace) != 2 {
		t.Fatalf("captured %d traces (%v), want the 5xx and failover traces only", len(byTrace), byTrace)
	}
	if byTrace[snap.Captured[0].TraceID] == 0 {
		t.Fatal("empty capture")
	}
	// The 5xx trace must carry both its spans.
	found := false
	for id, n := range byTrace {
		if n == 2 {
			found = true
			for _, s := range snap.Captured {
				if s.TraceID == id && s.Name == "attempt" && s.Outcome != "error" {
					t.Fatal("captured child lost its outcome")
				}
			}
		}
	}
	if !found {
		t.Fatal("the 5xx trace was captured without its child span")
	}
}

func TestSlowThresholdCapture(t *testing.T) {
	tr := New(Config{SlowThreshold: time.Nanosecond})
	s := tr.StartRoot("slow")
	time.Sleep(time.Millisecond)
	s.SetStatus(200)
	s.End()
	if snap := tr.Snapshot(); len(snap.Captured) != 1 {
		t.Fatalf("slow trace not captured: %d captured spans", len(snap.Captured))
	}
}

func TestMiddlewareContinuesIncomingTrace(t *testing.T) {
	tr := New(Config{Service: "replica", SlowThreshold: time.Hour})
	var inner *Span
	h := tr.Middleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		inner = FromContext(r.Context())
		w.WriteHeader(http.StatusOK)
	}))

	upstream := New(Config{Service: "gateway"})
	parent := upstream.StartRoot("gateway.request")
	req := httptest.NewRequest(http.MethodGet, "/models", nil)
	Inject(parent, req.Header)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)

	if inner == nil {
		t.Fatal("no span in handler context")
	}
	snap := tr.Snapshot()
	if len(snap.Recent) != 1 {
		t.Fatalf("server recorded %d spans, want 1", len(snap.Recent))
	}
	got := snap.Recent[0]
	if got.TraceID != parent.TraceID().String() {
		t.Fatalf("server span trace %s, want the gateway's %s", got.TraceID, parent.TraceID())
	}
	if got.ParentID != parent.SpanID().String() {
		t.Fatalf("server span parent %s, want the gateway span %s", got.ParentID, parent.SpanID())
	}
	if got.Status != http.StatusOK || got.Name != "GET /models" {
		t.Fatalf("server span %+v", got)
	}
	parent.End()

	// Without a traceparent a fresh trace starts.
	rec2 := httptest.NewRecorder()
	h.ServeHTTP(rec2, httptest.NewRequest(http.MethodGet, "/models", nil))
	snap = tr.Snapshot()
	if last := snap.Recent[len(snap.Recent)-1]; last.ParentID != "" || last.TraceID == got.TraceID {
		t.Fatalf("fresh request did not start a fresh root: %+v", last)
	}
}

func TestMiddlewareCapturesServerError(t *testing.T) {
	tr := New(Config{Service: "replica", SlowThreshold: time.Hour})
	h := tr.Middleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/models", nil))
	snap := tr.Snapshot()
	if len(snap.Captured) != 1 || snap.Captured[0].Status != 500 || snap.Captured[0].Outcome != "error" {
		t.Fatalf("5xx response not captured as an error trace: %+v", snap.Captured)
	}
}

func TestDebugHandlerJSONAndFilter(t *testing.T) {
	tr := New(Config{Service: "unit", SlowThreshold: time.Hour})
	a := tr.StartRoot("a")
	a.End()
	b := tr.StartRoot("b")
	bID := b.TraceIDString()
	b.End()

	h := tr.DebugHandler(func() any { return map[string]string{"sage_x_seconds": "deadbeef"} })
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/trace", nil))
	var snap Snapshot
	dec := json.NewDecoder(rec.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&snap); err != nil {
		t.Fatalf("debug payload is not strict-decodable: %v", err)
	}
	if snap.Service != "unit" || len(snap.Recent) != 2 || snap.Exemplars == nil {
		t.Fatalf("debug payload wrong: %+v", snap)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/trace?trace="+bID, nil))
	if err := json.NewDecoder(rec.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if len(snap.Recent) != 1 || snap.Recent[0].Name != "b" {
		t.Fatalf("?trace= filter returned %+v", snap.Recent)
	}
}

func TestEventfAndSpanEventf(t *testing.T) {
	var lines []string
	logf := func(format string, args ...any) { lines = append(lines, fmt.Sprintf(format, args...)) }

	Eventf(logf, "wal: event=log_poisoned log=%s", "a.wal")
	Eventf(nil, "discarded %d", 1) // must not panic
	if len(lines) != 1 || lines[0] != "wal: event=log_poisoned log=a.wal" {
		t.Fatalf("Eventf lines: %q", lines)
	}

	tr := New(Config{SlowThreshold: time.Hour})
	s := tr.StartRoot("root")
	ctx := ContextWith(context.Background(), s)
	SpanEventf(ctx, logf, "gateway: event=failover backend=%s", "b1")
	want := fmt.Sprintf("gateway: event=failover backend=b1 trace_id=%s span_id=%s",
		s.TraceID(), s.SpanID())
	if lines[1] != want {
		t.Fatalf("SpanEventf line:\n got %q\nwant %q", lines[1], want)
	}
	s.End()
	if snap := tr.Snapshot(); len(snap.Recent[0].Events) != 1 || snap.Recent[0].Events[0].Name != "failover" {
		t.Fatalf("event not recorded on span: %+v", snap.Recent[0].Events)
	}

	// No span in context: degrades to Eventf, no correlation suffix.
	SpanEventf(context.Background(), logf, "daemon: event=x")
	if lines[2] != "daemon: event=x" {
		t.Fatalf("span-less SpanEventf line: %q", lines[2])
	}
}

func TestEventToken(t *testing.T) {
	cases := map[string]string{
		"gateway: event=breaker backend=x": "breaker",
		"event=solo":                       "solo",
		"no token here":                    "",
	}
	for in, want := range cases {
		if got := eventToken(in); got != want {
			t.Errorf("eventToken(%q) = %q, want %q", in, got, want)
		}
	}
}
