//go:build !race

package safety

// RaceEnabled reports whether the binary was built with the race
// detector, which inflates allocation counts.
const RaceEnabled = false
