package safety

import (
	"fmt"
	"testing"
)

// recordTB captures failures and skips instead of reporting them, so
// the tests can assert on MaxAllocs's verdicts.
type recordTB struct {
	testing.TB
	failed  bool
	skipped bool
	msg     string
}

func (r *recordTB) Helper() {}
func (r *recordTB) Errorf(format string, args ...any) {
	r.failed = true
	r.msg = fmt.Sprintf(format, args...)
}
func (r *recordTB) Skip(args ...any) { r.skipped = true }

func TestMaxAllocsWithinBudgetPasses(t *testing.T) {
	if RaceEnabled {
		t.Skip("verdicts are skipped under -race by design")
	}
	var sink int
	rec := &recordTB{}
	got := MaxAllocs(rec, 100, 0, func() { sink++ })
	if rec.failed {
		t.Errorf("non-allocating func failed a 0 budget: %s", rec.msg)
	}
	if got != 0 {
		t.Errorf("measured %.1f allocs for a non-allocating func", got)
	}
	_ = sink
}

func TestMaxAllocsOverBudgetFails(t *testing.T) {
	if RaceEnabled {
		t.Skip("verdicts are skipped under -race by design")
	}
	var sink []byte
	rec := &recordTB{}
	got := MaxAllocs(rec, 100, 0, func() { sink = make([]byte, 1<<12) })
	if !rec.failed {
		t.Errorf("allocating func (%.1f allocs/run) passed a 0 budget", got)
	}
	if got < 1 {
		t.Errorf("measured %.1f allocs for an allocating func", got)
	}
	_ = sink
}

func TestMaxAllocsSkipsUnderRace(t *testing.T) {
	if !RaceEnabled {
		t.Skip("only meaningful under -race")
	}
	rec := &recordTB{}
	MaxAllocs(rec, 1, 0, func() {})
	if !rec.skipped {
		t.Error("MaxAllocs did not skip under the race detector")
	}
}
