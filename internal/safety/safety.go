// Package safety pins resource-safety properties as ordinary tests.
//
// The first property covered is allocation budgets: hot paths whose
// performance rests on *not* allocating (an encode cache hit, a pooled
// batch decode) regress silently under plain correctness tests — the
// output is identical, only the garbage differs. MaxAllocs turns the
// measured allocations-per-operation into a test failure, so undoing a
// pooling or caching optimization fails `go test` instead of waiting
// for a benchmark run to be eyeballed.
//
// Budgets should be set with headroom above the measured steady state
// (runtime and encoding/json internals shift a little between Go
// releases) but far below the unoptimized number, so the test is quiet
// across toolchain bumps yet loud when the optimization is lost.
package safety

import "testing"

// MaxAllocs measures f's steady-state heap allocations per run with
// testing.AllocsPerRun and fails tb when they exceed budget. It
// returns the measured value so callers can log it.
//
// Under the race detector allocation counts are inflated by
// instrumentation, so the check is skipped rather than pinned to
// numbers that only hold without -race.
func MaxAllocs(tb testing.TB, runs int, budget float64, f func()) float64 {
	tb.Helper()
	if RaceEnabled {
		tb.Skip("allocation counts are not stable under the race detector")
	}
	got := testing.AllocsPerRun(runs, f)
	if got > budget {
		tb.Errorf("allocations per run = %.1f, budget is %.1f: a zero/low-alloc fast path has regressed", got, budget)
	}
	return got
}
