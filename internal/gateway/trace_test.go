package gateway

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/faulty"
	"repro/internal/trace"
)

// scrapeTraces fetches the gateway's own /debug/trace (served locally
// when tracing is on, like /metrics) and strict-decodes the export.
func scrapeTraces(t *testing.T, base string) trace.Snapshot {
	t.Helper()
	resp, err := http.Get(base + "/debug/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /debug/trace: HTTP %d", resp.StatusCode)
	}
	dec := json.NewDecoder(resp.Body)
	dec.DisallowUnknownFields()
	var snap trace.Snapshot
	if err := dec.Decode(&snap); err != nil {
		t.Fatalf("gateway /debug/trace does not strict-decode: %v", err)
	}
	return snap
}

// capturedByOutcome returns the root spans of captured traces whose
// outcome matches, plus a trace-id → spans index over the capture ring.
func capturedByOutcome(snap trace.Snapshot, outcome string) (roots []trace.SpanJSON, byTrace map[string][]trace.SpanJSON) {
	byTrace = make(map[string][]trace.SpanJSON)
	for _, sp := range snap.Captured {
		byTrace[sp.TraceID] = append(byTrace[sp.TraceID], sp)
	}
	for _, sp := range snap.Captured {
		if sp.ParentID == "" && sp.Outcome == outcome {
			roots = append(roots, sp)
		}
	}
	return roots, byTrace
}

// TestGatewayTraceCapturesFailover is the chaos half of the tracing
// acceptance: with one replica resetting connections, a request that
// fails over must surface as ONE captured trace — the gateway root span
// (outcome=failover despite the 200) with two gateway.attempt children
// under it, the first marked error, the second clean. That tree is the
// debugging artifact the PR promises: "which backend failed, and where
// the retry went" without grepping logs.
func TestGatewayTraceCapturesFailover(t *testing.T) {
	f := newFleet(t, 2, 1)
	tracer := trace.New(trace.Config{Service: "gateway"})
	g := f.gw(t, func(c *Config) { c.Tracer = tracer })
	gsrv := httptest.NewServer(g.Handler())
	defer gsrv.Close()

	f.injs[0].Set(faulty.Rule{Mode: faulty.Reset})

	// Round-robin tie-breaking alternates the first-choice backend, so
	// within a few sequential requests one lands on the resetting
	// replica first and fails over (well before its breaker opens at 3).
	client := &http.Client{Timeout: 5 * time.Second}
	var roots []trace.SpanJSON
	var byTrace map[string][]trace.SpanJSON
	for i := 0; i < 8; i++ {
		code, body, err := doReq(t, client, http.MethodGet, gsrv.URL+"/models", "")
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		if code != http.StatusOK {
			t.Fatalf("request %d: HTTP %d %s — failover must hide a single replica reset", i, code, body)
		}
		roots, byTrace = capturedByOutcome(scrapeTraces(t, gsrv.URL), "failover")
		if len(roots) > 0 {
			break
		}
	}
	if len(roots) == 0 {
		t.Fatal("no captured trace with outcome=failover after 8 requests against a resetting replica")
	}

	root := roots[0]
	if root.Name != "GET /models" || root.Service != "gateway" {
		t.Fatalf("failover root span is %q [%s], want \"GET /models\" [gateway]", root.Name, root.Service)
	}
	if root.Status != http.StatusOK {
		t.Fatalf("failover root status %d: the client saw a 200, the trace must agree", root.Status)
	}
	var failed, clean int
	for _, sp := range byTrace[root.TraceID] {
		if sp.ParentID != root.SpanID {
			continue
		}
		if sp.Name != "gateway.attempt" {
			t.Fatalf("unexpected child span %q under the failover root", sp.Name)
		}
		if sp.Outcome == "error" {
			failed++
		} else {
			clean++
		}
	}
	if failed != 1 || clean != 1 {
		t.Fatalf("failover trace has %d failed / %d clean attempt spans, want exactly 1 / 1:\n%+v",
			failed, clean, byTrace[root.TraceID])
	}
}

// TestGatewayTraceCapturesShed: a request refused by admission control
// never reaches a backend, but it still must leave a captured trace —
// root span with status 503, outcome=shed, and no attempt children —
// so shed storms are attributable per class after the fact.
func TestGatewayTraceCapturesShed(t *testing.T) {
	f := newFleet(t, 1, 1)
	tracer := trace.New(trace.Config{Service: "gateway"})
	g := f.gw(t, func(c *Config) {
		c.Tracer = tracer
		c.Limits = Limits{Read: 1, Predict: 1, Batch: 1}
	})
	gsrv := httptest.NewServer(g.Handler())
	defer gsrv.Close()

	// Pin the one batch slot directly (white-box: the test lives in the
	// package) — exactly the state a hung in-flight batch request leaves
	// behind, without racing a real request through the injector.
	release, ok := g.adm.admit(ClassBatch)
	if !ok {
		t.Fatal("admitting into an idle gateway failed")
	}
	defer release()

	client := &http.Client{Timeout: 5 * time.Second}
	code, body, err := doReq(t, client, http.MethodPost, gsrv.URL+"/predict/batch?model=m", batchBody)
	if err != nil {
		t.Fatal(err)
	}
	if code != http.StatusServiceUnavailable {
		t.Fatalf("batch request with the slot pinned: HTTP %d %s, want a 503 shed", code, body)
	}

	roots, byTrace := capturedByOutcome(scrapeTraces(t, gsrv.URL), "shed")
	if len(roots) == 0 {
		t.Fatal("shed 503 left no captured trace with outcome=shed")
	}
	root := roots[0]
	if root.Status != http.StatusServiceUnavailable {
		t.Fatalf("shed root status %d, want 503", root.Status)
	}
	for _, sp := range byTrace[root.TraceID] {
		if sp.ParentID == root.SpanID {
			t.Fatalf("shed trace has child span %q: a refused request must never reach a backend", sp.Name)
		}
	}
}
