// Package gateway is Sage's fault-tolerant routing tier: one HTTP front
// door over N serving replicas that turns "some replicas exist" into "a
// fleet that keeps answering". The design is resilience against an
// explicit fault model — the same one internal/faulty injects and the
// chaos tests verify — rather than assumed good behavior.
//
// # Fault model
//
//   - crash: a replica's connections are refused or reset. The failed
//     request fails over to another replica (one retry, different
//     backend), the replica's circuit breaker opens after a run of
//     consecutive failures, and active health probes keep it out of
//     rotation until it answers again.
//   - stall: a replica accepts connections and never answers. Every
//     proxied attempt carries a deadline (and propagates the client's
//     context cancellation), so a stall costs one bounded attempt, not
//     a pinned goroutine; the timeout counts as a breaker failure.
//   - error: a replica answers 5xx. Failover and breaker accounting
//     treat it like a transport failure; the second backend's reply is
//     served either way.
//   - partial response: a replica delivers fewer bytes than it
//     advertised. The gateway buffers each upstream response and
//     verifies it is complete *before* forwarding a single byte, so a
//     truncated upstream read fails over instead of truncating the
//     client — the canonical-bytes invariant (every replica's reads are
//     byte-identical to the primary) survives failover.
//   - lag: a live replica that missed pushes would serve *stale* bytes,
//     which is a silent canonical-bytes violation. Health probes read
//     each replica's applied-version watermarks (GET /replica/status)
//     and a backend trailing the fleet's newest watermark is drained —
//     kept out of routing but probed until it catches up, then returned
//     to rotation. Drained ≠ dead: no breaker opens, no state is lost.
//
// # Circuit breaker state machine
//
// Each backend carries its own Breaker (breaker.go):
//
//	closed ──(FailThreshold consecutive failures)──▶ open
//	open ──(Cooldown elapses)──▶ half-open, admitting ONE probe request
//	half-open ──(probe succeeds)──▶ closed
//	half-open ──(probe fails)──▶ open, for a fresh cooldown
//
// A success in the closed state resets the consecutive-failure count,
// so a breaker trips on a *run* of failures, not an accumulated total.
// Breakers are fed by request truth (transport errors, per-attempt
// deadline timeouts, 5xx replies); health probes are a second,
// independent detector. If a stale probe view marks every backend
// unroutable, routing falls back to breaker-only judgment — a fleet is
// never 503'd into silence by its own health checker.
//
// # Routing
//
// Routing is least-loaded (gateway-side in-flight count per backend,
// round-robin among ties), which also implements slow-start avoidance:
// a stalling-but-not-yet-tripped backend accumulates in-flight requests
// and naturally stops attracting new ones. A failed attempt is retried
// exactly once, on a different backend.
//
// # Shed-before-collapse admission
//
// Overload gets the same design-for-failure treatment (admission.go):
// a bounded in-flight semaphore per route class (read / predict /
// batch) refuses excess load with an immediate 503 + Retry-After
// instead of queueing toward collapse. Above a global soft threshold
// (¾ of total capacity) new batch work — the most expensive thing the
// serving tier does — is shed even when its own class has room, so the
// remaining capacity keeps serving cheap immutable reads and single
// predictions. An overloaded gateway degrades into a read-mostly
// cache; it does not fall over.
//
// # What the gateway refuses
//
// POST /push is refused outright: replica membership and bundle
// fan-out belong to the publisher (which pushes to each replica
// directly and heals gaps); load-balancing a mutation across the fleet
// would apply it to one replica and desynchronize the tier.
//
// GET /gateway/status reports per-backend health, breaker state,
// watermarks, and shed/retry counters for operators and tests.
package gateway
