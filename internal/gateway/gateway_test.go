package gateway

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/faulty"
	"repro/internal/metrics"
	"repro/internal/ml"
	"repro/internal/replica"
	"repro/internal/store"
)

// fleet is the shared test fixture: a primary store with published
// releases, N replicas each behind its own fault injector (the
// "network"), all synced, plus the canonical byte truth from a direct
// primary server.
type fleet struct {
	src     *store.Store
	primary *httptest.Server
	reps    []*replica.Server
	injs    []*faulty.Injector
	srvs    []*httptest.Server
	urls    []string
}

// hourSpeeds is a fixed 24-entry serving-time join table.
func hourSpeeds() []float64 {
	out := make([]float64, 24)
	for i := range out {
		out[i] = 10 + float64(i)/2
	}
	return out
}

// newFleet publishes `versions` releases of model "m" and stands up n
// synced replicas behind injectors.
func newFleet(t testing.TB, n, versions int) *fleet {
	t.Helper()
	f := &fleet{src: store.New()}
	spec, err := store.Serialize(&ml.LinearModel{Weights: []float64{2, -1}, Bias: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	for v := 1; v <= versions; v++ {
		f.src.Publish(store.Bundle{
			Name:     "m",
			Model:    spec,
			Features: map[string][]float64{"hour_speed": hourSpeeds()},
			Provenance: store.Provenance{
				Pipeline: "m", Decision: "accept", Quality: float64(v),
			},
		})
	}
	f.primary = httptest.NewServer(store.NewServer(f.src).Handler())
	t.Cleanup(f.primary.Close)
	for i := 0; i < n; i++ {
		rep := replica.NewServer()
		inj := faulty.New(uint64(1000 + i))
		srv := httptest.NewServer(inj.Handler(rep.Handler()))
		t.Cleanup(srv.Close)
		f.reps = append(f.reps, rep)
		f.injs = append(f.injs, inj)
		f.srvs = append(f.srvs, srv)
		f.urls = append(f.urls, srv.URL)
	}
	if n > 0 {
		pub := replica.NewPublisher(f.src, f.urls)
		if err := pub.Sync(); err != nil {
			t.Fatalf("syncing fleet: %v", err)
		}
	}
	return f
}

// gw builds a gateway over the fleet with fast test timings.
func (f *fleet) gw(t testing.TB, mutate ...func(*Config)) *Gateway {
	t.Helper()
	cfg := Config{
		Backends:       f.urls,
		AttemptTimeout: 500 * time.Millisecond,
		HealthInterval: 20 * time.Millisecond,
		Breaker:        BreakerConfig{FailThreshold: 3, Cooldown: 250 * time.Millisecond},
		Limits:         Limits{Read: 512, Predict: 256, Batch: 64},
	}
	for _, m := range mutate {
		m(&cfg)
	}
	g, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// canonicalPaths are the read requests the byte-identity assertions
// cover, with the canonical body fetched from the primary.
var batchBody = `{"rows":[[1,0.5],[0.25,2]]}`

func canonicalPaths() []struct{ method, path, body string } {
	return []struct{ method, path, body string }{
		{http.MethodGet, "/models", ""},
		{http.MethodGet, "/models/m/provenance", ""},
		{http.MethodGet, "/features?model=m&key=hour_speed", ""},
		{http.MethodGet, "/features?model=m&key=hour_speed&index=8", ""},
		{http.MethodPost, "/predict/batch?model=m", batchBody},
	}
}

func doReq(t testing.TB, client *http.Client, method, url, body string) (int, []byte, error) {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = bytes.NewBufferString(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	if body != "" {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := client.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	return resp.StatusCode, raw, err
}

// canon fetches the canonical body from the primary (must be 200).
func (f *fleet) canon(t testing.TB, method, path, body string) []byte {
	t.Helper()
	code, raw, err := doReq(t, f.primary.Client(), method, f.primary.URL+path, body)
	if err != nil || code != http.StatusOK {
		t.Fatalf("canonical %s %s: %d %v %s", method, path, code, err, raw)
	}
	return raw
}

func TestClassify(t *testing.T) {
	cases := []struct {
		method, path string
		want         Class
	}{
		{http.MethodGet, "/models", ClassRead},
		{http.MethodGet, "/features?model=m&key=k", ClassRead},
		{http.MethodGet, "/models/m/provenance", ClassRead},
		{http.MethodPost, "/predict", ClassPredict},
		{http.MethodPost, "/predict?model=m", ClassPredict},
		{http.MethodPost, "/predict/batch", ClassBatch},
		{http.MethodPost, "/predict/batch?model=m", ClassBatch},
	}
	for _, c := range cases {
		r := httptest.NewRequest(c.method, c.path, nil)
		if got := Classify(r); got != c.want {
			t.Errorf("Classify(%s %s) = %v, want %v", c.method, c.path, got, c.want)
		}
	}
}

// TestBreakerStateMachine drives closed → open → half-open → closed and
// the half-open-failure → open edge with a fake clock.
func TestBreakerStateMachine(t *testing.T) {
	now := time.Unix(0, 0)
	b := NewBreaker(BreakerConfig{FailThreshold: 3, Cooldown: time.Minute})
	b.now = func() time.Time { return now }

	for i := 0; i < 3; i++ {
		if !b.Allow() {
			t.Fatalf("closed breaker refused request %d", i)
		}
		b.Record(false)
	}
	if b.State() != BreakerOpen {
		t.Fatalf("state after %d failures = %v, want open", 3, b.State())
	}
	if b.Allow() {
		t.Fatal("open breaker admitted a request before cooldown")
	}

	// A success between failures resets the consecutive count.
	b2 := NewBreaker(BreakerConfig{FailThreshold: 3, Cooldown: time.Minute})
	b2.Record(false)
	b2.Record(false)
	b2.Record(true)
	b2.Record(false)
	b2.Record(false)
	if b2.State() != BreakerClosed {
		t.Fatal("non-consecutive failures tripped the breaker")
	}

	// Cooldown elapses: exactly one half-open probe is admitted.
	now = now.Add(2 * time.Minute)
	if !b.Allow() {
		t.Fatal("cooldown elapsed but probe refused")
	}
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state during probe = %v, want half-open", b.State())
	}
	if b.Allow() {
		t.Fatal("second concurrent request admitted during half-open probe")
	}
	// Probe fails → open again for a fresh cooldown.
	b.Record(false)
	if b.State() != BreakerOpen {
		t.Fatalf("state after failed probe = %v, want open", b.State())
	}
	if b.Allow() {
		t.Fatal("breaker admitted a request right after a failed probe")
	}
	// Next cooldown, probe succeeds → closed.
	now = now.Add(2 * time.Minute)
	if !b.Allow() {
		t.Fatal("second probe refused")
	}
	b.Record(true)
	if b.State() != BreakerClosed {
		t.Fatalf("state after successful probe = %v, want closed", b.State())
	}
	if !b.Allow() {
		t.Fatal("re-closed breaker refused a request")
	}
}

// TestAdmissionShedOrdering pins the shed-before-collapse policy: batch
// is refused once the gateway is ¾ full even though its own class has
// room, while reads keep being admitted until their own bound.
func TestAdmissionShedOrdering(t *testing.T) {
	a := newAdmission(Limits{Read: 6, Predict: 2, Batch: 2}, metrics.New()) // global 10, soft 7
	var releases []func()
	acquire := func(c Class, wantOK bool) {
		t.Helper()
		rel, ok := a.admit(c)
		if ok != wantOK {
			t.Fatalf("admit(%v) = %v, want %v (global %d)", c, ok, wantOK, a.global.Load())
		}
		if ok {
			releases = append(releases, rel)
		}
	}

	// Below the soft threshold everything is admitted, up to each
	// class's own bound.
	acquire(ClassBatch, true)
	acquire(ClassBatch, true)
	acquire(ClassBatch, false) // class bound: batch is full at 2
	// Free one batch slot and climb to the soft threshold with cheap
	// classes: global reaches 7 (== batchSoft) with batch at 1/2.
	releases[0]()
	releases = releases[1:]
	for i := 0; i < 6; i++ {
		acquire(ClassRead, true)
	}
	// Batch has class room, but the gateway is ¾ full → shed batch
	// first...
	acquire(ClassBatch, false)
	// ...while cheap classes are still welcome until their own bounds.
	acquire(ClassPredict, true)
	acquire(ClassPredict, true)
	acquire(ClassRead, false) // read class bound (6/6)

	shed := a.shedCounts()
	if shed["batch"] != 2 || shed["read"] != 1 || shed["predict"] != 0 {
		t.Fatalf("shed counts = %v, want batch 2, read 1, predict 0", shed)
	}
	for _, rel := range releases {
		rel()
	}
	if a.global.Load() != 0 {
		t.Fatalf("global in-flight after all releases = %d, want 0", a.global.Load())
	}
	// Capacity fully restored: batch admits again.
	if _, ok := a.admit(ClassBatch); !ok {
		t.Fatal("batch refused on an idle gateway after releases")
	}
}

// TestProxyByteIdentical pins the canonical-bytes invariant on the happy
// path: every read endpoint through the gateway returns byte-identical
// bodies to the primary.
func TestProxyByteIdentical(t *testing.T) {
	f := newFleet(t, 3, 2)
	g := f.gw(t)
	gsrv := httptest.NewServer(g.Handler())
	defer gsrv.Close()

	for _, c := range canonicalPaths() {
		want := f.canon(t, c.method, c.path, c.body)
		code, got, err := doReq(t, gsrv.Client(), c.method, gsrv.URL+c.path, c.body)
		if err != nil || code != http.StatusOK {
			t.Fatalf("%s %s via gateway: %d %v", c.method, c.path, code, err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%s %s: gateway body diverges from primary:\n gw: %s\n pri: %s", c.method, c.path, got, want)
		}
	}
	if st := g.Status(); st.Proxied != int64(len(canonicalPaths())) {
		t.Errorf("proxied counter = %d, want %d", st.Proxied, len(canonicalPaths()))
	}
}

// TestFailoverRetriesOnceOnAnotherReplica: a failed request (transport
// reset or 5xx) is transparently retried on a different backend and the
// client still gets the canonical bytes.
func TestFailoverRetriesOnceOnAnotherReplica(t *testing.T) {
	for _, mode := range []faulty.Mode{faulty.Reset, faulty.Error} {
		t.Run(mode.String(), func(t *testing.T) {
			f := newFleet(t, 2, 1)
			// Backend 0 fails its first 3 requests in the given mode.
			f.injs[0].Set(faulty.Rule{Mode: mode, First: 3})
			g := f.gw(t)
			gsrv := httptest.NewServer(g.Handler())
			defer gsrv.Close()

			want := f.canon(t, http.MethodGet, "/models", "")
			for i := 0; i < 6; i++ {
				code, got, err := doReq(t, gsrv.Client(), http.MethodGet, gsrv.URL+"/models", "")
				if err != nil || code != http.StatusOK {
					t.Fatalf("request %d: %d %v", i, code, err)
				}
				if !bytes.Equal(got, want) {
					t.Fatalf("request %d: non-canonical body through failover", i)
				}
			}
			if st := g.Status(); st.Retries == 0 {
				t.Error("failover happened but the retry counter did not move")
			}
		})
	}
}

// TestPartialUpstreamBodyFailsOver: a backend that truncates its
// response mid-body must not leak the truncation to the client — the
// gateway verifies completeness before forwarding and fails over.
func TestPartialUpstreamBodyFailsOver(t *testing.T) {
	f := newFleet(t, 2, 1)
	f.injs[0].Set(faulty.Rule{Mode: faulty.Partial})
	g := f.gw(t)
	gsrv := httptest.NewServer(g.Handler())
	defer gsrv.Close()

	want := f.canon(t, http.MethodGet, "/features?model=m&key=hour_speed", "")
	for i := 0; i < 6; i++ {
		code, got, err := doReq(t, gsrv.Client(), http.MethodGet, gsrv.URL+"/features?model=m&key=hour_speed", "")
		if err != nil || code != http.StatusOK {
			t.Fatalf("request %d: %d %v", i, code, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("request %d: truncated/non-canonical body reached the client", i)
		}
	}
}

// TestStalledBackendBoundedByAttemptDeadline: a hanging backend costs at
// most one AttemptTimeout before failover; the client's own context
// cancellation also cuts through.
func TestStalledBackendBoundedByAttemptDeadline(t *testing.T) {
	f := newFleet(t, 2, 1)
	f.injs[0].Set(faulty.Rule{Mode: faulty.Hang})
	g := f.gw(t, func(c *Config) { c.AttemptTimeout = 300 * time.Millisecond })
	gsrv := httptest.NewServer(g.Handler())
	defer gsrv.Close()

	want := f.canon(t, http.MethodGet, "/models", "")
	start := time.Now()
	code, got, err := doReq(t, gsrv.Client(), http.MethodGet, gsrv.URL+"/models", "")
	elapsed := time.Since(start)
	if err != nil || code != http.StatusOK || !bytes.Equal(got, want) {
		t.Fatalf("request through stalled backend: %d %v", code, err)
	}
	// One stalled attempt (≤150ms) plus a fast failover; generous bound
	// for CI noise, but far below an unbounded hang.
	if elapsed > 3*time.Second {
		t.Fatalf("request took %v — the stall was not bounded by the attempt deadline", elapsed)
	}

	// Client cancellation propagates: with every backend stalled, a
	// client that gives up is released promptly.
	f.injs[0].Set(faulty.Rule{Mode: faulty.Hang})
	f.injs[1].Set(faulty.Rule{Mode: faulty.Hang})
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, gsrv.URL+"/models", nil)
	start = time.Now()
	_, cerr := gsrv.Client().Do(req)
	if cerr == nil {
		t.Fatal("want an error when every backend hangs and the client cancels")
	}
	if d := time.Since(start); d > 3*time.Second {
		t.Fatalf("client cancellation took %v to propagate", d)
	}
}

// TestBreakerOpensThenRecloses: a dead backend's breaker opens after
// FailThreshold consecutive failures, traffic routes around it, and
// once the backend recovers a half-open probe re-closes the breaker.
func TestBreakerOpensThenRecloses(t *testing.T) {
	f := newFleet(t, 2, 1)
	f.injs[0].Set(faulty.Rule{Mode: faulty.Reset})
	g := f.gw(t, func(c *Config) {
		c.Breaker = BreakerConfig{FailThreshold: 3, Cooldown: 150 * time.Millisecond}
	})
	gsrv := httptest.NewServer(g.Handler())
	defer gsrv.Close()

	// Drive traffic until backend 0 accumulates enough failures to trip.
	for i := 0; i < 20; i++ {
		code, _, err := doReq(t, gsrv.Client(), http.MethodGet, gsrv.URL+"/models", "")
		if err != nil || code != http.StatusOK {
			t.Fatalf("request %d failed: %d %v", i, code, err)
		}
	}
	open := false
	for _, b := range g.Status().Backends {
		if b.URL == f.urls[0] && b.Breaker == "open" {
			open = true
		}
	}
	if !open {
		t.Fatalf("backend 0 breaker did not open: %+v", g.Status().Backends)
	}

	// Recover the backend; after the cooldown, continued traffic drives
	// a half-open probe that re-closes the breaker.
	f.injs[0].Clear()
	deadline := time.Now().Add(5 * time.Second)
	for {
		code, _, err := doReq(t, gsrv.Client(), http.MethodGet, gsrv.URL+"/models", "")
		if err != nil || code != http.StatusOK {
			t.Fatalf("post-recovery request failed: %d %v", code, err)
		}
		closed := false
		for _, b := range g.Status().Backends {
			if b.URL == f.urls[0] && b.Breaker == "closed" {
				closed = true
			}
		}
		if closed {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("breaker never re-closed after recovery: %+v", g.Status().Backends)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestLaggingReplicaIsDrainedNotKilled: health probes compare each
// replica's applied-version watermarks against the fleet's frontier; a
// stale replica is drained (no traffic, no breaker trip) and rejoins
// once the publisher catches it up.
func TestLaggingReplicaIsDrainedNotKilled(t *testing.T) {
	f := newFleet(t, 2, 0) // start empty; versions pushed by hand below
	spec, _ := store.Serialize(&ml.LinearModel{Weights: []float64{1, 1}, Bias: 0})
	for v := 1; v <= 4; v++ {
		f.src.Publish(store.Bundle{
			Name: "m", Model: spec,
			Features:   map[string][]float64{"hour_speed": hourSpeeds()},
			Provenance: store.Provenance{Pipeline: "m", Decision: "accept", Quality: float64(v)},
		})
	}
	// Replica 0 gets everything; replica 1 only v1 — 3 versions behind.
	if err := replica.NewPublisher(f.src, f.urls[:1]).Sync(); err != nil {
		t.Fatal(err)
	}
	if err := replica.NewPublisher(f.src, f.urls[1:]).Push("m", 1); err != nil {
		t.Fatal(err)
	}

	g := f.gw(t, func(c *Config) { c.LagVersions = 1 })
	g.Start()
	defer g.Stop()
	gsrv := httptest.NewServer(g.Handler())
	defer gsrv.Close()

	stateOf := func(url string) string {
		for _, b := range g.Status().Backends {
			if b.URL == url {
				return b.State
			}
		}
		return "?"
	}
	if got := stateOf(f.urls[1]); got != "draining" {
		t.Fatalf("lagging replica state = %q, want draining", got)
	}
	if got := stateOf(f.urls[0]); got != "healthy" {
		t.Fatalf("current replica state = %q, want healthy", got)
	}

	// All traffic lands on the current replica; the drained one serves
	// nothing but is not broken (breaker stays closed).
	for i := 0; i < 10; i++ {
		code, _, err := doReq(t, gsrv.Client(), http.MethodGet, gsrv.URL+"/models", "")
		if err != nil || code != http.StatusOK {
			t.Fatalf("request %d: %d %v", i, code, err)
		}
	}
	for _, b := range g.Status().Backends {
		if b.URL == f.urls[1] {
			if b.Requests != 0 {
				t.Errorf("drained replica served %d requests, want 0", b.Requests)
			}
			if b.Breaker != "closed" {
				t.Errorf("drained replica breaker = %q — draining must not trip breakers", b.Breaker)
			}
		}
	}

	// Catch the replica up; the next probes return it to rotation.
	if err := replica.NewPublisher(f.src, f.urls[1:]).Sync(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for stateOf(f.urls[1]) != "healthy" {
		if time.Now().After(deadline) {
			t.Fatalf("caught-up replica never rejoined: %+v", g.Status().Backends)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestDownBackendDetectedByHealthProbe: a backend whose listener is gone
// is marked down by the active prober and routed around without waiting
// for request failures.
func TestDownBackendDetectedByHealthProbe(t *testing.T) {
	f := newFleet(t, 2, 1)
	g := f.gw(t)
	g.Start()
	defer g.Stop()
	gsrv := httptest.NewServer(g.Handler())
	defer gsrv.Close()

	f.srvs[0].Close() // the process dies
	deadline := time.Now().Add(5 * time.Second)
	for {
		down := false
		for _, b := range g.Status().Backends {
			if b.URL == f.urls[0] && b.State == "down" {
				down = true
			}
		}
		if down {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("dead backend never marked down: %+v", g.Status().Backends)
		}
		time.Sleep(10 * time.Millisecond)
	}
	want := f.canon(t, http.MethodGet, "/models", "")
	for i := 0; i < 5; i++ {
		code, got, err := doReq(t, gsrv.Client(), http.MethodGet, gsrv.URL+"/models", "")
		if err != nil || code != http.StatusOK || !bytes.Equal(got, want) {
			t.Fatalf("request %d with a down backend: %d %v", i, code, err)
		}
	}
}

// TestPushRefusedAtGateway: the gateway only routes reads; the
// replication protocol's mutating endpoint must not be load-balanced.
func TestPushRefusedAtGateway(t *testing.T) {
	f := newFleet(t, 1, 1)
	g := f.gw(t)
	gsrv := httptest.NewServer(g.Handler())
	defer gsrv.Close()

	code, body, err := doReq(t, gsrv.Client(), http.MethodPost, gsrv.URL+"/push", "bundle-bytes")
	if err != nil || code != http.StatusForbidden {
		t.Fatalf("POST /push via gateway: %d %v %s", code, err, body)
	}
	if f.reps[0].Store().VersionCount("m") != 1 {
		t.Fatal("a gateway-routed push mutated a replica store")
	}
}

// TestLeastLoadedRouting: with one backend pinned by slow requests, new
// requests prefer the idle backend.
func TestLeastLoadedRouting(t *testing.T) {
	f := newFleet(t, 2, 1)
	// Backend 0 is slow: every request takes 200ms.
	f.injs[0].Set(faulty.Rule{Mode: faulty.Pass, Latency: 200 * time.Millisecond})
	g := f.gw(t)
	gsrv := httptest.NewServer(g.Handler())
	defer gsrv.Close()

	// Saturate: launch a few slow requests to raise backend 0's
	// in-flight count, then measure where quick requests land.
	for i := 0; i < 4; i++ {
		go func() {
			_, _, _ = doReq(t, &http.Client{Timeout: 5 * time.Second}, http.MethodGet, gsrv.URL+"/models", "")
		}()
	}
	time.Sleep(50 * time.Millisecond)
	var before, after int64
	for _, b := range g.Status().Backends {
		if b.URL == f.urls[1] {
			before = b.Requests
		}
	}
	for i := 0; i < 8; i++ {
		code, _, err := doReq(t, gsrv.Client(), http.MethodGet, gsrv.URL+"/models", "")
		if err != nil || code != http.StatusOK {
			t.Fatalf("request %d: %d %v", i, code, err)
		}
	}
	for _, b := range g.Status().Backends {
		if b.URL == f.urls[1] {
			after = b.Requests
		}
	}
	if after-before < 6 {
		t.Errorf("idle backend served only %d of 8 quick requests; least-loaded routing not engaging", after-before)
	}
}

// TestGatewayStatusEndpoint sanity-checks the operator surface.
func TestGatewayStatusEndpoint(t *testing.T) {
	f := newFleet(t, 2, 1)
	g := f.gw(t)
	gsrv := httptest.NewServer(g.Handler())
	defer gsrv.Close()

	if code, _, err := doReq(t, gsrv.Client(), http.MethodGet, gsrv.URL+"/models", ""); err != nil || code != 200 {
		t.Fatalf("warmup: %d %v", code, err)
	}
	code, body, err := doReq(t, gsrv.Client(), http.MethodGet, gsrv.URL+"/gateway/status", "")
	if err != nil || code != http.StatusOK {
		t.Fatalf("gateway status: %d %v", code, err)
	}
	for _, want := range []string{`"backends"`, `"breaker"`, `"shed"`, f.urls[0], f.urls[1]} {
		if !bytes.Contains(body, []byte(want)) {
			t.Errorf("status body missing %s: %s", want, body)
		}
	}
}

// TestNoBackends: construction fails fast.
func TestNoBackends(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("New with zero backends must error")
	}
}
