// gateway.go implements the proxy itself: backend bookkeeping, health
// probes, least-loaded routing with failover, and the HTTP surface.
// The design rationale and fault model live in doc.go.
package gateway

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
	"repro/internal/replica"
	"repro/internal/trace"
)

const (
	// maxRequestBytes bounds a buffered request body (bodies are
	// buffered so a failed attempt can be replayed on another backend).
	// The serving tier's own per-endpoint caps are far below this.
	maxRequestBytes = 8 << 20
	// maxResponseBytes bounds a buffered upstream response (buffered so
	// completeness is verified before any byte reaches the client).
	maxResponseBytes = 64 << 20
)

// Config configures a Gateway.
type Config struct {
	// Backends are replica base URLs (e.g. "http://10.0.0.7:8081").
	Backends []string
	// Transport performs upstream requests (default http.DefaultTransport;
	// tests inject faulty transports).
	Transport http.RoundTripper
	// AttemptTimeout bounds one proxied attempt (default 10s). A request
	// that fails over pays at most two attempts; the client's own
	// context cancellation is propagated under the per-attempt deadline.
	AttemptTimeout time.Duration
	// HealthInterval is the active health-probe period (default 2s).
	HealthInterval time.Duration
	// HealthTimeout bounds one status probe (default min(HealthInterval, 1s)).
	HealthTimeout time.Duration
	// LagVersions drains a backend whose total applied-version watermark
	// trails the fleet maximum by more than this many versions
	// (default 2). Drained backends are routed around, not failed.
	LagVersions int
	// Breaker tunes the per-backend circuit breakers.
	Breaker BreakerConfig
	// Limits bounds per-class in-flight admission.
	Limits Limits
	// Logf receives state-transition lines (default: discard).
	Logf func(format string, args ...any)
	// Tracer records request traces: a root span per request plus one
	// child span per routing attempt, so a failover shows up as two
	// attempt spans under one trace. Nil disables tracing — the serving
	// path is then byte-for-byte the untraced one.
	Tracer *trace.Tracer
}

func (c *Config) applyDefaults() {
	if c.Transport == nil {
		c.Transport = http.DefaultTransport
	}
	if c.AttemptTimeout <= 0 {
		c.AttemptTimeout = 10 * time.Second
	}
	if c.HealthInterval <= 0 {
		c.HealthInterval = 2 * time.Second
	}
	if c.HealthTimeout <= 0 {
		c.HealthTimeout = c.HealthInterval
		if c.HealthTimeout > time.Second {
			c.HealthTimeout = time.Second
		}
	}
	if c.LagVersions <= 0 {
		c.LagVersions = 2
	}
	c.Breaker.applyDefaults()
	c.Limits.applyDefaults()
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
}

// backend is one replica endpoint and the gateway's view of it.
type backend struct {
	url     string
	breaker *Breaker
	// inflight is this gateway's requests currently proxied to the
	// backend — the least-loaded routing key.
	inflight atomic.Int64
	// down: the last health probe could not reach the backend.
	down atomic.Bool
	// draining: reachable but its watermarks trail the fleet (stale
	// reads would violate the canonical-bytes invariant).
	draining atomic.Bool
	// applied is the backend's total applied-version watermark from the
	// last successful probe.
	applied atomic.Int64
	// probed: at least one health probe has completed (until then the
	// backend is assumed routable).
	probed atomic.Bool
	// requests/failures live in the gateway's metric registry (labeled
	// by backend); the status report reads the same series.
	requests *metrics.Counter
	failures *metrics.Counter
	// transitions counts breaker state changes by destination state,
	// fed by the breaker's OnTransition hook.
	transitions [3]*metrics.Counter

	mu      sync.Mutex
	lastErr string
}

func (b *backend) noteError(err error) {
	b.failures.Inc()
	b.mu.Lock()
	b.lastErr = err.Error()
	b.mu.Unlock()
}

func (b *backend) lastError() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.lastErr
}

// Gateway is the routing tier instance. Construct with New, optionally
// Start the active health loop, and serve Handler().
type Gateway struct {
	cfg      Config
	backends []*backend
	adm      *admission
	// rr breaks least-loaded ties round-robin.
	rr atomic.Uint64
	// reg is the gateway's metric registry, served at GET /metrics.
	// Every counter the status report exposes is a view over it.
	reg        *metrics.Registry
	proxied    *metrics.Counter
	retries    *metrics.Counter
	unroutable *metrics.Counter
	// reqSec is the per-route-class request latency histogram,
	// pre-resolved per class.
	reqSec [numClasses]*metrics.Histogram

	startOnce sync.Once
	stop      context.CancelFunc
	done      chan struct{}
}

// New returns a gateway over the given replica endpoints.
func New(cfg Config) (*Gateway, error) {
	cfg.applyDefaults()
	if len(cfg.Backends) == 0 {
		return nil, errors.New("gateway: no backends configured")
	}
	reg := metrics.New()
	g := &Gateway{cfg: cfg, adm: newAdmission(cfg.Limits, reg), reg: reg, done: make(chan struct{})}
	g.proxied = reg.Counter("sage_gateway_proxied_total",
		"Requests successfully proxied to a backend.")
	g.retries = reg.Counter("sage_gateway_retries_total",
		"Failed attempts that triggered (or exhausted) failover.")
	g.unroutable = reg.Counter("sage_gateway_unroutable_total",
		"Requests no backend could serve.")
	for c := Class(0); c < numClasses; c++ {
		g.reqSec[c] = reg.Histogram("sage_gateway_request_seconds",
			"Gateway request latency by route class (all terminal outcomes).",
			metrics.LatencyBuckets(), metrics.Label{Name: "class", Value: c.String()})
	}
	for _, u := range cfg.Backends {
		b := &backend{url: u, breaker: NewBreaker(cfg.Breaker)}
		lbl := metrics.Label{Name: "backend", Value: u}
		b.requests = reg.Counter("sage_gateway_backend_requests_total",
			"Attempts forwarded to the backend.", lbl)
		b.failures = reg.Counter("sage_gateway_backend_failures_total",
			"Forwarded attempts that failed (transport error or 5xx).", lbl)
		for _, to := range []BreakerState{BreakerClosed, BreakerOpen, BreakerHalfOpen} {
			b.transitions[to] = reg.Counter("sage_gateway_breaker_transitions_total",
				"Breaker state changes, by backend and destination state.",
				lbl, metrics.Label{Name: "to", Value: to.String()})
		}
		b.breaker.OnTransition(func(from, to BreakerState) {
			b.transitions[to].Inc()
			trace.Eventf(cfg.Logf, "gateway: event=breaker backend=%s from=%s to=%s", u, from, to)
		})
		reg.GaugeFunc("sage_gateway_breaker_state",
			"Breaker position: 0 closed, 1 open, 2 half-open.",
			func() float64 { return float64(b.breaker.State()) }, lbl)
		reg.GaugeFunc("sage_gateway_backend_applied_versions",
			"Backend's total applied-version watermark from the last probe.",
			func() float64 { return float64(b.applied.Load()) }, lbl)
		reg.GaugeFunc("sage_gateway_backend_inflight_requests",
			"Requests this gateway currently has in flight to the backend.",
			func() float64 { return float64(b.inflight.Load()) }, lbl)
		g.backends = append(g.backends, b)
	}
	return g, nil
}

// Metrics exposes the gateway's registry (tests scrape it without
// going through HTTP).
func (g *Gateway) Metrics() *metrics.Registry { return g.reg }

// Start runs one synchronous health-probe round (so routing decisions
// are informed from the first request) and then begins the periodic
// health loop. Idempotent.
func (g *Gateway) Start() {
	g.startOnce.Do(func() {
		ctx, cancel := context.WithCancel(context.Background())
		g.stop = cancel
		g.probeAll(ctx)
		go func() {
			defer close(g.done)
			ticker := time.NewTicker(g.cfg.HealthInterval)
			defer ticker.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-ticker.C:
					g.probeAll(ctx)
				}
			}
		}()
	})
}

// Stop halts the health loop (if started).
func (g *Gateway) Stop() {
	if g.stop != nil {
		g.stop()
		<-g.done
	}
}

// probeAll health-checks every backend concurrently, then recomputes
// fleet lag: reachable backends whose total applied watermark trails the
// fleet max by more than LagVersions are drained until they catch up.
func (g *Gateway) probeAll(ctx context.Context) {
	var wg sync.WaitGroup
	for _, b := range g.backends {
		wg.Add(1)
		go func(b *backend) {
			defer wg.Done()
			g.probe(ctx, b)
		}(b)
	}
	wg.Wait()

	// Fleet-lag pass. The newest watermark any live replica reports is
	// the fleet's serving frontier; a backend behind it would serve
	// stale (non-canonical) bytes.
	fleetMax := int64(-1)
	for _, b := range g.backends {
		if !b.down.Load() && b.applied.Load() > fleetMax {
			fleetMax = b.applied.Load()
		}
	}
	if fleetMax < 0 {
		return // whole fleet unreachable; nothing to compare against
	}
	for _, b := range g.backends {
		if b.down.Load() {
			continue
		}
		lagging := fleetMax-b.applied.Load() > int64(g.cfg.LagVersions)
		if lagging != b.draining.Load() {
			b.draining.Store(lagging)
			if lagging {
				trace.Eventf(g.cfg.Logf, "gateway: event=replica_drain backend=%s applied=%d fleet=%d", b.url, b.applied.Load(), fleetMax)
			} else {
				trace.Eventf(g.cfg.Logf, "gateway: event=replica_undrain backend=%s applied=%d", b.url, b.applied.Load())
			}
		}
	}
}

// probe fetches one backend's replica status.
func (g *Gateway) probe(ctx context.Context, b *backend) {
	ctx, cancel := context.WithTimeout(ctx, g.cfg.HealthTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, b.url+"/replica/status", nil)
	if err != nil {
		return
	}
	resp, err := g.cfg.Transport.RoundTrip(req)
	if err != nil {
		g.markDown(b, err)
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		g.markDown(b, fmt.Errorf("status probe: HTTP %d", resp.StatusCode))
		return
	}
	var st replica.Status
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&st); err != nil {
		g.markDown(b, fmt.Errorf("status probe: %w", err))
		return
	}
	total := int64(0)
	for _, wm := range st.Watermarks {
		total += int64(wm)
	}
	b.applied.Store(total)
	if b.down.Swap(false) {
		trace.Eventf(g.cfg.Logf, "gateway: event=replica_up backend=%s", b.url)
	}
	b.probed.Store(true)
}

func (g *Gateway) markDown(b *backend, err error) {
	b.probed.Store(true)
	if !b.down.Swap(true) {
		trace.Eventf(g.cfg.Logf, "gateway: event=replica_down backend=%s err=%v", b.url, err)
	}
	b.mu.Lock()
	b.lastErr = err.Error()
	b.mu.Unlock()
}

// pick chooses the next backend for one attempt: the least-loaded
// routable backend (ties broken round-robin) whose breaker admits the
// request. Health flags are advisory — if the strict pass leaves
// nothing (every backend down or draining by a possibly-stale probe
// view), a relaxed pass ignores them and lets the breakers, which are
// fed by request truth, decide. A fleet is never 503'd into silence by
// its own health checker.
func (g *Gateway) pick(exclude map[*backend]bool) *backend {
	for _, relaxed := range []bool{false, true} {
		var candidates []*backend
		for _, b := range g.backends {
			if exclude[b] {
				continue
			}
			if !relaxed && (b.down.Load() || b.draining.Load()) {
				continue
			}
			candidates = append(candidates, b)
		}
		if len(candidates) == 0 {
			continue
		}
		// Least-loaded first; stable ties resolved round-robin.
		sort.SliceStable(candidates, func(i, j int) bool {
			return candidates[i].inflight.Load() < candidates[j].inflight.Load()
		})
		minLoad := candidates[0].inflight.Load()
		ties := 0
		for ties < len(candidates) && candidates[ties].inflight.Load() == minLoad {
			ties++
		}
		offset := int(g.rr.Add(1) % uint64(ties))
		for i := 0; i < len(candidates); i++ {
			b := candidates[(offset+i)%len(candidates)]
			if b.breaker.Allow() {
				return b
			}
		}
	}
	return nil
}

// Handler returns the gateway's HTTP surface: the proxied serving API
// plus GET /gateway/status.
func (g *Gateway) Handler() http.Handler { return g }

// ServeHTTP implements the proxy: classify → admit (or shed) → pick a
// backend → forward with a per-attempt deadline → on failure, fail over
// once to a different backend.
func (g *Gateway) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch r.URL.Path {
	case "/gateway/status":
		writeJSON(w, http.StatusOK, g.Status())
		return
	case "/metrics":
		// Served locally: the gateway's own registry, not a proxied
		// backend scrape.
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = g.reg.TextExpose(w)
		return
	case "/push":
		// Mutations go publisher → replica directly; a load-balanced
		// push would desynchronize the fleet.
		writeJSON(w, http.StatusForbidden, map[string]string{
			"error": "push is a publisher-to-replica operation; the gateway only routes reads",
		})
		return
	case "/debug/trace":
		// Served locally when tracing is on; with a nil tracer the path
		// falls through to the proxy like any other request.
		if g.cfg.Tracer != nil {
			g.cfg.Tracer.DebugHandler(func() any { return g.reg.Exemplars() }).ServeHTTP(w, r)
			return
		}
	}

	class := Classify(r)
	root := g.startSpan(r, class)
	// The exemplar trace id is resolved here, before the deferred End
	// scrubs and pools the span (defers run LIFO: End fires first).
	defer g.reqSec[class].ObserveSinceExemplar(time.Now(), root.TraceIDString())
	defer root.End()
	if root != nil {
		r = r.WithContext(trace.ContextWith(r.Context(), root))
	}
	release, ok := g.adm.admit(class)
	if !ok {
		// Shed fast: an immediate, honest "try later" beats a queued
		// request that times out after pinning resources.
		root.SetStatus(http.StatusServiceUnavailable)
		root.SetOutcome("shed")
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{
			"error": "gateway overloaded: " + class.String() + " request shed",
		})
		return
	}
	defer release()

	var body []byte
	if r.Body != nil {
		var err error
		body, err = io.ReadAll(io.LimitReader(r.Body, maxRequestBytes+1))
		if err != nil {
			root.SetStatus(http.StatusBadRequest)
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": "reading request body: " + err.Error()})
			return
		}
		if len(body) > maxRequestBytes {
			root.SetStatus(http.StatusRequestEntityTooLarge)
			writeJSON(w, http.StatusRequestEntityTooLarge, map[string]string{"error": "request body exceeds gateway limit"})
			return
		}
	}

	exclude := make(map[*backend]bool, 2)
	var lastErr error
	for attempt := 0; attempt < 2; attempt++ {
		b := g.pick(exclude)
		if b == nil {
			break
		}
		exclude[b] = true
		att := root.StartChild("gateway.attempt")
		att.SetAttr("backend", b.url)
		res, err := g.forward(r, b, body, att)
		if err != nil {
			att.SetOutcome("error")
			att.End()
			b.breaker.Record(false)
			b.noteError(err)
			lastErr = fmt.Errorf("%s: %w", b.url, err)
			g.retries.Inc()
			trace.SpanEventf(r.Context(), g.cfg.Logf,
				"gateway: event=failover backend=%s attempt=%d err=%v", b.url, attempt, err)
			continue
		}
		att.SetStatus(res.status)
		if res.status >= http.StatusInternalServerError {
			att.SetOutcome("error")
			att.End()
			b.breaker.Record(false)
			b.noteError(fmt.Errorf("HTTP %d", res.status))
			if attempt == 0 {
				lastErr = fmt.Errorf("%s: HTTP %d", b.url, res.status)
				g.retries.Inc()
				trace.SpanEventf(r.Context(), g.cfg.Logf,
					"gateway: event=failover backend=%s attempt=%d err=HTTP_%d", b.url, attempt, res.status)
				continue
			}
			// Both attempts 5xx'd: relay the last reply rather than
			// masking it.
			root.SetOutcome("error")
		} else {
			att.End()
			b.breaker.Record(true)
			if attempt > 0 {
				// Survived failover: mark the root so the trace is
				// tail-captured despite the 200.
				root.SetOutcome("failover")
			}
		}
		root.SetStatus(res.status)
		copyHeader(w.Header(), res.header)
		w.Header().Set("Content-Length", fmt.Sprint(len(res.body)))
		w.WriteHeader(res.status)
		_, _ = w.Write(res.body)
		g.proxied.Inc()
		return
	}
	g.unroutable.Inc()
	root.SetStatus(http.StatusServiceUnavailable)
	root.SetOutcome("unroutable")
	msg := "no healthy replica available"
	if lastErr != nil {
		msg += ": " + lastErr.Error()
	}
	w.Header().Set("Retry-After", "1")
	writeJSON(w, http.StatusServiceUnavailable, map[string]string{"error": msg})
}

// startSpan opens the request's root span: an incoming traceparent is
// continued (the gateway joins the caller's trace), otherwise a fresh
// trace starts. Nil when tracing is disabled.
func (g *Gateway) startSpan(r *http.Request, class Class) *trace.Span {
	t := g.cfg.Tracer
	if t == nil {
		return nil
	}
	var s *trace.Span
	if traceID, parent, ok := trace.ParseTraceparent(r.Header.Get(trace.Header)); ok {
		s = t.StartRemote(r.Method+" "+r.URL.Path, traceID, parent)
	} else {
		s = t.StartRoot(r.Method + " " + r.URL.Path)
	}
	s.SetAttr("class", class.String())
	return s
}

// proxyResult is one complete, verified upstream response.
type proxyResult struct {
	status int
	header http.Header
	body   []byte
}

// forward proxies one attempt to one backend under the per-attempt
// deadline, buffering and length-verifying the response. An upstream
// that delivers fewer bytes than it advertised is an error (the partial
// response never reaches the client), as is one that out-sizes the
// response cap. att, when non-nil, is stamped as the outgoing
// traceparent parent — each attempt carries its own span id, so the
// replica's server span hangs under the attempt that reached it.
func (g *Gateway) forward(r *http.Request, b *backend, body []byte, att *trace.Span) (proxyResult, error) {
	ctx, cancel := context.WithTimeout(r.Context(), g.cfg.AttemptTimeout)
	defer cancel()
	b.inflight.Add(1)
	defer b.inflight.Add(-1)
	b.requests.Inc()

	req, err := http.NewRequestWithContext(ctx, r.Method, b.url+r.URL.RequestURI(), bytes.NewReader(body))
	if err != nil {
		return proxyResult{}, err
	}
	copyHeader(req.Header, r.Header)
	req.Header.Del("Connection")
	trace.Inject(att, req.Header)

	resp, err := g.cfg.Transport.RoundTrip(req)
	if err != nil {
		return proxyResult{}, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxResponseBytes+1))
	if err != nil {
		return proxyResult{}, fmt.Errorf("reading upstream body: %w", err)
	}
	if len(data) > maxResponseBytes {
		return proxyResult{}, errors.New("upstream response exceeds gateway limit")
	}
	if resp.ContentLength >= 0 && int64(len(data)) < resp.ContentLength {
		return proxyResult{}, fmt.Errorf("partial upstream body: %d of %d bytes", len(data), resp.ContentLength)
	}
	return proxyResult{status: resp.StatusCode, header: resp.Header, body: data}, nil
}

// hopHeaders are connection-scoped and must not be forwarded either way.
var hopHeaders = map[string]bool{
	"Connection":          true,
	"Keep-Alive":          true,
	"Proxy-Connection":    true,
	"Te":                  true,
	"Trailer":             true,
	"Transfer-Encoding":   true,
	"Upgrade":             true,
	"Content-Length":      true, // recomputed from the buffered body
	"Proxy-Authenticate":  true,
	"Proxy-Authorization": true,
}

func copyHeader(dst, src http.Header) {
	for k, vs := range src {
		if hopHeaders[http.CanonicalHeaderKey(k)] {
			continue
		}
		dst[k] = append([]string(nil), vs...)
	}
}

// BackendStatus is one backend's row in the gateway status report.
type BackendStatus struct {
	URL string `json:"url"`
	// State is "healthy", "down" (probe unreachable), or "draining"
	// (reachable but lagging the fleet watermark).
	State string `json:"state"`
	// Breaker is "closed", "open", or "half-open".
	Breaker  string `json:"breaker"`
	Inflight int64  `json:"inflight"`
	// AppliedVersions is the backend's total applied-version watermark
	// from the last successful probe.
	AppliedVersions int64  `json:"applied_versions"`
	Requests        int64  `json:"requests"`
	Failures        int64  `json:"failures"`
	LastError       string `json:"last_error,omitempty"`
}

// Status is the gateway's introspection snapshot (GET /gateway/status).
type Status struct {
	Backends []BackendStatus `json:"backends"`
	Proxied  int64           `json:"proxied"`
	// Retries counts failed attempts that triggered (or exhausted)
	// failover; Unroutable counts requests no backend could serve.
	Retries    int64 `json:"retries"`
	Unroutable int64 `json:"unroutable"`
	// Shed maps route class → requests refused by admission control.
	Shed map[string]int64 `json:"shed"`
}

// Status snapshots the gateway's state. Every counter here is a view
// over the metric registry — /gateway/status and /metrics can never
// disagree because there is only one set of counters.
func (g *Gateway) Status() Status {
	st := Status{
		Proxied:    int64(g.proxied.Value()),
		Retries:    int64(g.retries.Value()),
		Unroutable: int64(g.unroutable.Value()),
		Shed:       g.adm.shedCounts(),
	}
	for _, b := range g.backends {
		state := "healthy"
		switch {
		case b.down.Load():
			state = "down"
		case b.draining.Load():
			state = "draining"
		}
		st.Backends = append(st.Backends, BackendStatus{
			URL:             b.url,
			State:           state,
			Breaker:         b.breaker.State().String(),
			Inflight:        b.inflight.Load(),
			AppliedVersions: b.applied.Load(),
			Requests:        int64(b.requests.Value()),
			Failures:        int64(b.failures.Value()),
			LastError:       b.lastError(),
		})
	}
	return st
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}
