package gateway

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/faulty"
	"repro/internal/metrics"
)

// scrapeGateway fetches the gateway's own /metrics over HTTP (the one
// route ServeHTTP answers locally instead of proxying) and strict-parses
// the exposition.
func scrapeGateway(t *testing.T, base string) metrics.Families {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: HTTP %d", resp.StatusCode)
	}
	fams, err := metrics.Parse(resp.Body)
	if err != nil {
		t.Fatalf("gateway /metrics is not valid exposition: %v", err)
	}
	return fams
}

// transitionsTo reads one backend's breaker-transition counter.
func transitionsTo(t *testing.T, fams metrics.Families, backend, to string) float64 {
	t.Helper()
	v, _ := fams.Value("sage_gateway_breaker_transitions_total",
		map[string]string{"backend": backend, "to": to})
	return v
}

// TestGatewayChaosKillAndStall is the headline fault-injection e2e: a
// three-replica fleet serves mixed read/predict traffic while one
// replica is killed (connection resets) and another stalled (hangs)
// mid-stream. The assertions are the PR's availability contract:
//
//   - every 200 body stays byte-identical to the primary, through every
//     phase (failover never serves wrong or truncated bytes);
//   - after a short convergence window the success rate is 100% — the
//     breakers for the two faulty replicas are open and all traffic
//     flows to the survivor;
//   - when the faults are lifted, the breakers re-close via half-open
//     probes and the recovered replicas serve traffic again.
//
// The health loop is intentionally NOT started: this test isolates the
// request-driven detectors (per-attempt deadlines, failover, breakers).
// The probe-driven detectors (down/draining) have their own tests in
// gateway_test.go.
func TestGatewayChaosKillAndStall(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos e2e skipped in -short mode")
	}
	f := newFleet(t, 3, 3)
	// Cooldown is deliberately longer than the strict window below: a
	// half-open probe IS live traffic, and a request unlucky enough to
	// spend both its attempts on two simultaneous probes of the two
	// faulty replicas would legitimately fail. Keeping the breakers open
	// through the strict window makes the 100%-success assertion exact;
	// recovery still exercises the probe path afterwards.
	// AttemptTimeout must be comfortably above a healthy replica's worst
	// service time (including -race slowdown): a spurious timeout on the
	// surviving replica would count as a breaker failure and can 503 the
	// whole fleet while the other two breakers are open.
	g := f.gw(t, func(c *Config) {
		c.AttemptTimeout = time.Second
		c.Breaker = BreakerConfig{FailThreshold: 3, Cooldown: 2 * time.Second}
	})
	gsrv := httptest.NewServer(g.Handler())
	defer gsrv.Close()

	paths := canonicalPaths()
	canon := make([][]byte, len(paths))
	for i, c := range paths {
		canon[i] = f.canon(t, c.method, c.path, c.body)
	}

	// strictGen tracks the strict/tolerant phase as a generation counter
	// (odd = strict). A non-200 is a failure only if the run was in the
	// SAME strict generation when the request started and when it
	// completed — a request in flight across a fault-injection boundary
	// may legitimately fail without violating the availability contract.
	var (
		strictGen atomic.Int64
		stopped   atomic.Bool
		successes atomic.Int64
		tolerated atomic.Int64 // non-200s outside a strict window
		mu        sync.Mutex
		problems  []string
	)
	setStrict := func(on bool) {
		if (strictGen.Load()%2 == 1) != on {
			strictGen.Add(1)
		}
	}
	start := time.Now()
	fail := func(msg string) {
		snap := ""
		for _, b := range g.Status().Backends {
			snap += " " + b.State + "/" + b.Breaker + "/" + b.LastError + ";"
		}
		mu.Lock()
		if len(problems) < 10 {
			problems = append(problems, time.Since(start).String()+" "+msg+" ["+snap+"]")
		}
		mu.Unlock()
	}
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			client := &http.Client{Timeout: 5 * time.Second}
			for i := 0; !stopped.Load(); i++ {
				c := paths[(w+i)%len(paths)]
				gen := strictGen.Load()
				code, body, err := doReq(t, client, c.method, gsrv.URL+c.path, c.body)
				wasStrict := gen%2 == 1 && strictGen.Load() == gen
				switch {
				case err != nil:
					fail("transport error: " + err.Error())
				case code == http.StatusOK:
					if !bytes.Equal(body, canon[(w+i)%len(paths)]) {
						fail("non-canonical 200 body for " + c.path)
					}
					successes.Add(1)
				case wasStrict:
					fail(c.path + ": HTTP " + http.StatusText(code) + " during strict window")
				default:
					tolerated.Add(1)
				}
			}
		}(w)
	}

	breakerOf := func(url string) string {
		for _, b := range g.Status().Backends {
			if b.URL == url {
				return b.Breaker
			}
		}
		return "?"
	}
	requestsOf := func(url string) int64 {
		for _, b := range g.Status().Backends {
			if b.URL == url {
				return b.Requests
			}
		}
		return -1
	}

	// Phase 1: healthy fleet, strict from the start.
	setStrict(true)
	time.Sleep(150 * time.Millisecond)

	// Phase 2: kill replica 0 (resets) and stall replica 1 (hangs)
	// mid-traffic. Until the breakers trip, a request can draw both
	// faulty replicas and exhaust its two attempts — tolerate 503s for a
	// short convergence window, then demand 100% again.
	setStrict(false)
	f.injs[0].Set(faulty.Rule{Mode: faulty.Reset})
	f.injs[1].Set(faulty.Rule{Mode: faulty.Hang})
	deadline := time.Now().Add(5 * time.Second)
	for breakerOf(f.urls[0]) != "open" || breakerOf(f.urls[1]) != "open" {
		if time.Now().After(deadline) {
			t.Fatalf("breakers never opened under sustained faults: %+v", g.Status().Backends)
		}
		time.Sleep(10 * time.Millisecond)
	}
	// With both breakers open, the transition counters must already show
	// the closed→open edge for exactly the faulty backends.
	midScrape := scrapeGateway(t, gsrv.URL)
	for _, u := range []string{f.urls[0], f.urls[1]} {
		if n := transitionsTo(t, midScrape, u, "open"); n < 1 {
			t.Fatalf("breaker open but sage_gateway_breaker_transitions_total{backend=%s,to=open} = %v", u, n)
		}
	}
	if n := transitionsTo(t, midScrape, f.urls[2], "open"); n != 0 {
		t.Fatalf("healthy survivor shows %v open transitions", n)
	}
	setStrict(true)
	preSuccess := successes.Load()
	time.Sleep(400 * time.Millisecond)
	if got := successes.Load() - preSuccess; got == 0 {
		t.Fatal("no successful requests while two replicas were faulty — the survivor is not carrying the fleet")
	}

	// Phase 3: lift the faults. Cooldowns elapse, half-open probes
	// succeed, breakers re-close, and the recovered replicas serve
	// traffic again — all while strict mode stays on.
	f.injs[0].Clear()
	f.injs[1].Clear()
	req0, req1 := requestsOf(f.urls[0]), requestsOf(f.urls[1])
	deadline = time.Now().Add(8 * time.Second)
	for breakerOf(f.urls[0]) != "closed" || breakerOf(f.urls[1]) != "closed" {
		if time.Now().After(deadline) {
			t.Fatalf("breakers never re-closed after recovery: %+v", g.Status().Backends)
		}
		time.Sleep(20 * time.Millisecond)
	}
	// Let the recovered replicas take some traffic, then stop.
	time.Sleep(200 * time.Millisecond)
	stopped.Store(true)
	wg.Wait()

	mu.Lock()
	defer mu.Unlock()
	if len(problems) > 0 {
		t.Fatalf("chaos run failed (%d successes, %d tolerated 503s):\n%s",
			successes.Load(), tolerated.Load(), problems)
	}
	if requestsOf(f.urls[0]) == req0 {
		t.Error("killed replica served no traffic after recovery")
	}
	if requestsOf(f.urls[1]) == req1 {
		t.Error("stalled replica served no traffic after recovery")
	}
	st := g.Status()
	if st.Retries == 0 {
		t.Error("chaos run recorded zero failovers — the faults never engaged")
	}
	if f.injs[0].Fired() == 0 || f.injs[1].Fired() == 0 {
		t.Error("fault injectors never fired")
	}

	// The full breaker cycle must be visible in /metrics: each faulty
	// backend shows open → half-open → closed edges, counters are
	// monotone across the two scrapes, and the state gauges agree with
	// the status report (everything re-closed).
	endScrape := scrapeGateway(t, gsrv.URL)
	for _, u := range []string{f.urls[0], f.urls[1]} {
		for _, to := range []string{"open", "half-open", "closed"} {
			if n := transitionsTo(t, endScrape, u, to); n < 1 {
				t.Errorf("breaker cycle incomplete: transitions{backend=%s,to=%s} = %v", u, to, n)
			}
			if mid, end := transitionsTo(t, midScrape, u, to), transitionsTo(t, endScrape, u, to); end < mid {
				t.Errorf("transition counter went backwards for %s to=%s: %v -> %v", u, to, mid, end)
			}
		}
		if s, ok := endScrape.Value("sage_gateway_breaker_state", map[string]string{"backend": u}); !ok || s != 0 {
			t.Errorf("sage_gateway_breaker_state{backend=%s} = %v, want 0 (closed)", u, s)
		}
	}
	if mid, _ := midScrape.Value("sage_gateway_retries_total", nil); mid == 0 {
		t.Error("zero failover retries in /metrics while two replicas were faulty")
	} else if end, _ := endScrape.Value("sage_gateway_retries_total", nil); end < mid {
		t.Errorf("sage_gateway_retries_total went backwards: %v -> %v", mid, end)
	}
	if got, _ := endScrape.Value("sage_gateway_retries_total", nil); got != float64(st.Retries) {
		t.Errorf("/metrics retries %v, /gateway/status retries %d — the views diverged", got, st.Retries)
	}
	t.Logf("chaos: %d successes, %d tolerated during convergence, %d retries, %d unroutable",
		successes.Load(), tolerated.Load(), st.Retries, st.Unroutable)
}

// TestGatewayChaosHealthLoop runs the same kill/stall scenario with the
// active health prober running: probes mark the dead replica down and
// keep the stalled one from pinning more than bounded attempts, and
// recovery is probe-driven (replicas rejoin without needing traffic to
// re-close a breaker first).
func TestGatewayChaosHealthLoop(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos e2e skipped in -short mode")
	}
	f := newFleet(t, 3, 3)
	g := f.gw(t, func(c *Config) {
		c.AttemptTimeout = time.Second
		c.HealthInterval = 25 * time.Millisecond
		c.Breaker = BreakerConfig{FailThreshold: 3, Cooldown: 250 * time.Millisecond}
	})
	g.Start()
	defer g.Stop()
	gsrv := httptest.NewServer(g.Handler())
	defer gsrv.Close()

	want := f.canon(t, http.MethodGet, "/models", "")

	// Kill replica 0 and stall replica 1 (status probes included: a
	// hung /replica/status looks exactly like a stalled process).
	f.injs[0].Set(faulty.Rule{Mode: faulty.Reset})
	f.injs[1].Set(faulty.Rule{Mode: faulty.Hang})

	stateOf := func(url string) string {
		for _, b := range g.Status().Backends {
			if b.URL == url {
				return b.State
			}
		}
		return "?"
	}
	deadline := time.Now().Add(5 * time.Second)
	for stateOf(f.urls[0]) != "down" || stateOf(f.urls[1]) != "down" {
		if time.Now().After(deadline) {
			t.Fatalf("probes never marked the faulty replicas down: %+v", g.Status().Backends)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// With the probe view converged, every request must succeed.
	for i := 0; i < 20; i++ {
		code, body, err := doReq(t, gsrv.Client(), http.MethodGet, gsrv.URL+"/models", "")
		if err != nil || code != http.StatusOK || !bytes.Equal(body, want) {
			t.Fatalf("request %d with two replicas down: %d %v", i, code, err)
		}
	}

	// Recovery is probe-driven: clear the faults and wait for both
	// replicas to be healthy again without sending any traffic.
	f.injs[0].Clear()
	f.injs[1].Clear()
	deadline = time.Now().Add(5 * time.Second)
	for stateOf(f.urls[0]) != "healthy" || stateOf(f.urls[1]) != "healthy" {
		if time.Now().After(deadline) {
			t.Fatalf("probes never saw the recovery: %+v", g.Status().Backends)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestGatewayAdmissionShedsUnderSaturation floods the gateway with
// batch traffic far beyond its admission bound and pins the
// shed-before-collapse behavior: the bounded in-flight limit is never
// exceeded at the backend, excess load is refused *fast* with 503 +
// Retry-After (never queued), and cheap reads keep flowing throughout.
func TestGatewayAdmissionShedsUnderSaturation(t *testing.T) {
	if testing.Short() {
		t.Skip("saturation test skipped in -short mode")
	}
	// One replica whose batch endpoint takes ~30ms, behind a middleware
	// that measures true backend concurrency.
	f := newFleet(t, 1, 1)
	var cur, peak atomic.Int64
	inner := f.srvs[0].Config.Handler // injector over replica handler
	meter := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/predict/batch" {
			n := cur.Add(1)
			for {
				p := peak.Load()
				if n <= p || peak.CompareAndSwap(p, n) {
					break
				}
			}
			defer cur.Add(-1)
		}
		inner.ServeHTTP(w, r)
	})
	msrv := httptest.NewServer(meter)
	defer msrv.Close()
	f.injs[0].Set(faulty.Rule{Path: "/predict/batch", Mode: faulty.Pass, Latency: 30 * time.Millisecond})

	limits := Limits{Read: 8, Predict: 8, Batch: 4}
	g, err := New(Config{
		Backends:       []string{msrv.URL},
		AttemptTimeout: 5 * time.Second,
		Limits:         limits,
	})
	if err != nil {
		t.Fatal(err)
	}
	gsrv := httptest.NewServer(g.Handler())
	defer gsrv.Close()

	const clients, perClient = 40, 5
	var (
		accepted, shed atomic.Int64
		slowShed       atomic.Int64
		wg             sync.WaitGroup
	)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			client := &http.Client{Timeout: 10 * time.Second}
			for i := 0; i < perClient; i++ {
				start := time.Now()
				req, _ := http.NewRequest(http.MethodPost, gsrv.URL+"/predict/batch?model=m", bytes.NewBufferString(batchBody))
				resp, err := client.Do(req)
				if err != nil {
					t.Error(err)
					return
				}
				switch resp.StatusCode {
				case http.StatusOK:
					accepted.Add(1)
				case http.StatusServiceUnavailable:
					shed.Add(1)
					if resp.Header.Get("Retry-After") == "" {
						t.Error("shed 503 without a Retry-After header")
					}
					// A shed must be an immediate refusal, not a queued
					// request that timed out: generous CI bound, but far
					// below any queueing delay.
					if time.Since(start) > 2*time.Second {
						slowShed.Add(1)
					}
				default:
					t.Errorf("unexpected status %d under saturation", resp.StatusCode)
				}
				resp.Body.Close()
			}
		}()
	}
	// Reads keep being admitted while batch saturates.
	readOK := make(chan int64, 1)
	go func() {
		var ok int64
		client := &http.Client{Timeout: 10 * time.Second}
		for i := 0; i < 20; i++ {
			code, _, err := doReq(t, client, http.MethodGet, gsrv.URL+"/models", "")
			if err == nil && code == http.StatusOK {
				ok++
			}
			time.Sleep(5 * time.Millisecond)
		}
		readOK <- ok
	}()
	wg.Wait()

	if accepted.Load() == 0 {
		t.Fatal("saturation shed everything — no batch request was ever admitted")
	}
	if shed.Load() == 0 {
		t.Fatalf("offered load of %d batch requests over a limit of %d produced zero sheds", clients*perClient, limits.Batch)
	}
	if slowShed.Load() != 0 {
		t.Errorf("%d shed responses were slow — sheds must be immediate refusals", slowShed.Load())
	}
	if p := peak.Load(); p > int64(limits.Batch) {
		t.Errorf("backend saw %d concurrent batch requests, admission bound is %d", p, limits.Batch)
	}
	if ok := <-readOK; ok < 15 {
		t.Errorf("only %d/20 reads admitted during batch saturation — cost-ordered shedding is not protecting reads", ok)
	}
	if sc := g.Status().Shed; sc["batch"] == 0 {
		t.Error("status report shows zero batch sheds after a saturating load")
	}
	// The shed counter in /metrics is the same series the status report
	// reads; it must equal both the status view and the 503s clients saw.
	fams := scrapeGateway(t, gsrv.URL)
	if got, _ := fams.Value("sage_gateway_shed_total", map[string]string{"class": "batch"}); got != float64(shed.Load()) {
		t.Errorf("sage_gateway_shed_total{class=batch} = %v, clients counted %d sheds", got, shed.Load())
	} else if got != float64(g.Status().Shed["batch"]) {
		t.Errorf("/metrics sheds %v, /gateway/status sheds %d — the views diverged", got, g.Status().Shed["batch"])
	}
	t.Logf("saturation: %d accepted, %d shed, backend peak concurrency %d/%d",
		accepted.Load(), shed.Load(), peak.Load(), limits.Batch)
}

// BenchmarkGatewayProxyOverhead measures the gateway's added cost on the
// hot read path: a full proxied GET (admission + routing + forward +
// buffer + verify) against a healthy single-backend fleet.
func BenchmarkGatewayProxyOverhead(b *testing.B) {
	f := newFleet(b, 1, 1)
	g := f.gw(b)
	gsrv := httptest.NewServer(g.Handler())
	defer gsrv.Close()

	client := &http.Client{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		code, _, err := doReq(b, client, http.MethodGet, gsrv.URL+"/models", "")
		if err != nil || code != http.StatusOK {
			b.Fatalf("proxied request failed: %d %v", code, err)
		}
	}
}
