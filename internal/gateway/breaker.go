package gateway

import (
	"sync"
	"time"
)

// BreakerState is a circuit breaker's position.
type BreakerState int

const (
	// BreakerClosed: requests flow; consecutive failures are counted.
	BreakerClosed BreakerState = iota
	// BreakerOpen: requests are refused until the cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen: exactly one probe request is allowed through;
	// its outcome decides between Closed and Open.
	BreakerHalfOpen
)

// String names the state for status reports.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return "unknown"
	}
}

// BreakerConfig tunes one backend's circuit breaker.
type BreakerConfig struct {
	// FailThreshold is how many consecutive failures trip the breaker
	// (default 5).
	FailThreshold int
	// Cooldown is how long an open breaker refuses traffic before
	// letting one half-open probe through (default 5s).
	Cooldown time.Duration
}

func (c *BreakerConfig) applyDefaults() {
	if c.FailThreshold <= 0 {
		c.FailThreshold = 5
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 5 * time.Second
	}
}

// Breaker is a per-backend circuit breaker: closed → open after
// FailThreshold consecutive failures → half-open after Cooldown, where a
// single probe request decides — success re-closes, failure re-opens for
// another cooldown. Every Allow() == true must be paired with exactly
// one Record(): the half-open probe slot is reserved by Allow and
// released by Record.
type Breaker struct {
	cfg BreakerConfig
	now func() time.Time
	// onTransition, when set, observes every state change. It is called
	// with the breaker's lock held — so transitions are reported in the
	// order they happen — and must not call back into the breaker.
	onTransition func(from, to BreakerState)

	mu       sync.Mutex
	state    BreakerState
	fails    int
	openedAt time.Time
	probing  bool
}

// OnTransition installs the state-change observer (transition counters
// and structured logs). Call before the breaker is shared between
// goroutines; the field is written without synchronization.
func (b *Breaker) OnTransition(fn func(from, to BreakerState)) {
	b.onTransition = fn
}

// setStateLocked moves the breaker to state to, notifying the
// transition observer. Caller holds mu.
func (b *Breaker) setStateLocked(to BreakerState) {
	if b.state == to {
		return
	}
	from := b.state
	b.state = to
	if b.onTransition != nil {
		b.onTransition(from, to)
	}
}

// NewBreaker returns a closed breaker. A zero config gets defaults.
func NewBreaker(cfg BreakerConfig) *Breaker {
	cfg.applyDefaults()
	return &Breaker{cfg: cfg, now: time.Now}
}

// Allow reports whether a request may proceed, transitioning
// open → half-open once the cooldown has elapsed. In half-open, only the
// single probe is admitted; concurrent requests are refused until the
// probe's Record call settles the state.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if b.now().Sub(b.openedAt) < b.cfg.Cooldown {
			return false
		}
		b.setStateLocked(BreakerHalfOpen)
		b.probing = true
		return true
	default: // half-open
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
}

// Record reports one allowed request's outcome.
func (b *Breaker) Record(ok bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		if ok {
			b.fails = 0
			return
		}
		b.fails++
		if b.fails >= b.cfg.FailThreshold {
			b.setStateLocked(BreakerOpen)
			b.openedAt = b.now()
		}
	case BreakerHalfOpen:
		b.probing = false
		if ok {
			b.setStateLocked(BreakerClosed)
			b.fails = 0
		} else {
			b.setStateLocked(BreakerOpen)
			b.openedAt = b.now()
		}
	case BreakerOpen:
		// A request admitted before the trip finished late; its outcome
		// carries no new information about the now-open circuit.
	}
}

// State reports the breaker's position (transitioning open → half-open
// is left to Allow, so a quiescent open breaker reads as open even after
// its cooldown elapsed).
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}
