package gateway

import (
	"net/http"
	"strings"
	"sync/atomic"

	"repro/internal/metrics"
)

// Class buckets requests by cost for admission control. The gateway's
// shed policy is cost-ordered: under pressure the expensive batch work
// is refused first, the cheap immutable reads last — a platform that is
// overloaded should degrade into a read-only cache, not collapse.
type Class int

const (
	// ClassRead: immutable GETs (model list, provenance, feature
	// tables, status) — cheap, often pre-encoded server-side.
	ClassRead Class = iota
	// ClassPredict: single-row POST /predict — one model evaluation.
	ClassPredict
	// ClassBatch: POST /predict/batch — up to thousands of rows per
	// request, the most expensive thing the serving tier does.
	ClassBatch
	numClasses
)

// String names the class for status reports.
func (c Class) String() string {
	switch c {
	case ClassRead:
		return "read"
	case ClassPredict:
		return "predict"
	case ClassBatch:
		return "batch"
	default:
		return "unknown"
	}
}

// Classify buckets one request.
func Classify(r *http.Request) Class {
	if r.Method == http.MethodPost && strings.HasPrefix(r.URL.Path, "/predict") {
		if strings.HasPrefix(r.URL.Path, "/predict/batch") {
			return ClassBatch
		}
		return ClassPredict
	}
	return ClassRead
}

// Limits bounds in-flight requests per class. Zero fields get defaults
// sized so reads vastly outnumber batch work, mirroring their cost gap.
type Limits struct {
	Read    int // default 256
	Predict int // default 128
	Batch   int // default 16
}

func (l *Limits) applyDefaults() {
	if l.Read <= 0 {
		l.Read = 256
	}
	if l.Predict <= 0 {
		l.Predict = 128
	}
	if l.Batch <= 0 {
		l.Batch = 16
	}
}

// admission is the gateway's load-shedding front door: a bounded
// in-flight semaphore per route class, plus a global bound with a soft
// threshold that sheds batch work early. Admission never queues — a
// request either gets a slot now or is refused now (fast 503 +
// Retry-After), so offered load beyond capacity cannot build an
// unbounded queue whose latency collapses every class at once.
type admission struct {
	sems [numClasses]chan struct{}
	// global counts all admitted in-flight requests; globalLimit is the
	// sum of the class limits, batchSoft the fraction of it above which
	// batch requests are shed even if their own class has room.
	global      atomic.Int64
	globalLimit int64
	batchSoft   int64
	// shed counters live in the gateway's metric registry — the status
	// report reads the same series /metrics exposes, so the two can
	// never drift. Handles are pre-resolved per class; admit never does
	// a registry lookup.
	shed [numClasses]*metrics.Counter
}

func newAdmission(l Limits, reg *metrics.Registry) *admission {
	l.applyDefaults()
	a := &admission{}
	a.sems[ClassRead] = make(chan struct{}, l.Read)
	a.sems[ClassPredict] = make(chan struct{}, l.Predict)
	a.sems[ClassBatch] = make(chan struct{}, l.Batch)
	for c := Class(0); c < numClasses; c++ {
		a.shed[c] = reg.Counter("sage_gateway_shed_total",
			"Requests refused by admission control, by route class.",
			metrics.Label{Name: "class", Value: c.String()})
	}
	reg.GaugeFunc("sage_gateway_inflight_requests",
		"Admitted requests currently in flight (all classes).",
		func() float64 { return float64(a.global.Load()) })
	a.globalLimit = int64(l.Read + l.Predict + l.Batch)
	// Shed-before-collapse ordering: once the gateway as a whole is ¾
	// full, new batch work is refused so the remaining capacity keeps
	// serving cheap reads and single predictions.
	a.batchSoft = a.globalLimit * 3 / 4
	return a
}

// admit tries to take an in-flight slot for class without blocking. On
// success it returns a release func (call exactly once); on refusal it
// returns ok=false and counts the shed.
func (a *admission) admit(class Class) (release func(), ok bool) {
	if a.global.Load() >= a.globalLimit ||
		(class == ClassBatch && a.global.Load() >= a.batchSoft) {
		a.shed[class].Inc()
		return nil, false
	}
	select {
	case a.sems[class] <- struct{}{}:
		a.global.Add(1)
		return func() {
			<-a.sems[class]
			a.global.Add(-1)
		}, true
	default:
		a.shed[class].Inc()
		return nil, false
	}
}

// shedCounts snapshots the per-class shed counters (a view over the
// registry series).
func (a *admission) shedCounts() map[string]int64 {
	out := make(map[string]int64, int(numClasses))
	for c := Class(0); c < numClasses; c++ {
		out[c.String()] = int64(a.shed[c].Value())
	}
	return out
}
