package criteo

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/ml"
	"repro/internal/rng"
)

func TestGenerateDeterministic(t *testing.T) {
	a := NewGenerator(Config{}, 3).Generate(100, 0, 24)
	b := NewGenerator(Config{}, 3).Generate(100, 0, 24)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("impression %d differs between same-seed generators", i)
		}
	}
}

func TestSharedGroundTruthAcrossSeeds(t *testing.T) {
	// Different seeds draw different samples from the SAME task: a model
	// trained on seed A must transfer to data from seed B.
	train := Featurize(NewGenerator(Config{}, 10).Generate(60000, 0, 24))
	test := Featurize(NewGenerator(Config{}, 11).Generate(20000, 0, 24))
	m := ml.NewLogisticRegression(FeatureDim)
	ml.TrainSGD(m, train, ml.SGDConfig{LearningRate: 0.1, Epochs: 3, BatchSize: 256}, rng.New(12))
	acc := ml.Accuracy(m, test)
	naive := ml.Accuracy(ml.NaiveMajorityModel(train), test)
	if acc <= naive+0.01 {
		t.Errorf("cross-seed accuracy %v not above naive %v: task not shared", acc, naive)
	}
}

func TestFeaturizeShape(t *testing.T) {
	imps := NewGenerator(Config{}, 4).Generate(500, 5, 10)
	ds := Featurize(imps)
	if ds.Len() != 500 || ds.FeatureDim() != FeatureDim {
		t.Fatalf("Len=%d dim=%d", ds.Len(), ds.FeatureDim())
	}
	for _, ex := range ds.Examples {
		if ex.Label != 0 && ex.Label != 1 {
			t.Fatalf("label %v not binary", ex.Label)
		}
		if ex.Time < 5 || ex.Time >= 15 {
			t.Fatalf("time %d outside span", ex.Time)
		}
		// Each categorical group has exactly one active column.
		for c := 0; c < NumCategorical; c++ {
			base := NumNumeric + c*(TopValues+1)
			ones := 0
			for v := 0; v <= TopValues; v++ {
				if ex.Features[base+v] == 1 {
					ones++
				}
			}
			if ones != 1 {
				t.Fatalf("categorical %d has %d active columns", c, ones)
			}
		}
	}
}

func TestNumericFeatureRange(t *testing.T) {
	imps := NewGenerator(Config{}, 5).Generate(2000, 0, 1)
	for _, imp := range imps {
		for j, v := range imp.Numeric {
			if v < 0 || v > 1 || math.IsNaN(v) {
				t.Fatalf("numeric feature %d = %v", j, v)
			}
		}
		for c, v := range imp.Categorical {
			if v < 0 || v >= cardinality(c) {
				t.Fatalf("categorical %d = %d outside cardinality %d", c, v, cardinality(c))
			}
		}
	}
}

func TestZipfSkew(t *testing.T) {
	imps := NewGenerator(Config{}, 6).Generate(20000, 0, 1)
	// Value 0 of any categorical should be much more frequent than a
	// mid-cardinality value.
	zeros, mids := 0, 0
	for _, imp := range imps {
		if imp.Categorical[4] == 0 {
			zeros++
		}
		if imp.Categorical[4] == cardinality(4)/2 {
			mids++
		}
	}
	if zeros <= mids*5 {
		t.Errorf("value 0 count %d not ≫ mid-value count %d", zeros, mids)
	}
}

// TestCalibrationAnchors pins the generator to the paper's anchors: CTR
// ≈ 25.7% (majority-class accuracy 74.3%) and the best model visibly
// above the baseline but below ~0.82 so the paper's target range
// [0.74, 0.78] stays discriminative.
func TestCalibrationAnchors(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration check trains on 100K samples")
	}
	gen := NewGenerator(Config{}, 20)
	train := Featurize(gen.Generate(100000, 0, 24*30))
	test := Featurize(NewGenerator(Config{}, 21).Generate(30000, 0, 24*30))
	ctr := train.MeanLabel()
	if math.Abs(ctr-0.257) > 0.03 {
		t.Errorf("CTR = %v, want ≈ 0.257 (paper)", ctr)
	}
	naive := ml.Accuracy(ml.NaiveMajorityModel(train), test)
	if math.Abs(naive-0.743) > 0.03 {
		t.Errorf("naive accuracy = %v, want ≈ 0.743 (paper)", naive)
	}
	m := ml.NewLogisticRegression(FeatureDim)
	ml.TrainSGD(m, train, ml.SGDConfig{LearningRate: 0.1, Epochs: 3, BatchSize: 512}, rng.New(22))
	acc := ml.Accuracy(m, test)
	if acc < naive+0.02 {
		t.Errorf("LG accuracy %v barely above naive %v", acc, naive)
	}
	if acc > 0.83 {
		t.Errorf("LG accuracy %v too high: targets up to 0.78 would be trivial", acc)
	}
}

func TestPipelineHelper(t *testing.T) {
	ds := Pipeline(300, 7, 5, 9)
	if ds.Len() != 300 || ds.FeatureDim() != FeatureDim {
		t.Fatalf("Len=%d dim=%d", ds.Len(), ds.FeatureDim())
	}
}

// Property: labels are binary and user IDs within range for any seed.
func TestGenerateInvariantsProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw)%100 + 1
		imps := NewGenerator(Config{Users: 50}, seed).Generate(n, 0, 5)
		if len(imps) != n {
			return false
		}
		for _, imp := range imps {
			if imp.UserID < 0 || imp.UserID >= 50 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
