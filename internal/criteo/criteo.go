// Package criteo implements a synthetic stand-in for the Criteo display
// advertising dataset the paper evaluates on (§5, [1]): 13 numeric ("I")
// features and 26 categorical ("C") features with power-law value
// distributions, and a binary click label from a logistic ground truth.
//
// The generator is calibrated to the paper's anchors: base click-through
// rate ≈ 25.7% (so the majority-class baseline scores ≈ 74.3% accuracy)
// and a Bayes-optimal accuracy ≈ 0.78-0.79, leaving the paper's
// achievable-target range [0.74, 0.78] meaningful. Categorical effects
// are deterministic per (feature, value) so the task is learnable across
// independently generated train/test splits.
package criteo

import (
	"math"

	"repro/internal/data"
	"repro/internal/ml"
	"repro/internal/privacy"
	"repro/internal/rng"
)

// Schema constants.
const (
	// NumNumeric is the count of numeric features (Criteo's I1-I13).
	NumNumeric = 13
	// NumCategorical is the count of categorical features (C1-C26).
	NumCategorical = 26
	// TopValues is how many frequent values of each categorical get
	// their own one-hot column; the tail shares an "other" column.
	TopValues = 5
	// FeatureDim is the encoded dimensionality: 13 numeric + 26
	// categoricals × (TopValues + 1 other).
	FeatureDim = NumNumeric + NumCategorical*(TopValues+1)
)

// Ground-truth logit calibration: logitBias shifts the marginal click
// rate toward the paper's 25.7% CTR; logitScale sets how much signal the
// features carry, which fixes the Bayes accuracy near the paper's best
// observed ≈ 0.78-0.79 (against the 0.743 majority baseline).
const (
	logitScale = 4.2
	logitBias  = -0.10
)

// cardinalities of the categorical features (power-law-ish spread, from
// tens to tens of thousands as in real Criteo).
func cardinality(c int) int {
	switch c % 5 {
	case 0:
		return 20
	case 1:
		return 100
	case 2:
		return 500
	case 3:
		return 5000
	default:
		return 20000
	}
}

// Impression is one raw ad impression.
type Impression struct {
	Numeric     [NumNumeric]float64
	Categorical [NumCategorical]int
	Click       bool
	Time        int64
	UserID      int64
}

// Config controls generation.
type Config struct {
	// Users is the number of distinct users (default 50000).
	Users int
}

// Generator produces a deterministic synthetic impression stream.
type Generator struct {
	cfg     Config
	r       *rng.RNG
	zipfs   []func() int
	numW    [NumNumeric]float64
	catW    []map[int]float64 // effect per (categorical, value)
	effectN float64           // normalizer keeping logits in range
}

// NewGenerator returns a calibrated generator.
func NewGenerator(cfg Config, seed uint64) *Generator {
	if cfg.Users <= 0 {
		cfg.Users = 50000
	}
	g := &Generator{cfg: cfg, r: rng.New(seed)}
	// Ground-truth parameters come from a *fixed* seed so that any two
	// generators produce the same learnable task; only the sampling
	// noise differs by seed.
	truth := rng.New(0xC817E0)
	g.zipfs = make([]func() int, NumCategorical)
	g.catW = make([]map[int]float64, NumCategorical)
	for c := 0; c < NumCategorical; c++ {
		g.zipfs[c] = g.r.Zipf(cardinality(c), 1.15)
		g.catW[c] = make(map[int]float64, TopValues+1)
		// Only the frequent values carry signal; the long tail is
		// noise (mirrors how real Criteo models behave).
		for v := 0; v <= TopValues; v++ {
			g.catW[c][v] = truth.Normal(0, 0.55)
		}
	}
	for i := 0; i < NumNumeric; i++ {
		g.numW[i] = truth.Normal(0, 0.5)
	}
	g.effectN = math.Sqrt(float64(NumNumeric + NumCategorical))
	return g
}

// logit returns the ground-truth click logit for an impression.
func (g *Generator) logit(imp *Impression) float64 {
	z := 0.0
	for i := 0; i < NumNumeric; i++ {
		z += g.numW[i] * (imp.Numeric[i] - 0.5) * 2
	}
	for c := 0; c < NumCategorical; c++ {
		v := imp.Categorical[c]
		if v > TopValues {
			v = TopValues // tail shares the "other" effect
		}
		z += g.catW[c][v]
	}
	// Scale to a moderate signal and shift to hit CTR ≈ 0.257.
	return z*logitScale/g.effectN + logitBias
}

// Generate returns n impressions spread uniformly over
// [startTime, startTime+span).
func (g *Generator) Generate(n int, startTime, span int64) []Impression {
	if span <= 0 {
		span = 1
	}
	out := make([]Impression, n)
	for i := range out {
		imp := &out[i]
		imp.Time = startTime + int64(float64(span)*float64(i)/float64(n))
		imp.UserID = int64(g.r.IntN(g.cfg.Users))
		for j := 0; j < NumNumeric; j++ {
			// Lognormal-ish counts squashed into [0, 1].
			raw := g.r.LogNormal(0, 1)
			imp.Numeric[j] = privacy.Clip(math.Log1p(raw)/3, 0, 1)
		}
		for c := 0; c < NumCategorical; c++ {
			imp.Categorical[c] = g.zipfs[c]()
		}
		imp.Click = g.r.Bool(ml.Sigmoid(g.logit(imp)))
	}
	return out
}

// Featurize encodes impressions: numeric features pass through; each
// categorical becomes TopValues+1 one-hot columns (frequent values get
// their own column, the tail shares "other"). Labels are 1 for clicks.
func Featurize(imps []Impression) *data.Dataset {
	ds := &data.Dataset{Examples: make([]data.Example, 0, len(imps))}
	for i := range imps {
		imp := &imps[i]
		f := make([]float64, FeatureDim)
		copy(f, imp.Numeric[:])
		base := NumNumeric
		for c := 0; c < NumCategorical; c++ {
			v := imp.Categorical[c]
			if v > TopValues {
				v = TopValues
			}
			f[base+v] = 1
			base += TopValues + 1
		}
		label := 0.0
		if imp.Click {
			label = 1
		}
		ds.Append(data.Example{Features: f, Label: label, Time: imp.Time, UserID: imp.UserID})
	}
	return ds
}

// Pipeline bundles generation and featurization.
func Pipeline(n int, startTime, span int64, seed uint64) *data.Dataset {
	gen := NewGenerator(Config{}, seed)
	return Featurize(gen.Generate(n, startTime, span))
}
