package privacy

import (
	"math"
	"testing"
	"testing/quick"
)

func TestGaussianRDPUnsampled(t *testing.T) {
	// RDP of Gaussian at order α is α/(2σ²).
	if got, want := gaussianRDP(2, 8), 1.0; math.Abs(got-want) > 1e-12 {
		t.Errorf("gaussianRDP = %v, want %v", got, want)
	}
}

func TestSampledGaussianLimits(t *testing.T) {
	// q=0: no data touched, zero RDP.
	if got := sampledGaussianRDP(0, 1, 4); got != 0 {
		t.Errorf("q=0 RDP = %v, want 0", got)
	}
	// q=1: full batch, equals unsampled Gaussian.
	if got, want := sampledGaussianRDP(1, 2, 8), gaussianRDP(2, 8); math.Abs(got-want) > 1e-12 {
		t.Errorf("q=1 RDP = %v, want %v", got, want)
	}
	// Subsampling amplifies privacy: q=0.01 must be far below unsampled.
	sub := sampledGaussianRDP(0.01, 1, 8)
	full := gaussianRDP(1, 8)
	if sub >= full/10 {
		t.Errorf("subsampled RDP %v not ≪ full %v", sub, full)
	}
}

func TestSampledGaussianMonotoneInQ(t *testing.T) {
	prev := 0.0
	for _, q := range []float64{0.001, 0.01, 0.05, 0.1, 0.5, 1.0} {
		cur := sampledGaussianRDP(q, 1.5, 16)
		if cur < prev {
			t.Errorf("RDP not monotone in q at q=%v: %v < %v", q, cur, prev)
		}
		prev = cur
	}
}

func TestRDPAccountantComposesLinearly(t *testing.T) {
	a1 := NewRDPAccountant()
	a1.AddSampledGaussianSteps(0.01, 1.1, 1000)
	a2 := NewRDPAccountant()
	for i := 0; i < 10; i++ {
		a2.AddSampledGaussianSteps(0.01, 1.1, 100)
	}
	e1, e2 := a1.Epsilon(1e-5), a2.Epsilon(1e-5)
	if math.Abs(e1-e2) > 1e-9 {
		t.Errorf("split accounting differs: %v vs %v", e1, e2)
	}
}

func TestEpsilonDecreasesWithSigma(t *testing.T) {
	plan := SGDPlan{N: 100000, BatchSize: 1000, Epochs: 3}
	prev := math.Inf(1)
	for _, sigma := range []float64{0.6, 1.0, 2.0, 4.0, 8.0} {
		eps := SGDEpsilon(plan, sigma, 1e-6)
		if eps >= prev {
			t.Errorf("ε not decreasing in σ at σ=%v: %v >= %v", sigma, eps, prev)
		}
		prev = eps
	}
}

func TestCalibrateSGDNoise(t *testing.T) {
	plan := SGDPlan{N: 50000, BatchSize: 512, Epochs: 3}
	const eps, delta = 1.0, 1e-6
	sigma := CalibrateSGDNoise(plan, eps, delta)
	got := SGDEpsilon(plan, sigma, delta)
	if got > eps {
		t.Errorf("calibrated σ=%v yields ε=%v > target %v", sigma, got, eps)
	}
	// Tightness: slightly smaller sigma should violate the target.
	if loose := SGDEpsilon(plan, sigma*0.98, delta); loose <= eps {
		t.Errorf("σ·0.98 still satisfies target (ε=%v): calibration too loose", loose)
	}
}

func TestCalibrateMoreEpochsNeedsMoreNoise(t *testing.T) {
	base := SGDPlan{N: 50000, BatchSize: 512, Epochs: 1}
	long := SGDPlan{N: 50000, BatchSize: 512, Epochs: 10}
	s1 := CalibrateSGDNoise(base, 1, 1e-6)
	s2 := CalibrateSGDNoise(long, 1, 1e-6)
	if s2 <= s1 {
		t.Errorf("10 epochs σ=%v not > 1 epoch σ=%v", s2, s1)
	}
}

func TestSGDPlanSteps(t *testing.T) {
	p := SGDPlan{N: 1000, BatchSize: 128, Epochs: 2}
	if got := p.Steps(); got != 16 { // ceil(1000/128)=8 per epoch × 2
		t.Errorf("Steps = %d, want 16", got)
	}
	if got := p.SamplingRate(); got != 0.128 {
		t.Errorf("SamplingRate = %v, want 0.128", got)
	}
	if (SGDPlan{}).Steps() != 0 {
		t.Error("empty plan should have 0 steps")
	}
	big := SGDPlan{N: 10, BatchSize: 100, Epochs: 1}
	if big.SamplingRate() != 1 {
		t.Error("sampling rate should clamp at 1")
	}
}

func TestLogComb(t *testing.T) {
	// C(10, 3) = 120.
	if got := math.Exp(logComb(10, 3)); math.Abs(got-120) > 1e-9 {
		t.Errorf("C(10,3) = %v, want 120", got)
	}
	if got := math.Exp(logComb(5, 0)); math.Abs(got-1) > 1e-12 {
		t.Errorf("C(5,0) = %v, want 1", got)
	}
}

// Property: more steps never decreases epsilon.
func TestEpsilonMonotoneInStepsProperty(t *testing.T) {
	f := func(rawSteps uint8, rawSigma uint8) bool {
		steps := int(rawSteps) + 1
		sigma := float64(rawSigma)/64 + 0.7
		a := NewRDPAccountant()
		a.AddSampledGaussianSteps(0.05, sigma, steps)
		e1 := a.Epsilon(1e-6)
		a.AddSampledGaussianSteps(0.05, sigma, 10)
		e2 := a.Epsilon(1e-6)
		return e2 >= e1-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: converting RDP to (ε, δ) is monotone in δ — smaller δ means
// larger ε.
func TestEpsilonMonotoneInDeltaProperty(t *testing.T) {
	a := NewRDPAccountant()
	a.AddSampledGaussianSteps(0.01, 1.0, 500)
	f := func(rawD uint8) bool {
		d := math.Pow(10, -(float64(rawD%8) + 2)) // 1e-2 … 1e-9
		return a.Epsilon(d/10) >= a.Epsilon(d)-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
