package privacy_test

import (
	"fmt"

	"repro/internal/privacy"
	"repro/internal/rng"
)

// ExampleLaplaceMechanism releases a count with (ε, 0)-DP.
func ExampleLaplaceMechanism() {
	m := privacy.LaplaceMechanism{Sensitivity: 1, Epsilon: 0.5}
	r := rng.New(1)
	noisy := m.Release(1000, r)
	fmt.Println("within ±50:", noisy > 950 && noisy < 1050)
	fmt.Println("cost:", m.Cost())
	// Output:
	// within ±50: true
	// cost: (ε=0.5, δ=0)
}

// ExampleCalibrateSGDNoise computes the DP-SGD noise multiplier for a
// training plan, as TensorFlow Privacy does for the paper's pipelines.
func ExampleCalibrateSGDNoise() {
	plan := privacy.SGDPlan{N: 100000, BatchSize: 512, Epochs: 3}
	sigma := privacy.CalibrateSGDNoise(plan, 1.0, 1e-6)
	eps := privacy.SGDEpsilon(plan, sigma, 1e-6)
	fmt.Println("guarantee holds:", eps <= 1.0)
	fmt.Println("sigma positive:", sigma > 0)
	// Output:
	// guarantee holds: true
	// sigma positive: true
}

// ExampleStrongCompose contrasts basic and strong composition for many
// small queries.
func ExampleStrongCompose() {
	spends := make([]privacy.Budget, 100)
	for i := range spends {
		spends[i] = privacy.Budget{Epsilon: 0.01}
	}
	basic := privacy.BasicCompose(spends)
	strong := privacy.StrongCompose(spends, 1e-6)
	fmt.Printf("basic ε = %.2f\n", basic.Epsilon)
	fmt.Println("strong tighter:", strong.Epsilon < basic.Epsilon)
	// Output:
	// basic ε = 1.00
	// strong tighter: true
}
