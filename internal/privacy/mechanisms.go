package privacy

import (
	"fmt"
	"math"

	"repro/internal/rng"
)

// LaplaceMechanism releases value + Laplace(0, sensitivity/ε), which is
// (ε, 0)-DP for a query with the given L1 sensitivity (Dwork et al. 2006).
type LaplaceMechanism struct {
	Sensitivity float64 // L1 sensitivity of the query
	Epsilon     float64 // privacy parameter ε > 0
}

// Scale returns the Laplace noise scale sensitivity/ε.
func (m LaplaceMechanism) Scale() float64 {
	if m.Epsilon <= 0 || m.Sensitivity < 0 {
		panic(fmt.Sprintf("privacy: invalid Laplace mechanism s=%v ε=%v", m.Sensitivity, m.Epsilon))
	}
	return m.Sensitivity / m.Epsilon
}

// Release returns a DP release of value.
func (m LaplaceMechanism) Release(value float64, r *rng.RNG) float64 {
	return value + r.Laplace(0, m.Scale())
}

// ReleaseVector adds independent Laplace noise to each coordinate. The
// sensitivity must be the L1 sensitivity of the whole vector.
func (m LaplaceMechanism) ReleaseVector(values []float64, r *rng.RNG) []float64 {
	out := make([]float64, len(values))
	scale := m.Scale()
	for i, v := range values {
		out[i] = v + r.Laplace(0, scale)
	}
	return out
}

// Cost returns the (ε, 0) budget consumed by one release.
func (m LaplaceMechanism) Cost() Budget { return Budget{Epsilon: m.Epsilon} }

// TailBound returns t such that a single Laplace(0, scale) draw is below
// -t (or above +t) with probability at most eta. Sage's validators use it
// to correct DP estimates for the worst-case impact of noise (Listing 2):
// P(Laplace(0,b) < -b·ln(1/(2η))) = η for η <= 1/2.
func (m LaplaceMechanism) TailBound(eta float64) float64 {
	if eta <= 0 || eta >= 1 {
		panic("privacy: TailBound requires eta in (0,1)")
	}
	return m.Scale() * math.Log(1/(2*eta))
}

// GaussianMechanism releases value + N(0, σ²) with
// σ = sensitivity·sqrt(2·ln(1.25/δ))/ε, which is (ε, δ)-DP for ε in (0, 1]
// (Dwork & Roth 2014, Thm 3.22). Sensitivity is the L2 sensitivity.
type GaussianMechanism struct {
	Sensitivity float64
	Epsilon     float64
	Delta       float64
}

// Sigma returns the Gaussian noise standard deviation.
func (m GaussianMechanism) Sigma() float64 {
	if m.Epsilon <= 0 || m.Delta <= 0 || m.Delta >= 1 || m.Sensitivity < 0 {
		panic(fmt.Sprintf("privacy: invalid Gaussian mechanism s=%v ε=%v δ=%v",
			m.Sensitivity, m.Epsilon, m.Delta))
	}
	return m.Sensitivity * math.Sqrt(2*math.Log(1.25/m.Delta)) / m.Epsilon
}

// Release returns a DP release of value.
func (m GaussianMechanism) Release(value float64, r *rng.RNG) float64 {
	return value + r.Normal(0, m.Sigma())
}

// ReleaseVector adds independent Gaussian noise to each coordinate; the
// sensitivity must be the L2 sensitivity of the whole vector.
func (m GaussianMechanism) ReleaseVector(values []float64, r *rng.RNG) []float64 {
	out := make([]float64, len(values))
	sigma := m.Sigma()
	for i, v := range values {
		out[i] = v + r.Normal(0, sigma)
	}
	return out
}

// Cost returns the (ε, δ) budget consumed by one release.
func (m GaussianMechanism) Cost() Budget { return Budget{Epsilon: m.Epsilon, Delta: m.Delta} }

// TailBound returns t such that one Gaussian noise draw is below -t with
// probability at most eta (one-sided): t = σ·Φ^{-1}(1-η) approximated via
// the standard bound t = σ·sqrt(2·ln(1/η)).
func (m GaussianMechanism) TailBound(eta float64) float64 {
	if eta <= 0 || eta >= 1 {
		panic("privacy: TailBound requires eta in (0,1)")
	}
	return m.Sigma() * math.Sqrt(2*math.Log(1/eta))
}

// Clip returns x clipped to [lo, hi]. Clipping bounds the sensitivity of
// sums over user-supplied values and is used throughout the validators.
func Clip(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// ClipL2 scales vector v in place so its L2 norm is at most bound, and
// returns the original norm. This is the per-example gradient clipping step
// of DP-SGD (Abadi et al. 2016).
func ClipL2(v []float64, bound float64) float64 {
	if bound <= 0 {
		panic("privacy: ClipL2 requires bound > 0")
	}
	sq := 0.0
	for _, x := range v {
		sq += x * x
	}
	norm := math.Sqrt(sq)
	if norm > bound {
		f := bound / norm
		for i := range v {
			v[i] *= f
		}
	}
	return norm
}
