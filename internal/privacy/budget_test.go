package privacy

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewBudgetValidation(t *testing.T) {
	cases := []struct {
		eps, delta float64
		ok         bool
	}{
		{1, 1e-6, true},
		{0, 0, true},
		{0, 1, true},
		{-1, 0, false},
		{1, -0.1, false},
		{1, 1.1, false},
		{math.NaN(), 0, false},
		{1, math.NaN(), false},
		{math.Inf(1), 0, false},
	}
	for _, c := range cases {
		_, err := NewBudget(c.eps, c.delta)
		if (err == nil) != c.ok {
			t.Errorf("NewBudget(%v, %v) err=%v, want ok=%v", c.eps, c.delta, err, c.ok)
		}
	}
}

func TestBudgetAddSub(t *testing.T) {
	a := MustBudget(0.5, 1e-6)
	b := MustBudget(0.25, 2e-6)
	sum := a.Add(b)
	if sum.Epsilon != 0.75 || sum.Delta != 3e-6 {
		t.Errorf("Add = %v", sum)
	}
	diff := sum.Sub(b)
	if math.Abs(diff.Epsilon-0.5) > 1e-12 || math.Abs(diff.Delta-1e-6) > 1e-18 {
		t.Errorf("Sub = %v", diff)
	}
	// Sub clamps at zero.
	z := a.Sub(MustBudget(10, 1))
	if !z.IsZero() {
		t.Errorf("clamped Sub = %v, want zero", z)
	}
}

func TestBudgetDeltaSaturates(t *testing.T) {
	a := MustBudget(1, 0.7)
	b := a.Add(a)
	if b.Delta != 1 {
		t.Errorf("delta = %v, want saturation at 1", b.Delta)
	}
}

func TestBudgetSplit(t *testing.T) {
	b := MustBudget(0.9, 3e-6)
	p := b.Split(3)
	if math.Abs(p.Epsilon-0.3) > 1e-12 || math.Abs(p.Delta-1e-6) > 1e-18 {
		t.Errorf("Split = %v", p)
	}
	total := p.Add(p).Add(p)
	if !b.Covers(total) || !total.Covers(b) {
		t.Errorf("3 parts = %v, want original %v", total, b)
	}
}

func TestBudgetCovers(t *testing.T) {
	big := MustBudget(1, 1e-5)
	small := MustBudget(0.5, 1e-6)
	if !big.Covers(small) {
		t.Error("big should cover small")
	}
	if small.Covers(big) {
		t.Error("small should not cover big")
	}
	if !big.Covers(big) {
		t.Error("budget should cover itself")
	}
	// Tolerance covers floating-point dust.
	dust := Budget{Epsilon: 1 + 1e-15, Delta: 1e-5}
	if !big.Covers(dust) {
		t.Error("tolerance should absorb 1e-15 dust")
	}
}

// Property: Add is commutative and monotone in both arguments.
func TestBudgetAddProperties(t *testing.T) {
	gen := func(e1, d1, e2, d2 uint16) (Budget, Budget) {
		a := Budget{Epsilon: float64(e1) / 1000, Delta: float64(d1) / 1e6 / 65.536}
		b := Budget{Epsilon: float64(e2) / 1000, Delta: float64(d2) / 1e6 / 65.536}
		return a, b
	}
	f := func(e1, d1, e2, d2 uint16) bool {
		a, b := gen(e1, d1, e2, d2)
		ab, ba := a.Add(b), b.Add(a)
		if ab != ba {
			return false
		}
		return ab.Covers(a) && ab.Covers(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Split(n) then n×Add reconstructs a budget that covers within
// tolerance, and each part is covered by the whole.
func TestBudgetSplitProperty(t *testing.T) {
	f := func(e uint16, d uint16, rawN uint8) bool {
		n := int(rawN)%10 + 1
		b := Budget{Epsilon: float64(e) / 100, Delta: float64(d) / 1e6 / 65.536}
		part := b.Split(n)
		if !b.Covers(part) {
			return false
		}
		total := Zero
		for i := 0; i < n; i++ {
			total = total.Add(part)
		}
		const tol = 1e-9
		return math.Abs(total.Epsilon-b.Epsilon) < tol && math.Abs(total.Delta-b.Delta) < tol
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
