package privacy

import (
	"sync"
	"testing"
)

func TestCalibrationCacheHitReturnsIdenticalSigma(t *testing.T) {
	ResetSGDCalibrationCache()
	plan := SGDPlan{N: 60000, BatchSize: 512, Epochs: 3}
	first := CalibrateSGDNoise(plan, 1.0, 1e-6)
	second := CalibrateSGDNoise(plan, 1.0, 1e-6)
	if first != second {
		t.Fatalf("cached σ %v differs from computed σ %v", second, first)
	}
	st := SGDCalibrationStats()
	if st.Misses != 1 || st.Hits != 1 {
		t.Errorf("stats = %+v, want 1 miss then 1 hit", st)
	}
	if got := st.HitRate(); got != 0.5 {
		t.Errorf("HitRate = %v, want 0.5", got)
	}
}

func TestCalibrationCacheKeysAreDistinct(t *testing.T) {
	ResetSGDCalibrationCache()
	base := SGDPlan{N: 40000, BatchSize: 256, Epochs: 2}
	variants := []struct {
		plan       SGDPlan
		eps, delta float64
	}{
		{base, 1.0, 1e-6},
		{SGDPlan{N: 40001, BatchSize: 256, Epochs: 2}, 1.0, 1e-6},
		{SGDPlan{N: 40000, BatchSize: 128, Epochs: 2}, 1.0, 1e-6},
		{SGDPlan{N: 40000, BatchSize: 256, Epochs: 4}, 1.0, 1e-6},
		{base, 0.5, 1e-6},
		{base, 1.0, 1e-7},
	}
	for _, v := range variants {
		CalibrateSGDNoise(v.plan, v.eps, v.delta)
	}
	st := SGDCalibrationStats()
	if st.Misses != uint64(len(variants)) || st.Hits != 0 {
		t.Errorf("stats = %+v, want %d distinct misses", st, len(variants))
	}
	// Tighter ε must not be served a looser key's σ.
	loose := CalibrateSGDNoise(base, 1.0, 1e-6)
	tight := CalibrateSGDNoise(base, 0.5, 1e-6)
	if tight <= loose {
		t.Errorf("σ(ε=0.5)=%v should exceed σ(ε=1)=%v", tight, loose)
	}
}

func TestCalibrationCacheConcurrent(t *testing.T) {
	ResetSGDCalibrationCache()
	plan := SGDPlan{N: 30000, BatchSize: 512, Epochs: 1}
	want := calibrateSGDNoise(plan, 1.0, 1e-6)
	var wg sync.WaitGroup
	got := make([]float64, 16)
	for w := range got {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			got[w] = CalibrateSGDNoise(plan, 1.0, 1e-6)
		}(w)
	}
	wg.Wait()
	for w, g := range got {
		if g != want {
			t.Errorf("goroutine %d got σ=%v, want %v", w, g, want)
		}
	}
	st := SGDCalibrationStats()
	if st.Hits+st.Misses != 16 {
		t.Errorf("lookups = %d, want 16", st.Hits+st.Misses)
	}
}

// BenchmarkCalibrateSGDNoiseMiss measures the full bracketing/bisection
// search the cache is saving.
func BenchmarkCalibrateSGDNoiseMiss(b *testing.B) {
	plan := SGDPlan{N: 100000, BatchSize: 1024, Epochs: 3}
	for i := 0; i < b.N; i++ {
		calibrateSGDNoise(plan, 1.0, 1e-6)
	}
}

// BenchmarkCalibrateSGDNoiseHit measures the memoized fast path.
func BenchmarkCalibrateSGDNoiseHit(b *testing.B) {
	ResetSGDCalibrationCache()
	plan := SGDPlan{N: 100000, BatchSize: 1024, Epochs: 3}
	CalibrateSGDNoise(plan, 1.0, 1e-6) // warm the entry
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		CalibrateSGDNoise(plan, 1.0, 1e-6)
	}
}
