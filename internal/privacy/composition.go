package privacy

import (
	"math"
)

// This file implements the composition arithmetics Sage's block accounting
// builds on (§4 and Appendix A of the paper):
//
//   - BasicCompose: the basic composition theorem (Dwork et al. 2006),
//     ε and δ add up.
//   - StrongCompose: advanced composition (Dwork, Rothblum, Vadhan 2010,
//     as stated in Dwork & Roth Thm 3.20), used by Theorem A.1 for
//     block-level accounting with DP parameters fixed in advance.
//   - AdaptiveStrongCompose: composition when the DP parameters themselves
//     are chosen adaptively (Rogers, Roth, Ullman, Vadhan 2016, Thm 5.1),
//     used by Theorem A.2. The constant 28.04 below is from the paper's
//     statement of that bound.

// BasicCompose returns the basic-composition privacy loss of running all
// the given budgets on one dataset: (Σεi, Σδi).
func BasicCompose(budgets []Budget) Budget {
	total := Zero
	for _, b := range budgets {
		total = total.Add(b)
	}
	return total
}

// StrongCompose returns the advanced-composition privacy loss of running
// the given budgets with parameters fixed in advance, for a slack
// parameter deltaSlack (the δ̃ of Theorem A.1):
//
//	ε = Σ (e^{εi}−1)·εi + sqrt(2·ln(1/δ̃)·Σ εi²)
//	δ = δ̃ + Σ δi
func StrongCompose(budgets []Budget, deltaSlack float64) Budget {
	if deltaSlack <= 0 || deltaSlack >= 1 {
		panic("privacy: StrongCompose requires deltaSlack in (0,1)")
	}
	linear, sumSq, sumDelta := 0.0, 0.0, 0.0
	for _, b := range budgets {
		linear += (math.Exp(b.Epsilon) - 1) * b.Epsilon
		sumSq += b.Epsilon * b.Epsilon
		sumDelta += b.Delta
	}
	eps := linear + math.Sqrt(2*sumSq*math.Log(1/deltaSlack))
	return Budget{Epsilon: eps, Delta: math.Min(1, deltaSlack+sumDelta)}
}

// AdaptiveStrongCompose returns the privacy loss bound for a sequence of
// budgets chosen adaptively, against a global epsilon target epsG
// (Rogers et al. 2016 Theorem 5.1, as used in Theorem A.2):
//
//	ε = Σ εi(e^{εi}−1)/2
//	  + sqrt( 2·(Σεi² + εg²/(28.04·ln(1/δ̃)))
//	          · (1 + ½·ln( 28.04·ln(1/δ̃)·Σεi²/εg² + 1 )) · ln(1/δ̃) )
//	δ = δ̃ + Σ δi
//
// The returned budget is valid whenever its Epsilon ≤ epsG; callers (the
// block-level access control) enforce that inequality.
func AdaptiveStrongCompose(budgets []Budget, epsG, deltaSlack float64) Budget {
	if deltaSlack <= 0 || deltaSlack >= 1 {
		panic("privacy: AdaptiveStrongCompose requires deltaSlack in (0,1)")
	}
	if epsG <= 0 {
		panic("privacy: AdaptiveStrongCompose requires epsG > 0")
	}
	linear, sumSq, sumDelta := 0.0, 0.0, 0.0
	for _, b := range budgets {
		linear += b.Epsilon * (math.Exp(b.Epsilon) - 1) / 2
		sumSq += b.Epsilon * b.Epsilon
		sumDelta += b.Delta
	}
	logInv := math.Log(1 / deltaSlack)
	const c = 28.04
	a := sumSq + epsG*epsG/(c*logInv)
	inner := 1 + 0.5*math.Log(c*logInv*sumSq/(epsG*epsG)+1)
	eps := linear + math.Sqrt(2*a*inner*logInv)
	return Budget{Epsilon: eps, Delta: math.Min(1, deltaSlack+sumDelta)}
}

// Accountant tracks the cumulative privacy loss of a sequence of DP
// releases against one protected entity (Sage uses one Accountant per data
// block). The arithmetic used to combine losses is pluggable so that basic
// and strong composition can be compared (ablation in bench_test.go).
type Accountant struct {
	arith  CompositionArithmetic
	spends []Budget
	// basic caches the running basic-composition sum so the common
	// (basic-arithmetic) accounting path is O(1) per request instead of
	// O(spends).
	basic   Budget
	isBasic bool
}

// CompositionArithmetic converts a sequence of per-query budgets into a
// cumulative privacy loss.
type CompositionArithmetic interface {
	// Loss returns the cumulative privacy loss of the given spends.
	Loss(spends []Budget) Budget
	// Name identifies the arithmetic in logs and experiment output.
	Name() string
}

// BasicArithmetic sums budgets (basic composition, Theorem 4.3).
type BasicArithmetic struct{}

// Loss implements CompositionArithmetic.
func (BasicArithmetic) Loss(spends []Budget) Budget { return BasicCompose(spends) }

// Name implements CompositionArithmetic.
func (BasicArithmetic) Name() string { return "basic" }

// StrongArithmetic applies advanced composition with a fixed δ̃ slack
// (Theorem A.1).
type StrongArithmetic struct{ DeltaSlack float64 }

// Loss implements CompositionArithmetic.
func (s StrongArithmetic) Loss(spends []Budget) Budget {
	if len(spends) == 0 {
		return Zero
	}
	basic := BasicCompose(spends)
	strong := StrongCompose(spends, s.DeltaSlack)
	// Either bound is valid; report the tighter ε (basic can win for few
	// large-ε queries, strong wins for many small-ε queries).
	if basic.Epsilon <= strong.Epsilon {
		return basic
	}
	return strong
}

// Name implements CompositionArithmetic.
func (s StrongArithmetic) Name() string { return "strong" }

// AdaptiveStrongArithmetic applies Rogers et al. adaptive-parameter strong
// composition against a global target (Theorem A.2).
type AdaptiveStrongArithmetic struct {
	EpsG       float64
	DeltaSlack float64
}

// Loss implements CompositionArithmetic.
func (s AdaptiveStrongArithmetic) Loss(spends []Budget) Budget {
	if len(spends) == 0 {
		return Zero
	}
	basic := BasicCompose(spends)
	adaptive := AdaptiveStrongCompose(spends, s.EpsG, s.DeltaSlack)
	if basic.Epsilon <= adaptive.Epsilon {
		return basic
	}
	return adaptive
}

// Name implements CompositionArithmetic.
func (s AdaptiveStrongArithmetic) Name() string { return "adaptive-strong" }

// NewAccountant returns an accountant using the given arithmetic.
// A nil arithmetic defaults to basic composition.
func NewAccountant(arith CompositionArithmetic) *Accountant {
	if arith == nil {
		arith = BasicArithmetic{}
	}
	_, isBasic := arith.(BasicArithmetic)
	return &Accountant{arith: arith, isBasic: isBasic}
}

// Spend records a DP release with the given budget.
func (a *Accountant) Spend(b Budget) {
	if err := b.Validate(); err != nil {
		panic(err)
	}
	a.spends = append(a.spends, b)
	a.basic = a.basic.Add(b)
}

// Refund removes budget from the most recent spend(s). It is used when a
// reserved budget was not fully consumed. Refunding more than was spent
// panics: that would under-count privacy loss.
func (a *Accountant) Refund(b Budget) {
	for i := len(a.spends) - 1; i >= 0 && !b.IsZero(); i-- {
		take := a.spends[i].Min(b)
		a.spends[i] = a.spends[i].Sub(take)
		a.basic = a.basic.Sub(take)
		b = b.Sub(take)
		if a.spends[i].IsZero() {
			a.spends = a.spends[:i]
		}
	}
	if !b.IsZero() {
		panic("privacy: refund exceeds recorded spends")
	}
}

// Loss returns the cumulative privacy loss under the accountant's
// arithmetic.
func (a *Accountant) Loss() Budget {
	if a.isBasic {
		return a.basic
	}
	return a.arith.Loss(a.spends)
}

// WouldExceed reports whether spending b next would push the cumulative
// loss beyond the ceiling.
func (a *Accountant) WouldExceed(b Budget, ceiling Budget) bool {
	if a.isBasic {
		return !ceiling.Covers(a.basic.Add(b))
	}
	trial := append(append([]Budget{}, a.spends...), b)
	loss := a.arith.Loss(trial)
	return !ceiling.Covers(loss)
}

// Spends returns a copy of the recorded per-query budgets.
func (a *Accountant) Spends() []Budget {
	return append([]Budget{}, a.spends...)
}

// NumSpends returns the number of recorded releases.
func (a *Accountant) NumSpends() int { return len(a.spends) }
