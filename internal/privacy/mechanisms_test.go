package privacy

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestLaplaceScale(t *testing.T) {
	m := LaplaceMechanism{Sensitivity: 2, Epsilon: 0.5}
	if got := m.Scale(); got != 4 {
		t.Errorf("Scale = %v, want 4", got)
	}
	if got := m.Cost(); got.Epsilon != 0.5 || got.Delta != 0 {
		t.Errorf("Cost = %v", got)
	}
}

func TestLaplaceReleaseUnbiased(t *testing.T) {
	r := rng.New(1)
	m := LaplaceMechanism{Sensitivity: 1, Epsilon: 1}
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		sum += m.Release(10, r)
	}
	if mean := sum / n; math.Abs(mean-10) > 0.05 {
		t.Errorf("mean release = %v, want ~10", mean)
	}
}

func TestLaplaceTailBound(t *testing.T) {
	r := rng.New(2)
	m := LaplaceMechanism{Sensitivity: 1, Epsilon: 0.5}
	const eta = 0.05
	bound := m.TailBound(eta)
	below := 0
	const n = 200000
	for i := 0; i < n; i++ {
		if m.Release(0, r) < -bound {
			below++
		}
	}
	frac := float64(below) / n
	if frac > eta*1.15 {
		t.Errorf("tail frequency %v exceeds eta %v", frac, eta)
	}
	// Bound should be tight-ish: at 2× the bound far fewer violations.
	if frac < eta/4 {
		t.Errorf("tail frequency %v way below eta %v: bound too loose", frac, eta)
	}
}

func TestGaussianSigma(t *testing.T) {
	m := GaussianMechanism{Sensitivity: 1, Epsilon: 1, Delta: 1e-5}
	want := math.Sqrt(2 * math.Log(1.25/1e-5))
	if got := m.Sigma(); math.Abs(got-want) > 1e-12 {
		t.Errorf("Sigma = %v, want %v", got, want)
	}
}

func TestGaussianTailBound(t *testing.T) {
	r := rng.New(3)
	m := GaussianMechanism{Sensitivity: 1, Epsilon: 1, Delta: 1e-5}
	const eta = 0.05
	bound := m.TailBound(eta)
	below := 0
	const n = 200000
	for i := 0; i < n; i++ {
		if m.Release(0, r) < -bound {
			below++
		}
	}
	if frac := float64(below) / n; frac > eta {
		t.Errorf("tail frequency %v exceeds eta %v", frac, eta)
	}
}

func TestReleaseVector(t *testing.T) {
	r := rng.New(4)
	m := LaplaceMechanism{Sensitivity: 1, Epsilon: 10}
	in := []float64{1, 2, 3}
	out := m.ReleaseVector(in, r)
	if len(out) != 3 {
		t.Fatalf("len = %d", len(out))
	}
	for i := range in {
		if out[i] == in[i] {
			t.Errorf("coordinate %d unchanged: noise not applied?", i)
		}
		if math.Abs(out[i]-in[i]) > 5 {
			t.Errorf("coordinate %d noise implausibly large at ε=10", i)
		}
	}
}

func TestClip(t *testing.T) {
	if Clip(5, 0, 1) != 1 || Clip(-5, 0, 1) != 0 || Clip(0.5, 0, 1) != 0.5 {
		t.Error("Clip misbehaves")
	}
}

func TestClipL2(t *testing.T) {
	v := []float64{3, 4}
	norm := ClipL2(v, 1)
	if math.Abs(norm-5) > 1e-12 {
		t.Errorf("returned norm %v, want 5", norm)
	}
	got := math.Hypot(v[0], v[1])
	if math.Abs(got-1) > 1e-12 {
		t.Errorf("clipped norm %v, want 1", got)
	}
	// Vectors within bound are untouched.
	w := []float64{0.3, 0.4}
	ClipL2(w, 1)
	if w[0] != 0.3 || w[1] != 0.4 {
		t.Error("in-bound vector modified")
	}
}

// Property: ClipL2 never increases the norm and never exceeds the bound.
func TestClipL2Property(t *testing.T) {
	f := func(a, b, c int16, rawBound uint8) bool {
		bound := float64(rawBound)/16 + 0.1
		v := []float64{float64(a) / 100, float64(b) / 100, float64(c) / 100}
		before := math.Sqrt(v[0]*v[0] + v[1]*v[1] + v[2]*v[2])
		ClipL2(v, bound)
		after := math.Sqrt(v[0]*v[0] + v[1]*v[1] + v[2]*v[2])
		return after <= bound+1e-9 && after <= before+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Empirical DP check: the Laplace mechanism's output distributions on two
// neighboring counts differ by at most e^ε in probability over bins.
func TestLaplaceEmpiricalDP(t *testing.T) {
	const eps = 1.0
	m := LaplaceMechanism{Sensitivity: 1, Epsilon: eps}
	const n = 400000
	histA := make(map[int]int)
	histB := make(map[int]int)
	rA, rB := rng.New(5), rng.New(6)
	for i := 0; i < n; i++ {
		histA[int(math.Floor(m.Release(10, rA)))]++
		histB[int(math.Floor(m.Release(11, rB)))]++
	}
	for bin, ca := range histA {
		cb := histB[bin]
		if ca < 500 || cb < 500 {
			continue // skip low-probability bins with high variance
		}
		ratio := float64(ca) / float64(cb)
		if ratio > math.Exp(eps)*1.2 || ratio < math.Exp(-eps)/1.2 {
			t.Errorf("bin %d ratio %v outside e^±ε", bin, ratio)
		}
	}
}
