// Package privacy implements the differential-privacy primitives Sage is
// built on: (ε, δ) budgets and their arithmetic, the Laplace and Gaussian
// mechanisms, basic and strong composition (Dwork et al.), composition under
// adaptively chosen parameters (Rogers et al., used by block composition),
// and a Rényi-DP accountant for the subsampled Gaussian mechanism used to
// calibrate DP-SGD noise.
package privacy

import (
	"errors"
	"fmt"
	"math"
)

// Budget is an (ε, δ) differential-privacy budget or privacy loss.
// Epsilon must be >= 0 and Delta in [0, 1].
type Budget struct {
	Epsilon float64
	Delta   float64
}

// Zero is the empty budget.
var Zero = Budget{}

// NewBudget returns a validated budget.
func NewBudget(epsilon, delta float64) (Budget, error) {
	b := Budget{Epsilon: epsilon, Delta: delta}
	if err := b.Validate(); err != nil {
		return Budget{}, err
	}
	return b, nil
}

// MustBudget returns a validated budget and panics on invalid parameters.
// Intended for literals in tests and examples.
func MustBudget(epsilon, delta float64) Budget {
	b, err := NewBudget(epsilon, delta)
	if err != nil {
		panic(err)
	}
	return b
}

// Validate reports whether the budget parameters are in range.
func (b Budget) Validate() error {
	if math.IsNaN(b.Epsilon) || math.IsInf(b.Epsilon, 0) || b.Epsilon < 0 {
		return fmt.Errorf("privacy: epsilon %v out of range [0, ∞)", b.Epsilon)
	}
	if math.IsNaN(b.Delta) || b.Delta < 0 || b.Delta > 1 {
		return fmt.Errorf("privacy: delta %v out of range [0, 1]", b.Delta)
	}
	return nil
}

// IsZero reports whether the budget is exactly (0, 0).
func (b Budget) IsZero() bool { return b.Epsilon == 0 && b.Delta == 0 }

// Add returns the basic-composition sum of two budgets:
// (ε1+ε2, δ1+δ2). Delta saturates at 1.
func (b Budget) Add(o Budget) Budget {
	return Budget{Epsilon: b.Epsilon + o.Epsilon, Delta: math.Min(1, b.Delta+o.Delta)}
}

// Sub returns b - o, clamping at zero. It is used when refunding reserved
// but unspent budget.
func (b Budget) Sub(o Budget) Budget {
	return Budget{
		Epsilon: math.Max(0, b.Epsilon-o.Epsilon),
		Delta:   math.Max(0, b.Delta-o.Delta),
	}
}

// Scale returns the budget multiplied component-wise by k >= 0.
func (b Budget) Scale(k float64) Budget {
	if k < 0 {
		panic("privacy: negative budget scale")
	}
	return Budget{Epsilon: b.Epsilon * k, Delta: math.Min(1, b.Delta*k)}
}

// Split divides the budget into n equal parts (basic composition in
// reverse). It panics if n <= 0.
func (b Budget) Split(n int) Budget {
	if n <= 0 {
		panic("privacy: Split requires n > 0")
	}
	return Budget{Epsilon: b.Epsilon / float64(n), Delta: b.Delta / float64(n)}
}

// Covers reports whether budget b is at least as large as o in both
// components (with a tiny tolerance for floating-point accumulation).
func (b Budget) Covers(o Budget) bool {
	const tol = 1e-12
	return b.Epsilon+tol >= o.Epsilon && b.Delta+tol >= o.Delta
}

// Min returns the component-wise minimum of two budgets.
func (b Budget) Min(o Budget) Budget {
	return Budget{Epsilon: math.Min(b.Epsilon, o.Epsilon), Delta: math.Min(b.Delta, o.Delta)}
}

// String formats the budget as "(ε=…, δ=…)".
func (b Budget) String() string {
	return fmt.Sprintf("(ε=%.6g, δ=%.3g)", b.Epsilon, b.Delta)
}

// ErrBudgetExhausted is returned when a request exceeds available budget.
var ErrBudgetExhausted = errors.New("privacy: budget exhausted")
