package privacy

import (
	"math"
)

// This file implements a Rényi differential privacy (RDP) accountant for
// the Poisson-subsampled Gaussian mechanism, the analysis behind DP-SGD
// (Abadi et al. 2016; Mironov 2017; Mironov, Talwar, Zhang 2019). Sage's
// DP training pipelines use it to convert a target (ε, δ) into the noise
// multiplier σ for a given sampling rate and number of steps, exactly as
// TensorFlow Privacy does for the pipelines in Table 1.

// defaultOrders are the RDP orders the accountant evaluates. Integer
// orders admit an exact closed form for the subsampled Gaussian.
func defaultOrders() []int {
	orders := make([]int, 0, 80)
	for a := 2; a <= 63; a++ {
		orders = append(orders, a)
	}
	// Sparse large orders let the conversion reach small ε (the
	// ε = RDP(α) + log(1/δ)/(α−1) term needs large α when ε ≪ 1).
	orders = append(orders, 80, 96, 128, 160, 192, 256, 320, 384, 512, 768, 1024, 2048, 4096)
	return orders
}

// RDPAccountant tracks Rényi divergences at a fixed set of integer orders.
type RDPAccountant struct {
	orders []int
	rdp    []float64 // cumulative RDP at each order
}

// NewRDPAccountant returns an accountant over the default integer orders
// 2..63.
func NewRDPAccountant() *RDPAccountant {
	o := defaultOrders()
	return &RDPAccountant{orders: o, rdp: make([]float64, len(o))}
}

// gaussianRDP returns the RDP of the (unsampled) Gaussian mechanism with
// noise multiplier sigma at order alpha: α/(2σ²).
func gaussianRDP(sigma float64, alpha int) float64 {
	return float64(alpha) / (2 * sigma * sigma)
}

// logComb returns log C(n, k).
func logComb(n, k int) float64 {
	lg, _ := math.Lgamma(float64(n + 1))
	lk, _ := math.Lgamma(float64(k + 1))
	lnk, _ := math.Lgamma(float64(n - k + 1))
	return lg - lk - lnk
}

// logAddExp returns log(exp(a) + exp(b)) stably.
func logAddExp(a, b float64) float64 {
	if math.IsInf(a, -1) {
		return b
	}
	if math.IsInf(b, -1) {
		return a
	}
	m := math.Max(a, b)
	return m + math.Log(math.Exp(a-m)+math.Exp(b-m))
}

// sampledGaussianRDP returns the RDP at integer order alpha >= 2 of one
// step of the Poisson-subsampled Gaussian mechanism with sampling rate q
// and noise multiplier sigma (Mironov, Talwar, Zhang 2019, Eq. for integer
// orders):
//
//	RDP(α) = 1/(α−1) · log Σ_{k=0}^{α} C(α,k)·(1−q)^{α−k}·q^k·exp(k(k−1)/(2σ²))
func sampledGaussianRDP(q, sigma float64, alpha int) float64 {
	if q <= 0 {
		return 0
	}
	if q >= 1 {
		return gaussianRDP(sigma, alpha)
	}
	logSum := math.Inf(-1)
	logQ := math.Log(q)
	log1Q := math.Log1p(-q)
	for k := 0; k <= alpha; k++ {
		term := logComb(alpha, k) +
			float64(alpha-k)*log1Q +
			float64(k)*logQ +
			float64(k*(k-1))/(2*sigma*sigma)
		logSum = logAddExp(logSum, term)
	}
	rdp := logSum / float64(alpha-1)
	// The subsampled mechanism is never worse than the unsampled one.
	return math.Min(rdp, gaussianRDP(sigma, alpha))
}

// AddSampledGaussianSteps records `steps` steps of the subsampled Gaussian
// mechanism with sampling rate q and noise multiplier sigma. RDP composes
// additively across steps at each order.
func (a *RDPAccountant) AddSampledGaussianSteps(q, sigma float64, steps int) {
	if sigma <= 0 {
		panic("privacy: RDP accountant requires sigma > 0")
	}
	if steps < 0 {
		panic("privacy: negative step count")
	}
	for i, alpha := range a.orders {
		a.rdp[i] += float64(steps) * sampledGaussianRDP(q, sigma, alpha)
	}
}

// AddGaussian records one unsampled Gaussian release with the given noise
// multiplier (σ relative to sensitivity 1).
func (a *RDPAccountant) AddGaussian(sigma float64) {
	a.AddSampledGaussianSteps(1, sigma, 1)
}

// Epsilon converts the accumulated RDP to an (ε, δ)-DP guarantee using the
// standard conversion ε = min_α RDP(α) + log(1/δ)/(α−1).
func (a *RDPAccountant) Epsilon(delta float64) float64 {
	if delta <= 0 || delta >= 1 {
		panic("privacy: Epsilon requires delta in (0,1)")
	}
	best := math.Inf(1)
	for i, alpha := range a.orders {
		eps := a.rdp[i] + math.Log(1/delta)/float64(alpha-1)
		if eps < best {
			best = eps
		}
	}
	return best
}

// SGDPlan describes one DP-SGD training run for accounting purposes.
type SGDPlan struct {
	N         int // dataset size
	BatchSize int // expected batch size (Poisson sampling rate q = B/N)
	Epochs    int // passes over the data
}

// Steps returns the number of SGD steps in the plan.
func (p SGDPlan) Steps() int {
	if p.BatchSize <= 0 || p.N <= 0 || p.Epochs <= 0 {
		return 0
	}
	perEpoch := (p.N + p.BatchSize - 1) / p.BatchSize
	return perEpoch * p.Epochs
}

// SamplingRate returns q = B/N clamped to (0, 1].
func (p SGDPlan) SamplingRate() float64 {
	if p.N <= 0 {
		return 1
	}
	q := float64(p.BatchSize) / float64(p.N)
	if q > 1 {
		return 1
	}
	return q
}

// SGDEpsilon returns the (ε, δ) guarantee of running the plan with the
// given noise multiplier.
func SGDEpsilon(plan SGDPlan, sigma, delta float64) float64 {
	acct := NewRDPAccountant()
	acct.AddSampledGaussianSteps(plan.SamplingRate(), sigma, plan.Steps())
	return acct.Epsilon(delta)
}

// CalibrateSGDNoise returns the smallest noise multiplier σ such that the
// plan satisfies (ε, δ)-DP, found by exponential bracketing followed by
// binary search. It mirrors TF-Privacy's compute_noise utility. Results
// are memoized process-wide by (N, BatchSize, Epochs, ε, δ) — see
// calibcache.go — because the sweeps re-run identical plans constantly;
// SGDCalibrationStats exposes the hit/miss counters.
func CalibrateSGDNoise(plan SGDPlan, epsilon, delta float64) float64 {
	if epsilon <= 0 {
		panic("privacy: CalibrateSGDNoise requires epsilon > 0")
	}
	if plan.Steps() == 0 {
		return 0
	}
	return cachedSGDNoise(plan, epsilon, delta)
}

// calibrateSGDNoise is the uncached bracketing/bisection search behind
// CalibrateSGDNoise.
func calibrateSGDNoise(plan SGDPlan, epsilon, delta float64) float64 {
	lo, hi := 1e-2, 1e-2
	// Grow hi until private enough.
	for SGDEpsilon(plan, hi, delta) > epsilon {
		hi *= 2
		if hi > 1e6 {
			panic("privacy: noise calibration diverged")
		}
	}
	// Shrink lo until not private enough (or keep tiny floor).
	lo = hi / 2
	for lo > 1e-3 && SGDEpsilon(plan, lo, delta) <= epsilon {
		hi = lo
		lo /= 2
	}
	for i := 0; i < 60; i++ {
		mid := (lo + hi) / 2
		if SGDEpsilon(plan, mid, delta) <= epsilon {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi
}
