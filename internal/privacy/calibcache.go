package privacy

import (
	"sync"
	"sync/atomic"
)

// DP-SGD noise calibration is a pure function of the plan and the target
// (ε, δ), and it is expensive: each probe of the bracketing/bisection
// search composes the subsampled-Gaussian RDP curve over every step of
// the plan. Experiment sweeps re-run identical plans thousands of times —
// every Fig. 6 / Tab. 2 cell at the same stream size trains with the same
// (n, batch, epochs, ε, δ) — so CalibrateSGDNoise memoizes σ process-wide.
// The cache is concurrency-safe and deterministic by construction: a hit
// returns bit-identical σ to the computation it replaced.

// sgdCalibKey identifies one calibration problem.
type sgdCalibKey struct {
	n, batchSize, epochs int
	epsilon, delta       float64
}

var (
	sgdCalibCache  sync.Map // sgdCalibKey → float64
	sgdCalibHits   atomic.Uint64
	sgdCalibMisses atomic.Uint64
)

// CalibrationCacheStats reports the process-wide calibration cache's
// effectiveness (hits vs full bracketing searches since start/reset).
type CalibrationCacheStats struct {
	Hits, Misses uint64
}

// HitRate returns the fraction of lookups served from the cache.
func (s CalibrationCacheStats) HitRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

// SGDCalibrationStats returns the current cache counters.
func SGDCalibrationStats() CalibrationCacheStats {
	return CalibrationCacheStats{
		Hits:   sgdCalibHits.Load(),
		Misses: sgdCalibMisses.Load(),
	}
}

// ResetSGDCalibrationCache empties the cache and zeroes the counters
// (used by benchmarks to measure the uncached path).
func ResetSGDCalibrationCache() {
	sgdCalibCache.Range(func(k, _ any) bool {
		sgdCalibCache.Delete(k)
		return true
	})
	sgdCalibHits.Store(0)
	sgdCalibMisses.Store(0)
}

// cachedSGDNoise returns the memoized σ for the plan, computing and
// storing it on miss. Concurrent misses on the same key may both compute;
// they store the same value, so the race is benign and lock-free reads
// stay on the hot path.
func cachedSGDNoise(plan SGDPlan, epsilon, delta float64) float64 {
	key := sgdCalibKey{
		n: plan.N, batchSize: plan.BatchSize, epochs: plan.Epochs,
		epsilon: epsilon, delta: delta,
	}
	if v, ok := sgdCalibCache.Load(key); ok {
		sgdCalibHits.Add(1)
		return v.(float64)
	}
	sgdCalibMisses.Add(1)
	sigma := calibrateSGDNoise(plan, epsilon, delta)
	sgdCalibCache.Store(key, sigma)
	return sigma
}
