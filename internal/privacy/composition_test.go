package privacy

import (
	"math"
	"testing"
	"testing/quick"
)

func TestBasicCompose(t *testing.T) {
	got := BasicCompose([]Budget{{0.1, 1e-7}, {0.2, 2e-7}, {0.3, 0}})
	if math.Abs(got.Epsilon-0.6) > 1e-12 || math.Abs(got.Delta-3e-7) > 1e-18 {
		t.Errorf("BasicCompose = %v", got)
	}
	if !BasicCompose(nil).IsZero() {
		t.Error("empty composition should be zero")
	}
}

func TestStrongComposeBeatsBasicForManySmallQueries(t *testing.T) {
	// k queries at ε each: basic gives kε; strong gives
	// ~sqrt(2k·ln(1/δ̃))·ε + k·ε(e^ε−1), which wins for small ε, large k.
	spends := make([]Budget, 100)
	for i := range spends {
		spends[i] = Budget{Epsilon: 0.01}
	}
	basic := BasicCompose(spends)
	strong := StrongCompose(spends, 1e-6)
	if strong.Epsilon >= basic.Epsilon {
		t.Errorf("strong ε=%v not better than basic ε=%v for 100 small queries",
			strong.Epsilon, basic.Epsilon)
	}
	if strong.Delta != 1e-6 {
		t.Errorf("strong δ=%v, want slack 1e-6", strong.Delta)
	}
}

func TestStrongComposeKnownValue(t *testing.T) {
	// Single query: ε' = (e^ε−1)ε + sqrt(2·ln(1/δ̃))·ε.
	eps := 0.5
	slack := 1e-5
	got := StrongCompose([]Budget{{Epsilon: eps}}, slack)
	want := (math.Exp(eps)-1)*eps + math.Sqrt(2*eps*eps*math.Log(1/slack))
	if math.Abs(got.Epsilon-want) > 1e-12 {
		t.Errorf("StrongCompose ε=%v, want %v", got.Epsilon, want)
	}
}

func TestAdaptiveStrongCompose(t *testing.T) {
	spends := make([]Budget, 200)
	for i := range spends {
		spends[i] = Budget{Epsilon: 0.01, Delta: 1e-9}
	}
	basic := BasicCompose(spends)
	adaptive := AdaptiveStrongCompose(spends, 1.0, 1e-6)
	if adaptive.Epsilon >= basic.Epsilon {
		t.Errorf("adaptive strong ε=%v not better than basic ε=%v",
			adaptive.Epsilon, basic.Epsilon)
	}
	// Adaptive bound is looser than the fixed-parameter strong bound.
	strong := StrongCompose(spends, 1e-6)
	if adaptive.Epsilon < strong.Epsilon {
		t.Errorf("adaptive ε=%v tighter than fixed-parameter strong ε=%v: suspicious",
			adaptive.Epsilon, strong.Epsilon)
	}
	wantDelta := 1e-6 + 200*1e-9
	if math.Abs(adaptive.Delta-wantDelta) > 1e-15 {
		t.Errorf("adaptive δ=%v, want %v", adaptive.Delta, wantDelta)
	}
}

func TestAccountantSpendLoss(t *testing.T) {
	a := NewAccountant(BasicArithmetic{})
	a.Spend(MustBudget(0.3, 1e-7))
	a.Spend(MustBudget(0.2, 0))
	loss := a.Loss()
	if math.Abs(loss.Epsilon-0.5) > 1e-12 || loss.Delta != 1e-7 {
		t.Errorf("Loss = %v", loss)
	}
	if a.NumSpends() != 2 {
		t.Errorf("NumSpends = %d", a.NumSpends())
	}
}

func TestAccountantWouldExceed(t *testing.T) {
	a := NewAccountant(nil) // defaults to basic
	ceiling := MustBudget(1, 1e-6)
	a.Spend(MustBudget(0.8, 0))
	if a.WouldExceed(MustBudget(0.2, 0), ceiling) {
		t.Error("exactly reaching the ceiling should be allowed")
	}
	if !a.WouldExceed(MustBudget(0.21, 0), ceiling) {
		t.Error("exceeding the ceiling should be detected")
	}
	if !a.WouldExceed(MustBudget(0, 2e-6), ceiling) {
		t.Error("delta exhaustion should be detected")
	}
}

func TestAccountantRefund(t *testing.T) {
	a := NewAccountant(nil)
	a.Spend(MustBudget(0.5, 1e-7))
	a.Spend(MustBudget(0.3, 0))
	a.Refund(MustBudget(0.3, 0))
	loss := a.Loss()
	if math.Abs(loss.Epsilon-0.5) > 1e-12 {
		t.Errorf("after refund ε=%v, want 0.5", loss.Epsilon)
	}
	// Refund spanning multiple spends.
	a.Refund(MustBudget(0.4, 0))
	loss = a.Loss()
	if math.Abs(loss.Epsilon-0.1) > 1e-12 {
		t.Errorf("after second refund ε=%v, want 0.1", loss.Epsilon)
	}
	defer func() {
		if recover() == nil {
			t.Error("over-refund should panic")
		}
	}()
	a.Refund(MustBudget(10, 0))
}

func TestStrongArithmeticPicksTighter(t *testing.T) {
	s := StrongArithmetic{DeltaSlack: 1e-6}
	// One big query: basic wins.
	one := []Budget{{Epsilon: 1}}
	if got := s.Loss(one); got.Epsilon != 1 {
		t.Errorf("single query loss ε=%v, want 1 (basic)", got.Epsilon)
	}
	// Many small queries: strong wins.
	many := make([]Budget, 400)
	for i := range many {
		many[i] = Budget{Epsilon: 0.01}
	}
	if got, basic := s.Loss(many), BasicCompose(many); got.Epsilon >= basic.Epsilon {
		t.Errorf("many-query loss ε=%v, want < basic %v", got.Epsilon, basic.Epsilon)
	}
}

// Property: composition loss is monotone — adding a query never reduces ε.
func TestCompositionMonotoneProperty(t *testing.T) {
	arith := []CompositionArithmetic{
		BasicArithmetic{},
		StrongArithmetic{DeltaSlack: 1e-6},
		AdaptiveStrongArithmetic{EpsG: 1, DeltaSlack: 1e-6},
	}
	f := func(raw []uint8, extra uint8) bool {
		if len(raw) > 20 {
			raw = raw[:20]
		}
		spends := make([]Budget, len(raw))
		for i, r := range raw {
			spends[i] = Budget{Epsilon: float64(r) / 512}
		}
		next := Budget{Epsilon: float64(extra)/512 + 1e-4}
		for _, ar := range arith {
			before := ar.Loss(spends).Epsilon
			after := ar.Loss(append(append([]Budget{}, spends...), next)).Epsilon
			if after < before-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: strong composition is a valid bound — never below the max
// individual ε (any single query's loss is part of the total).
func TestStrongComposeLowerBoundProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		if len(raw) > 30 {
			raw = raw[:30]
		}
		spends := make([]Budget, len(raw))
		maxEps := 0.0
		for i, r := range raw {
			e := float64(r) / 256
			spends[i] = Budget{Epsilon: e}
			maxEps = math.Max(maxEps, e)
		}
		got := StrongCompose(spends, 1e-6)
		return got.Epsilon >= maxEps-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
