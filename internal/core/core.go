// Package core implements Sage's central contribution: block composition
// accounting and the access-control layer that enforces a global (εg, δg)
// differential-privacy guarantee over every model and feature ever
// released from a sensitive data stream (§3.2 and §4 of the paper).
//
// The stream is split into disjoint blocks (by time for event-level
// privacy, by user ID for user-level privacy). Training pipelines request
// an (ε, δ) budget against an adaptively chosen set of blocks; the access
// control grants the request only if every involved block stays within
// the global ceiling. By Theorem 4.2, the privacy loss over the whole
// stream is the maximum per-block loss, so fresh blocks restore the
// platform's ability to train: Sage never runs out of budget as long as
// the database grows fast enough.
package core

import (
	"fmt"
	"sync"

	"repro/internal/data"
	"repro/internal/privacy"
)

// Policy configures the global DP guarantee enforced on each block of a
// stream.
type Policy struct {
	// Global is the (εg, δg) ceiling every block's cumulative privacy
	// loss must stay under.
	Global privacy.Budget
	// Arithmetic combines per-query budgets into a cumulative loss.
	// Nil defaults to basic composition (Theorem 4.3); strong variants
	// (Theorems A.1/A.2) permit more queries under the same ceiling.
	Arithmetic privacy.CompositionArithmetic
}

// RetireReason records why a block was retired, for audit output
// (cmd/sagectl's ledger and BlockReport).
type RetireReason string

const (
	// RetireNone means the block is active.
	RetireNone RetireReason = ""
	// RetireBudgetExhausted means the block's cumulative loss reached the
	// global ceiling through normal accounting; absent a retention hook
	// this retirement is reversible by refunds.
	RetireBudgetExhausted RetireReason = "budget-exhausted"
	// RetireForced means an operator called Retire; never reversible.
	RetireForced RetireReason = "forced"
	// RetireDataDeleted means the DP-retention hook ran on retirement and
	// deleted the block's raw data (§3.2); never reversible.
	RetireDataDeleted RetireReason = "retention-deleted"
)

// blockState tracks one block's accounting.
type blockState struct {
	acct    *privacy.Accountant
	retired bool
	// sticky marks retirements that must never be reversed: forced
	// retirements (Retire) and any retirement whose onRetire callback
	// ran — the DP-retention hook may have deleted the block's raw data
	// (§3.2), so a later budget refund cannot resurrect it.
	sticky bool
	// reason says why the block is retired (RetireNone while active).
	reason RetireReason
}

// AccessControl is Sage's DP access-control layer for one sensitive
// stream (the "Sage Access Control" box of Fig. 2). It is safe for
// concurrent use: Request atomically checks and deducts budget across all
// blocks involved in a query, which is what makes adaptively chosen block
// sets sound (Alg. 4c, lines 7-8).
type AccessControl struct {
	mu       sync.Mutex
	policy   Policy
	blocks   map[data.BlockID]*blockState
	onRetire func(data.BlockID)
	// journal, when set (SetJournal), receives every mutation before it
	// is applied or acknowledged — the ledger half of the durable
	// platform core (see journal.go for the crash-consistency argument).
	journal func(LedgerRecord) error
}

// NewAccessControl returns an access-control layer enforcing the policy.
func NewAccessControl(policy Policy) *AccessControl {
	if err := policy.Global.Validate(); err != nil {
		panic(err)
	}
	if policy.Global.Epsilon <= 0 {
		panic("core: policy requires εg > 0")
	}
	return &AccessControl{policy: policy, blocks: make(map[data.BlockID]*blockState)}
}

// Policy returns the enforced policy.
func (ac *AccessControl) Policy() Policy { return ac.policy }

// SetRetireCallback registers a function invoked (synchronously, without
// the lock held by callers' view) whenever a block is retired. Sage's
// DP-informed retention policy hooks deletion of the raw data here.
func (ac *AccessControl) SetRetireCallback(f func(data.BlockID)) {
	ac.mu.Lock()
	defer ac.mu.Unlock()
	ac.onRetire = f
}

// RegisterBlock makes a new block known to the access control with a
// fresh (zero) privacy loss. Registering an existing block is a no-op
// returning false (and is not journaled). With a journal installed, a
// journal failure panics: RegisterBlock has no error return, and a
// ledger that cannot journal must stop rather than diverge from its
// log.
func (ac *AccessControl) RegisterBlock(id data.BlockID) bool {
	ac.mu.Lock()
	defer ac.mu.Unlock()
	if _, ok := ac.blocks[id]; ok {
		return false
	}
	if err := ac.journalLocked(LedgerRecord{Op: LedgerRegister, Blocks: []data.BlockID{id}}); err != nil {
		panic(err)
	}
	ac.blocks[id] = &blockState{acct: privacy.NewAccountant(ac.policy.Arithmetic)}
	return true
}

// NumBlocks returns the number of registered blocks.
func (ac *AccessControl) NumBlocks() int {
	ac.mu.Lock()
	defer ac.mu.Unlock()
	return len(ac.blocks)
}

// ErrUnknownBlock is returned when a request names an unregistered block.
type ErrUnknownBlock struct{ ID data.BlockID }

func (e ErrUnknownBlock) Error() string {
	return fmt.Sprintf("core: unknown block %d", e.ID)
}

// ErrBlockExhausted is returned when a request would push a block's
// cumulative privacy loss over the global ceiling.
type ErrBlockExhausted struct {
	ID        data.BlockID
	Requested privacy.Budget
	Remaining privacy.Budget
}

func (e ErrBlockExhausted) Error() string {
	return fmt.Sprintf("core: block %d cannot afford %v (remaining %v)",
		e.ID, e.Requested, e.Remaining)
}

// uniqueIDs returns ids with duplicates removed, preserving first-
// occurrence order. Short lists — the common case: adaptive training
// windows are a few dozen blocks — are checked with a quadratic scan
// that allocates nothing when there are no duplicates; longer lists pay
// one map.
func uniqueIDs(ids []data.BlockID) []data.BlockID {
	if len(ids) <= 64 {
		for i := 1; i < len(ids); i++ {
			for j := 0; j < i; j++ {
				if ids[j] == ids[i] {
					return dedupIDs(ids)
				}
			}
		}
		return ids
	}
	seen := make(map[data.BlockID]struct{}, len(ids))
	for _, id := range ids {
		if _, dup := seen[id]; dup {
			return dedupIDs(ids)
		}
		seen[id] = struct{}{}
	}
	return ids
}

// dedupIDs filters ids to first occurrences. Called only when a
// duplicate is known to exist.
func dedupIDs(ids []data.BlockID) []data.BlockID {
	seen := make(map[data.BlockID]struct{}, len(ids))
	out := make([]data.BlockID, 0, len(ids))
	for _, id := range ids {
		if _, dup := seen[id]; !dup {
			seen[id] = struct{}{}
			out = append(out, id)
		}
	}
	return out
}

// Request atomically deducts budget b from every block in ids. If any
// block cannot afford it the whole request fails with ErrBlockExhausted
// (or ErrUnknownBlock) and no budget is deducted anywhere. This is the
// AccessControl predicate of Alg. (4c): the query may run only if every
// involved block stays within (εg, δg).
//
// Duplicate IDs in ids are coalesced: a query reads each block's data
// once however many times the block is named, so it is checked and
// charged once per distinct block. (Charging per occurrence while
// checking per occurrence against pre-spend state — the old behavior —
// let a request naming a block k times overshoot the ceiling by a factor
// of k.)
func (ac *AccessControl) Request(ids []data.BlockID, b privacy.Budget) error {
	if len(ids) == 0 {
		return fmt.Errorf("core: request names no blocks")
	}
	if err := b.Validate(); err != nil {
		return err
	}
	if b.IsZero() {
		return nil
	}
	ids = uniqueIDs(ids)
	ac.mu.Lock()
	var retiredNow []data.BlockID
	err := func() error {
		// Phase 1: check every block.
		for _, id := range ids {
			st, ok := ac.blocks[id]
			if !ok {
				return ErrUnknownBlock{ID: id}
			}
			if st.retired || st.acct.WouldExceed(b, ac.policy.Global) {
				return ErrBlockExhausted{
					ID:        id,
					Requested: b,
					Remaining: ac.policy.Global.Sub(st.acct.Loss()),
				}
			}
		}
		// Journal point: the request is admissible. The spend record
		// hits the write-ahead log *before* any deduction is applied or
		// the caller acknowledged, so a crash from here on can only
		// leave the recovered ledger with this spend applied-but-
		// unacknowledged — conservative, never the reverse. A journal
		// failure aborts with no budget deducted.
		if err := ac.journalLocked(LedgerRecord{Op: LedgerRequest, Blocks: ids, Budget: b}); err != nil {
			return err
		}
		// Phase 2: deduct everywhere.
		for _, id := range ids {
			st := ac.blocks[id]
			st.acct.Spend(b)
			if ac.shouldRetire(st) {
				st.retired = true
				st.reason = RetireBudgetExhausted
				// With a retention hook registered, the callback below
				// deletes the block's raw data: the retirement becomes
				// irreversible even if budget is refunded later.
				if ac.onRetire != nil {
					st.sticky = true
					st.reason = RetireDataDeleted
				}
				retiredNow = append(retiredNow, id)
			}
		}
		return nil
	}()
	cb := ac.onRetire
	ac.mu.Unlock()
	if err == nil && cb != nil {
		for _, id := range retiredNow {
			cb(id)
		}
	}
	return err
}

// shouldRetire reports whether a block has no usable budget left. A block
// is retired once the smallest meaningful request (ε = εg/1000) would
// exceed the ceiling; the paper retires blocks whose loss reaches the
// ceiling. Caller holds mu.
func (ac *AccessControl) shouldRetire(st *blockState) bool {
	probe := privacy.Budget{Epsilon: ac.policy.Global.Epsilon / 1000}
	return st.acct.WouldExceed(probe, ac.policy.Global)
}

// Refund returns unspent budget to every block in ids. Pipelines reserve
// budget up front and refund what privacy-adaptive training did not use
// (§3.3). Refunding a block retired purely by budget exhaustion (no
// retention hook involved) un-retires it; forced retirements and
// retirements whose retention callback already ran stay retired — the
// raw data is gone, so regained budget cannot resurrect the block.
// Like Request, Refund is atomic: every id is validated before any block
// is mutated, so an unknown block leaves the ledger untouched instead of
// refunding a prefix. Duplicate IDs are coalesced for symmetry with
// Request — a reservation charged once per distinct block must be
// returned once per distinct block.
func (ac *AccessControl) Refund(ids []data.BlockID, b privacy.Budget) error {
	if err := b.Validate(); err != nil {
		return err
	}
	if b.IsZero() {
		return nil
	}
	ids = uniqueIDs(ids)
	ac.mu.Lock()
	defer ac.mu.Unlock()
	// Phase 1: validate every block before touching any of them.
	for _, id := range ids {
		if _, ok := ac.blocks[id]; !ok {
			return ErrUnknownBlock{ID: id}
		}
	}
	// Journal before applying: a refund that reaches the log without
	// its acknowledgement only under-counts relative to the *reserved*
	// budget, never the consumed one — the matching Request is already
	// in the log (journal order is lock order), and a refund never
	// exceeds that reservation's unconsumed remainder.
	if err := ac.journalLocked(LedgerRecord{Op: LedgerRefund, Blocks: ids, Budget: b}); err != nil {
		return err
	}
	// Phase 2: refund everywhere.
	for _, id := range ids {
		st := ac.blocks[id]
		st.acct.Refund(b)
		if !st.sticky && !ac.shouldRetire(st) {
			st.retired = false
			st.reason = RetireNone
		}
	}
	return nil
}

// Retire forcibly retires a block regardless of remaining budget. Forced
// retirement is sticky: no refund can reverse it.
func (ac *AccessControl) Retire(id data.BlockID) error {
	ac.mu.Lock()
	st, ok := ac.blocks[id]
	if !ok {
		ac.mu.Unlock()
		return ErrUnknownBlock{ID: id}
	}
	// A block that is already sticky-retired cannot change state (the
	// reason is already forced or retention-deleted): pure no-op, not
	// journaled — same rule as re-registering an existing block.
	if st.retired && st.sticky {
		ac.mu.Unlock()
		return nil
	}
	if err := ac.journalLocked(LedgerRecord{Op: LedgerRetire, Blocks: []data.BlockID{id}}); err != nil {
		ac.mu.Unlock()
		return err
	}
	already := st.retired
	st.retired = true
	st.sticky = true
	// An operator decision supersedes a (reversible) budget-exhaustion
	// reason, but never rewrites retention-deleted: the data is gone and
	// the audit trail should keep saying why.
	if st.reason != RetireDataDeleted {
		st.reason = RetireForced
	}
	cb := ac.onRetire
	ac.mu.Unlock()
	if !already && cb != nil {
		cb(id)
	}
	return nil
}

// Retired reports whether a block has been retired.
func (ac *AccessControl) Retired(id data.BlockID) bool {
	ac.mu.Lock()
	defer ac.mu.Unlock()
	st, ok := ac.blocks[id]
	return ok && st.retired
}

// BlockLoss returns a block's cumulative privacy loss under the policy's
// arithmetic (zero for unknown blocks).
func (ac *AccessControl) BlockLoss(id data.BlockID) privacy.Budget {
	ac.mu.Lock()
	defer ac.mu.Unlock()
	st, ok := ac.blocks[id]
	if !ok {
		return privacy.Zero
	}
	return st.acct.Loss()
}

// Remaining returns the budget a block can still spend, conservatively
// computed as ceiling − loss. Under basic composition this is exact;
// under strong composition it understates what is actually spendable.
func (ac *AccessControl) Remaining(id data.BlockID) privacy.Budget {
	ac.mu.Lock()
	defer ac.mu.Unlock()
	st, ok := ac.blocks[id]
	if !ok || st.retired {
		return privacy.Zero
	}
	return ac.policy.Global.Sub(st.acct.Loss())
}

// AvailableBlocks returns the registered, non-retired blocks that can
// still afford a request of at least the given budget, filtered from the
// candidate list (pass a GrowingDatabase's Blocks()). Order is preserved.
func (ac *AccessControl) AvailableBlocks(candidates []data.BlockID, atLeast privacy.Budget) []data.BlockID {
	ac.mu.Lock()
	defer ac.mu.Unlock()
	var out []data.BlockID
	for _, id := range candidates {
		st, ok := ac.blocks[id]
		if !ok || st.retired {
			continue
		}
		if !st.acct.WouldExceed(atLeast, ac.policy.Global) {
			out = append(out, id)
		}
	}
	return out
}

// StreamLoss returns the privacy loss of the entire stream: by
// Theorem 4.2 it is the maximum cumulative loss over blocks, so the
// stream-wide guarantee is (εg, δg)-DP as long as every block stays under
// the ceiling (Theorem 4.3).
func (ac *AccessControl) StreamLoss() privacy.Budget {
	ac.mu.Lock()
	defer ac.mu.Unlock()
	max := privacy.Zero
	for _, st := range ac.blocks {
		l := st.acct.Loss()
		if l.Epsilon > max.Epsilon {
			max.Epsilon = l.Epsilon
		}
		if l.Delta > max.Delta {
			max.Delta = l.Delta
		}
	}
	return max
}

// BlockReport summarizes one block's accounting state for inspection
// tools (cmd/sagectl).
type BlockReport struct {
	ID      data.BlockID
	Loss    privacy.Budget
	Remain  privacy.Budget
	Queries int
	Retired bool
	// Reason distinguishes budget-exhausted, forced, and
	// retention-deleted retirements (RetireNone while active).
	Reason RetireReason
}

// Report returns per-block accounting state for the given blocks.
func (ac *AccessControl) Report(ids []data.BlockID) []BlockReport {
	ac.mu.Lock()
	defer ac.mu.Unlock()
	out := make([]BlockReport, 0, len(ids))
	for _, id := range ids {
		st, ok := ac.blocks[id]
		if !ok {
			continue
		}
		loss := st.acct.Loss()
		remain := ac.policy.Global.Sub(loss)
		if st.retired {
			remain = privacy.Zero
		}
		out = append(out, BlockReport{
			ID:      id,
			Loss:    loss,
			Remain:  remain,
			Queries: st.acct.NumSpends(),
			Retired: st.retired,
			Reason:  st.reason,
		})
	}
	return out
}
