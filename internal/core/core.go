// Package core implements Sage's central contribution: block composition
// accounting and the access-control layer that enforces a global (εg, δg)
// differential-privacy guarantee over every model and feature ever
// released from a sensitive data stream (§3.2 and §4 of the paper).
//
// The stream is split into disjoint blocks (by time for event-level
// privacy, by user ID for user-level privacy). Training pipelines request
// an (ε, δ) budget against an adaptively chosen set of blocks; the access
// control grants the request only if every involved block stays within
// the global ceiling. By Theorem 4.2, the privacy loss over the whole
// stream is the maximum per-block loss, so fresh blocks restore the
// platform's ability to train: Sage never runs out of budget as long as
// the database grows fast enough.
//
// # Sharding
//
// The block composition theorem is also a concurrency theorem: each
// block's budget is independent state, and the only stream-wide quantity
// is the max per-block loss. The ledger exploits that by striping blocks
// across N shards keyed by block id (NewShardedAccessControl), each with
// its own mutex and block map, so charges against disjoint blocks
// proceed in parallel. Operations naming blocks in several shards lock
// the involved shards in ascending index order (deadlock-free) and hold
// them all across the check/journal/deduct sequence, which preserves the
// all-or-nothing admission the ceiling proof needs: no interleaved
// charge can slip between this request's checks and its deductions. The
// stream-wide loss is additionally tracked by a pair of shared atomics —
// a monotone high-watermark updated with CAS-max on every spend
// (StreamLossWatermark) — so the global ceiling can be observed without
// stopping the world.
package core

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/data"
	"repro/internal/privacy"
)

// Policy configures the global DP guarantee enforced on each block of a
// stream.
type Policy struct {
	// Global is the (εg, δg) ceiling every block's cumulative privacy
	// loss must stay under.
	Global privacy.Budget
	// Arithmetic combines per-query budgets into a cumulative loss.
	// Nil defaults to basic composition (Theorem 4.3); strong variants
	// (Theorems A.1/A.2) permit more queries under the same ceiling.
	Arithmetic privacy.CompositionArithmetic
}

// RetireReason records why a block was retired, for audit output
// (cmd/sagectl's ledger and BlockReport).
type RetireReason string

const (
	// RetireNone means the block is active.
	RetireNone RetireReason = ""
	// RetireBudgetExhausted means the block's cumulative loss reached the
	// global ceiling through normal accounting; absent a retention hook
	// this retirement is reversible by refunds.
	RetireBudgetExhausted RetireReason = "budget-exhausted"
	// RetireForced means an operator called Retire; never reversible.
	RetireForced RetireReason = "forced"
	// RetireDataDeleted means the DP-retention hook ran on retirement and
	// deleted the block's raw data (§3.2); never reversible.
	RetireDataDeleted RetireReason = "retention-deleted"
)

// blockState tracks one block's accounting.
type blockState struct {
	acct    *privacy.Accountant
	retired bool
	// sticky marks retirements that must never be reversed: forced
	// retirements (Retire) and any retirement whose onRetire callback
	// ran — the DP-retention hook may have deleted the block's raw data
	// (§3.2), so a later budget refund cannot resurrect it.
	sticky bool
	// reason says why the block is retired (RetireNone while active).
	reason RetireReason
}

// shard is one stripe of the ledger: a mutex and the block states that
// hash to it. All fields are guarded by mu.
type shard struct {
	mu     sync.Mutex
	blocks map[data.BlockID]*blockState
}

// AccessControl is Sage's DP access-control layer for one sensitive
// stream (the "Sage Access Control" box of Fig. 2). It is safe for
// concurrent use: Request atomically checks and deducts budget across all
// blocks involved in a query, which is what makes adaptively chosen block
// sets sound (Alg. 4c, lines 7-8). Blocks are striped across shards (see
// the package docs); NewAccessControl gives one shard,
// NewShardedAccessControl stripes wider for contended write paths.
type AccessControl struct {
	policy Policy
	shards []*shard

	// cfgMu guards the configuration hooks, which are installed at
	// setup (before traffic) and read on every mutation.
	cfgMu    sync.RWMutex
	onRetire func(data.BlockID)
	// stage, when set (SetShardJournal / SetJournal), receives every
	// mutation before it is applied or acknowledged — the ledger half of
	// the durable platform core (see journal.go for the
	// crash-consistency argument). Multi-shard mutations are split into
	// one sub-record per involved shard.
	stage JournalStageFunc

	// watermarkEps/Delta hold math.Float64bits of the largest per-block
	// loss components ever observed — the shared-atomic view of the
	// global ceiling. Non-negative float64s compare like their bit
	// patterns, so CAS-max on the bits is CAS-max on the values.
	watermarkEps   atomic.Uint64
	watermarkDelta atomic.Uint64
}

// NewAccessControl returns an access-control layer enforcing the policy,
// with a single shard — the right default for tests, tools, and
// uncontended streams.
func NewAccessControl(policy Policy) *AccessControl {
	return NewShardedAccessControl(policy, 1)
}

// NewShardedAccessControl returns an access-control layer whose blocks
// are striped across nshards independent stripes. Panics if nshards < 1.
func NewShardedAccessControl(policy Policy, nshards int) *AccessControl {
	if err := policy.Global.Validate(); err != nil {
		panic(err)
	}
	if policy.Global.Epsilon <= 0 {
		panic("core: policy requires εg > 0")
	}
	if nshards < 1 {
		panic("core: shard count must be >= 1")
	}
	ac := &AccessControl{policy: policy, shards: make([]*shard, nshards)}
	for i := range ac.shards {
		ac.shards[i] = &shard{blocks: make(map[data.BlockID]*blockState)}
	}
	return ac
}

// shardMix spreads block ids across shards (Fibonacci hashing) so that
// sequential ids — daily blocks, dense user ids — do not stride into one
// stripe.
const shardMix = 0x9E3779B97F4A7C15

// ShardOf returns the shard index a block id maps to. The mapping is a
// pure function of (id, NumShards) and must stay stable across releases:
// internal/durable gives each shard its own WAL segment, so changing the
// mapping would replay a block's records into the wrong segment order.
func (ac *AccessControl) ShardOf(id data.BlockID) int {
	if len(ac.shards) == 1 {
		return 0
	}
	return int((uint64(id) * shardMix) % uint64(len(ac.shards)))
}

// NumShards returns the number of stripes the ledger was created with.
func (ac *AccessControl) NumShards() int { return len(ac.shards) }

// Policy returns the enforced policy.
func (ac *AccessControl) Policy() Policy { return ac.policy }

// SetRetireCallback registers a function invoked (synchronously, without
// the lock held by callers' view) whenever a block is retired. Sage's
// DP-informed retention policy hooks deletion of the raw data here.
//
//sage:nojournal configuration hook, not ledger state — recovery reinstalls it
func (ac *AccessControl) SetRetireCallback(f func(data.BlockID)) {
	ac.cfgMu.Lock()
	defer ac.cfgMu.Unlock()
	ac.onRetire = f
}

// retireCallback returns the installed retirement hook.
func (ac *AccessControl) retireCallback() func(data.BlockID) {
	ac.cfgMu.RLock()
	defer ac.cfgMu.RUnlock()
	return ac.onRetire
}

// noteLoss folds one block's post-mutation loss into the shared atomic
// stream-loss watermark.
func (ac *AccessControl) noteLoss(l privacy.Budget) {
	atomicMaxFloat(&ac.watermarkEps, l.Epsilon)
	atomicMaxFloat(&ac.watermarkDelta, l.Delta)
}

// atomicMaxFloat raises a to at least v (v non-negative) with CAS-max on
// the float's bit pattern.
func atomicMaxFloat(a *atomic.Uint64, v float64) {
	if v <= 0 {
		return
	}
	bits := math.Float64bits(v)
	for {
		cur := a.Load()
		if cur >= bits {
			return
		}
		if a.CompareAndSwap(cur, bits) {
			return
		}
	}
}

// StreamLossWatermark returns a monotone upper bound on the stream's
// privacy loss, read from shared atomics without taking any shard lock:
// the largest per-block (ε, δ) components ever reached. Unlike
// StreamLoss it never decreases when budget is refunded, and it is never
// torn — each component is a single atomic load. By the admission
// checks it can never exceed the global ceiling; the race test in
// shard_test.go pins that.
func (ac *AccessControl) StreamLossWatermark() privacy.Budget {
	return privacy.Budget{
		Epsilon: math.Float64frombits(ac.watermarkEps.Load()),
		Delta:   math.Float64frombits(ac.watermarkDelta.Load()),
	}
}

// shardGroup is the slice of one operation's block ids that live in one
// shard, in the operation's (deduplicated) order.
type shardGroup struct {
	shard int
	ids   []data.BlockID
}

// groupByShard buckets ids by shard, returning groups in ascending shard
// order — the lock acquisition order for multi-shard operations.
func (ac *AccessControl) groupByShard(ids []data.BlockID) []shardGroup {
	if len(ac.shards) == 1 {
		return []shardGroup{{shard: 0, ids: ids}}
	}
	perShard := make([][]data.BlockID, len(ac.shards))
	for _, id := range ids {
		k := ac.ShardOf(id)
		perShard[k] = append(perShard[k], id)
	}
	groups := make([]shardGroup, 0, 4)
	for k, g := range perShard {
		if len(g) > 0 {
			groups = append(groups, shardGroup{shard: k, ids: g})
		}
	}
	return groups
}

// lockGroups acquires the involved shards' locks in ascending index
// order (groups are sorted by construction).
func (ac *AccessControl) lockGroups(groups []shardGroup) {
	for _, g := range groups {
		ac.shards[g.shard].mu.Lock()
	}
}

func (ac *AccessControl) unlockGroups(groups []shardGroup) {
	for _, g := range groups {
		ac.shards[g.shard].mu.Unlock()
	}
}

// lockAll acquires every shard lock in ascending order — used by
// whole-ledger reads (Snapshot) that need one consistent cut.
func (ac *AccessControl) lockAll() {
	for _, sh := range ac.shards {
		sh.mu.Lock()
	}
}

func (ac *AccessControl) unlockAll() {
	for _, sh := range ac.shards {
		sh.mu.Unlock()
	}
}

// awaitAll waits on every journal durability ticket and returns the
// first error. Every ticket is always awaited — an abandoned ticket
// would leave a staged group-commit batch without a driver. Tickets
// are awaited concurrently: each Wait may itself drive a segment's
// group commit, and a multi-shard operation's latency should be the
// slowest segment's flush, not the sum of all of them.
func awaitAll(waits []func() error) error {
	if len(waits) == 1 {
		return waits[0]()
	}
	errs := make([]error, len(waits))
	var wg sync.WaitGroup
	for i, w := range waits {
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs[i] = w()
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// RegisterBlock makes a new block known to the access control with a
// fresh (zero) privacy loss. Registering an existing block is a no-op
// returning false (and is not journaled). With a journal installed, a
// journal failure panics: RegisterBlock has no error return, and a
// ledger that cannot journal must stop rather than diverge from its
// log.
//
//sage:journaled
func (ac *AccessControl) RegisterBlock(id data.BlockID) bool {
	k := ac.ShardOf(id)
	sh := ac.shards[k]
	sh.mu.Lock()
	if _, ok := sh.blocks[id]; ok {
		sh.mu.Unlock()
		return false
	}
	wait, err := ac.stageLocked(k, LedgerRecord{Op: LedgerRegister, Blocks: []data.BlockID{id}})
	if err != nil {
		sh.mu.Unlock()
		panic(err)
	}
	sh.blocks[id] = &blockState{acct: privacy.NewAccountant(ac.policy.Arithmetic)}
	sh.mu.Unlock()
	if wait != nil {
		if err := wait(); err != nil {
			panic(fmt.Errorf("core: journal %s: %w", LedgerRegister, err))
		}
	}
	return true
}

// NumBlocks returns the number of registered blocks.
func (ac *AccessControl) NumBlocks() int {
	n := 0
	for _, sh := range ac.shards {
		sh.mu.Lock()
		n += len(sh.blocks)
		sh.mu.Unlock()
	}
	return n
}

// ErrUnknownBlock is returned when a request names an unregistered block.
type ErrUnknownBlock struct{ ID data.BlockID }

func (e ErrUnknownBlock) Error() string {
	return fmt.Sprintf("core: unknown block %d", e.ID)
}

// ErrBlockExhausted is returned when a request would push a block's
// cumulative privacy loss over the global ceiling.
type ErrBlockExhausted struct {
	ID        data.BlockID
	Requested privacy.Budget
	Remaining privacy.Budget
}

func (e ErrBlockExhausted) Error() string {
	return fmt.Sprintf("core: block %d cannot afford %v (remaining %v)",
		e.ID, e.Requested, e.Remaining)
}

// uniqueIDs returns ids with duplicates removed, preserving first-
// occurrence order. Short lists — the common case: adaptive training
// windows are a few dozen blocks — are checked with a quadratic scan
// that allocates nothing when there are no duplicates; longer lists pay
// one map.
func uniqueIDs(ids []data.BlockID) []data.BlockID {
	if len(ids) <= 64 {
		for i := 1; i < len(ids); i++ {
			for j := 0; j < i; j++ {
				if ids[j] == ids[i] {
					return dedupIDs(ids)
				}
			}
		}
		return ids
	}
	seen := make(map[data.BlockID]struct{}, len(ids))
	for _, id := range ids {
		if _, dup := seen[id]; dup {
			return dedupIDs(ids)
		}
		seen[id] = struct{}{}
	}
	return ids
}

// dedupIDs filters ids to first occurrences. Called only when a
// duplicate is known to exist.
func dedupIDs(ids []data.BlockID) []data.BlockID {
	seen := make(map[data.BlockID]struct{}, len(ids))
	out := make([]data.BlockID, 0, len(ids))
	for _, id := range ids {
		if _, dup := seen[id]; !dup {
			seen[id] = struct{}{}
			out = append(out, id)
		}
	}
	return out
}

// Request atomically deducts budget b from every block in ids. If any
// block cannot afford it the whole request fails with ErrBlockExhausted
// (or ErrUnknownBlock) and no budget is deducted anywhere. This is the
// AccessControl predicate of Alg. (4c): the query may run only if every
// involved block stays within (εg, δg).
//
// Duplicate IDs in ids are coalesced: a query reads each block's data
// once however many times the block is named, so it is checked and
// charged once per distinct block. (Charging per occurrence while
// checking per occurrence against pre-spend state — the old behavior —
// let a request naming a block k times overshoot the ceiling by a factor
// of k.)
//
// With blocks spanning several shards, every involved shard is locked
// (ascending order) for the whole check/journal/deduct sequence — the
// all-or-nothing multi-shard reservation that keeps the ceiling
// invariant un-raceable — and the journal record is split into one
// sub-record per shard so each record lands in its shard's WAL segment.
//
//sage:journaled
func (ac *AccessControl) Request(ids []data.BlockID, b privacy.Budget) error {
	if len(ids) == 0 {
		return fmt.Errorf("core: request names no blocks")
	}
	if err := b.Validate(); err != nil {
		return err
	}
	if b.IsZero() {
		return nil
	}
	ids = uniqueIDs(ids)
	groups := ac.groupByShard(ids)
	cb := ac.retireCallback()
	var retiredNow []data.BlockID
	var waits []func() error
	ac.lockGroups(groups)
	err := func() error {
		// Phase 1: check every block, across every involved shard.
		for _, g := range groups {
			sh := ac.shards[g.shard]
			for _, id := range g.ids {
				st, ok := sh.blocks[id]
				if !ok {
					return ErrUnknownBlock{ID: id}
				}
				if st.retired || st.acct.WouldExceed(b, ac.policy.Global) {
					return ErrBlockExhausted{
						ID:        id,
						Requested: b,
						Remaining: ac.policy.Global.Sub(st.acct.Loss()),
					}
				}
			}
		}
		// Journal point: the request is admissible. One sub-record per
		// involved shard is staged in its shard's journal *before* any
		// deduction is applied or the caller acknowledged, so a crash
		// from here on can only leave the recovered ledger with (part
		// of) this spend applied-but-unacknowledged — conservative,
		// never the reverse. A staging failure aborts with no budget
		// deducted; already-staged sub-records then recover as unacked
		// over-counted spend, which is the allowed direction.
		for _, g := range groups {
			w, err := ac.stageLocked(g.shard, LedgerRecord{Op: LedgerRequest, Blocks: g.ids, Budget: b})
			if err != nil {
				return err
			}
			if w != nil {
				waits = append(waits, w)
			}
		}
		// Phase 2: deduct everywhere.
		for _, g := range groups {
			sh := ac.shards[g.shard]
			for _, id := range g.ids {
				st := sh.blocks[id]
				st.acct.Spend(b)
				ac.noteLoss(st.acct.Loss())
				if ac.shouldRetire(st) {
					st.retired = true
					st.reason = RetireBudgetExhausted
					// With a retention hook registered, the callback below
					// deletes the block's raw data: the retirement becomes
					// irreversible even if budget is refunded later.
					if cb != nil {
						st.sticky = true
						st.reason = RetireDataDeleted
					}
					retiredNow = append(retiredNow, id)
				}
			}
		}
		return nil
	}()
	ac.unlockGroups(groups)
	// Durability wait happens outside the shard locks: that is what lets
	// concurrent requests on the same shard stage into the same group-
	// commit batch instead of serializing one fdatasync each. A wait
	// failure means the spend may not be on disk — the caller is not
	// acknowledged (error return) and retirement side effects are
	// withheld; the in-memory deduction stands, which is conservative.
	if werr := awaitAll(waits); err == nil {
		err = werr
	}
	if err == nil && cb != nil {
		for _, id := range retiredNow {
			cb(id)
		}
	}
	return err
}

// shouldRetire reports whether a block has no usable budget left. A block
// is retired once the smallest meaningful request (ε = εg/1000) would
// exceed the ceiling; the paper retires blocks whose loss reaches the
// ceiling. Caller holds the block's shard lock.
func (ac *AccessControl) shouldRetire(st *blockState) bool {
	probe := privacy.Budget{Epsilon: ac.policy.Global.Epsilon / 1000}
	return st.acct.WouldExceed(probe, ac.policy.Global)
}

// Refund returns unspent budget to every block in ids. Pipelines reserve
// budget up front and refund what privacy-adaptive training did not use
// (§3.3). Refunding a block retired purely by budget exhaustion (no
// retention hook involved) un-retires it; forced retirements and
// retirements whose retention callback already ran stay retired — the
// raw data is gone, so regained budget cannot resurrect the block.
// Like Request, Refund is atomic: every id is validated before any block
// is mutated, so an unknown block leaves the ledger untouched instead of
// refunding a prefix. Duplicate IDs are coalesced for symmetry with
// Request — a reservation charged once per distinct block must be
// returned once per distinct block.
//
//sage:journaled
func (ac *AccessControl) Refund(ids []data.BlockID, b privacy.Budget) error {
	if err := b.Validate(); err != nil {
		return err
	}
	if b.IsZero() {
		return nil
	}
	ids = uniqueIDs(ids)
	groups := ac.groupByShard(ids)
	var waits []func() error
	ac.lockGroups(groups)
	err := func() error {
		// Phase 1: validate every block before touching any of them.
		for _, g := range groups {
			sh := ac.shards[g.shard]
			for _, id := range g.ids {
				if _, ok := sh.blocks[id]; !ok {
					return ErrUnknownBlock{ID: id}
				}
			}
		}
		// Journal before applying: a refund that reaches the log without
		// its acknowledgement only under-counts relative to the *reserved*
		// budget, never the consumed one — the matching Request is already
		// in the same shard's log (sub-records are split by shard, and
		// journal order within a shard is lock order), and a refund never
		// exceeds that reservation's unconsumed remainder.
		for _, g := range groups {
			w, err := ac.stageLocked(g.shard, LedgerRecord{Op: LedgerRefund, Blocks: g.ids, Budget: b})
			if err != nil {
				return err
			}
			if w != nil {
				waits = append(waits, w)
			}
		}
		// Phase 2: refund everywhere.
		for _, g := range groups {
			sh := ac.shards[g.shard]
			for _, id := range g.ids {
				st := sh.blocks[id]
				st.acct.Refund(b)
				if !st.sticky && !ac.shouldRetire(st) {
					st.retired = false
					st.reason = RetireNone
				}
			}
		}
		return nil
	}()
	ac.unlockGroups(groups)
	if werr := awaitAll(waits); err == nil {
		err = werr
	}
	return err
}

// Retire forcibly retires a block regardless of remaining budget. Forced
// retirement is sticky: no refund can reverse it.
//
//sage:journaled
func (ac *AccessControl) Retire(id data.BlockID) error {
	k := ac.ShardOf(id)
	sh := ac.shards[k]
	sh.mu.Lock()
	st, ok := sh.blocks[id]
	if !ok {
		sh.mu.Unlock()
		return ErrUnknownBlock{ID: id}
	}
	// A block that is already sticky-retired cannot change state (the
	// reason is already forced or retention-deleted): pure no-op, not
	// journaled — same rule as re-registering an existing block.
	if st.retired && st.sticky {
		sh.mu.Unlock()
		return nil
	}
	wait, err := ac.stageLocked(k, LedgerRecord{Op: LedgerRetire, Blocks: []data.BlockID{id}})
	if err != nil {
		sh.mu.Unlock()
		return err
	}
	already := st.retired
	st.retired = true
	st.sticky = true
	// An operator decision supersedes a (reversible) budget-exhaustion
	// reason, but never rewrites retention-deleted: the data is gone and
	// the audit trail should keep saying why.
	if st.reason != RetireDataDeleted {
		st.reason = RetireForced
	}
	cb := ac.retireCallback()
	sh.mu.Unlock()
	if wait != nil {
		if err := wait(); err != nil {
			return err
		}
	}
	if !already && cb != nil {
		cb(id)
	}
	return nil
}

// Retired reports whether a block has been retired.
func (ac *AccessControl) Retired(id data.BlockID) bool {
	sh := ac.shards[ac.ShardOf(id)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	st, ok := sh.blocks[id]
	return ok && st.retired
}

// BlockLoss returns a block's cumulative privacy loss under the policy's
// arithmetic (zero for unknown blocks).
func (ac *AccessControl) BlockLoss(id data.BlockID) privacy.Budget {
	sh := ac.shards[ac.ShardOf(id)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	st, ok := sh.blocks[id]
	if !ok {
		return privacy.Zero
	}
	return st.acct.Loss()
}

// Remaining returns the budget a block can still spend, conservatively
// computed as ceiling − loss. Under basic composition this is exact;
// under strong composition it understates what is actually spendable.
func (ac *AccessControl) Remaining(id data.BlockID) privacy.Budget {
	sh := ac.shards[ac.ShardOf(id)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	st, ok := sh.blocks[id]
	if !ok || st.retired {
		return privacy.Zero
	}
	return ac.policy.Global.Sub(st.acct.Loss())
}

// AvailableBlocks returns the registered, non-retired blocks that can
// still afford a request of at least the given budget, filtered from the
// candidate list (pass a GrowingDatabase's Blocks()). Order is preserved.
// Each candidate is evaluated under its own shard's lock, so no block's
// state is ever read torn; across shards the view is per-block
// consistent (the set may interleave with racing charges, as any
// point-in-time filter must).
func (ac *AccessControl) AvailableBlocks(candidates []data.BlockID, atLeast privacy.Budget) []data.BlockID {
	keep := make([]bool, len(candidates))
	ac.forEachShardOf(candidates, func(sh *shard, idx []int) {
		for _, i := range idx {
			st, ok := sh.blocks[candidates[i]]
			keep[i] = ok && !st.retired && !st.acct.WouldExceed(atLeast, ac.policy.Global)
		}
	})
	var out []data.BlockID
	for i, k := range keep {
		if k {
			out = append(out, candidates[i])
		}
	}
	return out
}

// forEachShardOf groups the candidate indexes by shard and runs fn once
// per involved shard under that shard's lock (one lock held at a time).
func (ac *AccessControl) forEachShardOf(ids []data.BlockID, fn func(sh *shard, idx []int)) {
	if len(ac.shards) == 1 {
		sh := ac.shards[0]
		idx := make([]int, len(ids))
		for i := range ids {
			idx[i] = i
		}
		sh.mu.Lock()
		fn(sh, idx)
		sh.mu.Unlock()
		return
	}
	perShard := make([][]int, len(ac.shards))
	for i, id := range ids {
		k := ac.ShardOf(id)
		perShard[k] = append(perShard[k], i)
	}
	for k, idx := range perShard {
		if len(idx) == 0 {
			continue
		}
		sh := ac.shards[k]
		sh.mu.Lock()
		fn(sh, idx)
		sh.mu.Unlock()
	}
}

// StreamLoss returns the privacy loss of the entire stream: by
// Theorem 4.2 it is the maximum cumulative loss over blocks, so the
// stream-wide guarantee is (εg, δg)-DP as long as every block stays under
// the ceiling (Theorem 4.3). Shards are scanned one lock at a time: each
// block's loss is read consistently, and at quiescence the result is
// exact. For a lock-free monotone bound see StreamLossWatermark.
func (ac *AccessControl) StreamLoss() privacy.Budget {
	max := privacy.Zero
	for _, sh := range ac.shards {
		sh.mu.Lock()
		for _, st := range sh.blocks {
			l := st.acct.Loss()
			if l.Epsilon > max.Epsilon {
				max.Epsilon = l.Epsilon
			}
			if l.Delta > max.Delta {
				max.Delta = l.Delta
			}
		}
		sh.mu.Unlock()
	}
	return max
}

// BlockReport summarizes one block's accounting state for inspection
// tools (cmd/sagectl).
type BlockReport struct {
	ID      data.BlockID
	Loss    privacy.Budget
	Remain  privacy.Budget
	Queries int
	Retired bool
	// Reason distinguishes budget-exhausted, forced, and
	// retention-deleted retirements (RetireNone while active).
	Reason RetireReason
}

// Report returns per-block accounting state for the given blocks, in
// their given order (unknown blocks are skipped). Each block's row is
// built under its shard's lock, so a row is never torn — loss, retired,
// and reason are one consistent read.
func (ac *AccessControl) Report(ids []data.BlockID) []BlockReport {
	rows := make([]*BlockReport, len(ids))
	ac.forEachShardOf(ids, func(sh *shard, idx []int) {
		for _, i := range idx {
			id := ids[i]
			st, ok := sh.blocks[id]
			if !ok {
				continue
			}
			loss := st.acct.Loss()
			remain := ac.policy.Global.Sub(loss)
			if st.retired {
				remain = privacy.Zero
			}
			rows[i] = &BlockReport{
				ID:      id,
				Loss:    loss,
				Remain:  remain,
				Queries: st.acct.NumSpends(),
				Retired: st.retired,
				Reason:  st.reason,
			}
		}
	})
	out := make([]BlockReport, 0, len(ids))
	for _, r := range rows {
		if r != nil {
			out = append(out, *r)
		}
	}
	return out
}
