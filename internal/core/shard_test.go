package core

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/data"
	"repro/internal/privacy"
)

// TestShardOfStable pins the id→shard mapping. internal/durable routes
// each shard's journal records to its own WAL segment, so this mapping
// is an on-disk compatibility surface: changing it would replay a
// block's records from the wrong segment. If this test fails you have
// broken recovery of every existing multi-segment durable directory.
func TestShardOfStable(t *testing.T) {
	policy := Policy{Global: privacy.MustBudget(1.0, 1e-6)}
	golden := map[int][]int{
		4: {0, 1, 2, 3, 0, 1, 2, 3, 0, 1, 2, 3},
		8: {0, 5, 2, 7, 4, 1, 6, 3, 0, 5, 2, 7},
	}
	for n, want := range golden {
		ac := NewShardedAccessControl(policy, n)
		for id, w := range want {
			if got := ac.ShardOf(data.BlockID(id)); got != w {
				t.Fatalf("ShardOf(%d) with %d shards = %d, want %d", id, n, got, w)
			}
		}
	}
	// One shard always maps to 0, whatever the id.
	ac := NewAccessControl(policy)
	if ac.NumShards() != 1 || ac.ShardOf(123456789) != 0 {
		t.Fatal("single-shard mapping broken")
	}
}

// TestShardedSemanticsMatchSingleShard runs the same scripted workload
// against a 1-shard and an 8-shard ledger and requires identical
// observable state — sharding is a layout change, not a semantics
// change.
func TestShardedSemanticsMatchSingleShard(t *testing.T) {
	policy := Policy{Global: privacy.MustBudget(1.0, 1e-6)}
	one := NewAccessControl(policy)
	many := NewShardedAccessControl(policy, 8)
	rng := rand.New(rand.NewSource(42))

	ids := make([]data.BlockID, 20)
	for i := range ids {
		ids[i] = data.BlockID(i)
		one.RegisterBlock(ids[i])
		many.RegisterBlock(ids[i])
	}
	// granted remembers reservations both ledgers admitted, so refunds
	// always return part of a real reservation (the only refunds the
	// platform issues).
	type grant struct {
		ids []data.BlockID
		b   privacy.Budget
	}
	var granted []grant
	for step := 0; step < 400; step++ {
		// Random subset, duplicates included to exercise coalescing.
		var subset []data.BlockID
		for n := rng.Intn(6) + 1; n > 0; n-- {
			subset = append(subset, ids[rng.Intn(len(ids))])
		}
		b := privacy.Budget{Epsilon: 0.05 + 0.1*rng.Float64(), Delta: 1e-9}
		switch op := rng.Intn(10); {
		case op == 0:
			id := ids[rng.Intn(len(ids))]
			e1, e2 := one.Retire(id), many.Retire(id)
			if (e1 == nil) != (e2 == nil) {
				t.Fatalf("step %d: retire diverged: %v vs %v", step, e1, e2)
			}
		case op <= 2 && len(granted) > 0:
			gi := rng.Intn(len(granted))
			g := granted[gi]
			half := privacy.Budget{Epsilon: g.b.Epsilon / 2, Delta: g.b.Delta / 2}
			e1, e2 := one.Refund(g.ids, half), many.Refund(g.ids, half)
			if (e1 == nil) != (e2 == nil) {
				t.Fatalf("step %d: refund diverged: %v vs %v", step, e1, e2)
			}
			granted = append(granted[:gi], granted[gi+1:]...)
		default:
			e1, e2 := one.Request(subset, b), many.Request(subset, b)
			if (e1 == nil) != (e2 == nil) {
				t.Fatalf("step %d: request diverged: %v vs %v", step, e1, e2)
			}
			if e1 == nil {
				granted = append(granted, grant{ids: subset, b: b})
			}
		}
	}
	if got, want := many.StreamLoss(), one.StreamLoss(); got != want {
		t.Fatalf("stream loss diverged: %v vs %v", got, want)
	}
	r1, r2 := one.Report(ids), many.Report(ids)
	if len(r1) != len(r2) {
		t.Fatalf("report lengths diverged: %d vs %d", len(r1), len(r2))
	}
	for i := range r1 {
		if r1[i] != r2[i] {
			t.Fatalf("block %d report diverged:\n one: %+v\nmany: %+v", r1[i].ID, r1[i], r2[i])
		}
	}
}

// TestShardedCeilingUnderConcurrency is the multi-shard version of the
// pinned ceiling property: goroutines hammer requests and refunds over
// random cross-shard block sets and no block may ever exceed the global
// ceiling. Run with -race in CI.
func TestShardedCeilingUnderConcurrency(t *testing.T) {
	global := privacy.MustBudget(1.0, 1e-6)
	ac := NewShardedAccessControl(Policy{Global: global}, 8)
	const nBlocks = 64
	ids := make([]data.BlockID, nBlocks)
	for i := range ids {
		ids[i] = data.BlockID(i * 7) // stride so ids spread over shards
		ac.RegisterBlock(ids[i])
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 300; i++ {
				var subset []data.BlockID
				for n := rng.Intn(8) + 1; n > 0; n-- {
					subset = append(subset, ids[rng.Intn(nBlocks)])
				}
				b := privacy.Budget{Epsilon: 0.02 + 0.2*rng.Float64()}
				if err := ac.Request(subset, b); err == nil && rng.Intn(3) == 0 {
					// Refund part of a granted reservation.
					_ = ac.Refund(subset, privacy.Budget{Epsilon: b.Epsilon / 2})
				}
			}
		}(int64(w))
	}
	wg.Wait()
	for _, r := range ac.Report(ids) {
		if !global.Covers(r.Loss) {
			t.Fatalf("block %d exceeded ceiling: loss %v > %v", r.ID, r.Loss, global)
		}
	}
	if sl := ac.StreamLoss(); !global.Covers(sl) {
		t.Fatalf("stream loss %v exceeds ceiling %v", sl, global)
	}
	if wm := ac.StreamLossWatermark(); !global.Covers(wm) {
		t.Fatalf("watermark %v exceeds ceiling %v", wm, global)
	}
}

// TestConcurrentLedgerReads pins that the read API returns consistent,
// untorn views while charges race across shards: every Report row is
// internally consistent, AvailableBlocks never returns a retired block
// as of its shard-locked read, StreamLoss/StreamLossWatermark never
// exceed the ceiling mid-flight, and at quiescence the watermark bounds
// the exact stream loss from above. Run with -race in CI.
func TestConcurrentLedgerReads(t *testing.T) {
	global := privacy.MustBudget(1.0, 1e-6)
	ac := NewShardedAccessControl(Policy{Global: global}, 8)
	const nBlocks = 48
	ids := make([]data.BlockID, nBlocks)
	for i := range ids {
		ids[i] = data.BlockID(i)
		ac.RegisterBlock(ids[i])
	}

	stop := make(chan struct{})
	var writers sync.WaitGroup
	for w := 0; w < 4; w++ {
		writers.Add(1)
		go func(seed int64) {
			defer writers.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 500; i++ {
				var subset []data.BlockID
				for n := rng.Intn(6) + 1; n > 0; n-- {
					subset = append(subset, ids[rng.Intn(nBlocks)])
				}
				b := privacy.Budget{Epsilon: 0.01 + 0.05*rng.Float64()}
				if err := ac.Request(subset, b); err == nil && rng.Intn(4) == 0 {
					_ = ac.Refund(subset, privacy.Budget{Epsilon: b.Epsilon / 2})
				}
			}
		}(int64(100 + w))
	}

	var readers sync.WaitGroup
	readErr := make(chan error, 4)
	for r := 0; r < 3; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			probe := privacy.Budget{Epsilon: 0.01}
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, row := range ac.Report(ids) {
					if !global.Covers(row.Loss) {
						readErr <- fmt.Errorf("torn/overflowed report row: block %d loss %v", row.ID, row.Loss)
						return
					}
					if row.Retired && !row.Remain.IsZero() {
						readErr <- fmt.Errorf("inconsistent row: block %d retired with remain %v", row.ID, row.Remain)
						return
					}
					if !row.Retired {
						if want := global.Sub(row.Loss); row.Remain != want {
							readErr <- fmt.Errorf("torn row: block %d remain %v, want ceiling-loss %v", row.ID, row.Remain, want)
							return
						}
					}
				}
				_ = ac.AvailableBlocks(ids, probe)
				if sl := ac.StreamLoss(); !global.Covers(sl) {
					readErr <- fmt.Errorf("stream loss %v over ceiling mid-flight", sl)
					return
				}
				if wm := ac.StreamLossWatermark(); !global.Covers(wm) {
					readErr <- fmt.Errorf("watermark %v over ceiling mid-flight", wm)
					return
				}
			}
		}()
	}

	writers.Wait()
	close(stop)
	readers.Wait()
	select {
	case err := <-readErr:
		t.Fatal(err)
	default:
	}

	// Quiescent: the monotone watermark must bound the exact loss, and
	// the exact loss must match a fresh per-block max.
	sl, wm := ac.StreamLoss(), ac.StreamLossWatermark()
	if wm.Epsilon < sl.Epsilon || wm.Delta < sl.Delta {
		t.Fatalf("watermark %v below quiescent stream loss %v", wm, sl)
	}
	var maxEps, maxDelta float64
	for _, row := range ac.Report(ids) {
		if row.Loss.Epsilon > maxEps {
			maxEps = row.Loss.Epsilon
		}
		if row.Loss.Delta > maxDelta {
			maxDelta = row.Loss.Delta
		}
	}
	if sl.Epsilon != maxEps || sl.Delta != maxDelta {
		t.Fatalf("quiescent stream loss %v != per-block max (%g, %g)", sl, maxEps, maxDelta)
	}
}

// TestMultiShardRequestAtomicity pins all-or-nothing admission across
// shards: a request naming blocks in several shards where one block
// cannot afford it must deduct nothing anywhere.
func TestMultiShardRequestAtomicity(t *testing.T) {
	global := privacy.MustBudget(1.0, 1e-6)
	ac := NewShardedAccessControl(Policy{Global: global}, 8)
	ids := []data.BlockID{0, 1, 2, 3, 4, 5, 6, 7} // spread over all 8 shards
	for _, id := range ids {
		ac.RegisterBlock(id)
	}
	// Exhaust one block.
	poor := ids[5]
	if err := ac.Request([]data.BlockID{poor}, privacy.Budget{Epsilon: 1.0}); err != nil {
		t.Fatal(err)
	}
	// A cross-shard request including the exhausted block must fail and
	// leave every other block untouched.
	if err := ac.Request(ids, privacy.Budget{Epsilon: 0.5}); err == nil {
		t.Fatal("request through exhausted block granted")
	}
	for _, id := range ids {
		if id == poor {
			continue
		}
		if loss := ac.BlockLoss(id); !loss.IsZero() {
			t.Fatalf("failed request leaked spend into block %d: %v", id, loss)
		}
	}
	// Same for refunds: one unknown block must abort the whole refund.
	if err := ac.Refund(append(append([]data.BlockID{}, ids[:4]...), 999), privacy.Budget{Epsilon: 0.1}); err == nil {
		t.Fatal("refund with unknown block accepted")
	}
	if loss := ac.BlockLoss(poor); loss.Epsilon != 1.0 {
		t.Fatalf("aborted refund mutated block %d: %v", poor, loss)
	}
}

// TestShardJournalSplitsRecords pins the per-shard journal contract: a
// multi-shard mutation stages exactly one sub-record per involved
// shard, each naming only blocks of that shard, whose union is the
// whole mutation.
func TestShardJournalSplitsRecords(t *testing.T) {
	policy := Policy{Global: privacy.MustBudget(10.0, 1e-6)}
	ac := NewShardedAccessControl(policy, 4)
	type staged struct {
		shard int
		rec   LedgerRecord
	}
	var got []staged
	ac.SetShardJournal(func(shard int, rec LedgerRecord) (func() error, error) {
		got = append(got, staged{shard, rec})
		return nil, nil
	})
	ids := []data.BlockID{0, 1, 2, 3, 4, 5} // shards 0 1 2 3 0 1 (golden map)
	for _, id := range ids {
		ac.RegisterBlock(id)
	}
	got = nil
	if err := ac.Request(ids, privacy.Budget{Epsilon: 0.5}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 {
		t.Fatalf("request over 4 shards staged %d sub-records, want 4", len(got))
	}
	var union []data.BlockID
	lastShard := -1
	for _, s := range got {
		if s.rec.Op != LedgerRequest {
			t.Fatalf("staged op %v, want request", s.rec.Op)
		}
		if s.shard <= lastShard {
			t.Fatalf("sub-records not in ascending shard order: %d after %d", s.shard, lastShard)
		}
		lastShard = s.shard
		for _, id := range s.rec.Blocks {
			if ac.ShardOf(id) != s.shard {
				t.Fatalf("sub-record for shard %d names block %d of shard %d", s.shard, id, ac.ShardOf(id))
			}
			union = append(union, id)
		}
	}
	if len(union) != len(ids) {
		t.Fatalf("sub-records cover %d blocks, want %d", len(union), len(ids))
	}
	seen := map[data.BlockID]bool{}
	for _, id := range union {
		if seen[id] {
			t.Fatalf("block %d journaled twice", id)
		}
		seen[id] = true
	}
}

// TestShardedSnapshotRoundTrip pins that per-shard snapshots restored
// one at a time (merge semantics) reassemble exactly the state a full
// snapshot captures — the multi-segment recovery path.
func TestShardedSnapshotRoundTrip(t *testing.T) {
	policy := Policy{Global: privacy.MustBudget(2.0, 1e-6), Arithmetic: privacy.StrongArithmetic{DeltaSlack: 1e-9}}
	ac := NewShardedAccessControl(policy, 4)
	for i := 0; i < 16; i++ {
		ac.RegisterBlock(data.BlockID(i))
	}
	for i := 0; i < 16; i += 2 {
		if err := ac.Request([]data.BlockID{data.BlockID(i), data.BlockID(i + 1)}, privacy.Budget{Epsilon: 0.3, Delta: 1e-8}); err != nil {
			t.Fatal(err)
		}
	}
	if err := ac.Retire(3); err != nil {
		t.Fatal(err)
	}

	restored := NewShardedAccessControl(policy, 4)
	for k := 0; k < ac.NumShards(); k++ {
		if err := restored.RestoreSnapshot(ac.SnapshotShard(k)); err != nil {
			t.Fatalf("restore shard %d: %v", k, err)
		}
	}
	all := ac.Blocks()
	if got := restored.Blocks(); len(got) != len(all) {
		t.Fatalf("restored %d blocks, want %d", len(got), len(all))
	}
	ra, rb := ac.Report(all), restored.Report(all)
	for i := range ra {
		if ra[i] != rb[i] {
			t.Fatalf("block %d diverged after per-shard restore:\nwant %+v\n got %+v", ra[i].ID, ra[i], rb[i])
		}
	}
	if restored.StreamLoss() != ac.StreamLoss() {
		t.Fatalf("stream loss diverged: %v vs %v", restored.StreamLoss(), ac.StreamLoss())
	}
	// Shard snapshots must also restore into a *differently* sharded
	// ledger (ids re-route by ShardOf) — a 1-shard tool reading an
	// 8-shard dir must see the same ledger.
	wide := NewAccessControl(policy)
	for k := 0; k < ac.NumShards(); k++ {
		if err := wide.RestoreSnapshot(ac.SnapshotShard(k)); err != nil {
			t.Fatal(err)
		}
	}
	if wide.StreamLoss() != ac.StreamLoss() {
		t.Fatal("cross-shard-count restore diverged")
	}
}
