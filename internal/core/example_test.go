package core_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/privacy"
)

// Example demonstrates the block-composition accounting loop: two
// queries on overlapping block sets, with the stream-wide loss equal to
// the maximum per-block loss rather than the sum of query budgets.
func Example() {
	ac := core.NewAccessControl(core.Policy{Global: privacy.MustBudget(1.0, 1e-6)})
	for id := data.BlockID(1); id <= 3; id++ {
		ac.RegisterBlock(id)
	}

	// Q1 trains on blocks {1, 2}; Q2 on blocks {2, 3}.
	_ = ac.Request([]data.BlockID{1, 2}, privacy.MustBudget(0.4, 0))
	_ = ac.Request([]data.BlockID{2, 3}, privacy.MustBudget(0.5, 0))

	fmt.Println("block 1:", ac.BlockLoss(1))
	fmt.Println("block 2:", ac.BlockLoss(2))
	fmt.Println("stream :", ac.StreamLoss())
	// Output:
	// block 1: (ε=0.4, δ=0)
	// block 2: (ε=0.9, δ=0)
	// stream : (ε=0.9, δ=0)
}

// ExampleAccessControl_Request shows the all-or-nothing semantics: a
// request that any involved block cannot afford deducts nothing.
func ExampleAccessControl_Request() {
	ac := core.NewAccessControl(core.Policy{Global: privacy.MustBudget(1.0, 0)})
	ac.RegisterBlock(1)
	ac.RegisterBlock(2)
	_ = ac.Request([]data.BlockID{2}, privacy.MustBudget(0.9, 0)) // drain block 2

	err := ac.Request([]data.BlockID{1, 2}, privacy.MustBudget(0.5, 0))
	fmt.Println("error:", err != nil)
	fmt.Println("block 1 untouched:", ac.BlockLoss(1).IsZero())
	// Output:
	// error: true
	// block 1 untouched: true
}
