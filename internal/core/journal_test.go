package core

import (
	"errors"
	"reflect"
	"testing"

	"repro/internal/data"
	"repro/internal/privacy"
)

// collectJournal installs a journal that appends every record to a
// slice and returns the slice pointer.
func collectJournal(ac *AccessControl) *[]LedgerRecord {
	var records []LedgerRecord
	ac.SetJournal(func(rec LedgerRecord) error {
		records = append(records, rec)
		return nil
	})
	return &records
}

// replayRecords applies journal records to a fresh ledger through the
// public mutation methods — exactly what internal/durable's recovery
// does.
func replayRecords(t *testing.T, ac *AccessControl, records []LedgerRecord) {
	t.Helper()
	for i, rec := range records {
		var err error
		switch rec.Op {
		case LedgerRegister:
			for _, id := range rec.Blocks {
				ac.RegisterBlock(id)
			}
		case LedgerRequest:
			err = ac.Request(rec.Blocks, rec.Budget)
		case LedgerRefund:
			err = ac.Refund(rec.Blocks, rec.Budget)
		case LedgerRetire:
			for _, id := range rec.Blocks {
				err = ac.Retire(id)
			}
		}
		if err != nil {
			t.Fatalf("replaying record %d (%v): %v", i, rec.Op, err)
		}
	}
}

func TestLedgerRecordRoundTrip(t *testing.T) {
	cases := []LedgerRecord{
		{Op: LedgerRegister, Blocks: []data.BlockID{7}},
		{Op: LedgerRequest, Blocks: []data.BlockID{1, 2, 3}, Budget: privacy.MustBudget(0.25, 1e-8)},
		{Op: LedgerRefund, Blocks: []data.BlockID{2}, Budget: privacy.MustBudget(0.125, 0)},
		{Op: LedgerRetire, Blocks: []data.BlockID{42}},
	}
	for _, want := range cases {
		got, err := DecodeLedgerRecord(want.Encode())
		if err != nil {
			t.Fatalf("%v: %v", want.Op, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("round trip: got %+v, want %+v", got, want)
		}
	}
}

func TestLedgerRecordDecodeRejectsDamage(t *testing.T) {
	rec := LedgerRecord{Op: LedgerRequest, Blocks: []data.BlockID{1, 2}, Budget: privacy.MustBudget(0.5, 0)}
	raw := rec.Encode()
	if _, err := DecodeLedgerRecord(raw[:len(raw)-1]); err == nil {
		t.Fatal("truncated record decoded")
	}
	if _, err := DecodeLedgerRecord(append(append([]byte{}, raw...), 0)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
	bad := append([]byte{}, raw...)
	bad[0] = 99
	if _, err := DecodeLedgerRecord(bad); err == nil {
		t.Fatal("unknown op accepted")
	}
	// A block count so large that count*8 overflows must produce a
	// decode error, not a makeslice panic (corruption can pass the WAL
	// CRC if it happened before the frame was written).
	huge := append([]byte{byte(LedgerRequest)}, AppendUint(nil, 1<<61)...)
	huge = AppendFloat(huge, 0.5)
	huge = AppendFloat(huge, 0)
	if _, err := DecodeLedgerRecord(huge); err == nil {
		t.Fatal("overflowing block count accepted")
	}
}

// TestJournalBeforeAcknowledge pins the crash-consistency rule: each
// mutation's record reaches the journal, and a journal failure leaves
// the ledger exactly as it was.
func TestJournalBeforeAcknowledge(t *testing.T) {
	ac := NewAccessControl(Policy{Global: privacy.MustBudget(1.0, 1e-6)})
	records := collectJournal(ac)
	ids := []data.BlockID{1, 2, 3}
	for _, id := range ids {
		ac.RegisterBlock(id)
	}
	budget := privacy.MustBudget(0.25, 1e-8)
	// Duplicates must be journaled deduplicated, matching what is
	// charged.
	if err := ac.Request([]data.BlockID{1, 2, 2, 3, 1}, budget); err != nil {
		t.Fatal(err)
	}
	if err := ac.Refund(ids, privacy.MustBudget(0.125, 0)); err != nil {
		t.Fatal(err)
	}
	if err := ac.Retire(3); err != nil {
		t.Fatal(err)
	}
	want := []LedgerRecord{
		{Op: LedgerRegister, Blocks: []data.BlockID{1}},
		{Op: LedgerRegister, Blocks: []data.BlockID{2}},
		{Op: LedgerRegister, Blocks: []data.BlockID{3}},
		{Op: LedgerRequest, Blocks: ids, Budget: budget},
		{Op: LedgerRefund, Blocks: ids, Budget: privacy.MustBudget(0.125, 0)},
		{Op: LedgerRetire, Blocks: []data.BlockID{3}},
	}
	if !reflect.DeepEqual(*records, want) {
		t.Fatalf("journal:\n got %+v\nwant %+v", *records, want)
	}

	// Re-registering is a no-op and must not journal.
	n := len(*records)
	if ac.RegisterBlock(1) {
		t.Fatal("re-register reported true")
	}
	if len(*records) != n {
		t.Fatal("no-op register journaled")
	}

	// Retiring an already-sticky-retired block is a no-op and must not
	// journal (block 3 was force-retired above).
	n = len(*records)
	if err := ac.Retire(3); err != nil {
		t.Fatal(err)
	}
	if len(*records) != n {
		t.Fatal("no-op retire journaled")
	}

	// A failing journal vetoes the mutation.
	boom := errors.New("disk gone")
	ac.SetJournal(func(LedgerRecord) error { return boom })
	before := ac.BlockLoss(1)
	if err := ac.Request([]data.BlockID{1}, budget); !errors.Is(err, boom) {
		t.Fatalf("request with failing journal: %v", err)
	}
	if got := ac.BlockLoss(1); got != before {
		t.Fatalf("failed journal still deducted: %v vs %v", got, before)
	}
	if err := ac.Refund([]data.BlockID{1}, privacy.MustBudget(0.01, 0)); !errors.Is(err, boom) {
		t.Fatalf("refund with failing journal: %v", err)
	}
	if got := ac.BlockLoss(1); got != before {
		t.Fatalf("failed refund journal still applied: %v vs %v", got, before)
	}
	if err := ac.Retire(1); !errors.Is(err, boom) {
		t.Fatalf("retire with failing journal: %v", err)
	}
	if ac.Retired(1) {
		t.Fatal("failed retire journal still retired the block")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("RegisterBlock with failing journal did not panic")
			}
		}()
		ac.RegisterBlock(99)
	}()
	if ac.NumBlocks() != 3 {
		t.Fatalf("failed register still added block: %d", ac.NumBlocks())
	}
}

// TestReplayReconstructsLedger: applying the journal to a fresh ledger
// yields bit-identical accounting state, including retirement reasons
// and sticky bits under a retention hook.
func TestReplayReconstructsLedger(t *testing.T) {
	policy := Policy{Global: privacy.MustBudget(1.0, 1e-6)}
	build := func() (*AccessControl, *int) {
		deleted := 0
		ac := NewAccessControl(policy)
		ac.SetRetireCallback(func(data.BlockID) { deleted++ })
		return ac, &deleted
	}
	ac, deleted := build()
	records := collectJournal(ac)

	for id := data.BlockID(0); id < 6; id++ {
		ac.RegisterBlock(id)
	}
	// A mix of grants, refunds, exhaustion retirement (sticky via the
	// retention hook), and a forced retire.
	if err := ac.Request([]data.BlockID{0, 1, 2}, privacy.MustBudget(0.5, 1e-8)); err != nil {
		t.Fatal(err)
	}
	if err := ac.Refund([]data.BlockID{2}, privacy.MustBudget(0.25, 0)); err != nil {
		t.Fatal(err)
	}
	if err := ac.Request([]data.BlockID{0, 3}, privacy.MustBudget(0.5, 1e-8)); err != nil {
		t.Fatal(err) // exhausts block 0 → retention hook fires
	}
	if err := ac.Retire(4); err != nil {
		t.Fatal(err)
	}

	replayed, replayedDeleted := build()
	replayRecords(t, replayed, *records)

	ids := replayed.Blocks()
	if !reflect.DeepEqual(ids, ac.Blocks()) {
		t.Fatalf("block sets differ: %v vs %v", ids, ac.Blocks())
	}
	if !reflect.DeepEqual(replayed.Report(ids), ac.Report(ids)) {
		t.Fatalf("reports differ:\n got %+v\nwant %+v", replayed.Report(ids), ac.Report(ids))
	}
	if replayed.StreamLoss() != ac.StreamLoss() {
		t.Fatalf("stream loss differs: %v vs %v", replayed.StreamLoss(), ac.StreamLoss())
	}
	if *replayedDeleted != *deleted {
		t.Fatalf("retention hook fired %d times on replay, %d originally", *replayedDeleted, *deleted)
	}
	// The replayed ledger must behave identically going forward: block 0
	// was retention-deleted, so a refund cannot resurrect it.
	for _, a := range []*AccessControl{ac, replayed} {
		if err := a.Refund([]data.BlockID{0}, privacy.MustBudget(0.9, 0)); err != nil {
			t.Fatal(err)
		}
		if !a.Retired(0) {
			t.Fatal("retention-deleted block resurrected by refund")
		}
	}
}

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	for _, arith := range []privacy.CompositionArithmetic{
		nil, // basic
		privacy.StrongArithmetic{DeltaSlack: 1e-9},
	} {
		name := "basic"
		if arith != nil {
			name = arith.Name()
		}
		t.Run(name, func(t *testing.T) {
			policy := Policy{Global: privacy.MustBudget(1.0, 1e-6), Arithmetic: arith}
			ac := NewAccessControl(policy)
			ac.SetRetireCallback(func(data.BlockID) {})
			for id := data.BlockID(0); id < 5; id++ {
				ac.RegisterBlock(id)
			}
			for i := 0; i < 6; i++ {
				_ = ac.Request([]data.BlockID{data.BlockID(i % 5), data.BlockID((i + 1) % 5)},
					privacy.MustBudget(0.125, 1e-9))
			}
			_ = ac.Refund([]data.BlockID{1}, privacy.MustBudget(0.05, 0))
			_ = ac.Retire(4)

			restored := NewAccessControl(policy)
			if err := restored.RestoreSnapshot(ac.Snapshot()); err != nil {
				t.Fatal(err)
			}
			ids := ac.Blocks()
			if !reflect.DeepEqual(restored.Blocks(), ids) {
				t.Fatalf("blocks differ: %v vs %v", restored.Blocks(), ids)
			}
			if !reflect.DeepEqual(restored.Report(ids), ac.Report(ids)) {
				t.Fatalf("reports differ:\n got %+v\nwant %+v", restored.Report(ids), ac.Report(ids))
			}
			if restored.StreamLoss() != ac.StreamLoss() {
				t.Fatalf("stream loss differs: %v vs %v", restored.StreamLoss(), ac.StreamLoss())
			}
		})
	}
}

func TestRestoreSnapshotRejectsDamage(t *testing.T) {
	ac := NewAccessControl(Policy{Global: privacy.MustBudget(1.0, 1e-6)})
	ac.RegisterBlock(1)
	_ = ac.Request([]data.BlockID{1}, privacy.MustBudget(0.5, 0))
	snap := ac.Snapshot()

	fresh := func() *AccessControl {
		return NewAccessControl(Policy{Global: privacy.MustBudget(1.0, 1e-6)})
	}
	if err := fresh().RestoreSnapshot(snap[:len(snap)-3]); err == nil {
		t.Fatal("truncated snapshot restored")
	}
	if err := fresh().RestoreSnapshot(append(append([]byte{}, snap...), 1, 2, 3)); err == nil {
		t.Fatal("snapshot with trailing bytes restored")
	}
	bad := append([]byte{}, snap...)
	bad[7] = 99 // version field (big-endian uint64 low byte)
	if err := fresh().RestoreSnapshot(bad); err == nil {
		t.Fatal("wrong-version snapshot restored")
	}
	// Restoring under a tighter ceiling must fail closed, matching the
	// op-replay path (whose admission checks would reject the request).
	tight := NewAccessControl(Policy{Global: privacy.MustBudget(0.25, 1e-6)})
	if err := tight.RestoreSnapshot(snap); err == nil {
		t.Fatal("snapshot with loss above the ceiling restored under tighter policy")
	}
}

func TestCursorRoundTrip(t *testing.T) {
	buf := AppendString(nil, "hello")
	buf = AppendUint(buf, 12345)
	buf = AppendFloat(buf, -0.25)
	buf = AppendFloats(buf, []float64{1, 2, 3})
	buf = AppendBlockIDs(buf, []data.BlockID{9, 8})
	buf = append(buf, 0x7F)

	c := NewCursor(buf)
	if s := c.String(); s != "hello" {
		t.Fatalf("String = %q", s)
	}
	if u := c.Uint(); u != 12345 {
		t.Fatalf("Uint = %d", u)
	}
	if f := c.Float(); f != -0.25 {
		t.Fatalf("Float = %v", f)
	}
	if fs := c.Floats(); !reflect.DeepEqual(fs, []float64{1, 2, 3}) {
		t.Fatalf("Floats = %v", fs)
	}
	if ids := c.BlockIDs(); !reflect.DeepEqual(ids, []data.BlockID{9, 8}) {
		t.Fatalf("BlockIDs = %v", ids)
	}
	if b := c.Byte(); b != 0x7F {
		t.Fatalf("Byte = %x", b)
	}
	if c.Err() != nil || c.Remaining() != 0 {
		t.Fatalf("err %v, remaining %d", c.Err(), c.Remaining())
	}
	// Reads past the end are sticky errors, not panics.
	if c.Uint(); c.Err() == nil {
		t.Fatal("read past end did not error")
	}
	// A length prefix larger than the buffer must fail cleanly, not
	// allocate.
	huge := AppendUint(nil, 1<<40)
	if NewCursor(huge).Floats(); NewCursor(huge).Err() != nil {
		t.Fatal("fresh cursor should not have an error yet")
	}
	c2 := NewCursor(huge)
	if c2.Floats(); c2.Err() == nil {
		t.Fatal("overlong float slice accepted")
	}
}
