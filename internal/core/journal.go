package core

// Write-ahead journaling for the privacy ledger. The paper's central
// guarantee — no block's cumulative privacy loss ever exceeds (εg, δg),
// and no deduction is ever forgotten — is only as strong as the
// ledger's memory. An in-memory AccessControl that dies between
// granting a Request and the release being published *loses spend*,
// which silently breaks block composition: the recovered platform would
// re-grant budget that was already consumed.
//
// The journal closes that hole with one rule: every mutation is
// journaled *before it is acknowledged*. Request journals after its
// admission checks pass and before any budget is deducted or the caller
// unblocked; Refund, RegisterBlock, and Retire journal before mutating.
// A crash can therefore leave the journal strictly *ahead* of what
// callers observed, never behind: replaying it may re-apply a spend
// whose acknowledgement never arrived (conservative — budget is wasted,
// privacy is not), but it can never drop a spend that was acknowledged.
// Refund records are only ever journaled after the Request they correct
// (journal order is mutation order, both taken under the ledger lock),
// so a recovered ledger's per-block loss is always ≥ the budget
// actually consumed by acknowledged releases.
//
// The ledger does not know about files: it calls an injected journal
// func with a LedgerRecord and treats a non-nil error as "this mutation
// cannot be made durable" — the operation fails and state is untouched.
// internal/durable binds the func to a wal.Log and replays records on
// open by calling the same public methods, with the journal unset, so
// recovery exercises exactly the code paths that produced the records.

import (
	"fmt"
	"sort"

	"repro/internal/data"
	"repro/internal/privacy"
)

// LedgerOp enumerates the journaled ledger mutations.
type LedgerOp byte

const (
	// LedgerRegister records RegisterBlock (Blocks has one entry,
	// Budget is zero).
	LedgerRegister LedgerOp = 1
	// LedgerRequest records a granted Request: Budget deducted from
	// every block in Blocks (already deduplicated).
	LedgerRequest LedgerOp = 2
	// LedgerRefund records a Refund of Budget to every block in Blocks.
	LedgerRefund LedgerOp = 3
	// LedgerRetire records a forced Retire (Blocks has one entry).
	LedgerRetire LedgerOp = 4
)

func (op LedgerOp) String() string {
	switch op {
	case LedgerRegister:
		return "register"
	case LedgerRequest:
		return "request"
	case LedgerRefund:
		return "refund"
	case LedgerRetire:
		return "retire"
	default:
		return fmt.Sprintf("ledger-op(%d)", byte(op))
	}
}

// LedgerRecord is one journaled ledger mutation, encoded canonically
// (audit.go helpers) so the journal doubles as an audit trail: the same
// fixed-order, bit-exact serialization that digests releases.
type LedgerRecord struct {
	Op     LedgerOp
	Blocks []data.BlockID
	Budget privacy.Budget
}

// Encode returns the record's canonical serialization.
func (r LedgerRecord) Encode() []byte {
	buf := make([]byte, 0, 1+8+len(r.Blocks)*8+16)
	buf = append(buf, byte(r.Op))
	buf = AppendBlockIDs(buf, r.Blocks)
	buf = AppendFloat(buf, r.Budget.Epsilon)
	return AppendFloat(buf, r.Budget.Delta)
}

// DecodeLedgerRecord parses a canonical ledger record.
func DecodeLedgerRecord(raw []byte) (LedgerRecord, error) {
	c := NewCursor(raw)
	rec := LedgerRecord{
		Op:     LedgerOp(c.Byte()),
		Blocks: c.BlockIDs(),
	}
	rec.Budget.Epsilon = c.Float()
	rec.Budget.Delta = c.Float()
	if err := c.Err(); err != nil {
		return LedgerRecord{}, fmt.Errorf("core: ledger record: %w", err)
	}
	if c.Remaining() != 0 {
		return LedgerRecord{}, fmt.Errorf("core: ledger record: %d trailing bytes", c.Remaining())
	}
	switch rec.Op {
	case LedgerRegister, LedgerRequest, LedgerRefund, LedgerRetire:
	default:
		return LedgerRecord{}, fmt.Errorf("core: ledger record: unknown op %d", byte(rec.Op))
	}
	return rec, nil
}

// JournalStageFunc is the sharded, staged journal interface. The ledger
// calls it under the named shard's lock with one sub-record whose blocks
// all map to that shard; a multi-shard mutation is split into one call
// per involved shard. Staging must make the record's eventual durability
// inevitable-or-failed: the returned wait func blocks until the record
// is durable (or the write failed) and is called by the ledger *after*
// releasing the shard locks — that is what lets concurrent mutations on
// one shard share a group-commit fdatasync. A nil wait means the record
// was made durable synchronously. A non-nil error from staging aborts
// the mutation with no state applied.
type JournalStageFunc func(shard int, rec LedgerRecord) (wait func() error, err error)

// SetJournal installs a synchronous write-ahead journal. Every
// subsequent mutation calls it, under the mutated shard's lock, before
// any state changes or the caller is acknowledged; a non-nil return
// aborts the mutation. Multi-shard mutations are split into one
// sub-record per involved shard (with a single shard — NewAccessControl
// — every record arrives whole, which is what the journal-order tests
// pin). Install the journal *after* replaying recovered records —
// replay uses the public mutation methods, and a set journal would
// re-journal them. RegisterBlock and Publish-style paths that cannot
// surface an error treat a journal failure as fatal (panic): a durable
// ledger that can no longer journal must stop taking mutations rather
// than silently diverge from its log.
//
//sage:nojournal installs the journal itself; runs before any journal exists
func (ac *AccessControl) SetJournal(journal func(LedgerRecord) error) {
	if journal == nil {
		ac.SetShardJournal(nil)
		return
	}
	ac.SetShardJournal(func(_ int, rec LedgerRecord) (func() error, error) {
		return nil, journal(rec)
	})
}

// SetShardJournal installs the staged, shard-aware journal (see
// JournalStageFunc). internal/durable binds each shard to its own WAL
// segment here; SetJournal is the single-segment convenience wrapper.
//
//sage:nojournal installs the journal itself; runs before any journal exists
func (ac *AccessControl) SetShardJournal(stage JournalStageFunc) {
	ac.cfgMu.Lock()
	defer ac.cfgMu.Unlock()
	ac.stage = stage
}

// Blocks returns every registered block ID in ascending order — the
// recovery path's view of which blocks exist (after a crash the
// GrowingDatabase is empty; the ledger is what remembers the stream's
// extent).
func (ac *AccessControl) Blocks() []data.BlockID {
	var out []data.BlockID
	for _, sh := range ac.shards {
		sh.mu.Lock()
		for id := range sh.blocks {
			out = append(out, id)
		}
		sh.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ShardBlocks returns shard k's registered block IDs in ascending order.
func (ac *AccessControl) ShardBlocks(k int) []data.BlockID {
	sh := ac.shards[k]
	sh.mu.Lock()
	out := make([]data.BlockID, 0, len(sh.blocks))
	for id := range sh.blocks {
		out = append(out, id)
	}
	sh.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// snapshotVersion guards the snapshot layout for forward evolution.
const snapshotVersion = 1

// Snapshot returns a canonical serialization of the full ledger state:
// every block's spend history (individual spends, not just the sum —
// strong-composition arithmetics need the sequence), retirement flags,
// and reason. Compaction writes it as the single record that replaces
// the journal's history. The policy is deliberately not included: it is
// configuration, supplied by the operator at open, and RestoreSnapshot
// validates state against it.
func (ac *AccessControl) Snapshot() []byte {
	ac.lockAll()
	defer ac.unlockAll()
	var ids []data.BlockID
	for _, sh := range ac.shards {
		for id := range sh.blocks {
			ids = append(ids, id)
		}
	}
	return ac.encodeSnapshotLocked(ids)
}

// SnapshotShard returns the canonical serialization of shard k's blocks
// only — the per-segment compaction record (internal/durable writes one
// per WAL segment). The format is identical to Snapshot's;
// RestoreSnapshot merges, so replaying one snapshot per segment
// reassembles the full ledger.
func (ac *AccessControl) SnapshotShard(k int) []byte {
	sh := ac.shards[k]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	ids := make([]data.BlockID, 0, len(sh.blocks))
	for id := range sh.blocks {
		ids = append(ids, id)
	}
	return ac.encodeSnapshotLocked(ids)
}

// encodeSnapshotLocked serializes the given blocks' state in ascending
// id order. Caller holds the locks of every shard the ids map to.
func (ac *AccessControl) encodeSnapshotLocked(ids []data.BlockID) []byte {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	buf := AppendUint(nil, snapshotVersion)
	buf = AppendUint(buf, uint64(len(ids)))
	for _, id := range ids {
		st := ac.shards[ac.ShardOf(id)].blocks[id]
		buf = AppendUint(buf, uint64(id))
		var flags byte
		if st.retired {
			flags |= 1
		}
		if st.sticky {
			flags |= 2
		}
		buf = append(buf, flags)
		buf = AppendString(buf, string(st.reason))
		spends := st.acct.Spends()
		buf = AppendUint(buf, uint64(len(spends)))
		for _, s := range spends {
			buf = AppendFloat(buf, s.Epsilon)
			buf = AppendFloat(buf, s.Delta)
		}
	}
	return buf
}

// RestoreSnapshot merges a snapshot produced by Snapshot or
// SnapshotShard into the ledger: every block named in the snapshot is
// replaced wholesale with its snapshotted state; blocks not named are
// left untouched. It is the recovery path's first step in each WAL
// segment (journal records recorded after the snapshot replay on top).
// Merge — rather than replace-all — is what makes multi-segment
// recovery compose: each segment opens with a snapshot of its own
// shard's blocks, and restoring segment k must not discard the blocks
// segments 0..k-1 already rebuilt. On a fresh ledger (the only place
// recovery starts) merging into the empty map is a plain restore.
//
//sage:nojournal recovery path — replays the log, must not re-journal it
func (ac *AccessControl) RestoreSnapshot(snap []byte) error {
	c := NewCursor(snap)
	if v := c.Uint(); c.Err() == nil && v != snapshotVersion {
		return fmt.Errorf("core: ledger snapshot version %d, want %d", v, snapshotVersion)
	}
	n := c.Uint()
	// Each block entry is at least id + flags + reason-length + spend
	// count (25 bytes); a damaged count must not size the allocation.
	if n > uint64(c.Remaining())/25 {
		return fmt.Errorf("core: ledger snapshot: block count %d exceeds payload", n)
	}
	blocks := make(map[data.BlockID]*blockState, n)
	for i := uint64(0); i < n && c.Err() == nil; i++ {
		id := data.BlockID(c.Uint())
		flags := c.Byte()
		reason := RetireReason(c.String())
		nspends := c.Uint()
		if c.Err() != nil {
			break
		}
		st := &blockState{
			acct:    privacy.NewAccountant(ac.policy.Arithmetic),
			retired: flags&1 != 0,
			sticky:  flags&2 != 0,
			reason:  reason,
		}
		for j := uint64(0); j < nspends && c.Err() == nil; j++ {
			b := privacy.Budget{Epsilon: c.Float(), Delta: c.Float()}
			if c.Err() != nil {
				break
			}
			if err := b.Validate(); err != nil {
				return fmt.Errorf("core: ledger snapshot block %d spend %d: %w", id, j, err)
			}
			st.acct.Spend(b)
		}
		// Validate against the open policy: every loss the admission
		// checks ever granted stayed under the ceiling, so a restored
		// loss above it means the snapshot was written under a looser
		// policy than this ledger is being opened with. Fail closed —
		// the op-replay path fails the same way (its admission checks
		// reject), so recovery behavior cannot depend on whether a
		// compaction happened to run before the crash.
		if loss := st.acct.Loss(); c.Err() == nil && !ac.policy.Global.Covers(loss) {
			return fmt.Errorf("core: ledger snapshot block %d: restored loss %v exceeds policy ceiling %v",
				id, loss, ac.policy.Global)
		}
		blocks[id] = st
	}
	if err := c.Err(); err != nil {
		return fmt.Errorf("core: ledger snapshot: %w", err)
	}
	if c.Remaining() != 0 {
		return fmt.Errorf("core: ledger snapshot: %d trailing bytes", c.Remaining())
	}
	ac.lockAll()
	for id, st := range blocks {
		ac.shards[ac.ShardOf(id)].blocks[id] = st
		ac.noteLoss(st.acct.Loss())
	}
	ac.unlockAll()
	return nil
}

// stageLocked stages one record through the installed journal (no-op
// when none is installed), returning the durability wait the caller
// must invoke after releasing the shard locks (nil when durability was
// synchronous). Caller holds the shard's lock, and every block in rec
// maps to that shard. A non-nil error means the mutation must not
// proceed.
func (ac *AccessControl) stageLocked(shard int, rec LedgerRecord) (func() error, error) {
	ac.cfgMu.RLock()
	stage := ac.stage
	ac.cfgMu.RUnlock()
	if stage == nil {
		return nil, nil
	}
	wait, err := stage(shard, rec)
	if err != nil {
		return nil, fmt.Errorf("core: journal %s: %w", rec.Op, err)
	}
	if wait == nil {
		return nil, nil
	}
	op := rec.Op
	return func() error {
		if err := wait(); err != nil {
			return fmt.Errorf("core: journal %s: %w", op, err)
		}
		return nil
	}, nil
}
