package core

// Write-ahead journaling for the privacy ledger. The paper's central
// guarantee — no block's cumulative privacy loss ever exceeds (εg, δg),
// and no deduction is ever forgotten — is only as strong as the
// ledger's memory. An in-memory AccessControl that dies between
// granting a Request and the release being published *loses spend*,
// which silently breaks block composition: the recovered platform would
// re-grant budget that was already consumed.
//
// The journal closes that hole with one rule: every mutation is
// journaled *before it is acknowledged*. Request journals after its
// admission checks pass and before any budget is deducted or the caller
// unblocked; Refund, RegisterBlock, and Retire journal before mutating.
// A crash can therefore leave the journal strictly *ahead* of what
// callers observed, never behind: replaying it may re-apply a spend
// whose acknowledgement never arrived (conservative — budget is wasted,
// privacy is not), but it can never drop a spend that was acknowledged.
// Refund records are only ever journaled after the Request they correct
// (journal order is mutation order, both taken under the ledger lock),
// so a recovered ledger's per-block loss is always ≥ the budget
// actually consumed by acknowledged releases.
//
// The ledger does not know about files: it calls an injected journal
// func with a LedgerRecord and treats a non-nil error as "this mutation
// cannot be made durable" — the operation fails and state is untouched.
// internal/durable binds the func to a wal.Log and replays records on
// open by calling the same public methods, with the journal unset, so
// recovery exercises exactly the code paths that produced the records.

import (
	"fmt"
	"sort"

	"repro/internal/data"
	"repro/internal/privacy"
)

// LedgerOp enumerates the journaled ledger mutations.
type LedgerOp byte

const (
	// LedgerRegister records RegisterBlock (Blocks has one entry,
	// Budget is zero).
	LedgerRegister LedgerOp = 1
	// LedgerRequest records a granted Request: Budget deducted from
	// every block in Blocks (already deduplicated).
	LedgerRequest LedgerOp = 2
	// LedgerRefund records a Refund of Budget to every block in Blocks.
	LedgerRefund LedgerOp = 3
	// LedgerRetire records a forced Retire (Blocks has one entry).
	LedgerRetire LedgerOp = 4
)

func (op LedgerOp) String() string {
	switch op {
	case LedgerRegister:
		return "register"
	case LedgerRequest:
		return "request"
	case LedgerRefund:
		return "refund"
	case LedgerRetire:
		return "retire"
	default:
		return fmt.Sprintf("ledger-op(%d)", byte(op))
	}
}

// LedgerRecord is one journaled ledger mutation, encoded canonically
// (audit.go helpers) so the journal doubles as an audit trail: the same
// fixed-order, bit-exact serialization that digests releases.
type LedgerRecord struct {
	Op     LedgerOp
	Blocks []data.BlockID
	Budget privacy.Budget
}

// Encode returns the record's canonical serialization.
func (r LedgerRecord) Encode() []byte {
	buf := make([]byte, 0, 1+8+len(r.Blocks)*8+16)
	buf = append(buf, byte(r.Op))
	buf = AppendBlockIDs(buf, r.Blocks)
	buf = AppendFloat(buf, r.Budget.Epsilon)
	return AppendFloat(buf, r.Budget.Delta)
}

// DecodeLedgerRecord parses a canonical ledger record.
func DecodeLedgerRecord(raw []byte) (LedgerRecord, error) {
	c := NewCursor(raw)
	rec := LedgerRecord{
		Op:     LedgerOp(c.Byte()),
		Blocks: c.BlockIDs(),
	}
	rec.Budget.Epsilon = c.Float()
	rec.Budget.Delta = c.Float()
	if err := c.Err(); err != nil {
		return LedgerRecord{}, fmt.Errorf("core: ledger record: %w", err)
	}
	if c.Remaining() != 0 {
		return LedgerRecord{}, fmt.Errorf("core: ledger record: %d trailing bytes", c.Remaining())
	}
	switch rec.Op {
	case LedgerRegister, LedgerRequest, LedgerRefund, LedgerRetire:
	default:
		return LedgerRecord{}, fmt.Errorf("core: ledger record: unknown op %d", byte(rec.Op))
	}
	return rec, nil
}

// SetJournal installs the write-ahead journal. Every subsequent
// mutation calls it, under the ledger lock, before any state changes or
// the caller is acknowledged; a non-nil return aborts the mutation.
// Install the journal *after* replaying recovered records — replay uses
// the public mutation methods, and a set journal would re-journal them.
// RegisterBlock and Publish-style paths that cannot surface an error
// treat a journal failure as fatal (panic): a durable ledger that can
// no longer journal must stop taking mutations rather than silently
// diverge from its log.
func (ac *AccessControl) SetJournal(journal func(LedgerRecord) error) {
	ac.mu.Lock()
	defer ac.mu.Unlock()
	ac.journal = journal
}

// Blocks returns every registered block ID in ascending order — the
// recovery path's view of which blocks exist (after a crash the
// GrowingDatabase is empty; the ledger is what remembers the stream's
// extent).
func (ac *AccessControl) Blocks() []data.BlockID {
	ac.mu.Lock()
	defer ac.mu.Unlock()
	out := make([]data.BlockID, 0, len(ac.blocks))
	for id := range ac.blocks {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// snapshotVersion guards the snapshot layout for forward evolution.
const snapshotVersion = 1

// Snapshot returns a canonical serialization of the full ledger state:
// every block's spend history (individual spends, not just the sum —
// strong-composition arithmetics need the sequence), retirement flags,
// and reason. Compaction writes it as the single record that replaces
// the journal's history. The policy is deliberately not included: it is
// configuration, supplied by the operator at open, and RestoreSnapshot
// validates state against it.
func (ac *AccessControl) Snapshot() []byte {
	ac.mu.Lock()
	defer ac.mu.Unlock()
	ids := make([]data.BlockID, 0, len(ac.blocks))
	for id := range ac.blocks {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

	buf := AppendUint(nil, snapshotVersion)
	buf = AppendUint(buf, uint64(len(ids)))
	for _, id := range ids {
		st := ac.blocks[id]
		buf = AppendUint(buf, uint64(id))
		var flags byte
		if st.retired {
			flags |= 1
		}
		if st.sticky {
			flags |= 2
		}
		buf = append(buf, flags)
		buf = AppendString(buf, string(st.reason))
		spends := st.acct.Spends()
		buf = AppendUint(buf, uint64(len(spends)))
		for _, s := range spends {
			buf = AppendFloat(buf, s.Epsilon)
			buf = AppendFloat(buf, s.Delta)
		}
	}
	return buf
}

// RestoreSnapshot replaces the ledger's block state with a snapshot
// produced by Snapshot. It is the recovery path's first step (journal
// records recorded after the snapshot replay on top); calling it on a
// ledger that already has state discards that state.
func (ac *AccessControl) RestoreSnapshot(snap []byte) error {
	c := NewCursor(snap)
	if v := c.Uint(); c.Err() == nil && v != snapshotVersion {
		return fmt.Errorf("core: ledger snapshot version %d, want %d", v, snapshotVersion)
	}
	n := c.Uint()
	// Each block entry is at least id + flags + reason-length + spend
	// count (25 bytes); a damaged count must not size the allocation.
	if n > uint64(c.Remaining())/25 {
		return fmt.Errorf("core: ledger snapshot: block count %d exceeds payload", n)
	}
	blocks := make(map[data.BlockID]*blockState, n)
	for i := uint64(0); i < n && c.Err() == nil; i++ {
		id := data.BlockID(c.Uint())
		flags := c.Byte()
		reason := RetireReason(c.String())
		nspends := c.Uint()
		if c.Err() != nil {
			break
		}
		st := &blockState{
			acct:    privacy.NewAccountant(ac.policy.Arithmetic),
			retired: flags&1 != 0,
			sticky:  flags&2 != 0,
			reason:  reason,
		}
		for j := uint64(0); j < nspends && c.Err() == nil; j++ {
			b := privacy.Budget{Epsilon: c.Float(), Delta: c.Float()}
			if c.Err() != nil {
				break
			}
			if err := b.Validate(); err != nil {
				return fmt.Errorf("core: ledger snapshot block %d spend %d: %w", id, j, err)
			}
			st.acct.Spend(b)
		}
		// Validate against the open policy: every loss the admission
		// checks ever granted stayed under the ceiling, so a restored
		// loss above it means the snapshot was written under a looser
		// policy than this ledger is being opened with. Fail closed —
		// the op-replay path fails the same way (its admission checks
		// reject), so recovery behavior cannot depend on whether a
		// compaction happened to run before the crash.
		if loss := st.acct.Loss(); c.Err() == nil && !ac.policy.Global.Covers(loss) {
			return fmt.Errorf("core: ledger snapshot block %d: restored loss %v exceeds policy ceiling %v",
				id, loss, ac.policy.Global)
		}
		blocks[id] = st
	}
	if err := c.Err(); err != nil {
		return fmt.Errorf("core: ledger snapshot: %w", err)
	}
	if c.Remaining() != 0 {
		return fmt.Errorf("core: ledger snapshot: %d trailing bytes", c.Remaining())
	}
	ac.mu.Lock()
	defer ac.mu.Unlock()
	ac.blocks = blocks
	return nil
}

// journalLocked writes one record through the installed journal (no-op
// when none is installed). Caller holds mu. A non-nil error means the
// mutation must not proceed.
func (ac *AccessControl) journalLocked(rec LedgerRecord) error {
	if ac.journal == nil {
		return nil
	}
	if err := ac.journal(rec); err != nil {
		return fmt.Errorf("core: journal %s: %w", rec.Op, err)
	}
	return nil
}
