package core

// Canonical provenance serialization. A release's provenance — which
// pipeline trained, what budget it spent, which stream blocks it read,
// the validator's verdict, and the DP quality estimate — is the audit
// record that reconciles a published model against the stream's privacy
// ledger. When bundles are pushed to serving replicas, every copy must
// carry provably the same record, so the push protocol identifies a
// release by a digest over a *canonical* byte serialization defined
// here. Gob (the shipment encoding) is unsuitable for this: it encodes
// maps in iteration order, so two encodings of the same bundle differ
// byte-for-byte. The canonical form is deterministic by construction:
// length-prefixed strings, IEEE-754 bit patterns for floats, and
// fixed-width big-endian integers, in a fixed field order.

import (
	"encoding/binary"
	"math"

	"repro/internal/data"
	"repro/internal/privacy"
)

// AppendString appends a length-prefixed UTF-8 string.
func AppendString(dst []byte, s string) []byte {
	dst = binary.BigEndian.AppendUint64(dst, uint64(len(s)))
	return append(dst, s...)
}

// AppendUint appends a fixed-width big-endian integer.
func AppendUint(dst []byte, v uint64) []byte {
	return binary.BigEndian.AppendUint64(dst, v)
}

// AppendFloat appends the IEEE-754 bit pattern of f. Bit patterns, not
// decimal renderings: two provenance records agree exactly or not at
// all, with no formatting ambiguity.
func AppendFloat(dst []byte, f float64) []byte {
	return binary.BigEndian.AppendUint64(dst, math.Float64bits(f))
}

// AppendFloats appends a length-prefixed float64 slice.
func AppendFloats(dst []byte, fs []float64) []byte {
	dst = binary.BigEndian.AppendUint64(dst, uint64(len(fs)))
	for _, f := range fs {
		dst = AppendFloat(dst, f)
	}
	return dst
}

// AppendProvenance appends the canonical serialization of one release's
// provenance fields: pipeline, spent (ε, δ), the block list in ledger
// order, decision, and quality. Block order is preserved as recorded —
// the order blocks were read is itself part of the audit trail.
func AppendProvenance(dst []byte, pipeline string, spent privacy.Budget, blocks []data.BlockID, decision string, quality float64) []byte {
	dst = AppendString(dst, pipeline)
	dst = AppendFloat(dst, spent.Epsilon)
	dst = AppendFloat(dst, spent.Delta)
	dst = binary.BigEndian.AppendUint64(dst, uint64(len(blocks)))
	for _, id := range blocks {
		dst = binary.BigEndian.AppendUint64(dst, uint64(id))
	}
	dst = AppendString(dst, decision)
	return AppendFloat(dst, quality)
}
