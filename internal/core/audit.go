package core

// Canonical provenance serialization. A release's provenance — which
// pipeline trained, what budget it spent, which stream blocks it read,
// the validator's verdict, and the DP quality estimate — is the audit
// record that reconciles a published model against the stream's privacy
// ledger. When bundles are pushed to serving replicas, every copy must
// carry provably the same record, so the push protocol identifies a
// release by a digest over a *canonical* byte serialization defined
// here. Gob (the shipment encoding) is unsuitable for this: it encodes
// maps in iteration order, so two encodings of the same bundle differ
// byte-for-byte. The canonical form is deterministic by construction:
// length-prefixed strings, IEEE-754 bit patterns for floats, and
// fixed-width big-endian integers, in a fixed field order.

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/data"
	"repro/internal/privacy"
)

// AppendString appends a length-prefixed UTF-8 string.
func AppendString(dst []byte, s string) []byte {
	dst = binary.BigEndian.AppendUint64(dst, uint64(len(s)))
	return append(dst, s...)
}

// AppendUint appends a fixed-width big-endian integer.
func AppendUint(dst []byte, v uint64) []byte {
	return binary.BigEndian.AppendUint64(dst, v)
}

// AppendFloat appends the IEEE-754 bit pattern of f. Bit patterns, not
// decimal renderings: two provenance records agree exactly or not at
// all, with no formatting ambiguity.
func AppendFloat(dst []byte, f float64) []byte {
	return binary.BigEndian.AppendUint64(dst, math.Float64bits(f))
}

// AppendFloats appends a length-prefixed float64 slice.
func AppendFloats(dst []byte, fs []float64) []byte {
	dst = binary.BigEndian.AppendUint64(dst, uint64(len(fs)))
	for _, f := range fs {
		dst = AppendFloat(dst, f)
	}
	return dst
}

// AppendProvenance appends the canonical serialization of one release's
// provenance fields: pipeline, spent (ε, δ), the block list in ledger
// order, decision, and quality. Block order is preserved as recorded —
// the order blocks were read is itself part of the audit trail.
func AppendProvenance(dst []byte, pipeline string, spent privacy.Budget, blocks []data.BlockID, decision string, quality float64) []byte {
	dst = AppendString(dst, pipeline)
	dst = AppendFloat(dst, spent.Epsilon)
	dst = AppendFloat(dst, spent.Delta)
	dst = AppendBlockIDs(dst, blocks)
	dst = AppendString(dst, decision)
	return AppendFloat(dst, quality)
}

// AppendBlockIDs appends a length-prefixed block-ID list.
func AppendBlockIDs(dst []byte, blocks []data.BlockID) []byte {
	dst = binary.BigEndian.AppendUint64(dst, uint64(len(blocks)))
	for _, id := range blocks {
		dst = binary.BigEndian.AppendUint64(dst, uint64(id))
	}
	return dst
}

// Cursor decodes the canonical serialization the Append helpers
// produce. It is sticky-error: the first short read or length overflow
// poisons the cursor, subsequent reads return zero values, and Err
// reports what went wrong — callers decode a whole record and check
// once. The write-ahead log's recovery path is the main consumer: WAL
// payloads are canonical bytes, so the same encoding that digests a
// release also replays it.
type Cursor struct {
	buf []byte
	err error
}

// NewCursor returns a cursor over canonical bytes.
func NewCursor(b []byte) *Cursor { return &Cursor{buf: b} }

// Err returns the first decode error (nil if all reads were in bounds).
func (c *Cursor) Err() error { return c.err }

// Remaining returns the number of unread bytes.
func (c *Cursor) Remaining() int { return len(c.buf) }

func (c *Cursor) fail(what string) {
	if c.err == nil {
		c.err = fmt.Errorf("core: canonical decode: truncated %s (%d bytes left)", what, len(c.buf))
	}
}

// Byte reads one raw byte.
func (c *Cursor) Byte() byte {
	if c.err != nil || len(c.buf) < 1 {
		c.fail("byte")
		return 0
	}
	v := c.buf[0]
	c.buf = c.buf[1:]
	return v
}

// Uint reads a fixed-width big-endian integer (AppendUint's inverse).
func (c *Cursor) Uint() uint64 {
	if c.err != nil || len(c.buf) < 8 {
		c.fail("uint64")
		return 0
	}
	v := binary.BigEndian.Uint64(c.buf)
	c.buf = c.buf[8:]
	return v
}

// Float reads an IEEE-754 bit pattern (AppendFloat's inverse).
func (c *Cursor) Float() float64 { return math.Float64frombits(c.Uint()) }

// String reads a length-prefixed string (AppendString's inverse).
func (c *Cursor) String() string {
	n := c.Uint()
	if c.err != nil || uint64(len(c.buf)) < n {
		c.fail("string")
		return ""
	}
	v := string(c.buf[:n])
	c.buf = c.buf[n:]
	return v
}

// Floats reads a length-prefixed float64 slice (AppendFloats' inverse).
// A zero length yields nil, matching how absent slices encode. The
// length is bounded by the remaining bytes *before* any allocation
// (divide, don't multiply — n*8 on an attacker-chosen n overflows), so
// a damaged length field poisons the cursor instead of panicking.
func (c *Cursor) Floats() []float64 {
	n := c.Uint()
	if c.err != nil {
		return nil
	}
	if n > uint64(len(c.buf))/8 {
		c.fail("float slice")
		return nil
	}
	if n == 0 {
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = c.Float()
	}
	return out
}

// BlockIDs reads a length-prefixed block-ID list (AppendBlockIDs'
// inverse). A zero length yields nil.
func (c *Cursor) BlockIDs() []data.BlockID {
	n := c.Uint()
	if c.err != nil {
		return nil
	}
	if n > uint64(len(c.buf))/8 {
		c.fail("block-ID list")
		return nil
	}
	if n == 0 {
		return nil
	}
	out := make([]data.BlockID, n)
	for i := range out {
		out[i] = data.BlockID(c.Uint())
	}
	return out
}
