package core

import (
	"sort"
	"sync"

	"repro/internal/data"
	"repro/internal/privacy"
)

// MultiContextAccessControl maintains a separate (εg, δg) guarantee per
// trust context — per developer team, geography, or serving region — as
// sketched at the end of §3.2: if the company assumes contexts do not
// collude, each context gets its own list of per-block budgets, so one
// team exhausting a block does not starve another.
type MultiContextAccessControl struct {
	mu       sync.Mutex
	policy   Policy
	contexts map[string]*AccessControl
	// known blocks, so new contexts see all previously registered blocks.
	blocks map[data.BlockID]struct{}
}

// NewMultiContextAccessControl returns a per-context access control
// enforcing the same policy in every context.
func NewMultiContextAccessControl(policy Policy) *MultiContextAccessControl {
	if err := policy.Global.Validate(); err != nil {
		panic(err)
	}
	return &MultiContextAccessControl{
		policy:   policy,
		contexts: make(map[string]*AccessControl),
		blocks:   make(map[data.BlockID]struct{}),
	}
}

// RegisterBlock makes a block known to all contexts (existing and
// future).
func (m *MultiContextAccessControl) RegisterBlock(id data.BlockID) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.blocks[id] = struct{}{}
	for _, ac := range m.contexts {
		ac.RegisterBlock(id)
	}
}

// Context returns the access control for the named context, creating it
// (with all known blocks registered) on first use.
func (m *MultiContextAccessControl) Context(name string) *AccessControl {
	m.mu.Lock()
	defer m.mu.Unlock()
	ac, ok := m.contexts[name]
	if !ok {
		ac = NewAccessControl(m.policy)
		for id := range m.blocks {
			ac.RegisterBlock(id)
		}
		m.contexts[name] = ac
	}
	return ac
}

// Contexts returns the names of all instantiated contexts, sorted.
func (m *MultiContextAccessControl) Contexts() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.contexts))
	for name := range m.contexts {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// WorstCaseStreamLoss returns the privacy loss against an adversary who
// can observe all contexts (i.e. if the non-collusion assumption fails):
// per-block losses add across contexts, and the stream loss is the
// maximum over blocks of that sum.
func (m *MultiContextAccessControl) WorstCaseStreamLoss() privacy.Budget {
	m.mu.Lock()
	defer m.mu.Unlock()
	max := privacy.Zero
	for id := range m.blocks {
		total := privacy.Zero
		for _, ac := range m.contexts {
			total = total.Add(ac.BlockLoss(id))
		}
		if total.Epsilon > max.Epsilon {
			max.Epsilon = total.Epsilon
		}
		if total.Delta > max.Delta {
			max.Delta = total.Delta
		}
	}
	return max
}
