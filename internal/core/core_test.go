package core

import (
	"errors"
	"math"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/data"
	"repro/internal/privacy"
)

func newAC(eps, delta float64) *AccessControl {
	return NewAccessControl(Policy{Global: privacy.MustBudget(eps, delta)})
}

func TestRegisterBlock(t *testing.T) {
	ac := newAC(1, 1e-6)
	if !ac.RegisterBlock(1) {
		t.Fatal("first registration should succeed")
	}
	if ac.RegisterBlock(1) {
		t.Fatal("duplicate registration should return false")
	}
	if ac.NumBlocks() != 1 {
		t.Errorf("NumBlocks = %d", ac.NumBlocks())
	}
	if !ac.BlockLoss(1).IsZero() {
		t.Error("fresh block should have zero loss")
	}
}

func TestRequestDeductsFromAllBlocks(t *testing.T) {
	ac := newAC(1, 1e-6)
	ac.RegisterBlock(1)
	ac.RegisterBlock(2)
	ac.RegisterBlock(3)
	b := privacy.MustBudget(0.3, 1e-7)
	if err := ac.Request([]data.BlockID{1, 2}, b); err != nil {
		t.Fatal(err)
	}
	if got := ac.BlockLoss(1); got.Epsilon != 0.3 {
		t.Errorf("block 1 loss = %v", got)
	}
	if got := ac.BlockLoss(2); got.Epsilon != 0.3 {
		t.Errorf("block 2 loss = %v", got)
	}
	if got := ac.BlockLoss(3); !got.IsZero() {
		t.Errorf("untouched block 3 loss = %v", got)
	}
}

func TestRequestAtomicOnFailure(t *testing.T) {
	ac := newAC(1, 1e-6)
	ac.RegisterBlock(1)
	ac.RegisterBlock(2)
	// Drain block 2.
	if err := ac.Request([]data.BlockID{2}, privacy.MustBudget(0.9, 0)); err != nil {
		t.Fatal(err)
	}
	// Joint request must fail and leave block 1 untouched.
	err := ac.Request([]data.BlockID{1, 2}, privacy.MustBudget(0.5, 0))
	var exhausted ErrBlockExhausted
	if !errors.As(err, &exhausted) || exhausted.ID != 2 {
		t.Fatalf("err = %v, want ErrBlockExhausted{2}", err)
	}
	if got := ac.BlockLoss(1); !got.IsZero() {
		t.Errorf("failed request leaked %v into block 1", got)
	}
}

func TestRequestUnknownBlock(t *testing.T) {
	ac := newAC(1, 0)
	ac.RegisterBlock(1)
	err := ac.Request([]data.BlockID{1, 99}, privacy.MustBudget(0.1, 0))
	var unknown ErrUnknownBlock
	if !errors.As(err, &unknown) || unknown.ID != 99 {
		t.Fatalf("err = %v, want ErrUnknownBlock{99}", err)
	}
	if !ac.BlockLoss(1).IsZero() {
		t.Error("failed request should not deduct")
	}
}

func TestRequestValidation(t *testing.T) {
	ac := newAC(1, 0)
	ac.RegisterBlock(1)
	if err := ac.Request(nil, privacy.MustBudget(0.1, 0)); err == nil {
		t.Error("empty block list should fail")
	}
	if err := ac.Request([]data.BlockID{1}, privacy.Budget{Epsilon: -1}); err == nil {
		t.Error("invalid budget should fail")
	}
	// Zero budget requests are free no-ops.
	if err := ac.Request([]data.BlockID{1}, privacy.Zero); err != nil {
		t.Errorf("zero request err = %v", err)
	}
}

func TestRetirementAtCeiling(t *testing.T) {
	ac := newAC(1, 1e-6)
	ac.RegisterBlock(1)
	var retired []data.BlockID
	ac.SetRetireCallback(func(id data.BlockID) { retired = append(retired, id) })
	if err := ac.Request([]data.BlockID{1}, privacy.MustBudget(1, 1e-6)); err != nil {
		t.Fatal(err)
	}
	if !ac.Retired(1) {
		t.Fatal("block at ceiling should be retired")
	}
	if len(retired) != 1 || retired[0] != 1 {
		t.Errorf("retire callback got %v", retired)
	}
	// Retired block refuses everything, even tiny requests.
	err := ac.Request([]data.BlockID{1}, privacy.MustBudget(1e-9, 0))
	var exhausted ErrBlockExhausted
	if !errors.As(err, &exhausted) {
		t.Fatalf("request on retired block: err = %v", err)
	}
}

func TestStreamLossIsMaxOverBlocks(t *testing.T) {
	// Theorem 4.2: stream loss = max per-block loss, not the sum.
	ac := newAC(1, 1e-6)
	for id := data.BlockID(1); id <= 4; id++ {
		ac.RegisterBlock(id)
	}
	ac.Request([]data.BlockID{1, 2}, privacy.MustBudget(0.4, 1e-7)) // Q1
	ac.Request([]data.BlockID{2, 3}, privacy.MustBudget(0.3, 0))    // Q2
	ac.Request([]data.BlockID{4}, privacy.MustBudget(0.6, 2e-7))    // Q3
	got := ac.StreamLoss()
	// Block 2 has ε=0.7; block 4 has δ=2e-7.
	if math.Abs(got.Epsilon-0.7) > 1e-12 {
		t.Errorf("stream ε = %v, want 0.7 (max block)", got.Epsilon)
	}
	if got.Delta != 2e-7 {
		t.Errorf("stream δ = %v, want 2e-7", got.Delta)
	}
	// Query-level accounting would have charged 0.4+0.3+0.6=1.3 > εg;
	// block accounting stays under the ceiling.
	if got.Epsilon > ac.Policy().Global.Epsilon {
		t.Error("stream loss exceeded global ceiling")
	}
}

func TestRefund(t *testing.T) {
	ac := newAC(1, 1e-6)
	ac.RegisterBlock(1)
	ac.Request([]data.BlockID{1}, privacy.MustBudget(1, 0)) // retires the block
	if !ac.Retired(1) {
		t.Fatal("expected retirement")
	}
	if err := ac.Refund([]data.BlockID{1}, privacy.MustBudget(0.5, 0)); err != nil {
		t.Fatal(err)
	}
	if ac.Retired(1) {
		t.Error("refund should un-retire the block")
	}
	if got := ac.BlockLoss(1); math.Abs(got.Epsilon-0.5) > 1e-12 {
		t.Errorf("loss after refund = %v", got)
	}
	if err := ac.Refund([]data.BlockID{99}, privacy.MustBudget(0.1, 0)); err == nil {
		t.Error("refund to unknown block should fail")
	}
}

func TestRemainingAndAvailable(t *testing.T) {
	ac := newAC(1, 1e-6)
	ac.RegisterBlock(1)
	ac.RegisterBlock(2)
	ac.Request([]data.BlockID{1}, privacy.MustBudget(0.8, 0))
	r1 := ac.Remaining(1)
	if math.Abs(r1.Epsilon-0.2) > 1e-12 {
		t.Errorf("Remaining(1) = %v", r1)
	}
	if !ac.Remaining(99).IsZero() {
		t.Error("unknown block should have zero remaining")
	}
	avail := ac.AvailableBlocks([]data.BlockID{1, 2, 99}, privacy.MustBudget(0.5, 0))
	if len(avail) != 1 || avail[0] != 2 {
		t.Errorf("AvailableBlocks = %v, want [2]", avail)
	}
	avail = ac.AvailableBlocks([]data.BlockID{1, 2}, privacy.MustBudget(0.1, 0))
	if len(avail) != 2 {
		t.Errorf("AvailableBlocks = %v, want both", avail)
	}
}

func TestForcedRetire(t *testing.T) {
	ac := newAC(1, 0)
	ac.RegisterBlock(1)
	if err := ac.Retire(1); err != nil {
		t.Fatal(err)
	}
	if !ac.Retired(1) {
		t.Error("block should be retired")
	}
	if err := ac.Retire(42); err == nil {
		t.Error("retiring unknown block should fail")
	}
}

func TestForcedRetireStickyAcrossRefund(t *testing.T) {
	ac := newAC(1, 1e-6)
	ac.RegisterBlock(1)
	if err := ac.Request([]data.BlockID{1}, privacy.MustBudget(0.4, 0)); err != nil {
		t.Fatal(err)
	}
	if err := ac.Retire(1); err != nil {
		t.Fatal(err)
	}
	// A refund restores plenty of budget, but a force-retired block must
	// stay retired: Retire is an operator decision, not an accounting one.
	if err := ac.Refund([]data.BlockID{1}, privacy.MustBudget(0.4, 0)); err != nil {
		t.Fatal(err)
	}
	if !ac.Retired(1) {
		t.Error("refund resurrected a force-retired block")
	}
	if !ac.Remaining(1).IsZero() {
		t.Errorf("retired block reports remaining budget %v", ac.Remaining(1))
	}
	var exhausted ErrBlockExhausted
	if err := ac.Request([]data.BlockID{1}, privacy.MustBudget(0.1, 0)); !errors.As(err, &exhausted) {
		t.Errorf("request on force-retired block: err = %v, want ErrBlockExhausted", err)
	}
}

func TestDataDeletedRetirementStickyAcrossRefund(t *testing.T) {
	// With a retention hook registered, retirement deletes the raw data —
	// so even budget-exhaustion retirement must survive a refund.
	ac := newAC(1, 1e-6)
	ac.RegisterBlock(1)
	deleted := 0
	ac.SetRetireCallback(func(data.BlockID) { deleted++ })
	if err := ac.Request([]data.BlockID{1}, privacy.MustBudget(1, 1e-6)); err != nil {
		t.Fatal(err)
	}
	if !ac.Retired(1) || deleted != 1 {
		t.Fatalf("retired=%v deleted=%d, want retirement + one deletion", ac.Retired(1), deleted)
	}
	if err := ac.Refund([]data.BlockID{1}, privacy.MustBudget(0.9, 1e-6)); err != nil {
		t.Fatal(err)
	}
	if !ac.Retired(1) {
		t.Error("refund resurrected a block whose raw data was deleted")
	}
	if deleted != 1 {
		t.Errorf("retire callback fired %d times, want exactly 1", deleted)
	}
	if got := ac.AvailableBlocks([]data.BlockID{1}, privacy.MustBudget(0.01, 0)); len(got) != 0 {
		t.Errorf("data-deleted block still listed available: %v", got)
	}
}

func TestExhaustionRetirementReversibleWithoutCallback(t *testing.T) {
	// No retention hook: exhaustion retirement is pure accounting and a
	// refund may reverse it (the pre-existing §3.3 reserve/refund flow).
	ac := newAC(1, 1e-6)
	ac.RegisterBlock(1)
	ac.Request([]data.BlockID{1}, privacy.MustBudget(1, 0))
	if !ac.Retired(1) {
		t.Fatal("expected exhaustion retirement")
	}
	if err := ac.Refund([]data.BlockID{1}, privacy.MustBudget(0.5, 0)); err != nil {
		t.Fatal(err)
	}
	if ac.Retired(1) {
		t.Error("refund should un-retire a budget-exhausted block with no retention hook")
	}
	// Force-retiring an already (reversibly) retired block upgrades it
	// to sticky without re-firing callbacks.
	ac.Request([]data.BlockID{1}, privacy.MustBudget(0.5, 0))
	if !ac.Retired(1) {
		t.Fatal("expected re-retirement")
	}
	if err := ac.Retire(1); err != nil {
		t.Fatal(err)
	}
	ac.Refund([]data.BlockID{1}, privacy.MustBudget(1, 0))
	if !ac.Retired(1) {
		t.Error("force-retire on a retired block should still make it sticky")
	}
}

func TestReport(t *testing.T) {
	ac := newAC(1, 1e-6)
	ac.RegisterBlock(1)
	ac.RegisterBlock(2)
	ac.Request([]data.BlockID{1}, privacy.MustBudget(0.25, 0))
	ac.Request([]data.BlockID{1}, privacy.MustBudget(0.25, 0))
	rep := ac.Report([]data.BlockID{1, 2, 77})
	if len(rep) != 2 {
		t.Fatalf("Report len = %d", len(rep))
	}
	if rep[0].ID != 1 || rep[0].Queries != 2 || math.Abs(rep[0].Loss.Epsilon-0.5) > 1e-12 {
		t.Errorf("report[0] = %+v", rep[0])
	}
	if rep[1].ID != 2 || rep[1].Queries != 0 {
		t.Errorf("report[1] = %+v", rep[1])
	}
}

func TestStrongArithmeticAllowsMoreQueries(t *testing.T) {
	// Ablation: under strong composition a block affords more small
	// queries than under basic composition.
	countQueries := func(arith privacy.CompositionArithmetic) int {
		ac := NewAccessControl(Policy{
			Global:     privacy.MustBudget(1, 1e-6),
			Arithmetic: arith,
		})
		ac.RegisterBlock(1)
		small := privacy.MustBudget(0.02, 1e-9)
		n := 0
		for n < 10000 {
			if err := ac.Request([]data.BlockID{1}, small); err != nil {
				break
			}
			n++
		}
		return n
	}
	basic := countQueries(privacy.BasicArithmetic{})
	strong := countQueries(privacy.StrongArithmetic{DeltaSlack: 5e-7})
	if basic != 50 {
		t.Errorf("basic composition allowed %d queries, want 50", basic)
	}
	if strong <= basic {
		t.Errorf("strong composition allowed %d queries, want > %d", strong, basic)
	}
}

func TestConcurrentRequestsNeverExceedCeiling(t *testing.T) {
	ac := newAC(1, 1e-6)
	const nBlocks = 8
	ids := make([]data.BlockID, nBlocks)
	for i := range ids {
		ids[i] = data.BlockID(i)
		ac.RegisterBlock(ids[i])
	}
	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			req := privacy.MustBudget(0.01, 1e-9)
			for i := 0; i < 100; i++ {
				blocks := []data.BlockID{ids[(w+i)%nBlocks], ids[(w+i+1)%nBlocks]}
				_ = ac.Request(blocks, req)
			}
		}(w)
	}
	wg.Wait()
	for _, id := range ids {
		loss := ac.BlockLoss(id)
		if loss.Epsilon > 1+1e-9 || loss.Delta > 1e-6+1e-15 {
			t.Errorf("block %d loss %v exceeds ceiling", id, loss)
		}
	}
	if sl := ac.StreamLoss(); sl.Epsilon > 1+1e-9 {
		t.Errorf("stream loss %v exceeds ceiling", sl)
	}
}

// TestAdaptiveAdversaryProtocol simulates AdaptiveStreamBlockCompose
// (Alg. 4c): an adversary adaptively creates blocks and issues queries
// with adaptively chosen budgets and block sets, conditioning choices on
// past results. The invariant (Theorem 4.3) is that no block — hence the
// stream — ever exceeds (εg, δg) no matter the adversary's strategy.
func TestAdaptiveAdversaryProtocol(t *testing.T) {
	f := func(script []uint16, seed uint8) bool {
		ac := newAC(1, 1e-6)
		var blocks []data.BlockID
		next := data.BlockID(0)
		observed := uint16(seed) // stand-in for query results driving adaptivity
		for _, op := range script {
			op ^= observed // adversary adapts to past observations
			switch op % 4 {
			case 0: // new block arrives
				ac.RegisterBlock(next)
				blocks = append(blocks, next)
				next++
			default: // adaptive query
				if len(blocks) == 0 {
					continue
				}
				// Adversary picks budget and a contiguous block range.
				eps := float64(op%97)/97*0.5 + 0.001
				lo := int(op) % len(blocks)
				hi := lo + int(op%5) + 1
				if hi > len(blocks) {
					hi = len(blocks)
				}
				err := ac.Request(blocks[lo:hi], privacy.Budget{Epsilon: eps, Delta: 1e-9})
				if err == nil {
					observed = observed*31 + op // result feeds back
				}
			}
		}
		// Invariant: every block and the stream stay under the ceiling.
		for _, id := range blocks {
			l := ac.BlockLoss(id)
			if l.Epsilon > 1+1e-9 || l.Delta > 1e-6+1e-15 {
				return false
			}
		}
		sl := ac.StreamLoss()
		return sl.Epsilon <= 1+1e-9 && sl.Delta <= 1e-6+1e-15
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: request-then-refund is an exact no-op on block loss.
func TestRequestRefundRoundTripProperty(t *testing.T) {
	f := func(epsRaw []uint8) bool {
		ac := newAC(10, 1e-3)
		ac.RegisterBlock(1)
		var granted []privacy.Budget
		for _, e := range epsRaw {
			b := privacy.Budget{Epsilon: float64(e)/256 + 0.001, Delta: 1e-9}
			if err := ac.Request([]data.BlockID{1}, b); err == nil {
				granted = append(granted, b)
			}
		}
		for i := len(granted) - 1; i >= 0; i-- {
			if err := ac.Refund([]data.BlockID{1}, granted[i]); err != nil {
				return false
			}
		}
		return ac.BlockLoss(1).Epsilon < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Regression: a request naming the same block multiple times used to
// pass the phase-1 check per-occurrence against pre-spend state but
// deduct per-occurrence in phase 2, pushing the block's loss to k·b —
// past the (εg, δg) ceiling for k·b > εg. Duplicates must be coalesced:
// the query reads the block's data once, so it is charged once, and the
// ceiling invariant of Theorem 4.3 must hold afterwards.
func TestRequestDuplicateBlockIDsCannotExceedCeiling(t *testing.T) {
	ac := newAC(1, 1e-6)
	ac.RegisterBlock(1)
	ac.RegisterBlock(2)
	b := privacy.MustBudget(0.6, 1e-7)
	// 2×0.6 = 1.2 > εg: per-occurrence deduction would overshoot.
	if err := ac.Request([]data.BlockID{1, 1}, b); err != nil {
		t.Fatalf("duplicate-id request should be granted once: %v", err)
	}
	if got := ac.BlockLoss(1); math.Abs(got.Epsilon-0.6) > 1e-12 || got.Delta != 1e-7 {
		t.Errorf("block charged %v for a duplicate-id request, want one charge of %v", got, b)
	}
	ceiling := ac.Policy().Global
	if got := ac.BlockLoss(1); !ceiling.Covers(got) {
		t.Errorf("block loss %v exceeds global ceiling %v", got, ceiling)
	}
	// Interleaved duplicates across distinct blocks behave the same.
	if err := ac.Request([]data.BlockID{2, 1, 2, 1, 2}, privacy.MustBudget(0.3, 0)); err != nil {
		t.Fatalf("interleaved duplicates: %v", err)
	}
	for _, id := range []data.BlockID{1, 2} {
		if got := ac.BlockLoss(id); !ceiling.Covers(got) {
			t.Errorf("block %d loss %v exceeds ceiling %v", id, got, ceiling)
		}
	}
	if got := ac.BlockLoss(1); math.Abs(got.Epsilon-0.9) > 1e-12 {
		t.Errorf("block 1 loss = %v, want ε=0.9", got)
	}
	if got := ac.BlockLoss(2); math.Abs(got.Epsilon-0.3) > 1e-12 {
		t.Errorf("block 2 loss = %v, want ε=0.3", got)
	}
	if sl := ac.StreamLoss(); !ceiling.Covers(sl) {
		t.Errorf("stream loss %v exceeds ceiling %v", sl, ceiling)
	}
}

// Property: however a request repeats its block IDs, no block ever
// exceeds the ceiling and a duplicate-laden request is exactly
// equivalent to its deduplicated form.
func TestRequestDuplicateBlockIDsProperty(t *testing.T) {
	f := func(picks []uint8, epsRaw uint8) bool {
		if len(picks) == 0 {
			return true
		}
		const nBlocks = 3
		dup := newAC(1, 1e-6)
		ref := newAC(1, 1e-6)
		for id := data.BlockID(0); id < nBlocks; id++ {
			dup.RegisterBlock(id)
			ref.RegisterBlock(id)
		}
		b := privacy.Budget{Epsilon: float64(epsRaw)/256*0.8 + 0.01, Delta: 1e-9}
		ids := make([]data.BlockID, 0, len(picks))
		for _, p := range picks {
			ids = append(ids, data.BlockID(p%nBlocks))
		}
		errDup := dup.Request(ids, b)
		errRef := ref.Request(uniqueIDs(ids), b)
		if (errDup == nil) != (errRef == nil) {
			return false
		}
		for id := data.BlockID(0); id < nBlocks; id++ {
			if dup.BlockLoss(id) != ref.BlockLoss(id) {
				return false
			}
			if !dup.Policy().Global.Covers(dup.BlockLoss(id)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Regression: Refund used to mutate blocks in order and bail midway on
// an unknown ID, leaving earlier blocks refunded — a partial write that
// under-counts privacy loss. It must validate everything first, like
// Request.
func TestRefundAtomicOnUnknownBlock(t *testing.T) {
	ac := newAC(1, 1e-6)
	ac.RegisterBlock(1)
	ac.RegisterBlock(2)
	spend := privacy.MustBudget(0.5, 1e-7)
	if err := ac.Request([]data.BlockID{1, 2}, spend); err != nil {
		t.Fatal(err)
	}
	// Block 99 is unknown; blocks 1 and 2 precede it in the refund list.
	err := ac.Refund([]data.BlockID{1, 2, 99}, privacy.MustBudget(0.2, 0))
	var unknown ErrUnknownBlock
	if !errors.As(err, &unknown) || unknown.ID != 99 {
		t.Fatalf("err = %v, want ErrUnknownBlock{99}", err)
	}
	for _, id := range []data.BlockID{1, 2} {
		if got := ac.BlockLoss(id); math.Abs(got.Epsilon-0.5) > 1e-12 {
			t.Errorf("failed refund partially applied: block %d loss = %v, want ε=0.5", id, got)
		}
	}
	// A valid refund still works afterwards.
	if err := ac.Refund([]data.BlockID{1, 2}, privacy.MustBudget(0.2, 0)); err != nil {
		t.Fatal(err)
	}
	if got := ac.BlockLoss(1); math.Abs(got.Epsilon-0.3) > 1e-12 {
		t.Errorf("loss after valid refund = %v, want ε=0.3", got)
	}
}

// Refund with duplicate IDs must refund once per distinct block — the
// mirror of Request's coalescing. (Per-occurrence refunds would strip
// more than was spent and panic in the accountant.)
func TestRefundDuplicateBlockIDsCoalesced(t *testing.T) {
	ac := newAC(1, 1e-6)
	ac.RegisterBlock(1)
	spend := privacy.MustBudget(0.4, 0)
	if err := ac.Request([]data.BlockID{1}, spend); err != nil {
		t.Fatal(err)
	}
	if err := ac.Refund([]data.BlockID{1, 1, 1}, spend); err != nil {
		t.Fatal(err)
	}
	if got := ac.BlockLoss(1); !got.IsZero() {
		t.Errorf("loss after duplicate-id refund = %v, want zero", got)
	}
}

func TestBlockReportReason(t *testing.T) {
	// budget-exhausted (no retention hook).
	ac := newAC(1, 1e-6)
	ac.RegisterBlock(1)
	ac.RegisterBlock(2)
	ac.RegisterBlock(3)
	ac.Request([]data.BlockID{1}, privacy.MustBudget(1, 0))
	// forced.
	if err := ac.Retire(2); err != nil {
		t.Fatal(err)
	}
	rep := ac.Report([]data.BlockID{1, 2, 3})
	if rep[0].Reason != RetireBudgetExhausted {
		t.Errorf("exhausted block reason = %q, want %q", rep[0].Reason, RetireBudgetExhausted)
	}
	if rep[1].Reason != RetireForced {
		t.Errorf("forced block reason = %q, want %q", rep[1].Reason, RetireForced)
	}
	if rep[2].Reason != RetireNone || rep[2].Retired {
		t.Errorf("active block report = %+v, want no reason", rep[2])
	}
	// Refund un-retires the exhausted block and clears its reason.
	if err := ac.Refund([]data.BlockID{1}, privacy.MustBudget(0.5, 0)); err != nil {
		t.Fatal(err)
	}
	if rep := ac.Report([]data.BlockID{1}); rep[0].Retired || rep[0].Reason != RetireNone {
		t.Errorf("un-retired block report = %+v, want active with no reason", rep[0])
	}

	// retention-deleted: hook registered, exhaustion runs the deletion.
	ac2 := newAC(1, 1e-6)
	ac2.RegisterBlock(1)
	ac2.SetRetireCallback(func(data.BlockID) {})
	ac2.Request([]data.BlockID{1}, privacy.MustBudget(1, 0))
	rep = ac2.Report([]data.BlockID{1})
	if rep[0].Reason != RetireDataDeleted {
		t.Errorf("retention block reason = %q, want %q", rep[0].Reason, RetireDataDeleted)
	}
	// A later forced retirement keeps the retention-deleted audit trail.
	if err := ac2.Retire(1); err != nil {
		t.Fatal(err)
	}
	if rep := ac2.Report([]data.BlockID{1}); rep[0].Reason != RetireDataDeleted {
		t.Errorf("reason after Retire = %q, want %q kept", rep[0].Reason, RetireDataDeleted)
	}
}

func TestMultiContext(t *testing.T) {
	m := NewMultiContextAccessControl(Policy{Global: privacy.MustBudget(1, 1e-6)})
	m.RegisterBlock(1)
	teamA := m.Context("team-a")
	teamB := m.Context("team-b")
	if teamA == teamB {
		t.Fatal("contexts should be distinct")
	}
	if m.Context("team-a") != teamA {
		t.Fatal("context lookup should be stable")
	}
	if err := teamA.Request([]data.BlockID{1}, privacy.MustBudget(0.9, 0)); err != nil {
		t.Fatal(err)
	}
	// Team B has its own budget for the same block.
	if err := teamB.Request([]data.BlockID{1}, privacy.MustBudget(0.9, 0)); err != nil {
		t.Fatalf("team B should have independent budget: %v", err)
	}
	// Blocks registered later appear in existing contexts.
	m.RegisterBlock(2)
	if err := teamA.Request([]data.BlockID{2}, privacy.MustBudget(0.1, 0)); err != nil {
		t.Errorf("late block not visible in context: %v", err)
	}
	// New contexts see previously registered blocks.
	if err := m.Context("team-c").Request([]data.BlockID{1}, privacy.MustBudget(0.1, 0)); err != nil {
		t.Errorf("new context missing block: %v", err)
	}
	names := m.Contexts()
	if len(names) != 3 || names[0] != "team-a" || names[2] != "team-c" {
		t.Errorf("Contexts = %v", names)
	}
	// Worst case (collusion): losses add across contexts.
	wc := m.WorstCaseStreamLoss()
	if math.Abs(wc.Epsilon-1.9) > 1e-9 {
		t.Errorf("worst-case stream ε = %v, want 1.9", wc.Epsilon)
	}
}
