package store

import (
	"errors"
	"reflect"
	"testing"

	"repro/internal/data"
	"repro/internal/privacy"
)

func canonicalTestBundle() Bundle {
	return Bundle{
		Name:    "taxi-lr-0",
		Version: 3,
		Model: ModelSpec{
			Kind: "mlp-reg", Dim: 4, Hidden: []int{8, 4},
			Params: []float64{0.5, -1.25, 3e-9, 0},
		},
		Features: map[string][]float64{
			"hour_speed": {30, 25, 12.5},
			"zone_count": {1, 2},
		},
		Provenance: Provenance{
			Pipeline: "taxi-lr-0",
			Spent:    privacy.MustBudget(0.5, 1e-8),
			Blocks:   []data.BlockID{4, 5, 6},
			Decision: "ACCEPT",
			Quality:  0.0123,
		},
	}
}

func TestCanonicalBundleRoundTrip(t *testing.T) {
	cases := map[string]Bundle{
		"full": canonicalTestBundle(),
		"linear": {
			Name: "m", Version: 1,
			Model: ModelSpec{Kind: "linear", Weights: []float64{1, 2}, Bias: 0.5},
		},
		"constant-no-features": {
			Name: "c", Version: 2,
			Model: ModelSpec{Kind: "constant", Bias: 7},
		},
	}
	for name, b := range cases {
		t.Run(name, func(t *testing.T) {
			raw := b.CanonicalBytes()
			got, err := DecodeCanonicalBundle(raw)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(*got, b) {
				t.Fatalf("round trip:\n got %+v\nwant %+v", *got, b)
			}
			// Canonical means canonical: re-encoding the decoded bundle
			// is byte-identical, so digests transfer across the decode.
			if !reflect.DeepEqual(got.CanonicalBytes(), raw) {
				t.Fatal("re-encode differs from original bytes")
			}
			if got.Digest() != b.Digest() {
				t.Fatal("digest changed across decode")
			}
		})
	}
}

func TestDecodeCanonicalBundleRejectsDamage(t *testing.T) {
	b := canonicalTestBundle()
	raw := b.CanonicalBytes()
	if _, err := DecodeCanonicalBundle(raw[:len(raw)-2]); err == nil {
		t.Fatal("truncated bundle decoded")
	}
	if _, err := DecodeCanonicalBundle(append(append([]byte{}, raw...), 9)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
	if _, err := DecodeCanonicalBundle(nil); err == nil {
		t.Fatal("empty payload decoded")
	}
	// Damaged length fields must error, never panic or pre-size huge
	// allocations. Corrupt the model-params length (after name,
	// version, kind, weights, bias, dim, hidden-count for the "linear"
	// layout below) and the feature count in turn by splicing in an
	// absurd 2^61.
	small := Bundle{Name: "m", Version: 1, Model: ModelSpec{Kind: "constant", Bias: 1}}
	rawSmall := small.CanonicalBytes()
	for off := 0; off+8 <= len(rawSmall); off += 8 {
		bad := append([]byte(nil), rawSmall...)
		bad[off] = 0x20 // turn whatever 8-byte field starts here into ~2^61
		if got, err := DecodeCanonicalBundle(bad); err == nil && got.Digest() == small.Digest() {
			t.Fatalf("corrupted length at %d decoded to the original bundle", off)
		}
	}
}

// TestStoreJournal pins the store half of the write-ahead contract:
// every new release's canonical bytes reach the journal before the
// release is acknowledged, duplicates and failures journal nothing, and
// replaying the journal rebuilds the store exactly.
func TestStoreJournal(t *testing.T) {
	src := New()
	var journal [][]byte
	src.SetJournal(func(canonical []byte) error {
		journal = append(journal, append([]byte(nil), canonical...))
		return nil
	})

	b := canonicalTestBundle()
	b.Version = 0
	v1 := src.Publish(b)
	b2 := b
	b2.Provenance.Quality = 0.02
	v2 := src.Publish(b2)
	if v1 != 1 || v2 != 2 {
		t.Fatalf("versions %d, %d", v1, v2)
	}
	if len(journal) != 2 {
		t.Fatalf("journal has %d records, want 2", len(journal))
	}
	// The journaled bytes are the canonical bytes of the stored release
	// (version assigned), i.e. the push digest's preimage.
	stored, _ := src.Get(b.Name, 1)
	if !reflect.DeepEqual(journal[0], stored.CanonicalBytes()) {
		t.Fatal("journal record differs from stored release's canonical bytes")
	}

	// Apply of a new version journals; an idempotent re-apply does not.
	applied, err := src.Apply(Bundle{Name: "pushed", Version: 1, Model: ModelSpec{Kind: "constant", Bias: 1}})
	if err != nil || !applied {
		t.Fatalf("apply: %v applied=%v", err, applied)
	}
	if len(journal) != 3 {
		t.Fatalf("apply did not journal: %d records", len(journal))
	}
	applied, err = src.Apply(Bundle{Name: "pushed", Version: 1, Model: ModelSpec{Kind: "constant", Bias: 1}})
	if err != nil || applied {
		t.Fatalf("re-apply: %v applied=%v", err, applied)
	}
	if len(journal) != 3 {
		t.Fatal("idempotent re-apply journaled")
	}

	// Replay rebuilds the store: decode each record and Apply at its
	// declared version (journal unset — exactly what recovery does).
	recovered := New()
	for i, rec := range journal {
		rb, err := DecodeCanonicalBundle(rec)
		if err != nil {
			t.Fatalf("decode journal record %d: %v", i, err)
		}
		if _, err := recovered.Apply(*rb); err != nil {
			t.Fatalf("replay record %d: %v", i, err)
		}
	}
	if !reflect.DeepEqual(recovered.Watermarks(), src.Watermarks()) {
		t.Fatalf("watermarks differ: %v vs %v", recovered.Watermarks(), src.Watermarks())
	}
	for _, name := range src.List() {
		for v := 1; v <= src.VersionCount(name); v++ {
			want, _ := src.Get(name, v)
			got, ok := recovered.Get(name, v)
			if !ok || got.Digest() != want.Digest() {
				t.Fatalf("recovered %s@v%d diverges", name, v)
			}
		}
	}

	// Journal failure: Apply reports it and stores nothing; Publish
	// panics and stores nothing.
	boom := errors.New("disk gone")
	src.SetJournal(func([]byte) error { return boom })
	if _, err := src.Apply(Bundle{Name: "pushed", Version: 2, Model: ModelSpec{Kind: "constant"}}); !errors.Is(err, boom) {
		t.Fatalf("apply with failing journal: %v", err)
	}
	if src.VersionCount("pushed") != 1 {
		t.Fatal("failed apply journal still stored the bundle")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("Publish with failing journal did not panic")
			}
		}()
		src.Publish(Bundle{Name: "x", Model: ModelSpec{Kind: "constant"}})
	}()
	if src.VersionCount("x") != 0 {
		t.Fatal("failed publish journal still stored the bundle")
	}
}

func TestSnapshotBundlesCoversEverything(t *testing.T) {
	src := New()
	for i := 0; i < 3; i++ {
		b := canonicalTestBundle()
		b.Version = 0
		src.Publish(b)
	}
	src.Publish(Bundle{Name: "other", Model: ModelSpec{Kind: "constant", Bias: 2}})

	recovered := New()
	for i, rec := range src.SnapshotBundles() {
		rb, err := DecodeCanonicalBundle(rec)
		if err != nil {
			t.Fatalf("snapshot record %d: %v", i, err)
		}
		if _, err := recovered.Apply(*rb); err != nil {
			t.Fatalf("apply snapshot record %d: %v", i, err)
		}
	}
	if !reflect.DeepEqual(recovered.Watermarks(), src.Watermarks()) {
		t.Fatalf("watermarks differ: %v vs %v", recovered.Watermarks(), src.Watermarks())
	}
}
