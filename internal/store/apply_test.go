package store

import (
	"errors"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/data"
	"repro/internal/ml"
	"repro/internal/privacy"
	"repro/internal/rng"
)

func applyBundle(name string, version int, weight float64) Bundle {
	spec, _ := Serialize(&ml.LinearModel{Weights: []float64{weight}, Bias: 0})
	return Bundle{
		Name: name, Version: version, Model: spec,
		Provenance: Provenance{
			Pipeline: name, Spent: privacy.MustBudget(0.25, 1e-9),
			Blocks: []data.BlockID{1, 2}, Decision: "ACCEPT", Quality: 0.01,
		},
	}
}

func TestApplySequentialAndIdempotent(t *testing.T) {
	s := New()
	applied, err := s.Apply(applyBundle("m", 1, 1))
	if err != nil || !applied {
		t.Fatalf("first apply: applied=%v err=%v", applied, err)
	}
	// Re-delivery of the identical release is a no-op, not an error.
	applied, err = s.Apply(applyBundle("m", 1, 1))
	if err != nil || applied {
		t.Fatalf("duplicate apply: applied=%v err=%v, want false,nil", applied, err)
	}
	if applied, err = s.Apply(applyBundle("m", 2, 2)); err != nil || !applied {
		t.Fatalf("next-version apply: applied=%v err=%v", applied, err)
	}
	if got := s.VersionCount("m"); got != 2 {
		t.Errorf("VersionCount = %d, want 2", got)
	}
	b, ok := s.Get("m", 2)
	if !ok || b.Model.Weights[0] != 2 {
		t.Errorf("Get(m,2) = %+v, %v", b, ok)
	}
}

func TestApplyRejectsVersionGapWithWatermark(t *testing.T) {
	s := New()
	if _, err := s.Apply(applyBundle("m", 1, 1)); err != nil {
		t.Fatal(err)
	}
	_, err := s.Apply(applyBundle("m", 3, 3))
	var gap *VersionGapError
	if !errors.As(err, &gap) {
		t.Fatalf("gap apply error = %v, want *VersionGapError", err)
	}
	if gap.Watermark != 1 || gap.Version != 3 || gap.Name != "m" {
		t.Errorf("gap = %+v", gap)
	}
	// The store is unchanged: version 2 is still the next acceptable.
	if got := s.VersionCount("m"); got != 1 {
		t.Errorf("VersionCount after rejected gap = %d, want 1", got)
	}
}

func TestApplyRejectsDivergentRelease(t *testing.T) {
	s := New()
	if _, err := s.Apply(applyBundle("m", 1, 1)); err != nil {
		t.Fatal(err)
	}
	// Same (name, version), different weights: a re-push may repeat a
	// release but can never replace one.
	if _, err := s.Apply(applyBundle("m", 1, 99)); err == nil {
		t.Fatal("divergent re-apply succeeded; want digest-mismatch error")
	}
	if b, _ := s.Get("m", 1); b.Model.Weights[0] != 1 {
		t.Errorf("divergent apply mutated the release: weights %v", b.Model.Weights)
	}
	if _, err := s.Apply(applyBundle("m", 0, 1)); err == nil {
		t.Error("unversioned bundle accepted; want error")
	}
}

func TestBundleDigestCanonical(t *testing.T) {
	mk := func() *Bundle {
		b := applyBundle("m", 1, 1)
		b.Features = map[string][]float64{"a": {1, 2}, "b": {3}, "c": {4}}
		return &b
	}
	// Gob encoding of the same bundle varies (map order); the canonical
	// digest must not.
	a, b := mk(), mk()
	for i := 0; i < 20; i++ {
		if a.Digest() != b.Digest() {
			t.Fatal("digest differs between identical bundles")
		}
	}
	// Every field participates.
	for name, mutate := range map[string]func(*Bundle){
		"feature value": func(b *Bundle) { b.Features["a"][0] = 9 },
		"feature key":   func(b *Bundle) { b.Features["z"] = b.Features["a"]; delete(b.Features, "a") },
		"weights":       func(b *Bundle) { b.Model.Weights[0] = 9 },
		"version":       func(b *Bundle) { b.Version = 2 },
		"blocks":        func(b *Bundle) { b.Provenance.Blocks[0] = 9 },
		"spent":         func(b *Bundle) { b.Provenance.Spent.Epsilon = 9 },
		"decision":      func(b *Bundle) { b.Provenance.Decision = "RETRY" },
		"quality":       func(b *Bundle) { b.Provenance.Quality = 9 },
	} {
		m := mk()
		mutate(m)
		if m.Digest() == a.Digest() {
			t.Errorf("mutating %s did not change the digest", name)
		}
	}
}

func TestGenerationAdvancesOnMutation(t *testing.T) {
	s := New()
	g0 := s.Generation()
	s.Publish(applyBundle("m", 0, 1))
	if s.Generation() == g0 {
		t.Error("Publish did not advance the generation")
	}
	g1 := s.Generation()
	if _, err := s.Apply(applyBundle("n", 1, 1)); err != nil {
		t.Fatal(err)
	}
	if s.Generation() == g1 {
		t.Error("Apply did not advance the generation")
	}
	g2 := s.Generation()
	if _, err := s.Apply(applyBundle("n", 1, 1)); err != nil {
		t.Fatal(err)
	}
	if s.Generation() != g2 {
		t.Error("idempotent re-apply advanced the generation")
	}
}

// TestPreEncodedResponsesInvalidateOnPublish pins the connection-level
// fast path's one correctness hazard: a cached response must never
// outlive a publish that changes what it reports.
func TestPreEncodedResponsesInvalidateOnPublish(t *testing.T) {
	s := New()
	spec, _ := Serialize(&ml.LinearModel{Weights: []float64{1}, Bias: 0})
	s.Publish(Bundle{Name: "m", Model: spec, Provenance: Provenance{
		Pipeline: "m", Spent: privacy.MustBudget(0.5, 0)}})
	srv := httptest.NewServer(NewServer(s).Handler())
	defer srv.Close()

	fetch := func(path string) string {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		raw, _ := io.ReadAll(resp.Body)
		return string(raw)
	}

	before := fetch("/models")
	if before != fetch("/models") {
		t.Fatal("repeated GET /models not byte-identical")
	}
	provBefore := fetch("/models/m/provenance")

	// Publishing v2 must refresh both the model list (version bump) and
	// v1's provenance (total ε across versions grows).
	s.Publish(Bundle{Name: "m", Model: spec, Provenance: Provenance{
		Pipeline: "m", Spent: privacy.MustBudget(0.25, 0)}})
	after := fetch("/models")
	if after == before {
		t.Error("GET /models served a stale pre-encoded response after publish")
	}
	provAfter := fetch("/models/m/provenance?version=1")
	if provAfter == provBefore {
		t.Error("v1 provenance not refreshed after publish (total ε must grow)")
	}
}

// TestBundleRoundTripPredictsIdentically pins what the replica push
// path depends on: a decoded bundle's instantiated model is the model —
// bit-identical predictions, for every serializable kind. (The wire
// encoding is gob over float64s, which is exact; this test keeps anyone
// from changing it to a lossy one.)
func TestBundleRoundTripPredictsIdentically(t *testing.T) {
	r := rng.New(7)
	rows := make([][]float64, 32)
	for i := range rows {
		rows[i] = make([]float64, 6)
		for j := range rows[i] {
			rows[i][j] = r.Normal(0, 1)
		}
	}
	w := make([]float64, 6)
	for i := range w {
		w[i] = r.Normal(0, 1)
	}

	models := map[string]ml.Model{
		"linear":   &ml.LinearModel{Weights: w, Bias: 0.25},
		"constant": ml.ConstantModel{Value: 1.5},
		"logistic": ml.NewLogisticRegression(6),
		"sgd":      ml.NewSGDLinearRegression(6),
		"mlp-reg":  ml.NewMLP(ml.Regression, 6, []int{8, 4}, rng.New(9)),
		"mlp-clf":  ml.NewMLP(ml.BinaryClassification, 6, []int{5}, rng.New(10)),
	}
	for name, m := range models {
		t.Run(name, func(t *testing.T) {
			spec, err := Serialize(m)
			if err != nil {
				t.Fatal(err)
			}
			bundle := Bundle{Name: name, Version: 1, Model: spec,
				Features: map[string][]float64{"hour_speed": {30, 29, 28}}}
			raw, err := bundle.Encode()
			if err != nil {
				t.Fatal(err)
			}
			back, err := DecodeBundle(raw)
			if err != nil {
				t.Fatal(err)
			}
			if back.Digest() != bundle.Digest() {
				t.Error("round trip changed the canonical digest")
			}
			decoded, err := back.Model.Instantiate()
			if err != nil {
				t.Fatal(err)
			}
			for i, row := range rows {
				want, got := m.Predict(row), decoded.Predict(row)
				if math.Float64bits(want) != math.Float64bits(got) {
					t.Fatalf("row %d: decoded model predicts %v, original %v (not bit-identical)", i, got, want)
				}
			}
		})
	}
}

// TestBundleRoundTripMLPScratchLock pins the MLP case specifically: the
// decoded model still shares scratch (ml.SerialPredictor), so a replica
// that instantiates it must take the same per-instance lock the primary
// does — and its batched predictions must agree with singletons.
func TestBundleRoundTripMLPScratchLock(t *testing.T) {
	mlp := ml.NewMLP(ml.Regression, 4, []int{6, 3}, rng.New(21))
	spec, err := Serialize(mlp)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := (&Bundle{Name: "nn", Version: 1, Model: spec}).Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeBundle(raw)
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := back.Model.Instantiate()
	if err != nil {
		t.Fatal(err)
	}
	if _, serial := decoded.(ml.SerialPredictor); !serial {
		t.Fatal("decoded MLP lost its SerialPredictor marker: replicas would run it concurrently over shared scratch")
	}
	rows := [][]float64{{1, 2, 3, 4}, {0, 0, 0, 0}, {-1, 0.5, 2, -3}}
	out := make([]float64, len(rows))
	ml.PredictBatch(decoded, rows, out)
	for i, row := range rows {
		if math.Float64bits(out[i]) != math.Float64bits(mlp.Predict(row)) {
			t.Errorf("row %d: decoded batch %v != original single %v", i, out[i], mlp.Predict(row))
		}
	}
}
