package store

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"repro/internal/data"
	"repro/internal/ml"
	"repro/internal/privacy"
	"repro/internal/rng"
)

// getJSON fetches url and decodes the JSON body into out, returning the
// status code.
func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("GET %s: undecodable body: %v", url, err)
		}
	}
	return resp.StatusCode
}

// postJSON posts body to url and decodes the JSON response into out,
// returning the status code.
func postJSON(t *testing.T, url, body string, out any) int {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewBufferString(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("POST %s: undecodable body: %v", url, err)
		}
	}
	return resp.StatusCode
}

func TestModelsEmptyStoreReturnsEmptyArray(t *testing.T) {
	// Regression: an empty store used to serialize the nil slice as JSON
	// null, which breaks clients iterating the listing.
	srv := httptest.NewServer(NewServer(New()).Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/models")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	body := bytes.TrimSpace(buf.Bytes())
	if string(body) != "[]" {
		t.Errorf("/models on empty store = %s, want []", body)
	}
}

func TestPredictBatchEndpoint(t *testing.T) {
	s := New()
	spec, _ := Serialize(&ml.LinearModel{Weights: []float64{2}, Bias: 1})
	s.Publish(Bundle{Name: "double-plus-one", Model: spec})
	srv := httptest.NewServer(NewServer(s).Handler())
	defer srv.Close()

	var resp batchResponse
	code := postJSON(t, srv.URL+"/predict/batch?model=double-plus-one",
		`{"rows":[[1],[2],[3]]}`, &resp)
	if code != http.StatusOK {
		t.Fatalf("code = %d", code)
	}
	if resp.Model != "double-plus-one" || resp.Version != 1 {
		t.Errorf("identity = %s@%d", resp.Model, resp.Version)
	}
	if len(resp.Predictions) != 3 || len(resp.Errors) != 0 {
		t.Fatalf("predictions = %v, errors = %v", resp.Predictions, resp.Errors)
	}
	for i, want := range []float64{3, 5, 7} {
		if resp.Predictions[i] == nil || math.Abs(*resp.Predictions[i]-want) > 1e-12 {
			t.Errorf("prediction[%d] = %v, want %v", i, resp.Predictions[i], want)
		}
	}
}

func TestPredictBatchPositionalRowErrors(t *testing.T) {
	s := New()
	spec, _ := Serialize(&ml.LinearModel{Weights: []float64{1, 1}, Bias: 0})
	s.Publish(Bundle{Name: "sum2", Model: spec})
	srv := httptest.NewServer(NewServer(s).Handler())
	defer srv.Close()

	// Rows 1 (too long), 2 (empty), and 4 (too short) are malformed; the
	// valid rows 0 and 3 must still be answered at their positions.
	var resp batchResponse
	code := postJSON(t, srv.URL+"/predict/batch?model=sum2",
		`{"rows":[[1,2],[1,2,3],[],[10,20],[7]]}`, &resp)
	if code != http.StatusOK {
		t.Fatalf("code = %d: a batch with some bad rows must not fail wholesale", code)
	}
	if len(resp.Predictions) != 5 {
		t.Fatalf("predictions length = %d, want 5 (positional)", len(resp.Predictions))
	}
	if resp.Predictions[0] == nil || *resp.Predictions[0] != 3 {
		t.Errorf("prediction[0] = %v, want 3", resp.Predictions[0])
	}
	if resp.Predictions[3] == nil || *resp.Predictions[3] != 30 {
		t.Errorf("prediction[3] = %v, want 30", resp.Predictions[3])
	}
	for _, i := range []int{1, 2, 4} {
		if resp.Predictions[i] != nil {
			t.Errorf("malformed row %d got prediction %v, want null", i, *resp.Predictions[i])
		}
	}
	if len(resp.Errors) != 3 {
		t.Fatalf("errors = %+v, want 3 entries", resp.Errors)
	}
	wantRows := []int{1, 2, 4}
	for j, e := range resp.Errors {
		if e.Row != wantRows[j] {
			t.Errorf("errors[%d].Row = %d, want %d", j, e.Row, wantRows[j])
		}
		if e.Error == "" {
			t.Errorf("errors[%d] has empty message", j)
		}
	}

	// The JSON wire format marks bad rows as null, not 0.
	resp2, err := http.Post(srv.URL+"/predict/batch?model=sum2", "application/json",
		bytes.NewBufferString(`{"rows":[[1,2],[9]]}`))
	if err != nil {
		t.Fatal(err)
	}
	var raw map[string]json.RawMessage
	if err := json.NewDecoder(resp2.Body).Decode(&raw); err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	var preds []json.RawMessage
	if err := json.Unmarshal(raw["predictions"], &preds); err != nil {
		t.Fatal(err)
	}
	if string(preds[1]) != "null" {
		t.Errorf("wire prediction for bad row = %s, want null", preds[1])
	}
}

func TestPredictBatchRequestValidation(t *testing.T) {
	s := New()
	spec, _ := Serialize(&ml.LinearModel{Weights: []float64{1}, Bias: 0})
	s.Publish(Bundle{Name: "m", Model: spec})
	srv := httptest.NewServer(NewServer(s).Handler())
	defer srv.Close()

	big, _ := json.Marshal(batchRequest{Rows: make([][]float64, maxBatchRows+1)})
	for _, tc := range []struct {
		name, url, payload string
		wantCode           int
	}{
		{"missing model", "/predict/batch", `{"rows":[[1]]}`, http.StatusBadRequest},
		{"unknown model", "/predict/batch?model=ghost", `{"rows":[[1]]}`, http.StatusNotFound},
		{"malformed JSON", "/predict/batch?model=m", `{nope`, http.StatusBadRequest},
		{"empty rows", "/predict/batch?model=m", `{"rows":[]}`, http.StatusBadRequest},
		{"rows absent", "/predict/batch?model=m", `{}`, http.StatusBadRequest},
		{"oversized batch", "/predict/batch?model=m", string(big), http.StatusBadRequest},
	} {
		var body map[string]any
		if code := postJSON(t, srv.URL+tc.url, tc.payload, &body); code != tc.wantCode {
			t.Errorf("%s: code %d, want %d (body %v)", tc.name, code, tc.wantCode, body)
		} else if msg, _ := body["error"].(string); msg == "" {
			t.Errorf("%s: error response without message", tc.name)
		}
	}

	// The server still answers after the malformed requests.
	var ok batchResponse
	if code := postJSON(t, srv.URL+"/predict/batch?model=m", `{"rows":[[5]]}`, &ok); code != http.StatusOK {
		t.Errorf("server unhealthy after bad requests: code %d", code)
	}
}

func TestPredictBatchMLPMatchesSingle(t *testing.T) {
	// The MLP shares scratch buffers; the batch path must serialize
	// through them and agree with singleton predictions.
	s := New()
	mlp := ml.NewMLP(ml.Regression, 3, []int{8, 4}, rng.New(42))
	spec, err := Serialize(mlp)
	if err != nil {
		t.Fatal(err)
	}
	s.Publish(Bundle{Name: "nn", Model: spec})
	srv := httptest.NewServer(NewServer(s).Handler())
	defer srv.Close()

	rows := [][]float64{{0.1, 0.2, 0.3}, {1, -1, 0.5}, {0, 0, 0}}
	payload, _ := json.Marshal(batchRequest{Rows: rows})
	var resp batchResponse
	if code := postJSON(t, srv.URL+"/predict/batch?model=nn", string(payload), &resp); code != http.StatusOK {
		t.Fatalf("code = %d", code)
	}
	for i, row := range rows {
		want := mlp.Predict(row)
		if resp.Predictions[i] == nil || math.Abs(*resp.Predictions[i]-want) > 1e-9 {
			t.Errorf("row %d: batch = %v, want %v", i, resp.Predictions[i], want)
		}
	}
}

func TestFeaturesEndpoint(t *testing.T) {
	s := New()
	spec, _ := Serialize(ml.ConstantModel{Value: 0})
	s.Publish(Bundle{
		Name: "taxi", Model: spec,
		Features: map[string][]float64{
			"hour_speed": {30, 28, 26, 24},
			"day_count":  {100, 200},
		},
	})
	srv := httptest.NewServer(NewServer(s).Handler())
	defer srv.Close()

	// No key: list the available tables.
	var list featuresResponse
	if code := getJSON(t, srv.URL+"/features?model=taxi", &list); code != http.StatusOK {
		t.Fatalf("list code = %d", code)
	}
	if len(list.Keys) != 2 || list.Keys[0] != "day_count" || list.Keys[1] != "hour_speed" {
		t.Errorf("keys = %v, want sorted [day_count hour_speed]", list.Keys)
	}

	// Whole table: Listing 1's per-hour speed join.
	var table featuresResponse
	if code := getJSON(t, srv.URL+"/features?model=taxi&key=hour_speed", &table); code != http.StatusOK {
		t.Fatalf("table code = %d", code)
	}
	if table.Key != "hour_speed" || len(table.Values) != 4 || table.Values[2] != 26 {
		t.Errorf("table = %+v", table)
	}

	// Index variant: single-value serving-time join.
	var one featuresResponse
	if code := getJSON(t, srv.URL+"/features?model=taxi&key=hour_speed&index=3", &one); code != http.StatusOK {
		t.Fatalf("index code = %d", code)
	}
	if one.Index == nil || *one.Index != 3 || one.Value == nil || *one.Value != 24 {
		t.Errorf("indexed lookup = %+v, want index 3 → 24", one)
	}
	if one.Values != nil {
		t.Errorf("indexed lookup returned whole table: %v", one.Values)
	}

	// Error paths.
	for _, tc := range []struct {
		name, url string
		wantCode  int
	}{
		{"missing model", "/features", http.StatusBadRequest},
		{"unknown model", "/features?model=ghost&key=hour_speed", http.StatusNotFound},
		{"unknown key", "/features?model=taxi&key=nope", http.StatusNotFound},
		{"index without key", "/features?model=taxi&index=1", http.StatusBadRequest},
		{"bad index", "/features?model=taxi&key=hour_speed&index=zap", http.StatusBadRequest},
		{"index out of range", "/features?model=taxi&key=hour_speed&index=4", http.StatusBadRequest},
		{"negative index", "/features?model=taxi&key=hour_speed&index=-1", http.StatusBadRequest},
		{"bad version", "/features?model=taxi&key=hour_speed&version=9", http.StatusNotFound},
	} {
		var body map[string]any
		if code := getJSON(t, srv.URL+tc.url, &body); code != tc.wantCode {
			t.Errorf("%s: code %d, want %d (body %v)", tc.name, code, tc.wantCode, body)
		}
	}

	// Versioned lookup pins an older release's table.
	s.Publish(Bundle{
		Name: "taxi", Model: spec,
		Features: map[string][]float64{"hour_speed": {1, 2, 3, 4}},
	})
	var v1 featuresResponse
	if code := getJSON(t, srv.URL+"/features?model=taxi&key=hour_speed&version=1", &v1); code != http.StatusOK {
		t.Fatalf("versioned code = %d", code)
	}
	if v1.Version != 1 || v1.Values[0] != 30 {
		t.Errorf("versioned lookup = %+v, want version 1 table", v1)
	}
}

func TestProvenanceEndpoint(t *testing.T) {
	s := New()
	spec, _ := Serialize(&ml.LinearModel{Weights: []float64{1}, Bias: 0})
	s.Publish(Bundle{
		Name: "taxi-lr", Model: spec,
		Provenance: Provenance{
			Pipeline: "taxi-lr-0",
			Spent:    privacy.MustBudget(0.25, 1e-8),
			Blocks:   []data.BlockID{3, 4, 5},
			Decision: "ACCEPT",
			Quality:  0.004,
		},
	})
	s.Publish(Bundle{
		Name: "taxi-lr", Model: spec,
		Provenance: Provenance{
			Pipeline: "taxi-lr-0",
			Spent:    privacy.MustBudget(0.5, 0),
			Blocks:   []data.BlockID{5, 6},
			Decision: "ACCEPT",
			Quality:  0.003,
		},
	})
	srv := httptest.NewServer(NewServer(s).Handler())
	defer srv.Close()

	var prov provenanceResponse
	if code := getJSON(t, srv.URL+"/models/taxi-lr/provenance", &prov); code != http.StatusOK {
		t.Fatalf("code = %d", code)
	}
	if prov.Model != "taxi-lr" || prov.Version != 2 {
		t.Errorf("identity = %s@%d, want taxi-lr@2", prov.Model, prov.Version)
	}
	if prov.Epsilon != 0.5 || len(prov.Blocks) != 2 || prov.Blocks[0] != 5 {
		t.Errorf("latest provenance = %+v", prov)
	}
	if prov.Decision != "ACCEPT" || prov.Quality != 0.003 {
		t.Errorf("decision/quality = %q/%v", prov.Decision, prov.Quality)
	}
	if math.Abs(prov.TotalEpsilon-0.75) > 1e-12 {
		t.Errorf("total ε = %v, want 0.75 across versions", prov.TotalEpsilon)
	}

	// Version pinning reaches the first release.
	var v1 provenanceResponse
	if code := getJSON(t, srv.URL+"/models/taxi-lr/provenance?version=1", &v1); code != http.StatusOK {
		t.Fatalf("versioned code = %d", code)
	}
	if v1.Version != 1 || v1.Epsilon != 0.25 || len(v1.Blocks) != 3 {
		t.Errorf("v1 provenance = %+v", v1)
	}

	if code := getJSON(t, srv.URL+"/models/ghost/provenance", nil); code != http.StatusNotFound {
		t.Errorf("unknown model provenance code = %d", code)
	}
	if code := getJSON(t, srv.URL+"/models/taxi-lr/provenance?version=forty", nil); code != http.StatusBadRequest {
		t.Errorf("bad version provenance code = %d", code)
	}

	// A bundle published with nil blocks serializes them as [], not null.
	s.Publish(Bundle{Name: "bare", Model: spec})
	resp, err := http.Get(srv.URL + "/models/bare/provenance")
	if err != nil {
		t.Fatal(err)
	}
	var raw map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&raw); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if string(raw["blocks"]) != "[]" {
		t.Errorf("nil blocks serialized as %s, want []", raw["blocks"])
	}
}

// TestConcurrentPublishWhilePredicting hammers every endpoint while
// pipelines publish new versions of both a stateless (linear) and a
// scratch-sharing (MLP) model. Run under -race it pins down the cache's
// eviction races and the MLP's predict serialization.
func TestConcurrentPublishWhilePredicting(t *testing.T) {
	s := New()
	publishAll := func(v int) {
		linSpec, _ := Serialize(&ml.LinearModel{Weights: []float64{float64(v)}, Bias: 0})
		s.Publish(Bundle{
			Name: "lin", Model: linSpec,
			Features:   map[string][]float64{"hour_speed": {float64(v), 2, 3}},
			Provenance: Provenance{Pipeline: "demo", Blocks: []data.BlockID{1}},
		})
		mlpSpec, _ := Serialize(ml.NewMLP(ml.Regression, 2, []int{4}, rng.New(uint64(v))))
		s.Publish(Bundle{Name: "nn", Model: mlpSpec})
	}
	publishAll(1)
	server := NewServer(s)
	srv := httptest.NewServer(server.Handler())
	defer srv.Close()

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() { // publisher
		defer wg.Done()
		for v := 2; v <= 40; v++ {
			publishAll(v)
		}
		close(stop)
	}()
	fail := make(chan string, 64)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			client := srv.Client()
			for i := 0; ; i++ {
				select {
				case <-stop:
					if i > 0 {
						return
					}
				default:
				}
				var url, payload string
				switch i % 4 {
				case 0:
					url, payload = "/predict/batch?model=lin", `{"rows":[[1],[2],[3,4],[5]]}`
				case 1:
					url, payload = "/predict/batch?model=nn", `{"rows":[[1,2],[0.5,-0.5]]}`
				case 2:
					url, payload = "/predict?model=nn", `{"features":[1,2]}`
				default:
					url, payload = "", "" // GET round
				}
				var resp *http.Response
				var err error
				if url != "" {
					resp, err = client.Post(srv.URL+url, "application/json", bytes.NewBufferString(payload))
				} else {
					targets := []string{"/models", "/features?model=lin&key=hour_speed&index=0", "/models/lin/provenance"}
					resp, err = client.Get(srv.URL + targets[(i/4)%len(targets)])
				}
				if err != nil {
					select {
					case fail <- err.Error():
					default:
					}
					return
				}
				if resp.StatusCode != http.StatusOK {
					select {
					case fail <- fmt.Sprintf("worker %d: %s → %d", w, url, resp.StatusCode):
					default:
					}
				}
				resp.Body.Close()
			}
		}(w)
	}
	wg.Wait()
	select {
	case msg := <-fail:
		t.Fatal(msg)
	default:
	}

	// After the dust settles the cache is bounded at one live model per
	// name, and predictions reflect the final version.
	var resp batchResponse
	if code := postJSON(t, srv.URL+"/predict/batch?model=lin", `{"rows":[[2]]}`, &resp); code != http.StatusOK {
		t.Fatalf("final predict code = %d", code)
	}
	if resp.Version != 40 || resp.Predictions[0] == nil || *resp.Predictions[0] != 80 {
		t.Errorf("final batch = v%d %v, want v40 → 80", resp.Version, resp.Predictions[0])
	}
	server.mu.Lock()
	perName := map[string]int{}
	for k := range server.cache {
		perName[k.name]++
	}
	server.mu.Unlock()
	for name, n := range perName {
		if n > 1 {
			t.Errorf("cache holds %d live models for %q, want ≤ 1", n, name)
		}
	}
}
