package store

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/ml"
	"repro/internal/rng"
	"repro/internal/taxi"
)

// benchServer publishes one model of the given spec and returns a test
// server plus a keep-alive client.
func benchServer(b *testing.B, m ml.Model) (*httptest.Server, *http.Client) {
	b.Helper()
	s := New()
	spec, err := Serialize(m)
	if err != nil {
		b.Fatal(err)
	}
	s.Publish(Bundle{Name: "bench", Model: spec})
	srv := httptest.NewServer(NewServer(s).Handler())
	b.Cleanup(srv.Close)
	return srv, srv.Client()
}

// benchRows builds n taxi-dimensional feature vectors.
func benchRows(n int) [][]float64 {
	r := rng.New(11)
	rows := make([][]float64, n)
	for i := range rows {
		x := make([]float64, taxi.FeatureDim)
		for j := range x {
			x[j] = r.Float64()
		}
		rows[i] = x
	}
	return rows
}

func post(b *testing.B, c *http.Client, url string, payload []byte) {
	b.Helper()
	resp, err := c.Post(url, "application/json", bytes.NewReader(payload))
	if err != nil {
		b.Fatal(err)
	}
	if _, err := io.Copy(io.Discard, resp.Body); err != nil {
		b.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b.Fatalf("status %d", resp.StatusCode)
	}
}

// BenchmarkServePredictBatch measures end-to-end HTTP throughput of
// POST /predict/batch — JSON decode, positional validation, one cached
// model instantiation for the whole batch, JSON encode — at taxi
// dimensionality (48 features). The rows/s metric is the serving
// number that matters for Fig. 1's serving infrastructure.
func BenchmarkServePredictBatch(b *testing.B) {
	weights := make([]float64, taxi.FeatureDim)
	for i := range weights {
		weights[i] = float64(i%7) * 0.1
	}
	models := []struct {
		name  string
		model ml.Model
	}{
		{"linear", &ml.LinearModel{Weights: weights, Bias: 0.5}},
		{"mlp", ml.NewMLP(ml.Regression, taxi.FeatureDim, []int{64, 32}, rng.New(5))},
	}
	for _, m := range models {
		for _, batch := range []int{16, 256, 2048} {
			b.Run(fmt.Sprintf("%s/rows=%d", m.name, batch), func(b *testing.B) {
				srv, client := benchServer(b, m.model)
				payload, err := json.Marshal(batchRequest{Rows: benchRows(batch)})
				if err != nil {
					b.Fatal(err)
				}
				url := srv.URL + "/predict/batch?model=bench"
				post(b, client, url, payload) // warm the model cache
				b.SetBytes(int64(len(payload)))
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					post(b, client, url, payload)
				}
				b.StopTimer()
				b.ReportMetric(float64(batch)*float64(b.N)/b.Elapsed().Seconds(), "rows/s")
			})
		}
	}
}

// BenchmarkServePredictSingle is the per-request baseline the batch
// endpoint amortizes: the same rows pushed one HTTP round trip at a
// time.
func BenchmarkServePredictSingle(b *testing.B) {
	weights := make([]float64, taxi.FeatureDim)
	for i := range weights {
		weights[i] = float64(i%7) * 0.1
	}
	srv, client := benchServer(b, &ml.LinearModel{Weights: weights, Bias: 0.5})
	payload, err := json.Marshal(predictRequest{Features: benchRows(1)[0]})
	if err != nil {
		b.Fatal(err)
	}
	url := srv.URL + "/predict?model=bench"
	post(b, client, url, payload)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		post(b, client, url, payload)
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "rows/s")
}
