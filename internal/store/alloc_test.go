package store

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/metrics"
	"repro/internal/ml"
	"repro/internal/rng"
	"repro/internal/safety"
	"repro/internal/taxi"
	"repro/internal/trace"
)

// Allocation budgets for the two serving fast paths whose whole point
// is not allocating. Budgets sit well above the measured steady state
// (headroom for runtime/encoding changes across Go releases) and far
// below the unoptimized numbers, so losing the optimization — dropping
// the encode cache, or un-pooling the batch scratch — fails the test.
const (
	// preEncoded cache hit: generation check + map lookup, zero allocs
	// measured. Re-encoding per request (the pre-PR 4 behavior) costs
	// dozens of allocs and blows this immediately.
	preEncodedHitBudget = 2

	// One warm 256-row /predict/batch request through the mux:
	// pooled decode + positional predict + pooled encode measured at
	// ~369 allocs/op in PR 4, down from 2182 without the pool. The
	// budget fails the unpooled path while leaving headroom over the
	// measured number.
	batchWarmBudget = 500
)

// TestPreEncodedHitAllocs pins the immutable-read fast path: once a
// response body is in the encode cache, serving it again must not
// re-encode (and so must not allocate).
func TestPreEncodedHitAllocs(t *testing.T) {
	s := New()
	srv := NewServer(s)
	// Budgets are pinned with instrumentation live: the metrics hot
	// paths are pre-resolved atomics, so an instrumented hit must still
	// fit the same budget as an uninstrumented one.
	srv.Instrument(metrics.New())

	builds := 0
	build := func() any {
		builds++
		return map[string]any{"models": []string{"a", "b"}}
	}
	if _, err := srv.preEncoded("models", build); err != nil {
		t.Fatal(err)
	}

	got := safety.MaxAllocs(t, 1000, preEncodedHitBudget, func() {
		if _, err := srv.preEncoded("models", build); err != nil {
			t.Fatal(err)
		}
	})
	if builds != 1 {
		t.Errorf("build ran %d times: hit path re-encoded instead of serving the cache", builds)
	}
	t.Logf("preEncoded hit path: %.1f allocs/op (budget %d)", got, preEncodedHitBudget)
}

// TestPredictBatchWarmAllocs pins the pooled batch path end to end: a
// warm 256-row POST /predict/batch through the handler reuses the
// pooled scratch (row buffers, outputs, encode buffer), so its
// allocations stay bounded by per-request HTTP plumbing, not by batch
// size. Un-pooling batchScratch roughly sextuples this number.
func TestPredictBatchWarmAllocs(t *testing.T) {
	s := New()
	weights := make([]float64, taxi.FeatureDim)
	for i := range weights {
		weights[i] = float64(i%7) * 0.1
	}
	spec, err := Serialize(&ml.LinearModel{Weights: weights, Bias: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	s.Publish(Bundle{Name: "bench", Model: spec})
	srv := NewServer(s)
	srv.Instrument(metrics.New()) // budgets hold with instrumentation live
	// A disabled (nil) tracer's Middleware returns the handler
	// unchanged, so the budget also pins that tracing-compiled-in but
	// switched-off serving costs exactly nothing.
	h := (*trace.Tracer)(nil).Middleware(srv.Handler())

	r := rng.New(11)
	rows := make([][]float64, 256)
	for i := range rows {
		x := make([]float64, taxi.FeatureDim)
		for j := range x {
			x[j] = r.Float64()
		}
		rows[i] = x
	}
	payload, err := json.Marshal(batchRequest{Rows: rows})
	if err != nil {
		t.Fatal(err)
	}

	serve := func() {
		req := httptest.NewRequest(http.MethodPost, "/predict/batch?model=bench", bytes.NewReader(payload))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
		}
	}
	serve() // warm the model cache and the scratch pool

	got := safety.MaxAllocs(t, 50, batchWarmBudget, serve)
	t.Logf("warm 256-row batch: %.1f allocs/op (budget %d)", got, batchWarmBudget)
}
