// Package store implements the wide-access Model & Feature Store of the
// paper's platform architecture (Fig. 1, §2.1): the component that
// receives model+feature bundles from accepted training pipelines and
// exposes them to other teams and to the serving infrastructure.
//
// The store sits in the *untrusted* domain of the threat model (§2.2):
// anything published here is considered released, which is exactly why
// Sage makes the process that produces bundles globally DP. Bundles
// therefore carry provenance — the pipeline, the privacy budget spent,
// the blocks used, and the validator's decision — so an auditor can
// reconcile every release against the stream's accounting.
package store

import (
	"bytes"
	"crypto/sha256"
	"encoding/gob"
	"fmt"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/ml"
	"repro/internal/privacy"
	"repro/internal/rng"
)

// Provenance records where a bundle came from.
type Provenance struct {
	// Pipeline is the producing pipeline's name.
	Pipeline string
	// Spent is the privacy budget the release consumed.
	Spent privacy.Budget
	// Blocks are the stream blocks the training read.
	Blocks []data.BlockID
	// Decision is the validator's verdict ("ACCEPT").
	Decision string
	// Quality is the DP quality estimate at release time.
	Quality float64
}

// ModelSpec is a serializable description of a trained model. Exactly
// one Kind is valid.
type ModelSpec struct {
	Kind string // "linear", "logistic", "linear-sgd", "mlp-reg", "mlp-clf"
	// Linear models.
	Weights []float64
	Bias    float64
	// SGD-parameterized models (logistic / linear-sgd / MLPs).
	Dim    int
	Hidden []int
	Params []float64
}

// Serialize converts a supported model into a spec. It returns an error
// for unknown model types.
func Serialize(m ml.Model) (ModelSpec, error) {
	switch v := m.(type) {
	case *ml.LinearModel:
		return ModelSpec{
			Kind:    "linear",
			Weights: append([]float64{}, v.Weights...),
			Bias:    v.Bias,
		}, nil
	case *ml.LogisticRegression:
		return ModelSpec{
			Kind: "logistic", Dim: v.Dim(),
			Params: append([]float64{}, v.Params()...),
		}, nil
	case *ml.SGDLinearRegression:
		return ModelSpec{
			Kind: "linear-sgd", Dim: v.Dim(),
			Params: append([]float64{}, v.Params()...),
		}, nil
	case *ml.MLP:
		kind := "mlp-reg"
		if v.Kind() == ml.BinaryClassification {
			kind = "mlp-clf"
		}
		return ModelSpec{
			Kind: kind, Dim: v.InputDim(), Hidden: v.Hidden(),
			Params: append([]float64{}, v.Params()...),
		}, nil
	case ml.ConstantModel:
		return ModelSpec{Kind: "constant", Bias: v.Value}, nil
	default:
		return ModelSpec{}, fmt.Errorf("store: unsupported model type %T", m)
	}
}

// InputDim returns the feature-vector length the spec's model expects,
// or 0 when any length is acceptable (constant models). Serving uses it
// to reject malformed predict requests before they reach Predict.
func (s ModelSpec) InputDim() int {
	switch s.Kind {
	case "linear":
		return len(s.Weights)
	case "logistic", "linear-sgd", "mlp-reg", "mlp-clf":
		return s.Dim
	default:
		return 0
	}
}

// Instantiate reconstructs a usable model from the spec.
func (s ModelSpec) Instantiate() (ml.Model, error) {
	switch s.Kind {
	case "linear":
		return &ml.LinearModel{
			Weights: append([]float64{}, s.Weights...),
			Bias:    s.Bias,
		}, nil
	case "constant":
		return ml.ConstantModel{Value: s.Bias}, nil
	case "logistic":
		m := ml.NewLogisticRegression(s.Dim)
		if len(s.Params) != len(m.Params()) {
			return nil, fmt.Errorf("store: logistic params length %d, want %d", len(s.Params), len(m.Params()))
		}
		copy(m.Params(), s.Params)
		return m, nil
	case "linear-sgd":
		m := ml.NewSGDLinearRegression(s.Dim)
		if len(s.Params) != len(m.Params()) {
			return nil, fmt.Errorf("store: linear-sgd params length %d, want %d", len(s.Params), len(m.Params()))
		}
		copy(m.Params(), s.Params)
		return m, nil
	case "mlp-reg", "mlp-clf":
		kind := ml.Regression
		if s.Kind == "mlp-clf" {
			kind = ml.BinaryClassification
		}
		m := ml.NewMLP(kind, s.Dim, s.Hidden, rng.New(0))
		if len(s.Params) != len(m.Params()) {
			return nil, fmt.Errorf("store: MLP params length %d, want %d", len(s.Params), len(m.Params()))
		}
		copy(m.Params(), s.Params)
		return m, nil
	default:
		return nil, fmt.Errorf("store: unknown model kind %q", s.Kind)
	}
}

// Bundle is one released model+features artifact (§2.1: the model is
// "bundled with its feature transformation operators and pushed into
// serving").
type Bundle struct {
	Name    string
	Version int
	Model   ModelSpec
	// Features carries released aggregate features by name, e.g.
	// Listing 1's per-hour speed table.
	Features   map[string][]float64
	Provenance Provenance
}

// Encode serializes the bundle (gob) for shipment to serving replicas
// or end-user devices.
func (b *Bundle) Encode() ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(b); err != nil {
		return nil, fmt.Errorf("store: encode bundle %s: %w", b.Name, err)
	}
	return buf.Bytes(), nil
}

// DecodeBundle deserializes a bundle.
func DecodeBundle(raw []byte) (*Bundle, error) {
	var b Bundle
	if err := gob.NewDecoder(bytes.NewReader(raw)).Decode(&b); err != nil {
		return nil, fmt.Errorf("store: decode bundle: %w", err)
	}
	return &b, nil
}

// CanonicalBytes returns the bundle's canonical serialization
// (internal/core's audit encoding: fixed field order, sorted feature
// keys, IEEE-754 bit patterns). Two bundles are the same release iff
// their canonical bytes are equal, and the serialization is invertible
// (DecodeCanonicalBundle), so the same bytes serve three roles: the
// content digest replica push verifies, the payload the write-ahead log
// journals for each publish (the WAL record's checksum therefore covers
// exactly the bytes the push digest covers), and the record replay
// decodes during crash recovery.
func (b *Bundle) CanonicalBytes() []byte {
	buf := core.AppendString(nil, b.Name)
	buf = core.AppendUint(buf, uint64(b.Version))
	buf = core.AppendString(buf, b.Model.Kind)
	buf = core.AppendFloats(buf, b.Model.Weights)
	buf = core.AppendFloat(buf, b.Model.Bias)
	buf = core.AppendUint(buf, uint64(b.Model.Dim))
	buf = core.AppendUint(buf, uint64(len(b.Model.Hidden)))
	for _, h := range b.Model.Hidden {
		buf = core.AppendUint(buf, uint64(h))
	}
	buf = core.AppendFloats(buf, b.Model.Params)
	keys := b.FeatureKeys()
	buf = core.AppendUint(buf, uint64(len(keys)))
	for _, k := range keys {
		buf = core.AppendString(buf, k)
		buf = core.AppendFloats(buf, b.Features[k])
	}
	p := b.Provenance
	return core.AppendProvenance(buf, p.Pipeline, p.Spent, p.Blocks, p.Decision, p.Quality)
}

// DecodeCanonicalBundle inverts CanonicalBytes. The write-ahead log's
// recovery path uses it to reconstruct released bundles from journal
// records.
func DecodeCanonicalBundle(raw []byte) (*Bundle, error) {
	c := core.NewCursor(raw)
	var b Bundle
	b.Name = c.String()
	b.Version = int(c.Uint())
	b.Model.Kind = c.String()
	b.Model.Weights = c.Floats()
	b.Model.Bias = c.Float()
	b.Model.Dim = int(c.Uint())
	nHidden := c.Uint()
	if c.Err() == nil && nHidden > 0 {
		// Bound before allocating (divide — int(nHidden)*8 on a damaged
		// length field overflows).
		if nHidden > uint64(c.Remaining())/8 {
			return nil, fmt.Errorf("store: canonical bundle: truncated hidden sizes")
		}
		b.Model.Hidden = make([]int, nHidden)
		for i := range b.Model.Hidden {
			b.Model.Hidden[i] = int(c.Uint())
		}
	}
	b.Model.Params = c.Floats()
	nFeatures := c.Uint()
	if c.Err() == nil && nFeatures > 0 {
		// Each feature needs at least a length-prefixed key and table,
		// so the count cannot exceed the remaining bytes / 16; a
		// damaged count must not size the map allocation.
		if nFeatures > uint64(c.Remaining())/16 {
			return nil, fmt.Errorf("store: canonical bundle: feature count %d exceeds payload", nFeatures)
		}
		b.Features = make(map[string][]float64, nFeatures)
		for i := uint64(0); i < nFeatures && c.Err() == nil; i++ {
			k := c.String()
			b.Features[k] = c.Floats()
		}
	}
	b.Provenance.Pipeline = c.String()
	b.Provenance.Spent.Epsilon = c.Float()
	b.Provenance.Spent.Delta = c.Float()
	b.Provenance.Blocks = c.BlockIDs()
	b.Provenance.Decision = c.String()
	b.Provenance.Quality = c.Float()
	if err := c.Err(); err != nil {
		return nil, fmt.Errorf("store: canonical bundle: %w", err)
	}
	if c.Remaining() != 0 {
		return nil, fmt.Errorf("store: canonical bundle: %d trailing bytes", c.Remaining())
	}
	return &b, nil
}

// Digest returns a content digest over the bundle's canonical
// serialization. The gob wire encoding cannot serve this role — it
// walks the feature map in iteration order, so re-encoding the same
// bundle yields different bytes. Replica push uses the digest for
// idempotency: a re-push of an already-applied (name, version) is
// accepted iff the digests match, so a divergent bundle can never
// silently overwrite a release. Because the WAL journals exactly
// CanonicalBytes, a journaled release's digest is the digest replicas
// verified.
func (b *Bundle) Digest() [sha256.Size]byte {
	return sha256.Sum256(b.CanonicalBytes())
}

// Store is the in-memory wide-access model & feature store. It is safe
// for concurrent use.
type Store struct {
	mu      sync.RWMutex
	bundles map[string][]*Bundle // name → versions (ascending)
	// gen counts mutations. Serving caches key their pre-encoded
	// responses on it: a response computed at generation g is valid
	// until the store changes, at which point g stops matching and the
	// entry is rebuilt on next use.
	gen uint64
	// journal, when set (SetJournal), receives every new release's
	// canonical bytes before the release is applied or acknowledged —
	// the store half of the durable platform core.
	journal func(canonical []byte) error
}

// SetJournal installs the write-ahead journal: every release that
// enters the store (Publish or a first-time Apply) has its canonical
// bytes journaled, under the store lock, before the release is visible
// or acknowledged. Install it *after* replaying recovered releases —
// recovery applies them through the same public methods, and a set
// journal would re-journal them. A journal failure fails the mutation:
// Apply returns the error; Publish, which has no error return, panics —
// a durable store that cannot journal must stop taking releases rather
// than diverge from its log.
//
//sage:nojournal installs the journal itself; runs before any journal exists
func (s *Store) SetJournal(journal func(canonical []byte) error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.journal = journal
}

// SnapshotBundles returns every release's canonical bytes, names
// sorted, versions ascending — the record set a WAL compaction replaces
// the store's journal history with.
func (s *Store) SnapshotBundles() [][]byte {
	s.mu.RLock()
	defer s.mu.RUnlock()
	names := make([]string, 0, len(s.bundles))
	for name := range s.bundles {
		names = append(names, name)
	}
	sort.Strings(names)
	var out [][]byte
	for _, name := range names {
		for _, b := range s.bundles[name] {
			out = append(out, b.CanonicalBytes())
		}
	}
	return out
}

// New returns an empty store.
func New() *Store {
	return &Store{bundles: make(map[string][]*Bundle)}
}

// deepCopy returns a bundle sharing no mutable memory with b: the
// feature map and its value slices, the model's parameter slices, and
// the provenance block list are all copied.
func (b Bundle) deepCopy() *Bundle {
	c := b
	c.Model.Weights = append([]float64(nil), b.Model.Weights...)
	c.Model.Hidden = append([]int(nil), b.Model.Hidden...)
	c.Model.Params = append([]float64(nil), b.Model.Params...)
	c.Provenance.Blocks = append([]data.BlockID(nil), b.Provenance.Blocks...)
	if b.Features != nil {
		c.Features = make(map[string][]float64, len(b.Features))
		for k, v := range b.Features {
			c.Features[k] = append([]float64(nil), v...)
		}
	}
	return &c
}

// Publish adds a bundle under its name and assigns the next version
// (starting at 1). It returns the assigned version. The store keeps a
// deep copy: a published bundle is a *release* — immutable by the threat
// model (§2.2) — so later mutation of the caller's feature map or
// parameter slices must not rewrite what auditors and servers see.
// With a journal installed the release is journaled (canonical bytes,
// version included) before it becomes visible; a journal failure
// panics, since Publish cannot report it and must not acknowledge an
// unjournaled release.
//
//sage:journaled
func (s *Store) Publish(b Bundle) int {
	stored := b.deepCopy()
	s.mu.Lock()
	defer s.mu.Unlock()
	versions := s.bundles[b.Name]
	stored.Version = len(versions) + 1
	if s.journal != nil {
		if err := s.journal(stored.CanonicalBytes()); err != nil {
			panic(fmt.Errorf("store: journal publish %s@v%d: %w", stored.Name, stored.Version, err))
		}
	}
	s.bundles[b.Name] = append(versions, stored)
	s.gen++
	return stored.Version
}

// Generation returns a counter that advances on every store mutation
// (Publish or Apply). Anything derived from store contents — the
// serving layer's pre-encoded responses — caches against it and
// invalidates on mismatch.
func (s *Store) Generation() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.gen
}

// VersionCount returns how many versions of name are published — the
// store's applied-version watermark for the replica push protocol.
func (s *Store) VersionCount(name string) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.bundles[name])
}

// VersionGapError reports an Apply whose bundle version would leave a
// hole in the version sequence. It carries the receiver's current
// watermark so the pusher knows where to resume.
type VersionGapError struct {
	Name      string
	Version   int // the version that was offered
	Watermark int // versions currently applied
}

func (e *VersionGapError) Error() string {
	return fmt.Sprintf("store: bundle %s@v%d leaves a gap: %d version(s) applied", e.Name, e.Version, e.Watermark)
}

// Apply inserts a bundle at its *declared* version — the receiving half
// of the replica push protocol, where versions are assigned by the
// publisher's store and must survive re-delivery. Semantics:
//
//   - Version == watermark+1: the bundle is appended (deep-copied, like
//     Publish) and Apply reports applied=true.
//   - Version <= watermark: idempotent re-push. Apply verifies the
//     offered bundle's digest against the applied one and reports
//     applied=false; a digest mismatch is an error — a release can
//     never be silently replaced.
//   - Version > watermark+1: *VersionGapError. The store refuses holes
//     so that "watermark = n" always means versions 1..n are present.
//
// A version of 0 (a bundle that never went through Publish) is
// rejected.
//
//sage:journaled
func (s *Store) Apply(b Bundle) (applied bool, err error) {
	if b.Version < 1 {
		return false, fmt.Errorf("store: apply %s: bundle has no version (got %d)", b.Name, b.Version)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	versions := s.bundles[b.Name]
	switch {
	case b.Version <= len(versions):
		existing := versions[b.Version-1]
		if existing.Digest() != b.Digest() {
			return false, fmt.Errorf("store: apply %s@v%d: digest mismatch with already-applied release", b.Name, b.Version)
		}
		return false, nil
	case b.Version == len(versions)+1:
		stored := b.deepCopy()
		if s.journal != nil {
			if err := s.journal(stored.CanonicalBytes()); err != nil {
				return false, fmt.Errorf("store: journal apply %s@v%d: %w", stored.Name, stored.Version, err)
			}
		}
		s.bundles[b.Name] = append(versions, stored)
		s.gen++
		return true, nil
	default:
		return false, &VersionGapError{Name: b.Name, Version: b.Version, Watermark: len(versions)}
	}
}

// Watermarks returns every name's applied version count, sorted by
// name — the replica status a publisher reconciles against.
func (s *Store) Watermarks() map[string]int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make(map[string]int, len(s.bundles))
	for name, versions := range s.bundles {
		out[name] = len(versions)
	}
	return out
}

// FeatureKeys returns the bundle's released aggregate table names,
// sorted.
func (b *Bundle) FeatureKeys() []string {
	out := make([]string, 0, len(b.Features))
	for k := range b.Features {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Latest returns the most recent version of the named bundle.
func (s *Store) Latest(name string) (*Bundle, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	versions := s.bundles[name]
	if len(versions) == 0 {
		return nil, false
	}
	return versions[len(versions)-1], true
}

// Get returns a specific version.
func (s *Store) Get(name string, version int) (*Bundle, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	versions := s.bundles[name]
	if version < 1 || version > len(versions) {
		return nil, false
	}
	return versions[version-1], true
}

// List returns all bundle names, sorted.
func (s *Store) List() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.bundles))
	for name := range s.bundles {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// TotalSpent sums the budget recorded across all published bundles of a
// name — an auditor's view of how much privacy a model line has cost.
// Note this is a *per-release* tally; the binding stream-wide guarantee
// lives in core.AccessControl's per-block accounting.
func (s *Store) TotalSpent(name string) privacy.Budget {
	s.mu.RLock()
	defer s.mu.RUnlock()
	total := privacy.Zero
	for _, b := range s.bundles[name] {
		total = total.Add(b.Provenance.Spent)
	}
	return total
}
