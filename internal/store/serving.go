package store

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"

	"repro/internal/ml"
)

// Server is the Serving Infrastructure of Fig. 1: it loads bundles from
// the store and answers prediction requests over HTTP. It caches the
// instantiated model per (name, version) — bundles are immutable — and
// evicts a name's superseded versions when a newer one is instantiated,
// so a long-running server's cache stays bounded at one live model per
// name however many versions the pipelines publish.
//
// Endpoints:
//
//	GET  /models                 → JSON list of {name, version, pipeline}
//	POST /predict?model=<name>   → {"prediction": …} for {"features": […]}
type Server struct {
	store *Store
	mu    sync.Mutex
	cache map[modelKey]ml.Model
}

// modelKey identifies one cached model instantiation.
type modelKey struct {
	name    string
	version int
}

// NewServer returns a server over the store.
func NewServer(s *Store) *Server {
	return &Server{store: s, cache: make(map[modelKey]ml.Model)}
}

// Handler returns the HTTP handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /models", s.handleModels)
	mux.HandleFunc("POST /predict", s.handlePredict)
	return mux
}

// modelInfo is one row of the /models listing.
type modelInfo struct {
	Name     string  `json:"name"`
	Version  int     `json:"version"`
	Pipeline string  `json:"pipeline"`
	Quality  float64 `json:"quality"`
	Epsilon  float64 `json:"epsilon_spent"`
}

func (s *Server) handleModels(w http.ResponseWriter, _ *http.Request) {
	var out []modelInfo
	for _, name := range s.store.List() {
		if b, ok := s.store.Latest(name); ok {
			out = append(out, modelInfo{
				Name: b.Name, Version: b.Version,
				Pipeline: b.Provenance.Pipeline,
				Quality:  b.Provenance.Quality,
				Epsilon:  b.Provenance.Spent.Epsilon,
			})
		}
	}
	writeJSON(w, http.StatusOK, out)
}

// predictRequest is the body of POST /predict.
type predictRequest struct {
	Features []float64 `json:"features"`
}

// predictResponse is the reply.
type predictResponse struct {
	Model      string  `json:"model"`
	Version    int     `json:"version"`
	Prediction float64 `json:"prediction"`
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("model")
	if name == "" {
		httpError(w, http.StatusBadRequest, "missing ?model=")
		return
	}
	bundle, ok := s.store.Latest(name)
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Sprintf("unknown model %q", name))
		return
	}
	var req predictRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "invalid JSON body: "+err.Error())
		return
	}
	// Validate the feature vector against the bundle before Predict: a
	// wrong-length vector would otherwise index out of range and kill
	// the handler goroutine.
	if want := bundle.Model.InputDim(); want > 0 && len(req.Features) != want {
		httpError(w, http.StatusBadRequest, fmt.Sprintf(
			"model %q expects %d features, got %d", name, want, len(req.Features)))
		return
	}
	model, err := s.model(bundle)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, predictResponse{
		Model: bundle.Name, Version: bundle.Version,
		Prediction: model.Predict(req.Features),
	})
}

// model returns the cached instantiation of a bundle, evicting the
// name's older versions on a fresh instantiation: /predict always serves
// Latest, so once a newer version is live its predecessors can never be
// requested again and keeping them would leak a model per publish.
func (s *Server) model(b *Bundle) (ml.Model, error) {
	key := modelKey{name: b.Name, version: b.Version}
	s.mu.Lock()
	defer s.mu.Unlock()
	if m, ok := s.cache[key]; ok {
		return m, nil
	}
	m, err := b.Model.Instantiate()
	if err != nil {
		return nil, err
	}
	// A request that read Latest before a concurrent publish may arrive
	// here with a superseded bundle; serve it without caching so the
	// one-live-model-per-name bound survives publish/predict races.
	for k := range s.cache {
		if k.name == b.Name && k.version > b.Version {
			return m, nil
		}
	}
	for k := range s.cache {
		if k.name == b.Name && k.version < b.Version {
			delete(s.cache, k)
		}
	}
	s.cache[key] = m
	return m, nil
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}
