package store

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/data"
	"repro/internal/metrics"
	"repro/internal/ml"
)

// maxBatchRows bounds one /predict/batch request so a single client
// cannot pin a handler goroutine (and its response buffer) arbitrarily
// long.
const maxBatchRows = 10_000

// Request-body byte limits, enforced with http.MaxBytesReader *before*
// JSON decode: the row-count check alone runs only after the whole body
// has been materialized, which would let one request allocate
// arbitrarily much. 32 MiB comfortably fits maxBatchRows rows at a few
// hundred features.
const (
	maxBatchBodyBytes   = 32 << 20
	maxPredictBodyBytes = 1 << 20
)

// Server is the Serving Infrastructure of Fig. 1: it loads bundles from
// the store and answers prediction requests over HTTP. It caches the
// instantiated model per (name, version) — bundles are immutable — and
// evicts a name's superseded versions when a newer one is instantiated,
// so a long-running server's cache stays bounded at one live model per
// name however many versions the pipelines publish.
//
// Endpoints:
//
//	GET  /models                        → JSON list of {name, version, pipeline}
//	GET  /models/{name}/provenance      → audit view: blocks, budget, decision
//	POST /predict?model=<name>          → {"prediction": …} for {"features": […]}
//	POST /predict/batch?model=<name>    → positional predictions for {"rows": [[…], …]}
//	GET  /features?model=<name>&key=<k> → a released aggregate table (&index=<i>
//	                                      for a single-value serving-time join)
//
// Every endpoint taking ?model= also accepts ?version= to pin an older
// release; the default is the latest version.
type Server struct {
	store *Store
	mu    sync.Mutex
	cache map[modelKey]*cachedModel
	enc   encodedCache
	// met carries the optional serving-path instrumentation. The zero
	// value (all-nil handles) is fully functional: every metric method
	// is nil-receiver safe, so an uninstrumented server pays only nil
	// checks. Set once via Instrument before serving starts.
	met serverMetrics
}

// serverMetrics are the serving-path handles, pre-resolved at
// Instrument time so the hot paths never do registry lookups.
type serverMetrics struct {
	encHits    *metrics.Counter
	encMisses  *metrics.Counter
	predictSec *metrics.Histogram
	batchSec   *metrics.Histogram
	batchRows  *metrics.Histogram
}

// Instrument registers the server's serving metrics in reg and
// resolves the hot-path handles. Call once, before the handler starts
// serving; the handles are written without synchronization.
func (s *Server) Instrument(reg *metrics.Registry) {
	s.met = serverMetrics{
		encHits: reg.Counter("sage_store_encode_cache_hits_total",
			"Immutable-read responses served from the encode cache."),
		encMisses: reg.Counter("sage_store_encode_cache_misses_total",
			"Immutable-read responses that had to be built and encoded."),
		predictSec: reg.Histogram("sage_store_predict_seconds",
			"Latency of POST /predict.", metrics.LatencyBuckets()),
		batchSec: reg.Histogram("sage_store_predict_batch_seconds",
			"Latency of POST /predict/batch.", metrics.LatencyBuckets()),
		batchRows: reg.Histogram("sage_store_predict_batch_rows",
			"Rows per /predict/batch request.", metrics.SizeBuckets()),
	}
	reg.GaugeFunc("sage_store_models",
		"Models currently published in the store.",
		func() float64 { return float64(len(s.store.List())) })
	reg.GaugeFunc("sage_store_generation",
		"Store publish generation (bumps on every publish).",
		func() float64 { return float64(s.store.Generation()) })
}

// encodedCache holds pre-encoded JSON response bodies for the immutable
// read endpoints (model list, provenance, whole feature tables). Store
// contents only change on publish, so a response encoded at store
// generation g can be replayed byte-for-byte until the generation
// advances; the first request after a publish flushes the cache
// wholesale. This removes the per-request encode (and its allocations)
// from the hottest read paths — the connection-level fast path replicas
// rely on when every node answers the same provenance audit queries.
type encodedCache struct {
	mu      sync.Mutex
	gen     uint64
	entries map[string][]byte
}

// preEncoded returns the cached response body for key, building and
// encoding it with build() on miss.
func (s *Server) preEncoded(key string, build func() any) ([]byte, error) {
	gen := s.store.Generation()
	s.enc.mu.Lock()
	if s.enc.gen != gen || s.enc.entries == nil {
		s.enc.gen = gen
		s.enc.entries = make(map[string][]byte)
	}
	if raw, ok := s.enc.entries[key]; ok {
		s.enc.mu.Unlock()
		s.met.encHits.Inc()
		return raw, nil
	}
	s.enc.mu.Unlock()
	s.met.encMisses.Inc()

	// Build and encode outside the lock; a concurrent publish is
	// harmless (the entry is only stored while the generation still
	// matches, and the next request flushes it anyway).
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(build()); err != nil {
		return nil, err
	}
	raw := buf.Bytes()
	s.enc.mu.Lock()
	if s.enc.gen == gen && s.enc.entries != nil {
		s.enc.entries[key] = raw
	}
	s.enc.mu.Unlock()
	return raw, nil
}

// writePreEncoded serves one immutable endpoint through the encoded
// cache.
func (s *Server) writePreEncoded(w http.ResponseWriter, key string, build func() any) {
	raw, err := s.preEncoded(key, build)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(raw)
}

// modelKey identifies one cached model instantiation.
type modelKey struct {
	name    string
	version int
}

// cachedModel is one live model. Scratch-sharing models
// (ml.SerialPredictor) get one of two concurrency strategies: models
// that can clone their scratch (ml.ScratchCloner, the MLP) carry a pool
// of serving clones so concurrent connections predict in parallel on
// shared parameters; the rest fall back to a per-instance lock.
// Stateless models carry neither and run concurrently as-is.
type cachedModel struct {
	model     ml.Model
	predictMu *sync.Mutex
	clones    *sync.Pool
}

// acquire returns a model safe to predict with on this goroutine and a
// release function (both nil-safe no-ops for stateless models).
func (c *cachedModel) acquire() (ml.Model, func()) {
	if c.clones != nil {
		m := c.clones.Get().(ml.Model)
		return m, func() { c.clones.Put(m) }
	}
	if c.predictMu != nil {
		c.predictMu.Lock()
		return c.model, c.predictMu.Unlock
	}
	return c.model, func() {}
}

// predict evaluates one row.
func (c *cachedModel) predict(x []float64) float64 {
	m, release := c.acquire()
	defer release()
	return m.Predict(x)
}

// predictBatch evaluates all rows through the model's batched fast
// path, acquiring the clone (or the serialization lock) once for the
// whole batch — this is the amortization /predict/batch exists for.
func (c *cachedModel) predictBatch(rows [][]float64, out []float64) {
	m, release := c.acquire()
	defer release()
	ml.PredictBatch(m, rows, out)
}

// NewServer returns a server over the store.
func NewServer(s *Store) *Server {
	return &Server{store: s, cache: make(map[modelKey]*cachedModel)}
}

// Handler returns the HTTP handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /models", s.handleModels)
	mux.HandleFunc("GET /models/{name}/provenance", s.handleProvenance)
	mux.HandleFunc("POST /predict", s.handlePredict)
	mux.HandleFunc("POST /predict/batch", s.handlePredictBatch)
	mux.HandleFunc("GET /features", s.handleFeatures)
	return mux
}

// modelInfo is one row of the /models listing.
type modelInfo struct {
	Name     string  `json:"name"`
	Version  int     `json:"version"`
	Pipeline string  `json:"pipeline"`
	Quality  float64 `json:"quality"`
	Epsilon  float64 `json:"epsilon_spent"`
}

func (s *Server) handleModels(w http.ResponseWriter, _ *http.Request) {
	s.writePreEncoded(w, "models", func() any {
		names := s.store.List()
		// Non-nil so an empty store serializes as [], not JSON null.
		out := make([]modelInfo, 0, len(names))
		for _, name := range names {
			if b, ok := s.store.Latest(name); ok {
				out = append(out, modelInfo{
					Name: b.Name, Version: b.Version,
					Pipeline: b.Provenance.Pipeline,
					Quality:  b.Provenance.Quality,
					Epsilon:  b.Provenance.Spent.Epsilon,
				})
			}
		}
		return out
	})
}

// provenanceResponse is the audit view of one released bundle: enough to
// reconcile the release against the stream's privacy ledger.
type provenanceResponse struct {
	Model    string         `json:"model"`
	Version  int            `json:"version"`
	Pipeline string         `json:"pipeline"`
	Epsilon  float64        `json:"epsilon_spent"`
	Delta    float64        `json:"delta_spent"`
	Blocks   []data.BlockID `json:"blocks"`
	Decision string         `json:"decision"`
	Quality  float64        `json:"quality"`
	// TotalEpsilon sums the spend across every published version of this
	// name — the auditor's per-model-line tally (Store.TotalSpent).
	TotalEpsilon float64 `json:"total_epsilon_spent"`
}

func (s *Server) handleProvenance(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	bundle, ok := s.resolve(name, r.URL.Query().Get("version"), w)
	if !ok {
		return
	}
	// Cached by (name, version): the bundle itself is immutable, and the
	// one mutable field (TotalEpsilon, which grows as later versions of
	// the name publish) is covered by the generation flush.
	s.writePreEncoded(w, "prov/"+bundle.Name+"/"+strconv.Itoa(bundle.Version), func() any {
		blocks := bundle.Provenance.Blocks
		if blocks == nil {
			blocks = []data.BlockID{}
		}
		return provenanceResponse{
			Model:        bundle.Name,
			Version:      bundle.Version,
			Pipeline:     bundle.Provenance.Pipeline,
			Epsilon:      bundle.Provenance.Spent.Epsilon,
			Delta:        bundle.Provenance.Spent.Delta,
			Blocks:       blocks,
			Decision:     bundle.Provenance.Decision,
			Quality:      bundle.Provenance.Quality,
			TotalEpsilon: s.store.TotalSpent(bundle.Name).Epsilon,
		}
	})
}

// resolve looks up a bundle by name and optional version string,
// writing the HTTP error itself when the lookup fails.
func (s *Server) resolve(name, version string, w http.ResponseWriter) (*Bundle, bool) {
	if name == "" {
		httpError(w, http.StatusBadRequest, "missing model name")
		return nil, false
	}
	if version == "" {
		bundle, ok := s.store.Latest(name)
		if !ok {
			httpError(w, http.StatusNotFound, fmt.Sprintf("unknown model %q", name))
			return nil, false
		}
		return bundle, true
	}
	v, err := strconv.Atoi(version)
	if err != nil {
		httpError(w, http.StatusBadRequest, "invalid version: "+err.Error())
		return nil, false
	}
	bundle, ok := s.store.Get(name, v)
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Sprintf("unknown version %d of model %q", v, name))
		return nil, false
	}
	return bundle, true
}

// predictRequest is the body of POST /predict.
type predictRequest struct {
	Features []float64 `json:"features"`
}

// predictResponse is the reply.
type predictResponse struct {
	Model      string  `json:"model"`
	Version    int     `json:"version"`
	Prediction float64 `json:"prediction"`
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	defer s.met.predictSec.ObserveSince(time.Now())
	q := r.URL.Query()
	bundle, ok := s.resolve(q.Get("model"), q.Get("version"), w)
	if !ok {
		return
	}
	var req predictRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxPredictBodyBytes)).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "invalid JSON body: "+err.Error())
		return
	}
	// Validate the feature vector against the bundle before Predict: a
	// wrong-length vector would otherwise index out of range and kill
	// the handler goroutine.
	if want := bundle.Model.InputDim(); want > 0 && len(req.Features) != want {
		httpError(w, http.StatusBadRequest, fmt.Sprintf(
			"model %q expects %d features, got %d", bundle.Name, want, len(req.Features)))
		return
	}
	model, err := s.model(bundle)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, predictResponse{
		Model: bundle.Name, Version: bundle.Version,
		Prediction: model.predict(req.Features),
	})
}

// batchRequest is the body of POST /predict/batch.
type batchRequest struct {
	Rows [][]float64 `json:"rows"`
}

// batchScratch is the pooled per-request working set of the batch path:
// decoded row buffers, the valid/position split, the prediction outputs
// (the response's pointers alias out directly), and the response encode
// buffer. One warm /predict/batch request touches none of these
// allocations — everything is reused from the pool, sized by the
// largest batch the connection has seen.
type batchScratch struct {
	rows      [][]float64
	valid     [][]float64
	positions []int
	out       []float64
	preds     []*float64
	buf       bytes.Buffer
}

var batchPool = sync.Pool{New: func() any { return new(batchScratch) }}

// errTooManyRows aborts the streaming decode as soon as the row limit
// is crossed, without materializing the rest of the body.
var errTooManyRows = fmt.Errorf("batch exceeds the %d-row limit", maxBatchRows)

// decodeBatchRows streams the request body's rows array through dec,
// reusing the scratch row buffers from previous requests. Unlike a
// one-shot unmarshal of batchRequest, this never holds more than one
// row of undecoded JSON beyond the rows themselves, and it stops
// reading the moment the row limit is exceeded — combined with the
// http.MaxBytesReader wrapping, a hostile large body costs at most
// maxBatchBodyBytes of reading and maxBatchRows of decoding.
func decodeBatchRows(dec *json.Decoder, scratch [][]float64) ([][]float64, error) {
	tok, err := dec.Token()
	if err != nil {
		return scratch, err
	}
	if d, ok := tok.(json.Delim); !ok || d != '{' {
		return scratch, errors.New("request body must be a JSON object")
	}
	rows := scratch[:0]
	for dec.More() {
		keyTok, err := dec.Token()
		if err != nil {
			return rows, err
		}
		if key, _ := keyTok.(string); key != "rows" {
			// Skip unknown fields for forward compatibility.
			var skip json.RawMessage
			if err := dec.Decode(&skip); err != nil {
				return rows, err
			}
			continue
		}
		tok, err := dec.Token()
		if err != nil {
			return rows, err
		}
		if d, ok := tok.(json.Delim); !ok || d != '[' {
			return rows, errors.New(`"rows" must be an array of feature vectors`)
		}
		for dec.More() {
			if len(rows) >= maxBatchRows {
				return rows, errTooManyRows
			}
			var row []float64
			if len(rows) < len(scratch) {
				row = scratch[len(rows)][:0] // reuse the pooled backing array
			}
			if err := dec.Decode(&row); err != nil {
				return rows, err
			}
			rows = append(rows, row)
		}
		if _, err := dec.Token(); err != nil { // closing ]
			return rows, err
		}
	}
	if _, err := dec.Token(); err != nil { // closing }
		return rows, err
	}
	return rows, nil
}

// grow returns s resized to n entries, reusing its backing array when
// the capacity allows.
func grow[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

// rowError reports one invalid row by its position in the request.
type rowError struct {
	Row   int    `json:"row"`
	Error string `json:"error"`
}

// batchResponse is the reply: predictions are positional with one entry
// per request row; invalid rows carry null there and an entry in errors.
type batchResponse struct {
	Model       string     `json:"model"`
	Version     int        `json:"version"`
	Predictions []*float64 `json:"predictions"`
	Errors      []rowError `json:"errors,omitempty"`
}

// handlePredictBatch runs N rows through one cached model instantiation:
// one store lookup, one cache lookup, and (for scratch-sharing models)
// one lock acquisition are amortized over the whole batch, against N of
// each for N singleton /predict calls. Malformed rows do not fail the
// batch — they are reported positionally so the caller can join
// predictions back to its inputs by index.
func (s *Server) handlePredictBatch(w http.ResponseWriter, r *http.Request) {
	defer s.met.batchSec.ObserveSince(time.Now())
	q := r.URL.Query()
	bundle, ok := s.resolve(q.Get("model"), q.Get("version"), w)
	if !ok {
		return
	}
	// All per-request buffers come from the pool and go back when the
	// handler returns — by then the response (whose prediction pointers
	// alias sc.out) has been fully encoded into sc.buf and written.
	sc := batchPool.Get().(*batchScratch)
	defer batchPool.Put(sc)

	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBatchBodyBytes))
	rows, err := decodeBatchRows(dec, sc.rows)
	if len(rows) > len(sc.rows) {
		sc.rows = rows // keep grown row buffers for the next request
	}
	if err != nil {
		httpError(w, http.StatusBadRequest, "invalid JSON body: "+err.Error())
		return
	}
	if len(rows) == 0 {
		httpError(w, http.StatusBadRequest, "empty batch: rows must contain at least one feature vector")
		return
	}
	s.met.batchRows.Observe(float64(len(rows)))
	model, err := s.model(bundle)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}

	sc.preds = grow(sc.preds, len(rows))
	for i := range sc.preds {
		sc.preds[i] = nil
	}
	resp := batchResponse{
		Model: bundle.Name, Version: bundle.Version,
		Predictions: sc.preds,
	}
	// Split valid from malformed rows, keeping each valid row's original
	// position so predictions land back where the caller expects them.
	want := bundle.Model.InputDim()
	sc.valid = sc.valid[:0]
	sc.positions = sc.positions[:0]
	for i, row := range rows {
		if want > 0 && len(row) != want {
			resp.Errors = append(resp.Errors, rowError{
				Row:   i,
				Error: fmt.Sprintf("model %q expects %d features, got %d", bundle.Name, want, len(row)),
			})
			continue
		}
		sc.valid = append(sc.valid, row)
		sc.positions = append(sc.positions, i)
	}
	if len(sc.valid) > 0 {
		sc.out = grow(sc.out, len(sc.valid))
		model.predictBatch(sc.valid, sc.out)
		for j, i := range sc.positions {
			resp.Predictions[i] = &sc.out[j]
		}
	}
	sc.buf.Reset()
	if err := json.NewEncoder(&sc.buf).Encode(resp); err != nil {
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(sc.buf.Bytes())
}

// featuresResponse is the reply to GET /features. Exactly one of Keys,
// Values, Value is populated depending on the query shape.
type featuresResponse struct {
	Model   string `json:"model"`
	Version int    `json:"version"`
	// Keys lists the bundle's aggregate tables (no key given).
	Keys []string `json:"keys,omitempty"`
	// Key and Values return one whole table, e.g. Listing 1's per-hour
	// speed join.
	Key    string    `json:"key,omitempty"`
	Values []float64 `json:"values,omitempty"`
	// Index and Value return a single entry for serving-time joins that
	// need one group's aggregate (e.g. the current hour's speed).
	Index *int     `json:"index,omitempty"`
	Value *float64 `json:"value,omitempty"`
}

// handleFeatures serves the released aggregate feature tables a bundle
// carries (§2.1: the model ships "bundled with its feature
// transformation operators"). Serving-time code performs Listing 1-style
// joins against these tables: ?key=<table> returns the whole table,
// &index=<i> a single value.
func (s *Server) handleFeatures(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	bundle, ok := s.resolve(q.Get("model"), q.Get("version"), w)
	if !ok {
		return
	}
	resp := featuresResponse{Model: bundle.Name, Version: bundle.Version}
	key := q.Get("key")
	if key == "" {
		if q.Has("index") {
			httpError(w, http.StatusBadRequest, "?index= requires ?key=")
			return
		}
		resp.Keys = bundle.FeatureKeys()
		writeJSON(w, http.StatusOK, resp)
		return
	}
	table, ok := bundle.Features[key]
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Sprintf(
			"model %q has no feature table %q (available: %v)", bundle.Name, key, bundle.FeatureKeys()))
		return
	}
	resp.Key = key
	if !q.Has("index") {
		// Whole-table responses are the big immutable payloads (Listing
		// 1's 24-entry table is the small case; released aggregates can
		// be arbitrarily wide), so they are served pre-encoded. Bundles
		// are immutable once published (Publish deep-copies), so handing
		// the slice to the JSON encoder is safe.
		s.writePreEncoded(w, "feat/"+bundle.Name+"/"+strconv.Itoa(bundle.Version)+"/"+key, func() any {
			resp.Values = table
			return resp
		})
		return
	}
	idx, err := strconv.Atoi(q.Get("index"))
	if err != nil {
		httpError(w, http.StatusBadRequest, "invalid index: "+err.Error())
		return
	}
	if idx < 0 || idx >= len(table) {
		httpError(w, http.StatusBadRequest, fmt.Sprintf(
			"index %d out of range for table %q of length %d", idx, key, len(table)))
		return
	}
	resp.Index = &idx
	resp.Value = &table[idx]
	writeJSON(w, http.StatusOK, resp)
}

// model returns the cached instantiation of a bundle, evicting the
// name's older versions on a fresh instantiation: prediction always
// serves Latest, so once a newer version is live its predecessors can
// never be requested again and keeping them would leak a model per
// publish.
func (s *Server) model(b *Bundle) (*cachedModel, error) {
	key := modelKey{name: b.Name, version: b.Version}
	s.mu.Lock()
	defer s.mu.Unlock()
	if m, ok := s.cache[key]; ok {
		return m, nil
	}
	m, err := b.Model.Instantiate()
	if err != nil {
		return nil, err
	}
	cm := &cachedModel{model: m}
	if cloner, ok := m.(ml.ScratchCloner); ok {
		cm.clones = &sync.Pool{New: func() any { return cloner.CloneForServing() }}
	} else if _, serial := m.(ml.SerialPredictor); serial {
		cm.predictMu = &sync.Mutex{}
	}
	// A request that read Latest before a concurrent publish may arrive
	// here with a superseded bundle; serve it without caching so the
	// one-live-model-per-name bound survives publish/predict races.
	for k := range s.cache {
		if k.name == b.Name && k.version > b.Version {
			return cm, nil
		}
	}
	for k := range s.cache {
		if k.name == b.Name && k.version < b.Version {
			delete(s.cache, k)
		}
	}
	s.cache[key] = cm
	return cm, nil
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}
