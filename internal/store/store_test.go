package store

import (
	"bytes"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"repro/internal/data"
	"repro/internal/ml"
	"repro/internal/privacy"
	"repro/internal/rng"
)

func TestSerializeRoundTrip(t *testing.T) {
	r := rng.New(1)
	x := []float64{0.3, -0.7, 1.1}
	models := []ml.Model{
		&ml.LinearModel{Weights: []float64{1, 2, 3}, Bias: 0.5},
		ml.ConstantModel{Value: 0.25},
		func() ml.Model {
			m := ml.NewLogisticRegression(3)
			for i := range m.Params() {
				m.Params()[i] = float64(i) * 0.1
			}
			return m
		}(),
		func() ml.Model {
			m := ml.NewSGDLinearRegression(3)
			m.Params()[0] = 2
			return m
		}(),
		ml.NewMLP(ml.Regression, 3, []int{5, 4}, r),
		ml.NewMLP(ml.BinaryClassification, 3, []int{6}, r),
	}
	for i, m := range models {
		spec, err := Serialize(m)
		if err != nil {
			t.Fatalf("model %d: %v", i, err)
		}
		back, err := spec.Instantiate()
		if err != nil {
			t.Fatalf("model %d: %v", i, err)
		}
		want, got := m.Predict(x), back.Predict(x)
		if math.Abs(want-got) > 1e-12 {
			t.Errorf("model %d (%s): prediction %v != %v after round trip", i, spec.Kind, got, want)
		}
	}
}

func TestSerializeUnknownModel(t *testing.T) {
	type weird struct{ ml.Model }
	if _, err := Serialize(weird{}); err == nil {
		t.Error("unknown model type should error")
	}
	if _, err := (ModelSpec{Kind: "nope"}).Instantiate(); err == nil {
		t.Error("unknown kind should error")
	}
	if _, err := (ModelSpec{Kind: "logistic", Dim: 3, Params: []float64{1}}).Instantiate(); err == nil {
		t.Error("length mismatch should error")
	}
}

func TestBundleEncodeDecode(t *testing.T) {
	spec, _ := Serialize(&ml.LinearModel{Weights: []float64{1, -1}, Bias: 2})
	b := &Bundle{
		Name:  "taxi-lr",
		Model: spec,
		Features: map[string][]float64{
			"hour_speed": {30, 29, 28},
		},
		Provenance: Provenance{
			Pipeline: "taxi-lr",
			Spent:    privacy.MustBudget(0.5, 1e-8),
			Blocks:   []data.BlockID{1, 2, 3},
			Decision: "ACCEPT",
			Quality:  0.004,
		},
	}
	raw, err := b.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeBundle(raw)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != b.Name || back.Provenance.Spent != b.Provenance.Spent {
		t.Errorf("round trip lost fields: %+v", back)
	}
	if len(back.Features["hour_speed"]) != 3 {
		t.Error("features lost")
	}
	if _, err := DecodeBundle([]byte("garbage")); err == nil {
		t.Error("garbage should fail to decode")
	}
}

func TestStoreVersioning(t *testing.T) {
	s := New()
	spec, _ := Serialize(ml.ConstantModel{Value: 1})
	if v := s.Publish(Bundle{Name: "m", Model: spec}); v != 1 {
		t.Errorf("first version = %d", v)
	}
	if v := s.Publish(Bundle{Name: "m", Model: spec}); v != 2 {
		t.Errorf("second version = %d", v)
	}
	latest, ok := s.Latest("m")
	if !ok || latest.Version != 2 {
		t.Errorf("Latest = %+v", latest)
	}
	v1, ok := s.Get("m", 1)
	if !ok || v1.Version != 1 {
		t.Errorf("Get(1) = %+v", v1)
	}
	if _, ok := s.Get("m", 3); ok {
		t.Error("Get(3) should miss")
	}
	if _, ok := s.Latest("absent"); ok {
		t.Error("Latest(absent) should miss")
	}
	if got := s.List(); len(got) != 1 || got[0] != "m" {
		t.Errorf("List = %v", got)
	}
}

func TestStoreTotalSpent(t *testing.T) {
	s := New()
	spec, _ := Serialize(ml.ConstantModel{Value: 1})
	s.Publish(Bundle{Name: "m", Model: spec, Provenance: Provenance{Spent: privacy.MustBudget(0.3, 0)}})
	s.Publish(Bundle{Name: "m", Model: spec, Provenance: Provenance{Spent: privacy.MustBudget(0.5, 1e-8)}})
	got := s.TotalSpent("m")
	if math.Abs(got.Epsilon-0.8) > 1e-12 || got.Delta != 1e-8 {
		t.Errorf("TotalSpent = %v", got)
	}
}

// Regression: Publish used to store the caller's Bundle value with its
// Features map, Weights/Params slices, and provenance Blocks shared. A
// caller mutating those after publishing silently rewrote a "released"
// bundle — exactly what the §2.2 threat model says must be impossible.
func TestPublishIsolatedFromCallerMutation(t *testing.T) {
	s := New()
	weights := []float64{1, 2}
	hourSpeed := []float64{30, 29, 28}
	blocks := []data.BlockID{1, 2}
	b := Bundle{
		Name:     "m",
		Model:    ModelSpec{Kind: "linear", Weights: weights, Bias: 1},
		Features: map[string][]float64{"hour_speed": hourSpeed},
		Provenance: Provenance{
			Pipeline: "demo", Blocks: blocks,
			Spent: privacy.MustBudget(0.5, 0), Decision: "ACCEPT",
		},
	}
	s.Publish(b)

	// The caller now mutates everything it still holds references to.
	weights[0] = 999
	hourSpeed[0] = -1
	blocks[0] = 99
	b.Features["injected"] = []float64{666}
	b.Model.Weights[1] = 999

	got, ok := s.Latest("m")
	if !ok {
		t.Fatal("bundle missing")
	}
	if got.Model.Weights[0] != 1 || got.Model.Weights[1] != 2 {
		t.Errorf("published weights mutated: %v", got.Model.Weights)
	}
	if got.Features["hour_speed"][0] != 30 {
		t.Errorf("published feature table mutated: %v", got.Features["hour_speed"])
	}
	if _, leaked := got.Features["injected"]; leaked {
		t.Error("caller injected a feature table into a released bundle")
	}
	if got.Provenance.Blocks[0] != 1 {
		t.Errorf("published provenance blocks mutated: %v", got.Provenance.Blocks)
	}

	// Params-based models are isolated too.
	params := []float64{1, 2, 3, 4}
	s.Publish(Bundle{Name: "p", Model: ModelSpec{Kind: "logistic", Dim: 3, Params: params}})
	params[0] = 999
	got, _ = s.Latest("p")
	if got.Model.Params[0] != 1 {
		t.Errorf("published params mutated: %v", got.Model.Params)
	}
}

func TestStoreConcurrentPublish(t *testing.T) {
	s := New()
	spec, _ := Serialize(ml.ConstantModel{Value: 1})
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				s.Publish(Bundle{Name: "m", Model: spec})
				_, _ = s.Latest("m")
			}
		}()
	}
	wg.Wait()
	latest, _ := s.Latest("m")
	if latest.Version != 800 {
		t.Errorf("final version = %d, want 800", latest.Version)
	}
}

func TestServingEndpoints(t *testing.T) {
	s := New()
	spec, _ := Serialize(&ml.LinearModel{Weights: []float64{2}, Bias: 1})
	s.Publish(Bundle{
		Name: "double-plus-one", Model: spec,
		Provenance: Provenance{Pipeline: "demo", Quality: 0.9, Spent: privacy.MustBudget(0.25, 0)},
	})
	srv := httptest.NewServer(NewServer(s).Handler())
	defer srv.Close()

	// /models lists the bundle.
	resp, err := http.Get(srv.URL + "/models")
	if err != nil {
		t.Fatal(err)
	}
	var infos []map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&infos); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(infos) != 1 || infos[0]["name"] != "double-plus-one" {
		t.Fatalf("/models = %v", infos)
	}

	// /predict evaluates the model.
	body := bytes.NewBufferString(`{"features":[3]}`)
	resp, err = http.Post(srv.URL+"/predict?model=double-plus-one", "application/json", body)
	if err != nil {
		t.Fatal(err)
	}
	var pred map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&pred); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := pred["prediction"].(float64); math.Abs(got-7) > 1e-12 {
		t.Errorf("prediction = %v, want 7", got)
	}

	// Error paths.
	for _, tc := range []struct {
		url, payload string
		wantCode     int
	}{
		{"/predict", `{"features":[1]}`, http.StatusBadRequest},
		{"/predict?model=ghost", `{"features":[1]}`, http.StatusNotFound},
		{"/predict?model=double-plus-one", `{invalid`, http.StatusBadRequest},
	} {
		resp, err := http.Post(srv.URL+tc.url, "application/json", bytes.NewBufferString(tc.payload))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.wantCode {
			t.Errorf("%s: code %d, want %d", tc.url, resp.StatusCode, tc.wantCode)
		}
	}
}

func TestServingRejectsWrongFeatureDimension(t *testing.T) {
	s := New()
	linSpec, _ := Serialize(&ml.LinearModel{Weights: []float64{1, 2}, Bias: 0})
	s.Publish(Bundle{Name: "lin", Model: linSpec})
	logSpec, _ := Serialize(ml.NewLogisticRegression(3))
	s.Publish(Bundle{Name: "log", Model: logSpec})
	srv := httptest.NewServer(NewServer(s).Handler())
	defer srv.Close()

	for _, tc := range []struct {
		model, payload string
		wantCode       int
	}{
		{"lin", `{"features":[1,2]}`, http.StatusOK},
		{"lin", `{"features":[1,2,3]}`, http.StatusBadRequest}, // too long: used to panic the handler
		{"lin", `{"features":[1]}`, http.StatusBadRequest},     // too short
		{"lin", `{"features":[]}`, http.StatusBadRequest},
		{"lin", `{}`, http.StatusBadRequest}, // features absent entirely
		{"log", `{"features":[1,2,3]}`, http.StatusOK},
		{"log", `{"features":[1,2,3,4]}`, http.StatusBadRequest},
	} {
		resp, err := http.Post(srv.URL+"/predict?model="+tc.model, "application/json",
			bytes.NewBufferString(tc.payload))
		if err != nil {
			t.Fatal(err)
		}
		var body map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatalf("%s %s: undecodable response: %v", tc.model, tc.payload, err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.wantCode {
			t.Errorf("%s %s: code %d, want %d (body %v)", tc.model, tc.payload, resp.StatusCode, tc.wantCode, body)
		}
		if msg, _ := body["error"].(string); tc.wantCode == http.StatusBadRequest && msg == "" {
			t.Errorf("%s %s: 400 without error message", tc.model, tc.payload)
		}
	}

	// The server must still answer after the malformed requests (the
	// old behavior killed the handler goroutine mid-response).
	resp, err := http.Post(srv.URL+"/predict?model=lin", "application/json",
		bytes.NewBufferString(`{"features":[3,4]}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("server unhealthy after bad requests: code %d", resp.StatusCode)
	}
}

func TestServingEvictsSupersededVersions(t *testing.T) {
	s := New()
	server := NewServer(s)
	srv := httptest.NewServer(server.Handler())
	defer srv.Close()

	predict := func() {
		resp, err := http.Post(srv.URL+"/predict?model=m", "application/json",
			bytes.NewBufferString(`{"features":[1]}`))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("predict code %d", resp.StatusCode)
		}
	}
	cached := func() []modelKey {
		server.mu.Lock()
		defer server.mu.Unlock()
		keys := make([]modelKey, 0, len(server.cache))
		for k := range server.cache {
			keys = append(keys, k)
		}
		return keys
	}

	for v := 1; v <= 25; v++ {
		spec, _ := Serialize(&ml.LinearModel{Weights: []float64{float64(v)}, Bias: 0})
		s.Publish(Bundle{Name: "m", Model: spec})
		predict()
	}
	keys := cached()
	if len(keys) != 1 || keys[0] != (modelKey{name: "m", version: 25}) {
		t.Errorf("cache after 25 versions = %v, want only m@25", keys)
	}

	// Other names are untouched by eviction.
	spec, _ := Serialize(ml.ConstantModel{Value: 1})
	s.Publish(Bundle{Name: "other", Model: spec})
	resp, err := http.Post(srv.URL+"/predict?model=other", "application/json",
		bytes.NewBufferString(`{"features":[]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := cached(); len(got) != 2 {
		t.Errorf("cache with two names = %v, want m@25 and other@1", got)
	}
}

func TestServingStaleVersionNotReCached(t *testing.T) {
	// A request that loaded Latest just before a publish may instantiate
	// the superseded bundle after the newer one is already cached; it
	// must be served without re-entering the cache.
	s := New()
	server := NewServer(s)
	for v := 1; v <= 2; v++ {
		spec, _ := Serialize(&ml.LinearModel{Weights: []float64{float64(v)}, Bias: 0})
		s.Publish(Bundle{Name: "m", Model: spec})
	}
	v1, _ := s.Get("m", 1)
	v2, _ := s.Get("m", 2)
	if _, err := server.model(v2); err != nil {
		t.Fatal(err)
	}
	m1, err := server.model(v1) // stale request arrives after v2 is live
	if err != nil {
		t.Fatal(err)
	}
	if got := m1.predict([]float64{1}); got != 1 {
		t.Errorf("stale bundle served wrong model: predict = %v, want 1", got)
	}
	server.mu.Lock()
	_, v1cached := server.cache[modelKey{name: "m", version: 1}]
	_, v2cached := server.cache[modelKey{name: "m", version: 2}]
	n := len(server.cache)
	server.mu.Unlock()
	if v1cached || !v2cached || n != 1 {
		t.Errorf("cache holds v1=%v v2=%v (n=%d), want only the live v2", v1cached, v2cached, n)
	}
}

func TestServingCachesModels(t *testing.T) {
	s := New()
	spec, _ := Serialize(&ml.LinearModel{Weights: []float64{1}, Bias: 0})
	s.Publish(Bundle{Name: "m", Model: spec})
	server := NewServer(s)
	b, _ := s.Latest("m")
	m1, err := server.model(b)
	if err != nil {
		t.Fatal(err)
	}
	m2, _ := server.model(b)
	if m1 != m2 {
		t.Error("second lookup should hit the cache")
	}
}
