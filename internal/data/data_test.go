package data

import (
	"math"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func mkExample(t, u int64, label float64) Example {
	return Example{Features: []float64{1, 2}, Label: label, Time: t, UserID: u}
}

func TestDatasetBasics(t *testing.T) {
	d := &Dataset{}
	if d.Len() != 0 || d.FeatureDim() != 0 || d.MeanLabel() != 0 {
		t.Error("empty dataset invariants broken")
	}
	d.Append(mkExample(0, 0, 1), mkExample(1, 1, 3))
	if d.Len() != 2 || d.FeatureDim() != 2 {
		t.Errorf("Len=%d FeatureDim=%d", d.Len(), d.FeatureDim())
	}
	if d.MeanLabel() != 2 {
		t.Errorf("MeanLabel = %v, want 2", d.MeanLabel())
	}
	labels := d.Labels()
	if len(labels) != 2 || labels[0] != 1 || labels[1] != 3 {
		t.Errorf("Labels = %v", labels)
	}
}

func TestDatasetSplit(t *testing.T) {
	d := &Dataset{}
	for i := 0; i < 1000; i++ {
		d.Append(mkExample(int64(i), 0, float64(i)))
	}
	train, test := d.Split(0.9, rng.New(1))
	if train.Len() != 900 || test.Len() != 100 {
		t.Fatalf("split sizes %d/%d", train.Len(), test.Len())
	}
	// No overlap, full coverage.
	seen := make(map[float64]bool)
	for _, ex := range train.Examples {
		seen[ex.Label] = true
	}
	for _, ex := range test.Examples {
		if seen[ex.Label] {
			t.Fatalf("label %v in both train and test", ex.Label)
		}
		seen[ex.Label] = true
	}
	if len(seen) != 1000 {
		t.Fatalf("coverage %d, want 1000", len(seen))
	}
}

func TestDatasetSubsampleAndHead(t *testing.T) {
	d := &Dataset{}
	for i := 0; i < 100; i++ {
		d.Append(mkExample(int64(i), 0, float64(i)))
	}
	s := d.Subsample(10, rng.New(2))
	if s.Len() != 10 {
		t.Fatalf("Subsample len = %d", s.Len())
	}
	seen := map[float64]bool{}
	for _, ex := range s.Examples {
		if seen[ex.Label] {
			t.Fatal("subsample drew with replacement")
		}
		seen[ex.Label] = true
	}
	if d.Subsample(1000, rng.New(3)).Len() != 100 {
		t.Error("oversized subsample should return everything")
	}
	if d.Head(5).Len() != 5 || d.Head(500).Len() != 100 {
		t.Error("Head sizes wrong")
	}
}

func TestTimePartitioner(t *testing.T) {
	p := TimePartitioner{Window: 24}
	if p.Key(mkExample(0, 0, 0)) != 0 || p.Key(mkExample(23, 0, 0)) != 0 {
		t.Error("first day should map to block 0")
	}
	if p.Key(mkExample(24, 0, 0)) != 1 || p.Key(mkExample(49, 0, 0)) != 2 {
		t.Error("later days map wrongly")
	}
	if p.Key(mkExample(-5, 0, 0)) != 0 {
		t.Error("negative time should clamp to block 0")
	}
	if p.Name() != "time/24" {
		t.Errorf("Name = %q", p.Name())
	}
}

func TestUserPartitioner(t *testing.T) {
	p := UserPartitioner{}
	if p.Key(mkExample(0, 42, 0)) != 42 {
		t.Error("user partitioner should key by user ID")
	}
	if p.Name() != "user" {
		t.Errorf("Name = %q", p.Name())
	}
}

func TestGrowingDatabaseInsertRead(t *testing.T) {
	g := NewGrowingDatabase(TimePartitioner{Window: 10})
	created := g.Insert(mkExample(5, 0, 1), mkExample(15, 0, 2), mkExample(7, 0, 3))
	if len(created) != 2 {
		t.Fatalf("created %v, want 2 blocks", created)
	}
	if g.NumBlocks() != 2 || g.Size() != 3 {
		t.Fatalf("NumBlocks=%d Size=%d", g.NumBlocks(), g.Size())
	}
	if g.BlockSize(0) != 2 || g.BlockSize(1) != 1 || g.BlockSize(99) != 0 {
		t.Error("block sizes wrong")
	}
	ds := g.Read([]BlockID{0, 1, 99})
	if ds.Len() != 3 {
		t.Errorf("Read len = %d", ds.Len())
	}
	if only := g.Read([]BlockID{1}); only.Len() != 1 || only.Examples[0].Label != 2 {
		t.Errorf("Read block 1 = %+v", only.Examples)
	}
}

func TestGrowingDatabaseOrdering(t *testing.T) {
	g := NewGrowingDatabase(TimePartitioner{Window: 1})
	// Insert out of order.
	g.Insert(mkExample(5, 0, 0), mkExample(1, 0, 0), mkExample(3, 0, 0), mkExample(2, 0, 0))
	got := g.Blocks()
	want := []BlockID{1, 2, 3, 5}
	if len(got) != len(want) {
		t.Fatalf("Blocks = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Blocks = %v, want %v", got, want)
		}
	}
	latest := g.LatestBlocks(2)
	if len(latest) != 2 || latest[0] != 3 || latest[1] != 5 {
		t.Errorf("LatestBlocks = %v", latest)
	}
	if len(g.LatestBlocks(100)) != 4 {
		t.Error("oversized LatestBlocks should return all")
	}
}

func TestGrowingDatabaseDelete(t *testing.T) {
	g := NewGrowingDatabase(TimePartitioner{Window: 1})
	g.Insert(mkExample(0, 0, 0), mkExample(1, 0, 0))
	if !g.Delete(0) {
		t.Fatal("Delete(0) failed")
	}
	if g.Delete(0) {
		t.Fatal("double delete should return false")
	}
	if g.NumBlocks() != 1 || g.Blocks()[0] != 1 {
		t.Errorf("after delete: %v", g.Blocks())
	}
}

func TestGrowingDatabaseUserBlocks(t *testing.T) {
	g := NewGrowingDatabase(UserPartitioner{})
	g.Insert(mkExample(0, 7, 1), mkExample(100, 7, 2), mkExample(5, 3, 3))
	if g.NumBlocks() != 2 {
		t.Fatalf("NumBlocks = %d, want 2 (one per user)", g.NumBlocks())
	}
	if g.BlockSize(7) != 2 || g.BlockSize(3) != 1 {
		t.Error("user block sizes wrong")
	}
}

func TestGrowingDatabaseConcurrency(t *testing.T) {
	g := NewGrowingDatabase(TimePartitioner{Window: 5})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				g.Insert(mkExample(int64(i%50), int64(w), 1))
				_ = g.Blocks()
				_ = g.Read(g.LatestBlocks(3))
			}
		}(w)
	}
	wg.Wait()
	if g.Size() != 8*500 {
		t.Errorf("Size = %d, want 4000", g.Size())
	}
}

// Property: blocks are disjoint and jointly exhaustive — every inserted
// example is in exactly one block, and Read over all blocks returns all.
func TestBlockPartitionProperty(t *testing.T) {
	f := func(times []int16, window uint8) bool {
		w := int64(window)%20 + 1
		g := NewGrowingDatabase(TimePartitioner{Window: w})
		for i, tm := range times {
			tt := int64(tm)
			if tt < 0 {
				tt = -tt
			}
			g.Insert(mkExample(tt, 0, float64(i)))
		}
		if g.Size() != len(times) {
			return false
		}
		all := g.Read(g.Blocks())
		if all.Len() != len(times) {
			return false
		}
		seen := make(map[float64]int)
		for _, ex := range all.Examples {
			seen[ex.Label]++
		}
		for i := range times {
			if seen[float64(i)] != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: Split preserves all examples for any fraction.
func TestSplitPreservesProperty(t *testing.T) {
	f := func(n uint8, fracRaw uint8) bool {
		d := &Dataset{}
		for i := 0; i < int(n); i++ {
			d.Append(mkExample(int64(i), 0, float64(i)))
		}
		frac := float64(fracRaw) / 255
		train, test := d.Split(frac, rng.New(uint64(n)))
		return train.Len()+test.Len() == int(n) &&
			math.Abs(float64(train.Len())-frac*float64(n)) <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
