// Package data implements Sage's data substrate: examples, datasets, and
// the growing database that accumulates a sensitive stream and splits it
// into disjoint blocks (Fig. 1 and §3.2 of the paper).
//
// Blocks are the unit of privacy accounting in Sage. The partitioning
// attribute must be insensitive (its possible values publicly known); the
// two attributes the paper highlights are time (event-level privacy) and
// user ID (user-level privacy, §4.4).
package data

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/rng"
)

// Example is one observation from a sensitive stream: a feature vector,
// a label, and the insensitive attributes blocks can be keyed by.
type Example struct {
	Features []float64
	Label    float64
	Time     int64 // event time, in stream ticks (e.g. hours)
	UserID   int64
}

// Dataset is an ordered collection of examples.
type Dataset struct {
	Examples []Example
}

// Len returns the number of examples.
func (d *Dataset) Len() int { return len(d.Examples) }

// FeatureDim returns the dimensionality of the feature vectors, or 0 for
// an empty dataset.
func (d *Dataset) FeatureDim() int {
	if len(d.Examples) == 0 {
		return 0
	}
	return len(d.Examples[0].Features)
}

// Append adds examples to the dataset.
func (d *Dataset) Append(ex ...Example) { d.Examples = append(d.Examples, ex...) }

// Merge returns a new dataset concatenating the receiver and others.
func (d *Dataset) Merge(others ...*Dataset) *Dataset {
	out := &Dataset{Examples: append([]Example{}, d.Examples...)}
	for _, o := range others {
		out.Examples = append(out.Examples, o.Examples...)
	}
	return out
}

// Shuffle permutes the examples in place.
func (d *Dataset) Shuffle(r *rng.RNG) {
	r.Shuffle(len(d.Examples), func(i, j int) {
		d.Examples[i], d.Examples[j] = d.Examples[j], d.Examples[i]
	})
}

// Split partitions the dataset into train and test sets with the given
// train fraction (e.g. 0.9 for the paper's 90::10 split). The split is
// deterministic given the RNG. The underlying examples are shared, not
// copied.
func (d *Dataset) Split(trainFrac float64, r *rng.RNG) (train, test *Dataset) {
	if trainFrac < 0 || trainFrac > 1 {
		panic(fmt.Sprintf("data: train fraction %v out of [0,1]", trainFrac))
	}
	idx := r.Perm(len(d.Examples))
	nTrain := int(float64(len(d.Examples)) * trainFrac)
	train = &Dataset{Examples: make([]Example, 0, nTrain)}
	test = &Dataset{Examples: make([]Example, 0, len(d.Examples)-nTrain)}
	for i, j := range idx {
		if i < nTrain {
			train.Examples = append(train.Examples, d.Examples[j])
		} else {
			test.Examples = append(test.Examples, d.Examples[j])
		}
	}
	return train, test
}

// Subsample returns n examples drawn without replacement (all examples if
// n >= Len).
func (d *Dataset) Subsample(n int, r *rng.RNG) *Dataset {
	if n >= len(d.Examples) {
		return &Dataset{Examples: append([]Example{}, d.Examples...)}
	}
	idx := r.Perm(len(d.Examples))[:n]
	out := &Dataset{Examples: make([]Example, n)}
	for i, j := range idx {
		out.Examples[i] = d.Examples[j]
	}
	return out
}

// Head returns the first n examples (all if n >= Len), sharing storage.
func (d *Dataset) Head(n int) *Dataset {
	if n > len(d.Examples) {
		n = len(d.Examples)
	}
	return &Dataset{Examples: d.Examples[:n]}
}

// Labels returns a copy of all labels.
func (d *Dataset) Labels() []float64 {
	out := make([]float64, len(d.Examples))
	for i, ex := range d.Examples {
		out[i] = ex.Label
	}
	return out
}

// MeanLabel returns the arithmetic mean of the labels (0 for empty).
// The paper's naïve baselines predict this value.
func (d *Dataset) MeanLabel() float64 {
	if len(d.Examples) == 0 {
		return 0
	}
	sum := 0.0
	for _, ex := range d.Examples {
		sum += ex.Label
	}
	return sum / float64(len(d.Examples))
}

// BlockID identifies one block of the growing database. For time-keyed
// blocks it is the time window index; for user-keyed blocks the user ID.
type BlockID int64

// Partitioner assigns examples to blocks by an insensitive attribute.
type Partitioner interface {
	// Key returns the block the example belongs to.
	Key(Example) BlockID
	// Name identifies the partitioning scheme ("time/24", "user").
	Name() string
}

// TimePartitioner keys blocks by time window: block = Time / Window.
// This yields the event-level privacy semantic (§3.2).
type TimePartitioner struct {
	Window int64 // ticks per block, e.g. 24 for daily blocks of hourly ticks
}

// Key implements Partitioner.
func (p TimePartitioner) Key(ex Example) BlockID {
	if p.Window <= 0 {
		panic("data: TimePartitioner requires Window > 0")
	}
	t := ex.Time
	if t < 0 {
		t = 0
	}
	return BlockID(t / p.Window)
}

// Name implements Partitioner.
func (p TimePartitioner) Name() string { return fmt.Sprintf("time/%d", p.Window) }

// UserPartitioner keys blocks by user ID, yielding the user-level privacy
// semantic (§4.4): all of one user's data lands in one block, so retiring
// the block bounds the user's total exposure.
type UserPartitioner struct{}

// Key implements Partitioner.
func (UserPartitioner) Key(ex Example) BlockID { return BlockID(ex.UserID) }

// Name implements Partitioner.
func (UserPartitioner) Name() string { return "user" }

// Block is one disjoint unit of the growing database.
type Block struct {
	ID       BlockID
	Examples []Example
}

// GrowingDatabase accumulates a data stream and partitions it into blocks.
// It is safe for concurrent use.
type GrowingDatabase struct {
	mu     sync.RWMutex
	part   Partitioner
	blocks map[BlockID]*Block
	order  []BlockID // sorted ascending
}

// NewGrowingDatabase returns an empty database with the given partitioner.
func NewGrowingDatabase(p Partitioner) *GrowingDatabase {
	if p == nil {
		panic("data: nil partitioner")
	}
	return &GrowingDatabase{part: p, blocks: make(map[BlockID]*Block)}
}

// Partitioner returns the partitioning scheme.
func (g *GrowingDatabase) Partitioner() Partitioner { return g.part }

// Insert adds examples to the database, creating blocks as needed.
// It returns the IDs of any newly created blocks, in first-seen order.
func (g *GrowingDatabase) Insert(examples ...Example) []BlockID {
	g.mu.Lock()
	defer g.mu.Unlock()
	var created []BlockID
	for _, ex := range examples {
		id := g.part.Key(ex)
		b, ok := g.blocks[id]
		if !ok {
			b = &Block{ID: id}
			g.blocks[id] = b
			g.insertOrdered(id)
			created = append(created, id)
		}
		b.Examples = append(b.Examples, ex)
	}
	return created
}

// insertOrdered inserts id into the sorted order slice. Caller holds mu.
func (g *GrowingDatabase) insertOrdered(id BlockID) {
	i := sort.Search(len(g.order), func(i int) bool { return g.order[i] >= id })
	g.order = append(g.order, 0)
	copy(g.order[i+1:], g.order[i:])
	g.order[i] = id
}

// Blocks returns all block IDs in ascending order.
func (g *GrowingDatabase) Blocks() []BlockID {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return append([]BlockID{}, g.order...)
}

// NumBlocks returns the number of blocks.
func (g *GrowingDatabase) NumBlocks() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return len(g.order)
}

// BlockSize returns the number of examples in a block (0 if absent).
func (g *GrowingDatabase) BlockSize(id BlockID) int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	if b, ok := g.blocks[id]; ok {
		return len(b.Examples)
	}
	return 0
}

// Size returns the total number of examples.
func (g *GrowingDatabase) Size() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	n := 0
	for _, b := range g.blocks {
		n += len(b.Examples)
	}
	return n
}

// Read assembles a dataset from the given blocks (missing IDs are
// skipped). The examples are copied so callers may shuffle freely.
func (g *GrowingDatabase) Read(ids []BlockID) *Dataset {
	g.mu.RLock()
	defer g.mu.RUnlock()
	out := &Dataset{}
	for _, id := range ids {
		if b, ok := g.blocks[id]; ok {
			out.Examples = append(out.Examples, b.Examples...)
		}
	}
	return out
}

// LatestBlocks returns the most recent n block IDs (fewer if the database
// is smaller), ascending. For time-keyed blocks this is the relevance
// window the paper's pipelines train on.
func (g *GrowingDatabase) LatestBlocks(n int) []BlockID {
	g.mu.RLock()
	defer g.mu.RUnlock()
	if n > len(g.order) {
		n = len(g.order)
	}
	return append([]BlockID{}, g.order[len(g.order)-n:]...)
}

// Delete removes a block's data entirely. Sage's DP-informed retention
// policy calls this when a block's privacy budget is exhausted and the
// company wants the raw data gone.
func (g *GrowingDatabase) Delete(id BlockID) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	if _, ok := g.blocks[id]; !ok {
		return false
	}
	delete(g.blocks, id)
	i := sort.Search(len(g.order), func(i int) bool { return g.order[i] >= id })
	if i < len(g.order) && g.order[i] == id {
		g.order = append(g.order[:i], g.order[i+1:]...)
	}
	return true
}
