package analysis

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
)

// Package is one parsed, fully type-checked non-test package of the
// repo tree, ready to be handed to analyzers.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	Standard   bool
	DepOnly    bool
	Error      *struct{ Err string }
}

// Load resolves patterns with the go tool and returns every matched
// package parsed from source and type-checked. Dependencies (including
// the standard library and sibling repo packages) are resolved through
// the compiler's export data, which `go list -export` materializes in
// the build cache — no module downloads, no third-party loader. dir is
// the directory the patterns are interpreted relative to (normally the
// module root). Test files are not loaded: the invariants sagelint
// enforces are about production paths.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{
		"list", "-deps", "-export",
		"-json=ImportPath,Dir,GoFiles,Export,Standard,DepOnly,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.Bytes())
	}

	exports := make(map[string]string)
	var targets []*listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		p := new(listPkg)
		if err := dec.Decode(p); errors.Is(err, io.EOF) {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard {
			targets = append(targets, p)
		}
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})

	pkgs := make([]*Package, 0, len(targets))
	for _, t := range targets {
		files := make([]*ast.File, 0, len(t.GoFiles))
		for _, name := range t.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(t.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("parse %s: %v", name, err)
			}
			files = append(files, f)
		}
		info := &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Implicits:  make(map[ast.Node]types.Object),
		}
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(t.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("typecheck %s: %v", t.ImportPath, err)
		}
		pkgs = append(pkgs, &Package{
			ImportPath: t.ImportPath,
			Dir:        t.Dir,
			Fset:       fset,
			Files:      files,
			Types:      tpkg,
			Info:       info,
		})
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].ImportPath < pkgs[j].ImportPath })
	return pkgs, nil
}
