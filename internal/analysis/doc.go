// Package analysis is sagelint: a stdlib-only static-analysis suite
// that turns the repo's architecture invariants (ROADMAP.md) into
// build-time checks. Each analyzer pins one invariant that was
// previously enforced only by tests happening to exercise the
// violating path:
//
//	sage/determinism  cell output derives only from cell coordinates —
//	                  no wall clock, no global math/rand in the
//	                  deterministic compute packages
//	sage/maporder     canonical (map-order-independent) byte encoding —
//	                  no map iteration feeding canonical encoders or
//	                  digests
//	sage/journal      journal-before-ack — //sage:journaled mutators
//	                  stage their journal record before acknowledging,
//	                  and every exported mutator on a journaled type
//	                  declares itself journaled or //sage:nojournal
//	sage/locks        lock discipline — no lock acquisition in map
//	                  iteration order (shard locks are taken in
//	                  ascending index order), no Unlock preceding its
//	                  Lock, no lock-bearing value copies
//	sage/ctx          context propagation — request-scoped code in the
//	                  gateway/replica/daemon tiers derives contexts
//	                  from the caller, never context.Background()
//	sage/ackerr       ack-path error discipline — WAL append/flush/sync
//	                  errors are never discarded (fail-closed)
//
// # Journal annotations
//
// The sage/journal analyzer is driven by doc-comment directives on
// methods:
//
//	//sage:journaled
//	//sage:nojournal <reason>
//
// A //sage:journaled method must reach a journal/stage call before any
// return that acknowledges success (a nil error, or any return for
// methods without an error result) once it has mutated receiver state.
// Once a type has one //sage:journaled method, every exported
// pointer-receiver method that mutates the receiver must carry one of
// the two directives: either it journals, or it states why it is
// exempt (configuration hooks like SetJournal, recovery paths like
// RestoreSnapshot that replay the log and must not re-journal it).
// A //sage:nojournal without a reason is itself a finding.
//
// # Suppressions
//
// A finding can be suppressed with a per-line comment, inline or on
// the line immediately above, with a mandatory reason:
//
//	//lint:ignore sage/<name> <reason>
//	//lint:ignore sage/<a>,sage/<b> <reason>
//
// Suppressions are counted and reported (and carried in the -json
// output), not silent.
//
// # Driver
//
// The driver is cmd/sagelint:
//
//	go run ./cmd/sagelint ./...          # exit 1 on any finding
//	go run ./cmd/sagelint -json ./...    # machine-readable CI artifact
//	go run ./cmd/sagelint -run journal . # one analyzer by regexp
//	go run ./cmd/sagelint -list          # names and pinned invariants
//
// Packages are loaded and type-checked with only the standard library
// (go list -export for dependency export data, go/types for the
// target sources). Analyzers are regression-tested by the `// want`
// fixture packages under testdata/src; each fixture directory mirrors
// the import-path suffix of the real tree it stands in for, so the
// analyzers' applicability rules cover fixtures and tree unchanged.
package analysis
