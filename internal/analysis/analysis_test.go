package analysis

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestSelfCheckTreeIsClean is the gate the CI lint job mirrors:
// `sagelint ./...` must report zero unsuppressed findings on the repo
// tree. A new call site that violates a pinned invariant (a time.Now
// in internal/experiments, a dropped WAL flush error, ...) fails this
// test before it ever reaches a runtime-behavior test.
func TestSelfCheckTreeIsClean(t *testing.T) {
	root := repoRoot(t)
	pkgs, err := Load(root, "./...")
	if err != nil {
		t.Fatalf("loading tree: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatal("loaded no packages")
	}
	res := Run(pkgs, All())
	for _, f := range res.Findings {
		t.Errorf("finding on clean tree: %s", f)
	}
}

// TestSuppressions pins the //lint:ignore surface: inline and
// comment-above forms suppress (with the reason captured and the
// finding counted), a reason-less ignore does not.
func TestSuppressions(t *testing.T) {
	root := repoRoot(t)
	pkgs, err := Load(root, "./internal/analysis/testdata/src/suppress/internal/experiments")
	if err != nil {
		t.Fatal(err)
	}
	res := Run(pkgs, []*Analyzer{Determinism})

	if got, want := len(res.Findings), 2; got != want {
		t.Errorf("live findings = %d, want %d (Live + MalformedIgnore): %v", got, want, res.Findings)
	}
	if got, want := len(res.Suppressed), 2; got != want {
		t.Fatalf("suppressed findings = %d, want %d: %v", got, want, res.Suppressed)
	}
	for _, s := range res.Suppressed {
		if !s.Suppressed {
			t.Errorf("suppressed finding not marked: %s", s)
		}
		if !strings.HasPrefix(s.Reason, "fixture:") {
			t.Errorf("suppression reason not captured, got %q", s.Reason)
		}
	}
}

// TestCLIJSON pins the -json report: machine-readable findings with
// repo-relative paths, human-readable findings on stderr, exit 1.
func TestCLIJSON(t *testing.T) {
	root := repoRoot(t)
	var out, errw bytes.Buffer
	code := CLI([]string{"-json", "-C", root,
		"./internal/analysis/testdata/src/suppress/internal/experiments"}, &out, &errw)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\nstderr: %s", code, errw.String())
	}

	var res Result
	if err := json.Unmarshal(out.Bytes(), &res); err != nil {
		t.Fatalf("-json output is not a Result: %v\n%s", err, out.String())
	}
	if len(res.Findings) != 2 || len(res.Suppressed) != 2 {
		t.Errorf("JSON report: %d findings / %d suppressed, want 2 / 2",
			len(res.Findings), len(res.Suppressed))
	}
	for _, f := range append(res.Findings, res.Suppressed...) {
		if strings.HasPrefix(f.File, "/") {
			t.Errorf("finding path not relativized: %s", f.File)
		}
		if f.Analyzer != "sage/determinism" {
			t.Errorf("unexpected analyzer %q", f.Analyzer)
		}
	}
	if !strings.Contains(errw.String(), "sagelint: 2 finding(s), 2 suppressed") {
		t.Errorf("stderr summary missing, got:\n%s", errw.String())
	}
}

// TestCLICleanExitsZero pins the success path CI depends on.
func TestCLICleanExitsZero(t *testing.T) {
	root := repoRoot(t)
	var out, errw bytes.Buffer
	code := CLI([]string{"-C", root,
		"./internal/analysis/testdata/src/clean/internal/experiments"}, &out, &errw)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0\nstderr: %s", code, errw.String())
	}
}

// TestCLIFlagSurface covers -list, -run filtering, and bad input.
func TestCLIFlagSurface(t *testing.T) {
	var out, errw bytes.Buffer
	if code := CLI([]string{"-list"}, &out, &errw); code != 0 {
		t.Fatalf("-list exit code = %d, want 0", code)
	}
	for _, a := range All() {
		if !strings.Contains(out.String(), a.Name) {
			t.Errorf("-list output missing %s", a.Name)
		}
	}

	out.Reset()
	errw.Reset()
	if code := CLI([]string{"-run", "("}, &out, &errw); code != 2 {
		t.Errorf("bad -run regexp exit code = %d, want 2", code)
	}

	// -run filtering: the suppress fixture only violates determinism,
	// so running only sage/ackerr over it is clean.
	root := repoRoot(t)
	out.Reset()
	errw.Reset()
	if code := CLI([]string{"-run", "ackerr", "-C", root,
		"./internal/analysis/testdata/src/suppress/internal/experiments"}, &out, &errw); code != 0 {
		t.Errorf("-run ackerr over determinism fixture: exit %d, want 0\n%s", code, errw.String())
	}
}

// TestParseIgnore pins the suppression grammar.
func TestParseIgnore(t *testing.T) {
	cases := []struct {
		text   string
		checks []string
		reason string
		ok     bool
	}{
		{"//lint:ignore sage/journal no-op mutation", []string{"sage/journal"}, "no-op mutation", true},
		{"//lint:ignore sage/a,sage/b covers both", []string{"sage/a", "sage/b"}, "covers both", true},
		{"//lint:ignore sage/journal", nil, "", false},
		{"// regular comment", nil, "", false},
	}
	for _, c := range cases {
		checks, reason, ok := parseIgnore(c.text)
		if ok != c.ok || reason != c.reason || strings.Join(checks, ",") != strings.Join(c.checks, ",") {
			t.Errorf("parseIgnore(%q) = %v %q %v, want %v %q %v",
				c.text, checks, reason, ok, c.checks, c.reason, c.ok)
		}
	}
}
