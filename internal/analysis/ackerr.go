package analysis

import (
	"go/ast"
	"go/types"
)

// AckErr pins the fail-closed half of journal-before-ack: an error
// from a WAL append, flush, or sync means the bytes may not be on
// disk, and discarding it turns an unacknowledged write into an acked
// non-durable one. Every call to the wal package's durability methods
// (Append, AppendAsync, Sync, Compact, Commit.Wait) must consume the
// error — not as an expression statement, not assigned to blank, not
// fire-and-forgotten behind go/defer.
var AckErr = &Analyzer{
	Name:      "sage/ackerr",
	Doc:       "no discarded errors from WAL append/flush/sync call sites",
	Invariant: "Journal-before-ack: a failed flush poisons the log instead of acking",
	Applies:   nil, // whole tree: durability call sites appear in durable, daemon, cmd
	Run:       runAckErr,
}

var walAckMethods = map[string]bool{
	"Append":      true,
	"AppendAsync": true,
	"Sync":        true,
	"Compact":     true,
	"Wait":        true,
}

func runAckErr(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if name, ok := walAckCall(pass, n.X); ok {
					pass.Reportf(n.Pos(),
						"error from wal %s discarded: a failed append/flush may mean an acked non-durable write — handle it (fail closed)", name)
				}
			case *ast.DeferStmt:
				if name, ok := walAckCall(pass, n.Call); ok {
					pass.Reportf(n.Pos(),
						"error from deferred wal %s discarded: handle the error (fail closed)", name)
				}
			case *ast.GoStmt:
				if name, ok := walAckCall(pass, n.Call); ok {
					pass.Reportf(n.Pos(),
						"error from wal %s discarded in go statement: handle the error (fail closed)", name)
				}
			case *ast.AssignStmt:
				if len(n.Rhs) != 1 {
					return true
				}
				name, ok := walAckCall(pass, n.Rhs[0])
				if !ok {
					return true
				}
				// The error is the call's last result; blank there
				// discards it.
				last := n.Lhs[len(n.Lhs)-1]
				if id, isIdent := last.(*ast.Ident); isIdent && id.Name == "_" {
					pass.Reportf(n.Pos(),
						"error from wal %s assigned to blank: a failed append/flush may mean an acked non-durable write — handle it (fail closed)", name)
				}
			}
			return true
		})
	}
}

// walAckCall reports whether e is a call to one of the wal package's
// durability methods, returning its name.
func walAckCall(pass *Pass, e ast.Expr) (string, bool) {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return "", false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return "", false
	}
	if !pathIn(fn.Pkg().Path(), "internal/wal") || !walAckMethods[fn.Name()] {
		return "", false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "", false
	}
	return fn.Name(), true
}
