package analysis

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// fixtureCases maps each fixture package to the single analyzer it
// regression-tests. Fixture paths end in the same package suffixes as
// the real tree so the analyzers' applicability rules cover them
// unchanged.
var fixtureCases = []struct {
	dir      string
	analyzer *Analyzer
}{
	{"determinism/internal/experiments", Determinism},
	{"maporder/internal/core", MapOrder},
	{"journal/internal/core", Journal},
	{"locks/fixture", Locks},
	{"ctxpath/internal/gateway", Ctx},
	{"ackerr/internal/wal", AckErr},
}

// TestFixtures checks every fixture's `// want` assertions against the
// analyzer's findings — and that withholding the findings (the
// disabled-analyzer case) fails the same assertions, so a fixture can
// never silently assert nothing.
func TestFixtures(t *testing.T) {
	root := repoRoot(t)
	for _, c := range fixtureCases {
		t.Run(strings.ReplaceAll(c.dir, "/", "_"), func(t *testing.T) {
			pkgs, err := Load(root, "./internal/analysis/testdata/src/"+c.dir)
			if err != nil {
				t.Fatalf("loading fixture: %v", err)
			}
			res := Run(pkgs, []*Analyzer{c.analyzer})
			for _, p := range checkWants(pkgs, res.Findings) {
				t.Error(p)
			}
			if len(res.Findings) == 0 {
				t.Fatalf("fixture produced no findings: it is not pinning %s", c.analyzer.Name)
			}
			// Disabled-analyzer check: with no findings, the wants must
			// go unmatched — i.e. the fixture fails when its check is
			// turned off.
			if probs := checkWants(pkgs, nil); len(probs) == 0 {
				t.Errorf("fixture has no want assertions: disabling %s would go unnoticed", c.analyzer.Name)
			}
		})
	}
}

// wantRe pulls the quoted patterns out of a `// want` comment. Both
// backquoted and double-quoted forms are accepted.
var wantRe = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

// checkWants compares findings against the fixtures' `// want`
// comments and returns one problem string per mismatch in either
// direction.
func checkWants(pkgs []*Package, findings []Finding) []string {
	type key struct {
		file string
		line int
	}
	wants := make(map[key][]*regexp.Regexp)
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
					rest, ok := strings.CutPrefix(text, "want ")
					if !ok {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					k := key{pos.Filename, pos.Line}
					for _, q := range wantRe.FindAllString(rest, -1) {
						pat := strings.Trim(q, "`\"")
						wants[k] = append(wants[k], regexp.MustCompile(pat))
					}
				}
			}
		}
	}

	var problems []string
	for _, f := range findings {
		k := key{f.File, f.Line}
		matched := false
		for i, re := range wants[k] {
			if re != nil && re.MatchString(f.Message) {
				wants[k][i] = nil // consume
				matched = true
				break
			}
		}
		if !matched {
			problems = append(problems, fmt.Sprintf("unexpected finding: %s", f))
		}
	}
	for k, res := range wants {
		for _, re := range res {
			if re != nil {
				problems = append(problems,
					fmt.Sprintf("%s:%d: want %q matched no finding", k.file, k.line, re.String()))
			}
		}
	}
	return problems
}

// repoRoot walks up from the test's working directory to the module
// root (where go.mod lives).
func repoRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("go.mod not found above test directory")
		}
		dir = parent
	}
}
