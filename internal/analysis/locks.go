package analysis

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
)

// Locks pins the lock-discipline rules behind the sharded write path:
//
//   - no lock acquisition inside a `range someMap` body — map
//     iteration order is randomized, so two goroutines would acquire
//     the same lock set in different orders and deadlock; shard locks
//     must be taken in ascending index order (core.lockGroups);
//   - no Unlock lexically preceding its Lock in the same function —
//     an unlock that is not dominated by its lock releases a mutex the
//     function never took on some path;
//   - no copying of lock-bearing values (range over []shard, `x := *p`
//     where the struct embeds a mutex): a copied mutex guards nothing.
var Locks = &Analyzer{
	Name:      "sage/locks",
	Doc:       "shard locks in ascending order, Unlock dominated by Lock, no mutex value copies",
	Invariant: "Lock discipline: in-order shard locking keeps the sharded ledger deadlock-free",
	Applies:   nil, // whole tree
	Run:       runLocks,
}

func runLocks(pass *Pass) {
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkLockOrder(pass, fd.Body)
		}
		checkMapRangeLocks(pass, f)
		checkLockCopies(pass, f)
	}
}

// checkMapRangeLocks flags sync.Mutex Lock/RLock calls inside the body
// of a range over a map.
func checkMapRangeLocks(pass *Pass, f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := pass.Info.TypeOf(rng.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		ast.Inspect(rng.Body, func(inner ast.Node) bool {
			call, ok := inner.(*ast.CallExpr)
			if !ok {
				return true
			}
			if name, isSync := syncLockCall(pass, call); isSync && (name == "Lock" || name == "RLock") {
				pass.Reportf(call.Pos(),
					"lock acquired inside map iteration: map order is randomized, so concurrent holders deadlock — acquire in ascending (sorted-key) order instead")
			}
			return true
		})
		return true
	})
}

// checkLockOrder flags a non-deferred Unlock that lexically precedes
// every Lock of the same mutex expression within one function.
func checkLockOrder(pass *Pass, body *ast.BlockStmt) {
	type events struct {
		firstLock   token.Pos
		firstUnlock token.Pos
	}
	evs := make(map[string]*events)
	deferred := make(map[ast.Node]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		if ds, ok := n.(*ast.DeferStmt); ok {
			deferred[ds.Call] = true
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		name, isSync := syncLockCall(pass, call)
		if !isSync {
			return true
		}
		sel := call.Fun.(*ast.SelectorExpr)
		key := exprString(pass.Fset, sel.X)
		ev := evs[key]
		if ev == nil {
			ev = &events{}
			evs[key] = ev
		}
		switch name {
		case "Lock", "RLock":
			if ev.firstLock == token.NoPos {
				ev.firstLock = call.Pos()
			}
		case "Unlock", "RUnlock":
			if !deferred[call] && ev.firstUnlock == token.NoPos {
				ev.firstUnlock = call.Pos()
			}
		}
		return true
	})
	for key, ev := range evs {
		if ev.firstLock != token.NoPos && ev.firstUnlock != token.NoPos && ev.firstUnlock < ev.firstLock {
			pass.Reportf(ev.firstUnlock,
				"%s.Unlock precedes its Lock in this function: the unlock is not dominated by the lock on some path", key)
		}
	}
}

// checkLockCopies flags the two lock-copy shapes vet's copylocks most
// often catches too late here: ranging over a slice/array of
// lock-bearing structs by value, and dereference-copying one.
func checkLockCopies(pass *Pass, f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.RangeStmt:
			if n.Value == nil {
				return true
			}
			t := pass.Info.TypeOf(n.Value)
			if t != nil && containsLock(t) {
				pass.Reportf(n.Value.Pos(),
					"range copies lock-bearing %s by value: the copy's mutex guards nothing — iterate by index or store pointers", t.String())
			}
		case *ast.AssignStmt:
			for _, rhs := range n.Rhs {
				star, ok := rhs.(*ast.StarExpr)
				if !ok {
					continue
				}
				t := pass.Info.TypeOf(star)
				if t != nil && containsLock(t) {
					pass.Reportf(rhs.Pos(),
						"dereference copies lock-bearing %s by value: the copy's mutex guards nothing", t.String())
				}
			}
		}
		return true
	})
}

// syncLockCall reports whether call is a method call on sync.Mutex or
// sync.RWMutex (directly or through an embedded field), returning the
// method name.
func syncLockCall(pass *Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", false
	}
	switch fn.Name() {
	case "Lock", "Unlock", "RLock", "RUnlock":
		return fn.Name(), true
	}
	return "", false
}

// containsLock reports whether t holds a sync.Mutex or sync.RWMutex by
// value (directly, in a struct field, or in an array element).
func containsLock(t types.Type) bool {
	switch u := t.(type) {
	case *types.Named:
		if obj := u.Obj(); obj.Pkg() != nil && obj.Pkg().Path() == "sync" {
			if obj.Name() == "Mutex" || obj.Name() == "RWMutex" {
				return true
			}
		}
		return containsLock(u.Underlying())
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsLock(u.Field(i).Type()) {
				return true
			}
		}
	case *types.Array:
		return containsLock(u.Elem())
	}
	return false
}

func exprString(fset *token.FileSet, e ast.Expr) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, fset, e); err != nil {
		return "<expr>"
	}
	return buf.String()
}
