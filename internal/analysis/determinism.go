package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// deterministicPkgs is the compute core reachable from an experiment
// cell: everything a cell's output may flow through. Inside it, the
// only randomness source is an explicitly seeded generator derived
// from the cell's coordinates (rng.MixSeed), and the wall clock is
// off-limits entirely — output must be bit-identical for any
// -workers/-pipeline setting.
var deterministicPkgs = []string{
	"internal/experiments",
	"internal/workload",
	"internal/rng",
	"internal/data",
	"internal/taxi",
	"internal/criteo",
	"internal/ml",
	"internal/linalg",
	"internal/stats",
	"internal/privacy",
	"internal/adaptive",
	"internal/pipeline",
}

// Determinism pins the ROADMAP "Determinism" invariant: no wall-clock
// reads and no global (process-seeded) math/rand in the deterministic
// compute packages. Explicit constructors (rand.New, rand.NewPCG,
// rand.NewSource, ...) are allowed — they take a seed the caller must
// derive from cell coordinates.
var Determinism = &Analyzer{
	Name:      "sage/determinism",
	Doc:       "forbid time.Now and global math/rand in the deterministic compute core",
	Invariant: "Determinism: cell output derives only from cell coordinates via rng.MixSeed",
	Applies: func(p string) bool {
		return pathIn(p, deterministicPkgs...)
	},
	Run: runDeterminism,
}

var wallClockFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

func runDeterminism(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pn, ok := pass.Info.Uses[id].(*types.PkgName)
			if !ok {
				return true
			}
			switch pn.Imported().Path() {
			case "time":
				if wallClockFuncs[sel.Sel.Name] {
					pass.Reportf(call.Pos(),
						"time.%s in deterministic package: cell output must derive only from cell coordinates (rng.MixSeed), never the wall clock",
						sel.Sel.Name)
				}
			case "math/rand", "math/rand/v2":
				if !strings.HasPrefix(sel.Sel.Name, "New") {
					pass.Reportf(call.Pos(),
						"global rand.%s in deterministic package: use an explicit generator seeded from cell coordinates (rng.MixSeed), not process-global randomness",
						sel.Sel.Name)
				}
			}
			return true
		})
	}
}
