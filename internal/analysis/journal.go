package analysis

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"
)

// Journal pins the "journal-before-ack" invariant. Mutation methods on
// the durable types annotated `//sage:journaled` must stage their
// journal record before acknowledging success, and every *other*
// exported mutator on a type that has journaled methods must declare
// itself either `//sage:journaled` or `//sage:nojournal <reason>` — a
// new mutation path cannot silently opt out of durability.
//
// The check is an ordered walk of the method body (statements visited
// in source order, function literals inlined at their position):
//
//   - a call whose callee name contains "journal" or "stage" marks the
//     journal point;
//   - an assignment through the receiver, or through a local derived
//     from the receiver (sh := ac.shards[k]; st := sh.blocks[id]),
//     marks mutation;
//   - a `return nil` (in the error result position) after mutation but
//     before the journal point is a finding: the caller is acked a
//     state change with no durable record staged for it.
//
// Methods with no error result (RegisterBlock, Publish — they panic on
// journal failure) get a presence check: the body must stage at least
// once. Early no-op returns (nothing mutated yet) are fine; paths
// returning a non-nil error need no journal record by definition.
var Journal = &Analyzer{
	Name:      "sage/journal",
	Doc:       "//sage:journaled mutators stage their journal before acknowledging",
	Invariant: "Journal-before-ack: every ledger/store mutation is WAL-journaled before acknowledgement",
	Applies: func(p string) bool {
		return pathIn(p, "internal/core", "internal/store")
	},
	Run: runJournal,
}

var journalCallRe = regexp.MustCompile(`(?i)(journal|stage)`)

const (
	annJournaled = "//sage:journaled"
	annNoJournal = "//sage:nojournal"
)

func runJournal(pass *Pass) {
	type method struct {
		decl      *ast.FuncDecl
		recv      string
		journaled bool
		nojournal bool
		noReason  bool
	}
	var methods []method
	journaledTypes := make(map[string]bool)

	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || len(fd.Recv.List) == 0 {
				continue
			}
			m := method{decl: fd, recv: recvTypeName(fd)}
			if fd.Doc != nil {
				for _, c := range fd.Doc.List {
					switch {
					case c.Text == annJournaled:
						m.journaled = true
					case strings.HasPrefix(c.Text, annNoJournal):
						m.nojournal = true
						m.noReason = strings.TrimSpace(strings.TrimPrefix(c.Text, annNoJournal)) == ""
					}
				}
			}
			if m.journaled {
				journaledTypes[m.recv] = true
			}
			methods = append(methods, m)
		}
	}

	for _, m := range methods {
		fd := m.decl
		switch {
		case m.journaled:
			checkJournaled(pass, fd)
		case m.nojournal:
			if m.noReason {
				pass.Reportf(fd.Name.Pos(),
					"//sage:nojournal on %s.%s has no reason: say why this mutation needs no journal record",
					m.recv, fd.Name.Name)
			}
		case journaledTypes[m.recv] && fd.Name.IsExported() && isPointerRecv(fd):
			w := newJournalWalk(pass, fd)
			if w == nil {
				continue
			}
			w.walkBody(fd.Body)
			if w.mutated {
				pass.Reportf(fd.Name.Pos(),
					"exported mutator %s.%s on a journaled type is neither //sage:journaled nor //sage:nojournal — every mutation path must declare its durability story",
					m.recv, fd.Name.Name)
			}
		}
	}
}

func checkJournaled(pass *Pass, fd *ast.FuncDecl) {
	if fd.Body == nil {
		return
	}
	w := newJournalWalk(pass, fd)
	if w == nil {
		// Unnamed receiver: the method cannot mutate its state, so the
		// annotation is at best documentation.
		return
	}
	w.checkReturns = errResultIndex(pass, fd) >= 0
	w.errIndex = errResultIndex(pass, fd)
	w.walkBody(fd.Body)
	if !w.sawJournal {
		pass.Reportf(fd.Name.Pos(),
			"//sage:journaled method %s never calls a journal/stage function: the mutation is acknowledged with no durable record",
			fd.Name.Name)
	}
}

// errResultIndex returns the index of the trailing error result, or -1.
func errResultIndex(pass *Pass, fd *ast.FuncDecl) int {
	if fd.Type.Results == nil {
		return -1
	}
	n := 0
	last := -1
	for _, field := range fd.Type.Results.List {
		width := len(field.Names)
		if width == 0 {
			width = 1
		}
		t := pass.Info.TypeOf(field.Type)
		for i := 0; i < width; i++ {
			if t != nil && t.String() == "error" {
				last = n
			} else {
				last = -1
			}
			n++
		}
	}
	if last == n-1 {
		return last
	}
	return -1
}

// journalWalk carries the ordered-walk state for one method body.
type journalWalk struct {
	pass         *Pass
	derived      map[types.Object]bool
	sawJournal   bool
	mutated      bool
	checkReturns bool
	errIndex     int
}

func newJournalWalk(pass *Pass, fd *ast.FuncDecl) *journalWalk {
	recv := fd.Recv.List[0]
	if len(recv.Names) == 0 {
		return nil
	}
	obj := pass.Info.Defs[recv.Names[0]]
	if obj == nil {
		return nil
	}
	return &journalWalk{
		pass:     pass,
		derived:  map[types.Object]bool{obj: true},
		errIndex: -1,
	}
}

// walkBody visits statements in source order. Branches are visited in
// order too (an optimistic, may-analysis approximation of the CFG: a
// journal call in either arm counts). Function literals are inlined at
// their lexical position — Request stages its journal inside an
// immediately-invoked closure — but a literal's returns are not the
// method's acknowledgements, so return checking is off inside them.
func (w *journalWalk) walkBody(body *ast.BlockStmt) {
	var stack []ast.Node
	litDepth := 0
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			top := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if _, ok := top.(*ast.FuncLit); ok {
				litDepth--
			}
			return true
		}
		stack = append(stack, n)
		switch n := n.(type) {
		case *ast.FuncLit:
			litDepth++
		case *ast.CallExpr:
			if name := calleeName(n); name != "" && journalCallRe.MatchString(name) {
				w.sawJournal = true
			}
			if isDelete(w.pass, n) && len(n.Args) > 0 && w.isDerived(n.Args[0]) {
				w.mutated = true
			}
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if w.isDerived(lhs) {
					w.mutated = true
				}
			}
			// Track locals derived from the receiver, so mutations like
			// `sh := ac.shards[k]; st := sh.blocks[id]; st.retired = true`
			// are seen as receiver-state mutations.
			for i, lhs := range n.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				var rhs ast.Expr
				switch {
				case len(n.Rhs) == len(n.Lhs):
					rhs = n.Rhs[i]
				case len(n.Rhs) == 1:
					rhs = n.Rhs[0]
				default:
					continue
				}
				if w.isDerived(rhs) {
					if obj := w.pass.Info.ObjectOf(id); obj != nil {
						w.derived[obj] = true
					}
				}
			}
		case *ast.IncDecStmt:
			if w.isDerived(n.X) {
				w.mutated = true
			}
		case *ast.ReturnStmt:
			if litDepth == 0 && w.checkReturns && w.mutated && !w.sawJournal && w.isNilErrReturn(n) {
				w.pass.Reportf(n.Pos(),
					"returns nil (acknowledging the mutation) with no journal call on the path: journal-before-ack requires the record to be staged first")
			}
		}
		return true
	})
}

// isDerived reports whether the expression's base identifier is the
// receiver or a local derived from it.
func (w *journalWalk) isDerived(e ast.Expr) bool {
	id := baseIdent(e)
	if id == nil {
		return false
	}
	obj := w.pass.Info.ObjectOf(id)
	return obj != nil && w.derived[obj]
}

func (w *journalWalk) isNilErrReturn(ret *ast.ReturnStmt) bool {
	if w.errIndex < 0 || w.errIndex >= len(ret.Results) {
		return false
	}
	id, ok := ret.Results[w.errIndex].(*ast.Ident)
	return ok && id.Name == "nil"
}

func recvTypeName(fd *ast.FuncDecl) string {
	t := fd.Recv.List[0].Type
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
		case *ast.IndexExpr: // generic receiver
			t = x.X
		case *ast.Ident:
			return x.Name
		default:
			return ""
		}
	}
}

func isPointerRecv(fd *ast.FuncDecl) bool {
	_, ok := fd.Recv.List[0].Type.(*ast.StarExpr)
	return ok
}

// baseIdent walks selectors/indexes/derefs down to the root identifier.
func baseIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

func calleeName(call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}

func isDelete(pass *Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pass.Info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "delete"
}
