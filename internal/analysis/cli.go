package analysis

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"path/filepath"
	"regexp"
)

// CLI is the sagelint driver (cmd/sagelint is a thin wrapper so the
// flag handling and output formats are unit-testable). Findings are
// always printed human-readably to errw; with -json the structured
// report additionally goes to outw, which is what CI archives.
//
// Exit codes: 0 clean (suppressed findings are clean), 1 findings,
// 2 usage or load failure.
func CLI(args []string, outw, errw io.Writer) int {
	fs := flag.NewFlagSet("sagelint", flag.ContinueOnError)
	fs.SetOutput(errw)
	jsonOut := fs.Bool("json", false, "write a JSON report to stdout")
	dir := fs.String("C", ".", "directory to resolve package patterns in (the module root)")
	run := fs.String("run", "", "only run analyzers whose name matches this regexp")
	list := fs.Bool("list", false, "list analyzers and the invariants they pin, then exit")
	fs.Usage = func() {
		fmt.Fprintf(errw, "usage: sagelint [-json] [-C dir] [-run regexp] [packages...]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers := All()
	if *run != "" {
		re, err := regexp.Compile(*run)
		if err != nil {
			fmt.Fprintf(errw, "sagelint: bad -run regexp: %v\n", err)
			return 2
		}
		var kept []*Analyzer
		for _, a := range analyzers {
			if re.MatchString(a.Name) {
				kept = append(kept, a)
			}
		}
		analyzers = kept
	}
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(outw, "%-20s %s\n%-20s pins: %s\n", a.Name, a.Doc, "", a.Invariant)
		}
		return 0
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := Load(*dir, patterns...)
	if err != nil {
		fmt.Fprintf(errw, "sagelint: %v\n", err)
		return 2
	}
	res := Run(pkgs, analyzers)

	// Report positions relative to the working directory: stable in CI
	// logs and clickable in editors.
	abs, err := filepath.Abs(*dir)
	if err == nil {
		relativize(res.Findings, abs)
		relativize(res.Suppressed, abs)
	}

	for _, f := range res.Findings {
		fmt.Fprintln(errw, f.String())
	}
	fmt.Fprintf(errw, "sagelint: %d finding(s), %d suppressed, %d package(s), %d analyzer(s)\n",
		len(res.Findings), len(res.Suppressed), res.Packages, len(res.Analyzers))

	if *jsonOut {
		enc := json.NewEncoder(outw)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			fmt.Fprintf(errw, "sagelint: encoding report: %v\n", err)
			return 2
		}
	}
	if len(res.Findings) > 0 {
		return 1
	}
	return 0
}

func relativize(fs []Finding, base string) {
	for i := range fs {
		if rel, err := filepath.Rel(base, fs[i].File); err == nil {
			fs[i].File = rel
		}
	}
}
