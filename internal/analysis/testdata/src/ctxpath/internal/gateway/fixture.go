// Package gateway is the sage/ctx fixture: request-scoped code
// severing the caller's deadline chain with context.Background().
package gateway

import (
	"context"
	"net/http"
)

type proxy struct{}

// BadHandler drops the request's context: a stalled upstream now hangs
// this handler forever instead of failing over.
func (p *proxy) BadHandler(w http.ResponseWriter, r *http.Request) {
	ctx := context.Background() // want `context\.Background in a request-scoped function`
	p.forward(ctx)
}

// BadAttempt starts a per-attempt deadline from a fresh root instead
// of the caller's context.
func (p *proxy) BadAttempt(ctx context.Context, url string) error {
	attempt, cancel := context.WithTimeout(context.TODO(), 0) // want `context\.TODO in a request-scoped function`
	defer cancel()
	p.forward(attempt)
	_ = url
	return nil
}

// BadClosure: a goroutine spawned inside request scope still serves
// the request — the closure inherits the scoping.
func (p *proxy) BadClosure(ctx context.Context) {
	go func() {
		p.forward(context.Background()) // want `context\.Background in a request-scoped function`
	}()
}

// GoodLifecycle has no caller context in its signature: Background is
// the correct root for a health-probe loop.
func (p *proxy) GoodLifecycle() {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	p.forward(ctx)
}

// GoodDerived threads the caller's context through.
func (p *proxy) GoodDerived(ctx context.Context) error {
	attempt, cancel := context.WithTimeout(ctx, 0)
	defer cancel()
	p.forward(attempt)
	return nil
}

func (p *proxy) forward(ctx context.Context) { _ = ctx }
