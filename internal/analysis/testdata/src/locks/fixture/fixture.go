// Package fixture is the sage/locks fixture: lock acquisition in map
// iteration order, unlocks preceding their locks, and lock-bearing
// value copies.
package fixture

import "sync"

type shard struct {
	mu sync.Mutex
	n  int
}

type sharded struct {
	mu     sync.Mutex
	shards map[int]*shard
	list   []shard
	byIdx  []*shard
}

// BadMapOrderLocking acquires shard locks in randomized map order: two
// concurrent holders deadlock.
func (s *sharded) BadMapOrderLocking() {
	for _, sh := range s.shards {
		sh.mu.Lock() // want `lock acquired inside map iteration`
		sh.n++
		sh.mu.Unlock()
	}
}

// BadUnlockFirst releases a mutex this function has not taken yet.
func (s *sharded) BadUnlockFirst() {
	s.mu.Unlock() // want `Unlock precedes its Lock`
	s.mu.Lock()
}

// BadValueRange copies each lock-bearing shard by value.
func (s *sharded) BadValueRange() int {
	total := 0
	for _, sh := range s.list { // want `range copies lock-bearing`
		total += sh.n
	}
	return total
}

// BadDerefCopy copies a shard (and its mutex) through a dereference.
func (s *sharded) BadDerefCopy(p *shard) int {
	c := *p // want `dereference copies lock-bearing`
	return c.n
}

// GoodOrderedLocking iterates a slice: acquisition order is the
// ascending index order the sharded ledger requires.
func (s *sharded) GoodOrderedLocking() {
	for _, sh := range s.byIdx {
		sh.mu.Lock()
		sh.n++
		sh.mu.Unlock()
	}
}

// GoodLockUnlock is the plain dominated pairing.
func (s *sharded) GoodLockUnlock() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.list)
}
