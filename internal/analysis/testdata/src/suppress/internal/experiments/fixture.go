// Package experiments is the suppression fixture: one live finding,
// two correctly suppressed ones, and one malformed (reason-less)
// ignore that must not suppress.
package experiments

import "time"

// Live is an unsuppressed violation.
func Live() int64 {
	return time.Now().UnixNano()
}

// SuppressedInline carries a trailing ignore with a reason.
func SuppressedInline() int64 {
	return time.Now().UnixNano() //lint:ignore sage/determinism fixture: exercising inline suppression
}

// SuppressedAbove carries the comment-above form.
func SuppressedAbove() int64 {
	//lint:ignore sage/determinism fixture: exercising comment-above suppression
	return time.Now().UnixNano()
}

// MalformedIgnore has no reason, so the finding stays live.
func MalformedIgnore() int64 {
	return time.Now().UnixNano() //lint:ignore sage/determinism
}
