// Package core is the sage/journal fixture: a journaled ledger type
// with good and bad mutation paths.
package core

import "errors"

// Ledger is the journaled type under test.
type Ledger struct {
	state   map[string]int
	journal func(rec string) error
}

// GoodCharge journals before mutating and before the nil-return ack.
//
//sage:journaled
func (l *Ledger) GoodCharge(id string) error {
	if _, ok := l.state[id]; !ok {
		return errors.New("unknown block")
	}
	if err := l.journal("charge " + id); err != nil {
		return err
	}
	l.state[id]++
	return nil
}

// BadCharge mutates and acks with no journal call anywhere.
//
//sage:journaled
func (l *Ledger) BadCharge(id string) error { // want `never calls a journal/stage function`
	l.state[id]++
	return nil // want `no journal call on the path`
}

// BadEarlyAck journals eventually, but one success path acks a
// mutation before the record is staged.
//
//sage:journaled
func (l *Ledger) BadEarlyAck(id string) error {
	l.state[id]++
	if id == "" {
		return nil // want `no journal call on the path`
	}
	return l.journal("ack " + id)
}

// Mutate is an exported mutator with no durability annotation at all.
func (l *Ledger) Mutate(id string) { // want `neither //sage:journaled nor //sage:nojournal`
	l.state[id] = 0
}

// Reset is declared exempt, with a reason — allowed.
//
//sage:nojournal recovery-only helper, runs before a journal is installed
func (l *Ledger) Reset() {
	l.state = map[string]int{}
}

// BadReset claims exemption without saying why.
//
//sage:nojournal
func (l *Ledger) BadReset() { // want `has no reason`
	l.state = nil
}

// Get is a read: no annotation needed.
func (l *Ledger) Get(id string) int { return l.state[id] }
