// Package experiments is the clean fixture: fully deterministic code,
// pinning the CLI's exit-0 path.
package experiments

// Cell mixes a seed exactly the way a well-behaved cell should: pure
// arithmetic on its coordinates.
func Cell(seed int64) int64 {
	return seed*6364136223846793005 + 1442695040888963407
}
