// Package core is the sage/maporder fixture: canonical encoders and
// digests fed from randomized map iteration order.
package core

import (
	"crypto/sha256"
	"sort"
)

// AppendString mirrors the real canonical encoder's shape (a length-
// prefixed append in the audit encoding).
func AppendString(dst []byte, s string) []byte {
	return append(dst, s...)
}

// BadEncode feeds the canonical encoder straight from a map range: the
// "canonical" bytes now differ run to run.
func BadEncode(m map[string][]byte) []byte {
	var out []byte
	for k := range m { // want `map iteration feeds canonical encoding`
		out = AppendString(out, k)
	}
	return out
}

// BadDigest hashes values in map order.
func BadDigest(m map[string]string) [][sha256.Size]byte {
	var out [][sha256.Size]byte
	for _, v := range m { // want `map iteration feeds canonical encoding`
		out = append(out, sha256.Sum256([]byte(v)))
	}
	return out
}

// GoodSortedEncode collects keys (nothing canonical in that body),
// sorts them, and encodes over the slice — the blessed idiom.
func GoodSortedEncode(m map[string][]byte) []byte {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var out []byte
	for _, k := range keys {
		out = AppendString(out, k)
	}
	return out
}
