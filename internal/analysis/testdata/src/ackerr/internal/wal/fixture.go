// Package wal is the sage/ackerr fixture: durability methods whose
// error results get discarded — each discard is an acked non-durable
// write waiting to happen.
package wal

// Log mirrors the real WAL's durability surface.
type Log struct{}

func (l *Log) Append(typ byte, payload []byte) error { return nil }
func (l *Log) Sync() error                           { return nil }
func (l *Log) Compact(records [][]byte) error        { return nil }

// Commit mirrors the group-commit ticket.
type Commit struct{}

func (c Commit) Wait() error { return nil }

func (l *Log) AppendAsync(typ byte, payload []byte) (Commit, error) { return Commit{}, nil }

// BadDiscards drops durability errors five different ways.
func BadDiscards(l *Log) {
	l.Append(1, nil)              // want `error from wal Append discarded`
	_ = l.Sync()                  // want `error from wal Sync assigned to blank`
	defer l.Sync()                // want `error from deferred wal Sync discarded`
	c, _ := l.AppendAsync(1, nil) // want `error from wal AppendAsync assigned to blank`
	go c.Wait()                   // want `error from wal Wait discarded in go statement`
}

// GoodHandled consumes every durability error.
func GoodHandled(l *Log) error {
	if err := l.Append(1, nil); err != nil {
		return err
	}
	c, err := l.AppendAsync(2, nil)
	if err != nil {
		return err
	}
	if err := c.Wait(); err != nil {
		return err
	}
	return l.Sync()
}
