// Package experiments is the sage/determinism fixture: an experiment
// cell reaching for the wall clock or process-global randomness. Cell
// output must derive only from cell coordinates (rng.MixSeed).
package experiments

import (
	"math/rand"
	randv2 "math/rand/v2"
	"time"
)

// BadCell seeds from the scheduler's wall clock: output now depends on
// when the cell ran.
func BadCell() int64 {
	return time.Now().UnixNano() // want `time\.Now in deterministic package`
}

// BadElapsed times the cell from inside the deterministic core.
func BadElapsed(start time.Time) time.Duration {
	return time.Since(start) // want `time\.Since in deterministic package`
}

// BadGlobalRand draws from the process-global source.
func BadGlobalRand() int {
	return rand.Intn(10) // want `global rand\.Intn in deterministic package`
}

// BadGlobalRandV2 does the same through math/rand/v2.
func BadGlobalRandV2() float64 {
	return randv2.Float64() // want `global rand\.Float64 in deterministic package`
}

// GoodSeeded derives its generator from an explicit seed — allowed.
func GoodSeeded(seed int64) int {
	return rand.New(rand.NewSource(seed)).Intn(10)
}

// GoodSeededV2 is the math/rand/v2 equivalent — allowed.
func GoodSeededV2(s0, s1 uint64) float64 {
	return randv2.New(randv2.NewPCG(s0, s1)).Float64()
}
