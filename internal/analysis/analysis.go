package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Finding is one analyzer diagnostic at a source position.
type Finding struct {
	Analyzer   string `json:"analyzer"`
	File       string `json:"file"`
	Line       int    `json:"line"`
	Col        int    `json:"col"`
	Message    string `json:"message"`
	Suppressed bool   `json:"suppressed,omitempty"`
	Reason     string `json:"reason,omitempty"`
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.File, f.Line, f.Col, f.Analyzer, f.Message)
}

// Pass carries one analyzer's view of one package.
type Pass struct {
	Fset  *token.FileSet
	Files []*ast.File
	Info  *types.Info
	Pkg   *types.Package
	Path  string

	analyzer string
	out      *[]Finding
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	*p.out = append(*p.out, Finding{
		Analyzer: p.analyzer,
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Analyzer is one invariant check. Applies gates it by import path so
// an invariant about, say, the deterministic compute core does not
// fire on the daemon's wall-clock ticker.
type Analyzer struct {
	Name      string
	Doc       string
	Invariant string
	Applies   func(pkgPath string) bool
	Run       func(*Pass)
}

// All returns every analyzer in the suite, in canonical order.
func All() []*Analyzer {
	return []*Analyzer{Determinism, MapOrder, Journal, Locks, Ctx, AckErr}
}

// Result is one sagelint run over a set of packages.
type Result struct {
	Packages   int       `json:"packages"`
	Analyzers  []string  `json:"analyzers"`
	Findings   []Finding `json:"findings"`
	Suppressed []Finding `json:"suppressed"`
}

// Run applies the analyzers to every package they cover and partitions
// the diagnostics into live findings and suppressed ones.
func Run(pkgs []*Package, analyzers []*Analyzer) *Result {
	res := &Result{
		Packages:   len(pkgs),
		Findings:   []Finding{},
		Suppressed: []Finding{},
	}
	for _, a := range analyzers {
		res.Analyzers = append(res.Analyzers, a.Name)
	}
	var raw []Finding
	sup := newSuppressions()
	for _, pkg := range pkgs {
		sup.index(pkg)
		for _, a := range analyzers {
			if a.Applies != nil && !a.Applies(pkg.ImportPath) {
				continue
			}
			pass := &Pass{
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Info:     pkg.Info,
				Pkg:      pkg.Types,
				Path:     pkg.ImportPath,
				analyzer: a.Name,
				out:      &raw,
			}
			a.Run(pass)
		}
	}
	for _, f := range raw {
		if reason, ok := sup.match(f); ok {
			f.Suppressed = true
			f.Reason = reason
			res.Suppressed = append(res.Suppressed, f)
		} else {
			res.Findings = append(res.Findings, f)
		}
	}
	sortFindings(res.Findings)
	sortFindings(res.Suppressed)
	return res
}

func sortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})
}

// suppression is one parsed //lint:ignore comment.
type suppression struct {
	checks []string
	reason string
}

// suppressions indexes //lint:ignore comments by file and the line
// they govern (their own line and the one below, staticcheck-style).
type suppressions struct {
	byLine map[string]map[int][]suppression
}

func newSuppressions() *suppressions {
	return &suppressions{byLine: make(map[string]map[int][]suppression)}
}

func (s *suppressions) index(pkg *Package) {
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				checks, reason, ok := parseIgnore(c.Text)
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				lines := s.byLine[pos.Filename]
				if lines == nil {
					lines = make(map[int][]suppression)
					s.byLine[pos.Filename] = lines
				}
				sup := suppression{checks: checks, reason: reason}
				// An ignore governs findings on its own line (trailing
				// comment) and on the line immediately below it
				// (comment-above style).
				lines[pos.Line] = append(lines[pos.Line], sup)
				lines[pos.Line+1] = append(lines[pos.Line+1], sup)
			}
		}
	}
}

func (s *suppressions) match(f Finding) (reason string, ok bool) {
	for _, sup := range s.byLine[f.File][f.Line] {
		for _, c := range sup.checks {
			if c == f.Analyzer {
				return sup.reason, true
			}
		}
	}
	return "", false
}

// parseIgnore parses `//lint:ignore sage/name[,sage/other] reason`.
// The reason is mandatory: a suppression that does not say why is not
// a suppression.
func parseIgnore(text string) (checks []string, reason string, ok bool) {
	text = strings.TrimPrefix(text, "//")
	text = strings.TrimSpace(text)
	rest, found := strings.CutPrefix(text, "lint:ignore ")
	if !found {
		return nil, "", false
	}
	list, reason, found := strings.Cut(strings.TrimSpace(rest), " ")
	reason = strings.TrimSpace(reason)
	if !found || reason == "" {
		return nil, "", false
	}
	return strings.Split(list, ","), reason, true
}

// pathIn reports whether pkgPath is one of the named repo packages.
// Matching is by path suffix so the fixture packages under
// testdata/src/<analyzer>/internal/<pkg> are covered by the same
// applicability rule as the real tree.
func pathIn(pkgPath string, names ...string) bool {
	for _, n := range names {
		if pkgPath == n || strings.HasSuffix(pkgPath, "/"+n) {
			return true
		}
	}
	return false
}
