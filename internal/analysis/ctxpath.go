package analysis

import (
	"go/ast"
	"go/types"
)

// Ctx pins the context-propagation half of the PR 6 fault model: the
// gateway's per-attempt deadlines and cancellation only work if every
// request-serving function derives its context from the caller. A
// context.Background() (or TODO()) inside a function that already has
// a context.Context or *http.Request in its signature severs the
// deadline chain — a stalled upstream then hangs forever instead of
// failing over. Lifecycle setup (health-loop roots, compatibility
// wrappers without a ctx parameter) is out of scope by construction.
var Ctx = &Analyzer{
	Name:      "sage/ctx",
	Doc:       "no context.Background()/TODO() in request-scoped gateway/replica/daemon code",
	Invariant: "Fault model: deadlines and cancellation flow from the caller",
	Applies: func(p string) bool {
		return pathIn(p, "internal/gateway", "internal/replica", "internal/daemon")
	},
	Run: runCtx,
}

func runCtx(pass *Pass) {
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkCtxFunc(pass, fd.Type, fd.Body, false)
		}
	}
}

// checkCtxFunc walks one function. scoped means a caller context is in
// scope — either this function's own signature carries one, or it is a
// literal closing over a request-scoped enclosing function.
func checkCtxFunc(pass *Pass, ft *ast.FuncType, body *ast.BlockStmt, enclosingScoped bool) {
	scoped := enclosingScoped || requestScoped(pass, ft)
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			checkCtxFunc(pass, n.Type, n.Body, scoped)
			return false
		case *ast.CallExpr:
			if !scoped {
				return true
			}
			sel, ok := n.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pn, ok := pass.Info.Uses[id].(*types.PkgName)
			if !ok || pn.Imported().Path() != "context" {
				return true
			}
			if sel.Sel.Name == "Background" || sel.Sel.Name == "TODO" {
				pass.Reportf(n.Pos(),
					"context.%s in a request-scoped function: derive from the caller's context so deadlines and cancellation propagate (the fault model depends on it)",
					sel.Sel.Name)
			}
		}
		return true
	})
}

// requestScoped reports whether the signature carries a caller context:
// a context.Context or *http.Request parameter.
func requestScoped(pass *Pass, ft *ast.FuncType) bool {
	if ft.Params == nil {
		return false
	}
	for _, field := range ft.Params.List {
		t := pass.Info.TypeOf(field.Type)
		if t == nil {
			continue
		}
		if isNamed(t, "context", "Context") {
			return true
		}
		if ptr, ok := t.(*types.Pointer); ok && isNamed(ptr.Elem(), "net/http", "Request") {
			return true
		}
	}
	return false
}

func isNamed(t types.Type, pkg, name string) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == pkg && obj.Name() == name
}
