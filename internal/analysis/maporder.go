package analysis

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"
)

// MapOrder pins the "Canonical bytes" invariant: store WAL records and
// audit/digest preimages are canonical encodings, byte-for-byte stable
// across runs. Go map iteration order is deliberately randomized, so a
// `range someMap` whose body feeds a canonical encoder (core.Append*,
// CanonicalBytes, Encode, Digest) or a hash (crypto/*, hash/*) would
// make the "canonical" bytes differ run to run. Iterate a sorted key
// slice instead (see Bundle.FeatureKeys).
var MapOrder = &Analyzer{
	Name:      "sage/maporder",
	Doc:       "forbid map iteration feeding canonical encoders or digests",
	Invariant: "Canonical bytes: encodings are map-order-independent",
	Applies: func(p string) bool {
		return pathIn(p, "internal/core", "internal/store")
	},
	Run: runMapOrder,
}

var canonicalFuncRe = regexp.MustCompile(`^(Append[A-Z].*|CanonicalBytes|Digest|Encode.*)$`)

func runMapOrder(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := pass.Info.TypeOf(rng.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			if sink := canonicalSink(pass, rng.Body); sink != "" {
				pass.Reportf(rng.Pos(),
					"map iteration feeds canonical encoding (%s): iteration order is randomized, so the bytes are not canonical — iterate sorted keys instead",
					sink)
			}
			return true
		})
	}
}

// canonicalSink returns the name of the first canonical-encoding or
// hashing call inside body, or "" if there is none.
func canonicalSink(pass *Pass, body ast.Node) string {
	var sink string
	ast.Inspect(body, func(n ast.Node) bool {
		if sink != "" {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		var callee *ast.Ident
		switch fun := call.Fun.(type) {
		case *ast.Ident:
			callee = fun
		case *ast.SelectorExpr:
			callee = fun.Sel
		default:
			return true
		}
		fn, ok := pass.Info.Uses[callee].(*types.Func)
		if !ok || fn.Pkg() == nil {
			return true
		}
		path := fn.Pkg().Path()
		switch {
		case pathIn(path, "internal/core", "internal/store") && canonicalFuncRe.MatchString(fn.Name()):
			sink = fn.Name()
		case strings.HasPrefix(path, "crypto/") || path == "hash" || strings.HasPrefix(path, "hash/"):
			sink = path + "." + fn.Name()
		}
		return true
	})
	return sink
}
