package pipeline

import (
	"repro/internal/data"
	"repro/internal/ml"
	"repro/internal/rng"
	"repro/internal/validation"
)

// MSEValidator validates regression pipelines against an MSE target
// using the loss SLAed validator (Listing 2). If ERMTrainer is non-nil
// it is used to fit the empirical risk minimizer on the training set for
// the REJECT test (valid for convex classes; leave nil for NNs).
type MSEValidator struct {
	// Target is the maximum tolerated MSE (τ_loss).
	Target float64
	// B bounds each squared error (labels in [0,1] ⇒ B = 1).
	B float64
	// ERMTrainer optionally fits fˆ for REJECT.
	ERMTrainer Trainer
}

// Validate implements Validator.
func (v MSEValidator) Validate(m ml.Model, test, train *data.Dataset, cfg validation.Config, r *rng.RNG) (validation.Decision, float64) {
	lv := validation.LossValidator{Config: cfg, Target: v.Target, B: v.B}
	testLosses := squaredLosses(m, test, v.B)
	var ermLosses []float64
	if v.ERMTrainer != nil && train != nil && train.Len() > 0 {
		erm := v.ERMTrainer.Train(train, cfg.Cost(), r)
		ermLosses = squaredLosses(erm, train, v.B)
	}
	decision := lv.Validate(testLosses, ermLosses, r)
	return decision, ml.MSE(m, test)
}

// Name implements Validator.
func (MSEValidator) Name() string { return "mse" }

// squaredLosses returns per-example squared errors clipped to [0, b].
func squaredLosses(m ml.Model, ds *data.Dataset, b float64) []float64 {
	out := make([]float64, ds.Len())
	for i, ex := range ds.Examples {
		d := m.Predict(ex.Features) - ex.Label
		l := d * d
		if l > b {
			l = b
		}
		out[i] = l
	}
	return out
}

// AccuracyValidator validates classification pipelines against an
// accuracy target using Clopper–Pearson bounds (Appendix B.2). The
// REJECT test needs the best empirical classifier, which is
// computationally hard in general; it is skipped (as for the paper's
// NNs) unless ERMTrainer is provided.
type AccuracyValidator struct {
	// Target is the minimum required accuracy (τ_acc).
	Target float64
	// ERMTrainer optionally fits an approximate best classifier for
	// REJECT.
	ERMTrainer Trainer
}

// Validate implements Validator.
func (v AccuracyValidator) Validate(m ml.Model, test, train *data.Dataset, cfg validation.Config, r *rng.RNG) (validation.Decision, float64) {
	av := validation.AccuracyValidator{Config: cfg, Target: v.Target}
	correct := countCorrect(m, test)
	bestCorrect, nTrain := -1, 0
	if v.ERMTrainer != nil && train != nil && train.Len() > 0 {
		erm := v.ERMTrainer.Train(train, cfg.Cost(), r)
		bestCorrect = countCorrect(erm, train)
		nTrain = train.Len()
	}
	decision := av.Validate(correct, test.Len(), bestCorrect, nTrain, r)
	return decision, ml.Accuracy(m, test)
}

// Name implements Validator.
func (AccuracyValidator) Name() string { return "accuracy" }

// countCorrect returns the number of correct thresholded predictions.
func countCorrect(m ml.Model, ds *data.Dataset) int {
	correct := 0
	for _, ex := range ds.Examples {
		pred := 0.0
		if m.Predict(ex.Features) >= 0.5 {
			pred = 1
		}
		if pred == ex.Label {
			correct++
		}
	}
	return correct
}
