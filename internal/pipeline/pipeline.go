// Package pipeline implements Sage's (ε, δ)-DP training pipelines
// (Fig. 2, §3.1): the TFX-like Preprocess → Train → Validate structure
// where the pipeline's privacy parameters, assigned by Sage at runtime,
// are split across the stages (ε/3 each when all three stages consume
// budget), and validation is one of the SLAed validators of §3.3.
package pipeline

import (
	"fmt"

	"repro/internal/data"
	"repro/internal/ml"
	"repro/internal/privacy"
	"repro/internal/rng"
	"repro/internal/validation"
)

// Trainer trains a model under a DP budget. Implementations wrap the ML
// substrate's DP algorithms (AdaSSP, DP-SGD) or their non-private
// counterparts (budget ignored).
type Trainer interface {
	// Train returns a model trained on ds within budget b.
	Train(ds *data.Dataset, b privacy.Budget, r *rng.RNG) ml.Model
	// Name identifies the trainer in logs and experiment tables.
	Name() string
	// IsDP reports whether training consumes privacy budget.
	IsDP() bool
}

// Validator wraps an SLAed validator for a concrete quality metric. It
// receives the test set, and optionally the training set for REJECT
// tests that need the empirical risk minimizer.
type Validator interface {
	// Validate returns the decision and the DP estimate of the quality
	// metric (for reporting).
	Validate(m ml.Model, test, train *data.Dataset, cfg validation.Config, r *rng.RNG) (validation.Decision, float64)
	// Name identifies the metric ("mse", "accuracy").
	Name() string
}

// Pipeline is one (ε, δ)-DP training pipeline.
type Pipeline struct {
	// Name identifies the pipeline ("taxi-lr", "criteo-nn", ...).
	Name string
	// Trainer is the (DP) training stage.
	Trainer Trainer
	// Validator is the SLAed validation stage.
	Validator Validator
	// Mode selects the validation discipline (Table 2 columns);
	// defaults to ModeSage.
	Mode validation.Mode
	// Eta is the validator's total failure probability (default 0.05).
	Eta float64
	// TrainFrac is the train::test split (default 0.9, the paper's).
	TrainFrac float64
	// Preprocess optionally transforms the dataset with a DP budget
	// (e.g. Listing 1's dp_group_by_mean). Nil means no preprocessing
	// stage, in which case ε splits between training and validation
	// only.
	Preprocess func(ds *data.Dataset, epsilon float64, r *rng.RNG) *data.Dataset
}

// Result is the outcome of one pipeline run.
type Result struct {
	Model    ml.Model
	Decision validation.Decision
	// Quality is the DP estimate of the metric computed during
	// validation (an MSE or an accuracy; direction depends on the
	// validator).
	Quality float64
	// Spent is the privacy budget actually consumed.
	Spent privacy.Budget
	// TrainSize and TestSize record the split sizes.
	TrainSize, TestSize int
}

// Run executes the pipeline on ds within budget. The ε split follows
// Fig. 2: with a preprocessing stage each of the three stages gets ε/3;
// without one, training and validation each get ε/2. δ goes entirely to
// training (the validators are (ε, 0)-DP). Non-DP trainers leave the
// training share unspent.
func (p *Pipeline) Run(ds *data.Dataset, budget privacy.Budget, r *rng.RNG) (Result, error) {
	if p.Trainer == nil || p.Validator == nil {
		return Result{}, fmt.Errorf("pipeline %q: missing trainer or validator", p.Name)
	}
	if err := budget.Validate(); err != nil {
		return Result{}, err
	}
	eta := p.Eta
	if eta == 0 {
		eta = 0.05
	}
	trainFrac := p.TrainFrac
	if trainFrac == 0 {
		trainFrac = 0.9
	}

	stages := 2.0
	if p.Preprocess != nil {
		stages = 3.0
	}
	epsShare := budget.Epsilon / stages

	spent := privacy.Zero
	work := ds
	if p.Preprocess != nil {
		work = p.Preprocess(ds, epsShare, r)
		spent = spent.Add(privacy.Budget{Epsilon: epsShare})
	}

	train, test := work.Split(trainFrac, r)

	trainBudget := privacy.Budget{Epsilon: epsShare, Delta: budget.Delta}
	model := p.Trainer.Train(train, trainBudget, r)
	if p.Trainer.IsDP() {
		spent = spent.Add(trainBudget)
	}

	cfg := validation.Config{Mode: p.Mode, Eta: eta, Epsilon: epsShare}
	decision, quality := p.Validator.Validate(model, test, train, cfg, r)
	spent = spent.Add(cfg.Cost())

	return Result{
		Model:     model,
		Decision:  decision,
		Quality:   quality,
		Spent:     spent,
		TrainSize: train.Len(),
		TestSize:  test.Len(),
	}, nil
}
