package pipeline

import (
	"math"
	"testing"

	"repro/internal/data"
	"repro/internal/ml"
	"repro/internal/privacy"
	"repro/internal/rng"
	"repro/internal/taxi"
	"repro/internal/validation"
)

// taxiData caches a featurized synthetic taxi dataset for the tests.
var taxiData = taxi.Pipeline(200000, 0, 24*30, 0, 0, 99)

func taxiLRPipeline(target float64, mode validation.Mode) *Pipeline {
	return &Pipeline{
		Name:    "taxi-lr",
		Trainer: AdaSSPTrainer{Rho: 0.1, FeatureBound: 2.5, LabelBound: 1},
		Validator: MSEValidator{
			Target: target, B: 1,
			ERMTrainer: RidgeTrainer{Lambda: 1e-4},
		},
		Mode: mode,
	}
}

func TestPipelineRunAcceptsEasyTarget(t *testing.T) {
	p := taxiLRPipeline(0.0085, validation.ModeSage) // above-naive target: easy
	res, err := p.Run(taxiData, privacy.MustBudget(1, 1e-6), rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Decision != validation.Accept {
		t.Errorf("decision = %v, want ACCEPT (quality %v)", res.Decision, res.Quality)
	}
	if res.Quality <= 0 || res.Quality > 0.0085 {
		t.Errorf("quality = %v", res.Quality)
	}
	if res.TrainSize+res.TestSize != taxiData.Len() {
		t.Error("split sizes do not add up")
	}
	// Split should be 90::10.
	if math.Abs(float64(res.TrainSize)-0.9*float64(taxiData.Len())) > 1 {
		t.Errorf("train size = %d", res.TrainSize)
	}
}

func TestPipelineRejectsImpossibleTarget(t *testing.T) {
	// Pure-noise labels: the best achievable MSE is ≈ 0.25, so a target
	// of 0.1 is provably unreachable and the ERM-based REJECT test
	// fires once the Hoeffding band is narrow enough.
	noise := &data.Dataset{}
	gen := rng.New(40)
	for i := 0; i < 30000; i++ {
		y := 0.0
		if gen.Bool(0.5) {
			y = 1
		}
		noise.Append(data.Example{Features: []float64{gen.Float64()}, Label: y})
	}
	p := &Pipeline{
		Name:    "noise-lr",
		Trainer: AdaSSPTrainer{Rho: 0.1, FeatureBound: 1.5, LabelBound: 1},
		Validator: MSEValidator{
			Target: 0.1, B: 1,
			ERMTrainer: RidgeTrainer{Lambda: 1e-4},
		},
		Mode: validation.ModeSage,
	}
	res, err := p.Run(noise, privacy.MustBudget(1, 1e-6), rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	if res.Decision != validation.Reject {
		t.Errorf("decision = %v (quality %v), want REJECT", res.Decision, res.Quality)
	}
}

func TestPipelineRetriesOnSmallData(t *testing.T) {
	p := taxiLRPipeline(0.004, validation.ModeSage)
	small := taxiData.Head(300)
	res, err := p.Run(small, privacy.MustBudget(1, 1e-6), rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	if res.Decision != validation.Retry {
		t.Errorf("decision = %v, want RETRY on 300 samples", res.Decision)
	}
}

func TestPipelineBudgetAccounting(t *testing.T) {
	// DP trainer + DP validator, no preprocessing: ε/2 + ε/2 = ε.
	p := taxiLRPipeline(0.007, validation.ModeSage)
	res, err := p.Run(taxiData, privacy.MustBudget(0.8, 1e-6), rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Spent.Epsilon-0.8) > 1e-9 {
		t.Errorf("spent ε = %v, want 0.8", res.Spent.Epsilon)
	}
	if res.Spent.Delta != 1e-6 {
		t.Errorf("spent δ = %v", res.Spent.Delta)
	}
}

func TestPipelineNPTrainerSpendsOnlyValidation(t *testing.T) {
	p := &Pipeline{
		Name:      "taxi-lr-np",
		Trainer:   RidgeTrainer{Lambda: 1e-4},
		Validator: MSEValidator{Target: 0.007, B: 1},
		Mode:      validation.ModeSage,
	}
	res, err := p.Run(taxiData, privacy.MustBudget(1, 1e-6), rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Spent.Epsilon-0.5) > 1e-9 {
		t.Errorf("spent ε = %v, want 0.5 (validation share only)", res.Spent.Epsilon)
	}
}

func TestPipelineWithPreprocessing(t *testing.T) {
	called := false
	p := taxiLRPipeline(0.007, validation.ModeSage)
	p.Preprocess = func(ds *data.Dataset, eps float64, r *rng.RNG) *data.Dataset {
		called = true
		if math.Abs(eps-1.0/3) > 1e-9 {
			t.Errorf("preprocess ε = %v, want 1/3", eps)
		}
		return ds
	}
	res, err := p.Run(taxiData, privacy.MustBudget(1, 1e-6), rng.New(6))
	if err != nil {
		t.Fatal(err)
	}
	if !called {
		t.Fatal("preprocess not invoked")
	}
	if math.Abs(res.Spent.Epsilon-1.0) > 1e-9 {
		t.Errorf("spent ε = %v, want 1 (three thirds)", res.Spent.Epsilon)
	}
}

func TestPipelineValidation(t *testing.T) {
	p := &Pipeline{Name: "broken"}
	if _, err := p.Run(taxiData, privacy.MustBudget(1, 0), rng.New(7)); err == nil {
		t.Error("missing trainer should error")
	}
	p2 := taxiLRPipeline(0.007, validation.ModeSage)
	if _, err := p2.Run(taxiData, privacy.Budget{Epsilon: -1}, rng.New(8)); err == nil {
		t.Error("invalid budget should error")
	}
}

func TestSGDTrainerKinds(t *testing.T) {
	ds := &data.Dataset{}
	gen := rng.New(9)
	for i := 0; i < 500; i++ {
		x := []float64{gen.Float64(), gen.Float64()}
		y := 0.0
		if x[0] > 0.5 {
			y = 1
		}
		ds.Append(data.Example{Features: x, Label: y})
	}
	for _, kind := range []ModelKind{KindLogistic, KindLinear, KindMLPRegression, KindMLPClassification} {
		tr := SGDTrainer{
			Kind: kind, Dim: 2, Hidden: []int{4},
			LearningRate: 0.1, Epochs: 1, BatchSize: 32, InitSeed: 1,
		}
		m := tr.Train(ds, privacy.Zero, rng.New(10))
		if m == nil {
			t.Fatalf("kind %d returned nil model", kind)
		}
		out := m.Predict([]float64{0.5, 0.5})
		if math.IsNaN(out) || math.IsInf(out, 0) {
			t.Errorf("kind %d predicts %v", kind, out)
		}
		if tr.IsDP() {
			t.Errorf("kind %d should not be DP", kind)
		}
	}
	dp := SGDTrainer{
		Kind: KindLogistic, Dim: 2,
		LearningRate: 0.1, Epochs: 1, BatchSize: 32,
		DP: true, ClipNorm: 1, InitSeed: 1,
	}
	if !dp.IsDP() {
		t.Error("DP trainer should report IsDP")
	}
	if m := dp.Train(ds, privacy.MustBudget(1, 1e-6), rng.New(11)); m == nil {
		t.Fatal("DP training returned nil")
	}
	// Names are distinct and stable.
	if dp.Name() != "dpsgd-logreg" {
		t.Errorf("Name = %q", dp.Name())
	}
}

func TestTrainerOnEmptyDataset(t *testing.T) {
	tr := SGDTrainer{Kind: KindLogistic, Dim: 3, LearningRate: 0.1, Epochs: 1, BatchSize: 8, InitSeed: 1}
	m := tr.Train(&data.Dataset{}, privacy.Zero, rng.New(12))
	if m == nil {
		t.Fatal("empty-data training should still return a model")
	}
}

func TestAccuracyValidatorDecision(t *testing.T) {
	// Build a trivially separable classification set.
	ds := &data.Dataset{}
	gen := rng.New(13)
	for i := 0; i < 20000; i++ {
		x := gen.Float64()
		y := 0.0
		if x > 0.5 {
			y = 1
		}
		ds.Append(data.Example{Features: []float64{x}, Label: y})
	}
	p := &Pipeline{
		Name: "sep",
		Trainer: SGDTrainer{
			Kind: KindLogistic, Dim: 1,
			LearningRate: 1, Epochs: 5, BatchSize: 64, InitSeed: 2,
		},
		Validator: AccuracyValidator{Target: 0.8},
		Mode:      validation.ModeSage,
	}
	res, err := p.Run(ds, privacy.MustBudget(1, 1e-6), rng.New(14))
	if err != nil {
		t.Fatal(err)
	}
	if res.Decision != validation.Accept {
		t.Errorf("decision = %v (quality %v), want ACCEPT", res.Decision, res.Quality)
	}
	if res.Quality < 0.8 {
		t.Errorf("accuracy = %v", res.Quality)
	}
}

func TestNoSLAPipelineAcceptsSmallData(t *testing.T) {
	// Table 2's mechanism: No SLA accepts on tiny test sets where Sage
	// retries.
	pNo := taxiLRPipeline(0.006, validation.ModeNoSLA)
	pSage := taxiLRPipeline(0.006, validation.ModeSage)
	small := taxiData.Head(2000)
	accepts := 0
	for i := 0; i < 10; i++ {
		res, err := pNo.Run(small, privacy.MustBudget(1, 1e-6), rng.New(uint64(20+i)))
		if err != nil {
			t.Fatal(err)
		}
		if res.Decision == validation.Accept {
			accepts++
		}
	}
	if accepts < 3 {
		t.Errorf("No SLA accepted only %d/10 on small data", accepts)
	}
	res, err := pSage.Run(small, privacy.MustBudget(1, 1e-6), rng.New(30))
	if err != nil {
		t.Fatal(err)
	}
	if res.Decision == validation.Accept {
		t.Error("Sage should not accept a marginal target on 200 test samples")
	}
}

func TestMSEValidatorQualityMatchesModel(t *testing.T) {
	m := ml.NaiveMeanModel(taxiData)
	v := MSEValidator{Target: 0.01, B: 1}
	cfg := validation.Config{Mode: validation.ModeSage, Eta: 0.05, Epsilon: 1}
	_, q := v.Validate(m, taxiData, nil, cfg, rng.New(31))
	if math.Abs(q-ml.MSE(m, taxiData)) > 1e-12 {
		t.Errorf("reported quality %v != true MSE", q)
	}
}
