package pipeline

import (
	"math"
	"testing"

	"repro/internal/data"
	"repro/internal/privacy"
	"repro/internal/rng"
	"repro/internal/taxi"
	"repro/internal/validation"
)

// avgSpeedPipeline is Table 1's Avg.Speed pipeline at hour granularity.
// Speeds are recovered from the distance and duration of the raw label
// via a synthetic value function for test purposes.
func avgSpeedPipeline(target float64) *StatisticsPipeline {
	return &StatisticsPipeline{
		Name: "taxi-avg-speed-hour",
		Kind: GroupMean,
		Key:  func(ex data.Example) int { return int(ex.Time % 24) },
		// Use the precomputed speed feature (scaled [0,1] → km/h).
		Value:      func(ex data.Example) float64 { return ex.Features[1] * 45 },
		NumKeys:    24,
		ValueRange: 45,
		Target:     target,
		Mode:       validation.ModeSage,
	}
}

func TestStatisticsPipelineAccepts(t *testing.T) {
	ds := taxi.Pipeline(200000, 0, 24*30, 0, 0, 61)
	p := avgSpeedPipeline(5.0) // ±5 km/h, an easy Table 1 target
	res, err := p.Run(ds, privacy.MustBudget(0.5, 0), rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Decision != validation.Accept {
		t.Fatalf("decision = %v (min group %v)", res.Decision, res.MinGroupSize)
	}
	if len(res.Values) != 24 {
		t.Fatalf("values = %d keys", len(res.Values))
	}
	// Rush hour must be slower than night in the DP release.
	if res.Values[18] >= res.Values[2] {
		t.Errorf("6pm speed %v not below 2am speed %v", res.Values[18], res.Values[2])
	}
	if math.Abs(res.Spent.Epsilon-0.5) > 1e-9 {
		t.Errorf("spent ε = %v", res.Spent.Epsilon)
	}
}

func TestStatisticsPipelineRetriesTightTarget(t *testing.T) {
	ds := taxi.Pipeline(5000, 0, 24*7, 0, 0, 62)
	p := avgSpeedPipeline(1.0) // ±1 km/h on tiny data: RETRY
	res, err := p.Run(ds, privacy.MustBudget(0.5, 0), rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	if res.Decision != validation.Retry {
		t.Errorf("decision = %v, want RETRY", res.Decision)
	}
}

func TestStatisticsPipelineTargetSweep(t *testing.T) {
	// Table 1's Avg.Speed targets: looser targets accept with less
	// data. Sweep and check monotonicity of decisions.
	ds := taxi.Pipeline(60000, 0, 24*14, 0, 0, 63)
	prevAccepted := true
	for _, target := range []float64{15, 10, 7.5, 5, 1} {
		p := avgSpeedPipeline(target)
		res, err := p.Run(ds, privacy.MustBudget(0.5, 0), rng.New(3))
		if err != nil {
			t.Fatal(err)
		}
		accepted := res.Decision == validation.Accept
		if accepted && !prevAccepted {
			t.Errorf("target %v accepted although a looser target retried", target)
		}
		prevAccepted = accepted
	}
}

func TestHistogramStatisticsPipeline(t *testing.T) {
	// Criteo-style Counts pipeline: frequencies of a categorical.
	ds := &data.Dataset{}
	gen := rng.New(64)
	for i := 0; i < 300000; i++ {
		ds.Append(data.Example{
			Features: []float64{float64(gen.IntN(4))},
			Time:     int64(i / 1000),
		})
	}
	p := &StatisticsPipeline{
		Name:    "counts",
		Kind:    Frequencies,
		Key:     func(ex data.Example) int { return int(ex.Features[0]) },
		NumKeys: 4,
		Target:  0.05, // Table 1's mid error target
		Mode:    validation.ModeSage,
	}
	res, err := p.Run(ds, privacy.MustBudget(0.5, 0), rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	if res.Decision != validation.Accept {
		t.Fatalf("decision = %v", res.Decision)
	}
	total := 0.0
	for _, f := range res.Values {
		total += f
		if math.Abs(f-0.25) > 0.05 {
			t.Errorf("frequency %v, want ~0.25", f)
		}
	}
	if math.Abs(total-1) > 0.05 {
		t.Errorf("frequencies sum to %v", total)
	}
}

func TestStatisticsPipelineValidation(t *testing.T) {
	ds := taxi.Pipeline(100, 0, 24, 0, 0, 65)
	bad := []*StatisticsPipeline{
		{Name: "no-key", NumKeys: 4},
		{Name: "no-value", Kind: GroupMean, Key: func(data.Example) int { return 0 }, NumKeys: 4},
	}
	for _, p := range bad {
		if _, err := p.Run(ds, privacy.MustBudget(0.5, 0), rng.New(5)); err == nil {
			t.Errorf("%s should error", p.Name)
		}
	}
	ok := avgSpeedPipeline(5)
	if _, err := ok.Run(ds, privacy.Budget{Epsilon: -1}, rng.New(6)); err == nil {
		t.Error("invalid budget should error")
	}
}
