package pipeline

import (
	"repro/internal/data"
	"repro/internal/ml"
	"repro/internal/privacy"
	"repro/internal/rng"
)

// AdaSSPTrainer trains DP linear regression (Table 1's Taxi LR pipeline:
// AdaSSP with ρ = 0.1).
type AdaSSPTrainer struct {
	Rho          float64 // regularization failure probability (paper: 0.1)
	FeatureBound float64 // L2 bound on feature vectors
	LabelBound   float64 // bound on |label|
}

// Train implements Trainer.
func (t AdaSSPTrainer) Train(ds *data.Dataset, b privacy.Budget, r *rng.RNG) ml.Model {
	cfg := ml.AdaSSPConfig{
		Budget:       b,
		Rho:          t.Rho,
		FeatureBound: t.FeatureBound,
		LabelBound:   t.LabelBound,
	}
	return ml.TrainAdaSSP(ds, cfg, r)
}

// Name implements Trainer.
func (AdaSSPTrainer) Name() string { return "adassp-lr" }

// IsDP implements Trainer.
func (AdaSSPTrainer) IsDP() bool { return true }

// RidgeTrainer is the non-private linear regression baseline (Fig. 5's
// "LR NP"). The budget is ignored.
type RidgeTrainer struct {
	Lambda float64
}

// Train implements Trainer.
func (t RidgeTrainer) Train(ds *data.Dataset, _ privacy.Budget, _ *rng.RNG) ml.Model {
	return ml.TrainRidge(ds, ml.RidgeConfig{Lambda: t.Lambda})
}

// Name implements Trainer.
func (RidgeTrainer) Name() string { return "ridge-np" }

// IsDP implements Trainer.
func (RidgeTrainer) IsDP() bool { return false }

// ModelKind selects the architecture an SGDTrainer builds.
type ModelKind int

const (
	// KindLogistic is logistic regression (Criteo LG).
	KindLogistic ModelKind = iota
	// KindLinear is an SGD-trained linear regressor.
	KindLinear
	// KindMLPRegression is an MLP with a regression head (Taxi NN).
	KindMLPRegression
	// KindMLPClassification is an MLP with a sigmoid head (Criteo NN).
	KindMLPClassification
)

// SGDTrainer trains SGD-based models, with or without DP (Table 1's
// DP SGD pipelines: Taxi NN, Criteo LG, Criteo NN).
type SGDTrainer struct {
	Kind   ModelKind
	Dim    int   // feature dimensionality
	Hidden []int // hidden layer widths for MLP kinds

	LearningRate float64
	Momentum     float64
	Epochs       int
	BatchSize    int

	DP       bool
	ClipNorm float64
	// InitSeed seeds model initialization so runs are reproducible.
	InitSeed uint64
}

// build constructs the zero/He-initialized model.
func (t SGDTrainer) build() ml.GradModel {
	switch t.Kind {
	case KindLogistic:
		return ml.NewLogisticRegression(t.Dim)
	case KindLinear:
		return ml.NewSGDLinearRegression(t.Dim)
	case KindMLPRegression:
		return ml.NewMLP(ml.Regression, t.Dim, t.Hidden, rng.New(t.InitSeed))
	default:
		return ml.NewMLP(ml.BinaryClassification, t.Dim, t.Hidden, rng.New(t.InitSeed))
	}
}

// Train implements Trainer.
func (t SGDTrainer) Train(ds *data.Dataset, b privacy.Budget, r *rng.RNG) ml.Model {
	cfg := ml.SGDConfig{
		LearningRate: t.LearningRate,
		Momentum:     t.Momentum,
		Epochs:       t.Epochs,
		BatchSize:    t.BatchSize,
	}
	if t.DP {
		cfg.DP = true
		cfg.ClipNorm = t.ClipNorm
		cfg.Budget = b
	}
	model := t.build()
	if ds.Len() == 0 {
		return model
	}
	return ml.TrainSGD(model, ds, cfg, r)
}

// Name implements Trainer.
func (t SGDTrainer) Name() string {
	kind := map[ModelKind]string{
		KindLogistic: "logreg", KindLinear: "linreg-sgd",
		KindMLPRegression: "mlp-reg", KindMLPClassification: "mlp-clf",
	}[t.Kind]
	if t.DP {
		return "dpsgd-" + kind
	}
	return "sgd-" + kind
}

// IsDP implements Trainer.
func (t SGDTrainer) IsDP() bool { return t.DP }
