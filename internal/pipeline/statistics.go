package pipeline

import (
	"fmt"

	"repro/internal/data"
	"repro/internal/privacy"
	"repro/internal/rng"
	"repro/internal/stats"
	"repro/internal/validation"
)

// StatisticsPipeline is the statistics counterpart of the model
// Training Pipeline: Table 1's "Avg.Speed x3" and "Counts x26" rows.
// It releases a DP sum-based statistic (per-key averages or normalized
// histograms) and validates the release's absolute error against a
// target with the Appendix B.3 SLAed error validator. Unlike model
// pipelines there is no train/test split and no REJECT: more data
// always reaches the target eventually.
type StatisticsPipeline struct {
	// Name identifies the pipeline ("taxi-avg-speed-hour", ...).
	Name string
	// Kind selects the statistic.
	Kind StatKind
	// Key extracts the group key from an example (for group-by kinds);
	// must map into [0, NumKeys).
	Key func(data.Example) int
	// Value extracts the value to aggregate (for mean kinds).
	Value func(data.Example) float64
	// NumKeys is the number of groups/buckets.
	NumKeys int
	// ValueRange bounds |Value| (clipped); for histograms the bound is
	// 1 (frequencies).
	ValueRange float64
	// Target is the maximum tolerated absolute error (τ_err).
	Target float64
	// Mode and Eta configure the SLAed error validator.
	Mode validation.Mode
	Eta  float64
}

// StatKind selects the released statistic.
type StatKind int

const (
	// GroupMean releases a DP mean per key (Avg.Speed pipelines).
	GroupMean StatKind = iota
	// Frequencies releases a DP normalized histogram over keys
	// (Criteo Counts pipelines).
	Frequencies
)

// StatResult is a statistics release.
type StatResult struct {
	Decision validation.Decision
	// Values is the per-key DP release (means or frequencies).
	Values []float64
	// Spent is the privacy budget consumed.
	Spent privacy.Budget
	// MinGroupSize is the smallest (noisy) per-key sample count, the
	// quantity that gates the error SLA.
	MinGroupSize float64
}

// Run releases the statistic from ds under budget. Half the ε releases
// the statistic; half runs the SLAed validation (Appendix B.3 splits
// the same way). RETRY means the window is too small for the target.
func (p *StatisticsPipeline) Run(ds *data.Dataset, budget privacy.Budget, r *rng.RNG) (StatResult, error) {
	if p.Key == nil || p.NumKeys <= 0 {
		return StatResult{}, fmt.Errorf("pipeline %q: missing Key or NumKeys", p.Name)
	}
	if p.Kind == GroupMean && (p.Value == nil || p.ValueRange <= 0) {
		return StatResult{}, fmt.Errorf("pipeline %q: group mean needs Value and ValueRange", p.Name)
	}
	if err := budget.Validate(); err != nil {
		return StatResult{}, err
	}
	eta := p.Eta
	if eta == 0 {
		eta = 0.05
	}
	half := budget.Epsilon / 2

	keys := make([]int, ds.Len())
	values := make([]float64, ds.Len())
	counts := make([]int, p.NumKeys)
	for i, ex := range ds.Examples {
		k := p.Key(ex)
		keys[i] = k
		if k >= 0 && k < p.NumKeys {
			counts[k]++
		}
		if p.Value != nil {
			values[i] = p.Value(ex)
		}
	}

	var out StatResult
	bound := p.ValueRange
	switch p.Kind {
	case GroupMean:
		res := stats.DPGroupByMean(keys, values, p.NumKeys, half, p.ValueRange, r)
		out.Values = res.Means
	default:
		out.Values = stats.NormalizedHistogram(keys, p.NumKeys, half, r)
		bound = 1
	}
	out.Spent = privacy.Budget{Epsilon: half}

	// Validate the error of the *worst* (smallest) group: each key's
	// release composes in parallel, so one validator call per key at
	// the same ε suffices; the smallest group binds.
	minCount := ds.Len()
	for _, c := range counts {
		if c < minCount {
			minCount = c
		}
	}
	out.MinGroupSize = float64(minCount)
	v := validation.ErrorValidator{
		Config: validation.Config{Mode: p.Mode, Eta: eta, Epsilon: half},
		Target: p.Target,
		B:      bound,
	}
	out.Spent = out.Spent.Add(v.Cost())
	if v.Accept(minCount, r) {
		out.Decision = validation.Accept
	} else {
		out.Decision = validation.Retry
	}
	return out, nil
}
