package metrics

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Sample is one parsed exposition line. For histograms Name carries
// the full sample name (family_bucket, family_sum, family_count).
type Sample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// Family is one parsed metric family with its declared metadata.
type Family struct {
	Name    string
	Help    string
	Type    string
	Samples []Sample
}

// Families maps family name → parsed family.
type Families map[string]*Family

// Value finds the sample with the given full sample name and exactly
// the given labels (nil means "no labels"), across all families.
func (fs Families) Value(name string, labels map[string]string) (float64, bool) {
	for _, fam := range fs {
		if !sampleBelongsTo(name, fam) {
			continue
		}
		for _, s := range fam.Samples {
			if s.Name == name && labelsEqual(s.Labels, labels) {
				return s.Value, true
			}
		}
	}
	return 0, false
}

// Sum adds up every sample with the given full sample name whose
// labels are a superset of the given subset (nil matches all).
func (fs Families) Sum(name string, subset map[string]string) (total float64, n int) {
	for _, fam := range fs {
		if !sampleBelongsTo(name, fam) {
			continue
		}
		for _, s := range fam.Samples {
			if s.Name != name {
				continue
			}
			match := true
			for k, v := range subset {
				if s.Labels[k] != v {
					match = false
					break
				}
			}
			if match {
				total += s.Value
				n++
			}
		}
	}
	return total, n
}

func labelsEqual(a, b map[string]string) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// sampleBelongsTo reports whether a sample name can appear under the
// family: the family name itself, or the histogram suffixes.
func sampleBelongsTo(sample string, fam *Family) bool {
	if sample == fam.Name {
		return fam.Type != "histogram"
	}
	if fam.Type != "histogram" {
		return false
	}
	rest, ok := strings.CutPrefix(sample, fam.Name)
	if !ok {
		return false
	}
	return rest == "_bucket" || rest == "_sum" || rest == "_count"
}

// Parse reads a Prometheus text-format payload and validates it
// strictly — stricter than Prometheus itself, because it only has to
// accept what TextExpose emits:
//
//   - every sample must belong to a family declared by a preceding
//     # TYPE line (counter, gauge, or histogram);
//   - HELP and TYPE appear at most once per family, TYPE before any
//     sample; no other comment forms, no timestamps;
//   - duplicate series (same sample name + label set) are an error;
//   - counter values must be finite and non-negative;
//   - each histogram series must have cumulative non-decreasing
//     _bucket samples ending at le="+Inf", and _sum/_count samples
//     with _count equal to the +Inf bucket.
func Parse(r io.Reader) (Families, error) {
	fams := make(Families)
	seen := make(map[string]bool) // full sample name + rendered labels
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := parseComment(line, fams); err != nil {
				return nil, fmt.Errorf("line %d: %w", lineNo, err)
			}
			continue
		}
		if err := parseSample(line, fams, seen); err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for _, fam := range fams {
		if fam.Type == "histogram" {
			if err := validateHistogram(fam); err != nil {
				return nil, fmt.Errorf("histogram %s: %w", fam.Name, err)
			}
		}
	}
	return fams, nil
}

func parseComment(line string, fams Families) error {
	fields := strings.SplitN(line, " ", 4)
	if len(fields) < 3 || fields[0] != "#" {
		return fmt.Errorf("malformed comment %q", line)
	}
	kind, name := fields[1], fields[2]
	rest := ""
	if len(fields) == 4 {
		rest = fields[3]
	}
	if !validMetricName(name) {
		return fmt.Errorf("invalid metric name %q", name)
	}
	switch kind {
	case "HELP":
		fam := fams[name]
		if fam == nil {
			fam = &Family{Name: name}
			fams[name] = fam
		}
		if fam.Help != "" {
			return fmt.Errorf("duplicate HELP for %s", name)
		}
		fam.Help = unescapeHelp(rest)
		return nil
	case "TYPE":
		switch rest {
		case "counter", "gauge", "histogram":
		default:
			return fmt.Errorf("unsupported type %q for %s", rest, name)
		}
		fam := fams[name]
		if fam == nil {
			fam = &Family{Name: name}
			fams[name] = fam
		}
		if fam.Type != "" {
			return fmt.Errorf("duplicate TYPE for %s", name)
		}
		if len(fam.Samples) > 0 {
			return fmt.Errorf("TYPE for %s after its samples", name)
		}
		fam.Type = rest
		return nil
	default:
		return fmt.Errorf("unsupported comment kind %q", kind)
	}
}

func parseSample(line string, fams Families, seen map[string]bool) error {
	rest := line
	i := strings.IndexAny(rest, "{ ")
	if i < 0 {
		return fmt.Errorf("malformed sample %q", line)
	}
	name := rest[:i]
	if !validMetricName(name) {
		return fmt.Errorf("invalid sample name %q", name)
	}
	rest = rest[i:]

	labels := map[string]string{}
	if rest[0] == '{' {
		var err error
		labels, rest, err = parseLabels(rest[1:])
		if err != nil {
			return fmt.Errorf("sample %s: %w", name, err)
		}
	}
	rest = strings.TrimPrefix(rest, " ")
	if rest == "" || strings.ContainsAny(rest, " \t") {
		return fmt.Errorf("sample %s: expected exactly one value, got %q (timestamps are not accepted)", name, rest)
	}
	value, err := parseValue(rest)
	if err != nil {
		return fmt.Errorf("sample %s: %w", name, err)
	}

	fam := findFamily(name, fams)
	if fam == nil || fam.Type == "" {
		return fmt.Errorf("sample %s has no preceding # TYPE declaration", name)
	}
	if fam.Type == "counter" && (value < 0 || math.IsInf(value, 0) || math.IsNaN(value)) {
		return fmt.Errorf("counter %s has non-finite or negative value %v", name, value)
	}
	key := name + "|" + canonicalLabels(labels)
	if seen[key] {
		return fmt.Errorf("duplicate series %s{%s}", name, canonicalLabels(labels))
	}
	seen[key] = true
	fam.Samples = append(fam.Samples, Sample{Name: name, Labels: labels, Value: value})
	return nil
}

// findFamily resolves a sample name to its declared family, handling
// histogram suffixes.
func findFamily(sample string, fams Families) *Family {
	if fam := fams[sample]; fam != nil && fam.Type != "histogram" {
		return fam
	}
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		if base, ok := strings.CutSuffix(sample, suffix); ok {
			if fam := fams[base]; fam != nil && fam.Type == "histogram" {
				return fam
			}
		}
	}
	return nil
}

// parseLabels consumes `name="value",...}` and returns the labels and
// the remaining input after the closing brace.
func parseLabels(s string) (map[string]string, string, error) {
	labels := make(map[string]string)
	for {
		if s == "" {
			return nil, "", fmt.Errorf("unterminated label set")
		}
		if s[0] == '}' {
			return labels, s[1:], nil
		}
		eq := strings.IndexByte(s, '=')
		if eq < 0 {
			return nil, "", fmt.Errorf("malformed label in %q", s)
		}
		name := s[:eq]
		if !validLabelName(name) && name != "le" {
			return nil, "", fmt.Errorf("invalid label name %q", name)
		}
		if _, dup := labels[name]; dup {
			return nil, "", fmt.Errorf("duplicate label %q", name)
		}
		s = s[eq+1:]
		if s == "" || s[0] != '"' {
			return nil, "", fmt.Errorf("label %s: unquoted value", name)
		}
		value, rest, err := parseQuoted(s[1:])
		if err != nil {
			return nil, "", fmt.Errorf("label %s: %w", name, err)
		}
		labels[name] = value
		s = rest
		if s != "" && s[0] == ',' {
			s = s[1:]
		}
	}
}

// parseQuoted consumes a label value up to its closing quote,
// resolving \\, \", and \n escapes.
func parseQuoted(s string) (string, string, error) {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			return b.String(), s[i+1:], nil
		case '\\':
			i++
			if i >= len(s) {
				return "", "", fmt.Errorf("truncated escape")
			}
			switch s[i] {
			case '\\':
				b.WriteByte('\\')
			case '"':
				b.WriteByte('"')
			case 'n':
				b.WriteByte('\n')
			default:
				return "", "", fmt.Errorf("unknown escape \\%c", s[i])
			}
		default:
			b.WriteByte(s[i])
		}
	}
	return "", "", fmt.Errorf("unterminated quoted value")
}

func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf", "Inf":
		return math.Inf(+1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

// validateHistogram checks every series of a histogram family:
// cumulative non-decreasing buckets ending at +Inf, with matching
// _sum and _count.
func validateHistogram(fam *Family) error {
	type hseries struct {
		buckets  []Sample
		sum      *Sample
		count    *Sample
		labelSig string
	}
	groups := make(map[string]*hseries)
	group := func(labels map[string]string) *hseries {
		base := make(map[string]string, len(labels))
		for k, v := range labels {
			if k != "le" {
				base[k] = v
			}
		}
		sig := canonicalLabels(base)
		g := groups[sig]
		if g == nil {
			g = &hseries{labelSig: sig}
			groups[sig] = g
		}
		return g
	}
	for i := range fam.Samples {
		s := fam.Samples[i]
		g := group(s.Labels)
		switch s.Name {
		case fam.Name + "_bucket":
			if _, ok := s.Labels["le"]; !ok {
				return fmt.Errorf("series {%s}: bucket without le label", g.labelSig)
			}
			g.buckets = append(g.buckets, s)
		case fam.Name + "_sum":
			g.sum = &fam.Samples[i]
		case fam.Name + "_count":
			g.count = &fam.Samples[i]
		default:
			return fmt.Errorf("unexpected sample %s in histogram family", s.Name)
		}
	}
	for _, g := range groups {
		if len(g.buckets) == 0 || g.sum == nil || g.count == nil {
			return fmt.Errorf("series {%s}: missing _bucket, _sum, or _count", g.labelSig)
		}
		bounds := make([]float64, len(g.buckets))
		for i, b := range g.buckets {
			v, err := parseValue(b.Labels["le"])
			if err != nil || math.IsNaN(v) {
				return fmt.Errorf("series {%s}: bad le %q", g.labelSig, b.Labels["le"])
			}
			bounds[i] = v
		}
		idx := make([]int, len(g.buckets))
		for i := range idx {
			idx[i] = i
		}
		sort.Slice(idx, func(a, b int) bool { return bounds[idx[a]] < bounds[idx[b]] })
		prev := -1.0
		for rank, i := range idx {
			if rank > 0 && g.buckets[i].Value < prev {
				return fmt.Errorf("series {%s}: bucket counts decrease at le=%q", g.labelSig, g.buckets[i].Labels["le"])
			}
			prev = g.buckets[i].Value
		}
		last := g.buckets[idx[len(idx)-1]]
		if !math.IsInf(bounds[idx[len(idx)-1]], +1) {
			return fmt.Errorf("series {%s}: missing le=\"+Inf\" bucket", g.labelSig)
		}
		if last.Value != g.count.Value {
			return fmt.Errorf("series {%s}: +Inf bucket %v != _count %v", g.labelSig, last.Value, g.count.Value)
		}
	}
	return nil
}

// canonicalLabels renders a label map in sorted order for dedup keys
// and error messages.
func canonicalLabels(labels map[string]string) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		writeLabel(&b, Label{Name: k, Value: labels[k]})
	}
	return b.String()
}

func unescapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\n`, "\n")
	return strings.ReplaceAll(s, `\\`, `\`)
}
