package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Label is one name="value" pair attached to a series. Label sets are
// fixed at construction; the hot path never touches them.
type Label struct {
	Name  string
	Value string
}

// Counter is a monotonically non-decreasing cumulative count. The
// zero value is unusable — obtain counters from Registry.Counter.
// All methods are safe on a nil receiver (no-ops / zero).
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous integer value that can go up and down.
// All methods are safe on a nil receiver.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adds d (which may be negative).
func (g *Gauge) Add(d int64) {
	if g == nil {
		return
	}
	g.v.Add(d)
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram counts observations into fixed cumulative buckets.
// Observe is lock-free: a linear scan over the (small, sorted) bounds
// slice, one bucket increment, and a CAS loop folding the observation
// into the float64-bits sum. The zero value is unusable — obtain
// histograms from Registry.Histogram. Methods are nil-receiver safe.
type Histogram struct {
	// bounds are the inclusive upper bounds of each finite bucket, in
	// strictly increasing order. counts has len(bounds)+1 entries; the
	// last is the implicit +Inf bucket.
	bounds []float64
	counts []atomic.Uint64
	sum    atomic.Uint64 // math.Float64bits of the running sum
	// exemplar is the most recent traced observation (see
	// ObserveExemplar) — the bridge from an aggregate latency series to
	// one concrete trace id a debugger can look up.
	exemplar atomic.Pointer[Exemplar]
}

// Exemplar ties one concrete observation to the trace that produced
// it. Histograms keep the most recent one; GET /debug/trace exposes
// the table so "p99 spiked" resolves to "look at this trace".
type Exemplar struct {
	Value   float64 `json:"value"`
	TraceID string  `json:"trace_id"`
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveSince records the seconds elapsed since start. As a deferred
// call it records handler latency without a closure allocation.
func (h *Histogram) ObserveSince(start time.Time) {
	h.Observe(time.Since(start).Seconds())
}

// ObserveExemplar records v and, when traceID is non-empty, replaces
// the histogram's exemplar with it. An empty traceID (tracing
// disabled, or no span in context) is exactly Observe — no exemplar
// write, no allocation — so the untraced hot path keeps its pinned
// budgets.
func (h *Histogram) ObserveExemplar(v float64, traceID string) {
	if h == nil {
		return
	}
	h.Observe(v)
	if traceID != "" {
		h.exemplar.Store(&Exemplar{Value: v, TraceID: traceID})
	}
}

// ObserveSinceExemplar is ObserveExemplar over elapsed seconds.
func (h *Histogram) ObserveSinceExemplar(start time.Time, traceID string) {
	h.ObserveExemplar(time.Since(start).Seconds(), traceID)
}

// Exemplar returns the most recent traced observation, if any.
func (h *Histogram) Exemplar() (Exemplar, bool) {
	if h == nil {
		return Exemplar{}, false
	}
	e := h.exemplar.Load()
	if e == nil {
		return Exemplar{}, false
	}
	return *e, true
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	var n uint64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// ExpBuckets returns n bucket upper bounds starting at start and
// multiplying by factor: the standard shape for latency and size
// histograms. It panics on invalid arguments (programming error).
func ExpBuckets(start, factor float64, n int) []float64 {
	if n < 1 || start <= 0 || factor <= 1 {
		panic("metrics: ExpBuckets requires n >= 1, start > 0, factor > 1")
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// LatencyBuckets is the default duration histogram shape: 100µs to
// ~6.5s in ×2 steps, wide enough to show both a fast in-memory serve
// and a stalled fsync.
func LatencyBuckets() []float64 { return ExpBuckets(100e-6, 2, 17) }

// SizeBuckets is the default shape for small cardinalities (batch
// sizes, cohort sizes): 1 to 1024 in ×2 steps.
func SizeBuckets() []float64 { return ExpBuckets(1, 2, 11) }

// metricType is the exposition TYPE of a family.
type metricType string

const (
	typeCounter   metricType = "counter"
	typeGauge     metricType = "gauge"
	typeHistogram metricType = "histogram"
)

// series is one labeled instance within a family. Exactly one of the
// value fields is set, matching the family type.
type series struct {
	labels []Label
	sig    string // canonical label signature, for dedup + sorting

	counter *Counter
	gauge   *Gauge
	gaugeFn func() float64
	hist    *Histogram
}

// family is every series sharing one metric name.
type family struct {
	name string
	help string
	typ  metricType

	mu     sync.Mutex
	series []*series
}

// Registry holds metric families and renders them. Construction
// methods (Counter, Gauge, GaugeFunc, Histogram) panic on conflicting
// re-registration — a duplicate name+labels, or a name reused with a
// different type or help — because that is a wiring bug, not runtime
// input. A nil *Registry is a valid no-op sink: every constructor
// returns a nil/no-op metric, so components can be built
// uninstrumented.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// Counter registers (or re-resolves nothing — duplicates panic) a
// counter series and returns its handle.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	c := &Counter{}
	r.add(name, help, typeCounter, labels, &series{counter: c})
	return c
}

// Gauge registers a gauge series and returns its handle.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	g := &Gauge{}
	r.add(name, help, typeGauge, labels, &series{gauge: g})
	return g
}

// GaugeFunc registers a gauge series whose value is computed by fn at
// exposition time. fn runs outside all registry locks but must itself
// be safe for concurrent use.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	if r == nil {
		return
	}
	if fn == nil {
		panic("metrics: nil GaugeFunc")
	}
	r.add(name, help, typeGauge, labels, &series{gaugeFn: fn})
}

// Histogram registers a histogram series with the given bucket upper
// bounds (strictly increasing; +Inf is implicit) and returns its
// handle.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	if len(buckets) == 0 {
		panic("metrics: histogram needs at least one bucket bound")
	}
	for i := 1; i < len(buckets); i++ {
		if !(buckets[i] > buckets[i-1]) {
			panic("metrics: histogram bounds must be strictly increasing")
		}
	}
	if math.IsInf(buckets[len(buckets)-1], +1) {
		panic("metrics: +Inf bucket is implicit")
	}
	h := &Histogram{
		bounds: append([]float64(nil), buckets...),
		counts: make([]atomic.Uint64, len(buckets)+1),
	}
	r.add(name, help, typeHistogram, labels, &series{hist: h})
	return h
}

// add validates and inserts one series, panicking on misuse.
func (r *Registry) add(name, help string, typ metricType, labels []Label, s *series) {
	if !validMetricName(name) {
		panic(fmt.Sprintf("metrics: invalid metric name %q", name))
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Name < ls[j].Name })
	for i, l := range ls {
		if !validLabelName(l.Name) || l.Name == "le" {
			panic(fmt.Sprintf("metrics: invalid label name %q on %s", l.Name, name))
		}
		if i > 0 && ls[i-1].Name == l.Name {
			panic(fmt.Sprintf("metrics: duplicate label name %q on %s", l.Name, name))
		}
	}
	s.labels = ls
	s.sig = labelSignature(ls)

	r.mu.Lock()
	fam := r.families[name]
	if fam == nil {
		fam = &family{name: name, help: help, typ: typ}
		r.families[name] = fam
	}
	r.mu.Unlock()

	if fam.typ != typ || fam.help != help {
		panic(fmt.Sprintf("metrics: %s re-registered with conflicting type or help", name))
	}
	fam.mu.Lock()
	defer fam.mu.Unlock()
	for _, prev := range fam.series {
		if prev.sig == s.sig {
			panic(fmt.Sprintf("metrics: duplicate series %s{%s}", name, s.sig))
		}
	}
	fam.series = append(fam.series, s)
}

// TextExpose renders every registered family in the Prometheus text
// exposition format, families and series in deterministic (sorted)
// order. Gauge funcs are invoked outside all registry locks.
func (r *Registry) TextExpose(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, fam := range r.families {
		fams = append(fams, fam)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	var b strings.Builder
	for _, fam := range fams {
		fam.mu.Lock()
		ss := append([]*series(nil), fam.series...)
		fam.mu.Unlock()
		sort.Slice(ss, func(i, j int) bool { return ss[i].sig < ss[j].sig })

		fmt.Fprintf(&b, "# HELP %s %s\n", fam.name, escapeHelp(fam.help))
		fmt.Fprintf(&b, "# TYPE %s %s\n", fam.name, fam.typ)
		for _, s := range ss {
			switch {
			case s.counter != nil:
				writeSample(&b, fam.name, s.labels, nil, strconv.FormatUint(s.counter.Value(), 10))
			case s.gauge != nil:
				writeSample(&b, fam.name, s.labels, nil, strconv.FormatInt(s.gauge.Value(), 10))
			case s.gaugeFn != nil:
				writeSample(&b, fam.name, s.labels, nil, formatFloat(s.gaugeFn()))
			case s.hist != nil:
				writeHistogram(&b, fam.name, s)
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Exemplars returns every histogram series' current exemplar, keyed
// by metric name (plus the canonical {label} signature for labeled
// series). Exemplars ride the /debug/trace JSON payload, not the text
// exposition — the 0.0.4 format has no exemplar syntax and the
// in-repo parser is strict. Nil-registry safe (nil map).
func (r *Registry) Exemplars() map[string]Exemplar {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, fam := range r.families {
		fams = append(fams, fam)
	}
	r.mu.Unlock()

	out := make(map[string]Exemplar)
	for _, fam := range fams {
		fam.mu.Lock()
		ss := append([]*series(nil), fam.series...)
		fam.mu.Unlock()
		for _, s := range ss {
			if s.hist == nil {
				continue
			}
			e, ok := s.hist.Exemplar()
			if !ok {
				continue
			}
			key := fam.name
			if s.sig != "" {
				key = fam.name + "{" + s.sig + "}"
			}
			out[key] = e
		}
	}
	return out
}

// writeHistogram renders one histogram series: cumulative _bucket
// lines ending at le="+Inf", then _sum and _count. Buckets are read
// low-to-high without a lock, so a concurrent Observe can make the
// rendered _count exceed a bucket snapshot — cumulative sums are
// taken from the same pass, so the rendered buckets themselves stay
// non-decreasing and end exactly at _count.
func writeHistogram(b *strings.Builder, name string, s *series) {
	h := s.hist
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i].Load()
		bound := "+Inf"
		if i < len(h.bounds) {
			bound = formatFloat(h.bounds[i])
		}
		writeSample(b, name+"_bucket", s.labels, &Label{Name: "le", Value: bound}, strconv.FormatUint(cum, 10))
	}
	writeSample(b, name+"_sum", s.labels, nil, formatFloat(h.Sum()))
	writeSample(b, name+"_count", s.labels, nil, strconv.FormatUint(cum, 10))
}

// writeSample renders one `name{labels} value` line. extra, when
// non-nil, is appended after the series labels (the histogram `le`).
func writeSample(b *strings.Builder, name string, labels []Label, extra *Label, value string) {
	b.WriteString(name)
	if len(labels) > 0 || extra != nil {
		b.WriteByte('{')
		for i, l := range labels {
			if i > 0 {
				b.WriteByte(',')
			}
			writeLabel(b, l)
		}
		if extra != nil {
			if len(labels) > 0 {
				b.WriteByte(',')
			}
			writeLabel(b, *extra)
		}
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(value)
	b.WriteByte('\n')
}

func writeLabel(b *strings.Builder, l Label) {
	b.WriteString(l.Name)
	b.WriteString(`="`)
	b.WriteString(escapeLabelValue(l.Value))
	b.WriteByte('"')
}

// formatFloat renders a float the way the exposition format expects:
// shortest round-trip representation, +Inf/-Inf/NaN spelled out.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, +1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeLabelValue(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

// labelSignature is the canonical rendered form of a sorted label
// set; equal signatures mean equal label sets.
func labelSignature(ls []Label) string {
	var b strings.Builder
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		writeLabel(&b, l)
	}
	return b.String()
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		alpha := c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_' || c == ':'
		if !alpha && (i == 0 || c < '0' || c > '9') {
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	if s == "" || strings.HasPrefix(s, "__") {
		return false
	}
	for i, c := range s {
		alpha := c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_'
		if !alpha && (i == 0 || c < '0' || c > '9') {
			return false
		}
	}
	return true
}
