package metrics

import (
	"math"
	"strings"
	"sync"
	"testing"

	"repro/internal/safety"
)

// TestHistogramBucketBoundaries pins the bucket semantics: bounds are
// inclusive upper bounds, observations above the last bound land in
// the implicit +Inf bucket, and exposition renders cumulative counts.
func TestHistogramBucketBoundaries(t *testing.T) {
	r := New()
	h := r.Histogram("h_seconds", "test", []float64{1, 2, 5})
	for _, v := range []float64{0.5, 1, 1.5, 2, 5, 6} {
		h.Observe(v)
	}
	if got := h.Count(); got != 6 {
		t.Fatalf("Count = %d, want 6", got)
	}
	if got := h.Sum(); got != 16 {
		t.Fatalf("Sum = %v, want 16", got)
	}
	want := []uint64{2, 2, 1, 1} // per-bucket: (≤1, ≤2, ≤5, +Inf)
	for i := range h.counts {
		if got := h.counts[i].Load(); got != want[i] {
			t.Errorf("bucket %d = %d, want %d", i, got, want[i])
		}
	}

	var b strings.Builder
	if err := r.TextExpose(&b); err != nil {
		t.Fatal(err)
	}
	fams, err := Parse(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("exposition does not parse: %v\n%s", err, b.String())
	}
	for _, tc := range []struct {
		le   string
		want float64
	}{{"1", 2}, {"2", 4}, {"5", 5}, {"+Inf", 6}} {
		got, ok := fams.Value("h_seconds_bucket", map[string]string{"le": tc.le})
		if !ok || got != tc.want {
			t.Errorf("bucket le=%s = %v (found %v), want %v", tc.le, got, ok, tc.want)
		}
	}
}

// TestExpositionGolden pins the exact rendered text for one of every
// metric kind, then round-trips it through the strict parser.
func TestExpositionGolden(t *testing.T) {
	r := New()
	c := r.Counter("sage_test_requests_total", "Requests served.", Label{"class", "read"})
	c.Add(3)
	r.Counter("sage_test_requests_total", "Requests served.", Label{"class", "batch"}).Inc()
	g := r.Gauge("sage_test_inflight", "In-flight requests.")
	g.Set(2)
	r.GaugeFunc("sage_test_eps_spent", "Privacy spend.", func() float64 { return 0.25 }, Label{"shard", "0"})
	h := r.Histogram("sage_test_latency_seconds", "Request latency.", []float64{0.25, 0.5})
	h.Observe(0.25)
	h.Observe(0.5)
	h.Observe(1)

	const golden = `# HELP sage_test_eps_spent Privacy spend.
# TYPE sage_test_eps_spent gauge
sage_test_eps_spent{shard="0"} 0.25
# HELP sage_test_inflight In-flight requests.
# TYPE sage_test_inflight gauge
sage_test_inflight 2
# HELP sage_test_latency_seconds Request latency.
# TYPE sage_test_latency_seconds histogram
sage_test_latency_seconds_bucket{le="0.25"} 1
sage_test_latency_seconds_bucket{le="0.5"} 2
sage_test_latency_seconds_bucket{le="+Inf"} 3
sage_test_latency_seconds_sum 1.75
sage_test_latency_seconds_count 3
# HELP sage_test_requests_total Requests served.
# TYPE sage_test_requests_total counter
sage_test_requests_total{class="batch"} 1
sage_test_requests_total{class="read"} 3
`
	var b strings.Builder
	if err := r.TextExpose(&b); err != nil {
		t.Fatal(err)
	}
	if b.String() != golden {
		t.Fatalf("exposition mismatch\ngot:\n%s\nwant:\n%s", b.String(), golden)
	}

	fams, err := Parse(strings.NewReader(golden))
	if err != nil {
		t.Fatalf("golden does not parse: %v", err)
	}
	if v, ok := fams.Value("sage_test_requests_total", map[string]string{"class": "read"}); !ok || v != 3 {
		t.Errorf("counter round-trip = %v (found %v), want 3", v, ok)
	}
	if v, ok := fams.Value("sage_test_eps_spent", map[string]string{"shard": "0"}); !ok || v != 0.25 {
		t.Errorf("gauge func round-trip = %v (found %v), want 0.25", v, ok)
	}
	if v, ok := fams.Value("sage_test_latency_seconds_count", nil); !ok || v != 3 {
		t.Errorf("histogram count round-trip = %v (found %v), want 3", v, ok)
	}
	if total, n := fams.Sum("sage_test_requests_total", nil); n != 2 || total != 4 {
		t.Errorf("Sum = %v over %d series, want 4 over 2", total, n)
	}
}

// TestConcurrentIncrementExpose hammers one counter and one histogram
// from many goroutines while the registry is concurrently exposed;
// every intermediate exposition must parse strictly, and the final
// totals must be exact. Run under -race in CI.
func TestConcurrentIncrementExpose(t *testing.T) {
	r := New()
	c := r.Counter("c_total", "c")
	h := r.Histogram("h_seconds", "h", LatencyBuckets())
	r.GaugeFunc("g", "g", func() float64 { return float64(c.Value()) })

	const workers, perWorker = 8, 5000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
				h.Observe(float64(seed*perWorker+i) * 1e-6)
			}
		}(w)
	}
	exposeDone := make(chan error, 1)
	go func() {
		for {
			select {
			case <-stop:
				exposeDone <- nil
				return
			default:
			}
			var b strings.Builder
			if err := r.TextExpose(&b); err != nil {
				exposeDone <- err
				return
			}
			if _, err := Parse(strings.NewReader(b.String())); err != nil {
				exposeDone <- err
				return
			}
		}
	}()
	wg.Wait()
	close(stop)
	if err := <-exposeDone; err != nil {
		t.Fatalf("concurrent exposition: %v", err)
	}
	if got := c.Value(); got != workers*perWorker {
		t.Errorf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := h.Count(); got != workers*perWorker {
		t.Errorf("histogram count = %d, want %d", got, workers*perWorker)
	}
}

// TestNilSafety: a nil registry and nil metric handles must be inert,
// so uninstrumented components need no conditionals.
func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("x_total", "x")
	g := r.Gauge("x", "x")
	h := r.Histogram("x_seconds", "x", []float64{1})
	r.GaugeFunc("y", "y", func() float64 { return 1 })
	c.Inc()
	c.Add(2)
	g.Set(3)
	g.Add(-1)
	h.Observe(0.5)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Error("nil metrics must read as zero")
	}
	if err := r.TextExpose(&strings.Builder{}); err != nil {
		t.Errorf("nil TextExpose: %v", err)
	}
}

// TestRegistryMisusePanics: wiring bugs fail loudly at construction.
func TestRegistryMisusePanics(t *testing.T) {
	cases := map[string]func(r *Registry){
		"duplicate series":   func(r *Registry) { r.Counter("a_total", "a"); r.Counter("a_total", "a") },
		"type conflict":      func(r *Registry) { r.Counter("a_total", "a"); r.Gauge("a_total", "a") },
		"help conflict":      func(r *Registry) { r.Counter("a_total", "a"); r.Counter("a_total", "b", Label{"l", "v"}) },
		"bad metric name":    func(r *Registry) { r.Counter("1bad", "x") },
		"bad label name":     func(r *Registry) { r.Counter("a_total", "a", Label{"1bad", "v"}) },
		"reserved le label":  func(r *Registry) { r.Histogram("h", "h", []float64{1}, Label{"le", "v"}) },
		"unsorted buckets":   func(r *Registry) { r.Histogram("h", "h", []float64{2, 1}) },
		"explicit inf":       func(r *Registry) { r.Histogram("h", "h", []float64{1, math.Inf(1)}) },
		"duplicate label":    func(r *Registry) { r.Counter("a_total", "a", Label{"l", "1"}, Label{"l", "2"}) },
		"nil gauge func":     func(r *Registry) { r.GaugeFunc("g", "g", nil) },
		"empty buckets":      func(r *Registry) { r.Histogram("h", "h", nil) },
		"bad exp buckets":    func(r *Registry) { ExpBuckets(0, 2, 3) },
		"bad exp bucket fac": func(r *Registry) { ExpBuckets(1, 1, 3) },
	}
	for name, f := range cases {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f(New())
		})
	}
}

// TestParseRejects: the parser is strict — malformed or internally
// inconsistent payloads are errors, not best-effort results.
func TestParseRejects(t *testing.T) {
	cases := map[string]string{
		"no TYPE":          "a_total 1\n",
		"duplicate series": "# TYPE a_total counter\na_total 1\na_total 2\n",
		"timestamp":        "# TYPE a_total counter\na_total 1 1700000000\n",
		"negative counter": "# TYPE a_total counter\na_total -1\n",
		"nan counter":      "# TYPE a_total counter\na_total NaN\n",
		"duplicate TYPE":   "# TYPE a counter\n# TYPE a gauge\n",
		"TYPE after data":  "# TYPE a gauge\na 1\n# TYPE a gauge\n",
		"unknown type":     "# TYPE a summary\n",
		"free comment":     "# just a note\n",
		"bad label":        "# TYPE a gauge\na{l=\"v} 1\n",
		"missing inf":      "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n",
		"decreasing buckets": "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\n" +
			"h_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 3\n",
		"count mismatch": "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_bucket{le=\"+Inf\"} 2\nh_sum 1\nh_count 3\n",
		"missing sum":    "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 1\nh_count 1\n",
		"stray sample":   "# TYPE h histogram\nh_extra 1\n",
	}
	for name, payload := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := Parse(strings.NewReader(payload)); err == nil {
				t.Errorf("Parse accepted invalid payload:\n%s", payload)
			}
		})
	}
	// Sanity: the strictness cases above are rejections of nearly-valid
	// input, so make sure a well-formed cousin still parses.
	ok := "# HELP h latency\n# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_bucket{le=\"+Inf\"} 2\nh_sum 3.5\nh_count 2\n"
	if _, err := Parse(strings.NewReader(ok)); err != nil {
		t.Errorf("Parse rejected valid payload: %v", err)
	}
}

// TestLabelEscaping round-trips label values containing quotes,
// backslashes, and newlines.
func TestLabelEscaping(t *testing.T) {
	r := New()
	ugly := "a\"b\\c\nd"
	r.Gauge("g", "g", Label{"l", ugly}).Set(7)
	var b strings.Builder
	if err := r.TextExpose(&b); err != nil {
		t.Fatal(err)
	}
	fams, err := Parse(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("escaped exposition does not parse: %v\n%q", err, b.String())
	}
	if v, ok := fams.Value("g", map[string]string{"l": ugly}); !ok || v != 7 {
		t.Errorf("escaped label round-trip = %v (found %v), want 7", v, ok)
	}
}

// TestHotPathAllocs pins the instrumentation hot paths at zero
// allocations per op — the property that lets every tier instrument
// its serving paths without touching the repo's alloc budgets.
func TestHotPathAllocs(t *testing.T) {
	r := New()
	c := r.Counter("c_total", "c")
	g := r.Gauge("g", "g")
	h := r.Histogram("h_seconds", "h", LatencyBuckets())
	got := safety.MaxAllocs(t, 1000, 0, func() {
		c.Inc()
		g.Set(3)
		h.Observe(0.00042)
	})
	t.Logf("counter+gauge+histogram hot path: %.1f allocs/op (budget 0)", got)
}

// TestExemplars pins the histogram→trace bridge: the most recent
// traced observation wins, untraced observations leave the exemplar
// alone (and allocate nothing), and the registry table keys labeled
// series by name{signature}.
func TestExemplars(t *testing.T) {
	r := New()
	plain := r.Histogram("plain_seconds", "p", LatencyBuckets())
	labeled := r.Histogram("req_seconds", "r", LatencyBuckets(), Label{"class", "read"})

	if _, ok := plain.Exemplar(); ok {
		t.Fatal("fresh histogram has an exemplar")
	}
	plain.ObserveExemplar(0.1, "")
	if _, ok := plain.Exemplar(); ok {
		t.Fatal("empty trace id stored an exemplar")
	}
	if plain.Count() != 1 {
		t.Fatal("ObserveExemplar with empty trace id must still observe")
	}
	plain.ObserveExemplar(0.2, "aaaa")
	plain.ObserveExemplar(0.3, "bbbb")
	e, ok := plain.Exemplar()
	if !ok || e.TraceID != "bbbb" || e.Value != 0.3 {
		t.Fatalf("exemplar = %+v, %v; want most recent traced observation", e, ok)
	}
	labeled.ObserveExemplar(0.4, "cccc")

	table := r.Exemplars()
	if len(table) != 2 {
		t.Fatalf("exemplar table %v, want 2 entries", table)
	}
	if table["plain_seconds"].TraceID != "bbbb" {
		t.Fatalf("plain entry %+v", table["plain_seconds"])
	}
	if table[`req_seconds{class="read"}`].TraceID != "cccc" {
		t.Fatalf("labeled entry missing: %v", table)
	}

	var nilH *Histogram
	nilH.ObserveExemplar(1, "x")
	if _, ok := nilH.Exemplar(); ok {
		t.Fatal("nil histogram has an exemplar")
	}
	var nilR *Registry
	if nilR.Exemplars() != nil {
		t.Fatal("nil registry returned a table")
	}
}

// TestObserveExemplarUntracedAllocs pins that the untraced exemplar
// path is exactly Observe: zero allocations.
func TestObserveExemplarUntracedAllocs(t *testing.T) {
	r := New()
	h := r.Histogram("ex_seconds", "e", LatencyBuckets())
	safety.MaxAllocs(t, 1000, 0, func() {
		h.ObserveExemplar(0.00042, "")
	})
}
