// Package metrics is a stdlib-only instrumentation library: counters,
// gauges, and fixed-bucket histograms collected in a Registry and
// exposed in the Prometheus text format via TextExpose. A strict
// parser of that same format (Parse) lives alongside it so tests and
// CI can round-trip the exposition instead of grepping logs.
//
// # Design
//
// Hot paths are lock-free: Counter and Gauge are single atomics,
// Histogram.Observe is a bounds scan plus two atomic updates. Metric
// handles are resolved once at construction (Registry.Counter etc.
// panic on misuse, which is a programming error, not runtime input)
// and then incremented directly — there are no map lookups or label
// hashing on the increment path, so instrumentation fits inside the
// repo's pinned allocation budgets (zero allocs per Inc/Observe).
//
// Every metric method is nil-receiver safe: an uninstrumented
// component (nil *Counter, nil *Histogram) pays a single branch, so
// packages can expose optional instrumentation without threading
// conditionals through their hot paths.
//
// Registries are per-instance, not global: tests and multi-server
// processes create one Registry per server, so nothing collides and
// nothing leaks between cases.
//
// # Naming convention
//
// Metric names follow sage_<tier>_<name>_<unit>:
//
//   - tier is the subsystem that owns the series: gateway, replica,
//     store, daemon, or wal.
//   - name describes the measured thing in snake_case.
//   - unit is the base unit: seconds for durations, bytes for sizes,
//     and a _total suffix for unitless cumulative counters
//     (e.g. sage_gateway_requests_total). Gauges of unitless values
//     omit the unit (e.g. sage_daemon_ledger_eps_spent).
//
// Examples: sage_wal_append_seconds, sage_replica_pushes_total,
// sage_daemon_ledger_eps_remaining, sage_gateway_request_seconds.
//
// Labels identify sub-streams of one logical metric (route class,
// backend URL, shard index, WAL segment) and are fixed at
// construction; free-form values (error strings, block IDs) belong in
// structured logs, not labels.
package metrics
