package ml

import (
	"math"

	"repro/internal/data"
	"repro/internal/linalg"
	"repro/internal/privacy"
	"repro/internal/rng"
)

// LinearModel is an affine predictor w·x + b. The bias is modelled as an
// extra constant feature internally.
type LinearModel struct {
	Weights []float64 // length = feature dim
	Bias    float64
}

// Predict implements Model.
func (m *LinearModel) Predict(x []float64) float64 {
	return linalg.Dot(m.Weights, x) + m.Bias
}

// PredictBatch implements BatchPredictor: the weight slice and bias are
// loaded once for the whole batch instead of per interface call.
func (m *LinearModel) PredictBatch(rows [][]float64, out []float64) {
	w, b := m.Weights, m.Bias
	for i, x := range rows {
		out[i] = linalg.Dot(w, x) + b
	}
}

// RidgeConfig configures non-private closed-form ridge regression, the
// "LR NP" baseline of Fig. 5.
type RidgeConfig struct {
	Lambda float64 // L2 regularization strength
}

// TrainRidge solves (XᵀX + λI)w = Xᵀy exactly. Features are augmented
// with a constant 1 for the bias term.
func TrainRidge(ds *data.Dataset, cfg RidgeConfig) *LinearModel {
	d := ds.FeatureDim()
	aug := d + 1
	xtx := linalg.NewMatrix(aug, aug)
	xty := make([]float64, aug)
	row := make([]float64, aug)
	for _, ex := range ds.Examples {
		copy(row, ex.Features)
		row[d] = 1
		xtx.GramUpper(row)
		linalg.AXPY(ex.Label, row, xty)
	}
	xtx.MirrorUpper()
	xtx.AddDiagonal(cfg.Lambda + 1e-9)
	w := linalg.SolveSPD(xtx, xty)
	return &LinearModel{Weights: w[:d], Bias: w[d]}
}

// AdaSSPConfig configures the AdaSSP differentially private linear
// regression of Wang (2018), the paper's "LR" pipeline (Table 1: AdaSSP
// with ρ = 0.1).
type AdaSSPConfig struct {
	Budget privacy.Budget
	// Rho is the failure probability of the adaptive regularization
	// bound (paper's ρ = 0.1).
	Rho float64
	// FeatureBound is an upper bound on the L2 norm of any feature
	// vector (after the internal 1-augmentation). Vectors beyond the
	// bound are clipped — this is what bounds the query sensitivity.
	FeatureBound float64
	// LabelBound is an upper bound on |label|; labels are clipped to it.
	LabelBound float64
}

// TrainAdaSSP trains a DP linear regression with the AdaSSP mechanism:
// it privately releases λ_min(XᵀX), XᵀX and Xᵀy with a third of the
// budget each (Gaussian mechanism), picks an adaptive ridge parameter
// from the noisy λ_min, and solves the perturbed normal equations.
func TrainAdaSSP(ds *data.Dataset, cfg AdaSSPConfig, r *rng.RNG) *LinearModel {
	if cfg.Budget.Epsilon <= 0 || cfg.Budget.Delta <= 0 {
		panic("ml: AdaSSP requires ε > 0 and δ > 0")
	}
	if cfg.Rho <= 0 || cfg.Rho >= 1 {
		panic("ml: AdaSSP requires ρ in (0,1)")
	}
	if cfg.FeatureBound <= 0 || cfg.LabelBound <= 0 {
		panic("ml: AdaSSP requires positive bounds")
	}
	d := ds.FeatureDim()
	aug := d + 1
	// Scale features and labels into unit balls so sensitivities are 1.
	fscale := 1 / cfg.FeatureBound
	lscale := 1 / cfg.LabelBound

	xtx := linalg.NewMatrix(aug, aug)
	xty := make([]float64, aug)
	row := make([]float64, aug)
	for _, ex := range ds.Examples {
		for i, v := range ex.Features {
			row[i] = v * fscale
		}
		row[d] = fscale // constant feature, also scaled to stay in the ball
		privacy.ClipL2(row, 1)
		y := privacy.Clip(ex.Label*lscale, -1, 1)
		xtx.GramUpper(row)
		linalg.AXPY(y, row, xty)
	}
	xtx.MirrorUpper()

	eps3 := cfg.Budget.Epsilon / 3
	logTerm := math.Log(6 / cfg.Budget.Delta)
	sigma := math.Sqrt(logTerm) / eps3 // Gaussian scale for sensitivity-1 queries

	// (1) Noisy minimum eigenvalue, shifted down to be a lower bound
	// with high probability.
	lambdaMin := linalg.MinEigen(xtx, 200)
	lambdaMinDP := lambdaMin + r.Normal(0, sigma) - logTerm/eps3
	if lambdaMinDP < 0 {
		lambdaMinDP = 0
	}

	// (2) Adaptive ridge: enough regularization to make the noisy Gram
	// matrix comfortably invertible, but no more than needed.
	lambda := math.Sqrt(float64(aug)*logTerm*math.Log(2*float64(aug*aug)/cfg.Rho))/eps3 - lambdaMinDP
	if lambda < 0 {
		lambda = 0
	}

	// (3) Noisy sufficient statistics. The Gram noise matrix must be
	// symmetric: draw the upper triangle and mirror.
	for i := 0; i < aug; i++ {
		for j := i; j < aug; j++ {
			n := r.Normal(0, sigma)
			xtx.Add(i, j, n)
			if i != j {
				xtx.Add(j, i, n)
			}
		}
	}
	for i := range xty {
		xty[i] += r.Normal(0, sigma)
	}

	xtx.AddDiagonal(lambda + 1e-9)
	w := linalg.SolveSPD(xtx, xty)

	// Undo the scaling: prediction = (w_scaled · x·fscale + b_scaled·fscale)/lscale.
	weights := make([]float64, d)
	for i := range weights {
		weights[i] = w[i] * fscale / lscale
	}
	bias := w[d] * fscale / lscale
	return &LinearModel{Weights: weights, Bias: bias}
}

// Cost returns the (ε, δ) privacy cost of one AdaSSP training run: the
// full configured budget (the three sub-releases compose to it).
func (cfg AdaSSPConfig) Cost() privacy.Budget { return cfg.Budget }
