package ml

import (
	"math"
	"sync"
	"testing"

	"repro/internal/rng"
)

// TestMLPCloneForServing pins the serving-clone contract: clones
// predict bit-identically to the original, alias its parameters (a
// clone is a view, not a snapshot), and carry private scratch so
// concurrent clones do not race.
func TestMLPCloneForServing(t *testing.T) {
	m := NewMLP(Regression, 5, []int{7, 3}, rng.New(13))
	var _ ScratchCloner = m

	clone := m.CloneForServing().(*MLP)
	rows := make([][]float64, 16)
	r := rng.New(14)
	for i := range rows {
		rows[i] = make([]float64, 5)
		for j := range rows[i] {
			rows[i][j] = r.Normal(0, 1)
		}
	}
	for _, x := range rows {
		if math.Float64bits(m.Predict(x)) != math.Float64bits(clone.Predict(x)) {
			t.Fatalf("clone diverges from original on %v", x)
		}
	}
	// Parameters are shared: the clone sees updates to the original
	// (which is why clones are prediction-only).
	m.Params()[0] += 1
	x := rows[0]
	if math.Float64bits(m.Predict(x)) != math.Float64bits(clone.Predict(x)) {
		t.Error("clone did not see a parameter update: params are copied, not aliased")
	}

	// Concurrent clones on one original must be race-free (run under
	// -race) and all agree.
	want := m.Predict(x)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := m.CloneForServing()
			for i := 0; i < 200; i++ {
				for _, row := range rows {
					c.Predict(row)
				}
				if got := c.Predict(x); math.Float64bits(got) != math.Float64bits(want) {
					t.Errorf("concurrent clone predicted %v, want %v", got, want)
					return
				}
			}
		}()
	}
	wg.Wait()

	// The classification head clones too.
	clf := NewMLP(BinaryClassification, 3, []int{4}, rng.New(15))
	cc := clf.CloneForServing()
	probe := []float64{0.3, -0.7, 1.1}
	if math.Float64bits(clf.Predict(probe)) != math.Float64bits(cc.Predict(probe)) {
		t.Error("classification clone diverges")
	}
}
