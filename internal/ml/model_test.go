package ml

import (
	"math"
	"testing"

	"repro/internal/data"
	"repro/internal/privacy"
	"repro/internal/rng"
)

// synthLinear builds y = w·x + b + noise with x uniform in [0,1]^d.
func synthLinear(n, d int, w []float64, b, noise float64, r *rng.RNG) *data.Dataset {
	ds := &data.Dataset{}
	for i := 0; i < n; i++ {
		x := make([]float64, d)
		for j := range x {
			x[j] = r.Float64()
		}
		y := b
		for j := range x {
			y += w[j] * x[j]
		}
		y += r.Normal(0, noise)
		ds.Append(data.Example{Features: x, Label: y})
	}
	return ds
}

// synthLogistic builds binary labels from a ground-truth logistic model.
func synthLogistic(n, d int, w []float64, b float64, r *rng.RNG) *data.Dataset {
	ds := &data.Dataset{}
	for i := 0; i < n; i++ {
		x := make([]float64, d)
		for j := range x {
			x[j] = r.Float64()*2 - 1
		}
		z := b
		for j := range x {
			z += w[j] * x[j]
		}
		y := 0.0
		if r.Bool(Sigmoid(z)) {
			y = 1
		}
		ds.Append(data.Example{Features: x, Label: y})
	}
	return ds
}

func TestMetricsOnConstantModel(t *testing.T) {
	ds := &data.Dataset{}
	ds.Append(
		data.Example{Features: []float64{0}, Label: 0},
		data.Example{Features: []float64{0}, Label: 1},
		data.Example{Features: []float64{0}, Label: 1},
		data.Example{Features: []float64{0}, Label: 1},
	)
	m := ConstantModel{Value: 1}
	if got := Accuracy(m, ds); got != 0.75 {
		t.Errorf("Accuracy = %v, want 0.75", got)
	}
	if got := MSE(m, ds); got != 0.25 {
		t.Errorf("MSE = %v, want 0.25", got)
	}
	if got := LogLoss(m, ds); math.IsInf(got, 0) || math.IsNaN(got) {
		t.Errorf("LogLoss = %v, want finite (clamping)", got)
	}
	empty := &data.Dataset{}
	if MSE(m, empty) != 0 || Accuracy(m, empty) != 0 || LogLoss(m, empty) != 0 {
		t.Error("metrics on empty data should be 0")
	}
}

func TestNaiveModels(t *testing.T) {
	ds := &data.Dataset{}
	ds.Append(
		data.Example{Features: []float64{0}, Label: 1},
		data.Example{Features: []float64{0}, Label: 3},
	)
	if m := NaiveMeanModel(ds); m.Value != 2 {
		t.Errorf("NaiveMean = %v", m.Value)
	}
	bin := &data.Dataset{}
	bin.Append(
		data.Example{Features: []float64{0}, Label: 0},
		data.Example{Features: []float64{0}, Label: 0},
		data.Example{Features: []float64{0}, Label: 1},
	)
	if m := NaiveMajorityModel(bin); m.Value != 0 {
		t.Errorf("NaiveMajority = %v, want 0", m.Value)
	}
}

func TestSigmoid(t *testing.T) {
	if got := Sigmoid(0); got != 0.5 {
		t.Errorf("Sigmoid(0) = %v", got)
	}
	if got := Sigmoid(100); got < 0.999 {
		t.Errorf("Sigmoid(100) = %v", got)
	}
	if got := Sigmoid(-100); got > 0.001 {
		t.Errorf("Sigmoid(-100) = %v", got)
	}
	// Symmetry σ(-z) = 1 - σ(z).
	for _, z := range []float64{0.1, 1, 5, 20} {
		if math.Abs(Sigmoid(-z)-(1-Sigmoid(z))) > 1e-12 {
			t.Errorf("sigmoid asymmetric at %v", z)
		}
	}
}

func TestPredictBatchMatchesPredict(t *testing.T) {
	r := rng.New(7)
	rows := make([][]float64, 64)
	for i := range rows {
		x := make([]float64, 4)
		for j := range x {
			x[j] = r.Float64()*2 - 1
		}
		rows[i] = x
	}
	logit := NewLogisticRegression(4)
	sgdlin := NewSGDLinearRegression(4)
	for i := range logit.Params() {
		logit.Params()[i] = r.Normal(0, 1)
		sgdlin.Params()[i] = r.Normal(0, 1)
	}
	models := map[string]Model{
		"linear":   &LinearModel{Weights: []float64{1, -2, 0.5, 3}, Bias: 0.25},
		"constant": ConstantModel{Value: 1.5},
		"logistic": logit,
		"sgd-lin":  sgdlin,
		"mlp-reg":  NewMLP(Regression, 4, []int{8, 4}, r),
		"mlp-clf":  NewMLP(BinaryClassification, 4, []int{6}, r),
	}
	for name, m := range models {
		if _, ok := m.(BatchPredictor); !ok {
			t.Errorf("%s: no PredictBatch fast path", name)
		}
		out := make([]float64, len(rows))
		PredictBatch(m, rows, out)
		for i, x := range rows {
			if want := m.Predict(x); math.Abs(out[i]-want) > 1e-12 {
				t.Errorf("%s row %d: batch %v != single %v", name, i, out[i], want)
			}
		}
	}
}

func TestPredictBatchFallbackAndValidation(t *testing.T) {
	// A model without the fast path falls back to a Predict loop.
	type plain struct{ Model }
	m := plain{ConstantModel{Value: 2}}
	rows := [][]float64{{1}, {2}}
	out := make([]float64, 2)
	PredictBatch(m, rows, out)
	if out[0] != 2 || out[1] != 2 {
		t.Errorf("fallback batch = %v", out)
	}
	defer func() {
		if recover() == nil {
			t.Error("length mismatch should panic")
		}
	}()
	PredictBatch(m, rows, make([]float64, 1))
}

func TestSerialPredictorMarking(t *testing.T) {
	// The MLP shares scratch across Predict calls and must be marked; the
	// stateless models must not be (serving relies on this to decide
	// which cached models need a per-instance lock).
	if _, ok := any(NewMLP(Regression, 2, []int{3}, rng.New(1))).(SerialPredictor); !ok {
		t.Error("MLP should be a SerialPredictor")
	}
	for name, m := range map[string]Model{
		"linear":   &LinearModel{Weights: []float64{1}},
		"constant": ConstantModel{},
		"logistic": NewLogisticRegression(1),
		"sgd-lin":  NewSGDLinearRegression(1),
	} {
		if _, ok := m.(SerialPredictor); ok {
			t.Errorf("%s is stateless and should not be a SerialPredictor", name)
		}
	}
}

func TestTrainRidgeRecoversWeights(t *testing.T) {
	r := rng.New(1)
	w := []float64{2, -1, 0.5}
	ds := synthLinear(5000, 3, w, 0.3, 0.01, r)
	m := TrainRidge(ds, RidgeConfig{Lambda: 1e-6})
	for i := range w {
		if math.Abs(m.Weights[i]-w[i]) > 0.02 {
			t.Errorf("weight %d = %v, want %v", i, m.Weights[i], w[i])
		}
	}
	if math.Abs(m.Bias-0.3) > 0.02 {
		t.Errorf("bias = %v, want 0.3", m.Bias)
	}
	if mse := MSE(m, ds); mse > 0.001 {
		t.Errorf("train MSE = %v", mse)
	}
}

func TestRidgeRegularizationShrinks(t *testing.T) {
	r := rng.New(2)
	ds := synthLinear(200, 2, []float64{5, 5}, 0, 0.1, r)
	loose := TrainRidge(ds, RidgeConfig{Lambda: 0})
	tight := TrainRidge(ds, RidgeConfig{Lambda: 1e4})
	looseNorm := math.Hypot(loose.Weights[0], loose.Weights[1])
	tightNorm := math.Hypot(tight.Weights[0], tight.Weights[1])
	if tightNorm >= looseNorm {
		t.Errorf("heavy ridge norm %v not below light ridge norm %v", tightNorm, looseNorm)
	}
}

func TestAdaSSPApproachesNonPrivateWithData(t *testing.T) {
	r := rng.New(3)
	w := []float64{0.4, -0.3}
	cfg := AdaSSPConfig{
		Budget:       privacy.MustBudget(1.0, 1e-6),
		Rho:          0.1,
		FeatureBound: 2,
		LabelBound:   1,
	}
	small := synthLinear(500, 2, w, 0.1, 0.05, r)
	large := synthLinear(100000, 2, w, 0.1, 0.05, r)
	holdout := synthLinear(5000, 2, w, 0.1, 0.05, r)

	mseSmall := MSE(TrainAdaSSP(small, cfg, rng.New(10)), holdout)
	mseLarge := MSE(TrainAdaSSP(large, cfg, rng.New(11)), holdout)
	mseNP := MSE(TrainRidge(large, RidgeConfig{Lambda: 1e-6}), holdout)
	if mseLarge > mseSmall {
		t.Errorf("more data should not hurt AdaSSP: %v > %v", mseLarge, mseSmall)
	}
	if mseLarge > mseNP*1.5+0.001 {
		t.Errorf("AdaSSP at 100K samples MSE %v far from NP %v", mseLarge, mseNP)
	}
}

func TestAdaSSPSmallerEpsilonNoisier(t *testing.T) {
	r := rng.New(4)
	w := []float64{0.4, -0.3}
	ds := synthLinear(2000, 2, w, 0.1, 0.05, r)
	holdout := synthLinear(5000, 2, w, 0.1, 0.05, r)
	avgMSE := func(eps float64) float64 {
		total := 0.0
		const reps = 15
		for i := 0; i < reps; i++ {
			cfg := AdaSSPConfig{
				Budget:       privacy.MustBudget(eps, 1e-6),
				Rho:          0.1,
				FeatureBound: 2,
				LabelBound:   1,
			}
			total += MSE(TrainAdaSSP(ds, cfg, rng.New(uint64(100+i))), holdout)
		}
		return total / reps
	}
	if loose, tight := avgMSE(5.0), avgMSE(0.05); tight <= loose {
		t.Errorf("ε=0.05 MSE %v should exceed ε=5 MSE %v", tight, loose)
	}
}

func TestAdaSSPValidation(t *testing.T) {
	ds := synthLinear(10, 1, []float64{1}, 0, 0, rng.New(5))
	bad := []AdaSSPConfig{
		{Budget: privacy.MustBudget(0, 1e-6), Rho: 0.1, FeatureBound: 1, LabelBound: 1},
		{Budget: privacy.MustBudget(1, 0), Rho: 0.1, FeatureBound: 1, LabelBound: 1},
		{Budget: privacy.MustBudget(1, 1e-6), Rho: 0, FeatureBound: 1, LabelBound: 1},
		{Budget: privacy.MustBudget(1, 1e-6), Rho: 0.1, FeatureBound: 0, LabelBound: 1},
	}
	for i, cfg := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %d should panic", i)
				}
			}()
			TrainAdaSSP(ds, cfg, rng.New(0))
		}()
	}
}
