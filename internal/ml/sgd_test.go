package ml

import (
	"testing"

	"repro/internal/data"
	"repro/internal/privacy"
	"repro/internal/rng"
)

func TestSGDLinearRegressionConverges(t *testing.T) {
	r := rng.New(1)
	w := []float64{0.6, -0.4}
	ds := synthLinear(20000, 2, w, 0.2, 0.02, r)
	m := NewSGDLinearRegression(2)
	TrainSGD(m, ds, SGDConfig{LearningRate: 0.05, Momentum: 0.9, Epochs: 5, BatchSize: 128}, rng.New(2))
	holdout := synthLinear(2000, 2, w, 0.2, 0.02, r)
	if mse := MSE(m, holdout); mse > 0.001 {
		t.Errorf("holdout MSE = %v, want < 0.001", mse)
	}
}

func TestLogisticRegressionLearns(t *testing.T) {
	r := rng.New(3)
	w := []float64{3, -2}
	ds := synthLogistic(20000, 2, w, 0.5, r)
	m := NewLogisticRegression(2)
	TrainSGD(m, ds, SGDConfig{LearningRate: 0.2, Epochs: 5, BatchSize: 128}, rng.New(4))
	holdout := synthLogistic(5000, 2, w, 0.5, r)
	acc := Accuracy(m, holdout)
	naive := Accuracy(NaiveMajorityModel(holdout), holdout)
	if acc <= naive+0.05 {
		t.Errorf("accuracy %v not better than naive %v", acc, naive)
	}
	// Bayes-optimal accuracy for this model is bounded; just check sane.
	if acc < 0.7 {
		t.Errorf("accuracy %v too low", acc)
	}
}

func TestDPSGDLargeEpsilonMatchesNonPrivate(t *testing.T) {
	r := rng.New(5)
	w := []float64{0.5, -0.5}
	ds := synthLinear(20000, 2, w, 0.1, 0.02, r)
	holdout := synthLinear(2000, 2, w, 0.1, 0.02, r)

	np := NewSGDLinearRegression(2)
	TrainSGD(np, ds, SGDConfig{LearningRate: 0.05, Epochs: 3, BatchSize: 256}, rng.New(6))

	dp := NewSGDLinearRegression(2)
	TrainSGD(dp, ds, SGDConfig{
		LearningRate: 0.05, Epochs: 3, BatchSize: 256,
		DP: true, ClipNorm: 2, Budget: privacy.MustBudget(50, 1e-6),
	}, rng.New(7))

	mseNP, mseDP := MSE(np, holdout), MSE(dp, holdout)
	if mseDP > mseNP*3+0.002 {
		t.Errorf("DP (ε=50) MSE %v far above NP MSE %v", mseDP, mseNP)
	}
}

func TestDPSGDSmallEpsilonWorse(t *testing.T) {
	r := rng.New(8)
	w := []float64{0.5, -0.5}
	ds := synthLinear(5000, 2, w, 0.1, 0.02, r)
	holdout := synthLinear(2000, 2, w, 0.1, 0.02, r)
	run := func(eps float64, seed uint64) float64 {
		m := NewSGDLinearRegression(2)
		TrainSGD(m, ds, SGDConfig{
			LearningRate: 0.05, Epochs: 3, BatchSize: 256,
			DP: true, ClipNorm: 2, Budget: privacy.MustBudget(eps, 1e-6),
		}, rng.New(seed))
		return MSE(m, holdout)
	}
	avg := func(eps float64) float64 {
		s := 0.0
		for i := 0; i < 5; i++ {
			s += run(eps, uint64(10+i))
		}
		return s / 5
	}
	if loose, tight := avg(10), avg(0.1); tight <= loose {
		t.Errorf("ε=0.1 MSE %v should exceed ε=10 MSE %v", tight, loose)
	}
}

func TestSGDConfigValidation(t *testing.T) {
	ds := synthLinear(10, 1, []float64{1}, 0, 0, rng.New(9))
	bad := []SGDConfig{
		{LearningRate: 0, Epochs: 1, BatchSize: 1},
		{LearningRate: 0.1, Epochs: 0, BatchSize: 1},
		{LearningRate: 0.1, Epochs: 1, BatchSize: 0},
		{LearningRate: 0.1, Epochs: 1, BatchSize: 1, Momentum: 1},
		{LearningRate: 0.1, Epochs: 1, BatchSize: 1, DP: true, ClipNorm: 0, Budget: privacy.MustBudget(1, 1e-6)},
		{LearningRate: 0.1, Epochs: 1, BatchSize: 1, DP: true, ClipNorm: 1, Budget: privacy.MustBudget(1, 0)},
	}
	for i, cfg := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %d should panic", i)
				}
			}()
			TrainSGD(NewSGDLinearRegression(1), ds, cfg, rng.New(0))
		}()
	}
}

func TestSGDCost(t *testing.T) {
	np := SGDConfig{LearningRate: 0.1, Epochs: 1, BatchSize: 1}
	if !np.Cost().IsZero() {
		t.Error("non-DP cost should be zero")
	}
	dp := SGDConfig{DP: true, Budget: privacy.MustBudget(0.5, 1e-7)}
	if c := dp.Cost(); c.Epsilon != 0.5 || c.Delta != 1e-7 {
		t.Errorf("DP cost = %v", c)
	}
}

func TestSGDEmptyDataset(t *testing.T) {
	m := NewSGDLinearRegression(2)
	before := append([]float64{}, m.Params()...)
	TrainSGD(m, &data.Dataset{}, SGDConfig{LearningRate: 0.1, Epochs: 1, BatchSize: 4}, rng.New(1))
	for i := range before {
		if m.Params()[i] != before[i] {
			t.Fatal("training on empty data changed parameters")
		}
	}
}

func TestSGDDeterminism(t *testing.T) {
	r := rng.New(20)
	ds := synthLinear(1000, 2, []float64{1, -1}, 0, 0.05, r)
	train := func(seed uint64) []float64 {
		m := NewSGDLinearRegression(2)
		TrainSGD(m, ds, SGDConfig{
			LearningRate: 0.05, Epochs: 2, BatchSize: 64,
			DP: true, ClipNorm: 1, Budget: privacy.MustBudget(1, 1e-6),
		}, rng.New(seed))
		return append([]float64{}, m.Params()...)
	}
	a, b := train(42), train(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same-seed DP-SGD runs diverged")
		}
	}
	c := train(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different-seed DP-SGD runs identical")
	}
}

func TestNoiseMultiplierScalesWithBudget(t *testing.T) {
	cfg := func(eps float64) SGDConfig {
		return SGDConfig{
			LearningRate: 0.1, Epochs: 3, BatchSize: 512,
			DP: true, ClipNorm: 1, Budget: privacy.MustBudget(eps, 1e-6),
		}
	}
	s1 := cfg(1).NoiseMultiplier(50000)
	s2 := cfg(0.25).NoiseMultiplier(50000)
	if s2 <= s1 {
		t.Errorf("smaller ε should need more noise: σ(0.25)=%v vs σ(1)=%v", s2, s1)
	}
	if nd := (SGDConfig{LearningRate: 0.1, Epochs: 1, BatchSize: 1}).NoiseMultiplier(100); nd != 0 {
		t.Errorf("non-DP noise multiplier = %v", nd)
	}
}
