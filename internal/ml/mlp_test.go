package ml

import (
	"math"
	"testing"

	"repro/internal/data"
	"repro/internal/privacy"
	"repro/internal/rng"
)

func TestMLPShapes(t *testing.T) {
	m := NewMLP(Regression, 4, []int{8, 3}, rng.New(1))
	// params: 4*8+8 + 8*3+3 + 3*1+1 = 40+27+4 = 71.
	if got := m.NumParams(); got != 71 {
		t.Errorf("NumParams = %d, want 71", got)
	}
	out := m.Predict([]float64{1, 2, 3, 4})
	if math.IsNaN(out) || math.IsInf(out, 0) {
		t.Errorf("Predict = %v", out)
	}
}

func TestMLPClassificationOutputsProbability(t *testing.T) {
	m := NewMLP(BinaryClassification, 3, []int{5}, rng.New(2))
	for i := 0; i < 100; i++ {
		p := m.Predict([]float64{float64(i), -float64(i), 0.5})
		if p < 0 || p > 1 {
			t.Fatalf("probability %v out of [0,1]", p)
		}
	}
}

// TestMLPGradientCheck verifies backprop against finite differences.
func TestMLPGradientCheck(t *testing.T) {
	for _, kind := range []OutputKind{Regression, BinaryClassification} {
		m := NewMLP(kind, 3, []int{4, 3}, rng.New(3))
		x := []float64{0.3, -0.7, 1.1}
		y := 0.8
		loss := func() float64 {
			if kind == Regression {
				d := m.Predict(x) - y
				return d * d / 2
			}
			p := clampProb(m.Predict(x))
			return -(y*math.Log(p) + (1-y)*math.Log(1-p))
		}
		grad := make([]float64, m.NumParams())
		m.Grad(x, y, grad)
		params := m.Params()
		const h = 1e-6
		for _, idx := range []int{0, 3, 7, 15, 20, len(params) - 1} {
			orig := params[idx]
			params[idx] = orig + h
			lp := loss()
			params[idx] = orig - h
			lm := loss()
			params[idx] = orig
			numeric := (lp - lm) / (2 * h)
			if math.Abs(numeric-grad[idx]) > 1e-4*(1+math.Abs(numeric)) {
				t.Errorf("kind=%v param %d: analytic %v vs numeric %v", kind, idx, grad[idx], numeric)
			}
		}
	}
}

func TestMLPLearnsXOR(t *testing.T) {
	// XOR is not linearly separable; a 2-layer MLP must beat 0.9.
	ds := &data.Dataset{}
	r := rng.New(4)
	for i := 0; i < 4000; i++ {
		a, b := float64(r.IntN(2)), float64(r.IntN(2))
		y := 0.0
		if a != b {
			y = 1
		}
		ds.Append(data.Example{Features: []float64{a, b}, Label: y})
	}
	m := NewMLP(BinaryClassification, 2, []int{8}, rng.New(5))
	TrainSGD(m, ds, SGDConfig{LearningRate: 0.5, Momentum: 0.9, Epochs: 30, BatchSize: 32}, rng.New(6))
	if acc := Accuracy(m, ds); acc < 0.95 {
		t.Errorf("XOR accuracy = %v, want >= 0.95", acc)
	}
}

func TestMLPLearnsNonlinearRegression(t *testing.T) {
	// y = x1² is beyond a linear model; the MLP should beat it clearly.
	r := rng.New(7)
	mk := func(n int) *data.Dataset {
		ds := &data.Dataset{}
		for i := 0; i < n; i++ {
			x := r.Float64()*2 - 1
			ds.Append(data.Example{Features: []float64{x}, Label: x * x})
		}
		return ds
	}
	train, test := mk(20000), mk(2000)
	mlp := NewMLP(Regression, 1, []int{16, 8}, rng.New(8))
	TrainSGD(mlp, train, SGDConfig{LearningRate: 0.1, Momentum: 0.9, Epochs: 10, BatchSize: 64}, rng.New(9))
	lin := TrainRidge(train, RidgeConfig{Lambda: 1e-6})
	mseMLP, mseLin := MSE(mlp, test), MSE(lin, test)
	if mseMLP > mseLin/4 {
		t.Errorf("MLP MSE %v not clearly below linear MSE %v", mseMLP, mseLin)
	}
}

func TestMLPDPTrainingRuns(t *testing.T) {
	r := rng.New(10)
	ds := synthLogistic(3000, 3, []float64{2, -1, 1}, 0, r)
	m := NewMLP(BinaryClassification, 3, []int{8}, rng.New(11))
	TrainSGD(m, ds, SGDConfig{
		LearningRate: 0.1, Epochs: 2, BatchSize: 256,
		DP: true, ClipNorm: 1, Budget: privacy.MustBudget(2, 1e-6),
	}, rng.New(12))
	for _, p := range m.Params() {
		if math.IsNaN(p) || math.IsInf(p, 0) {
			t.Fatal("DP training produced non-finite parameters")
		}
	}
	if acc := Accuracy(m, ds); acc < 0.5 {
		t.Errorf("DP MLP accuracy %v below coin flip", acc)
	}
}

func TestMLPDeterministicInit(t *testing.T) {
	a := NewMLP(Regression, 5, []int{7}, rng.New(42))
	b := NewMLP(Regression, 5, []int{7}, rng.New(42))
	for i := range a.Params() {
		if a.Params()[i] != b.Params()[i] {
			t.Fatal("same-seed MLP init differs")
		}
	}
}
