package ml

import (
	"math"

	"repro/internal/rng"
)

// OutputKind selects the MLP's head: identity + squared loss for
// regression (Taxi NN) or sigmoid + log loss for classification
// (Criteo NN).
type OutputKind int

const (
	// Regression uses an identity output and squared loss.
	Regression OutputKind = iota
	// BinaryClassification uses a sigmoid output and log loss.
	BinaryClassification
)

// MLP is a fully connected multi-layer perceptron with ReLU hidden
// activations, the paper's "NN" pipelines (Table 1: ReLU, 2 hidden
// layers). Parameters are stored flat so the generic (DP-)SGD trainer can
// clip and noise whole-model gradients.
type MLP struct {
	kind   OutputKind
	sizes  []int // layer widths: input, hidden..., 1
	params []float64
	// offsets[l] is the start of layer l's W then b in params.
	offsets []int
	// scratch buffers reused across calls (single-goroutine use).
	acts []([]float64) // activations per layer
	zs   []([]float64) // pre-activations per layer
	errs []([]float64) // back-propagated deltas
}

// NewMLP returns an MLP with the given input dimension and hidden layer
// widths, e.g. NewMLP(Regression, 61, []int{64, 32}, r). Weights use He
// initialization; biases start at zero.
func NewMLP(kind OutputKind, inputDim int, hidden []int, r *rng.RNG) *MLP {
	if inputDim <= 0 {
		panic("ml: MLP requires inputDim > 0")
	}
	sizes := append([]int{inputDim}, hidden...)
	sizes = append(sizes, 1)
	total := 0
	offsets := make([]int, len(sizes)-1)
	for l := 0; l < len(sizes)-1; l++ {
		offsets[l] = total
		total += sizes[l]*sizes[l+1] + sizes[l+1]
	}
	params := make([]float64, total)
	for l := 0; l < len(sizes)-1; l++ {
		std := math.Sqrt(2 / float64(sizes[l]))
		w := params[offsets[l] : offsets[l]+sizes[l]*sizes[l+1]]
		for i := range w {
			w[i] = r.Normal(0, std)
		}
	}
	m := &MLP{kind: kind, sizes: sizes, params: params, offsets: offsets}
	m.acts = make([][]float64, len(sizes))
	m.zs = make([][]float64, len(sizes))
	m.errs = make([][]float64, len(sizes))
	for i, s := range sizes {
		m.acts[i] = make([]float64, s)
		m.zs[i] = make([]float64, s)
		m.errs[i] = make([]float64, s)
	}
	return m
}

// NumParams returns the total parameter count.
func (m *MLP) NumParams() int { return len(m.params) }

// Kind returns the output head kind.
func (m *MLP) Kind() OutputKind { return m.kind }

// InputDim returns the input dimensionality.
func (m *MLP) InputDim() int { return m.sizes[0] }

// Hidden returns a copy of the hidden layer widths.
func (m *MLP) Hidden() []int {
	return append([]int{}, m.sizes[1:len(m.sizes)-1]...)
}

// Params implements GradModel.
func (m *MLP) Params() []float64 { return m.params }

// layer returns the weight (out×in, row-major by output unit) and bias
// slices of layer l.
func (m *MLP) layer(l int) (w, b []float64) {
	in, out := m.sizes[l], m.sizes[l+1]
	start := m.offsets[l]
	return m.params[start : start+in*out], m.params[start+in*out : start+in*out+out]
}

// forward runs the network, filling the activation buffers, and returns
// the raw output (pre-head).
func (m *MLP) forward(x []float64) float64 {
	copy(m.acts[0], x)
	layers := len(m.sizes) - 1
	for l := 0; l < layers; l++ {
		in, out := m.sizes[l], m.sizes[l+1]
		w, b := m.layer(l)
		src := m.acts[l]
		for j := 0; j < out; j++ {
			sum := b[j]
			row := w[j*in : (j+1)*in]
			for i := 0; i < in; i++ {
				sum += row[i] * src[i]
			}
			m.zs[l+1][j] = sum
			if l < layers-1 {
				if sum < 0 {
					sum = 0 // ReLU
				}
			}
			m.acts[l+1][j] = sum
		}
	}
	return m.zs[layers][0]
}

// Predict implements Model: the regression head returns the raw output,
// the classification head a sigmoid probability.
func (m *MLP) Predict(x []float64) float64 {
	z := m.forward(x)
	if m.kind == BinaryClassification {
		return Sigmoid(z)
	}
	return z
}

// PredictBatch implements BatchPredictor, reusing the network's scratch
// buffers across the whole batch; the kind branch is hoisted out of the
// per-row loop.
func (m *MLP) PredictBatch(rows [][]float64, out []float64) {
	if m.kind == BinaryClassification {
		for i, x := range rows {
			out[i] = Sigmoid(m.forward(x))
		}
		return
	}
	for i, x := range rows {
		out[i] = m.forward(x)
	}
}

// predictUsesSharedScratch implements SerialPredictor: forward passes
// write the shared activation buffers, so one MLP instance must not be
// predicted from multiple goroutines at once.
func (m *MLP) predictUsesSharedScratch() {}

// CloneForServing implements ScratchCloner: the clone aliases the
// original's parameters (never written on the predict path) and
// allocates only fresh activation buffers, so a serving tier can keep a
// pool of clones and run MLP predictions concurrently. The error
// buffers are shared too — they are only written by Grad, which serving
// never calls.
func (m *MLP) CloneForServing() Model {
	c := &MLP{
		kind: m.kind, sizes: m.sizes, params: m.params,
		offsets: m.offsets, errs: m.errs,
	}
	c.acts = make([][]float64, len(m.sizes))
	c.zs = make([][]float64, len(m.sizes))
	for i, s := range m.sizes {
		c.acts[i] = make([]float64, s)
		c.zs[i] = make([]float64, s)
	}
	return c
}

// Grad implements GradModel via backpropagation. For both heads the
// output delta is (prediction − label): squared loss (halved) with
// identity output and log loss with sigmoid output share this form.
func (m *MLP) Grad(x []float64, y float64, out []float64) {
	z := m.forward(x)
	pred := z
	if m.kind == BinaryClassification {
		pred = Sigmoid(z)
	}
	layers := len(m.sizes) - 1
	m.errs[layers][0] = pred - y
	// Backpropagate deltas through ReLU layers.
	for l := layers - 1; l >= 1; l-- {
		in, outn := m.sizes[l], m.sizes[l+1]
		w, _ := m.layer(l)
		for i := 0; i < in; i++ {
			sum := 0.0
			for j := 0; j < outn; j++ {
				sum += w[j*in+i] * m.errs[l+1][j]
			}
			if m.zs[l][i] <= 0 {
				sum = 0 // ReLU derivative
			}
			m.errs[l][i] = sum
		}
	}
	// Write gradients: dW[j][i] = delta[j]·act[i], db[j] = delta[j].
	for l := 0; l < layers; l++ {
		in, outn := m.sizes[l], m.sizes[l+1]
		start := m.offsets[l]
		for j := 0; j < outn; j++ {
			d := m.errs[l+1][j]
			base := start + j*in
			for i := 0; i < in; i++ {
				out[base+i] = d * m.acts[l][i]
			}
			out[start+in*outn+j] = d
		}
	}
}
