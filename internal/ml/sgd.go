package ml

import (
	"fmt"

	"repro/internal/data"
	"repro/internal/privacy"
	"repro/internal/rng"
)

// SGDConfig configures (DP-)SGD training. With DP=false it is plain
// minibatch SGD with momentum; with DP=true it is DP-SGD (Abadi et al.
// 2016): Poisson-sampled batches, per-example gradient clipping to
// ClipNorm, and Gaussian noise with a multiplier calibrated from Budget
// via the RDP accountant — the same recipe as TensorFlow Privacy, which
// the paper's NN/LG pipelines use (Table 1).
type SGDConfig struct {
	LearningRate float64
	Momentum     float64
	Epochs       int
	BatchSize    int

	DP       bool
	ClipNorm float64        // per-example gradient L2 bound (DP only)
	Budget   privacy.Budget // total training budget (DP only)
}

// validate panics on nonsensical configurations.
func (cfg SGDConfig) validate() {
	if cfg.LearningRate <= 0 {
		panic("ml: SGD requires LearningRate > 0")
	}
	if cfg.Epochs <= 0 || cfg.BatchSize <= 0 {
		panic("ml: SGD requires Epochs, BatchSize > 0")
	}
	if cfg.Momentum < 0 || cfg.Momentum >= 1 {
		panic("ml: SGD momentum must be in [0,1)")
	}
	if cfg.DP {
		if cfg.ClipNorm <= 0 {
			panic("ml: DP-SGD requires ClipNorm > 0")
		}
		if cfg.Budget.Epsilon <= 0 || cfg.Budget.Delta <= 0 {
			panic(fmt.Sprintf("ml: DP-SGD requires ε, δ > 0, got %v", cfg.Budget))
		}
	}
}

// NoiseMultiplier returns the σ (relative to ClipNorm) that makes the
// whole run satisfy the configured budget for a dataset of size n.
func (cfg SGDConfig) NoiseMultiplier(n int) float64 {
	if !cfg.DP {
		return 0
	}
	plan := privacy.SGDPlan{N: n, BatchSize: cfg.BatchSize, Epochs: cfg.Epochs}
	return privacy.CalibrateSGDNoise(plan, cfg.Budget.Epsilon, cfg.Budget.Delta)
}

// TrainSGD trains the model in place and returns it. The trainer is
// deterministic given the RNG.
func TrainSGD(model GradModel, ds *data.Dataset, cfg SGDConfig, r *rng.RNG) GradModel {
	cfg.validate()
	n := ds.Len()
	if n == 0 {
		return model
	}
	params := model.Params()
	p := len(params)
	velocity := make([]float64, p)
	grad := make([]float64, p)
	batchGrad := make([]float64, p)

	sigma := 0.0
	if cfg.DP {
		sigma = cfg.NoiseMultiplier(n)
	}

	stepsPerEpoch := (n + cfg.BatchSize - 1) / cfg.BatchSize
	q := float64(cfg.BatchSize) / float64(n)
	perm := make([]int, 0, n)

	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		if !cfg.DP {
			perm = r.Perm(n)
		}
		for step := 0; step < stepsPerEpoch; step++ {
			for i := range batchGrad {
				batchGrad[i] = 0
			}
			count := 0
			if cfg.DP {
				// Poisson sampling: include each example with
				// probability q, matching the RDP analysis.
				for i := 0; i < n; i++ {
					if !r.Bool(q) {
						continue
					}
					ex := ds.Examples[i]
					model.Grad(ex.Features, ex.Label, grad)
					privacy.ClipL2(grad, cfg.ClipNorm)
					for j := range batchGrad {
						batchGrad[j] += grad[j]
					}
					count++
				}
				// Noise the summed gradient; normalize by the
				// *expected* batch size as in Abadi et al.
				noiseStd := sigma * cfg.ClipNorm
				expected := float64(cfg.BatchSize)
				for j := range batchGrad {
					batchGrad[j] = (batchGrad[j] + r.Normal(0, noiseStd)) / expected
				}
			} else {
				lo := step * cfg.BatchSize
				hi := lo + cfg.BatchSize
				if hi > n {
					hi = n
				}
				for _, idx := range perm[lo:hi] {
					ex := ds.Examples[idx]
					model.Grad(ex.Features, ex.Label, grad)
					for j := range batchGrad {
						batchGrad[j] += grad[j]
					}
					count++
				}
				if count == 0 {
					continue
				}
				for j := range batchGrad {
					batchGrad[j] /= float64(count)
				}
			}
			for j := range params {
				velocity[j] = cfg.Momentum*velocity[j] - cfg.LearningRate*batchGrad[j]
				params[j] += velocity[j]
			}
		}
	}
	return model
}

// Cost returns the privacy cost of one training run: the configured
// budget for DP training, zero otherwise.
func (cfg SGDConfig) Cost() privacy.Budget {
	if cfg.DP {
		return cfg.Budget
	}
	return privacy.Zero
}
