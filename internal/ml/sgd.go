package ml

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/data"
	"repro/internal/privacy"
	"repro/internal/rng"
)

// SGDConfig configures (DP-)SGD training. With DP=false it is plain
// minibatch SGD with momentum; with DP=true it is DP-SGD (Abadi et al.
// 2016): Poisson-sampled batches, per-example gradient clipping to
// ClipNorm, and Gaussian noise with a multiplier calibrated from Budget
// via the RDP accountant — the same recipe as TensorFlow Privacy, which
// the paper's NN/LG pipelines use (Table 1).
type SGDConfig struct {
	LearningRate float64
	Momentum     float64
	Epochs       int
	BatchSize    int

	DP       bool
	ClipNorm float64        // per-example gradient L2 bound (DP only)
	Budget   privacy.Budget // total training budget (DP only)
}

// validate panics on nonsensical configurations.
func (cfg SGDConfig) validate() {
	if cfg.LearningRate <= 0 {
		panic("ml: SGD requires LearningRate > 0")
	}
	if cfg.Epochs <= 0 || cfg.BatchSize <= 0 {
		panic("ml: SGD requires Epochs, BatchSize > 0")
	}
	if cfg.Momentum < 0 || cfg.Momentum >= 1 {
		panic("ml: SGD momentum must be in [0,1)")
	}
	if cfg.DP {
		if cfg.ClipNorm <= 0 {
			panic("ml: DP-SGD requires ClipNorm > 0")
		}
		if cfg.Budget.Epsilon <= 0 || cfg.Budget.Delta <= 0 {
			panic(fmt.Sprintf("ml: DP-SGD requires ε, δ > 0, got %v", cfg.Budget))
		}
	}
}

// NoiseMultiplier returns the σ (relative to ClipNorm) that makes the
// whole run satisfy the configured budget for a dataset of size n.
func (cfg SGDConfig) NoiseMultiplier(n int) float64 {
	if !cfg.DP {
		return 0
	}
	plan := privacy.SGDPlan{N: n, BatchSize: cfg.BatchSize, Epochs: cfg.Epochs}
	return privacy.CalibrateSGDNoise(plan, cfg.Budget.Epsilon, cfg.Budget.Delta)
}

// sgdScratch holds the per-training-run work buffers. Experiment sweeps
// invoke TrainSGD once per grid cell (thousands of times for Tab. 2 /
// Fig. 6), so the buffers are pooled instead of reallocated per call;
// contents are (re)initialized on checkout, keeping training
// deterministic.
type sgdScratch struct {
	velocity, grad, batchGrad []float64
}

var sgdScratchPool = sync.Pool{New: func() any { return new(sgdScratch) }}

// getSGDScratch returns buffers of length p: velocity zeroed (momentum
// must start at rest), grad and batchGrad with stale pooled contents —
// Grad fully overwrites grad, and TrainSGD re-zeroes batchGrad at the
// start of every step.
func getSGDScratch(p int) *sgdScratch {
	s := sgdScratchPool.Get().(*sgdScratch)
	if cap(s.velocity) < p {
		s.velocity = make([]float64, p)
		s.grad = make([]float64, p)
		s.batchGrad = make([]float64, p)
	}
	s.velocity = s.velocity[:p]
	s.grad = s.grad[:p]
	s.batchGrad = s.batchGrad[:p]
	for i := range s.velocity {
		s.velocity[i] = 0
	}
	return s
}

// TrainSGD trains the model in place and returns it. The trainer is
// deterministic given the RNG.
func TrainSGD(model GradModel, ds *data.Dataset, cfg SGDConfig, r *rng.RNG) GradModel {
	cfg.validate()
	n := ds.Len()
	if n == 0 {
		return model
	}
	params := model.Params()
	p := len(params)
	scratch := getSGDScratch(p)
	defer sgdScratchPool.Put(scratch)
	velocity := scratch.velocity
	grad := scratch.grad
	batchGrad := scratch.batchGrad

	sigma := 0.0
	if cfg.DP {
		sigma = cfg.NoiseMultiplier(n)
	}

	stepsPerEpoch := (n + cfg.BatchSize - 1) / cfg.BatchSize
	q := float64(cfg.BatchSize) / float64(n)
	perm := make([]int, 0, n)

	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		if !cfg.DP {
			perm = r.Perm(n)
		}
		for step := 0; step < stepsPerEpoch; step++ {
			for i := range batchGrad {
				batchGrad[i] = 0
			}
			count := 0
			if cfg.DP {
				// Poisson sampling: include each example independently
				// with probability q, matching the RDP analysis. The
				// membership draws are realized by geometric skips —
				// floor(ln U / ln(1-q)) misses between hits — so a step
				// costs O(q·n) RNG draws instead of n Bernoulli draws.
				for i := nextPoisson(r, q, -1); i < n; i = nextPoisson(r, q, i) {
					ex := ds.Examples[i]
					model.Grad(ex.Features, ex.Label, grad)
					privacy.ClipL2(grad, cfg.ClipNorm)
					for j := range batchGrad {
						batchGrad[j] += grad[j]
					}
					count++
				}
				// Noise the summed gradient; normalize by the
				// *expected* batch size as in Abadi et al.
				noiseStd := sigma * cfg.ClipNorm
				expected := float64(cfg.BatchSize)
				for j := range batchGrad {
					batchGrad[j] = (batchGrad[j] + r.Normal(0, noiseStd)) / expected
				}
			} else {
				lo := step * cfg.BatchSize
				hi := lo + cfg.BatchSize
				if hi > n {
					hi = n
				}
				for _, idx := range perm[lo:hi] {
					ex := ds.Examples[idx]
					model.Grad(ex.Features, ex.Label, grad)
					for j := range batchGrad {
						batchGrad[j] += grad[j]
					}
					count++
				}
				if count == 0 {
					continue
				}
				for j := range batchGrad {
					batchGrad[j] /= float64(count)
				}
			}
			for j := range params {
				velocity[j] = cfg.Momentum*velocity[j] - cfg.LearningRate*batchGrad[j]
				params[j] += velocity[j]
			}
		}
	}
	return model
}

// nextPoisson returns the index after cur of the next example selected
// by Poisson sampling with rate q, or a value >= n-proof sentinel
// (math.MaxInt32) when the skip runs past any realistic dataset. The
// skip length is geometric: floor(ln U / ln(1-q)) with U uniform in
// (0, 1], which reproduces independent per-example Bernoulli(q)
// membership with one draw per selected example.
func nextPoisson(r *rng.RNG, q float64, cur int) int {
	if q >= 1 {
		return cur + 1 // every example is selected
	}
	u := 1 - r.Float64() // (0, 1]: never take log of zero
	skip := math.Log(u) / math.Log1p(-q)
	if skip >= math.MaxInt32 {
		return math.MaxInt32
	}
	return cur + 1 + int(skip)
}

// Cost returns the privacy cost of one training run: the configured
// budget for DP training, zero otherwise.
func (cfg SGDConfig) Cost() privacy.Budget {
	if cfg.DP {
		return cfg.Budget
	}
	return privacy.Zero
}
