package ml

import (
	"repro/internal/linalg"
)

// LogisticRegression is a binary classifier p(y=1|x) = σ(w·x + b),
// trained with (DP-)SGD on the log loss — the paper's "LG" pipeline on
// Criteo (Table 1).
type LogisticRegression struct {
	dim    int
	params []float64 // weights then bias
}

// NewLogisticRegression returns a zero-initialized model for the given
// feature dimension.
func NewLogisticRegression(dim int) *LogisticRegression {
	return &LogisticRegression{dim: dim, params: make([]float64, dim+1)}
}

// Predict implements Model, returning the positive-class probability.
func (m *LogisticRegression) Predict(x []float64) float64 {
	return Sigmoid(linalg.Dot(m.params[:m.dim], x) + m.params[m.dim])
}

// PredictBatch implements BatchPredictor: weights and bias are sliced
// out of the parameter vector once per batch.
func (m *LogisticRegression) PredictBatch(rows [][]float64, out []float64) {
	w, b := m.params[:m.dim], m.params[m.dim]
	for i, x := range rows {
		out[i] = Sigmoid(linalg.Dot(w, x) + b)
	}
}

// Params implements GradModel.
func (m *LogisticRegression) Params() []float64 { return m.params }

// Dim returns the feature dimensionality.
func (m *LogisticRegression) Dim() int { return m.dim }

// Grad implements GradModel: ∂logloss/∂w = (p − y)·x, ∂/∂b = (p − y).
func (m *LogisticRegression) Grad(x []float64, y float64, out []float64) {
	p := m.Predict(x)
	diff := p - y
	for i := 0; i < m.dim; i++ {
		out[i] = diff * x[i]
	}
	out[m.dim] = diff
}

// SGDLinearRegression is a linear regressor trained by (DP-)SGD on the
// squared loss. The paper's Taxi NN comparisons also use SGD-trained
// linear baselines when closed-form training is not applicable.
type SGDLinearRegression struct {
	dim    int
	params []float64 // weights then bias
}

// NewSGDLinearRegression returns a zero-initialized model.
func NewSGDLinearRegression(dim int) *SGDLinearRegression {
	return &SGDLinearRegression{dim: dim, params: make([]float64, dim+1)}
}

// Predict implements Model.
func (m *SGDLinearRegression) Predict(x []float64) float64 {
	return linalg.Dot(m.params[:m.dim], x) + m.params[m.dim]
}

// PredictBatch implements BatchPredictor.
func (m *SGDLinearRegression) PredictBatch(rows [][]float64, out []float64) {
	w, b := m.params[:m.dim], m.params[m.dim]
	for i, x := range rows {
		out[i] = linalg.Dot(w, x) + b
	}
}

// Params implements GradModel.
func (m *SGDLinearRegression) Params() []float64 { return m.params }

// Dim returns the feature dimensionality.
func (m *SGDLinearRegression) Dim() int { return m.dim }

// Grad implements GradModel: ∂(pred−y)²/∂w = 2(pred−y)·x.
func (m *SGDLinearRegression) Grad(x []float64, y float64, out []float64) {
	diff := 2 * (m.Predict(x) - y)
	for i := 0; i < m.dim; i++ {
		out[i] = diff * x[i]
	}
	out[m.dim] = diff
}
