// Package ml implements the ML substrate Sage's pipelines train: linear
// regression (closed-form ridge and the AdaSSP DP mechanism of Wang 2018),
// logistic regression and multi-layer perceptrons trained with SGD or
// DP-SGD (per-example gradient clipping + Gaussian noise, Abadi et al.
// 2016), plus the naïve baselines the paper anchors its quality targets
// on (predict-the-mean for regression, majority class for classification).
package ml

import (
	"math"

	"repro/internal/data"
)

// Model produces a scalar prediction from a feature vector. For
// regression the prediction is the value; for binary classification it is
// the probability of the positive class.
type Model interface {
	Predict(features []float64) float64
}

// GradModel is a parametric model that can compute per-example gradients,
// the contract the SGD trainers need. Params returns the flat, mutable
// parameter vector; Grad writes the gradient of the per-example loss into
// out (len(out) == len(Params())).
type GradModel interface {
	Model
	Params() []float64
	Grad(features []float64, label float64, out []float64)
}

// BatchPredictor is implemented by models with a batched prediction fast
// path: PredictBatch writes one prediction per row into out
// (len(out) == len(rows)), hoisting per-call overhead (interface
// dispatch, parameter-slice re-derivation, scratch setup) out of the
// per-row loop. The serving layer's /predict/batch endpoint routes
// through it.
type BatchPredictor interface {
	Model
	PredictBatch(rows [][]float64, out []float64)
}

// PredictBatch evaluates the model on every row, using the model's
// batched fast path when it has one and falling back to a Predict loop
// otherwise. out must have len(rows) entries.
func PredictBatch(m Model, rows [][]float64, out []float64) {
	if len(out) != len(rows) {
		panic("ml: PredictBatch output length mismatch")
	}
	if bp, ok := m.(BatchPredictor); ok {
		bp.PredictBatch(rows, out)
		return
	}
	for i, x := range rows {
		out[i] = m.Predict(x)
	}
}

// SerialPredictor marks models whose Predict (and PredictBatch) mutate
// shared internal scratch and must therefore be serialized by callers
// sharing one instance across goroutines — the MLP reuses its
// activation buffers. Stateless predictors (linear, logistic, constant)
// do not implement it and may be called concurrently.
type SerialPredictor interface {
	predictUsesSharedScratch()
}

// ScratchCloner is the serving escape hatch from SerialPredictor: a
// model that can produce cheap prediction clones sharing its read-only
// parameters while owning private scratch. A server holding one such
// model can hand each connection its own clone (pooled — a clone costs
// only the scratch buffers, not a parameter copy) and run predictions
// concurrently instead of serializing every request behind one lock.
// Clones are for prediction only: training a clone would write through
// the shared parameter slice.
type ScratchCloner interface {
	SerialPredictor
	// CloneForServing returns a prediction-only clone: shared
	// parameters, private scratch. Clones predict bit-identically to
	// the original.
	CloneForServing() Model
}

// MSE returns the mean squared error of the model on the dataset
// (the paper's Taxi regression metric). It returns 0 on empty data.
func MSE(m Model, ds *data.Dataset) float64 {
	if ds.Len() == 0 {
		return 0
	}
	sum := 0.0
	for _, ex := range ds.Examples {
		d := m.Predict(ex.Features) - ex.Label
		sum += d * d
	}
	return sum / float64(ds.Len())
}

// Accuracy returns the fraction of examples whose thresholded prediction
// (p >= 0.5) matches the binary label (the paper's Criteo metric).
func Accuracy(m Model, ds *data.Dataset) float64 {
	if ds.Len() == 0 {
		return 0
	}
	correct := 0
	for _, ex := range ds.Examples {
		pred := 0.0
		if m.Predict(ex.Features) >= 0.5 {
			pred = 1
		}
		if pred == ex.Label {
			correct++
		}
	}
	return float64(correct) / float64(ds.Len())
}

// LogLoss returns the mean binary cross-entropy with predictions clamped
// away from 0 and 1.
func LogLoss(m Model, ds *data.Dataset) float64 {
	if ds.Len() == 0 {
		return 0
	}
	sum := 0.0
	for _, ex := range ds.Examples {
		p := clampProb(m.Predict(ex.Features))
		if ex.Label >= 0.5 {
			sum += -math.Log(p)
		} else {
			sum += -math.Log(1 - p)
		}
	}
	return sum / float64(ds.Len())
}

func clampProb(p float64) float64 {
	const eps = 1e-12
	if p < eps {
		return eps
	}
	if p > 1-eps {
		return 1 - eps
	}
	return p
}

// ConstantModel predicts a fixed value regardless of features. The
// paper's naïve baselines are constant models: the Taxi baseline predicts
// the mean duration (MSE 0.0069), the Criteo baseline predicts the
// majority class (accuracy 74.3%).
type ConstantModel struct{ Value float64 }

// Predict implements Model.
func (c ConstantModel) Predict([]float64) float64 { return c.Value }

// PredictBatch implements BatchPredictor.
func (c ConstantModel) PredictBatch(rows [][]float64, out []float64) {
	for i := range rows {
		out[i] = c.Value
	}
}

// NaiveMeanModel returns the constant model predicting the dataset's mean
// label.
func NaiveMeanModel(ds *data.Dataset) ConstantModel {
	return ConstantModel{Value: ds.MeanLabel()}
}

// NaiveMajorityModel returns the constant model predicting the majority
// binary class (as a probability of exactly 0 or 1).
func NaiveMajorityModel(ds *data.Dataset) ConstantModel {
	if ds.MeanLabel() >= 0.5 {
		return ConstantModel{Value: 1}
	}
	return ConstantModel{Value: 0}
}

// Sigmoid returns the logistic function 1/(1+e^{-z}).
func Sigmoid(z float64) float64 {
	if z >= 0 {
		return 1 / (1 + math.Exp(-z))
	}
	e := math.Exp(z)
	return e / (1 + e)
}
