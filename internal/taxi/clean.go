package taxi

// This file implements the Appendix C data-cleaning filters. Filtering is
// acceptable under DP because the predicates are data-independent
// constants, and Sage accounts for privacy loss on filtered points too
// (they sit in the same blocks).

// boundingBox is the Appendix C box: northwest (40.923, −74.27),
// southeast (40.4, −73.65).
const (
	boxLatMax = 40.923
	boxLatMin = 40.4
	boxLonMin = -74.27
	boxLonMax = -73.65
)

// Valid reports whether a ride passes all Appendix C filters: price in
// [$0, $1000], duration in [0, 2.5] h, a well-formed date, and both
// endpoints inside the NYC bounding box.
func Valid(r Ride) bool {
	if r.MalformedDate {
		return false
	}
	if r.Price < 0 || r.Price > 1000 {
		return false
	}
	if r.Duration < 0 || r.Duration > MaxDuration {
		return false
	}
	if !inBox(r.PickupLat, r.PickupLon) || !inBox(r.DropLat, r.DropLon) {
		return false
	}
	return true
}

func inBox(lat, lon float64) bool {
	return lat >= boxLatMin && lat <= boxLatMax && lon >= boxLonMin && lon <= boxLonMax
}

// Clean returns the rides passing Valid and the number dropped.
func Clean(rides []Ride) (kept []Ride, dropped int) {
	kept = make([]Ride, 0, len(rides))
	for _, r := range rides {
		if Valid(r) {
			kept = append(kept, r)
		} else {
			dropped++
		}
	}
	return kept, dropped
}
