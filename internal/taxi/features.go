package taxi

import (
	"repro/internal/data"
	"repro/internal/privacy"
	"repro/internal/rng"
	"repro/internal/stats"
)

// Feature layout (Listing 1's preprocessing_fn): two numeric features —
// the scaled ride distance and the average speed for the pickup hour
// (the aggregate feature computed with dp_group_by_mean) — plus one-hot
// indicators for hour of day (24), day of week (7), week of month (5)
// and distance bucket (10). The paper derives 61 binary features from 10
// contextual ones; our schema carries 46 binary + 2 numeric = 48
// dimensions, which preserves the task structure.
const (
	numHourBuckets = 24
	numDayBuckets  = 7
	numWeekBuckets = 5
	numDistBuckets = 10
	// FeatureDim is the dimensionality of featurized taxi examples.
	FeatureDim = 2 + numHourBuckets + numDayBuckets + numWeekBuckets + numDistBuckets
)

// distScale converts km to the [0, 1] scaled distance feature
// (tft.scale_to_0_1 in Listing 1).
func distScale(km float64) float64 { return privacy.Clip(km/35, 0, 1) }

// speedScale converts km/h to [0, 1].
func speedScale(kmh float64) float64 { return privacy.Clip(kmh/45, 0, 1) }

// SpeedByHour computes the average speed per hour of day — Listing 1's
// dp_group_by_mean aggregate feature. With epsilon > 0 the group means
// are released with (ε, 0)-DP; epsilon == 0 computes exact means (the
// non-private pipeline).
func SpeedByHour(rides []Ride, epsilon float64, r *rng.RNG) []float64 {
	keys := make([]int, len(rides))
	values := make([]float64, len(rides))
	for i, ride := range rides {
		keys[i] = int(ride.PickupHour % 24)
		values[i] = ride.Speed
	}
	if epsilon > 0 {
		res := stats.DPGroupByMean(keys, values, numHourBuckets, epsilon, 45, r)
		return res.Means
	}
	sums := make([]float64, numHourBuckets)
	counts := make([]float64, numHourBuckets)
	for i, k := range keys {
		sums[k] += values[i]
		counts[k]++
	}
	means := make([]float64, numHourBuckets)
	for k := range means {
		if counts[k] > 0 {
			means[k] = sums[k] / counts[k]
		}
	}
	return means
}

// Featurize converts rides into training examples using the given
// per-hour speed table (from SpeedByHour). Labels are durations scaled
// to [0, 1] by the 2.5 h cap. Examples carry the pickup hour as the
// stream time and the rider as UserID, so the same dataset supports both
// block semantics.
func Featurize(rides []Ride, speedByHour []float64) *data.Dataset {
	ds := &data.Dataset{Examples: make([]data.Example, 0, len(rides))}
	for _, ride := range rides {
		hour := int(ride.PickupHour % 24)
		day := int(ride.PickupHour / 24 % 7)
		week := int(ride.PickupHour / (24 * 7) % int64(numWeekBuckets))
		distBucket := int(distScale(ride.Distance) * float64(numDistBuckets))
		if distBucket >= numDistBuckets {
			distBucket = numDistBuckets - 1
		}
		f := make([]float64, FeatureDim)
		f[0] = distScale(ride.Distance)
		f[1] = speedScale(speedByHour[hour])
		base := 2
		f[base+hour] = 1
		base += numHourBuckets
		f[base+day] = 1
		base += numDayBuckets
		f[base+week] = 1
		base += numWeekBuckets
		f[base+distBucket] = 1
		ds.Append(data.Example{
			Features: f,
			Label:    privacy.Clip(ride.Duration/MaxDuration, 0, 1),
			Time:     ride.PickupHour,
			UserID:   ride.UserID,
		})
	}
	return ds
}

// Pipeline bundles generation → cleaning → featurization for the
// experiment harness: it generates n clean-ish rides starting at
// startHour, applies the Appendix C filters, computes the speed feature
// (DP if speedEpsilon > 0), and featurizes.
func Pipeline(n int, startHour, spanHours int64, outlierFrac, speedEpsilon float64, seed uint64) *data.Dataset {
	gen := NewGenerator(Config{OutlierFraction: outlierFrac}, seed)
	rides := gen.Generate(n, startHour, spanHours)
	clean, _ := Clean(rides)
	var r *rng.RNG
	if speedEpsilon > 0 {
		r = rng.New(seed + 1)
	}
	speeds := SpeedByHour(clean, speedEpsilon, r)
	return Featurize(clean, speeds)
}
