package taxi

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/ml"
	"repro/internal/rng"
)

func TestGenerateDeterministic(t *testing.T) {
	a := NewGenerator(Config{}, 7).Generate(100, 0, 24)
	b := NewGenerator(Config{}, 7).Generate(100, 0, 24)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("ride %d differs between same-seed generators", i)
		}
	}
	c := NewGenerator(Config{}, 8).Generate(100, 0, 24)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same > 5 {
		t.Errorf("%d/100 rides identical across seeds", same)
	}
}

func TestGenerateTimeSpan(t *testing.T) {
	rides := NewGenerator(Config{}, 1).Generate(1000, 100, 50)
	for _, r := range rides {
		if r.PickupHour < 100 || r.PickupHour >= 150 {
			t.Fatalf("pickup hour %d outside [100, 150)", r.PickupHour)
		}
	}
	// Times must be non-decreasing (stream order).
	for i := 1; i < len(rides); i++ {
		if rides[i].PickupHour < rides[i-1].PickupHour {
			t.Fatal("pickup times not monotone")
		}
	}
}

func TestCleanRides(t *testing.T) {
	rides := NewGenerator(Config{}, 2).Generate(5000, 0, 24*7)
	kept, dropped := Clean(rides)
	if dropped != 0 || len(kept) != 5000 {
		t.Errorf("clean generator dropped %d rides", dropped)
	}
}

func TestCleanFiltersOutliers(t *testing.T) {
	const frac = 0.2
	rides := NewGenerator(Config{OutlierFraction: frac}, 3).Generate(20000, 0, 24*7)
	kept, dropped := Clean(rides)
	got := float64(dropped) / 20000
	if math.Abs(got-frac) > 0.02 {
		t.Errorf("dropped fraction %v, want ~%v", got, frac)
	}
	for _, r := range kept {
		if !Valid(r) {
			t.Fatal("Clean returned an invalid ride")
		}
	}
}

func TestValidFilters(t *testing.T) {
	base := NewGenerator(Config{}, 4).Generate(1, 0, 1)[0]
	if !Valid(base) {
		t.Fatal("clean ride should be valid")
	}
	cases := []func(Ride) Ride{
		func(r Ride) Ride { r.Price = 1500; return r },
		func(r Ride) Ride { r.Price = -1; return r },
		func(r Ride) Ride { r.Duration = -0.1; return r },
		func(r Ride) Ride { r.Duration = 3; return r },
		func(r Ride) Ride { r.MalformedDate = true; return r },
		func(r Ride) Ride { r.PickupLat = 10; return r },
		func(r Ride) Ride { r.DropLon = 50; return r },
	}
	for i, mutate := range cases {
		if Valid(mutate(base)) {
			t.Errorf("case %d should be filtered", i)
		}
	}
}

func TestSpeedProfileShape(t *testing.T) {
	// Rush hours must be slower than night.
	if speedProfile(8) >= speedProfile(2) {
		t.Error("morning rush not slower than night")
	}
	if speedProfile(17) >= speedProfile(23) {
		t.Error("evening rush not slower than late night")
	}
	for h := 0; h < 24; h++ {
		if speedProfile(h) <= 0 {
			t.Errorf("hour %d has non-positive speed", h)
		}
	}
}

func TestSpeedByHourExact(t *testing.T) {
	rides := NewGenerator(Config{}, 5).Generate(50000, 0, 24*14)
	speeds := SpeedByHour(rides, 0, nil)
	if len(speeds) != 24 {
		t.Fatalf("len = %d", len(speeds))
	}
	// Recovered profile must reflect rush-hour structure.
	if speeds[8] >= speeds[2] {
		t.Errorf("hour 8 speed %v not below hour 2 speed %v", speeds[8], speeds[2])
	}
}

func TestSpeedByHourDPCloseToExact(t *testing.T) {
	rides := NewGenerator(Config{}, 6).Generate(100000, 0, 24*14)
	exact := SpeedByHour(rides, 0, nil)
	dp := SpeedByHour(rides, 1.0, rng.New(7))
	for h := range exact {
		if math.Abs(dp[h]-exact[h]) > 2.0 {
			t.Errorf("hour %d: DP speed %v far from exact %v", h, dp[h], exact[h])
		}
	}
}

func TestFeaturizeShape(t *testing.T) {
	rides := NewGenerator(Config{}, 8).Generate(1000, 0, 24*7)
	ds := Featurize(rides, SpeedByHour(rides, 0, nil))
	if ds.Len() != 1000 {
		t.Fatalf("Len = %d", ds.Len())
	}
	if ds.FeatureDim() != FeatureDim {
		t.Fatalf("FeatureDim = %d, want %d", ds.FeatureDim(), FeatureDim)
	}
	for _, ex := range ds.Examples {
		if ex.Label < 0 || ex.Label > 1 {
			t.Fatalf("label %v outside [0,1]", ex.Label)
		}
		// One-hot groups must each have exactly one active bit.
		ones := 0
		for _, v := range ex.Features[2:] {
			if v == 1 {
				ones++
			} else if v != 0 {
				t.Fatalf("non-binary one-hot value %v", v)
			}
		}
		if ones != 4 {
			t.Fatalf("expected 4 active one-hot bits, got %d", ones)
		}
	}
}

// TestCalibrationAnchors pins the generator to the paper's anchors: the
// naïve (mean-label) MSE ≈ 0.0069 and the best linear model ≈ 0.0024
// (§5 Methodology). Ranges are generous to absorb sampling noise.
func TestCalibrationAnchors(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration check trains on 150K samples")
	}
	train := Pipeline(150000, 0, 24*30, 0, 0, 11)
	test := Pipeline(30000, 0, 24*30, 0, 0, 12)
	naive := ml.MSE(ml.NaiveMeanModel(train), test)
	if naive < 0.005 || naive > 0.010 {
		t.Errorf("naive MSE = %v, want ≈ 0.0069 (paper)", naive)
	}
	lr := ml.TrainRidge(train, ml.RidgeConfig{Lambda: 1e-4})
	best := ml.MSE(lr, test)
	if best < 0.0015 || best > 0.0035 {
		t.Errorf("LR MSE = %v, want ≈ 0.0024 (paper)", best)
	}
	if best > naive/2 {
		t.Errorf("LR (%v) should at least halve the naive MSE (%v)", best, naive)
	}
}

func TestPipelineWithDPSpeeds(t *testing.T) {
	ds := Pipeline(5000, 0, 24*7, 0.05, 0.5, 13)
	if ds.Len() == 0 || ds.Len() > 5000 {
		t.Fatalf("Len = %d", ds.Len())
	}
	if ds.FeatureDim() != FeatureDim {
		t.Fatal("wrong feature dim")
	}
}

// Property: featurized values are always bounded, labels in [0,1], for
// any generator seed and outlier fraction.
func TestFeatureBoundsProperty(t *testing.T) {
	f := func(seed uint64, fracRaw uint8) bool {
		frac := float64(fracRaw) / 512 // up to 50%
		ds := Pipeline(200, 0, 48, frac, 0, seed)
		for _, ex := range ds.Examples {
			if ex.Label < 0 || ex.Label > 1 {
				return false
			}
			for _, v := range ex.Features {
				if v < 0 || v > 1 || math.IsNaN(v) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
