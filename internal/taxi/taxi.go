// Package taxi implements a synthetic stand-in for the NYC Yellow Cab
// trip-record dataset the paper evaluates on (§5, [42]). The real data is
// not redistributable here, so we generate rides with the same schema and
// a calibrated learnability profile:
//
//   - ride distances are lognormal, speeds follow an hour-of-day profile
//     with rush-hour dips, and duration ≈ distance/speed — a mildly
//     nonlinear relationship, so a neural network beats a linear model,
//     as in the paper's Fig. 5;
//   - labels (ride durations scaled to [0, 1] by the 2.5 h cap) have
//     variance ≈ 0.0069, the paper's naïve-predictor MSE, and an
//     unexplainable residual ≈ 0.002, the paper's best NN MSE;
//   - a configurable fraction of outliers (absurd prices, negative
//     durations, malformed dates, out-of-area coordinates) exercises the
//     Appendix C cleaning filters.
//
// The regression task, features (Listing 1), and quality-target ranges of
// Table 1 therefore transfer unchanged.
package taxi

import (
	"math"

	"repro/internal/rng"
)

// Ride is one taxi trip record, mirroring the TLC schema fields the
// paper's pipeline touches.
type Ride struct {
	PickupHour int64   // stream tick (hours since epoch of the simulation)
	Distance   float64 // km
	Speed      float64 // km/h, average over the ride
	Duration   float64 // hours
	Price      float64 // dollars
	PickupLat  float64
	PickupLon  float64
	DropLat    float64
	DropLon    float64
	// MalformedDate marks records whose timestamp failed to parse
	// (Appendix C drops these).
	MalformedDate bool
	UserID        int64 // rider identity, for user-keyed blocks (§4.4)
}

// MaxDuration is the duration cap in hours (Appendix C filters rides
// outside [0, 2.5] h); labels are durations divided by this cap.
const MaxDuration = 2.5

// speedProfile returns the mean traffic speed (km/h) for an hour of day:
// free-flowing at night, congested at rush hours — this is the structure
// the hour_of_day_speed feature of Listing 1 extracts.
func speedProfile(hour int) float64 {
	switch {
	case hour < 6:
		return 34
	case hour < 8:
		return 25 - 5*float64(hour-6) // morning slowdown
	case hour < 10:
		return 12 // morning rush
	case hour < 16:
		return 20
	case hour < 19:
		return 10.5 // evening rush
	case hour < 22:
		return 18
	default:
		return 29
	}
}

// Config controls generation.
type Config struct {
	// OutlierFraction is the probability a ride is corrupted into one
	// of the Appendix C outlier classes. Default 0 (clean data).
	OutlierFraction float64
	// Users is the number of distinct riders to draw UserIDs from
	// (default 10000).
	Users int
}

// Generator produces a deterministic synthetic ride stream.
type Generator struct {
	cfg Config
	r   *rng.RNG
}

// NewGenerator returns a generator seeded for reproducibility.
func NewGenerator(cfg Config, seed uint64) *Generator {
	if cfg.Users <= 0 {
		cfg.Users = 10000
	}
	return &Generator{cfg: cfg, r: rng.New(seed)}
}

// Generate returns n rides whose pickup times advance uniformly through
// [startHour, startHour+spanHours).
func (g *Generator) Generate(n int, startHour, spanHours int64) []Ride {
	if spanHours <= 0 {
		spanHours = 1
	}
	rides := make([]Ride, n)
	for i := range rides {
		tick := startHour + int64(float64(spanHours)*float64(i)/float64(n))
		rides[i] = g.ride(tick)
		if g.cfg.OutlierFraction > 0 && g.r.Bool(g.cfg.OutlierFraction) {
			g.corrupt(&rides[i])
		}
	}
	return rides
}

// ride draws one clean ride at the given stream tick.
func (g *Generator) ride(tick int64) Ride {
	hour := int(tick % 24)
	// Lognormal distances, mostly 1-15 km, clipped to [0.3, 35]. The
	// spread is calibrated so the scaled-label variance (the naïve
	// predictor's MSE) lands near the paper's 0.0069.
	dist := g.r.LogNormal(1.32, 0.66)
	if dist < 0.3 {
		dist = 0.3
	}
	if dist > 35 {
		dist = 35
	}
	// Speed: hour profile plus per-ride variation; longer rides are
	// slightly faster (highway segments).
	speed := speedProfile(hour) + g.r.Normal(0, 3.0) + 0.25*dist
	if speed < 4 {
		speed = 4
	}
	// Duration with multiplicative noise (route, lights, pickup delay),
	// calibrated so the irreducible label variance — the best
	// achievable MSE — lands near the paper's ≈ 0.002.
	duration := dist / speed * math.Exp(g.r.Normal(0, 0.28))
	if duration > MaxDuration {
		duration = MaxDuration
	}
	price := 3 + 2.2*dist + g.r.Normal(0, 1)
	if price < 3 {
		price = 3
	}
	// Coordinates inside the Appendix C bounding box.
	lat := 40.5 + g.r.Float64()*0.35
	lon := -74.1 + g.r.Float64()*0.35
	return Ride{
		PickupHour: tick,
		Distance:   dist,
		Speed:      speed,
		Duration:   duration,
		Price:      price,
		PickupLat:  lat, PickupLon: lon,
		DropLat: lat + g.r.Normal(0, 0.02), DropLon: lon + g.r.Normal(0, 0.02),
		UserID: int64(g.r.IntN(g.cfg.Users)),
	}
}

// corrupt turns a clean ride into one of the outlier classes Appendix C
// filters: absurd price, out-of-range duration, malformed date, or
// out-of-area coordinates.
func (g *Generator) corrupt(ride *Ride) {
	switch g.r.IntN(4) {
	case 0:
		ride.Price = 1000 + g.r.Float64()*1e6
	case 1:
		if g.r.Bool(0.5) {
			ride.Duration = -g.r.Float64()
		} else {
			ride.Duration = MaxDuration + 1 + g.r.Float64()*10
		}
	case 2:
		ride.MalformedDate = true
	default:
		ride.PickupLat = 10 + g.r.Float64()*20 // far outside NYC
		ride.PickupLon = 50
	}
}
