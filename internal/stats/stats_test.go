package stats

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestDPCountConcentrates(t *testing.T) {
	r := rng.New(1)
	sum := 0.0
	const reps = 2000
	for i := 0; i < reps; i++ {
		sum += DPCount(1000, 1.0, r)
	}
	if mean := sum / reps; math.Abs(mean-1000) > 1 {
		t.Errorf("mean DP count = %v, want ~1000", mean)
	}
}

func TestDPSumClipsOutliers(t *testing.T) {
	r := rng.New(2)
	// One enormous outlier must not dominate: clipped to hi=1.
	values := []float64{1, 1, 1, 1e9}
	sum := 0.0
	const reps = 2000
	for i := 0; i < reps; i++ {
		sum += DPSum(values, 0, 1, 1.0, r)
	}
	if mean := sum / reps; math.Abs(mean-4) > 0.2 {
		t.Errorf("mean DP sum = %v, want ~4 (outlier clipped)", mean)
	}
}

func TestDPSumSensitivityScalesNoise(t *testing.T) {
	r1, r2 := rng.New(3), rng.New(3)
	values := make([]float64, 100)
	varOf := func(r *rng.RNG, lo, hi float64) float64 {
		const reps = 4000
		var sum, sumSq float64
		for i := 0; i < reps; i++ {
			v := DPSum(values, lo, hi, 1.0, r)
			sum += v
			sumSq += v * v
		}
		mean := sum / reps
		return sumSq/reps - mean*mean
	}
	small := varOf(r1, 0, 1)
	big := varOf(r2, 0, 10)
	// Sensitivity 10 → scale 10× → variance 100×.
	if ratio := big / small; ratio < 50 || ratio > 200 {
		t.Errorf("noise variance ratio = %v, want ~100", ratio)
	}
}

func TestDPMean(t *testing.T) {
	r := rng.New(4)
	values := make([]float64, 10000)
	for i := range values {
		values[i] = 0.5
	}
	res := DPMean(values, 0, 1, 1.0, r)
	if math.Abs(res.Mean-0.5) > 0.01 {
		t.Errorf("DP mean = %v, want ~0.5", res.Mean)
	}
	if res.Epsilon != 1.0 {
		t.Errorf("reported ε = %v", res.Epsilon)
	}
	if math.Abs(res.NoisyN-10000) > 100 {
		t.Errorf("noisy n = %v", res.NoisyN)
	}
}

func TestDPMeanEmptyInput(t *testing.T) {
	r := rng.New(5)
	res := DPMean(nil, 0, 1, 1.0, r)
	if math.IsNaN(res.Mean) || math.IsInf(res.Mean, 0) {
		t.Errorf("empty mean = %v, want finite", res.Mean)
	}
}

func TestDPVariance(t *testing.T) {
	r := rng.New(6)
	values := make([]float64, 50000)
	gen := rng.New(7)
	for i := range values {
		values[i] = gen.Float64() // uniform [0,1): variance 1/12
	}
	got := DPVariance(values, 0, 1, 1.0, r)
	if math.Abs(got-1.0/12) > 0.01 {
		t.Errorf("DP variance = %v, want ~%v", got, 1.0/12)
	}
	// Empty input: the noisy count may wobble above 1, but the release
	// must stay finite and non-negative.
	if v := DPVariance(nil, 0, 1, 1.0, r); math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
		t.Errorf("empty variance = %v, want finite non-negative", v)
	}
}

func TestHistogram(t *testing.T) {
	r := rng.New(8)
	keys := make([]int, 0, 6000)
	for i := 0; i < 1000; i++ {
		keys = append(keys, 0, 1, 1, 2, 2, 2)
	}
	keys = append(keys, -5, 99) // out of range, dropped
	got := Histogram(keys, 3, 2.0, r)
	want := []float64{1000, 2000, 3000}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 50 {
			t.Errorf("bucket %d = %v, want ~%v", i, got[i], want[i])
		}
	}
}

func TestNormalizedHistogram(t *testing.T) {
	r := rng.New(9)
	keys := make([]int, 0, 10000)
	for i := 0; i < 5000; i++ {
		keys = append(keys, 0, 1)
	}
	got := NormalizedHistogram(keys, 2, 2.0, r)
	if math.Abs(got[0]-0.5) > 0.02 || math.Abs(got[1]-0.5) > 0.02 {
		t.Errorf("frequencies = %v, want ~[0.5, 0.5]", got)
	}
}

func TestDPGroupByMean(t *testing.T) {
	r := rng.New(10)
	// Key 0 has mean 10, key 1 has mean -5, key 2 is empty.
	var keys []int
	var values []float64
	for i := 0; i < 5000; i++ {
		keys = append(keys, 0, 1)
		values = append(values, 10, -5)
	}
	res := DPGroupByMean(keys, values, 3, 1.0, 20, r)
	if math.Abs(res.Means[0]-10) > 0.5 {
		t.Errorf("key 0 mean = %v, want ~10", res.Means[0])
	}
	if math.Abs(res.Means[1]+5) > 0.5 {
		t.Errorf("key 1 mean = %v, want ~-5", res.Means[1])
	}
	// Empty key: mean clipped into range, not NaN.
	if math.IsNaN(res.Means[2]) || math.Abs(res.Means[2]) > 20 {
		t.Errorf("empty key mean = %v", res.Means[2])
	}
}

func TestDPGroupByMeanClipsValues(t *testing.T) {
	r := rng.New(11)
	keys := make([]int, 1000)
	values := make([]float64, 1000)
	for i := range values {
		values[i] = 1e9 // should clip to valueRange=1
	}
	res := DPGroupByMean(keys, values, 1, 1.0, 1, r)
	if res.Means[0] > 1.01 {
		t.Errorf("mean = %v, want clipped to ~1", res.Means[0])
	}
}

func TestDPGroupByMeanValidation(t *testing.T) {
	r := rng.New(12)
	for _, fn := range []func(){
		func() { DPGroupByMean([]int{1}, []float64{1, 2}, 2, 1, 1, r) },
		func() { DPGroupByMean([]int{1}, []float64{1}, 0, 1, 1, r) },
		func() { DPGroupByMean([]int{1}, []float64{1}, 2, 1, 0, r) },
		func() { Histogram(nil, 0, 1, r) },
		func() { DPSum(nil, 1, 0, 1, r) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

// Property: histogram total stays near the true total for any key layout
// (noise is zero-mean), and the output length always equals nBuckets.
func TestHistogramShapeProperty(t *testing.T) {
	f := func(rawKeys []uint8, rawBuckets uint8) bool {
		n := int(rawBuckets)%20 + 1
		keys := make([]int, len(rawKeys))
		for i, k := range rawKeys {
			keys[i] = int(k) % n
		}
		got := Histogram(keys, n, 100, rng.New(uint64(len(rawKeys))))
		if len(got) != n {
			return false
		}
		total := 0.0
		for _, c := range got {
			total += c
		}
		// ε=100 noise is tiny; total within ±n.
		return math.Abs(total-float64(len(keys))) < float64(n)+5
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: group-by means always land inside the clipping range.
func TestGroupByMeanRangeProperty(t *testing.T) {
	f := func(raw []int8, seed uint64) bool {
		if len(raw) == 0 {
			return true
		}
		keys := make([]int, len(raw))
		values := make([]float64, len(raw))
		for i, v := range raw {
			keys[i] = int(uint8(v)) % 4
			values[i] = float64(v)
		}
		res := DPGroupByMean(keys, values, 4, 0.5, 10, rng.New(seed))
		for _, m := range res.Means {
			if m < -10-1e-9 || m > 10+1e-9 || math.IsNaN(m) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
