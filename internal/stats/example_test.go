package stats_test

import (
	"fmt"

	"repro/internal/rng"
	"repro/internal/stats"
)

// ExampleDPGroupByMean mirrors Listing 1's dp_group_by_mean: per-key
// means released under parallel composition (one ε for all keys).
func ExampleDPGroupByMean() {
	// Two keys with means 10 and -5.
	var keys []int
	var values []float64
	for i := 0; i < 50000; i++ {
		keys = append(keys, 0, 1)
		values = append(values, 10, -5)
	}
	res := stats.DPGroupByMean(keys, values, 2, 1.0, 20, rng.New(3))
	fmt.Println("key 0 near 10:", res.Means[0] > 9.5 && res.Means[0] < 10.5)
	fmt.Println("key 1 near -5:", res.Means[1] > -5.5 && res.Means[1] < -4.5)
	// Output:
	// key 0 near 10: true
	// key 1 near -5: true
}
