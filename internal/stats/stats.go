// Package stats implements the differentially private statistics Sage's
// feature pipelines release: counts, sums, means, variances, histograms,
// and the group-by-mean of Listing 1 (average speed per hour-of-day).
// These are the "Avg.Speed" and "Counts" pipelines of Table 1.
//
// All releases clip contributions to a configured range so their
// sensitivity is bounded, add Laplace noise, and report the (ε, 0) cost
// they consume. Group-by releases exploit parallel composition (McSherry
// 2009): each data point contributes to exactly one key, so the budget is
// charged once, not once per key.
package stats

import (
	"fmt"

	"repro/internal/privacy"
	"repro/internal/rng"
)

// DPCount releases the number of values n with (ε, 0)-DP
// (sensitivity 1).
func DPCount(n int, epsilon float64, r *rng.RNG) float64 {
	m := privacy.LaplaceMechanism{Sensitivity: 1, Epsilon: epsilon}
	return m.Release(float64(n), r)
}

// DPSum releases the sum of values clipped to [lo, hi] with (ε, 0)-DP.
// The sensitivity is max(|lo|, |hi|): adding or removing one point moves
// the sum by at most that much.
func DPSum(values []float64, lo, hi, epsilon float64, r *rng.RNG) float64 {
	if lo > hi {
		panic(fmt.Sprintf("stats: invalid clip range [%v, %v]", lo, hi))
	}
	sens := max(abs(lo), abs(hi))
	sum := 0.0
	for _, v := range values {
		sum += privacy.Clip(v, lo, hi)
	}
	m := privacy.LaplaceMechanism{Sensitivity: sens, Epsilon: epsilon}
	return m.Release(sum, r)
}

// MeanResult is a DP mean release together with the DP count that
// normalized it, so validators can correct for noise in both.
type MeanResult struct {
	Mean     float64
	NoisySum float64
	NoisyN   float64
	Epsilon  float64 // total ε consumed (split between sum and count)
}

// DPMean releases the mean of values clipped to [lo, hi] with (ε, 0)-DP,
// splitting the budget evenly between the sum and the count.
func DPMean(values []float64, lo, hi, epsilon float64, r *rng.RNG) MeanResult {
	half := epsilon / 2
	s := DPSum(values, lo, hi, half, r)
	n := DPCount(len(values), half, r)
	mean := 0.0
	if n > 0 {
		mean = s / n
	}
	return MeanResult{Mean: mean, NoisySum: s, NoisyN: n, Epsilon: epsilon}
}

// DPVariance releases the variance of values clipped to [lo, hi] with
// (ε, 0)-DP, splitting the budget across the sum, the sum of squares, and
// the count.
func DPVariance(values []float64, lo, hi, epsilon float64, r *rng.RNG) float64 {
	third := epsilon / 3
	s := DPSum(values, lo, hi, third, r)
	sq := make([]float64, len(values))
	bound := max(abs(lo), abs(hi))
	for i, v := range values {
		c := privacy.Clip(v, lo, hi)
		sq[i] = c * c
	}
	s2 := DPSum(sq, 0, bound*bound, third, r)
	n := DPCount(len(values), third, r)
	if n <= 1 {
		return 0
	}
	mean := s / n
	v := s2/n - mean*mean
	if v < 0 {
		v = 0
	}
	return v
}

// Histogram releases per-bucket counts with (ε, 0)-DP. Each data point
// falls in exactly one bucket, so by parallel composition the whole
// histogram costs ε, not ε·buckets. Out-of-range keys are dropped (the
// caller's bucketing function must be data-independent). These are the
// paper's "Counts x26" Criteo pipelines.
func Histogram(keys []int, nBuckets int, epsilon float64, r *rng.RNG) []float64 {
	if nBuckets <= 0 {
		panic("stats: Histogram requires nBuckets > 0")
	}
	counts := make([]float64, nBuckets)
	for _, k := range keys {
		if k >= 0 && k < nBuckets {
			counts[k]++
		}
	}
	m := privacy.LaplaceMechanism{Sensitivity: 1, Epsilon: epsilon}
	return m.ReleaseVector(counts, r)
}

// NormalizedHistogram releases bucket frequencies (counts divided by the
// DP total), spending half the budget on the histogram and half on the
// total count.
func NormalizedHistogram(keys []int, nBuckets int, epsilon float64, r *rng.RNG) []float64 {
	counts := Histogram(keys, nBuckets, epsilon/2, r)
	total := DPCount(len(keys), epsilon/2, r)
	out := make([]float64, nBuckets)
	if total <= 0 {
		return out
	}
	for i, c := range counts {
		out[i] = c / total
	}
	return out
}

// GroupByMeanResult is the output of DPGroupByMean: the DP mean per key
// plus the noisy counts, mirroring Listing 1's dp_group_by_mean.
type GroupByMeanResult struct {
	Means  []float64
	Counts []float64
	Sums   []float64
}

// DPGroupByMean computes the DP mean of values grouped by key (Listing 1,
// lines 33-42): noisy per-key counts plus noisy per-key sums, each with
// ε/2 (sensitivity doubles nothing: every point has exactly one key, so
// the groups compose in parallel; the budget is split between the count
// release and the sum release). valueRange bounds |value|; values are
// clipped to [-valueRange, valueRange].
func DPGroupByMean(keys []int, values []float64, nKeys int, epsilon, valueRange float64, r *rng.RNG) GroupByMeanResult {
	if len(keys) != len(values) {
		panic("stats: keys/values length mismatch")
	}
	if nKeys <= 0 || valueRange <= 0 {
		panic("stats: DPGroupByMean requires nKeys, valueRange > 0")
	}
	counts := make([]float64, nKeys)
	sums := make([]float64, nKeys)
	for i, k := range keys {
		if k < 0 || k >= nKeys {
			continue
		}
		counts[k]++
		sums[k] += privacy.Clip(values[i], -valueRange, valueRange)
	}
	// Listing 1 adds laplace(2/ε) to counts and laplace(range·2/ε) to
	// sums: ε/2 for each of the two parallel-composed releases.
	cm := privacy.LaplaceMechanism{Sensitivity: 1, Epsilon: epsilon / 2}
	sm := privacy.LaplaceMechanism{Sensitivity: valueRange, Epsilon: epsilon / 2}
	noisyCounts := cm.ReleaseVector(counts, r)
	noisySums := sm.ReleaseVector(sums, r)
	means := make([]float64, nKeys)
	for k := 0; k < nKeys; k++ {
		if noisyCounts[k] > 1 {
			means[k] = noisySums[k] / noisyCounts[k]
		}
		means[k] = privacy.Clip(means[k], -valueRange, valueRange)
	}
	return GroupByMeanResult{Means: means, Counts: noisyCounts, Sums: noisySums}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func max(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
