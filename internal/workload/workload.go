// Package workload implements the multi-pipeline workload simulation of
// §5.4: a data stream delivering one block per hour, ML pipelines
// arriving with Gamma-distributed inter-arrival times and power-law
// sample complexities, and four budget-management strategies competing
// for the stream's (εg, δg) budget:
//
//   - Streaming composition (prior work): each data point is consumed by
//     exactly one pipeline and never reused.
//   - Query composition (prior work): pipelines run one DP sub-query per
//     block and aggregate, so combining B blocks costs ≈ √B more data
//     for the same quality (each sub-query adds independent noise; the
//     averaged noise shrinks only as √B while a combined query's noise
//     would shrink as B).
//   - Block/Aggressive: block composition, spending every allocated
//     budget at invocation time.
//   - Block/Conserve (Sage): block composition with the privacy-adaptive
//     doubling schedule, spending the least budget that passes.
//
// The simulator abstracts training runs into a data-requirement frontier
// calibrated from the Fig. 5/6 experiments: a pipeline with base
// complexity n* (the samples its target needs at ε = εg without
// contention) requires nReq(ε) = n*·(1 + κ/ε)/(1 + κ) samples when
// trained at budget ε — DP noise is compensated with data, the premise
// of privacy-adaptive training. This keeps the Fig. 8 sweep tractable
// while preserving the contention dynamics the figure measures.
package workload

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/parallel"
	"repro/internal/rng"
)

// Strategy selects the §5.4 budget-management strategy.
type Strategy int

const (
	// StreamingComposition consumes each point once (prior work).
	StreamingComposition Strategy = iota
	// QueryComposition runs per-block sub-queries (prior work).
	QueryComposition
	// BlockAggressive is block composition spending all allocation.
	BlockAggressive
	// BlockConserve is Sage: block composition + conserving doubling.
	BlockConserve
)

// String returns the strategy name as used in Fig. 8's legend.
func (s Strategy) String() string {
	switch s {
	case StreamingComposition:
		return "Streaming Composition"
	case QueryComposition:
		return "Query Composition"
	case BlockAggressive:
		return "Block/Aggressive"
	default:
		return "Block/Conserve (Sage)"
	}
}

// Config parameterizes one simulation run.
type Config struct {
	Strategy Strategy
	// EpsG is the per-block global budget (paper: 1.0).
	EpsG float64
	// BlockSize is the number of points in one hourly block (paper:
	// ~16K for Taxi, ~267K for Criteo).
	BlockSize int
	// ArrivalRate is the expected pipeline arrivals per hour (Fig. 8's
	// x-axis).
	ArrivalRate float64
	// GammaShape shapes the inter-arrival Gamma distribution
	// (mean is fixed at 1/ArrivalRate; default 2).
	GammaShape float64
	// Complexity* parameterize the power-law sample complexity, in
	// units of blocks of data: n* = BlockSize · Pareto(Min, Alpha)
	// clipped to Max (defaults 0.8, 1.6, 60 — mean ≈ 2 hourly blocks).
	ComplexityMinBlocks float64
	ComplexityAlpha     float64
	ComplexityMaxBlocks float64
	// Kappa is the DP data-inflation constant κ (default 1: training
	// at ε = εg/16 needs ≈ 8.5× the ε = 1 data).
	Kappa float64
	// Epsilon0 is the conserving schedule's starting budget (default
	// EpsG/16).
	Epsilon0 float64
	// Hours is the simulated horizon (default 1000).
	Hours int
	// Seed makes runs reproducible.
	Seed uint64
	// Workers bounds Sweep's parallelism across (rate, strategy) cells
	// (<= 0 means runtime.GOMAXPROCS(0)). A single Run is always
	// sequential; Sweep's output is bit-identical for any value.
	Workers int
}

func (c *Config) fillDefaults() {
	if c.EpsG == 0 {
		c.EpsG = 1
	}
	if c.GammaShape == 0 {
		c.GammaShape = 2
	}
	if c.ComplexityMinBlocks == 0 {
		c.ComplexityMinBlocks = 0.8
	}
	if c.ComplexityAlpha == 0 {
		c.ComplexityAlpha = 1.6
	}
	if c.ComplexityMaxBlocks == 0 {
		c.ComplexityMaxBlocks = 60
	}
	if c.Kappa == 0 {
		c.Kappa = 1
	}
	if c.Epsilon0 == 0 {
		c.Epsilon0 = c.EpsG / 16
	}
	if c.Hours == 0 {
		c.Hours = 1000
	}
}

// Stats summarizes a run.
type Stats struct {
	// Arrived and Released count pipelines; Unfinished = Arrived −
	// Released at the horizon.
	Arrived, Released, Unfinished int
	// AvgReleaseTime is the mean hours from pipeline arrival to model
	// release; unfinished pipelines contribute their (censored) age at
	// the horizon, so saturated systems show diverging times as in
	// Fig. 8.
	AvgReleaseTime float64
	// AvgBudgetSpent is the mean ε consumed per released model.
	AvgBudgetSpent float64
}

// simBlock is one hourly data block.
type simBlock struct {
	size float64
	// free is budget not yet allocated to any pipeline.
	free float64
}

// allocEntry is a pipeline's reserved budget on one block.
type allocEntry struct {
	block *simBlock
	amt   float64
}

// simPipeline is one in-flight training pipeline.
type simPipeline struct {
	id      int
	arrived int
	need    float64 // base sample complexity n* (points at ε = εg)
	// allocs holds this pipeline's per-block budget reservations.
	allocs []allocEntry
	index  map[*simBlock]int // block → position in allocs
	// streaming composition state: points consumed so far.
	got float64
	// spent ε for reporting (on release).
	spent      float64
	releasedAt int
	done       bool
}

// addAlloc reserves amt more budget on block b for the pipeline.
func (p *simPipeline) addAlloc(b *simBlock, amt float64) {
	if i, ok := p.index[b]; ok {
		p.allocs[i].amt += amt
		return
	}
	p.index[b] = len(p.allocs)
	p.allocs = append(p.allocs, allocEntry{block: b, amt: amt})
}

// sim is the simulation state.
type sim struct {
	cfg      Config
	r        *rng.RNG
	blocks   []*simBlock
	freed    []*simBlock // blocks whose free pool gained budget this hour
	waiting  []*simPipeline
	released []*simPipeline
	now      int
	nextID   int
}

// nReq returns the data requirement of a pipeline at training budget
// eps: n*·(1 + κ/ε)/(1 + κ), the privacy-utility frontier.
func (s *sim) nReq(p *simPipeline, eps float64) float64 {
	k := s.cfg.Kappa
	return p.need * (1 + k/eps) / (1 + k)
}

// Run simulates the workload and returns its statistics.
func Run(cfg Config) Stats {
	cfg.fillDefaults()
	if cfg.ArrivalRate <= 0 {
		panic(fmt.Sprintf("workload: ArrivalRate must be > 0, got %v", cfg.ArrivalRate))
	}
	if cfg.BlockSize <= 0 {
		panic("workload: BlockSize must be > 0")
	}
	s := &sim{cfg: cfg, r: rng.New(cfg.Seed)}

	// Pre-draw pipeline arrival times (Gamma inter-arrivals with mean
	// 1/rate).
	var arrivals []float64
	t := 0.0
	for t < float64(cfg.Hours) {
		t += s.r.Gamma(cfg.GammaShape, 1/(cfg.GammaShape*cfg.ArrivalRate))
		arrivals = append(arrivals, t)
	}
	nextArrival := 0

	for s.now = 0; s.now < cfg.Hours; s.now++ {
		// 1. Pipeline arrivals this hour.
		for nextArrival < len(arrivals) && arrivals[nextArrival] < float64(s.now+1) {
			blocksNeeded := s.r.ParetoMin(cfg.ComplexityMinBlocks, cfg.ComplexityAlpha)
			if blocksNeeded > cfg.ComplexityMaxBlocks {
				blocksNeeded = cfg.ComplexityMaxBlocks
			}
			p := &simPipeline{
				id:      s.nextID,
				arrived: s.now,
				need:    blocksNeeded * float64(cfg.BlockSize),
				index:   make(map[*simBlock]int),
			}
			s.nextID++
			s.waiting = append(s.waiting, p)
			nextArrival++
		}

		// 2. A new block arrives with a fresh budget.
		nb := &simBlock{size: float64(cfg.BlockSize), free: cfg.EpsG}
		s.blocks = append(s.blocks, nb)
		s.freed = append(s.freed, nb)

		// 3. Distribute free block budgets evenly among waiting
		// pipelines (the paper's allocation rule). Streaming
		// composition distributes *points* instead.
		if len(s.waiting) > 0 {
			if cfg.Strategy == StreamingComposition {
				s.distributePoints()
			} else {
				s.distributeBudget()
			}
		}

		// 4. Every waiting pipeline attempts to finish.
		s.attemptAll()
	}

	return s.stats()
}

// distributeBudget splits the free budget of recently-freed blocks
// evenly across the waiting pipelines.
func (s *sim) distributeBudget() {
	if len(s.freed) == 0 {
		return
	}
	n := float64(len(s.waiting))
	for _, b := range s.freed {
		if b.free <= 0 {
			continue
		}
		share := b.free / n
		for _, p := range s.waiting {
			p.addAlloc(b, share)
		}
		b.free = 0
	}
	s.freed = s.freed[:0]
}

// distributePoints gives each waiting pipeline an equal share of the
// newest block's points (streaming: each point used once, then gone).
func (s *sim) distributePoints() {
	b := s.blocks[len(s.blocks)-1]
	share := b.size / float64(len(s.waiting))
	for _, p := range s.waiting {
		p.got += share
	}
	b.size = 0
	s.freed = s.freed[:0]
}

// attemptAll lets every waiting pipeline try to complete, oldest first,
// and redistributes budget returned by completions.
func (s *sim) attemptAll() {
	progress := true
	for progress {
		progress = false
		for _, p := range s.waiting {
			if p.done {
				continue
			}
			if s.attempt(p) {
				p.done = true
				p.releasedAt = s.now
				s.released = append(s.released, p)
				progress = true
			}
		}
		if !progress {
			return
		}
		// Compact the waiting list.
		kept := s.waiting[:0]
		for _, p := range s.waiting {
			if !p.done {
				kept = append(kept, p)
			}
		}
		s.waiting = kept
		// Budget returned by completions sits in the freed blocks'
		// pools; hand it to the remaining waiters right away.
		if len(s.waiting) > 0 && s.cfg.Strategy != StreamingComposition {
			s.distributeBudget()
		}
	}
}

// attempt returns true if pipeline p can release its model now.
func (s *sim) attempt(p *simPipeline) bool {
	switch s.cfg.Strategy {
	case StreamingComposition:
		// Full budget on exclusively-owned points.
		if p.got >= s.nReq(p, s.cfg.EpsG) {
			p.spent = s.cfg.EpsG
			return true
		}
		return false
	case BlockConserve, QueryComposition:
		return s.attemptConserve(p, s.cfg.Strategy == QueryComposition)
	default:
		return s.attemptAggressive(p)
	}
}

// attemptConserve scans a geometric budget grid upward from far below
// ε0 (contention can thin per-block allocations well under the nominal
// starting budget) and releases at the smallest budget whose affordable
// blocks hold enough data. Query composition additionally pays the √B
// penalty for combining B blocks with independent noise, over the
// minimal prefix of blocks it actually needs.
func (s *sim) attemptConserve(p *simPipeline, queryPenalty bool) bool {
	size := float64(s.cfg.BlockSize)
	for eps := s.cfg.Epsilon0 / 64; eps <= s.cfg.EpsG*(1+1e-9); eps *= 2 {
		count := 0
		for _, e := range p.allocs {
			if e.amt >= eps {
				count++
			}
		}
		if count == 0 {
			continue
		}
		need := s.nReq(p, eps)
		// Blocks are same-sized: the smallest m ≤ count of them that
		// satisfies the requirement (query composition pays √m).
		useBlocks := 0
		for m := 1; m <= count; m++ {
			data := float64(m) * size
			if queryPenalty {
				if data >= need*math.Sqrt(float64(m)) {
					useBlocks = m
					break
				}
			} else if data >= need {
				useBlocks = m
				break
			}
		}
		if useBlocks == 0 {
			continue
		}
		// Charge ε on exactly useBlocks of the affordable blocks and
		// return everything else.
		used := make(map[*simBlock]bool, useBlocks)
		for _, e := range p.allocs {
			if e.amt >= eps && len(used) < useBlocks {
				used[e.block] = true
			}
		}
		s.spendUsed(p, used, eps)
		p.spent = eps
		return true
	}
	return false
}

// spendUsed charges eps on the used blocks, returning their unspent
// allocation slices and every allocation on unused blocks.
func (s *sim) spendUsed(p *simPipeline, used map[*simBlock]bool, eps float64) {
	for _, e := range p.allocs {
		if used[e.block] {
			s.returnBudget(e.block, e.amt-eps)
		} else {
			s.returnBudget(e.block, e.amt)
		}
	}
	p.allocs = nil
	p.index = nil
}

// attemptAggressive uses as much allocated budget as possible: it orders
// its blocks by allocation (richest first) and finds the shortest prefix
// whose minimum allocation ε and total size satisfy the frontier,
// spending the prefix's entire allocations.
func (s *sim) attemptAggressive(p *simPipeline) bool {
	if len(p.allocs) == 0 {
		return false
	}
	entries := append([]allocEntry{}, p.allocs...)
	sort.Slice(entries, func(i, j int) bool { return entries[i].amt > entries[j].amt })
	total := 0.0
	for k, e := range entries {
		total += e.block.size
		epsEff := math.Min(e.amt, s.cfg.EpsG) // min alloc in the prefix
		if epsEff <= 0 {
			break
		}
		if total >= s.nReq(p, epsEff) {
			// Use blocks with alloc ≥ this prefix's minimum; burn
			// their full allocation.
			s.spendAndReturn(p, entries[k].amt, epsEff, true)
			p.spent = epsEff
			return true
		}
	}
	return false
}

// spendAndReturn finalizes p's training run: allocations of at least
// threshold belong to the used blocks (charged ε each — or burned whole
// when burnAll); every other allocation returns to its block's free pool
// for redistribution.
func (s *sim) spendAndReturn(p *simPipeline, threshold, eps float64, burnAll bool) {
	for _, e := range p.allocs {
		if e.amt >= threshold {
			if !burnAll {
				s.returnBudget(e.block, e.amt-eps)
			}
		} else {
			s.returnBudget(e.block, e.amt)
		}
	}
	p.allocs = nil
	p.index = nil
}

// returnBudget adds budget back to a block's free pool and marks it for
// redistribution.
func (s *sim) returnBudget(b *simBlock, amt float64) {
	if amt <= 0 {
		return
	}
	if b.free == 0 {
		s.freed = append(s.freed, b)
	}
	b.free += amt
}

// stats finalizes the run's statistics.
func (s *sim) stats() Stats {
	st := Stats{
		Arrived:    s.nextID,
		Released:   len(s.released),
		Unfinished: len(s.waiting),
	}
	totalTime, totalBudget := 0.0, 0.0
	for _, p := range s.released {
		totalTime += float64(p.releasedAt - p.arrived)
		totalBudget += p.spent
	}
	for _, p := range s.waiting {
		totalTime += float64(s.now - p.arrived) // censored
	}
	if n := st.Released + st.Unfinished; n > 0 {
		st.AvgReleaseTime = totalTime / float64(n)
	}
	if st.Released > 0 {
		st.AvgBudgetSpent = totalBudget / float64(st.Released)
	}
	return st
}

// SweepPoint is one (arrival rate, strategy) measurement for Fig. 8.
type SweepPoint struct {
	Rate     float64
	Strategy Strategy
	Stats    Stats
}

// Sweep runs the base configuration across arrival rates and strategies,
// regenerating one panel of Fig. 8. The (rate × strategy) grid is
// enqueued on the experiment scheduler — the shared process-wide pool
// when one is installed (parallel.SetGlobal), else base.Workers private
// goroutines; every cell simulates from its own RNG seeded by base.Seed,
// so the points are bit-identical for any worker count and any
// cross-experiment interleaving.
func Sweep(base Config, rates []float64, strategies []Strategy) []SweepPoint {
	type cell struct {
		rate  float64
		strat Strategy
	}
	var cells []cell
	for _, rate := range rates {
		for _, strat := range strategies {
			cells = append(cells, cell{rate: rate, strat: strat})
		}
	}
	// A cell simulates base.Hours ticks whose per-block training cost
	// scales with BlockSize; hint the expected cell cost (rough
	// milliseconds) so big-block sweeps (Criteo's 267K blocks) drain
	// ahead of cheap batches in a shared pool instead of forming the
	// tail.
	weight := float64(base.Hours) * float64(base.BlockSize) / 1e6
	return parallel.MapWeighted(base.Workers, len(cells), weight, func(i int) SweepPoint {
		cfg := base
		cfg.ArrivalRate = cells[i].rate
		cfg.Strategy = cells[i].strat
		return SweepPoint{Rate: cells[i].rate, Strategy: cells[i].strat, Stats: Run(cfg)}
	})
}
