package workload

import (
	"testing"
)

func baseCfg(strategy Strategy, rate float64) Config {
	return Config{
		Strategy:    strategy,
		BlockSize:   16000, // Taxi-scale hourly blocks
		ArrivalRate: rate,
		Hours:       600,
		Seed:        42,
	}
}

func TestRunDeterministic(t *testing.T) {
	a := Run(baseCfg(BlockConserve, 0.3))
	b := Run(baseCfg(BlockConserve, 0.3))
	if a != b {
		t.Fatalf("same-seed runs differ: %+v vs %+v", a, b)
	}
}

func TestLightLoadReleasesQuickly(t *testing.T) {
	st := Run(baseCfg(BlockConserve, 0.05))
	if st.Released == 0 {
		t.Fatal("no models released under light load")
	}
	if st.AvgReleaseTime > 50 {
		t.Errorf("light-load release time %v h too high", st.AvgReleaseTime)
	}
	frac := float64(st.Released) / float64(st.Arrived)
	if frac < 0.8 {
		t.Errorf("only %v of pipelines released under light load", frac)
	}
}

func TestBlockStrategiesBeatPriorWork(t *testing.T) {
	// Fig. 8's headline: at moderate load, block composition releases
	// far faster than query or streaming composition.
	rate := 0.4
	conserve := Run(baseCfg(BlockConserve, rate))
	query := Run(baseCfg(QueryComposition, rate))
	streaming := Run(baseCfg(StreamingComposition, rate))
	if conserve.AvgReleaseTime >= query.AvgReleaseTime {
		t.Errorf("conserve %v h not faster than query %v h",
			conserve.AvgReleaseTime, query.AvgReleaseTime)
	}
	if conserve.AvgReleaseTime >= streaming.AvgReleaseTime {
		t.Errorf("conserve %v h not faster than streaming %v h",
			conserve.AvgReleaseTime, streaming.AvgReleaseTime)
	}
}

func TestConserveBeatsAggressiveUnderLoad(t *testing.T) {
	// Fig. 8: at high arrival rates the conserving strategy outperforms
	// aggressive spending.
	rate := 0.7
	conserve := Run(baseCfg(BlockConserve, rate))
	aggressive := Run(baseCfg(BlockAggressive, rate))
	if conserve.AvgReleaseTime >= aggressive.AvgReleaseTime {
		t.Errorf("conserve %v h not below aggressive %v h at rate %v",
			conserve.AvgReleaseTime, aggressive.AvgReleaseTime, rate)
	}
	// And it spends less budget per model.
	if conserve.AvgBudgetSpent >= aggressive.AvgBudgetSpent {
		t.Errorf("conserve ε/model %v not below aggressive %v",
			conserve.AvgBudgetSpent, aggressive.AvgBudgetSpent)
	}
}

func TestReleaseTimeGrowsWithLoad(t *testing.T) {
	for _, strat := range []Strategy{BlockConserve, QueryComposition} {
		low := Run(baseCfg(strat, 0.1))
		high := Run(baseCfg(strat, 0.7))
		if high.AvgReleaseTime <= low.AvgReleaseTime {
			t.Errorf("%v: release time did not grow with load (%v → %v)",
				strat, low.AvgReleaseTime, high.AvgReleaseTime)
		}
	}
}

func TestSustainableThroughputConserve(t *testing.T) {
	// The paper reports Sage sustaining 0.7 models/hour with release
	// times within a day (~24h) while prior work degrades to multi-day
	// backlogs.
	st := Run(baseCfg(BlockConserve, 0.7))
	if st.AvgReleaseTime > 48 {
		t.Errorf("conserve at 0.7/h: release time %v h, want < 48", st.AvgReleaseTime)
	}
	stream := Run(baseCfg(StreamingComposition, 0.7))
	if stream.AvgReleaseTime < 2*st.AvgReleaseTime {
		t.Errorf("streaming at 0.7/h (%v h) should be ≫ conserve (%v h)",
			stream.AvgReleaseTime, st.AvgReleaseTime)
	}
}

func TestBudgetNeverExceedsGlobal(t *testing.T) {
	// Per-model spend is at most εg under every strategy.
	for _, strat := range []Strategy{StreamingComposition, QueryComposition, BlockAggressive, BlockConserve} {
		st := Run(baseCfg(strat, 0.3))
		if st.AvgBudgetSpent > 1+1e-9 {
			t.Errorf("%v: avg budget/model %v exceeds εg", strat, st.AvgBudgetSpent)
		}
	}
}

func TestSweepShape(t *testing.T) {
	rates := []float64{0.1, 0.3}
	strategies := []Strategy{BlockConserve, BlockAggressive}
	pts := Sweep(baseCfg(BlockConserve, 0.1), rates, strategies)
	if len(pts) != 4 {
		t.Fatalf("Sweep returned %d points, want 4", len(pts))
	}
	seen := map[string]bool{}
	for _, pt := range pts {
		seen[pt.Strategy.String()] = true
		if pt.Stats.Arrived == 0 {
			t.Errorf("rate %v %v: no arrivals", pt.Rate, pt.Strategy)
		}
	}
	if len(seen) != 2 {
		t.Errorf("strategies seen: %v", seen)
	}
}

func TestConfigValidation(t *testing.T) {
	for i, cfg := range []Config{
		{Strategy: BlockConserve, BlockSize: 100}, // no rate
		{Strategy: BlockConserve, ArrivalRate: 1}, // no block size
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d should panic", i)
				}
			}()
			Run(cfg)
		}()
	}
}

func TestStrategyNames(t *testing.T) {
	names := map[Strategy]string{
		StreamingComposition: "Streaming Composition",
		QueryComposition:     "Query Composition",
		BlockAggressive:      "Block/Aggressive",
		BlockConserve:        "Block/Conserve (Sage)",
	}
	for s, want := range names {
		if s.String() != want {
			t.Errorf("%d.String() = %q", s, s.String())
		}
	}
}

func TestCriteoScaleBlocks(t *testing.T) {
	// Fig. 8b uses 267K-point hourly blocks; dynamics must still hold.
	cfg := baseCfg(BlockConserve, 0.5)
	cfg.BlockSize = 267000
	st := Run(cfg)
	if st.Released == 0 {
		t.Fatal("no releases at Criteo scale")
	}
}
