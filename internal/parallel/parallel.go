// Package parallel provides the deterministic fan-out engine the
// experiment sweeps run on: a bounded worker pool that evaluates an
// indexed task grid and collects results in index order. A process-wide
// shared Pool (SetGlobal) lets many sweeps share one worker budget, so
// independent experiments pipeline across each other instead of each
// fanning out behind its own barrier.
//
// Determinism is a contract, not an accident. Every task must derive all
// of its randomness from its own coordinates (via rng.MixSeed and a
// fresh rng.New per task) and must not mutate shared state. Under that
// contract the result slice is bit-identical for any worker count and
// any goroutine schedule, so parallelizing a sweep can never change a
// reproduced figure — a property the determinism regression tests in
// internal/experiments pin down.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers normalizes a worker-count option: values <= 0 select
// runtime.GOMAXPROCS(0), the engine-wide default.
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// Map evaluates fn(0) … fn(n-1) on up to workers goroutines and returns
// the results in index order. workers <= 0 means GOMAXPROCS. fn must be
// safe to call concurrently and must not depend on evaluation order.
func Map[T any](workers, n int, fn func(i int) T) []T {
	return MapWeighted(workers, n, 1, fn)
}

// MapWeighted is Map with an expected per-cell cost hint (see
// ForEachWeighted). Sweeps whose cells are known to be expensive —
// DP-SGD training grids, large-block workload simulations — pass a
// large weight so the shared pool starts them ahead of cheap batches.
func MapWeighted[T any](workers, n int, weight float64, fn func(i int) T) []T {
	if n <= 0 {
		return nil
	}
	out := make([]T, n)
	ForEachWeighted(workers, n, weight, func(i int) { out[i] = fn(i) })
	return out
}

// ForEach evaluates fn(0) … fn(n-1) on up to workers goroutines and
// waits for all of them. Tasks are handed out through a shared atomic
// counter, so long tasks never serialize behind a fixed pre-partition.
//
// When a process-wide shared pool is installed (SetGlobal), the grid is
// submitted to it instead and the per-call workers bound is ignored: the
// pool's worker count is the global concurrency budget, shared by every
// sweep running in the process. Results are unaffected either way — the
// determinism contract makes scheduling invisible.
func ForEach(workers, n int, fn func(i int)) {
	ForEachWeighted(workers, n, 1, fn)
}

// ForEachWeighted is ForEach with an expected per-cell cost hint. The
// weight only matters when a shared pool is installed — its workers
// drain the heaviest queued batch first (longest-expected-cell-first),
// closing the straggler tail when cheap and expensive sweeps pipeline
// together. Without a shared pool there is nothing to reorder and the
// weight is ignored. Units are arbitrary but should be consistent
// across the process (this repo uses rough expected cell milliseconds).
func ForEachWeighted(workers, n int, weight float64, fn func(i int)) {
	if n <= 0 {
		return
	}
	if g := Global(); g != nil {
		g.ForEachWeighted(n, weight, fn)
		return
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
