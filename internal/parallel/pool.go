package parallel

import (
	"sync"
	"sync/atomic"
)

// Pool is a process-wide bounded scheduler that many sweeps submit task
// batches into concurrently. Its workers drain the queued batch whose
// cells are expected to run longest (FIFO among equals), crossing batch
// boundaries as soon as one batch's cells are all handed out — so when
// several experiments run at once (cmd/sage-experiments -pipeline), the
// tail of one experiment's grid overlaps the head of the next instead
// of idling behind a per-experiment barrier, and the long cells start
// early enough that they are not the last thing running.
//
// Scheduling policy is caller-runs: the goroutine that submits a batch
// helps execute that batch's cells while it waits. This guarantees
// progress (and rules out deadlock) even if every pool worker is blocked
// inside a nested submission, at the cost of the effective concurrency
// being workers + live submitters rather than exactly workers.
//
// Determinism: the pool carries the same contract as Map/ForEach — each
// cell must derive its randomness from its own coordinates — so which
// goroutine runs a cell, and which batches interleave, can never change
// a result.
type Pool struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []*poolBatch // batches with cells not yet handed out, FIFO
	closed bool
}

// poolBatch is one ForEach submission: an indexed grid of n cells.
type poolBatch struct {
	fn func(int)
	n  int
	// weight is the submitter's estimate of one cell's cost, in any
	// consistent relative units. Workers drain the heaviest queued batch
	// first (longest-expected-cell-first), which is what keeps a late-
	// submitted grid of expensive cells from becoming the straggler tail
	// after every cheap batch has drained.
	weight float64
	next   int          // next cell index to hand out; guarded by Pool.mu
	left   atomic.Int64 // cells not yet completed
	done   chan struct{}
}

// NewPool starts a pool with the given number of worker goroutines
// (<= 0 means GOMAXPROCS). The workers live until Close.
func NewPool(workers int) *Pool {
	p := &Pool{}
	p.cond = sync.NewCond(&p.mu)
	for w := 0; w < Workers(workers); w++ {
		go p.worker()
	}
	return p
}

// Close stops the pool's workers once the queued batches drain. Cells
// already handed out finish; submitting to a closed pool panics.
func (p *Pool) Close() {
	p.mu.Lock()
	p.closed = true
	p.mu.Unlock()
	p.cond.Broadcast()
}

// worker drains cells from the heaviest queued batch until the pool
// closes.
func (p *Pool) worker() {
	for {
		p.mu.Lock()
		for len(p.queue) == 0 && !p.closed {
			p.cond.Wait()
		}
		if len(p.queue) == 0 {
			p.mu.Unlock()
			return
		}
		b := p.pickLocked()
		i := p.takeLocked(b)
		p.mu.Unlock()
		if i >= 0 {
			b.run(i)
		}
	}
}

// pickLocked chooses the queued batch workers should drain next:
// the largest per-cell weight, oldest first among equals (so equal-
// weight batches keep the original FIFO pipelining). Caller holds mu
// and guarantees the queue is non-empty.
func (p *Pool) pickLocked() *poolBatch {
	best := p.queue[0]
	for _, b := range p.queue[1:] {
		if b.weight > best.weight {
			best = b
		}
	}
	return best
}

// takeLocked hands out b's next cell index (-1 if none remain) and
// removes b from the queue once fully handed out. Caller holds mu.
func (p *Pool) takeLocked(b *poolBatch) int {
	if b.next >= b.n {
		return -1
	}
	i := b.next
	b.next++
	if b.next >= b.n {
		for qi, qb := range p.queue {
			if qb == b {
				p.queue = append(p.queue[:qi], p.queue[qi+1:]...)
				break
			}
		}
	}
	return i
}

// run executes one cell and signals completion of the whole batch.
func (b *poolBatch) run(i int) {
	b.fn(i)
	if b.left.Add(-1) == 0 {
		close(b.done)
	}
}

// ForEach evaluates fn(0) … fn(n-1) on the pool and waits for all of
// them. The submitting goroutine helps drain its own batch (caller-runs),
// then blocks until cells picked up by pool workers finish. The batch is
// queued at the default weight (1): drained FIFO among other defaults,
// after anything heavier.
func (p *Pool) ForEach(n int, fn func(i int)) {
	p.ForEachWeighted(n, 1, fn)
}

// ForEachWeighted is ForEach with an expected per-cell cost hint. weight
// is in any units as long as they are consistent across the batches
// sharing the pool (this repo uses rough expected cell milliseconds);
// values <= 0 mean the default weight 1. Pool workers always drain the
// heaviest queued batch, so submitting an expensive grid with a large
// weight pulls its cells forward and keeps them off the critical tail.
// Scheduling never affects results — the determinism contract (each cell
// seeds from its own coordinates) makes drain order invisible.
func (p *Pool) ForEachWeighted(n int, weight float64, fn func(i int)) {
	if n <= 0 {
		return
	}
	if weight <= 0 {
		weight = 1
	}
	b := &poolBatch{fn: fn, n: n, weight: weight, done: make(chan struct{})}
	b.left.Store(int64(n))
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		panic("parallel: submit on closed Pool")
	}
	p.queue = append(p.queue, b)
	p.mu.Unlock()
	p.cond.Broadcast()
	for {
		p.mu.Lock()
		i := p.takeLocked(b)
		p.mu.Unlock()
		if i < 0 {
			break
		}
		b.run(i)
	}
	<-b.done
}

// global is the shared scheduler installed by SetGlobal. When present,
// package-level ForEach/Map route every grid through it, which is how
// cmd/sage-experiments pipelines independent experiments across one
// worker budget.
var global atomic.Pointer[Pool]

// SetGlobal installs (or, with nil, removes) the process-wide shared
// pool. While installed, ForEach/Map ignore their per-call worker bound
// and submit to the pool instead; the pool's own worker count is the
// process-wide concurrency budget.
func SetGlobal(p *Pool) {
	global.Store(p)
}

// Global returns the installed shared pool, or nil.
func Global() *Pool {
	return global.Load()
}
