package parallel

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestPoolForEachRunsEachOnce(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	var calls [300]atomic.Int32
	p.ForEach(len(calls), func(i int) { calls[i].Add(1) })
	for i := range calls {
		if n := calls[i].Load(); n != 1 {
			t.Fatalf("cell %d ran %d times", i, n)
		}
	}
}

func TestPoolConcurrentBatches(t *testing.T) {
	// Many goroutines submit batches into one pool at once; every batch
	// must complete exactly, with no cross-batch interference.
	p := NewPool(3)
	defer p.Close()
	const batches, cells = 8, 50
	var sums [batches]atomic.Int64
	var wg sync.WaitGroup
	for b := 0; b < batches; b++ {
		wg.Add(1)
		go func(b int) {
			defer wg.Done()
			p.ForEach(cells, func(i int) { sums[b].Add(int64(i)) })
		}(b)
	}
	wg.Wait()
	want := int64(cells * (cells - 1) / 2)
	for b := range sums {
		if got := sums[b].Load(); got != want {
			t.Errorf("batch %d sum = %d, want %d", b, got, want)
		}
	}
}

func TestPoolNestedSubmissionDoesNotDeadlock(t *testing.T) {
	// A cell that itself submits a batch must complete even when the
	// pool has a single worker: caller-runs guarantees progress.
	p := NewPool(1)
	defer p.Close()
	var inner atomic.Int32
	p.ForEach(2, func(i int) {
		p.ForEach(3, func(j int) { inner.Add(1) })
	})
	if got := inner.Load(); got != 6 {
		t.Errorf("inner cells ran %d times, want 6", got)
	}
}

func TestPoolEmptyBatch(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	p.ForEach(0, func(i int) { t.Error("cell ran on empty batch") })
	p.ForEach(-5, func(i int) { t.Error("cell ran on negative batch") })
}

func TestGlobalPoolRoutesForEach(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	SetGlobal(p)
	defer SetGlobal(nil)
	got := Map(1, 50, func(i int) int { return i * 3 })
	for i, v := range got {
		if v != i*3 {
			t.Fatalf("out[%d] = %d, want %d", i, v, i*3)
		}
	}
	if Global() != p {
		t.Error("Global() lost the installed pool")
	}
}

func TestPickLockedHeaviestFirstFIFOAmongEquals(t *testing.T) {
	// The drain policy itself: workers take from the queued batch with
	// the largest per-cell weight; equal weights keep submission order.
	p := &Pool{}
	p.cond = sync.NewCond(&p.mu)
	a := &poolBatch{weight: 1, n: 1}
	b := &poolBatch{weight: 4, n: 1}
	c := &poolBatch{weight: 4, n: 1}
	d := &poolBatch{weight: 2, n: 1}
	p.queue = []*poolBatch{a, b, c, d}
	p.mu.Lock()
	defer p.mu.Unlock()
	for step, want := range []*poolBatch{b, c, d, a} {
		got := p.pickLocked()
		if got != want {
			t.Fatalf("step %d: picked batch with weight %v, want weight %v", step, got.weight, want.weight)
		}
		p.takeLocked(got) // hands out the only cell, dequeueing the batch
	}
	if len(p.queue) != 0 {
		t.Fatalf("queue not drained: %d left", len(p.queue))
	}
}

func TestForEachWeightedRunsEachOnce(t *testing.T) {
	// Weighted submission must be plain ForEach semantics both without a
	// shared pool (weight ignored) and through one.
	var calls [100]atomic.Int32
	ForEachWeighted(4, len(calls), 50, func(i int) { calls[i].Add(1) })
	for i := range calls {
		if n := calls[i].Load(); n != 1 {
			t.Fatalf("cell %d ran %d times without pool", i, n)
		}
	}
	p := NewPool(3)
	defer p.Close()
	SetGlobal(p)
	defer SetGlobal(nil)
	got := MapWeighted(0, 64, 250, func(i int) int { return i * i })
	for i, v := range got {
		if v != i*i {
			t.Fatalf("out[%d] = %d, want %d", i, v, i*i)
		}
	}
}

func TestClosedPoolPanics(t *testing.T) {
	p := NewPool(1)
	p.Close()
	defer func() {
		if recover() == nil {
			t.Error("ForEach on closed pool should panic")
		}
	}()
	p.ForEach(1, func(int) {})
}
