package parallel

import (
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

func TestMapOrdered(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 64} {
		got := Map(workers, 100, func(i int) int { return i * i })
		if len(got) != 100 {
			t.Fatalf("workers=%d: len %d", workers, len(got))
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapEmpty(t *testing.T) {
	if got := Map(4, 0, func(i int) int { return i }); got != nil {
		t.Errorf("Map over empty grid = %v, want nil", got)
	}
	ForEach(4, -1, func(i int) { t.Error("ForEach called fn on empty grid") })
}

func TestForEachRunsEachOnce(t *testing.T) {
	var calls [500]atomic.Int32
	ForEach(8, len(calls), func(i int) { calls[i].Add(1) })
	for i := range calls {
		if n := calls[i].Load(); n != 1 {
			t.Fatalf("task %d ran %d times", i, n)
		}
	}
}

func TestForEachActuallyParallel(t *testing.T) {
	if runtime.GOMAXPROCS(0) < 2 {
		t.Skip("single-core machine")
	}
	// Two tasks that only finish if they overlap in time.
	var inFlight atomic.Int32
	overlapped := atomic.Bool{}
	ForEach(2, 2, func(i int) {
		inFlight.Add(1)
		defer inFlight.Add(-1)
		deadline := time.Now().Add(2 * time.Second)
		for time.Now().Before(deadline) {
			if inFlight.Load() == 2 {
				overlapped.Store(true)
				return
			}
			time.Sleep(time.Millisecond)
		}
	})
	if !overlapped.Load() {
		t.Error("tasks never overlapped with workers=2")
	}
}

func TestWorkersDefault(t *testing.T) {
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(-3) = %d", got)
	}
	if got := Workers(5); got != 5 {
		t.Errorf("Workers(5) = %d", got)
	}
}
