package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed RNGs diverged at draw %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d/100 identical draws", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	c1 := parent.Split()
	c2 := parent.Split()
	if c1.Uint64() == c2.Uint64() && c1.Uint64() == c2.Uint64() {
		t.Fatal("sibling splits produced identical streams")
	}
	// Splitting must be deterministic given the same parent history.
	p1, p2 := New(9), New(9)
	s1, s2 := p1.Split(), p2.Split()
	for i := 0; i < 100; i++ {
		if s1.Uint64() != s2.Uint64() {
			t.Fatalf("split streams not reproducible at draw %d", i)
		}
	}
}

// moments computes the sample mean and variance of n draws.
func moments(n int, draw func() float64) (mean, variance float64) {
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		x := draw()
		sum += x
		sumSq += x * x
	}
	mean = sum / float64(n)
	variance = sumSq/float64(n) - mean*mean
	return mean, variance
}

func TestLaplaceMoments(t *testing.T) {
	r := New(3)
	const scale = 2.0
	mean, v := moments(200000, func() float64 { return r.Laplace(0, scale) })
	if math.Abs(mean) > 0.05 {
		t.Errorf("Laplace mean = %v, want ~0", mean)
	}
	// Var(Laplace(0,b)) = 2b².
	want := 2 * scale * scale
	if math.Abs(v-want)/want > 0.05 {
		t.Errorf("Laplace variance = %v, want ~%v", v, want)
	}
}

func TestNormalMoments(t *testing.T) {
	r := New(4)
	mean, v := moments(200000, func() float64 { return r.Normal(1.5, 3.0) })
	if math.Abs(mean-1.5) > 0.05 {
		t.Errorf("Normal mean = %v, want ~1.5", mean)
	}
	if math.Abs(v-9.0)/9.0 > 0.05 {
		t.Errorf("Normal variance = %v, want ~9", v)
	}
}

func TestExponentialMean(t *testing.T) {
	r := New(5)
	mean, _ := moments(200000, func() float64 { return r.Exponential(4.0) })
	if math.Abs(mean-4.0)/4.0 > 0.05 {
		t.Errorf("Exponential mean = %v, want ~4", mean)
	}
}

func TestGammaMoments(t *testing.T) {
	r := New(6)
	const shape, scale = 2.5, 1.5
	mean, v := moments(200000, func() float64 { return r.Gamma(shape, scale) })
	if math.Abs(mean-shape*scale)/(shape*scale) > 0.05 {
		t.Errorf("Gamma mean = %v, want ~%v", mean, shape*scale)
	}
	want := shape * scale * scale
	if math.Abs(v-want)/want > 0.10 {
		t.Errorf("Gamma variance = %v, want ~%v", v, want)
	}
}

func TestGammaSmallShape(t *testing.T) {
	r := New(61)
	const shape, scale = 0.5, 2.0
	mean, _ := moments(200000, func() float64 { return r.Gamma(shape, scale) })
	if math.Abs(mean-shape*scale)/(shape*scale) > 0.07 {
		t.Errorf("Gamma(0.5) mean = %v, want ~%v", mean, shape*scale)
	}
}

func TestParetoMin(t *testing.T) {
	r := New(8)
	const min, alpha = 10.0, 2.5
	for i := 0; i < 10000; i++ {
		if x := r.ParetoMin(min, alpha); x < min {
			t.Fatalf("Pareto draw %v below min %v", x, min)
		}
	}
	// E[X] = alpha·min/(alpha-1) for alpha > 1.
	mean, _ := moments(300000, func() float64 { return r.ParetoMin(min, alpha) })
	want := alpha * min / (alpha - 1)
	if math.Abs(mean-want)/want > 0.05 {
		t.Errorf("Pareto mean = %v, want ~%v", mean, want)
	}
}

func TestCategorical(t *testing.T) {
	r := New(9)
	w := []float64{1, 2, 7}
	counts := make([]int, 3)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[r.Categorical(w)]++
	}
	for i, c := range counts {
		got := float64(c) / n
		want := w[i] / 10
		if math.Abs(got-want) > 0.01 {
			t.Errorf("category %d frequency = %v, want ~%v", i, got, want)
		}
	}
}

func TestZipfBounds(t *testing.T) {
	r := New(10)
	draw := r.Zipf(50, 1.2)
	counts := make([]int, 50)
	for i := 0; i < 100000; i++ {
		k := draw()
		if k < 0 || k >= 50 {
			t.Fatalf("Zipf draw %d out of range", k)
		}
		counts[k]++
	}
	if counts[0] <= counts[49] {
		t.Errorf("Zipf head count %d not greater than tail count %d", counts[0], counts[49])
	}
}

func TestBoolProbability(t *testing.T) {
	r := New(11)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	got := float64(hits) / n
	if math.Abs(got-0.3) > 0.01 {
		t.Errorf("Bool(0.3) frequency = %v", got)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(12)
	p := r.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("invalid permutation")
		}
		seen[v] = true
	}
}

// Property: Laplace draws are symmetric around the mean (median ≈ mean).
func TestLaplaceSymmetryProperty(t *testing.T) {
	f := func(seed uint64, rawMean int16, rawScale uint8) bool {
		mean := float64(rawMean) / 100
		scale := float64(rawScale)/50 + 0.1
		r := New(seed)
		above := 0
		const n = 4000
		for i := 0; i < n; i++ {
			if r.Laplace(mean, scale) > mean {
				above++
			}
		}
		frac := float64(above) / n
		return frac > 0.44 && frac < 0.56
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: IntN always returns values in range.
func TestIntNRangeProperty(t *testing.T) {
	f := func(seed uint64, rawN uint16) bool {
		n := int(rawN)%1000 + 1
		r := New(seed)
		for i := 0; i < 100; i++ {
			v := r.IntN(n)
			if v < 0 || v >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
