// Package rng provides deterministic, splittable random number generation
// and the noise samplers used by Sage's differentially private mechanisms.
//
// All randomness in the repository flows through an *rng.RNG so that every
// experiment, test, and benchmark is reproducible from a single seed. RNGs
// can be split into independent child streams (one per pipeline, per block,
// per training step) without sharing state, which keeps concurrent
// components deterministic regardless of scheduling.
package rng

import (
	"math"
	"math/rand/v2"
)

// RNG is a deterministic random source. It wraps a PCG generator from
// math/rand/v2 and adds the distribution samplers Sage needs (Laplace,
// Gaussian, exponential, Gamma, power law, lognormal).
//
// An RNG is not safe for concurrent use; use Split to derive independent
// generators for concurrent components.
type RNG struct {
	src *rand.Rand
	// seeds retained so Split can derive decorrelated children.
	s0, s1  uint64
	nsplits uint64
}

// New returns an RNG seeded from the given seed. Two RNGs created with the
// same seed produce identical streams.
func New(seed uint64) *RNG {
	// Derive two 64-bit seeds with splitmix64 so that nearby seeds yield
	// decorrelated streams.
	s0 := splitmix64(&seed)
	s1 := splitmix64(&seed)
	return &RNG{src: rand.New(rand.NewPCG(s0, s1)), s0: s0, s1: s1}
}

// splitmix64 advances *x and returns a well-mixed 64-bit value. It is the
// standard seed-expansion function recommended for PCG/xoshiro seeding.
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// MixSeed combines a base seed and task coordinates (grid indices,
// parameter bit patterns, mode values) into one well-mixed 64-bit seed
// by absorbing each part through splitmix64. Neighboring coordinates
// yield decorrelated seeds, unlike additive schemes such as
// seed+i+j*1e6 where nearby cells collide or share low bits. The
// parallel experiment engine derives each task's RNG as
// rng.New(rng.MixSeed(seed, coords...)), which depends only on the
// task's own coordinates — never on scheduling — so sweeps are
// bit-identical for any worker count.
func MixSeed(parts ...uint64) uint64 {
	h := uint64(0x243f6a8885a308d3) // π fractional bits: arbitrary non-zero offset
	for _, p := range parts {
		x := h ^ p
		h = splitmix64(&x)
	}
	return h
}

// Split returns a new RNG whose stream is independent of the parent's
// future output. Successive calls return distinct streams.
func (r *RNG) Split() *RNG {
	r.nsplits++
	seed := r.s0 ^ (r.s1 * 0x9e3779b97f4a7c15) ^ (r.nsplits * 0xda942042e4dd58b5)
	// Mix in a draw from the parent so splits after different usage differ.
	seed ^= r.src.Uint64()
	return New(seed)
}

// Uint64 returns a uniformly distributed 64-bit value.
func (r *RNG) Uint64() uint64 { return r.src.Uint64() }

// Int64N returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Int64N(n int64) int64 { return r.src.Int64N(n) }

// IntN returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) IntN(n int) int { return r.src.IntN(n) }

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 { return r.src.Float64() }

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool { return r.src.Float64() < p }

// Normal returns a draw from the normal distribution with the given mean
// and standard deviation.
func (r *RNG) Normal(mean, std float64) float64 {
	return mean + std*r.src.NormFloat64()
}

// Laplace returns a draw from the Laplace distribution with the given mean
// and scale b (density (1/2b)·exp(-|x-mean|/b)). The Laplace mechanism adds
// Laplace(0, sensitivity/ε) noise for (ε, 0)-DP.
func (r *RNG) Laplace(mean, scale float64) float64 {
	// Inverse CDF sampling: u uniform in (-1/2, 1/2),
	// x = mean - b·sign(u)·ln(1-2|u|).
	u := r.src.Float64() - 0.5
	if u >= 0 {
		return mean - scale*math.Log(1-2*u)
	}
	return mean + scale*math.Log(1+2*u)
}

// Exponential returns a draw from the exponential distribution with the
// given mean (scale). It panics if mean <= 0.
func (r *RNG) Exponential(mean float64) float64 {
	if mean <= 0 {
		panic("rng: Exponential requires mean > 0")
	}
	return mean * r.src.ExpFloat64()
}

// Gamma returns a draw from the Gamma distribution with shape k and scale
// theta, using the Marsaglia–Tsang method. Used by the workload simulator
// for pipeline inter-arrival times (§5.4 of the paper).
func (r *RNG) Gamma(shape, scale float64) float64 {
	if shape <= 0 || scale <= 0 {
		panic("rng: Gamma requires shape, scale > 0")
	}
	if shape < 1 {
		// Boost: Gamma(k) = Gamma(k+1) · U^{1/k}.
		u := r.src.Float64()
		for u == 0 {
			u = r.src.Float64()
		}
		return r.Gamma(shape+1, scale) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1.0 / math.Sqrt(9*d)
	for {
		x := r.src.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := r.src.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v * scale
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v * scale
		}
	}
}

// ParetoMin returns a draw from a Pareto (power-law) distribution with the
// given minimum value and tail exponent alpha > 0: P(X > x) = (min/x)^alpha
// for x >= min. The workload simulator draws model sample complexities from
// this distribution (§5.4).
func (r *RNG) ParetoMin(min, alpha float64) float64 {
	if min <= 0 || alpha <= 0 {
		panic("rng: ParetoMin requires min, alpha > 0")
	}
	u := r.src.Float64()
	for u == 0 {
		u = r.src.Float64()
	}
	return min * math.Pow(u, -1/alpha)
}

// LogNormal returns a draw from a lognormal distribution where the
// underlying normal has the given mu and sigma.
func (r *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(r.Normal(mu, sigma))
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int { return r.src.Perm(n) }

// Shuffle pseudo-randomizes the order of n elements using swap.
func (r *RNG) Shuffle(n int, swap func(i, j int)) { r.src.Shuffle(n, swap) }

// Categorical returns an index drawn proportionally to the non-negative
// weights. It panics if the weights are empty or sum to zero.
func (r *RNG) Categorical(weights []float64) int {
	total := 0.0
	for _, w := range weights {
		if w < 0 {
			panic("rng: Categorical requires non-negative weights")
		}
		total += w
	}
	if len(weights) == 0 || total == 0 {
		panic("rng: Categorical requires positive total weight")
	}
	u := r.src.Float64() * total
	acc := 0.0
	for i, w := range weights {
		acc += w
		if u < acc {
			return i
		}
	}
	return len(weights) - 1
}

// Zipf returns a sampler over [0, n) with Zipf-like weights 1/(i+1)^s,
// used by the Criteo generator for power-law categorical features.
func (r *RNG) Zipf(n int, s float64) func() int {
	weights := make([]float64, n)
	for i := range weights {
		weights[i] = math.Pow(float64(i+1), -s)
	}
	// Precompute cumulative weights for binary search.
	cum := make([]float64, n)
	acc := 0.0
	for i, w := range weights {
		acc += w
		cum[i] = acc
	}
	total := acc
	return func() int {
		u := r.src.Float64() * total
		lo, hi := 0, n-1
		for lo < hi {
			mid := (lo + hi) / 2
			if cum[mid] < u {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return lo
	}
}
