package daemon

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"repro/internal/privacy"
	"repro/internal/replica"
)

// fastConfig is a daemon configuration scaled for tests: small blocks,
// a short window, loose SLAs the stream meets quickly, no fsync.
func fastConfig(dir string) Config {
	return Config{
		Dir:          dir,
		Global:       privacy.MustBudget(1.0, 1e-6),
		Tick:         time.Millisecond,
		RowsPerBlock: 6000,
		Window:       24,
		Pipelines:    2,
		SLATargets:   []float64{0.04, 0.042},
		FeatureEps:   0.02,
		MinWindow:    4,
		// Start the adaptive search at the cap: at this reduced scale
		// the SLAed accept test needs the full per-attempt ε to certify
		// the target, so the doubling ladder would only burn budget.
		Epsilon0:     0.5,
		EpsilonCap:   0.5,
		Seed:         5,
		CompactEvery: 5,
		NoSync:       true,
	}
}

// durableFields strips a Status down to the fields a restart must
// preserve.
func durableFields(st Status) Status {
	return Status{
		NextBlock:       st.NextBlock,
		Blocks:          st.Blocks,
		StreamLossEps:   st.StreamLossEps,
		StreamLossDelta: st.StreamLossDelta,
		StoreVersions:   st.StoreVersions,
	}
}

func TestDaemonLoopPublishesAndRestartResumes(t *testing.T) {
	dir := t.TempDir()
	cfg := fastConfig(dir)
	cfg.MaxTicks = 8

	d, _, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	st := d.Status()
	if st.Ticks != 8 {
		t.Fatalf("ran %d ticks, want 8", st.Ticks)
	}
	if st.NextBlock != 8 || len(st.Blocks) != 8 {
		t.Fatalf("ingested %d blocks (next %d), want 8", len(st.Blocks), st.NextBlock)
	}
	if st.Published == 0 {
		t.Fatal("no releases published in 8 ticks — SLA targets unreachable?")
	}
	// Every block was charged the feature release.
	for _, b := range st.Blocks {
		if !b.Retired && b.LossEps < cfg.FeatureEps-1e-12 {
			t.Fatalf("block %d loss %v below feature charge", b.ID, b.LossEps)
		}
	}

	// Restart: the recovered daemon reports the identical durable
	// state before its first tick.
	d2, stats, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Ledger.Records == 0 {
		t.Fatal("restart recovered an empty ledger log")
	}
	st2 := d2.Status()
	if !reflect.DeepEqual(durableFields(st2), durableFields(st)) {
		t.Fatalf("restart diverges:\n got %+v\nwant %+v", durableFields(st2), durableFields(st))
	}
	// The raw data came back too: training can continue immediately,
	// and the stream resumes at block 8 rather than 0.
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- d2.Run(ctx) }()
	deadline := time.After(10 * time.Second)
	for {
		cur := d2.Status()
		if cur.NextBlock >= 10 && cur.Published > 0 {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("restarted daemon made no progress: %+v", d2.Status())
		case <-time.After(5 * time.Millisecond):
		}
	}
	cancel()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	final := d2.Status()
	if final.StoreVersions["taxi-lr-0"] < st.StoreVersions["taxi-lr-0"] {
		t.Fatal("restart lost published versions")
	}
	for _, b := range final.Blocks[:8] {
		prev := st.Blocks[int(b.ID)]
		if b.LossEps+1e-12 < prev.LossEps && !b.Retired {
			t.Fatalf("block %d loss shrank across restart: %v -> %v", b.ID, prev.LossEps, b.LossEps)
		}
	}
}

// TestDaemonCrashMidLoop simulates a hard kill: the daemon is abandoned
// without drain (no final sync/compact/close), and a fresh platform
// opened on the same WAL directory must equal the abandoned daemon's
// live state exactly.
func TestDaemonCrashMidLoop(t *testing.T) {
	dir := t.TempDir()
	cfg := fastConfig(dir)
	d, _, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 7; i++ {
		if err := d.step(); err != nil {
			t.Fatal(err)
		}
	}
	// No Close — this is the crash. The OS file handles stay open in
	// this process, but the bytes are already in the files.
	want := durableFields(d.Status())

	d2, _, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if got := durableFields(d2.Status()); !reflect.DeepEqual(got, want) {
		t.Fatalf("crash recovery diverges:\n got %+v\nwant %+v", got, want)
	}
}

func TestDaemonRetentionRetiresAndDeletes(t *testing.T) {
	dir := t.TempDir()
	cfg := fastConfig(dir)
	cfg.Retention = 3
	cfg.MaxTicks = 7
	d, _, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	st := d.Status()
	// After 7 ticks with a 3-block window, blocks 0..3 are outside the
	// window and must be retired.
	if st.RetiredBlocks < 4 {
		t.Fatalf("retired %d blocks, want >= 4", st.RetiredBlocks)
	}
	for _, b := range st.Blocks {
		if b.ID < st.NextBlock-3 && !b.Retired {
			t.Fatalf("block %d outside retention window still active", b.ID)
		}
	}
	if d.db.BlockSize(0) != 0 {
		t.Fatal("retired block's raw data not deleted")
	}

	// A restarted daemon must not resurrect retired blocks' data.
	d2, _, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if d2.db.BlockSize(0) != 0 {
		t.Fatal("restart re-ingested a retention-deleted block")
	}
	if !d2.plat.AC.Retired(0) {
		t.Fatal("retirement not recovered")
	}
}

// TestDaemonPushesToReplicas runs the full loop against live replica
// servers (auth on) and requires convergence, including a publisher
// restart healing a wiped replica.
func TestDaemonPushesToReplicas(t *testing.T) {
	repA := replica.NewServer(replica.WithAuthToken("tok"))
	srvA := httptest.NewServer(repA.Handler())
	defer srvA.Close()
	repB := replica.NewServer(replica.WithAuthToken("tok"))
	srvB := httptest.NewServer(repB.Handler())
	defer srvB.Close()

	dir := t.TempDir()
	cfg := fastConfig(dir)
	cfg.MaxTicks = 8
	cfg.PushEndpoints = []string{srvA.URL, srvB.URL}
	cfg.PushToken = "tok"
	d, _, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	versions := d.Platform().Store.Watermarks()
	if len(versions) == 0 {
		t.Fatal("nothing published")
	}
	for name, n := range versions {
		if repA.Store().VersionCount(name) != n || repB.Store().VersionCount(name) != n {
			t.Fatalf("replicas behind on %s: %d/%d vs %d",
				name, repA.Store().VersionCount(name), repB.Store().VersionCount(name), n)
		}
	}

	// Wipe replica B (simulates a replica restart with no disk), then
	// restart the daemon: startup heal must repopulate it with no
	// manual Sync.
	repB2 := replica.NewServer(replica.WithAuthToken("tok"))
	srvB2 := httptest.NewServer(repB2.Handler())
	defer srvB2.Close()
	cfg.PushEndpoints = []string{srvA.URL, srvB2.URL}
	d2, _, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	for name, n := range versions {
		if got := repB2.Store().VersionCount(name); got != n {
			t.Fatalf("startup heal left %s at %d, want %d", name, got, n)
		}
	}
}

func TestDaemonStatusEndpoint(t *testing.T) {
	dir := t.TempDir()
	cfg := fastConfig(dir)
	cfg.MaxTicks = 4
	d, _, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/daemon/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Ticks != 4 || len(st.Blocks) != 4 {
		t.Fatalf("status over HTTP: %+v", st)
	}
	// The serving API is mounted on the same handler.
	resp2, err := srv.Client().Get(srv.URL + "/models")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != 200 {
		t.Fatalf("/models returned %d", resp2.StatusCode)
	}
}

// TestDaemonShardedLedgerRestart runs the loop on a sharded ledger and
// checks restart equivalence plus layout stickiness: the restarted
// daemon follows the on-disk segment count even when configured
// differently.
func TestDaemonShardedLedgerRestart(t *testing.T) {
	dir := t.TempDir()
	cfg := fastConfig(dir)
	cfg.LedgerShards = 3
	cfg.MaxTicks = 8

	d, stats, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if stats.LedgerShards != 3 {
		t.Fatalf("fresh dir got %d shards, want 3", stats.LedgerShards)
	}
	if err := d.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	st := d.Status()
	if st.LedgerShards != 3 {
		t.Fatalf("status reports %d shards, want 3", st.LedgerShards)
	}
	if st.Published == 0 {
		t.Fatal("no releases published on sharded ledger")
	}

	cfg2 := cfg
	cfg2.LedgerShards = 8 // must be ignored: on-disk layout wins
	d2, stats2, err := New(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if stats2.LedgerShards != 3 {
		t.Fatalf("restart re-striped to %d shards", stats2.LedgerShards)
	}
	st2 := d2.Status()
	if !reflect.DeepEqual(durableFields(st2), durableFields(st)) {
		t.Fatalf("sharded restart diverges:\n got %+v\nwant %+v", durableFields(st2), durableFields(st))
	}
}

// TestDaemonCompactBytesThreshold pins the size trigger: with a tiny
// byte threshold and an effectively-disabled tick cadence, the logs are
// still compacted — and state survives.
func TestDaemonCompactBytesThreshold(t *testing.T) {
	dir := t.TempDir()
	cfg := fastConfig(dir)
	cfg.LedgerShards = 2
	cfg.CompactEvery = 1 << 30 // cadence never fires
	cfg.CompactBytes = 512     // size trigger fires all the time
	cfg.MaxTicks = 12

	d, _, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	st := d.Status()
	// Every log was recently compacted down to snapshot+suffix; with 12
	// ticks of traffic and a 512B threshold, an uncompacted ledger would
	// be far larger than snapshot size. Allow suffix slack.
	if st.WALLedgerBytes > 16<<10 {
		t.Fatalf("ledger logs not size-compacted: %dB", st.WALLedgerBytes)
	}

	// State survives a restart after size-triggered compactions.
	d2, _, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	st2 := d2.Status()
	if !reflect.DeepEqual(durableFields(st2), durableFields(st)) {
		t.Fatalf("restart after size-compaction diverges:\n got %+v\nwant %+v", durableFields(st2), durableFields(st))
	}
}
