// Package daemon runs Sage as the paper actually describes it: a
// *platform*, not a batch job. Fig. 1's loop — blocks arriving from a
// stream, pipelines retraining as budget accrues, accepted bundles
// published and pushed into serving, exhausted blocks retired by the
// DP-retention policy — runs here continuously, on top of the durable
// platform core (internal/durable), so the process can be killed at any
// instant and resume exactly where its write-ahead logs say it was.
//
// # The loop
//
// Every tick the daemon:
//
//  1. ingests the next time-window block from the stream (synthetic
//     taxi rides, generated per-block from a seed mixed with the block
//     ID, so a restarted daemon regenerates identical data), registers
//     it with the ledger, and charges the block for its share of the
//     DP hour_speed aggregate release (Listing 1);
//  2. attempts one privacy-adaptive training run (round-robin over the
//     configured pipelines) through adaptive.StreamTrainer — the §3.3
//     retry loop under block composition. A pipeline blocked on budget
//     simply waits for fresh blocks, exactly the paper's "Sage never
//     runs out of budget as long as the database grows";
//  3. publishes an accepted model+features bundle into the durable
//     store and pushes it to the replica tier (versioned idempotent
//     push with gzip bodies and optional bearer-token auth);
//  4. retires blocks that fall out of the retention window (forced
//     retirement journaled, raw data deleted via the retention hook);
//  5. periodically compacts both write-ahead logs (snapshot+truncate)
//     so recovery time stays bounded.
//
// # Crash recovery
//
// All durable state lives in the WAL directory. On start the daemon
// replays it, re-derives the stream position from the ledger (next
// block = highest registered block + 1), regenerates the raw data of
// every non-retired block (retired blocks' data stays deleted — that is
// the retention policy's whole point), and reconstructs the replica
// publisher, which self-heals: each replica's reported watermarks are
// fetched and missing releases backfilled, so a push that died mid-
// flight converges without operator action. The kill/relaunch e2e test
// in cmd/sagectl pins all of this: ledger remaining-budget, store
// versions, and replica watermarks are identical across a SIGKILL.
//
// Ordering makes the two logs' independent failure modes safe: budget
// is journaled before the release that consumed it is journaled, and
// the release is journaled before it is pushed — so a crash can leave
// spend without its release (conservative: wasted budget) but never a
// served bundle the ledger does not account for.
package daemon

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/adaptive"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/durable"
	"repro/internal/metrics"
	"repro/internal/pipeline"
	"repro/internal/privacy"
	"repro/internal/replica"
	"repro/internal/rng"
	"repro/internal/store"
	"repro/internal/taxi"
	"repro/internal/trace"
	"repro/internal/validation"
)

// Config configures a daemon.
type Config struct {
	// Dir is the WAL directory (created if absent). All durable state
	// lives here; point a restarted daemon at the same directory and it
	// resumes.
	Dir string
	// Global is the (εg, δg) per-block ceiling.
	Global privacy.Budget
	// Tick is the loop period (default 1s). The first iteration runs
	// one tick after Run starts, so a freshly restarted daemon can be
	// inspected in its exact recovered state before it moves.
	Tick time.Duration
	// RowsPerBlock is the synthetic stream rate (default 4000 rides per
	// block).
	RowsPerBlock int
	// Window is the block width in stream hours (default 24 — daily
	// blocks, event-level privacy).
	Window int64
	// Pipelines is how many model pipelines share the stream (default 3).
	Pipelines int
	// SLATargets are the per-pipeline validator MSE targets, cycled;
	// default serveTargets-like values that the taxi stream can meet.
	SLATargets []float64
	// FeatureEps is the ε charged per block for the hour_speed
	// aggregate release (default 0.05; 0 disables the DP aggregate).
	FeatureEps float64
	// Epsilon0 is the adaptive search's starting budget (default
	// εg/8 — the paper's conserving schedule).
	Epsilon0 float64
	// EpsilonCap bounds one attempt's budget (default εg/2: a
	// continuously-operating platform should never let a single
	// adaptive search drain a block to zero, and blocks already carry
	// the FeatureEps charge, so the full εg is unreachable anyway).
	EpsilonCap float64
	// MinWindow is the smallest training window in blocks (default 6;
	// capped at the number of available blocks).
	MinWindow int
	// Retention keeps only the newest N blocks: older ones are retired
	// (journaled) and their raw data deleted. 0 disables age-based
	// retirement; budget-exhaustion retirement still applies.
	Retention int
	// Seed derives all stream and training randomness (default 17).
	Seed uint64
	// PushEndpoints are replica base URLs to push releases to.
	PushEndpoints []string
	// PushToken is the shared-secret bearer token for /push.
	PushToken string
	// MaxTicks stops the loop after N iterations (0 = run until the
	// context is cancelled). Tests and demos use it.
	MaxTicks int
	// CompactEvery compacts the WALs every N ticks (default 64).
	CompactEvery int
	// CompactBytes additionally compacts any individual WAL (a ledger
	// segment or the store log) whose on-disk size exceeds this many
	// bytes, checked every tick. It bounds recovery time by log size
	// rather than by tick cadence — a write-heavy shard is compacted as
	// soon as it is oversized instead of waiting out the CompactEvery
	// countdown. 0 disables the size trigger.
	CompactBytes int64
	// LedgerShards stripes the privacy ledger (and its WAL, one segment
	// per shard) N ways for concurrent charge throughput. Only consulted
	// when the directory is created: an existing directory's on-disk
	// layout wins. Default 1.
	LedgerShards int
	// NoSync disables per-append fsync (tests only).
	NoSync bool
	// DrainTimeout bounds the final replica sync during Close (0 = no
	// bound). A graceful shutdown should drain the tier — push every
	// straggler its missing releases — but an unreachable replica must
	// not park the daemon inside the publisher's full retry schedule:
	// past the deadline the sync is cut short and the replica converges
	// via self-healing on the next daemon start (or its gateway keeps it
	// drained until it catches up). Shutdown ordering stays
	// sync-then-close so replicas are as current as possible the moment
	// the WAL seals.
	DrainTimeout time.Duration
	// Logf receives progress lines (default: discard).
	Logf func(format string, args ...any)
	// Tracer records loop traces: every tick is a root span with one
	// child span per phase (ingest/train/retention/compaction), the WAL
	// hangs its cohort spans under the same tracer, and the HTTP surface
	// continues incoming traceparents and serves GET /debug/trace. Nil
	// disables tracing.
	Tracer *trace.Tracer
}

func (c *Config) applyDefaults() {
	if c.Tick <= 0 {
		c.Tick = time.Second
	}
	if c.RowsPerBlock <= 0 {
		c.RowsPerBlock = 4000
	}
	if c.Window <= 0 {
		c.Window = 24
	}
	if c.Pipelines <= 0 {
		c.Pipelines = 3
	}
	if len(c.SLATargets) == 0 {
		c.SLATargets = []float64{0.013, 0.015, 0.014, 0.016, 0.0135}
	}
	if c.FeatureEps < 0 {
		c.FeatureEps = 0
	}
	if c.Epsilon0 <= 0 {
		c.Epsilon0 = c.Global.Epsilon / 8
	}
	if c.EpsilonCap <= 0 {
		c.EpsilonCap = c.Global.Epsilon / 2
	}
	if c.EpsilonCap < c.Epsilon0 {
		c.EpsilonCap = c.Epsilon0
	}
	if c.MinWindow <= 0 {
		c.MinWindow = 6
	}
	if c.Seed == 0 {
		c.Seed = 17
	}
	if c.CompactEvery <= 0 {
		c.CompactEvery = 64
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
}

// tickPhase indexes the loop's instrumented phases; the order matches
// the numbered sections of step.
type tickPhase int

const (
	phaseIngest tickPhase = iota
	phaseTrain
	phaseRetention
	phaseCompaction
	numPhases
)

func (p tickPhase) String() string {
	switch p {
	case phaseIngest:
		return "ingest"
	case phaseTrain:
		return "train"
	case phaseRetention:
		return "retention"
	case phaseCompaction:
		return "compaction"
	default:
		return "unknown"
	}
}

// Daemon is one continuously-operating Sage platform instance.
type Daemon struct {
	cfg  Config
	plat *durable.Platform
	db   *data.GrowingDatabase
	srv  *store.Server
	pub  *replica.Publisher

	// reg is the daemon's metric registry, served at GET /metrics. The
	// WAL and store-server families register into it too, so one scrape
	// sees the whole node. Ledger ε and loop-counter series are gauge
	// funcs over the authoritative state — no parallel bookkeeping.
	reg      *metrics.Registry
	phaseSec [numPhases]*metrics.Histogram

	mu          sync.Mutex
	ticks       int
	nextBlock   data.BlockID
	published   int
	accepted    int
	blocked     int
	rejected    int
	retired     int
	compactions int
	// lastSpeeds is the hour_speed table of the newest ingested block —
	// the serving-time join table accepted bundles ship (only the loop
	// goroutine touches it).
	lastSpeeds []float64
	// nextPipe is the fair round-robin turn pointer (loop goroutine
	// only; advances when a pipeline actually trains, see step).
	nextPipe int

	closeOnce sync.Once
	closeErr  error
}

// New opens (or recovers) the durable platform in cfg.Dir and prepares
// the loop: replay both WALs, regenerate raw data for live blocks,
// resume the stream at the recovered block watermark, and self-heal the
// replica tier. The daemon does not start looping until Run.
func New(cfg Config) (*Daemon, durable.Stats, error) {
	cfg.applyDefaults()
	if err := cfg.Global.Validate(); err != nil {
		return nil, durable.Stats{}, err
	}
	if cfg.Global.Epsilon <= 0 {
		return nil, durable.Stats{}, fmt.Errorf("daemon: global ε must be > 0")
	}

	d := &Daemon{cfg: cfg, reg: metrics.New()}
	d.db = data.NewGrowingDatabase(data.TimePartitioner{Window: cfg.Window})
	plat, stats, err := durable.Open(cfg.Dir, core.Policy{Global: cfg.Global}, durable.Options{
		NoSync:       cfg.NoSync,
		LedgerShards: cfg.LedgerShards,
		Metrics:      d.reg,
		Logf:         cfg.Logf,
		Tracer:       cfg.Tracer,
		// DP-informed retention (§3.2): a retired block's raw data is
		// deleted. Registered before replay so recovery reproduces
		// retirement stickiness; during replay the database is still
		// empty and the delete is a no-op.
		OnRetire: func(id data.BlockID) {
			d.db.Delete(id)
			d.mu.Lock()
			d.retired++
			d.mu.Unlock()
		},
	})
	if err != nil {
		return nil, stats, err
	}
	d.plat = plat
	d.srv = store.NewServer(plat.Store)
	d.srv.Instrument(d.reg)
	d.instrument()

	// Resume the stream where the ledger says it stopped. Retired
	// blocks stay deleted; every live block's raw data is regenerated
	// bit-identically from the per-block seed.
	recovered := plat.AC.Blocks()
	retiredNow := 0
	for _, id := range recovered {
		if id >= d.nextBlock {
			d.nextBlock = id + 1
		}
		if plat.AC.Retired(id) {
			retiredNow++
			continue
		}
		speeds := d.ingestBlock(id)
		d.lastSpeeds = speeds
		// A crash between registering a block and charging its feature
		// release leaves the charge missing; zero loss is the marker
		// (every charged block's loss stays ≥ FeatureEps — refunds
		// never dip below it). Re-charge so the aggregate's ε is never
		// forgotten.
		if cfg.FeatureEps > 0 && plat.AC.BlockLoss(id).IsZero() {
			if err := plat.AC.Request([]data.BlockID{id}, privacy.Budget{Epsilon: cfg.FeatureEps}); err != nil {
				plat.Close()
				return nil, stats, fmt.Errorf("daemon: re-charging feature release for block %d: %w", id, err)
			}
		}
	}
	// The retire hook fired during replay for journaled retirements but
	// not for snapshot-restored ones; pin the counter to the ledger's
	// actual retired-block count so GET /daemon/status reports the same
	// number regardless of when the last compaction ran.
	d.mu.Lock()
	d.retired = retiredNow
	d.mu.Unlock()
	if len(recovered) > 0 {
		cfg.Logf("daemon: recovered %d blocks (next %d), %d releases, ledger loss %v",
			len(recovered), d.nextBlock, countVersions(plat.Store), plat.AC.StreamLoss())
	}

	if len(cfg.PushEndpoints) > 0 {
		opts := []replica.Option{replica.WithSelfHealing()}
		if cfg.PushToken != "" {
			opts = append(opts, replica.WithAuth(cfg.PushToken))
		}
		d.pub = replica.NewPublisher(plat.Store, cfg.PushEndpoints, opts...)
		// Push lag per replica: how many authoritative versions the
		// replica has not acked yet, from the publisher's watermark
		// cache (the same numbers GET /daemon/status reports).
		for _, ep := range cfg.PushEndpoints {
			d.reg.GaugeFunc("sage_daemon_replica_lag_versions",
				"Authoritative store versions not yet applied by this replica.",
				func() float64 {
					lag := countVersions(d.plat.Store)
					for name := range d.plat.Store.Watermarks() {
						lag -= d.pub.Watermark(ep, name)
					}
					return float64(max(lag, 0))
				}, metrics.Label{Name: "endpoint", Value: ep})
		}
		// Startup heal: replicas that missed releases while this
		// publisher was down converge now, not at the next publish.
		// Unreachable replicas stay flagged and heal lazily.
		if err := d.pub.Heal(); err != nil {
			cfg.Logf("daemon: startup replica heal (will retry on push): %v", err)
		}
	}
	return d, stats, nil
}

// instrument registers the daemon-tier metric families. Ledger ε and
// loop counters are gauge funcs over the authoritative state (the
// ledger itself, the mu-guarded loop counters), so /metrics and
// /daemon/status can never disagree.
func (d *Daemon) instrument() {
	for p := tickPhase(0); p < numPhases; p++ {
		d.phaseSec[p] = d.reg.Histogram("sage_daemon_tick_phase_seconds",
			"Duration of one loop-tick phase.", metrics.LatencyBuckets(),
			metrics.Label{Name: "phase", Value: p.String()})
	}
	// Stream-wide privacy loss is the max cumulative loss over blocks
	// (Theorem 4.2), so spent/remaining report against the per-block
	// ceiling εg — remaining hits zero exactly when some block is
	// exhausted, which is when training starts to block.
	d.reg.GaugeFunc("sage_daemon_ledger_eps_spent",
		"Stream-wide privacy loss ε (max cumulative loss over blocks).",
		func() float64 { return d.plat.AC.StreamLoss().Epsilon })
	d.reg.GaugeFunc("sage_daemon_ledger_eps_remaining",
		"Headroom to the global per-block ceiling εg.",
		func() float64 { return math.Max(0, d.cfg.Global.Epsilon-d.plat.AC.StreamLoss().Epsilon) })
	for k := 0; k < d.plat.LedgerShards(); k++ {
		shard := metrics.Label{Name: "shard", Value: strconv.Itoa(k)}
		spent := func() float64 {
			loss := 0.0
			for _, id := range d.plat.AC.ShardBlocks(k) {
				loss = math.Max(loss, d.plat.AC.BlockLoss(id).Epsilon)
			}
			return loss
		}
		d.reg.GaugeFunc("sage_daemon_ledger_shard_eps_spent",
			"Max cumulative privacy loss ε over this ledger shard's blocks.",
			spent, shard)
		d.reg.GaugeFunc("sage_daemon_ledger_shard_eps_remaining",
			"This shard's headroom to the global per-block ceiling εg.",
			func() float64 { return math.Max(0, d.cfg.Global.Epsilon-spent()) }, shard)
	}
	d.reg.GaugeFunc("sage_daemon_ledger_blocks",
		"Blocks registered with the ledger (including retired ones).",
		func() float64 { return float64(len(d.plat.AC.Blocks())) })
	d.reg.GaugeFunc("sage_daemon_store_versions",
		"Published model versions across all names (applied-version sum).",
		func() float64 { return float64(countVersions(d.plat.Store)) })
	counter := func(name, help string, field *int) {
		d.reg.GaugeFunc(name, help, func() float64 {
			d.mu.Lock()
			defer d.mu.Unlock()
			return float64(*field)
		})
	}
	counter("sage_daemon_ticks", "Loop iterations started.", &d.ticks)
	counter("sage_daemon_published_versions", "Bundles published into the store.", &d.published)
	counter("sage_daemon_accepted_runs", "Training runs whose model was ACCEPTed.", &d.accepted)
	counter("sage_daemon_rejected_runs", "Training runs whose model was REJECTed.", &d.rejected)
	counter("sage_daemon_blocked_ticks", "Ticks where no pipeline could afford to train.", &d.blocked)
	counter("sage_daemon_retired_blocks", "Blocks retired by the DP-retention policy.", &d.retired)
	counter("sage_daemon_compactions", "WAL compaction passes that ran.", &d.compactions)
}

func countVersions(st *store.Store) int {
	n := 0
	for _, c := range st.Watermarks() {
		n += c
	}
	return n
}

// ingestBlock (re)generates block id's rides, featurizes them with the
// block's (DP) hour_speed table, and inserts them into the database.
// Everything derives from (Seed, id), so recovery regenerates identical
// bytes. Returns the block's speed table.
func (d *Daemon) ingestBlock(id data.BlockID) []float64 {
	gen := taxi.NewGenerator(taxi.Config{}, rng.MixSeed(d.cfg.Seed, uint64(id)))
	rides := gen.Generate(d.cfg.RowsPerBlock, int64(id)*d.cfg.Window, d.cfg.Window)
	clean, _ := taxi.Clean(rides)
	var speeds []float64
	if d.cfg.FeatureEps > 0 {
		speeds = taxi.SpeedByHour(clean, d.cfg.FeatureEps, rng.New(rng.MixSeed(d.cfg.Seed, uint64(id), 7)))
	} else {
		speeds = taxi.SpeedByHour(clean, 0, nil)
	}
	d.db.Insert(taxi.Featurize(clean, speeds).Examples...)
	return speeds
}

// Run executes the loop until the context is cancelled (graceful drain:
// the in-flight iteration completes, the replica tier gets a final
// sync, the WALs are compacted and closed) or MaxTicks is reached. The
// first iteration runs one Tick after Run starts.
func (d *Daemon) Run(ctx context.Context) error {
	ticker := time.NewTicker(d.cfg.Tick)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			d.cfg.Logf("daemon: draining (signal received)")
			return d.Close()
		case <-ticker.C:
			if err := d.step(); err != nil {
				d.Close()
				return err
			}
			d.mu.Lock()
			ticks := d.ticks
			d.mu.Unlock()
			if d.cfg.MaxTicks > 0 && ticks >= d.cfg.MaxTicks {
				d.cfg.Logf("daemon: reached %d ticks, draining", ticks)
				return d.Close()
			}
		}
	}
}

// Close flushes the replica tier, compacts, and closes the WALs. Safe
// to call more than once; after Close mutations fail their journal
// writes, so the loop must not keep running.
func (d *Daemon) Close() error {
	d.closeOnce.Do(func() {
		if d.pub != nil {
			ctx := context.Background()
			if d.cfg.DrainTimeout > 0 {
				var cancel context.CancelFunc
				ctx, cancel = context.WithTimeout(ctx, d.cfg.DrainTimeout)
				defer cancel()
			}
			if err := d.pub.SyncContext(ctx); err != nil {
				d.cfg.Logf("daemon: final replica sync: %v", err)
			}
		}
		if err := d.plat.Compact(); err != nil {
			d.cfg.Logf("daemon: final compaction: %v", err)
		}
		d.closeErr = d.plat.Close()
	})
	return d.closeErr
}

// step is one loop iteration. Only journal failures (the platform can
// no longer make mutations durable) abort the daemon; everything else —
// blocked pipelines, unreachable replicas — is continuous-operation
// business as usual.
func (d *Daemon) step() error {
	d.mu.Lock()
	tick := d.ticks
	d.ticks++
	block := d.nextBlock
	d.nextBlock++
	d.mu.Unlock()

	// One tick is one trace: a root span with a child span per phase.
	// The exemplar trace id is resolved up front because the deferred
	// End scrubs and pools the span before the last phase observes.
	root := d.cfg.Tracer.StartRoot("daemon.tick")
	root.SetAttr("tick", strconv.Itoa(tick))
	rootID := root.TraceIDString()
	// fail ends the in-flight phase span and marks the trace; the
	// deferred root.End then tail-captures it (outcome != "").
	fail := func(sp *trace.Span, err error) error {
		sp.SetOutcome("error")
		sp.End()
		root.SetOutcome("error")
		return err
	}
	defer root.End()

	// 1. Ingest this tick's block and account its feature release.
	phaseStart := time.Now()
	sp := root.StartChild("daemon.ingest")
	speeds := d.ingestBlock(block)
	d.lastSpeeds = speeds
	if d.plat.AC.RegisterBlock(block) && d.cfg.FeatureEps > 0 {
		if err := d.plat.AC.Request([]data.BlockID{block}, privacy.Budget{Epsilon: d.cfg.FeatureEps}); err != nil {
			return fail(sp, fmt.Errorf("daemon: charging feature release for block %d: %w", block, err))
		}
	}
	sp.End()
	d.phaseSec[phaseIngest].ObserveSinceExemplar(phaseStart, rootID)

	// 2. One privacy-adaptive training run, fair round-robin. A naive
	// tick%N rotation starves pipelines when the budget-refill cadence
	// resonates with N (e.g. a window's worth of fresh blocks every 6
	// ticks always landing on the same pipeline), so the turn pointer
	// advances only when a pipeline actually got to train; pipelines
	// that are merely unaffordable this tick are skipped at no budget
	// cost and keep their place in line.
	phaseStart = time.Now()
	sp = root.StartChild("daemon.train")
	trained := false
	for k := 0; k < d.cfg.Pipelines; k++ {
		idx := (d.nextPipe + k) % d.cfg.Pipelines
		attempted, err := d.trainPipeline(tick, idx)
		if err != nil {
			return fail(sp, err)
		}
		if attempted {
			d.nextPipe = (idx + 1) % d.cfg.Pipelines
			trained = true
			break
		}
	}
	if !trained {
		sp.AddEvent("blocked")
		d.mu.Lock()
		d.blocked++
		d.mu.Unlock()
	}
	sp.End()
	d.phaseSec[phaseTrain].ObserveSinceExemplar(phaseStart, rootID)

	// 3. Retention: retire blocks older than the window.
	phaseStart = time.Now()
	sp = root.StartChild("daemon.retention")
	if d.cfg.Retention > 0 {
		horizon := block - data.BlockID(d.cfg.Retention) + 1
		for _, id := range d.plat.AC.Blocks() {
			if id >= horizon {
				break
			}
			if d.plat.AC.Retired(id) {
				continue
			}
			if err := d.plat.AC.Retire(id); err != nil {
				return fail(sp, fmt.Errorf("daemon: retiring block %d: %w", id, err))
			}
			d.cfg.Logf("daemon: tick %d: retired block %d (retention window %d)", tick, id, d.cfg.Retention)
		}
	}
	sp.End()
	d.phaseSec[phaseRetention].ObserveSinceExemplar(phaseStart, rootID)

	// 4. Periodic WAL compaction: the fixed tick cadence bounds staleness,
	// the byte threshold bounds recovery time for write-heavy logs — an
	// oversized ledger segment is compacted the tick it crosses the
	// threshold, not when the cadence next comes around.
	phaseStart = time.Now()
	sp = root.StartChild("daemon.compaction")
	if (tick+1)%d.cfg.CompactEvery == 0 {
		if err := d.plat.Compact(); err != nil {
			return fail(sp, fmt.Errorf("daemon: compaction: %w", err))
		}
		d.mu.Lock()
		d.compactions++
		d.mu.Unlock()
		lb, sb := d.plat.LogSizes()
		d.cfg.Logf("daemon: tick %d: compacted WALs (ledger %dB, store %dB)", tick, lb, sb)
	} else if d.cfg.CompactBytes > 0 && d.plat.MaxLogSize() > d.cfg.CompactBytes {
		n, err := d.plat.CompactIfLarger(d.cfg.CompactBytes)
		if err != nil {
			return fail(sp, fmt.Errorf("daemon: size-triggered compaction: %w", err))
		}
		if n > 0 {
			d.mu.Lock()
			d.compactions++
			d.mu.Unlock()
			lb, sb := d.plat.LogSizes()
			d.cfg.Logf("daemon: tick %d: compacted %d oversized log(s) (ledger %dB, store %dB)", tick, n, lb, sb)
		}
	}
	sp.End()
	d.phaseSec[phaseCompaction].ObserveSinceExemplar(phaseStart, rootID)
	return nil
}

// trainPipeline runs one adaptive search for pipeline idx and publishes
// on ACCEPT. It reports attempted=false when the pipeline could not
// afford a single training run (no budget was consumed), so the caller
// can give another pipeline this tick's slot.
func (d *Daemon) trainPipeline(tick, idx int) (attempted bool, err error) {
	name := fmt.Sprintf("taxi-lr-%d", idx)
	pipe := &pipeline.Pipeline{
		Name:    name,
		Trainer: pipeline.AdaSSPTrainer{Rho: 0.1, FeatureBound: 2.5, LabelBound: 1},
		Validator: pipeline.MSEValidator{
			Target: d.cfg.SLATargets[idx%len(d.cfg.SLATargets)], B: 1,
			ERMTrainer: pipeline.RidgeTrainer{Lambda: 1e-4},
		},
		Mode: validation.ModeSage,
	}
	trainer := &adaptive.StreamTrainer{
		AC: d.plat.AC, DB: d.db, Pipe: pipe,
		Epsilon0:   d.cfg.Epsilon0,
		EpsilonCap: d.cfg.EpsilonCap,
		Delta:      d.cfg.Global.Delta / 100,
		MinWindow:  min(d.cfg.MinWindow, d.db.NumBlocks()),
	}
	r := rng.New(rng.MixSeed(d.cfg.Seed, uint64(tick), uint64(idx), 0xDA))
	res, err := trainer.Run(r)
	// An insufficient-budget return with zero iterations means the
	// pipeline never trained: no budget moved, so the slot can go to
	// another pipeline. With iterations > 0 the search did consume
	// budget before running out — that was a real attempt.
	attempted = res.Iterations > 0
	switch {
	case errors.Is(err, adaptive.ErrInsufficientBudget):
		// The paper's steady state: wait for the database to grow.
		return attempted, nil
	case err != nil:
		// Training errors don't kill the platform; the refunds already
		// happened inside StreamTrainer.
		d.cfg.Logf("daemon: tick %d: pipeline %s: %v", tick, name, err)
		return attempted, nil
	}
	if res.Decision != validation.Accept {
		d.mu.Lock()
		d.rejected++
		d.mu.Unlock()
		return true, nil
	}
	spec, err := store.Serialize(res.Model)
	if err != nil {
		d.cfg.Logf("daemon: tick %d: serialize %s: %v", tick, name, err)
		return true, nil
	}
	bundle := store.Bundle{
		Name:  name,
		Model: spec,
		// Ship the newest block's released aggregate as the bundle's
		// serving-time join table (§2.1).
		Features: map[string][]float64{"hour_speed": append([]float64(nil), d.lastSpeeds...)},
		Provenance: store.Provenance{
			Pipeline: name,
			Spent:    res.TotalSpent,
			Blocks:   res.Blocks,
			Decision: res.Decision.String(),
			Quality:  res.Quality,
		},
	}
	// Publish → journal (store WAL) → push. A crash after the journal
	// write re-pushes on restart via the publisher's self-healing.
	var version int
	if d.pub != nil {
		var pushErr error
		version, pushErr = d.pub.Publish(bundle)
		if pushErr != nil {
			d.cfg.Logf("daemon: tick %d: push %s@v%d (will heal): %v", tick, name, version, pushErr)
		}
	} else {
		version = d.plat.Store.Publish(bundle)
	}
	d.mu.Lock()
	d.accepted++
	d.published++
	d.mu.Unlock()
	d.cfg.Logf("daemon: tick %d: published %s@v%d (%d blocks, quality %.4g, spent %v)",
		tick, name, version, len(res.Blocks), res.Quality, res.TotalSpent)
	return true, nil
}

// BlockStatus is one ledger row of the status report.
type BlockStatus struct {
	ID           int64   `json:"id"`
	LossEps      float64 `json:"loss_eps"`
	LossDelta    float64 `json:"loss_delta"`
	RemainEps    float64 `json:"remain_eps"`
	RemainDelta  float64 `json:"remain_delta"`
	Queries      int     `json:"queries"`
	Retired      bool    `json:"retired"`
	RetireReason string  `json:"retire_reason,omitempty"`
}

// Status is the daemon's introspection snapshot (GET /daemon/status).
// Blocks, StreamLoss*, and StoreVersions are exactly the state the
// kill/relaunch e2e pins across a crash.
type Status struct {
	Ticks           int                       `json:"ticks"`
	NextBlock       int64                     `json:"next_block"`
	Blocks          []BlockStatus             `json:"blocks"`
	StreamLossEps   float64                   `json:"stream_loss_eps"`
	StreamLossDelta float64                   `json:"stream_loss_delta"`
	StoreVersions   map[string]int            `json:"store_versions"`
	Replicas        map[string]map[string]int `json:"replicas,omitempty"`
	Published       int                       `json:"published"`
	Accepted        int                       `json:"accepted"`
	Rejected        int                       `json:"rejected"`
	Blocked         int                       `json:"blocked"`
	RetiredBlocks   int                       `json:"retired_blocks"`
	Compactions     int                       `json:"compactions"`
	WALLedgerBytes  int64                     `json:"wal_ledger_bytes"`
	WALStoreBytes   int64                     `json:"wal_store_bytes"`
	LedgerShards    int                       `json:"ledger_shards"`
}

// LedgerStatus converts a ledger report to status rows.
func LedgerStatus(ac *core.AccessControl) []BlockStatus {
	reports := ac.Report(ac.Blocks())
	out := make([]BlockStatus, len(reports))
	for i, rep := range reports {
		out[i] = BlockStatus{
			ID:           int64(rep.ID),
			LossEps:      rep.Loss.Epsilon,
			LossDelta:    rep.Loss.Delta,
			RemainEps:    rep.Remain.Epsilon,
			RemainDelta:  rep.Remain.Delta,
			Queries:      rep.Queries,
			Retired:      rep.Retired,
			RetireReason: string(rep.Reason),
		}
	}
	return out
}

// Status reports the daemon's current state.
func (d *Daemon) Status() Status {
	d.mu.Lock()
	st := Status{
		Ticks:         d.ticks,
		NextBlock:     int64(d.nextBlock),
		Published:     d.published,
		Accepted:      d.accepted,
		Rejected:      d.rejected,
		Blocked:       d.blocked,
		RetiredBlocks: d.retired,
		Compactions:   d.compactions,
	}
	d.mu.Unlock()
	st.Blocks = LedgerStatus(d.plat.AC)
	loss := d.plat.AC.StreamLoss()
	st.StreamLossEps, st.StreamLossDelta = loss.Epsilon, loss.Delta
	st.StoreVersions = d.plat.Store.Watermarks()
	st.WALLedgerBytes, st.WALStoreBytes = d.plat.LogSizes()
	st.LedgerShards = d.plat.LedgerShards()
	if d.pub != nil {
		st.Replicas = make(map[string]map[string]int)
		for _, ep := range d.pub.Endpoints() {
			wm := make(map[string]int)
			for name := range st.StoreVersions {
				wm[name] = d.pub.Watermark(ep, name)
			}
			st.Replicas[ep] = wm
		}
	}
	return st
}

// Platform exposes the underlying durable platform (tests).
func (d *Daemon) Platform() *durable.Platform { return d.plat }

// Metrics exposes the daemon's registry (tests scrape it without going
// through HTTP).
func (d *Daemon) Metrics() *metrics.Registry { return d.reg }

// Handler returns the daemon's HTTP surface: the full single-node
// serving API (shared store.Server handlers, so daemon, serve mode, and
// replicas cannot drift) plus GET /daemon/status and GET /metrics.
func (d *Daemon) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /daemon/status", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, d.Status())
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = d.reg.TextExpose(w)
	})
	if d.cfg.Tracer != nil {
		mux.Handle("GET /debug/trace", d.cfg.Tracer.DebugHandler(func() any { return d.reg.Exemplars() }))
	}
	mux.Handle("/", d.srv.Handler())
	// Middleware on a nil tracer returns mux unchanged.
	return d.cfg.Tracer.Middleware(mux)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}
