package experiments

import (
	"fmt"
	"io"

	"repro/internal/workload"
)

// Fig8Options scales the workload experiment.
type Fig8Options struct {
	// TaxiRates and CriteoRates are the arrival-rate sweeps (Fig. 8's
	// x-axes; defaults 0.1…0.7 and 0.1…0.9).
	TaxiRates   []float64
	CriteoRates []float64
	// Hours is the simulation horizon per point (default 1000).
	Hours int
	Seed  uint64
	// Workers bounds the sweep's parallelism (<= 0 means
	// runtime.GOMAXPROCS(0)). Output is bit-identical for any value.
	Workers int
}

func (o *Fig8Options) fill() {
	if len(o.TaxiRates) == 0 {
		o.TaxiRates = []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7}
	}
	if len(o.CriteoRates) == 0 {
		o.CriteoRates = []float64{0.1, 0.3, 0.5, 0.7, 0.9}
	}
	if o.Hours == 0 {
		o.Hours = 1000
	}
	if o.Seed == 0 {
		o.Seed = 5
	}
}

// Fig8Result holds both panels.
type Fig8Result struct {
	Taxi   []workload.SweepPoint
	Criteo []workload.SweepPoint
}

// Fig8 regenerates the average-model-release-time-under-load figure:
// the four strategies swept over arrival rates, with hourly blocks of
// ~16K points (Taxi) and ~267K points (Criteo), under a global
// (εg, δg) = (1.0, 1e-6) guarantee.
func Fig8(o Fig8Options) Fig8Result {
	o.fill()
	strategies := []workload.Strategy{
		workload.StreamingComposition,
		workload.QueryComposition,
		workload.BlockAggressive,
		workload.BlockConserve,
	}
	taxiBase := workload.Config{
		EpsG: 1.0, BlockSize: 16000, Hours: o.Hours, Seed: o.Seed,
		Workers: o.Workers,
	}
	criteoBase := workload.Config{
		EpsG: 1.0, BlockSize: 267000, Hours: o.Hours, Seed: o.Seed + 1,
		Workers: o.Workers,
	}
	return Fig8Result{
		Taxi:   workload.Sweep(taxiBase, o.TaxiRates, strategies),
		Criteo: workload.Sweep(criteoBase, o.CriteoRates, strategies),
	}
}

// PrintFig8 renders both panels.
func PrintFig8(w io.Writer, res Fig8Result) {
	fmt.Fprintln(w, "Fig. 8. Average model release time under load (hours)")
	panels := []struct {
		name string
		pts  []workload.SweepPoint
	}{{"Taxi (16K/h blocks)", res.Taxi}, {"Criteo (267K/h blocks)", res.Criteo}}
	for _, panel := range panels {
		fmt.Fprintf(w, "-- %s --\n", panel.name)
		for _, p := range panel.pts {
			fmt.Fprintf(w, "rate=%.2f %-24s release=%7.1fh released=%d/%d ε/model=%.3f\n",
				p.Rate, p.Strategy, p.Stats.AvgReleaseTime,
				p.Stats.Released, p.Stats.Arrived, p.Stats.AvgBudgetSpent)
		}
	}
}
