package experiments

import (
	"fmt"
	"io"
	"math"

	"repro/internal/data"
	"repro/internal/ml"
	"repro/internal/parallel"
	"repro/internal/privacy"
	"repro/internal/rng"
	"repro/internal/validation"
)

// Fig5Point is one measurement of Fig. 5: the quality of one model
// variant trained on N samples and evaluated on a held-out set.
type Fig5Point struct {
	Task    Task
	Model   string // "LR", "NN", "LG"
	Variant string // "NP", "ε=1.00", "ε=0.05", ...
	N       int
	Quality float64 // MSE for Taxi (lower better), accuracy for Criteo
}

// Fig5Options scales the experiment. The zero value gives the full
// sweep; benches shrink Sizes and Holdout.
type Fig5Options struct {
	// Sizes is the training-set size grid (default 10K…1M log grid).
	Sizes []int
	// Holdout is the evaluation set size (paper: 100K).
	Holdout int
	// Models filters by model name; empty runs all.
	Models []string
	// Seed drives data generation and DP noise.
	Seed uint64
	// Workers bounds the experiment engine's parallelism (<= 0 means
	// runtime.GOMAXPROCS(0)). Output is bit-identical for any value.
	Workers int
}

func (o *Fig5Options) fill() {
	if len(o.Sizes) == 0 {
		o.Sizes = []int{10000, 30000, 100000, 300000, 1000000}
	}
	if o.Holdout == 0 {
		o.Holdout = 100000
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
}

// wants reports whether the model is selected.
func (o *Fig5Options) wants(name string) bool {
	if len(o.Models) == 0 {
		return true
	}
	for _, m := range o.Models {
		if m == name {
			return true
		}
	}
	return false
}

// Fig5 regenerates the learning curves of Fig. 5: for each Table 1
// pipeline, the non-private, large-ε and small-ε variants trained on
// growing data, evaluated on a held-out set. The grid is flattened into
// independent cells enqueued on the experiment scheduler — the shared
// process-wide pool when one is installed (parallel.SetGlobal), a
// private Workers-bounded pool otherwise — and collected in grid order;
// per-cell rng.MixSeed seeds keep the output bit-identical either way.
func Fig5(o Fig5Options) []Fig5Point {
	o.fill()
	cfgs := Configs()
	var selected []int
	for i, cfg := range cfgs {
		if o.wants(cfg.Task.String() + "-" + cfg.Name) {
			selected = append(selected, i)
		}
	}

	// Stage 1: one stream + holdout pair per distinct task (several
	// pipelines share a task's data), generated in parallel.
	type pairT struct{ stream, holdout *data.Dataset }
	maxN := o.Sizes[len(o.Sizes)-1]
	tasks, taskOf := distinctTasks(cfgs, selected)
	pairs := parallel.Map(o.Workers, len(tasks), func(i int) pairT {
		return pairT{
			stream:  Dataset(tasks[i], maxN, o.Seed),
			holdout: Dataset(tasks[i], o.Holdout, o.Seed+1),
		}
	})

	// Stage 2: flatten the (pipeline × variant × size) grid in output
	// order; every cell trains and evaluates independently.
	type cell struct {
		cfgIdx  int
		pair    pairT
		variant string
		dp      bool
		eps     float64
		n       int
	}
	var cells []cell
	for _, cfgIdx := range selected {
		cfg := cfgs[cfgIdx]
		variants := []struct {
			name string
			dp   bool
			eps  float64
		}{
			{"NP", false, 0},
			{fmt.Sprintf("ε=%.2f", cfg.LargeEps), true, cfg.LargeEps},
			{fmt.Sprintf("ε=%.2f", cfg.SmallEps), true, cfg.SmallEps},
		}
		for _, v := range variants {
			for _, n := range o.Sizes {
				cells = append(cells, cell{
					cfgIdx: cfgIdx, pair: pairs[taskOf[cfg.Task]],
					variant: v.name, dp: v.dp, eps: v.eps, n: n,
				})
			}
		}
	}
	return parallel.Map(o.Workers, len(cells), func(i int) Fig5Point {
		c := cells[i]
		cfg := cfgs[c.cfgIdx]
		p := cfg.Build(c.dp, cfg.Targets[0], validation.ModeSage)
		train := c.pair.stream.Head(c.n)
		// Train directly (no validation): Fig. 5 measures training
		// quality, not acceptance.
		budget := privacy.Budget{Epsilon: c.eps, Delta: cfg.Delta}
		// The seed mixes the cell's own coordinates — pipeline included,
		// so variants that share an ε (all LargeEps are 1.0) still get
		// decorrelated noise across panels.
		r := rng.New(rng.MixSeed(o.Seed, uint64(c.cfgIdx), uint64(c.n),
			math.Float64bits(c.eps)))
		model := p.Trainer.Train(train, budget, r)
		return Fig5Point{
			Task: cfg.Task, Model: cfg.Name, Variant: c.variant,
			N: c.n, Quality: quality(cfg.Task, model, c.pair.holdout),
		}
	})
}

// distinctTasks returns the distinct tasks among the selected configs in
// first-appearance order, plus a task → index lookup, so dataset
// generation runs once per task rather than once per pipeline.
func distinctTasks(cfgs []ModelConfig, selected []int) ([]Task, map[Task]int) {
	var tasks []Task
	idx := make(map[Task]int)
	for _, ci := range selected {
		t := cfgs[ci].Task
		if _, ok := idx[t]; !ok {
			idx[t] = len(tasks)
			tasks = append(tasks, t)
		}
	}
	return tasks, idx
}

// quality evaluates a model with the task's metric: MSE for the Taxi
// regression, accuracy for the Criteo classification.
func quality(task Task, m ml.Model, holdout *data.Dataset) float64 {
	if task == TaxiRegression {
		return ml.MSE(m, holdout)
	}
	return ml.Accuracy(m, holdout)
}

// PrintFig5 renders the points as the four panels of Fig. 5.
func PrintFig5(w io.Writer, pts []Fig5Point) {
	fmt.Fprintln(w, "Fig. 5. Impact of DP on training pipelines (quality vs training samples)")
	last := ""
	for _, p := range pts {
		panel := fmt.Sprintf("%s %s", p.Task, p.Model)
		if panel != last {
			metric := "MSE"
			if p.Task == CriteoClassification {
				metric = "Accuracy"
			}
			fmt.Fprintf(w, "-- %s (%s) --\n", panel, metric)
			last = panel
		}
		fmt.Fprintf(w, "%-8s n=%-8d quality=%.6f\n", p.Variant, p.N, p.Quality)
	}
}
