package experiments

import (
	"fmt"
	"io"

	"repro/internal/data"
	"repro/internal/ml"
	"repro/internal/privacy"
	"repro/internal/rng"
	"repro/internal/validation"
)

// Fig5Point is one measurement of Fig. 5: the quality of one model
// variant trained on N samples and evaluated on a held-out set.
type Fig5Point struct {
	Task    Task
	Model   string // "LR", "NN", "LG"
	Variant string // "NP", "ε=1.00", "ε=0.05", ...
	N       int
	Quality float64 // MSE for Taxi (lower better), accuracy for Criteo
}

// Fig5Options scales the experiment. The zero value gives the full
// sweep; benches shrink Sizes and Holdout.
type Fig5Options struct {
	// Sizes is the training-set size grid (default 10K…1M log grid).
	Sizes []int
	// Holdout is the evaluation set size (paper: 100K).
	Holdout int
	// Models filters by model name; empty runs all.
	Models []string
	// Seed drives data generation and DP noise.
	Seed uint64
}

func (o *Fig5Options) fill() {
	if len(o.Sizes) == 0 {
		o.Sizes = []int{10000, 30000, 100000, 300000, 1000000}
	}
	if o.Holdout == 0 {
		o.Holdout = 100000
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
}

// wants reports whether the model is selected.
func (o *Fig5Options) wants(name string) bool {
	if len(o.Models) == 0 {
		return true
	}
	for _, m := range o.Models {
		if m == name {
			return true
		}
	}
	return false
}

// Fig5 regenerates the learning curves of Fig. 5: for each Table 1
// pipeline, the non-private, large-ε and small-ε variants trained on
// growing data, evaluated on a held-out set.
func Fig5(o Fig5Options) []Fig5Point {
	o.fill()
	var out []Fig5Point
	for _, cfg := range Configs() {
		if !o.wants(cfg.Task.String() + "-" + cfg.Name) {
			continue
		}
		maxN := o.Sizes[len(o.Sizes)-1]
		stream := Dataset(cfg.Task, maxN, o.Seed)
		holdout := Dataset(cfg.Task, o.Holdout, o.Seed+1)
		variants := []struct {
			name string
			dp   bool
			eps  float64
		}{
			{"NP", false, 0},
			{fmt.Sprintf("ε=%.2f", cfg.LargeEps), true, cfg.LargeEps},
			{fmt.Sprintf("ε=%.2f", cfg.SmallEps), true, cfg.SmallEps},
		}
		for _, v := range variants {
			for _, n := range o.Sizes {
				p := cfg.Build(v.dp, cfg.Targets[0], validation.ModeSage)
				train := stream.Head(n)
				// Train directly (no validation): Fig. 5 measures
				// training quality, not acceptance.
				budget := privacy.Budget{Epsilon: v.eps, Delta: cfg.Delta}
				r := rng.New(o.Seed + uint64(n) + uint64(v.eps*1000))
				model := p.Trainer.Train(train, budget, r)
				q := quality(cfg.Task, model, holdout)
				out = append(out, Fig5Point{
					Task: cfg.Task, Model: cfg.Name, Variant: v.name,
					N: n, Quality: q,
				})
			}
		}
	}
	return out
}

// quality evaluates a model with the task's metric: MSE for the Taxi
// regression, accuracy for the Criteo classification.
func quality(task Task, m ml.Model, holdout *data.Dataset) float64 {
	if task == TaxiRegression {
		return ml.MSE(m, holdout)
	}
	return ml.Accuracy(m, holdout)
}

// PrintFig5 renders the points as the four panels of Fig. 5.
func PrintFig5(w io.Writer, pts []Fig5Point) {
	fmt.Fprintln(w, "Fig. 5. Impact of DP on training pipelines (quality vs training samples)")
	last := ""
	for _, p := range pts {
		panel := fmt.Sprintf("%s %s", p.Task, p.Model)
		if panel != last {
			metric := "MSE"
			if p.Task == CriteoClassification {
				metric = "Accuracy"
			}
			fmt.Fprintf(w, "-- %s (%s) --\n", panel, metric)
			last = panel
		}
		fmt.Fprintf(w, "%-8s n=%-8d quality=%.6f\n", p.Variant, p.N, p.Quality)
	}
}
