// Package experiments regenerates every table and figure of the paper's
// evaluation (§5): Table 2 (validator violation rates), Fig. 5 (DP
// impact on model quality), Fig. 6 (sample complexity of SLAed
// validation), Fig. 7 (block vs query composition), and Fig. 8 (workload
// release times). Each experiment prints the same rows/series the paper
// reports; EXPERIMENTS.md records paper-vs-measured values.
package experiments

import (
	"fmt"
	"io"

	"repro/internal/criteo"
	"repro/internal/data"
	"repro/internal/pipeline"
	"repro/internal/taxi"
	"repro/internal/validation"
)

// Task identifies the two evaluation tasks.
type Task int

const (
	// TaxiRegression is the NYC-taxi ride-duration task (MSE, lower
	// better).
	TaxiRegression Task = iota
	// CriteoClassification is the ad-click task (accuracy, higher
	// better).
	CriteoClassification
)

// String names the task.
func (t Task) String() string {
	if t == TaxiRegression {
		return "Taxi"
	}
	return "Criteo"
}

// ModelConfig is one row of Table 1: a pipeline configuration with its
// DP algorithm, hyperparameters, budgets, and quality-target range.
type ModelConfig struct {
	Task  Task
	Name  string // "LR", "NN", "LG"
	DPAlg string // "AdaSSP", "DP SGD"
	// LargeEps and SmallEps are the two fixed budgets of Table 1.
	LargeEps, SmallEps float64
	Delta              float64
	// Targets is the quality-target range [easiest … hardest]
	// (MSE descending for Taxi, accuracy ascending for Criteo).
	Targets []float64
	// Build returns the pipeline (dp selects the DP or non-private
	// trainer) in the given validation mode.
	Build func(dp bool, target float64, mode validation.Mode) *pipeline.Pipeline
}

// scaled-down NN hyperparameters: the paper trains 5000/100 and 1024/32
// hidden units on a cluster; we keep the 2-hidden-layer ReLU shape at
// laptop scale (DESIGN.md documents the substitution).
var (
	taxiHidden   = []int{64, 32}
	criteoHidden = []int{64, 32}
)

// Configs returns the Table 1 pipeline configurations.
func Configs() []ModelConfig {
	return []ModelConfig{
		{
			Task: TaxiRegression, Name: "LR", DPAlg: "AdaSSP",
			LargeEps: 1.0, SmallEps: 0.05, Delta: 1e-6,
			Targets: []float64{7e-3, 5e-3, 4e-3, 3.2e-3, 2.7e-3},
			Build: func(dp bool, target float64, mode validation.Mode) *pipeline.Pipeline {
				var tr pipeline.Trainer
				if dp {
					tr = pipeline.AdaSSPTrainer{Rho: 0.1, FeatureBound: 2.5, LabelBound: 1}
				} else {
					tr = pipeline.RidgeTrainer{Lambda: 0.1}
				}
				return &pipeline.Pipeline{
					Name: "taxi-lr", Trainer: tr, Mode: mode,
					Validator: pipeline.MSEValidator{
						Target: target, B: 1,
						ERMTrainer: pipeline.RidgeTrainer{Lambda: 1e-4},
					},
				}
			},
		},
		{
			Task: TaxiRegression, Name: "NN", DPAlg: "DP SGD",
			LargeEps: 1.0, SmallEps: 0.1, Delta: 1e-6,
			Targets: []float64{7e-3, 5e-3, 4e-3, 3.2e-3, 2.8e-3},
			Build: func(dp bool, target float64, mode validation.Mode) *pipeline.Pipeline {
				return &pipeline.Pipeline{
					Name: "taxi-nn", Mode: mode,
					Trainer: pipeline.SGDTrainer{
						Kind: pipeline.KindMLPRegression, Dim: taxi.FeatureDim,
						Hidden: taxiHidden, LearningRate: 0.01, Momentum: 0.9,
						Epochs: 3, BatchSize: 1024,
						DP: dp, ClipNorm: 1, InitSeed: 11,
					},
					// No ERM for NNs: REJECT is skipped, as in the paper.
					Validator: pipeline.MSEValidator{Target: target, B: 1},
				}
			},
		},
		{
			Task: CriteoClassification, Name: "LG", DPAlg: "DP SGD",
			LargeEps: 1.0, SmallEps: 0.25, Delta: 1e-6,
			Targets: []float64{0.74, 0.75, 0.76, 0.77, 0.78},
			Build: func(dp bool, target float64, mode validation.Mode) *pipeline.Pipeline {
				return &pipeline.Pipeline{
					Name: "criteo-lg", Mode: mode,
					Trainer: pipeline.SGDTrainer{
						Kind: pipeline.KindLogistic, Dim: criteo.FeatureDim,
						LearningRate: 0.3, Epochs: 3, BatchSize: 512,
						DP: dp, ClipNorm: 1, InitSeed: 12,
					},
					Validator: pipeline.AccuracyValidator{Target: target},
				}
			},
		},
		{
			Task: CriteoClassification, Name: "NN", DPAlg: "DP SGD",
			LargeEps: 1.0, SmallEps: 0.25, Delta: 1e-6,
			Targets: []float64{0.74, 0.75, 0.76, 0.77, 0.78},
			Build: func(dp bool, target float64, mode validation.Mode) *pipeline.Pipeline {
				return &pipeline.Pipeline{
					Name: "criteo-nn", Mode: mode,
					Trainer: pipeline.SGDTrainer{
						Kind: pipeline.KindMLPClassification, Dim: criteo.FeatureDim,
						Hidden: criteoHidden, LearningRate: 0.05, Momentum: 0.9,
						Epochs: 5, BatchSize: 1024,
						DP: dp, ClipNorm: 1, InitSeed: 13,
					},
					Validator: pipeline.AccuracyValidator{Target: target},
				}
			},
		},
	}
}

// Dataset returns n featurized samples of the task's stream, seeded.
// The span covers at least two weeks so the stream exhibits its full
// hour-of-day and day-of-week structure even for small n (the paper's
// windows always span weeks of data).
func Dataset(task Task, n int, seed uint64) *data.Dataset {
	const minSpan = 24 * 14
	if task == TaxiRegression {
		// ~16K samples/hour at full scale, as in §5.4.
		hours := int64(n / 16000)
		if hours < minSpan {
			hours = minSpan
		}
		return taxi.Pipeline(n, 0, hours, 0, 0, seed)
	}
	hours := int64(n / 267000)
	if hours < minSpan {
		hours = minSpan
	}
	return criteo.Pipeline(n, 0, hours, seed)
}

// PrintTable1 prints the experiment configuration table.
func PrintTable1(w io.Writer) {
	fmt.Fprintln(w, "Table 1. Experimental Training Pipelines (reproduction)")
	fmt.Fprintf(w, "%-8s %-4s %-8s %-12s %-12s %s\n",
		"Task", "Model", "DP Alg", "Large ε", "Small ε", "Targets")
	for _, c := range Configs() {
		fmt.Fprintf(w, "%-8s %-4s %-8s (%.2f,%.0e) (%.2f,%.0e) %v\n",
			c.Task, c.Name, c.DPAlg, c.LargeEps, c.Delta, c.SmallEps, c.Delta, c.Targets)
	}
	fmt.Fprintln(w, "Statistics pipelines: Avg.Speed x3 (hour/day/week), error targets {1,5,7.5,10,15} km/h;")
	fmt.Fprintln(w, "Criteo histograms x26, error targets {0.01,0.05,0.10}.")
}
