package experiments

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/validation"
	"repro/internal/workload"
)

func TestConfigsComplete(t *testing.T) {
	cfgs := Configs()
	if len(cfgs) != 4 {
		t.Fatalf("Configs returned %d entries, want 4 (Table 1)", len(cfgs))
	}
	seen := map[string]bool{}
	for _, c := range cfgs {
		key := c.Task.String() + "-" + c.Name
		seen[key] = true
		if c.LargeEps <= c.SmallEps {
			t.Errorf("%s: large ε %v not above small ε %v", key, c.LargeEps, c.SmallEps)
		}
		if len(c.Targets) == 0 {
			t.Errorf("%s: no targets", key)
		}
		p := c.Build(true, c.Targets[0], validation.ModeSage)
		if p == nil || p.Trainer == nil || p.Validator == nil {
			t.Errorf("%s: Build returned incomplete pipeline", key)
		}
		if !p.Trainer.IsDP() {
			t.Errorf("%s: dp=true build should be DP", key)
		}
		np := c.Build(false, c.Targets[0], validation.ModeSage)
		if np.Trainer.IsDP() {
			t.Errorf("%s: dp=false build should not be DP", key)
		}
	}
	for _, want := range []string{"Taxi-LR", "Taxi-NN", "Criteo-LG", "Criteo-NN"} {
		if !seen[want] {
			t.Errorf("missing config %s", want)
		}
	}
}

func TestDatasetHelper(t *testing.T) {
	taxi := Dataset(TaxiRegression, 1000, 1)
	if taxi.Len() != 1000 {
		t.Errorf("taxi len = %d", taxi.Len())
	}
	criteo := Dataset(CriteoClassification, 500, 1)
	if criteo.Len() != 500 {
		t.Errorf("criteo len = %d", criteo.Len())
	}
}

func TestPrintTable1(t *testing.T) {
	var buf bytes.Buffer
	PrintTable1(&buf)
	out := buf.String()
	for _, want := range []string{"AdaSSP", "DP SGD", "Taxi", "Criteo", "Avg.Speed"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 1 output missing %q", want)
		}
	}
}

func TestFig5SmallGrid(t *testing.T) {
	pts := Fig5(Fig5Options{
		Sizes:   []int{5000, 40000},
		Holdout: 20000,
		Models:  []string{"Taxi-LR"},
		Seed:    11,
	})
	// 3 variants × 2 sizes.
	if len(pts) != 6 {
		t.Fatalf("got %d points, want 6", len(pts))
	}
	byVariant := map[string]map[int]float64{}
	for _, p := range pts {
		if p.Quality <= 0 {
			t.Errorf("non-positive MSE %v", p.Quality)
		}
		if byVariant[p.Variant] == nil {
			byVariant[p.Variant] = map[int]float64{}
		}
		byVariant[p.Variant][p.N] = p.Quality
	}
	// Shape: the small-ε variant improves with data, and NP is at least
	// as good as small-ε DP at the small size.
	np, smallEps := byVariant["NP"], byVariant["ε=0.05"]
	if smallEps[40000] >= smallEps[5000] {
		t.Errorf("ε=0.05 did not improve with data: %v → %v", smallEps[5000], smallEps[40000])
	}
	if np[5000] > smallEps[5000] {
		t.Errorf("NP (%v) worse than ε=0.05 (%v) at 5K samples", np[5000], smallEps[5000])
	}
	var buf bytes.Buffer
	PrintFig5(&buf, pts)
	if !strings.Contains(buf.String(), "Taxi LR") {
		t.Error("PrintFig5 missing panel header")
	}
}

func TestFig6SmallGrid(t *testing.T) {
	pts := Fig6(Fig6Options{
		MaxStream:        250000,
		MinSamples:       5000,
		Models:           []string{"Taxi-LR"},
		TargetsPerConfig: 1, // easiest target only
		Modes: []validation.Mode{
			validation.ModeNoSLA, validation.ModeSage,
		},
		Seed: 12,
	})
	if len(pts) != 2 {
		t.Fatalf("got %d points, want 2", len(pts))
	}
	var noSLA, sage Fig6Point
	for _, p := range pts {
		switch p.Mode {
		case validation.ModeNoSLA:
			noSLA = p
		case validation.ModeSage:
			sage = p
		}
	}
	if !noSLA.Accepted {
		t.Fatal("No SLA should accept the easiest target")
	}
	if !sage.Accepted {
		t.Fatal("Sage should accept the easiest target within 250K samples")
	}
	// Fig. 6's shape: rigorous validation needs more data.
	if sage.Samples < noSLA.Samples {
		t.Errorf("Sage (%d) accepted with less data than No SLA (%d)",
			sage.Samples, noSLA.Samples)
	}
	var buf bytes.Buffer
	PrintFig6(&buf, pts)
	if !strings.Contains(buf.String(), "ACCEPT") {
		t.Error("PrintFig6 missing header")
	}
}

func TestTab2SmallRun(t *testing.T) {
	rows := Tab2(Tab2Options{
		Runs:    6,
		Stream:  100000,
		Holdout: 30000,
		Etas:    []float64{0.05},
		Modes: []validation.Mode{
			validation.ModeNoSLA, validation.ModeSage,
		},
		Seed: 13,
	})
	if len(rows) != 2 { // Taxi + Criteo, one η each
		t.Fatalf("got %d rows, want 2", len(rows))
	}
	for _, row := range rows {
		sageRate := row.ViolationRate[validation.ModeSage]
		if row.Accepts[validation.ModeSage] > 0 && sageRate > 0.35 {
			t.Errorf("%s: Sage violation rate %v implausibly high", row.Task, sageRate)
		}
	}
	var buf bytes.Buffer
	PrintTab2(&buf, rows)
	if !strings.Contains(buf.String(), "Sage SLA") {
		t.Error("PrintTab2 missing header")
	}
}

func TestFig7SmallGrid(t *testing.T) {
	o := Fig7Options{
		Sizes:        []int{20000, 80000},
		LRBlockSizes: []int{5000},
		Targets:      []float64{0.007, 0.005},
		MaxStream:    200000,
		Holdout:      20000,
		SkipNN:       true,
		Seed:         14,
	}
	quality := Fig7Quality(o)
	// LR: 2 sizes × (block + 1 query mode).
	if len(quality) != 4 {
		t.Fatalf("quality points = %d, want 4", len(quality))
	}
	var blockMSE, queryMSE float64
	for _, p := range quality {
		if p.N != 80000 {
			continue
		}
		if p.Mode == "Block Comp." {
			blockMSE = p.MSE
		} else {
			queryMSE = p.MSE
		}
	}
	// Fig. 7a: query composition over small blocks is noisier.
	if queryMSE <= blockMSE {
		t.Errorf("query-comp MSE %v not above block-comp %v", queryMSE, blockMSE)
	}

	accepts := Fig7Accept(o)
	if len(accepts) != 4 { // 2 targets × (block + 1 query)
		t.Fatalf("accept points = %d, want 4", len(accepts))
	}
	for _, target := range o.Targets {
		var block, query Fig7AcceptPoint
		for _, p := range accepts {
			if p.Target != target {
				continue
			}
			if p.BlockSize == 0 {
				block = p
			} else {
				query = p
			}
		}
		// Fig. 7b: query composition needs at least as much data to
		// validate, typically far more.
		if query.Accepted && block.Accepted && query.Samples < block.Samples {
			t.Errorf("target %v: query accepted with %d < block %d samples",
				target, query.Samples, block.Samples)
		}
	}
	var buf bytes.Buffer
	PrintFig7(&buf, quality, accepts)
	if !strings.Contains(buf.String(), "Query Comp.") {
		t.Error("PrintFig7 missing modes")
	}
}

func TestFig8SmallSweep(t *testing.T) {
	res := Fig8(Fig8Options{
		TaxiRates:   []float64{0.2, 0.6},
		CriteoRates: []float64{0.3},
		Hours:       400,
		Seed:        15,
	})
	if len(res.Taxi) != 8 || len(res.Criteo) != 4 {
		t.Fatalf("points: taxi %d want 8, criteo %d want 4", len(res.Taxi), len(res.Criteo))
	}
	// Find conserve and streaming at the high taxi rate.
	var conserve, streaming float64
	for _, p := range res.Taxi {
		if p.Rate != 0.6 {
			continue
		}
		switch p.Strategy {
		case workload.BlockConserve:
			conserve = p.Stats.AvgReleaseTime
		case workload.StreamingComposition:
			streaming = p.Stats.AvgReleaseTime
		}
	}
	if conserve >= streaming {
		t.Errorf("conserve (%vh) not below streaming (%vh) at rate 0.6", conserve, streaming)
	}
	var buf bytes.Buffer
	PrintFig8(&buf, res)
	if !strings.Contains(buf.String(), "Block/Conserve") {
		t.Error("PrintFig8 missing strategies")
	}
}
