package experiments

// Determinism regression tests for the parallel experiment engine: every
// sweep must produce bit-identical output for any worker count, so
// parallelism can never silently change a reproduced figure. Each test
// runs a reduced grid once sequentially (Workers=1) and once heavily
// oversubscribed (Workers=8, far above this grid's size) and compares
// the results exactly — floats included, since every cell derives its
// RNG from its own coordinates rather than from scheduling order.

import (
	"reflect"
	"sync"
	"testing"

	"repro/internal/parallel"
	"repro/internal/validation"
	"repro/internal/workload"
)

func TestFig5DeterministicAcrossWorkers(t *testing.T) {
	base := Fig5Options{
		Sizes:   []int{5000, 10000},
		Holdout: 5000,
		Models:  []string{"Taxi-LR"},
		Seed:    76,
	}
	seq := base
	seq.Workers = 1
	par := base
	par.Workers = 8
	a, b := Fig5(seq), Fig5(par)
	if !reflect.DeepEqual(a, b) {
		t.Errorf("Fig5 output depends on worker count:\nworkers=1: %+v\nworkers=8: %+v", a, b)
	}
}

func TestFig6DeterministicAcrossWorkers(t *testing.T) {
	base := Fig6Options{
		MaxStream:        60000,
		MinSamples:       5000,
		Models:           []string{"Taxi-LR"},
		TargetsPerConfig: 2,
		Modes:            []validation.Mode{validation.ModeNoSLA, validation.ModeSage},
		Seed:             77,
	}
	seq := base
	seq.Workers = 1
	par := base
	par.Workers = 8
	a, b := Fig6(seq), Fig6(par)
	if !reflect.DeepEqual(a, b) {
		t.Errorf("Fig6 output depends on worker count:\nworkers=1: %+v\nworkers=8: %+v", a, b)
	}
}

func TestFig7DeterministicAcrossWorkers(t *testing.T) {
	base := Fig7Options{
		Sizes:        []int{10000, 20000},
		LRBlockSizes: []int{5000},
		Targets:      []float64{0.007},
		MaxStream:    40000,
		Holdout:      10000,
		SkipNN:       true,
		Seed:         78,
	}
	seq := base
	seq.Workers = 1
	par := base
	par.Workers = 8
	if a, b := Fig7Quality(seq), Fig7Quality(par); !reflect.DeepEqual(a, b) {
		t.Errorf("Fig7Quality output depends on worker count:\nworkers=1: %+v\nworkers=8: %+v", a, b)
	}
	if a, b := Fig7Accept(seq), Fig7Accept(par); !reflect.DeepEqual(a, b) {
		t.Errorf("Fig7Accept output depends on worker count:\nworkers=1: %+v\nworkers=8: %+v", a, b)
	}
}

func TestTab2DeterministicAcrossWorkers(t *testing.T) {
	base := Tab2Options{
		Runs:    3,
		Stream:  40000,
		Holdout: 10000,
		Etas:    []float64{0.05},
		Modes:   []validation.Mode{validation.ModeNoSLA, validation.ModeSage},
		Seed:    79,
	}
	seq := base
	seq.Workers = 1
	par := base
	par.Workers = 8
	a, b := Tab2(seq), Tab2(par)
	if !reflect.DeepEqual(a, b) {
		t.Errorf("Tab2 output depends on worker count:\nworkers=1: %+v\nworkers=8: %+v", a, b)
	}
}

// TestSharedPoolInterleavedExperimentsDeterministic pins the tentpole
// contract of the shared scheduler: two experiments submitting cells
// into one process-wide pool concurrently — so their grids interleave
// arbitrarily on the same workers — must each produce output
// bit-identical to a private sequential run.
func TestSharedPoolInterleavedExperimentsDeterministic(t *testing.T) {
	fig5Opts := Fig5Options{
		Sizes:   []int{5000, 10000},
		Holdout: 5000,
		Models:  []string{"Taxi-LR"},
		Seed:    81,
		Workers: 1,
	}
	fig6Opts := Fig6Options{
		MaxStream:        60000,
		MinSamples:       5000,
		Models:           []string{"Taxi-LR"},
		TargetsPerConfig: 2,
		Modes:            []validation.Mode{validation.ModeNoSLA, validation.ModeSage},
		Seed:             82,
		Workers:          1,
	}
	sweepBase := workload.Config{EpsG: 1, BlockSize: 16000, Hours: 200, Seed: 83, Workers: 1}
	sweepRates := []float64{0.3}
	sweepStrats := []workload.Strategy{workload.BlockConserve, workload.QueryComposition}

	// Baselines: private sequential pools, no global scheduler.
	wantFig5 := Fig5(fig5Opts)
	wantFig6 := Fig6(fig6Opts)
	wantSweep := workload.Sweep(sweepBase, sweepRates, sweepStrats)

	// Interleaved: all three run concurrently on one shared pool.
	pool := parallel.NewPool(4)
	parallel.SetGlobal(pool)
	defer func() {
		parallel.SetGlobal(nil)
		pool.Close()
	}()
	var gotFig5 []Fig5Point
	var gotFig6 []Fig6Point
	var gotSweep []workload.SweepPoint
	var wg sync.WaitGroup
	wg.Add(3)
	go func() { defer wg.Done(); gotFig5 = Fig5(fig5Opts) }()
	go func() { defer wg.Done(); gotFig6 = Fig6(fig6Opts) }()
	go func() { defer wg.Done(); gotSweep = workload.Sweep(sweepBase, sweepRates, sweepStrats) }()
	wg.Wait()

	if !reflect.DeepEqual(wantFig5, gotFig5) {
		t.Errorf("Fig5 changed under the shared pool:\nprivate: %+v\nshared:  %+v", wantFig5, gotFig5)
	}
	if !reflect.DeepEqual(wantFig6, gotFig6) {
		t.Errorf("Fig6 changed under the shared pool:\nprivate: %+v\nshared:  %+v", wantFig6, gotFig6)
	}
	if !reflect.DeepEqual(wantSweep, gotSweep) {
		t.Errorf("Sweep changed under the shared pool:\nprivate: %+v\nshared:  %+v", wantSweep, gotSweep)
	}
}

func TestSweepDeterministicAcrossWorkers(t *testing.T) {
	base := workload.Config{EpsG: 1, BlockSize: 16000, Hours: 300, Seed: 80}
	rates := []float64{0.2, 0.5}
	strategies := []workload.Strategy{
		workload.StreamingComposition, workload.QueryComposition,
		workload.BlockAggressive, workload.BlockConserve,
	}
	seq := base
	seq.Workers = 1
	par := base
	par.Workers = 8
	a := workload.Sweep(seq, rates, strategies)
	b := workload.Sweep(par, rates, strategies)
	// Workers differs between the two configs by construction; the
	// simulated points themselves must not.
	for i := range a {
		if a[i].Rate != b[i].Rate || a[i].Strategy != b[i].Strategy || a[i].Stats != b[i].Stats {
			t.Errorf("Sweep point %d depends on worker count:\nworkers=1: %+v\nworkers=8: %+v",
				i, a[i], b[i])
		}
	}
	if len(a) != len(b) || len(a) != len(rates)*len(strategies) {
		t.Fatalf("Sweep sizes: %d vs %d, want %d", len(a), len(b), len(rates)*len(strategies))
	}
}
