package experiments

import (
	"fmt"
	"io"

	"repro/internal/adaptive"
	"repro/internal/data"
	"repro/internal/ml"
	"repro/internal/rng"
	"repro/internal/validation"
)

// Tab2Row is one cell group of Table 2: the fraction of ACCEPTed models
// that violate their quality target when re-evaluated on a large
// held-out set, per validation mode.
type Tab2Row struct {
	Task Task
	Eta  float64
	// ViolationRate and Accepts per mode.
	ViolationRate map[validation.Mode]float64
	Accepts       map[validation.Mode]int
}

// Tab2Options scales the experiment.
type Tab2Options struct {
	// Runs is the number of independent privacy-adaptive trainings per
	// (task, mode, η) cell; each uses a fresh stream sample.
	Runs int
	// Stream bounds the per-run stream size (default 150K).
	Stream int
	// Holdout is the re-evaluation set size (paper: 100K).
	Holdout int
	// Etas are the validator confidences (paper: 0.01, 0.05).
	Etas []float64
	// Modes to compare (default all four).
	Modes []validation.Mode
	Seed  uint64
}

func (o *Tab2Options) fill() {
	if o.Runs == 0 {
		o.Runs = 40
	}
	if o.Stream == 0 {
		o.Stream = 150000
	}
	if o.Holdout == 0 {
		o.Holdout = 100000
	}
	if len(o.Etas) == 0 {
		o.Etas = []float64{0.01, 0.05}
	}
	if len(o.Modes) == 0 {
		o.Modes = []validation.Mode{
			validation.ModeNoSLA, validation.ModeNPSLA,
			validation.ModeUncorrectedDP, validation.ModeSage,
		}
	}
	if o.Seed == 0 {
		o.Seed = 3
	}
}

// Tab2 regenerates Table 2. For each task it repeatedly runs
// privacy-adaptive training with targets drawn near the achievable
// frontier (where erroneous acceptance is possible at all), re-evaluates
// every ACCEPTed model on a held-out set, and reports the fraction that
// violate their target.
//
// Only the LR (Taxi) and LG (Criteo) pipelines run here — the NN
// pipelines behave the same through identical validators but cost far
// more compute; the paper aggregates across its pipelines.
func Tab2(o Tab2Options) []Tab2Row {
	o.fill()
	var rows []Tab2Row
	for _, cfg := range Configs() {
		if cfg.Name != "LR" && cfg.Name != "LG" {
			continue
		}
		holdout := Dataset(cfg.Task, o.Holdout, o.Seed+999)
		for _, eta := range o.Etas {
			row := Tab2Row{
				Task: cfg.Task, Eta: eta,
				ViolationRate: make(map[validation.Mode]float64),
				Accepts:       make(map[validation.Mode]int),
			}
			for _, mode := range o.Modes {
				violations, accepts := 0, 0
				for run := 0; run < o.Runs; run++ {
					seed := o.Seed + uint64(run)*31 + uint64(mode)*7 + uint64(eta*1000)
					stream := Dataset(cfg.Task, o.Stream, seed)
					// Hard targets near the frontier: the last
					// (tightest) two of the config's range,
					// alternating per run.
					target := cfg.Targets[len(cfg.Targets)-1-run%2]
					dp := mode != validation.ModeNPSLA
					pipe := cfg.Build(dp, target, mode)
					pipe.Eta = eta
					search := adaptive.Search{
						Pipe:       pipe,
						Epsilon0:   cfg.LargeEps / 8,
						EpsilonCap: cfg.LargeEps,
						Delta:      cfg.Delta,
						MinSamples: 5000,
					}
					res, err := search.Run(adaptive.SliceSource{Data: stream}, rng.New(seed))
					if err != nil || res.Decision != validation.Accept {
						continue
					}
					accepts++
					model := res.Model.(ml.Model)
					if violates(cfg.Task, model, holdout, target) {
						violations++
					}
				}
				row.Accepts[mode] = accepts
				if accepts > 0 {
					row.ViolationRate[mode] = float64(violations) / float64(accepts)
				}
			}
			rows = append(rows, row)
		}
	}
	return rows
}

// violates reports whether the model misses its target on the held-out
// set (MSE above target for Taxi; accuracy below target for Criteo).
func violates(task Task, m ml.Model, holdout *data.Dataset, target float64) bool {
	if task == TaxiRegression {
		return ml.MSE(m, holdout) > target
	}
	return ml.Accuracy(m, holdout) < target
}

// PrintTab2 renders the rows in the paper's Table 2 layout.
func PrintTab2(w io.Writer, rows []Tab2Row) {
	fmt.Fprintln(w, "Table 2. Target violation rate of ACCEPTed models")
	fmt.Fprintf(w, "%-8s %-6s %-10s %-10s %-10s %-10s\n",
		"Dataset", "η", "No SLA", "NP SLA", "UC DP SLA", "Sage SLA")
	modes := []validation.Mode{
		validation.ModeNoSLA, validation.ModeNPSLA,
		validation.ModeUncorrectedDP, validation.ModeSage,
	}
	for _, row := range rows {
		fmt.Fprintf(w, "%-8s %-6.2f", row.Task, row.Eta)
		for _, m := range modes {
			rate, ok := row.ViolationRate[m]
			if !ok || row.Accepts[m] == 0 {
				fmt.Fprintf(w, " %-10s", "n/a")
			} else {
				fmt.Fprintf(w, " %-10.4f", rate)
			}
		}
		fmt.Fprintln(w)
	}
}
