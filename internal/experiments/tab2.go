package experiments

import (
	"fmt"
	"io"

	"repro/internal/adaptive"
	"repro/internal/data"
	"repro/internal/ml"
	"repro/internal/parallel"
	"repro/internal/rng"
	"repro/internal/validation"
)

// Tab2Row is one cell group of Table 2: the fraction of ACCEPTed models
// that violate their quality target when re-evaluated on a large
// held-out set, per validation mode.
type Tab2Row struct {
	Task Task
	Eta  float64
	// ViolationRate and Accepts per mode.
	ViolationRate map[validation.Mode]float64
	Accepts       map[validation.Mode]int
}

// Tab2Options scales the experiment.
type Tab2Options struct {
	// Runs is the number of independent privacy-adaptive trainings per
	// (task, mode, η) cell; each uses a fresh stream sample.
	Runs int
	// Stream bounds the per-run stream size (default 150K).
	Stream int
	// Holdout is the re-evaluation set size (paper: 100K).
	Holdout int
	// Etas are the validator confidences (paper: 0.01, 0.05).
	Etas []float64
	// Modes to compare (default all four).
	Modes []validation.Mode
	Seed  uint64
	// Workers bounds the experiment engine's parallelism (<= 0 means
	// runtime.GOMAXPROCS(0)). Output is bit-identical for any value.
	Workers int
}

func (o *Tab2Options) fill() {
	if o.Runs == 0 {
		o.Runs = 40
	}
	if o.Stream == 0 {
		o.Stream = 150000
	}
	if o.Holdout == 0 {
		o.Holdout = 100000
	}
	if len(o.Etas) == 0 {
		o.Etas = []float64{0.01, 0.05}
	}
	if len(o.Modes) == 0 {
		o.Modes = []validation.Mode{
			validation.ModeNoSLA, validation.ModeNPSLA,
			validation.ModeUncorrectedDP, validation.ModeSage,
		}
	}
	if o.Seed == 0 {
		o.Seed = 3
	}
}

// Tab2 regenerates Table 2. For each task it repeatedly runs
// privacy-adaptive training with targets drawn near the achievable
// frontier (where erroneous acceptance is possible at all), re-evaluates
// every ACCEPTed model on a held-out set, and reports the fraction that
// violate their target.
//
// Only the LR (Taxi) and LG (Criteo) pipelines run here — the NN
// pipelines behave the same through identical validators but cost far
// more compute; the paper aggregates across its pipelines.
func Tab2(o Tab2Options) []Tab2Row {
	o.fill()
	cfgs := Configs()
	var selected []int
	for i, cfg := range cfgs {
		if cfg.Name == "LR" || cfg.Name == "LG" {
			selected = append(selected, i)
		}
	}

	// Stage 1: one re-evaluation holdout per task, generated in parallel.
	holdouts := parallel.Map(o.Workers, len(selected), func(i int) *data.Dataset {
		return Dataset(cfgs[selected[i]].Task, o.Holdout, o.Seed+999)
	})

	// Stage 2: flatten the (task × η × mode × run) grid. Every run is an
	// independent privacy-adaptive training over its own stream sample —
	// the dominant cost — so runs fan out across the experiment
	// scheduler (the shared global pool under -pipeline) and the
	// accept/violate outcomes are folded back in grid order afterwards.
	type cell struct {
		cfgIdx, holdIdx int
		eta             float64
		mode            validation.Mode
		run             int
	}
	var cells []cell
	for i, cfgIdx := range selected {
		for _, eta := range o.Etas {
			for _, mode := range o.Modes {
				for run := 0; run < o.Runs; run++ {
					cells = append(cells, cell{
						cfgIdx: cfgIdx, holdIdx: i,
						eta: eta, mode: mode, run: run,
					})
				}
			}
		}
	}
	type outcome struct{ accepted, violated bool }
	outcomes := parallel.Map(o.Workers, len(cells), func(i int) outcome {
		c := cells[i]
		cfg := cfgs[c.cfgIdx]
		seed := o.Seed + uint64(c.run)*31 + uint64(c.mode)*7 + uint64(c.eta*1000)
		stream := Dataset(cfg.Task, o.Stream, seed)
		// Hard targets near the frontier: the last (tightest) two of
		// the config's range, alternating per run.
		target := cfg.Targets[len(cfg.Targets)-1-c.run%2]
		dp := c.mode != validation.ModeNPSLA
		pipe := cfg.Build(dp, target, c.mode)
		pipe.Eta = c.eta
		search := adaptive.Search{
			Pipe:       pipe,
			Epsilon0:   cfg.LargeEps / 8,
			EpsilonCap: cfg.LargeEps,
			Delta:      cfg.Delta,
			MinSamples: 5000,
		}
		res, err := search.Run(adaptive.SliceSource{Data: stream}, rng.New(seed))
		if err != nil || res.Decision != validation.Accept {
			return outcome{}
		}
		model := res.Model.(ml.Model)
		return outcome{
			accepted: true,
			violated: violates(cfg.Task, model, holdouts[c.holdIdx], target),
		}
	})

	// Stage 3: fold the per-run outcomes into Table 2 rows, in the same
	// order the sequential nest produced them.
	var rows []Tab2Row
	next := 0
	for _, cfgIdx := range selected {
		for _, eta := range o.Etas {
			row := Tab2Row{
				Task: cfgs[cfgIdx].Task, Eta: eta,
				ViolationRate: make(map[validation.Mode]float64),
				Accepts:       make(map[validation.Mode]int),
			}
			for _, mode := range o.Modes {
				violations, accepts := 0, 0
				for run := 0; run < o.Runs; run++ {
					oc := outcomes[next]
					next++
					if oc.accepted {
						accepts++
						if oc.violated {
							violations++
						}
					}
				}
				row.Accepts[mode] = accepts
				if accepts > 0 {
					row.ViolationRate[mode] = float64(violations) / float64(accepts)
				}
			}
			rows = append(rows, row)
		}
	}
	return rows
}

// violates reports whether the model misses its target on the held-out
// set (MSE above target for Taxi; accuracy below target for Criteo).
func violates(task Task, m ml.Model, holdout *data.Dataset, target float64) bool {
	if task == TaxiRegression {
		return ml.MSE(m, holdout) > target
	}
	return ml.Accuracy(m, holdout) < target
}

// PrintTab2 renders the rows in the paper's Table 2 layout.
func PrintTab2(w io.Writer, rows []Tab2Row) {
	fmt.Fprintln(w, "Table 2. Target violation rate of ACCEPTed models")
	fmt.Fprintf(w, "%-8s %-6s %-10s %-10s %-10s %-10s\n",
		"Dataset", "η", "No SLA", "NP SLA", "UC DP SLA", "Sage SLA")
	modes := []validation.Mode{
		validation.ModeNoSLA, validation.ModeNPSLA,
		validation.ModeUncorrectedDP, validation.ModeSage,
	}
	for _, row := range rows {
		fmt.Fprintf(w, "%-8s %-6.2f", row.Task, row.Eta)
		for _, m := range modes {
			rate, ok := row.ViolationRate[m]
			if !ok || row.Accepts[m] == 0 {
				fmt.Fprintf(w, " %-10s", "n/a")
			} else {
				fmt.Fprintf(w, " %-10.4f", rate)
			}
		}
		fmt.Fprintln(w)
	}
}
