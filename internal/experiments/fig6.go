package experiments

import (
	"fmt"
	"io"
	"math"

	"repro/internal/adaptive"
	"repro/internal/data"
	"repro/internal/parallel"
	"repro/internal/rng"
	"repro/internal/validation"
)

// Fig6Point is one measurement of Fig. 6: the number of samples
// privacy-adaptive training needed before the given validation mode
// ACCEPTed the model at the given quality target.
type Fig6Point struct {
	Task   Task
	Model  string
	Mode   validation.Mode
	Target float64
	// Samples required to ACCEPT; = MaxStream+1 when never accepted
	// within the stream (rendered as "∞" by PrintFig6).
	Samples  int
	Accepted bool
}

// Fig6Options scales the experiment.
type Fig6Options struct {
	// MaxStream bounds the stream a search may consume (paper sweeps
	// to 10M; default 1M).
	MaxStream int
	// MinSamples is the initial window (default 5000).
	MinSamples int
	// Modes to compare (default: all four Table 2 modes).
	Modes []validation.Mode
	// Models filters by "<Task>-<Name>"; empty runs all.
	Models []string
	// Targets overrides each config's target list (useful for benches).
	TargetsPerConfig int // 0 = all targets; k = first k targets
	Seed             uint64
	// Workers bounds the experiment engine's parallelism (<= 0 means
	// runtime.GOMAXPROCS(0)). Output is bit-identical for any value.
	Workers int
}

func (o *Fig6Options) fill() {
	if o.MaxStream == 0 {
		o.MaxStream = 1000000
	}
	if o.MinSamples == 0 {
		o.MinSamples = 5000
	}
	if len(o.Modes) == 0 {
		o.Modes = []validation.Mode{
			validation.ModeNoSLA, validation.ModeNPSLA,
			validation.ModeUncorrectedDP, validation.ModeSage,
		}
	}
	if o.Seed == 0 {
		o.Seed = 2
	}
}

func (o *Fig6Options) wants(name string) bool {
	if len(o.Models) == 0 {
		return true
	}
	for _, m := range o.Models {
		if m == name {
			return true
		}
	}
	return false
}

// fig6Cell is one task of the Fig. 6 grid: a (pipeline, target, mode)
// coordinate plus the shared (read-only) stream it searches over.
type fig6Cell struct {
	cfgIdx int // index into Configs(): the cell's stable identity
	stream *data.Dataset
	target float64
	mode   validation.Mode
}

// Fig6 regenerates the sample-complexity curves of Fig. 6: for each
// pipeline, target, and validation mode, the data required for
// privacy-adaptive training to ACCEPT. The grid is flattened into
// independent cells and enqueued on the experiment scheduler (the shared
// global pool under -pipeline, else a private Workers-bounded one); each
// cell's RNG is derived from its own coordinates, so the output is
// bit-identical for any Workers value and any cross-experiment
// interleaving.
func Fig6(o Fig6Options) []Fig6Point {
	o.fill()

	// Stage 1: one stream per distinct task (several pipelines share a
	// task's data), generated in parallel.
	cfgs := Configs()
	var selected []int
	for i, cfg := range cfgs {
		if o.wants(cfg.Task.String() + "-" + cfg.Name) {
			selected = append(selected, i)
		}
	}
	tasks, taskOf := distinctTasks(cfgs, selected)
	streams := parallel.Map(o.Workers, len(tasks), func(i int) *data.Dataset {
		return Dataset(tasks[i], o.MaxStream, o.Seed)
	})

	// Stage 2: flatten the (pipeline × target × mode) grid in output
	// order and run every cell's adaptive search concurrently.
	var cells []fig6Cell
	for _, cfgIdx := range selected {
		cfg := cfgs[cfgIdx]
		targets := cfg.Targets
		if o.TargetsPerConfig > 0 && o.TargetsPerConfig < len(targets) {
			targets = targets[:o.TargetsPerConfig]
		}
		for _, target := range targets {
			for _, mode := range o.Modes {
				cells = append(cells, fig6Cell{
					cfgIdx: cfgIdx, stream: streams[taskOf[cfg.Task]],
					target: target, mode: mode,
				})
			}
		}
	}
	return parallel.Map(o.Workers, len(cells), func(i int) Fig6Point {
		c := cells[i]
		cfg := cfgs[c.cfgIdx]
		// NP SLA uses the non-private trainer (it measures the cost of
		// statistical rigor alone); the DP modes use the DP trainer.
		dp := c.mode != validation.ModeNPSLA
		pipe := cfg.Build(dp, c.target, c.mode)
		search := adaptive.Search{
			Pipe:       pipe,
			Epsilon0:   cfg.LargeEps / 8,
			EpsilonCap: cfg.LargeEps,
			Delta:      cfg.Delta,
			MinSamples: o.MinSamples,
			MaxSamples: o.MaxStream,
		}
		// The cell seed mixes the cell's own coordinates (not its grid
		// position) so nearby cells get decorrelated streams and a
		// cell's result does not depend on which other cells run.
		r := rng.New(rng.MixSeed(o.Seed, uint64(c.cfgIdx),
			math.Float64bits(c.target), uint64(c.mode)))
		res, err := search.Run(adaptive.SliceSource{Data: c.stream}, r)
		pt := Fig6Point{
			Task: cfg.Task, Model: cfg.Name,
			Mode: c.mode, Target: c.target,
		}
		if err == nil && res.Decision == validation.Accept {
			pt.Samples = res.Samples
			pt.Accepted = true
		} else {
			pt.Samples = o.MaxStream + 1
		}
		return pt
	})
}

// PrintFig6 renders the points as the four panels of Fig. 6.
func PrintFig6(w io.Writer, pts []Fig6Point) {
	fmt.Fprintln(w, "Fig. 6. Samples required to ACCEPT models at quality targets")
	last := ""
	for _, p := range pts {
		panel := fmt.Sprintf("%s %s", p.Task, p.Model)
		if panel != last {
			fmt.Fprintf(w, "-- %s ACCEPT --\n", panel)
			last = panel
		}
		n := fmt.Sprintf("%d", p.Samples)
		if !p.Accepted {
			n = "∞ (not accepted within stream)"
		}
		fmt.Fprintf(w, "%-10s target=%-8.4g samples=%s\n", p.Mode, p.Target, n)
	}
}
