package experiments

import (
	"fmt"
	"io"

	"repro/internal/adaptive"
	"repro/internal/rng"
	"repro/internal/validation"
)

// Fig6Point is one measurement of Fig. 6: the number of samples
// privacy-adaptive training needed before the given validation mode
// ACCEPTed the model at the given quality target.
type Fig6Point struct {
	Task   Task
	Model  string
	Mode   validation.Mode
	Target float64
	// Samples required to ACCEPT; = MaxStream+1 when never accepted
	// within the stream (rendered as "∞" by PrintFig6).
	Samples  int
	Accepted bool
}

// Fig6Options scales the experiment.
type Fig6Options struct {
	// MaxStream bounds the stream a search may consume (paper sweeps
	// to 10M; default 1M).
	MaxStream int
	// MinSamples is the initial window (default 5000).
	MinSamples int
	// Modes to compare (default: all four Table 2 modes).
	Modes []validation.Mode
	// Models filters by "<Task>-<Name>"; empty runs all.
	Models []string
	// Targets overrides each config's target list (useful for benches).
	TargetsPerConfig int // 0 = all targets; k = first k targets
	Seed             uint64
}

func (o *Fig6Options) fill() {
	if o.MaxStream == 0 {
		o.MaxStream = 1000000
	}
	if o.MinSamples == 0 {
		o.MinSamples = 5000
	}
	if len(o.Modes) == 0 {
		o.Modes = []validation.Mode{
			validation.ModeNoSLA, validation.ModeNPSLA,
			validation.ModeUncorrectedDP, validation.ModeSage,
		}
	}
	if o.Seed == 0 {
		o.Seed = 2
	}
}

func (o *Fig6Options) wants(name string) bool {
	if len(o.Models) == 0 {
		return true
	}
	for _, m := range o.Models {
		if m == name {
			return true
		}
	}
	return false
}

// Fig6 regenerates the sample-complexity curves of Fig. 6: for each
// pipeline, target, and validation mode, the data required for
// privacy-adaptive training to ACCEPT.
func Fig6(o Fig6Options) []Fig6Point {
	o.fill()
	var out []Fig6Point
	for _, cfg := range Configs() {
		name := cfg.Task.String() + "-" + cfg.Name
		if !o.wants(name) {
			continue
		}
		stream := Dataset(cfg.Task, o.MaxStream, o.Seed)
		targets := cfg.Targets
		if o.TargetsPerConfig > 0 && o.TargetsPerConfig < len(targets) {
			targets = targets[:o.TargetsPerConfig]
		}
		for _, target := range targets {
			for _, mode := range o.Modes {
				// NP SLA uses the non-private trainer (it measures the
				// cost of statistical rigor alone); the DP modes use
				// the DP trainer.
				dp := mode != validation.ModeNPSLA
				pipe := cfg.Build(dp, target, mode)
				search := adaptive.Search{
					Pipe:       pipe,
					Epsilon0:   cfg.LargeEps / 8,
					EpsilonCap: cfg.LargeEps,
					Delta:      cfg.Delta,
					MinSamples: o.MinSamples,
					MaxSamples: o.MaxStream,
				}
				res, err := search.Run(adaptive.SliceSource{Data: stream},
					rng.New(o.Seed+uint64(mode)+uint64(target*1e6)))
				pt := Fig6Point{
					Task: cfg.Task, Model: cfg.Name,
					Mode: mode, Target: target,
				}
				if err == nil && res.Decision == validation.Accept {
					pt.Samples = res.Samples
					pt.Accepted = true
				} else {
					pt.Samples = o.MaxStream + 1
				}
				out = append(out, pt)
			}
		}
	}
	return out
}

// PrintFig6 renders the points as the four panels of Fig. 6.
func PrintFig6(w io.Writer, pts []Fig6Point) {
	fmt.Fprintln(w, "Fig. 6. Samples required to ACCEPT models at quality targets")
	last := ""
	for _, p := range pts {
		panel := fmt.Sprintf("%s %s", p.Task, p.Model)
		if panel != last {
			fmt.Fprintf(w, "-- %s ACCEPT --\n", panel)
			last = panel
		}
		n := fmt.Sprintf("%d", p.Samples)
		if !p.Accepted {
			n = "∞ (not accepted within stream)"
		}
		fmt.Fprintf(w, "%-10s target=%-8.4g samples=%s\n", p.Mode, p.Target, n)
	}
}
