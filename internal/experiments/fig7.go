package experiments

import (
	"fmt"
	"io"
	"math"

	"repro/internal/data"
	"repro/internal/linalg"
	"repro/internal/ml"
	"repro/internal/parallel"
	"repro/internal/privacy"
	"repro/internal/rng"
	"repro/internal/validation"
)

// Cell-seed domain tags: each Fig. 7 sub-grid mixes a distinct tag into
// rng.MixSeed so no two panels can ever share a noise stream.
const (
	fig7DomainLRQuality = 1 + iota
	fig7DomainNNQuality
	fig7DomainAcceptTrain
	fig7DomainAcceptProbe
)

// Fig. 7 compares Sage's block composition — one noise draw over the
// combined training set — against query-level accounting, where the
// dataset is partitioned into fixed-size blocks, each block is queried
// with its own DP noise, and the results are aggregated (model averaging
// for training, noisy-sum aggregation for validation). The paper's
// block sizes are 100K/500K/5M on a 37M-sample stream; ours scale down
// with the synthetic stream (DESIGN.md documents the substitution).

// Fig7QualityPoint is one training-quality measurement (Fig. 7a/7c).
type Fig7QualityPoint struct {
	Model     string // "LR" or "NN"
	Mode      string // "Block Comp." or "Query Comp. <size>"
	N         int
	MSE       float64
	BlockSize int // 0 for block composition
}

// Fig7AcceptPoint is one validation sample-complexity measurement
// (Fig. 7b/7d).
type Fig7AcceptPoint struct {
	Model     string
	Mode      string
	Target    float64
	Samples   int // MaxStream+1 if never accepted
	Accepted  bool
	BlockSize int
}

// Fig7Options scales the experiment.
type Fig7Options struct {
	// Sizes is the training-size grid (default 10K…1M).
	Sizes []int
	// LRBlockSizes are the query-composition block sizes for the LR
	// (default 25K, 100K — scaled from the paper's 100K/500K).
	LRBlockSizes []int
	// NNBlockSize for the NN panel (default 200K, scaled from 5M).
	NNBlockSize int
	// Targets for the ACCEPT panels (default: LR config targets).
	Targets []float64
	// MaxStream bounds the ACCEPT search (default 1M).
	MaxStream int
	// Holdout evaluation size (default 50K).
	Holdout int
	// SkipNN drops the (expensive) NN panel.
	SkipNN bool
	Seed   uint64
	// Workers bounds the experiment engine's parallelism (<= 0 means
	// runtime.GOMAXPROCS(0)). Output is bit-identical for any value.
	Workers int
}

func (o *Fig7Options) fill() {
	if len(o.Sizes) == 0 {
		o.Sizes = []int{10000, 30000, 100000, 300000, 1000000}
	}
	if len(o.LRBlockSizes) == 0 {
		o.LRBlockSizes = []int{25000, 100000}
	}
	if o.NNBlockSize == 0 {
		o.NNBlockSize = 200000
	}
	if len(o.Targets) == 0 {
		o.Targets = Configs()[0].Targets
	}
	if o.MaxStream == 0 {
		o.MaxStream = 1000000
	}
	if o.Holdout == 0 {
		o.Holdout = 50000
	}
	if o.Seed == 0 {
		o.Seed = 4
	}
}

// trainLRBlockwise trains AdaSSP per block and averages the weights —
// the federated-style aggregation the paper describes for query-level
// accounting.
func trainLRBlockwise(ds *data.Dataset, blockSize int, eps, delta float64, r *rng.RNG) ml.Model {
	cfg := ml.AdaSSPConfig{
		Budget:       privacy.Budget{Epsilon: eps, Delta: delta},
		Rho:          0.1,
		FeatureBound: 2.5,
		LabelBound:   1,
	}
	var avg *ml.LinearModel
	count := 0
	for lo := 0; lo < ds.Len(); lo += blockSize {
		hi := lo + blockSize
		if hi > ds.Len() {
			hi = ds.Len()
		}
		if hi-lo < blockSize/2 && count > 0 {
			break // drop a tiny trailing shard
		}
		block := &data.Dataset{Examples: ds.Examples[lo:hi]}
		m := ml.TrainAdaSSP(block, cfg, r)
		if avg == nil {
			avg = &ml.LinearModel{Weights: make([]float64, len(m.Weights))}
		}
		linalg.AXPY(1, m.Weights, avg.Weights)
		avg.Bias += m.Bias
		count++
	}
	if avg == nil {
		return &ml.LinearModel{Weights: make([]float64, ds.FeatureDim())}
	}
	linalg.Scale(1/float64(count), avg.Weights)
	avg.Bias /= float64(count)
	return avg
}

// trainNNBlockwise trains an MLP per block with DP-SGD (same init) and
// averages the parameters.
func trainNNBlockwise(ds *data.Dataset, blockSize int, eps, delta float64, dim int, seed uint64, r *rng.RNG) ml.Model {
	var avg []float64
	var ref *ml.MLP
	count := 0
	for lo := 0; lo < ds.Len(); lo += blockSize {
		hi := lo + blockSize
		if hi > ds.Len() {
			hi = ds.Len()
		}
		if hi-lo < blockSize/2 && count > 0 {
			break
		}
		block := &data.Dataset{Examples: ds.Examples[lo:hi]}
		m := ml.NewMLP(ml.Regression, dim, taxiHidden, rng.New(seed))
		ml.TrainSGD(m, block, ml.SGDConfig{
			LearningRate: 0.01, Momentum: 0.9, Epochs: 3, BatchSize: 1024,
			DP: true, ClipNorm: 1,
			Budget: privacy.Budget{Epsilon: eps, Delta: delta},
		}, r)
		if avg == nil {
			avg = make([]float64, len(m.Params()))
			ref = m
		}
		linalg.AXPY(1, m.Params(), avg)
		count++
	}
	if ref == nil {
		return ml.NewMLP(ml.Regression, dim, taxiHidden, rng.New(seed))
	}
	linalg.Scale(1/float64(count), avg)
	copy(ref.Params(), avg)
	return ref
}

// Fig7Quality regenerates the training-quality panels (7a, 7c). The
// (size × composition-mode) grid is flattened and enqueued on the
// experiment scheduler (shared global pool when installed); cell seeds
// mix the cell's own coordinates through splitmix64, so neighboring
// cells get decorrelated noise streams and the output is bit-identical
// for any Workers value and any cross-experiment interleaving.
func Fig7Quality(o Fig7Options) []Fig7QualityPoint {
	o.fill()
	maxN := o.Sizes[len(o.Sizes)-1]
	var stream, holdout *data.Dataset
	parallel.ForEach(o.Workers, 2, func(i int) {
		if i == 0 {
			stream = Dataset(TaxiRegression, maxN, o.Seed)
		} else {
			holdout = Dataset(TaxiRegression, o.Holdout, o.Seed+1)
		}
	})
	const eps, delta = 1.0, 1e-6

	// One cell per point, in output order: the LR panel (block + each
	// query block size, per training size), then the NN panel.
	type cell struct {
		model string
		n, bs int // bs = 0 for block composition
	}
	var cells []cell
	for _, n := range o.Sizes {
		cells = append(cells, cell{model: "LR", n: n})
		for _, bs := range o.LRBlockSizes {
			cells = append(cells, cell{model: "LR", n: n, bs: bs})
		}
	}
	if !o.SkipNN {
		for _, n := range o.Sizes {
			cells = append(cells, cell{model: "NN", n: n})
			cells = append(cells, cell{model: "NN", n: n, bs: o.NNBlockSize})
		}
	}
	// The NN cells (DP-SGD over up to maxN rows) are the most expensive
	// cells in the whole suite — hundreds of milliseconds against the
	// default batch's ~1 — so under a shared pool this grid must start
	// draining ahead of the cheap sweeps or it becomes the -exp all tail.
	weight := 20.0
	if !o.SkipNN {
		weight = 400
	}
	return parallel.MapWeighted(o.Workers, len(cells), weight, func(i int) Fig7QualityPoint {
		c := cells[i]
		train := stream.Head(c.n)
		if c.model == "LR" {
			r := rng.New(rng.MixSeed(o.Seed, fig7DomainLRQuality, uint64(c.n), uint64(c.bs)))
			var m ml.Model
			if c.bs == 0 {
				// Block composition: one AdaSSP run over the whole set.
				m = ml.TrainAdaSSP(train, ml.AdaSSPConfig{
					Budget: privacy.Budget{Epsilon: eps, Delta: delta},
					Rho:    0.1, FeatureBound: 2.5, LabelBound: 1,
				}, r)
				return Fig7QualityPoint{
					Model: "LR", Mode: "Block Comp.", N: c.n, MSE: ml.MSE(m, holdout),
				}
			}
			qm := trainLRBlockwise(train, c.bs, eps, delta, r)
			return Fig7QualityPoint{
				Model: "LR", Mode: fmt.Sprintf("Query Comp. %s", human(c.bs)),
				N: c.n, MSE: ml.MSE(qm, holdout), BlockSize: c.bs,
			}
		}
		// NN panel: same init seed across cells (the paper compares
		// aggregation, not initialization), per-cell training streams.
		r := rng.New(rng.MixSeed(o.Seed, fig7DomainNNQuality, uint64(c.n), uint64(c.bs)))
		if c.bs == 0 {
			nn := ml.NewMLP(ml.Regression, stream.FeatureDim(), taxiHidden, rng.New(o.Seed+7))
			ml.TrainSGD(nn, train, ml.SGDConfig{
				LearningRate: 0.01, Momentum: 0.9, Epochs: 3, BatchSize: 1024,
				DP: true, ClipNorm: 1,
				Budget: privacy.Budget{Epsilon: eps, Delta: delta},
			}, r)
			return Fig7QualityPoint{
				Model: "NN", Mode: "Block Comp.", N: c.n, MSE: ml.MSE(nn, holdout),
			}
		}
		qm := trainNNBlockwise(train, c.bs, eps, delta, stream.FeatureDim(), o.Seed+7, r)
		return Fig7QualityPoint{
			Model: "NN", Mode: fmt.Sprintf("Query Comp. %s", human(c.bs)),
			N: c.n, MSE: ml.MSE(qm, holdout), BlockSize: c.bs,
		}
	})
}

// queryCompAccept reports whether a query-composition SLAed validation
// at the given target would ACCEPT with n test samples split into
// blocks of size bs: every block contributes its own noisy loss sum and
// count, so the DP corrections and the noise all scale with the number
// of blocks (union bound over per-block tail events).
func queryCompAccept(trueLoss float64, n, bs int, target, epsilon, eta float64, r *rng.RNG) bool {
	nBlocks := (n + bs - 1) / bs
	if nBlocks < 1 {
		nBlocks = 1
	}
	countMech := privacy.LaplaceMechanism{Sensitivity: 1, Epsilon: epsilon / 2}
	sumMech := privacy.LaplaceMechanism{Sensitivity: 1, Epsilon: epsilon / 2}
	etaShare := eta / 3 / float64(nBlocks) // union bound across blocks
	noisyN, noisySum := 0.0, 0.0
	for b := 0; b < nBlocks; b++ {
		sz := bs
		if b == nBlocks-1 {
			sz = n - bs*(nBlocks-1)
		}
		noisyN += countMech.Release(float64(sz), r)
		noisySum += sumMech.Release(trueLoss*float64(sz), r)
	}
	noisyN -= float64(nBlocks) * countMech.TailBound(etaShare)
	noisySum += float64(nBlocks) * sumMech.TailBound(etaShare)
	if noisyN <= 1 {
		return false
	}
	mean := noisySum / noisyN
	if mean < 0 {
		mean = 0
	}
	return validation.BernsteinUpperBound(mean, noisyN, eta/3, 1) <= target
}

// Fig7Accept regenerates the validation sample-complexity panels
// (7b, 7d): the test-set size required to ACCEPT at each target, for
// block composition (one noise draw) vs query composition (per-block
// noise). The model's true loss is measured once per training size from
// the block-composition LR of Fig7Quality.
func Fig7Accept(o Fig7Options) []Fig7AcceptPoint {
	o.fill()
	const eps, eta = 0.5, 0.05
	var stream, holdout *data.Dataset
	parallel.ForEach(o.Workers, 2, func(i int) {
		if i == 0 {
			stream = Dataset(TaxiRegression, o.MaxStream, o.Seed+5)
		} else {
			holdout = Dataset(TaxiRegression, o.Holdout, o.Seed+6)
		}
	})
	// Train the best affordable LR once on the full stream to get the
	// loss profile being validated.
	m := ml.TrainAdaSSP(stream, ml.AdaSSPConfig{
		Budget: privacy.Budget{Epsilon: 0.5, Delta: 1e-6},
		Rho:    0.1, FeatureBound: 2.5, LabelBound: 1,
	}, rng.New(rng.MixSeed(o.Seed, fig7DomainAcceptTrain)))
	trueLoss := ml.MSE(m, holdout)

	modes := []struct {
		name string
		bs   int // 0 = combined (block composition)
	}{{"Block Comp.", 0}}
	for _, bs := range o.LRBlockSizes {
		modes = append(modes, struct {
			name string
			bs   int
		}{fmt.Sprintf("Query Comp. %s", human(bs)), bs})
	}

	// One cell per (target, composition mode); each cell's doubling
	// search draws per-probe noise seeded by its own coordinates.
	type cell struct {
		target float64
		mode   int
	}
	var cells []cell
	for _, target := range o.Targets {
		for mi := range modes {
			cells = append(cells, cell{target: target, mode: mi})
		}
	}
	return parallel.Map(o.Workers, len(cells), func(i int) Fig7AcceptPoint {
		c := cells[i]
		mode := modes[c.mode]
		accepted := false
		samples := o.MaxStream + 1
		for n := 10000; n <= o.MaxStream; n *= 2 {
			r := rng.New(rng.MixSeed(o.Seed, fig7DomainAcceptProbe,
				math.Float64bits(c.target), uint64(n), uint64(mode.bs)))
			bs := mode.bs
			if bs == 0 {
				bs = n // block composition: the test set is one block
			}
			if queryCompAccept(trueLoss, n, bs, c.target, eps, eta, r) {
				accepted = true
				samples = n
				break
			}
		}
		return Fig7AcceptPoint{
			Model: "LR", Mode: mode.name, Target: c.target,
			Samples: samples, Accepted: accepted, BlockSize: mode.bs,
		}
	})
}

// human formats sample counts like the paper's axis labels.
func human(n int) string {
	switch {
	case n >= 1000000 && n%1000000 == 0:
		return fmt.Sprintf("%dM", n/1000000)
	case n >= 1000:
		return fmt.Sprintf("%dK", int(math.Round(float64(n)/1000)))
	default:
		return fmt.Sprintf("%d", n)
	}
}

// PrintFig7 renders both panel groups.
func PrintFig7(w io.Writer, quality []Fig7QualityPoint, accepts []Fig7AcceptPoint) {
	fmt.Fprintln(w, "Fig. 7. Block-level vs query-level accounting")
	last := ""
	for _, p := range quality {
		panel := "Taxi " + p.Model + " MSE"
		if panel != last {
			fmt.Fprintf(w, "-- %s --\n", panel)
			last = panel
		}
		fmt.Fprintf(w, "%-22s n=%-8d mse=%.6f\n", p.Mode, p.N, p.MSE)
	}
	fmt.Fprintln(w, "-- Taxi LR ACCEPT sample size --")
	for _, p := range accepts {
		n := fmt.Sprintf("%d", p.Samples)
		if !p.Accepted {
			n = "∞"
		}
		fmt.Fprintf(w, "%-22s target=%-8.4g samples=%s\n", p.Mode, p.Target, n)
	}
}
