package experiments

import (
	"fmt"
	"io"
	"math"

	"repro/internal/data"
	"repro/internal/linalg"
	"repro/internal/ml"
	"repro/internal/privacy"
	"repro/internal/rng"
	"repro/internal/validation"
)

// Fig. 7 compares Sage's block composition — one noise draw over the
// combined training set — against query-level accounting, where the
// dataset is partitioned into fixed-size blocks, each block is queried
// with its own DP noise, and the results are aggregated (model averaging
// for training, noisy-sum aggregation for validation). The paper's
// block sizes are 100K/500K/5M on a 37M-sample stream; ours scale down
// with the synthetic stream (DESIGN.md documents the substitution).

// Fig7QualityPoint is one training-quality measurement (Fig. 7a/7c).
type Fig7QualityPoint struct {
	Model     string // "LR" or "NN"
	Mode      string // "Block Comp." or "Query Comp. <size>"
	N         int
	MSE       float64
	BlockSize int // 0 for block composition
}

// Fig7AcceptPoint is one validation sample-complexity measurement
// (Fig. 7b/7d).
type Fig7AcceptPoint struct {
	Model     string
	Mode      string
	Target    float64
	Samples   int // MaxStream+1 if never accepted
	Accepted  bool
	BlockSize int
}

// Fig7Options scales the experiment.
type Fig7Options struct {
	// Sizes is the training-size grid (default 10K…1M).
	Sizes []int
	// LRBlockSizes are the query-composition block sizes for the LR
	// (default 25K, 100K — scaled from the paper's 100K/500K).
	LRBlockSizes []int
	// NNBlockSize for the NN panel (default 200K, scaled from 5M).
	NNBlockSize int
	// Targets for the ACCEPT panels (default: LR config targets).
	Targets []float64
	// MaxStream bounds the ACCEPT search (default 1M).
	MaxStream int
	// Holdout evaluation size (default 50K).
	Holdout int
	// SkipNN drops the (expensive) NN panel.
	SkipNN bool
	Seed   uint64
}

func (o *Fig7Options) fill() {
	if len(o.Sizes) == 0 {
		o.Sizes = []int{10000, 30000, 100000, 300000, 1000000}
	}
	if len(o.LRBlockSizes) == 0 {
		o.LRBlockSizes = []int{25000, 100000}
	}
	if o.NNBlockSize == 0 {
		o.NNBlockSize = 200000
	}
	if len(o.Targets) == 0 {
		o.Targets = Configs()[0].Targets
	}
	if o.MaxStream == 0 {
		o.MaxStream = 1000000
	}
	if o.Holdout == 0 {
		o.Holdout = 50000
	}
	if o.Seed == 0 {
		o.Seed = 4
	}
}

// trainLRBlockwise trains AdaSSP per block and averages the weights —
// the federated-style aggregation the paper describes for query-level
// accounting.
func trainLRBlockwise(ds *data.Dataset, blockSize int, eps, delta float64, r *rng.RNG) ml.Model {
	cfg := ml.AdaSSPConfig{
		Budget:       privacy.Budget{Epsilon: eps, Delta: delta},
		Rho:          0.1,
		FeatureBound: 2.5,
		LabelBound:   1,
	}
	var avg *ml.LinearModel
	count := 0
	for lo := 0; lo < ds.Len(); lo += blockSize {
		hi := lo + blockSize
		if hi > ds.Len() {
			hi = ds.Len()
		}
		if hi-lo < blockSize/2 && count > 0 {
			break // drop a tiny trailing shard
		}
		block := &data.Dataset{Examples: ds.Examples[lo:hi]}
		m := ml.TrainAdaSSP(block, cfg, r)
		if avg == nil {
			avg = &ml.LinearModel{Weights: make([]float64, len(m.Weights))}
		}
		linalg.AXPY(1, m.Weights, avg.Weights)
		avg.Bias += m.Bias
		count++
	}
	if avg == nil {
		return &ml.LinearModel{Weights: make([]float64, ds.FeatureDim())}
	}
	linalg.Scale(1/float64(count), avg.Weights)
	avg.Bias /= float64(count)
	return avg
}

// trainNNBlockwise trains an MLP per block with DP-SGD (same init) and
// averages the parameters.
func trainNNBlockwise(ds *data.Dataset, blockSize int, eps, delta float64, dim int, seed uint64, r *rng.RNG) ml.Model {
	var avg []float64
	var ref *ml.MLP
	count := 0
	for lo := 0; lo < ds.Len(); lo += blockSize {
		hi := lo + blockSize
		if hi > ds.Len() {
			hi = ds.Len()
		}
		if hi-lo < blockSize/2 && count > 0 {
			break
		}
		block := &data.Dataset{Examples: ds.Examples[lo:hi]}
		m := ml.NewMLP(ml.Regression, dim, taxiHidden, rng.New(seed))
		ml.TrainSGD(m, block, ml.SGDConfig{
			LearningRate: 0.01, Momentum: 0.9, Epochs: 3, BatchSize: 1024,
			DP: true, ClipNorm: 1,
			Budget: privacy.Budget{Epsilon: eps, Delta: delta},
		}, r)
		if avg == nil {
			avg = make([]float64, len(m.Params()))
			ref = m
		}
		linalg.AXPY(1, m.Params(), avg)
		count++
	}
	if ref == nil {
		return ml.NewMLP(ml.Regression, dim, taxiHidden, rng.New(seed))
	}
	linalg.Scale(1/float64(count), avg)
	copy(ref.Params(), avg)
	return ref
}

// Fig7Quality regenerates the training-quality panels (7a, 7c).
func Fig7Quality(o Fig7Options) []Fig7QualityPoint {
	o.fill()
	maxN := o.Sizes[len(o.Sizes)-1]
	stream := Dataset(TaxiRegression, maxN, o.Seed)
	holdout := Dataset(TaxiRegression, o.Holdout, o.Seed+1)
	const eps, delta = 1.0, 1e-6
	var out []Fig7QualityPoint

	for _, n := range o.Sizes {
		train := stream.Head(n)
		r := rng.New(o.Seed + uint64(n))
		// LR, block composition: one AdaSSP run over the whole set.
		m := ml.TrainAdaSSP(train, ml.AdaSSPConfig{
			Budget: privacy.Budget{Epsilon: eps, Delta: delta},
			Rho:    0.1, FeatureBound: 2.5, LabelBound: 1,
		}, r)
		out = append(out, Fig7QualityPoint{
			Model: "LR", Mode: "Block Comp.", N: n, MSE: ml.MSE(m, holdout),
		})
		// LR, query composition at each block size.
		for _, bs := range o.LRBlockSizes {
			qm := trainLRBlockwise(train, bs, eps, delta, rng.New(o.Seed+uint64(n+bs)))
			out = append(out, Fig7QualityPoint{
				Model: "LR", Mode: fmt.Sprintf("Query Comp. %s", human(bs)),
				N: n, MSE: ml.MSE(qm, holdout), BlockSize: bs,
			})
		}
	}
	if !o.SkipNN {
		for _, n := range o.Sizes {
			train := stream.Head(n)
			nn := ml.NewMLP(ml.Regression, stream.FeatureDim(), taxiHidden, rng.New(o.Seed+7))
			ml.TrainSGD(nn, train, ml.SGDConfig{
				LearningRate: 0.01, Momentum: 0.9, Epochs: 3, BatchSize: 1024,
				DP: true, ClipNorm: 1,
				Budget: privacy.Budget{Epsilon: eps, Delta: delta},
			}, rng.New(o.Seed+uint64(n)+3))
			out = append(out, Fig7QualityPoint{
				Model: "NN", Mode: "Block Comp.", N: n, MSE: ml.MSE(nn, holdout),
			})
			qm := trainNNBlockwise(train, o.NNBlockSize, eps, delta,
				stream.FeatureDim(), o.Seed+7, rng.New(o.Seed+uint64(n)+4))
			out = append(out, Fig7QualityPoint{
				Model: "NN", Mode: fmt.Sprintf("Query Comp. %s", human(o.NNBlockSize)),
				N: n, MSE: ml.MSE(qm, holdout), BlockSize: o.NNBlockSize,
			})
		}
	}
	return out
}

// queryCompAccept reports whether a query-composition SLAed validation
// at the given target would ACCEPT with n test samples split into
// blocks of size bs: every block contributes its own noisy loss sum and
// count, so the DP corrections and the noise all scale with the number
// of blocks (union bound over per-block tail events).
func queryCompAccept(trueLoss float64, n, bs int, target, epsilon, eta float64, r *rng.RNG) bool {
	nBlocks := (n + bs - 1) / bs
	if nBlocks < 1 {
		nBlocks = 1
	}
	countMech := privacy.LaplaceMechanism{Sensitivity: 1, Epsilon: epsilon / 2}
	sumMech := privacy.LaplaceMechanism{Sensitivity: 1, Epsilon: epsilon / 2}
	etaShare := eta / 3 / float64(nBlocks) // union bound across blocks
	noisyN, noisySum := 0.0, 0.0
	for b := 0; b < nBlocks; b++ {
		sz := bs
		if b == nBlocks-1 {
			sz = n - bs*(nBlocks-1)
		}
		noisyN += countMech.Release(float64(sz), r)
		noisySum += sumMech.Release(trueLoss*float64(sz), r)
	}
	noisyN -= float64(nBlocks) * countMech.TailBound(etaShare)
	noisySum += float64(nBlocks) * sumMech.TailBound(etaShare)
	if noisyN <= 1 {
		return false
	}
	mean := noisySum / noisyN
	if mean < 0 {
		mean = 0
	}
	return validation.BernsteinUpperBound(mean, noisyN, eta/3, 1) <= target
}

// Fig7Accept regenerates the validation sample-complexity panels
// (7b, 7d): the test-set size required to ACCEPT at each target, for
// block composition (one noise draw) vs query composition (per-block
// noise). The model's true loss is measured once per training size from
// the block-composition LR of Fig7Quality.
func Fig7Accept(o Fig7Options) []Fig7AcceptPoint {
	o.fill()
	const eps, eta = 0.5, 0.05
	var out []Fig7AcceptPoint
	stream := Dataset(TaxiRegression, o.MaxStream, o.Seed+5)
	holdout := Dataset(TaxiRegression, o.Holdout, o.Seed+6)
	// Train the best affordable LR once on the full stream to get the
	// loss profile being validated.
	m := ml.TrainAdaSSP(stream, ml.AdaSSPConfig{
		Budget: privacy.Budget{Epsilon: 0.5, Delta: 1e-6},
		Rho:    0.1, FeatureBound: 2.5, LabelBound: 1,
	}, rng.New(o.Seed+8))
	trueLoss := ml.MSE(m, holdout)

	modes := []struct {
		name string
		bs   int // 0 = combined (block composition)
	}{{"Block Comp.", 0}}
	for _, bs := range o.LRBlockSizes {
		modes = append(modes, struct {
			name string
			bs   int
		}{fmt.Sprintf("Query Comp. %s", human(bs)), bs})
	}

	for _, target := range o.Targets {
		for _, mode := range modes {
			accepted := false
			samples := o.MaxStream + 1
			for n := 10000; n <= o.MaxStream; n *= 2 {
				r := rng.New(o.Seed + uint64(n) + uint64(mode.bs))
				var ok bool
				if mode.bs == 0 {
					ok = queryCompAccept(trueLoss, n, n, target, eps, eta, r)
				} else {
					ok = queryCompAccept(trueLoss, n, mode.bs, target, eps, eta, r)
				}
				if ok {
					accepted = true
					samples = n
					break
				}
			}
			out = append(out, Fig7AcceptPoint{
				Model: "LR", Mode: mode.name, Target: target,
				Samples: samples, Accepted: accepted, BlockSize: mode.bs,
			})
		}
	}
	return out
}

// human formats sample counts like the paper's axis labels.
func human(n int) string {
	switch {
	case n >= 1000000 && n%1000000 == 0:
		return fmt.Sprintf("%dM", n/1000000)
	case n >= 1000:
		return fmt.Sprintf("%dK", int(math.Round(float64(n)/1000)))
	default:
		return fmt.Sprintf("%d", n)
	}
}

// PrintFig7 renders both panel groups.
func PrintFig7(w io.Writer, quality []Fig7QualityPoint, accepts []Fig7AcceptPoint) {
	fmt.Fprintln(w, "Fig. 7. Block-level vs query-level accounting")
	last := ""
	for _, p := range quality {
		panel := "Taxi " + p.Model + " MSE"
		if panel != last {
			fmt.Fprintf(w, "-- %s --\n", panel)
			last = panel
		}
		fmt.Fprintf(w, "%-22s n=%-8d mse=%.6f\n", p.Mode, p.N, p.MSE)
	}
	fmt.Fprintln(w, "-- Taxi LR ACCEPT sample size --")
	for _, p := range accepts {
		n := fmt.Sprintf("%d", p.Samples)
		if !p.Accepted {
			n = "∞"
		}
		fmt.Fprintf(w, "%-22s target=%-8.4g samples=%s\n", p.Mode, p.Target, n)
	}
}
