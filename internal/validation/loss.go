package validation

import (
	"repro/internal/privacy"
	"repro/internal/rng"
)

// LossValidator is the SLAed validator for loss metrics (MSE, log loss,
// negative log likelihood) of §3.3 / Appendix B.1. ACCEPT guarantees,
// with probability ≥ 1−η, that the model's expected loss on the data
// distribution is at most Target; REJECT guarantees that no model in the
// class can reach Target.
type LossValidator struct {
	Config
	// Target is the loss the model must not exceed (τ_loss).
	Target float64
	// B bounds the per-example loss range [0, B]; losses are clipped.
	B float64
}

// lossStats aggregates clipped per-example losses. The clamp is inlined
// and streamed over the caller's slice — no clipped working copy is
// allocated, since ACCEPT runs once per validation round over up to
// millions of losses.
func (v LossValidator) lossStats(losses []float64) (sum float64, n float64) {
	b := v.B
	for _, l := range losses {
		if l < 0 {
			l = 0
		} else if l > b {
			l = b
		}
		sum += l
	}
	return sum, float64(len(losses))
}

// Accept runs the ACCEPT test (Listing 2, lines 9-21) on the
// per-example losses of the DP-trained model over the *test* set. The
// test itself is (ε, 0)-DP: ε/2 for the count, ε/2 for the loss sum.
func (v LossValidator) Accept(testLosses []float64, r *rng.RNG) bool {
	v.Config.validate()
	if v.B <= 0 {
		panic("validation: LossValidator requires B > 0")
	}
	eta := v.Eta / 2 // half the failure budget for ACCEPT, half for REJECT
	sum, n := v.lossStats(testLosses)

	if v.Mode.isDP() {
		countMech := privacy.LaplaceMechanism{Sensitivity: 1, Epsilon: v.Epsilon / 2}
		sumMech := privacy.LaplaceMechanism{Sensitivity: v.B, Epsilon: v.Epsilon / 2}
		n = countMech.Release(n, r)
		sum = sumMech.Release(sum, r)
		if v.Mode.corrects() {
			// Worst-case noise impact at confidence 1−η/3 each:
			// push n down and the loss sum up (Listing 2 lines
			// 12-18 use ln(3/(2η)) for the two-sided Laplace tail
			// at level 2η/3... we use the per-estimate η/3 tail).
			n -= countMech.TailBound(eta / 3)
			sum += sumMech.TailBound(eta / 3)
		}
	}
	if n <= 1 {
		return false
	}
	mean := sum / n
	if mean < 0 {
		mean = 0
	}

	if v.Mode == ModeNoSLA {
		// Vanilla TFX: point comparison, no confidence bound.
		return mean <= v.Target
	}
	ub := BernsteinUpperBound(mean, n, eta/3, v.B)
	return ub <= v.Target
}

// Reject runs the REJECT test (Appendix B.1) given the per-example
// *training* losses of the best empirical model fˆ in the class (the
// ERM; computable for convex classes, unavailable for NNs — pass nil to
// skip). It is (ε, 0)-DP: releasing Ltr(fˆ) has sensitivity B because
// the ERM's training loss moves by at most B when one point changes.
func (v LossValidator) Reject(bestTrainLosses []float64, r *rng.RNG) bool {
	if len(bestTrainLosses) == 0 {
		return false
	}
	v.Config.validate()
	if v.Mode == ModeNoSLA {
		return false // vanilla validation never proves impossibility
	}
	eta := v.Eta / 2
	sum, n := v.lossStats(bestTrainLosses)

	if v.Mode.isDP() {
		countMech := privacy.LaplaceMechanism{Sensitivity: 1, Epsilon: v.Epsilon / 2}
		sumMech := privacy.LaplaceMechanism{Sensitivity: v.B, Epsilon: v.Epsilon / 2}
		n = countMech.Release(n, r)
		sum = sumMech.Release(sum, r)
		if v.Mode.corrects() {
			// Lower-bound the best loss: push the sum down and n up.
			n += countMech.TailBound(eta / 3)
			sum -= sumMech.TailBound(eta / 3)
		}
	}
	if n <= 1 {
		return false
	}
	lower := sum/n - HoeffdingDeviation(n, eta/3, v.B)
	return lower > v.Target
}

// Validate runs ACCEPT then REJECT and returns the decision. Both tests
// run on disjoint data (test vs train split), so the total privacy cost
// is Cost() for each test that actually consumed budget; use
// ValidationCost to account for it.
func (v LossValidator) Validate(testLosses, bestTrainLosses []float64, r *rng.RNG) Decision {
	if v.Accept(testLosses, r) {
		return Accept
	}
	if v.Reject(bestTrainLosses, r) {
		return Reject
	}
	return Retry
}
