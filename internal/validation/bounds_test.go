package validation

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestBernsteinUpperBound(t *testing.T) {
	// Bound must exceed the empirical loss and shrink with n.
	l := 0.1
	b1 := BernsteinUpperBound(l, 100, 0.05, 1)
	b2 := BernsteinUpperBound(l, 10000, 0.05, 1)
	if b1 <= l || b2 <= l {
		t.Error("upper bound should exceed empirical loss")
	}
	if b2 >= b1 {
		t.Errorf("bound should shrink with n: %v vs %v", b2, b1)
	}
	if !math.IsInf(BernsteinUpperBound(l, 0, 0.05, 1), 1) {
		t.Error("n=0 should give +Inf")
	}
}

func TestBernsteinCoverage(t *testing.T) {
	// Empirical check of the concentration guarantee: the bound on the
	// mean of Bernoulli(0.2) losses fails with probability ≪ η.
	const (
		p   = 0.2
		n   = 2000
		eta = 0.05
	)
	r := rng.New(1)
	failures := 0
	const reps = 2000
	for rep := 0; rep < reps; rep++ {
		sum := 0.0
		for i := 0; i < n; i++ {
			if r.Bool(p) {
				sum++
			}
		}
		if BernsteinUpperBound(sum/n, n, eta, 1) < p {
			failures++
		}
	}
	if frac := float64(failures) / reps; frac > eta {
		t.Errorf("Bernstein bound failed %v of the time, allowed %v", frac, eta)
	}
}

func TestEmpiricalBernsteinTighterForLowVariance(t *testing.T) {
	// With near-zero variance the empirical-Bernstein bound beats the
	// variance-free Bernstein bound at the same confidence.
	mean, variance, n, eta, b := 0.5, 1e-6, 1000.0, 0.05, 1.0
	eb := EmpiricalBernsteinUpperBound(mean, variance, n, eta, b)
	std := BernsteinUpperBound(mean, n, eta, b)
	if eb >= std {
		t.Errorf("empirical Bernstein %v not tighter than Bernstein %v", eb, std)
	}
	if eb <= mean {
		t.Error("bound must exceed the mean")
	}
	if !math.IsInf(EmpiricalBernsteinUpperBound(mean, variance, 1, eta, b), 1) {
		t.Error("n=1 should give +Inf")
	}
}

func TestHoeffdingDeviation(t *testing.T) {
	d1 := HoeffdingDeviation(100, 0.05, 1)
	d2 := HoeffdingDeviation(10000, 0.05, 1)
	if d2 >= d1 {
		t.Error("deviation should shrink with n")
	}
	// Known value: B·sqrt(ln(20)/200) at n=100, η=0.05.
	want := math.Sqrt(math.Log(20) / 200)
	if math.Abs(d1-want) > 1e-12 {
		t.Errorf("HoeffdingDeviation = %v, want %v", d1, want)
	}
}

func TestRegIncBetaKnownValues(t *testing.T) {
	// I_x(1,1) = x (uniform CDF).
	for _, x := range []float64{0.1, 0.5, 0.9} {
		if got := RegIncBeta(1, 1, x); math.Abs(got-x) > 1e-10 {
			t.Errorf("I_%v(1,1) = %v", x, got)
		}
	}
	// I_0.5(2,2) = 0.5 by symmetry.
	if got := RegIncBeta(2, 2, 0.5); math.Abs(got-0.5) > 1e-10 {
		t.Errorf("I_0.5(2,2) = %v", got)
	}
	// Beta(2,1) CDF = x².
	if got := RegIncBeta(2, 1, 0.3); math.Abs(got-0.09) > 1e-10 {
		t.Errorf("I_0.3(2,1) = %v, want 0.09", got)
	}
	if RegIncBeta(3, 4, 0) != 0 || RegIncBeta(3, 4, 1) != 1 {
		t.Error("boundary values wrong")
	}
}

func TestBetaInvCDFInvertsRegIncBeta(t *testing.T) {
	for _, tc := range []struct{ p, a, b float64 }{
		{0.5, 2, 3}, {0.05, 10, 90}, {0.95, 100, 5}, {0.01, 1, 1},
	} {
		x := BetaInvCDF(tc.p, tc.a, tc.b)
		if got := RegIncBeta(tc.a, tc.b, x); math.Abs(got-tc.p) > 1e-9 {
			t.Errorf("round trip p=%v a=%v b=%v: got %v", tc.p, tc.a, tc.b, got)
		}
	}
}

func TestClopperPearsonBracketsTruth(t *testing.T) {
	// 80 successes / 100: 95% CP interval ≈ [0.7082, 0.8733].
	lo := BinomialLower(80, 100, 0.025)
	hi := BinomialUpper(80, 100, 0.025)
	if math.Abs(lo-0.7082) > 0.002 {
		t.Errorf("lower = %v, want ~0.7082", lo)
	}
	if math.Abs(hi-0.8733) > 0.002 {
		t.Errorf("upper = %v, want ~0.8733", hi)
	}
	if lo >= 0.8 || hi <= 0.8 {
		t.Error("interval should contain the MLE")
	}
}

func TestBinomialBoundEdgeCases(t *testing.T) {
	if BinomialUpper(100, 100, 0.05) != 1 {
		t.Error("all successes: upper = 1")
	}
	if BinomialLower(0, 100, 0.05) != 0 {
		t.Error("no successes: lower = 0")
	}
	if BinomialUpper(5, 0, 0.05) != 1 || BinomialLower(5, 0, 0.05) != 0 {
		t.Error("n=0 should give vacuous bounds")
	}
	if BinomialLower(-3, 100, 0.05) != 0 {
		t.Error("negative k should clamp")
	}
}

func TestClopperPearsonCoverage(t *testing.T) {
	// The 1−η lower bound must undershoot the true p in ≥ 1−η of trials.
	const (
		p   = 0.75
		n   = 500
		eta = 0.05
	)
	r := rng.New(2)
	failures := 0
	const reps = 2000
	for rep := 0; rep < reps; rep++ {
		k := 0
		for i := 0; i < n; i++ {
			if r.Bool(p) {
				k++
			}
		}
		if BinomialLower(float64(k), n, eta) > p {
			failures++
		}
	}
	if frac := float64(failures) / reps; frac > eta {
		t.Errorf("CP lower bound failed %v of trials, allowed %v", frac, eta)
	}
}

// Property: binomial bounds are ordered lo ≤ k/n ≤ hi and within [0,1].
func TestBinomialBoundsOrderedProperty(t *testing.T) {
	f := func(rawK, rawN uint16) bool {
		n := float64(rawN%1000 + 1)
		k := float64(rawK) * n / 65536
		lo := BinomialLower(k, n, 0.05)
		hi := BinomialUpper(k, n, 0.05)
		mle := k / n
		return lo >= 0 && hi <= 1 && lo <= mle+1e-9 && hi >= mle-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: Bernstein bound is monotone in eta — lower confidence gives
// a tighter (smaller) bound.
func TestBernsteinMonotoneEtaProperty(t *testing.T) {
	f := func(rawLoss, rawN uint16) bool {
		loss := float64(rawLoss) / 65536
		n := float64(rawN%10000 + 10)
		loose := BernsteinUpperBound(loss, n, 0.2, 1)
		tight := BernsteinUpperBound(loss, n, 0.01, 1)
		return tight >= loose
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
