package validation

import (
	"testing"

	"repro/internal/rng"
)

func TestDecisionString(t *testing.T) {
	if Accept.String() != "ACCEPT" || Reject.String() != "REJECT" || Retry.String() != "RETRY" {
		t.Error("decision names wrong")
	}
}

func TestModeProperties(t *testing.T) {
	if ModeNPSLA.isDP() {
		t.Error("NP SLA must not add DP noise")
	}
	for _, m := range []Mode{ModeNoSLA, ModeUncorrectedDP, ModeSage} {
		if !m.isDP() {
			t.Errorf("%v should be DP", m)
		}
	}
	if !ModeSage.corrects() || ModeUncorrectedDP.corrects() || ModeNoSLA.corrects() {
		t.Error("only Sage mode corrects for DP noise")
	}
	names := map[Mode]string{
		ModeNoSLA: "No SLA", ModeNPSLA: "NP SLA",
		ModeUncorrectedDP: "UC DP SLA", ModeSage: "Sage SLA",
	}
	for m, want := range names {
		if m.String() != want {
			t.Errorf("%d.String() = %q, want %q", m, m.String(), want)
		}
	}
}

func TestConfigCost(t *testing.T) {
	c := Config{Mode: ModeSage, Eta: 0.05, Epsilon: 0.5}
	if got := c.Cost(); got.Epsilon != 0.5 || got.Delta != 0 {
		t.Errorf("Cost = %v", got)
	}
	np := Config{Mode: ModeNPSLA, Eta: 0.05}
	if !np.Cost().IsZero() {
		t.Error("NP SLA should be free")
	}
}

// mkLosses returns n per-example losses all equal to v.
func mkLosses(n int, v float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = v
	}
	return out
}

func TestLossAcceptObviousCases(t *testing.T) {
	v := LossValidator{
		Config: Config{Mode: ModeSage, Eta: 0.05, Epsilon: 1},
		Target: 0.3, B: 1,
	}
	r := rng.New(1)
	// Tiny loss on plenty of data: must accept.
	if !v.Accept(mkLosses(100000, 0.05), r) {
		t.Error("should accept loss 0.05 << target 0.3")
	}
	// Loss far above target: must not accept.
	if v.Accept(mkLosses(100000, 0.8), r) {
		t.Error("should not accept loss 0.8 >> target 0.3")
	}
	// Near-empty test set: cannot accept.
	if v.Accept(mkLosses(1, 0.0), r) {
		t.Error("should not accept on 1 sample")
	}
}

func TestLossAcceptNeedsMoreDataNearTarget(t *testing.T) {
	v := LossValidator{
		Config: Config{Mode: ModeSage, Eta: 0.05, Epsilon: 1},
		Target: 0.3, B: 1,
	}
	r := rng.New(2)
	// Loss slightly under target: small n insufficient, large n fine.
	if v.Accept(mkLosses(50, 0.28), r) {
		t.Error("50 samples should not suffice at margin 0.02")
	}
	if !v.Accept(mkLosses(300000, 0.28), r) {
		t.Error("300K samples should suffice at margin 0.02")
	}
}

func TestLossRejectTest(t *testing.T) {
	v := LossValidator{
		Config: Config{Mode: ModeSage, Eta: 0.05, Epsilon: 1},
		Target: 0.1, B: 1,
	}
	r := rng.New(3)
	// Best empirical model has loss 0.5 on lots of data → no model can
	// reach 0.1: REJECT.
	if !v.Reject(mkLosses(100000, 0.5), r) {
		t.Error("should reject: best loss 0.5 >> target 0.1")
	}
	// Best model already beats the target → no rejection.
	if v.Reject(mkLosses(100000, 0.05), r) {
		t.Error("should not reject: best loss 0.05 < target")
	}
	// Nil training losses (e.g. NN): never reject.
	if v.Reject(nil, r) {
		t.Error("nil ERM losses should never reject")
	}
}

func TestLossValidateDecisions(t *testing.T) {
	v := LossValidator{
		Config: Config{Mode: ModeSage, Eta: 0.05, Epsilon: 1},
		Target: 0.3, B: 1,
	}
	r := rng.New(4)
	if d := v.Validate(mkLosses(100000, 0.1), mkLosses(100000, 0.1), r); d != Accept {
		t.Errorf("decision = %v, want ACCEPT", d)
	}
	if d := v.Validate(mkLosses(100000, 0.9), mkLosses(100000, 0.9), r); d != Reject {
		t.Errorf("decision = %v, want REJECT", d)
	}
	// Good-enough loss but insufficient data: RETRY.
	if d := v.Validate(mkLosses(30, 0.25), mkLosses(30, 0.2), r); d != Retry {
		t.Errorf("decision = %v, want RETRY", d)
	}
}

func TestLossNoSLAAcceptsNaively(t *testing.T) {
	naive := LossValidator{
		Config: Config{Mode: ModeNoSLA, Eta: 0.05, Epsilon: 1},
		Target: 0.3, B: 1,
	}
	sage := LossValidator{
		Config: Config{Mode: ModeSage, Eta: 0.05, Epsilon: 1},
		Target: 0.3, B: 1,
	}
	// On a tiny test set with loss below target, No SLA accepts happily
	// (this is exactly the unreliability Table 2 quantifies) while Sage
	// holds out for more data.
	accN, accS := 0, 0
	for i := 0; i < 200; i++ {
		r := rng.New(uint64(i))
		if naive.Accept(mkLosses(40, 0.25), r) {
			accN++
		}
		if sage.Accept(mkLosses(40, 0.25), rng.New(uint64(i))) {
			accS++
		}
	}
	if accN < 100 {
		t.Errorf("No SLA accepted only %d/200 small-sample models", accN)
	}
	if accS != 0 {
		t.Errorf("Sage accepted %d/200 small-sample models", accS)
	}
}

func TestAccuracyAcceptObviousCases(t *testing.T) {
	v := AccuracyValidator{
		Config: Config{Mode: ModeSage, Eta: 0.05, Epsilon: 1},
		Target: 0.74,
	}
	r := rng.New(5)
	if !v.Accept(90000, 100000, r) {
		t.Error("90% on 100K should accept target 74%")
	}
	if v.Accept(50000, 100000, r) {
		t.Error("50% should not accept target 74%")
	}
	if v.Accept(9, 10, r) {
		t.Error("10 samples should not accept")
	}
}

func TestAccuracyRejectTest(t *testing.T) {
	v := AccuracyValidator{
		Config: Config{Mode: ModeSage, Eta: 0.05, Epsilon: 1},
		Target: 0.9,
	}
	r := rng.New(6)
	// Best train accuracy 70% on plenty of data → can't reach 90%.
	if !v.Reject(70000, 100000, r) {
		t.Error("should reject: best accuracy 0.7 << target 0.9")
	}
	if v.Reject(95000, 100000, r) {
		t.Error("should not reject: best accuracy 0.95 > target")
	}
	if v.Reject(-1, 100000, r) {
		t.Error("bestCorrect=-1 must skip rejection")
	}
}

func TestAccuracyValidateDecisions(t *testing.T) {
	v := AccuracyValidator{
		Config: Config{Mode: ModeSage, Eta: 0.05, Epsilon: 1},
		Target: 0.74,
	}
	r := rng.New(7)
	if d := v.Validate(80000, 100000, 80000, 100000, r); d != Accept {
		t.Errorf("want ACCEPT, got %v", d)
	}
	if d := v.Validate(50000, 100000, 50000, 100000, r); d != Reject {
		t.Errorf("want REJECT, got %v", d)
	}
	if d := v.Validate(76, 100, -1, 0, r); d != Retry {
		t.Errorf("want RETRY, got %v", d)
	}
}

func TestErrorValidator(t *testing.T) {
	v := ErrorValidator{
		Config: Config{Mode: ModeSage, Eta: 0.05, Epsilon: 1},
		Target: 0.05, B: 1,
	}
	r := rng.New(8)
	if v.Accept(50, r) {
		t.Error("50 samples cannot bound error to 0.05")
	}
	if !v.Accept(1000000, r) {
		t.Error("1M samples should bound error to 0.05")
	}
	// RequiredSamples should be consistent with Accept.
	n := v.RequiredSamples()
	if n <= 0 {
		t.Fatalf("RequiredSamples = %d", n)
	}
	if !v.Accept(n*4, r) {
		t.Errorf("Accept(4×RequiredSamples=%d) failed", 4*n)
	}
	if v.Accept(n/100, r) {
		t.Errorf("Accept(RequiredSamples/100) unexpectedly passed")
	}
}

func TestErrorValidatorModeComparison(t *testing.T) {
	// The NP validator needs fewer samples than the DP-corrected one.
	np := ErrorValidator{Config: Config{Mode: ModeNPSLA, Eta: 0.05}, Target: 0.02, B: 1}
	sage := ErrorValidator{Config: Config{Mode: ModeSage, Eta: 0.05, Epsilon: 0.1}, Target: 0.02, B: 1}
	if np.RequiredSamples() >= sage.RequiredSamples() {
		t.Errorf("NP required %d, Sage required %d: DP should cost samples",
			np.RequiredSamples(), sage.RequiredSamples())
	}
}

func TestValidatorConfigValidation(t *testing.T) {
	r := rng.New(9)
	for i, fn := range []func(){
		func() {
			LossValidator{Config: Config{Mode: ModeSage, Eta: 0, Epsilon: 1}, Target: 1, B: 1}.Accept(mkLosses(10, 0), r)
		},
		func() {
			LossValidator{Config: Config{Mode: ModeSage, Eta: 0.05, Epsilon: 0}, Target: 1, B: 1}.Accept(mkLosses(10, 0), r)
		},
		func() {
			LossValidator{Config: Config{Mode: ModeSage, Eta: 0.05, Epsilon: 1}, Target: 1, B: 0}.Accept(mkLosses(10, 0), r)
		},
		func() {
			ErrorValidator{Config: Config{Mode: ModeSage, Eta: 0.05, Epsilon: 1}, Target: 1, B: 0}.Accept(10, r)
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d should panic", i)
				}
			}()
			fn()
		}()
	}
}

// TestProposition31 empirically verifies the paper's Proposition 3.1:
// with probability ≥ 1−η, ACCEPT fires only when the true expected loss
// is ≤ τ. We draw Bernoulli losses with mean slightly above the target
// and count false accepts.
func TestProposition31(t *testing.T) {
	const (
		trueLoss = 0.35
		target   = 0.30
		eta      = 0.05
	)
	v := LossValidator{
		Config: Config{Mode: ModeSage, Eta: eta, Epsilon: 1},
		Target: target, B: 1,
	}
	r := rng.New(10)
	falseAccepts := 0
	const reps = 400
	for rep := 0; rep < reps; rep++ {
		losses := make([]float64, 5000)
		for i := range losses {
			if r.Bool(trueLoss) {
				losses[i] = 1
			}
		}
		if v.Accept(losses, r) {
			falseAccepts++
		}
	}
	if frac := float64(falseAccepts) / reps; frac > eta {
		t.Errorf("false-accept rate %v exceeds η=%v", frac, eta)
	}
}

// TestUncorrectedDPViolatesMoreOften reproduces the mechanism behind
// Table 2: without the DP correction, noise can fake a passing score on
// small test sets far more often than with Sage's correction.
func TestUncorrectedDPViolatesMoreOften(t *testing.T) {
	const (
		trueLoss = 0.32 // just above target
		target   = 0.30
		eta      = 0.05
		nTest    = 400
		epsilon  = 0.05 // noisy validation regime
	)
	count := func(mode Mode) int {
		v := LossValidator{
			Config: Config{Mode: mode, Eta: eta, Epsilon: epsilon},
			Target: target, B: 1,
		}
		r := rng.New(11)
		accepts := 0
		for rep := 0; rep < 2000; rep++ {
			losses := make([]float64, nTest)
			for i := range losses {
				if r.Bool(trueLoss) {
					losses[i] = 1
				}
			}
			if v.Accept(losses, r) {
				accepts++
			}
		}
		return accepts
	}
	uc, sage := count(ModeUncorrectedDP), count(ModeSage)
	if sage > uc {
		t.Errorf("Sage false-accepts (%d) should not exceed uncorrected (%d)", sage, uc)
	}
	if uc == 0 {
		t.Skip("uncorrected mode produced no false accepts at this configuration")
	}
}
