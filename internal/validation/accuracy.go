package validation

import (
	"repro/internal/privacy"
	"repro/internal/rng"
)

// AccuracyValidator is the SLAed validator for classification accuracy
// (Appendix B.2). Accuracy is a binomial proportion, so the confidence
// bounds use Clopper–Pearson intervals, which are tighter than the
// generic concentration bounds of the loss validator.
type AccuracyValidator struct {
	Config
	// Target is the accuracy the model must reach (τ_acc).
	Target float64
}

// Accept runs the ACCEPT test on the test set: correct is the number of
// correct predictions out of n. The test is (ε, 0)-DP (ε/2 for the
// correct-count, ε/2 for the total count; both have sensitivity 1).
// ACCEPT requires the lower confidence bound on accuracy to reach Target.
func (v AccuracyValidator) Accept(correct, n int, r *rng.RNG) bool {
	v.Config.validate()
	k, total := float64(correct), float64(n)
	if v.Mode.isDP() {
		mech := privacy.LaplaceMechanism{Sensitivity: 1, Epsilon: v.Epsilon / 2}
		k = mech.Release(k, r)
		total = mech.Release(total, r)
		if v.Mode.corrects() {
			// Worst case: noise inflated k and deflated total.
			k -= mech.TailBound(v.Eta / 3)
			total += mech.TailBound(v.Eta / 3)
		}
	}
	if total <= 1 {
		return false
	}
	if k < 0 {
		k = 0
	}
	if k > total {
		k = total
	}
	if v.Mode == ModeNoSLA {
		return k/total >= v.Target
	}
	return BinomialLower(k, total, v.Eta/3) >= v.Target
}

// Reject runs the REJECT test given the training-set accuracy of the
// best empirical classifier (computationally hard in general, as the
// paper notes; callers that cannot compute it pass correct = -1 to
// skip). REJECT requires the upper confidence bound on the best
// achievable accuracy to fall below Target.
func (v AccuracyValidator) Reject(bestCorrect, nTrain int, r *rng.RNG) bool {
	if bestCorrect < 0 || nTrain <= 0 {
		return false
	}
	v.Config.validate()
	if v.Mode == ModeNoSLA {
		return false
	}
	k, total := float64(bestCorrect), float64(nTrain)
	if v.Mode.isDP() {
		mech := privacy.LaplaceMechanism{Sensitivity: 1, Epsilon: v.Epsilon / 2}
		k = mech.Release(k, r)
		total = mech.Release(total, r)
		if v.Mode.corrects() {
			// Worst case for an upper bound: noise deflated k and
			// inflated total.
			k += mech.TailBound(v.Eta / 3)
			total -= mech.TailBound(v.Eta / 3)
		}
	}
	if total <= 1 {
		return false
	}
	if k < 0 {
		k = 0
	}
	if k > total {
		k = total
	}
	return BinomialUpper(k, total, v.Eta/3) < v.Target
}

// Validate runs ACCEPT then REJECT. Pass bestCorrect = -1 when the best
// empirical classifier is unavailable (e.g. neural networks).
func (v AccuracyValidator) Validate(correct, n, bestCorrect, nTrain int, r *rng.RNG) Decision {
	if v.Accept(correct, n, r) {
		return Accept
	}
	if v.Reject(bestCorrect, nTrain, r) {
		return Reject
	}
	return Retry
}
