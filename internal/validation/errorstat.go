package validation

import (
	"math"

	"repro/internal/privacy"
	"repro/internal/rng"
)

// ErrorValidator is the SLAed validator for the absolute error of
// sum-based statistics — means, variances, the per-key averages of
// Listing 1 (Appendix B.3). The target is a maximum additive error
// τ_err against the statistic's value on the data distribution.
//
// Unlike model validators there is no test set (the error is computable
// on the training data directly) and no REJECT test (by the law of large
// numbers any target is eventually reachable).
type ErrorValidator struct {
	Config
	// Target is the maximum tolerated absolute error (τ_err).
	Target float64
	// B bounds the absolute value of each data point's contribution.
	B float64
}

// Accept reports whether a DP release of a sum-based statistic over n
// data points meets the error target with probability ≥ 1−η, accounting
// for both the sampling error (Hoeffding) and the DP noise added to the
// statistic itself. The test spends ε/2 on a DP count of n; the
// statistic itself is assumed released with the other ε/2 (scale 2B/ε),
// matching Appendix B.3.
func (v ErrorValidator) Accept(n int, r *rng.RNG) bool {
	v.Config.validate()
	if v.B <= 0 {
		panic("validation: ErrorValidator requires B > 0")
	}
	total := float64(n)
	noiseErr := 0.0
	if v.Mode.isDP() {
		countMech := privacy.LaplaceMechanism{Sensitivity: 1, Epsilon: v.Epsilon / 2}
		total = countMech.Release(total, r)
		if v.Mode.corrects() {
			total -= countMech.TailBound(v.Eta / 2)
		}
		if total <= 1 {
			return false
		}
		// Worst-case impact of the Laplace(2B/ε) noise on the
		// statistic, divided by n since the statistic is a mean.
		statMech := privacy.LaplaceMechanism{Sensitivity: v.B, Epsilon: v.Epsilon / 2}
		noiseErr = statMech.TailBound(v.Eta/2) / total
	}
	if total <= 1 {
		return false
	}
	if v.Mode == ModeNoSLA {
		// Vanilla check ignores sampling error entirely.
		return noiseErr <= v.Target
	}
	sampling := HoeffdingDeviation(total, v.Eta/2, v.B)
	return noiseErr+sampling <= v.Target
}

// RequiredSamples returns the smallest n for which Accept would hold in
// expectation (ignoring count noise), useful for sizing windows:
// solves noise/n + B·sqrt(ln(2/η)/(2n)) ≤ τ numerically.
func (v ErrorValidator) RequiredSamples() int {
	v.Config.validate()
	if v.B <= 0 {
		panic("validation: ErrorValidator requires B > 0")
	}
	noise := 0.0
	if v.Mode.isDP() {
		statMech := privacy.LaplaceMechanism{Sensitivity: v.B, Epsilon: v.Epsilon / 2}
		noise = statMech.TailBound(v.Eta / 2)
		if v.Mode.corrects() {
			countMech := privacy.LaplaceMechanism{Sensitivity: 1, Epsilon: v.Epsilon / 2}
			noise += v.Target * countMech.TailBound(v.Eta/2) // count slack, first order
		}
	}
	lo, hi := 1.0, 1e12
	need := func(n float64) bool {
		return noise/n+HoeffdingDeviation(n, v.Eta/2, v.B) <= v.Target
	}
	if !need(hi) {
		return math.MaxInt64 / 2
	}
	for i := 0; i < 100; i++ {
		mid := (lo + hi) / 2
		if need(mid) {
			hi = mid
		} else {
			lo = mid
		}
	}
	return int(math.Ceil(hi))
}
